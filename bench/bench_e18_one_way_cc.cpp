// E18 — the communication floor, computed exactly (deterministic case).
//
// Theorem 3.6 charges a streaming machine's configurations against the
// one-way communication complexity of DISJ. The randomized bound Omega(m)
// (Thm 3.2) cannot be computed exhaustively, but its deterministic shadow
// can: D1(f) = ceil(log2 #distinct matrix rows). The table shows DISJ (and
// the other classic predicates) pinned at exactly m bits — Alice can do
// nothing smarter than shipping her whole string — which is what the block
// machine's 2^k-bit configurations realize per index window.
#include <string>

#include "experiments.hpp"
#include "qols/comm/one_way.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

int run(Reporter& rep, const RunConfig& cfg) {
  util::Table table({"m", "D1(DISJ)", "D1(EQ)", "D1(IP)", "D1(INDEX)",
                     "distinct DISJ rows", "= 2^m ?"});
  const unsigned mmax = cfg.dense_max_k_or(10);
  for (unsigned m = 1; m <= mmax; ++m) {
    const auto rows = comm::distinct_rows(comm::disj_predicate, m);
    auto index_m = [m](std::uint64_t x, std::uint64_t y) {
      return comm::index_predicate_m(x, y, m);
    };
    const auto d1_disj = comm::one_way_det_cc(comm::disj_predicate, m);
    table.add_row({std::to_string(m), std::to_string(d1_disj),
                   std::to_string(comm::one_way_det_cc(comm::eq_predicate, m)),
                   std::to_string(comm::one_way_det_cc(comm::ip_predicate, m)),
                   std::to_string(comm::one_way_det_cc(index_m, m)),
                   util::fmt_g(rows),
                   rows == (std::uint64_t{1} << m) ? "yes" : "NO"});
    MetricRecord metric;
    metric.label = "m=" + std::to_string(m);
    metric.extra = {{"d1_disj", static_cast<double>(d1_disj)},
                    {"distinct_disj_rows", static_cast<double>(rows)},
                    {"no_compression",
                     rows == (std::uint64_t{1} << m) ? 1.0 : 0.0}};
    rep.metric(metric);
  }
  rep.table(table);
  rep.note(
      "\nReading: one-way disjointness admits NO compression whatsoever "
      "(2^m distinct rows at every m), deterministically confirming the "
      "Omega(m) floor the lower bound leans on. The quantum machine "
      "escapes only because its \"message\" is a quantum state.");
  return 0;
}

}  // namespace

void register_e18(Registry& r) {
  r.add({.id = "e18",
         .title = "exact one-way communication complexity (deterministic)",
         .claim = "D1(f) = ceil(log2 #distinct rows); exhaustive over all "
                  "4^m input pairs.",
         .tags = {"communication", "exact", "theorem-3.2"}},
        run);
}

}  // namespace qols::bench
