// E14 (ablation) — why procedure A2 takes its prime from (2^{4k}, 2^{4k+1}).
//
// The per-test collision probability is (m-1)/p with m = 2^{2k}. With the
// paper's q = 4 exponent this is < 2^{-2k}, small enough that a union bound
// over all 3*2^k - 1 tests still vanishes. With q = 2 the per-test bound is
// ~1 and single-bit damage slips through at a measurable rate; q = 3 sits
// in between (union bound ~2^{-k}* const). The sweep measures false-accept
// rates of mutated words for q in {2, 3, 4, 5}.
#include <algorithm>
#include <cmath>
#include <string>

#include "experiments.hpp"
#include "qols/fingerprint/equality_checker.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

double false_accept_rate(const std::string& word, unsigned q, int trials) {
  int slipped = 0;
  for (int i = 0; i < trials; ++i) {
    fingerprint::EqualityChecker a2{util::Rng(555 + i), q};
    stream::StringStream s(word);
    while (auto sym = s.next()) a2.feed(*sym);
    if (a2.passed()) ++slipped;
  }
  return slipped / static_cast<double>(trials);
}

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(14);
  util::Table table({"k", "field exponent q", "prime bits ~", "per-test bound",
                     "measured false-accept", "trials"});
  const unsigned kmax = std::clamp(cfg.max_k_or(3), 2u, 3u);
  for (unsigned k = 2; k <= kmax; ++k) {
    auto inst = lang::LDisjInstance::make_disjoint(k, rng);
    auto mutant =
        lang::make_mutant_stream(inst, lang::MutantKind::kXZMismatch, rng);
    const std::string word = stream::materialize(*mutant);
    const int trials = cfg.trials_or(3000);
    for (unsigned q : {2u, 3u, 4u, 5u}) {
      const double m = std::pow(2.0, 2.0 * k);
      const double per_test = std::min(1.0, (m - 1.0) / std::pow(2.0, q * k));
      const double measured = false_accept_rate(word, q, trials);
      table.add_row({std::to_string(k), std::to_string(q),
                     std::to_string(q * k + 1), util::fmt_f(per_test, 5),
                     util::fmt_f(measured, 5), std::to_string(trials)});
      MetricRecord metric;
      metric.label = "k=" + std::to_string(k) + " q=" + std::to_string(q);
      metric.k = k;
      metric.trials = static_cast<std::uint64_t>(trials);
      metric.extra = {{"field_exponent", static_cast<double>(q)},
                      {"per_test_bound", per_test},
                      {"false_accept_rate", measured}};
      rep.metric(metric);
    }
  }
  rep.table(table, "Single z-block bit flip (x != z), per-field sweep:");
  rep.note(
      "\nReading: at q = 2 the sieve is porous (measured leak tracks the "
      "(m-1)/p bound); from q = 4 (the paper's pick) the measured rate is "
      "effectively zero while the field elements stay O(k) bits — the "
      "smallest exponent with a union bound that still decays like "
      "2^{-2k}.");
  return 0;
}

}  // namespace

void register_e14(Registry& r) {
  r.add({.id = "e14",
         .title = "fingerprint field size (ablation)",
         .claim = "Claim implicit in the proof: the prime interval "
                  "(2^{4k}, 2^{4k+1}) makes A2's total error < 2^{-2k}; "
                  "smaller fields visibly leak.",
         .tags = {"ablation", "fingerprint", "a2"}},
        run);
}

}  // namespace qols::bench
