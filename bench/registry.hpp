#pragma once
// Registry layer of the experiment stack: every harness under bench/ is an
// Experiment (id, title, claim, tags, run function) registered into one
// Registry, driven either by the unified qols_bench CLI or by the historical
// per-experiment shim binaries. Registration is explicit (experiments.cpp
// calls each register_e*) — no static-initializer magic for a static
// library to drop.

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qols/quantum/state_vector.hpp"
#include "reporter.hpp"

namespace qols::bench {

/// Per-run knobs, resolved from (defaults < environment < CLI flags). Each
/// experiment keeps its own historical defaults and consults the config via
/// max_k_or / trials_or.
struct RunConfig {
  std::optional<unsigned> max_k;  ///< sweep depth cap, range [1, 20]
  std::optional<int> trials;      ///< Monte-Carlo trial override, >= 1
  /// Quantum-backend id ("dense", "structured", "auto"); empty = auto.
  std::string backend;
  /// Amplitude precision for quantum runs (--precision / QOLS_PRECISION):
  /// float selects the dense SIMD fast mode; decisions and accept counts
  /// are precision-invariant, so rates must not move beyond sampling noise.
  bool float_amplitudes = false;

  quantum::Precision precision() const {
    return float_amplitudes ? quantum::Precision::kSingle
                            : quantum::Precision::kDouble;
  }

  unsigned max_k_or(unsigned def) const { return max_k ? *max_k : def; }
  /// Same, additionally clamped to the dense-simulation envelope — for
  /// experiments that materialize LDisjInstance words or 2^{2k}-sized
  /// tables (k in [1, 10]); only backend-aware sweeps (E19) may go higher.
  unsigned dense_max_k_or(unsigned def) const {
    const unsigned k = max_k_or(def);
    return k < 10 ? k : 10;
  }
  int trials_or(int def) const { return trials ? *trials : def; }

  /// QOLS_MAX_K / QOLS_TRIALS / QOLS_BACKEND with validation (see
  /// bench_common.hpp and qols/backend/registry.hpp).
  static RunConfig from_env();
};

/// A registered experiment: identity plus a run function returning an exit
/// status (0 = every claim held).
struct Experiment {
  ExperimentInfo info;
  std::function<int(Reporter&, const RunConfig&)> run;
};

class Registry {
 public:
  void add(ExperimentInfo info, std::function<int(Reporter&, const RunConfig&)> run);

  const std::vector<Experiment>& experiments() const noexcept { return all_; }

  /// Exact id lookup ("e7"); nullptr when absent.
  const Experiment* find(std::string_view id) const;

  /// Selection for --filter: an exact id match wins outright ("e1" runs
  /// only e1, not e10..e18); otherwise case-insensitive substring match
  /// over id, title, and tags. An empty filter selects everything. Order
  /// follows registration order.
  std::vector<const Experiment*> match(std::string_view filter) const;

  /// The process-wide registry with every experiment registered exactly once.
  static Registry& global();

 private:
  std::vector<Experiment> all_;
};

/// Runs the selection in order, bracketing each experiment with
/// begin_experiment / end_experiment (wall-clock measured here) and
/// catching nothing: experiments are expected not to throw. Returns the
/// maximum status across the selection.
int run_experiments(const std::vector<const Experiment*>& selection,
                    Reporter& reporter, const RunConfig& cfg);

}  // namespace qols::bench
