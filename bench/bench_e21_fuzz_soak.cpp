// E21 — fuzz soak: a bounded-budget run of the differential fuzzing
// subsystem, tracked as a perf series.
//
// The repo's four agreement layers (recognizer vs exact oracle, dense vs
// structured backend, per-symbol vs chunked feeding, single-stream vs
// service) are each gated by hand-picked differential tests; the fuzz
// subsystem walks the input space adversarially instead. E21 promotes that
// walk into the bench registry so two numbers become part of the tracked
// trajectory:
//
//   - cases/sec: the soak's throughput (a regression here means the
//     property layer or one of the four ingestion paths got slower);
//   - discrepancies: must be zero — this is the claim. Any failure row
//     carries its shrunk repro token in the notes, replayable via
//     `qols_fuzz --replay <token>`.
//
// --trials scales the case budget (1000 cases per trial, default 8000); a
// wall-clock ceiling keeps debug/sanitizer sweeps bounded regardless.
#include <string>

#include "experiments.hpp"
#include "qols/fuzz/fuzzer.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

int run(Reporter& rep, const RunConfig& cfg) {
  fuzz::FuzzOptions opts;
  opts.seed = 21;
  opts.max_cases =
      1000 * static_cast<std::uint64_t>(cfg.trials_or(8));
  opts.budget_seconds = 30.0;  // hard ceiling for unoptimized builds

  const fuzz::FuzzReport report = fuzz::run_fuzz(opts);
  const bool clean = report.clean();

  util::Table table({"row", "cases", "wall s", "cases/sec", "discrepancies",
                     "ok?"});
  table.add_row({"soak seed=21", util::fmt_g(report.cases),
                 util::fmt_f(report.seconds, 3),
                 util::fmt_g(static_cast<std::uint64_t>(
                     report.cases_per_second())),
                 std::to_string(report.failures.size()),
                 clean ? "yes" : "NO"});
  for (unsigned i = 0; i < fuzz::kWordKindCount; ++i) {
    table.add_row({std::string("  ") +
                       fuzz::word_kind_name(static_cast<fuzz::WordKind>(i)),
                   util::fmt_g(report.by_word_kind[i]), "-", "-", "-", "-"});
  }
  rep.table(table);

  MetricRecord m;
  m.label = "fuzz soak seed=21";
  m.trials = report.cases;
  m.wall_seconds = report.seconds;
  m.extra.emplace_back("cases", static_cast<double>(report.cases));
  m.extra.emplace_back("cases_per_sec", report.cases_per_second());
  m.extra.emplace_back("discrepancies",
                       static_cast<double>(report.failures.size()));
  for (unsigned i = 0; i < fuzz::kWordClassCount; ++i) {
    m.extra.emplace_back(
        std::string("class_") +
            fuzz::word_class_name(static_cast<fuzz::WordClass>(i)),
        static_cast<double>(report.by_word_class[i]));
  }
  rep.metric(m);

  for (const fuzz::FuzzFailure& f : report.failures) {
    rep.note("DISCREPANCY [" + f.property + "] " + f.detail +
             "\n  replay: qols_fuzz --replay " + f.minimized_token);
  }
  rep.note(
      "\nReading: every case drives one seeded (word, wrapper stack, chunk "
      "schedule, session count, recognizer config) through the stream-"
      "transport, chunk-invariance, exact-oracle, backend-equality and "
      "service-identity properties. Zero discrepancies is the claim; "
      "cases/sec is the tracked throughput of the whole differential "
      "stack.");
  return clean && report.cases > 0 ? 0 : 1;
}

}  // namespace

void register_e21(Registry& r) {
  r.add({.id = "e21",
         .title = "fuzz soak (differential properties)",
         .claim = "Claim (engineering): a seeded adversarial soak across "
                  "all recognizer families, chunk schedules, failure-"
                  "injection stacks and the serving layer finds zero "
                  "property discrepancies, at a tracked cases/sec rate.",
         .tags = {"fuzz", "differential", "soak", "property"}},
        run);
}

}  // namespace qols::bench
