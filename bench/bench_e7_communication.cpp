// E7 — Theorem 3.1 (BCW) vs Theorem 3.2 (classical Omega(m)):
// quantum O(sqrt(m) log m) qubits against classical Theta(m) bits for
// bounded-error disjointness, with measured correctness on both sides.
#include <algorithm>
#include <cmath>
#include <string>

#include "experiments.hpp"
#include "qols/comm/protocols.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(7);
  util::Table table({"m", "trivial bits", "BCW mean qubits", "BCW worst-case",
                     "sqrt(m)*log2(m)", "BCW P[correct]",
                     "sampling bits", "sampling P[correct]"});
  const unsigned kmax = cfg.dense_max_k_or(6);
  for (unsigned k = 1; k <= kmax; ++k) {
    const std::uint64_t m = std::uint64_t{1} << (2 * k);
    // Hard instance: exactly one common index.
    util::BitVec x = util::BitVec::random(m, rng);
    util::BitVec y = util::BitVec::random(m, rng);
    for (std::uint64_t i = 0; i < m; ++i) {
      if (x.get(i) && y.get(i)) y.set(i, false);
    }
    const std::uint64_t common = rng.below(m);
    x.set(common, true);
    y.set(common, true);

    const int runs = cfg.trials_or(std::max(8, 512 >> (2 * k)) + 24);
    std::uint64_t trivial_bits = 0;
    double bcw_qubits = 0.0;
    int bcw_correct = 0;
    std::uint64_t sampling_bits = 0;
    int sampling_correct = 0;
    const std::uint64_t probes = std::uint64_t{1} << k;  // sqrt(m) probes
    for (int i = 0; i < runs; ++i) {
      trivial_bits = comm::disj_trivial(x, y, rng).cost.classical_bits;
      auto bq = comm::disj_bcw_amplified(x, y, 4, rng);
      bcw_qubits += static_cast<double>(bq.cost.qubits);
      if (!bq.declared_disjoint) ++bcw_correct;
      auto sp = comm::disj_sampling(x, y, probes, rng);
      sampling_bits = sp.cost.classical_bits;
      if (!sp.declared_disjoint) ++sampling_correct;
    }
    const double sqrtmlogm =
        std::sqrt(static_cast<double>(m)) * std::log2(static_cast<double>(m));
    table.add_row({util::fmt_g(m), util::fmt_g(trivial_bits),
                   util::fmt_f(bcw_qubits / runs, 0),
                   util::fmt_g(4 * comm::bcw_worst_case_qubits(k)),
                   util::fmt_f(sqrtmlogm, 0),
                   util::fmt_f(bcw_correct / double(runs), 3),
                   util::fmt_g(sampling_bits),
                   util::fmt_f(sampling_correct / double(runs), 3)});
    MetricRecord metric;
    metric.label = "m=" + std::to_string(m);
    metric.k = k;
    metric.trials = static_cast<std::uint64_t>(runs);
    metric.extra = {{"trivial_bits", static_cast<double>(trivial_bits)},
                    {"bcw_mean_qubits", bcw_qubits / runs},
                    {"sqrt_m_log_m", sqrtmlogm},
                    {"bcw_correct_rate", bcw_correct / double(runs)},
                    {"sampling_bits", static_cast<double>(sampling_bits)},
                    {"sampling_correct_rate", sampling_correct / double(runs)}};
    rep.metric(metric);
  }
  rep.table(table, "Instance: single planted intersection; BCW with 4 "
                   "attempts (bounded error), sampling with sqrt(m) "
                   "probes:");
  rep.note(
      "\nShape check: BCW qubits track sqrt(m)*log(m) (crossing below the "
      "trivial m-bit cost as m grows) while holding P[correct] >= 2/3;\n"
      "the classical protocol at comparable sublinear cost collapses "
      "toward chance — the quadratic communication separation of [BCW98].");
  return 0;
}

}  // namespace

void register_e7(Registry& r) {
  r.add({.id = "e7",
         .title = "communication complexity of DISJ_m",
         .claim = "Claims: quantum protocol costs O(sqrt(m) log m) qubits "
                  "(Thm 3.1); any bounded-error classical protocol needs "
                  "Omega(m) bits (Thm 3.2).",
         .tags = {"communication", "bcw", "theorem-3.1", "theorem-3.2"}},
        run);
}

}  // namespace qols::bench
