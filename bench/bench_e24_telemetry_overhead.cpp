// E24 — telemetry overhead: what the observability layer costs where it
// matters, measured as throughput ratios against an uninstrumented baseline.
//
// Two legs, both on the classical block machine (the highest symbols/sec in
// the repo, i.e. the layer where a per-op tax would show first):
//
//   - block-machine leg: one k=8 member word driven three ways —
//       raw:      a hand-inlined next_chunk/feed_chunk loop with NO
//                 telemetry call sites at all (the pre-PR transport);
//       disabled: machine::run_stream with telemetry::set_enabled(false) —
//                 every hook present, each reduced to one relaxed load +
//                 branch;
//       enabled:  run_stream with recording on (counters move).
//     Passes are interleaved raw/disabled/enabled and individually timed,
//     best-of-N per mode (the E22 discipline: on a shared machine a single
//     aggregate window is one preemption away from deciding the ratio).
//   - service leg: RecognizerService serving interleaved sessions, enabled
//     vs runtime-disabled, same interleaving and seeds.
//
// Claims (NDEBUG only; unoptimized builds report without enforcing):
//   disabled >= 0.99x raw   (runtime-disabled tax <= 1%)
//   enabled  >= 0.95x raw   (recording tax <= 5%)
//   service enabled >= 0.95x service disabled
//
// The hooks make these bars structural, not aspirational: run_stream
// records per CHUNK (4096 symbols on the copy path), never per symbol, and
// the service records per feed()/flush()/finish() call.
//
// Correctness rides along: every pass's decision must agree across modes —
// the telemetry-never-touches-verdict-state invariant measured rather than
// assumed (the differential suite proves it exhaustively; here it guards
// the exact registers this experiment timed).
#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "experiments.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/telemetry/registry.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

using stream::Symbol;

struct Pass {
  bool accepted = false;
  double seconds = 0.0;
};

/// The uninstrumented baseline: byte-for-byte the transport loop run_stream
/// used before telemetry existed (StringStream has no view path, so
/// run_stream's copy loop is the honest comparison).
Pass drive_raw(const std::string& word, machine::OnlineRecognizer& rec) {
  stream::StringStream s(word);
  util::Stopwatch watch;
  std::array<Symbol, machine::kRunStreamChunk> buffer;
  Pass pass;
  while (true) {
    const std::size_t n = s.next_chunk(buffer);
    if (n == 0) break;
    rec.feed_chunk(std::span<const Symbol>(buffer.data(), n));
  }
  pass.accepted = rec.finish();
  pass.seconds = watch.seconds();
  return pass;
}

/// The instrumented transport, under whatever telemetry::enabled() state
/// the caller has set.
Pass drive_hooked(const std::string& word, machine::OnlineRecognizer& rec) {
  stream::StringStream s(word);
  util::Stopwatch watch;
  Pass pass;
  pass.accepted = machine::run_stream(s, rec);
  pass.seconds = watch.seconds();
  return pass;
}

double rate_of(std::uint64_t symbols, double seconds) {
  return seconds > 0.0 ? static_cast<double>(symbols) / seconds : 0.0;
}

/// One timed service pass: `sessions` block-machine sessions fed the same
/// word in interleaved slices, flushed, finished. Returns wall seconds; the
/// verdicts append to `decisions`.
double service_pass(const std::string& word, unsigned sessions,
                    std::vector<bool>& decisions) {
  std::vector<Symbol> symbols;
  symbols.reserve(word.size());
  for (const char c : word) symbols.push_back(*stream::symbol_from_char(c));

  service::RecognizerService svc(
      {.spec = {.kind = service::RecognizerKind::kClassicalBlock}});
  util::Stopwatch watch;
  std::vector<service::RecognizerService::SessionId> ids;
  ids.reserve(sessions);
  for (unsigned i = 0; i < sessions; ++i) ids.push_back(svc.open(900 + i));
  constexpr std::size_t kSlice = 1 << 14;
  for (std::size_t at = 0; at < symbols.size(); at += kSlice) {
    const std::size_t n = std::min(kSlice, symbols.size() - at);
    const std::span<const Symbol> slice(symbols.data() + at, n);
    for (const auto id : ids) svc.feed(id, slice);
  }
  svc.flush();
  for (const auto id : ids) decisions.push_back(svc.finish(id).accepted);
  return watch.seconds();
}

int run(Reporter& rep, const RunConfig& cfg) {
  const unsigned k = 8;  // the E20 throughput point: ~1.7e7-symbol word
  const int reps = std::max(3, cfg.trials_or(6));
  util::Rng rng(24'000 + k);
  const auto inst = lang::LDisjInstance::make_disjoint(k, rng);
  const std::string word = inst.render();
  const std::uint64_t n = word.size();

  const bool was_enabled = telemetry::enabled();
  bool decisions_agree = true;

  // --- Block-machine leg: raw / disabled / enabled, interleaved. ----------
  double raw_rate = 0.0, disabled_rate = 0.0, enabled_rate = 0.0;
  for (int r = 0; r < reps; ++r) {
    core::ClassicalBlockRecognizer rec(500 + k);
    const Pass raw = drive_raw(word, rec);
    raw_rate = std::max(raw_rate, rate_of(n, raw.seconds));

    telemetry::set_enabled(false);
    rec.reset(500 + k);
    const Pass off = drive_hooked(word, rec);
    disabled_rate = std::max(disabled_rate, rate_of(n, off.seconds));

    telemetry::set_enabled(true);
    rec.reset(500 + k);
    const Pass on = drive_hooked(word, rec);
    enabled_rate = std::max(enabled_rate, rate_of(n, on.seconds));

    decisions_agree = decisions_agree && raw.accepted == off.accepted &&
                      raw.accepted == on.accepted;
  }
  const double disabled_ratio = disabled_rate / std::max(raw_rate, 1e-9);
  const double enabled_ratio = enabled_rate / std::max(raw_rate, 1e-9);

  // --- Service leg: enabled vs runtime-disabled. --------------------------
  const unsigned sessions = 8;
  double svc_on_secs = 1e300, svc_off_secs = 1e300;
  {
    std::vector<bool> on_decisions, off_decisions;
    for (int r = 0; r < std::max(2, reps / 2); ++r) {
      telemetry::set_enabled(true);
      svc_on_secs = std::min(svc_on_secs,
                             service_pass(word, sessions, on_decisions));
      telemetry::set_enabled(false);
      svc_off_secs = std::min(svc_off_secs,
                              service_pass(word, sessions, off_decisions));
    }
    decisions_agree = decisions_agree && on_decisions == off_decisions;
  }
  telemetry::set_enabled(was_enabled);
  const std::uint64_t svc_symbols = n * sessions;
  const double svc_on_rate = rate_of(svc_symbols, svc_on_secs);
  const double svc_off_rate = rate_of(svc_symbols, svc_off_secs);
  const double svc_ratio = svc_on_rate / std::max(svc_off_rate, 1e-9);

  util::Table table({"leg", "mode", "symbols/sec", "vs baseline", "ok?"});
  const auto fmt_rate = [](double r) {
    return util::fmt_g(static_cast<std::uint64_t>(r));
  };
#ifdef NDEBUG
  const bool optimized = true;
#else
  const bool optimized = false;
#endif
  const bool compiled = telemetry::compiled();
  // Compiled-out builds carry no hooks at all: both ratios measure noise
  // around 1.0, and the claims hold by construction.
  const bool disabled_ok = !optimized || disabled_ratio >= 0.99;
  const bool enabled_ok = !optimized || enabled_ratio >= 0.95;
  const bool svc_ok = !optimized || svc_ratio >= 0.95;

  table.add_row({"block-machine", "raw (no hooks)", fmt_rate(raw_rate),
                 "1.00", "-"});
  table.add_row({"block-machine", "runtime-disabled", fmt_rate(disabled_rate),
                 util::fmt_f(disabled_ratio, 3), disabled_ok ? "yes" : "NO"});
  table.add_row({"block-machine", "enabled", fmt_rate(enabled_rate),
                 util::fmt_f(enabled_ratio, 3), enabled_ok ? "yes" : "NO"});
  table.add_row({"service x" + std::to_string(sessions), "runtime-disabled",
                 fmt_rate(svc_off_rate), "1.00", "-"});
  table.add_row({"service x" + std::to_string(sessions), "enabled",
                 fmt_rate(svc_on_rate), util::fmt_f(svc_ratio, 3),
                 svc_ok ? "yes" : "NO"});
  rep.table(table);

  MetricRecord m;
  m.label = "telemetry-overhead";
  m.k = static_cast<std::int64_t>(k);
  m.trials = static_cast<std::uint64_t>(reps);
  m.extra.emplace_back("raw_symbols_per_sec", raw_rate);
  m.extra.emplace_back("disabled_symbols_per_sec", disabled_rate);
  m.extra.emplace_back("enabled_symbols_per_sec", enabled_rate);
  m.extra.emplace_back("disabled_ratio", disabled_ratio);
  m.extra.emplace_back("enabled_ratio", enabled_ratio);
  m.extra.emplace_back("service_enabled_ratio", svc_ratio);
  m.extra.emplace_back("telemetry_compiled", compiled ? 1.0 : 0.0);
  rep.metric(m);

  if (!decisions_agree) {
    rep.note("DECISIONS DIVERGED across telemetry modes — the "
             "never-touches-verdict-state invariant is broken.");
  }
  if (optimized) {
    rep.note("Overhead: runtime-disabled " + util::fmt_f(disabled_ratio, 3) +
             "x raw (claim >= 0.99), enabled " +
             util::fmt_f(enabled_ratio, 3) + "x raw (claim >= 0.95), service "
             "enabled " + util::fmt_f(svc_ratio, 3) +
             "x disabled (claim >= 0.95)." +
             (compiled ? "" : " Telemetry compiled out: hooks are empty."));
  } else {
    rep.note("overhead claims not enforced on an unoptimized build (rows "
             "above are still the tracked series).");
  }
  rep.note(
      "\nReading: the hooks are per-chunk and per-call, never per-symbol, "
      "so the disabled path pays one relaxed-atomic branch per 4096 symbols "
      "and the enabled path a handful of relaxed fetch_adds — both bounded "
      "claims, not measurements of luck. The same instruments feed "
      "extra.telemetry in this report's JSON document.");
  return decisions_agree && disabled_ok && enabled_ok && svc_ok ? 0 : 1;
}

}  // namespace

void register_e24(Registry& r) {
  r.add({.id = "e24",
         .title = "telemetry overhead (enabled / disabled / raw)",
         .claim = "Claim (engineering): telemetry instrumentation costs "
                  "<= 1% throughput runtime-disabled and <= 5% enabled on "
                  "the block-machine ingest path (NDEBUG), with decisions "
                  "bit-identical across all telemetry modes.",
         .tags = {"telemetry", "overhead", "service", "throughput"}},
        run);
}

}  // namespace qols::bench
