// E22 — state-vector kernel throughput: the scalar-double / simd-double /
// simd-float matrix over the two hot A3 kernels (H-range and the Grover
// diffusion composite) at the dense wall.
//
// The dense backend is the layer the SoA + AVX2 rewrite targets: amplitudes
// are split re[]/im[] arrays and the hot kernels run as blocked contiguous
// runs with runtime ISA dispatch (quantum::SimdMode). This experiment pins
// the three configurations against each other on identical registers:
//
//   - scalar-double: the always-compiled reference path (set_simd_mode
//     kScalar), the pre-SoA cost model;
//   - simd-double:   AVX2 4-lane kernels, same precision;
//   - simd-float:    AVX2 8-lane kernels on float amplitudes — half the
//     memory traffic, twice the lanes (the opt-in --precision float mode).
//
// Metric: amplitude-pair updates per second (one H on one qubit of a dim-D
// register performs D/2 pair updates; a diffusion performs two H-ranges plus
// a reflect-zero streaming pass), best-of-`--trials` individually timed
// passes per row. The claim is the ISSUE 6 acceptance bar:
// simd-float sustains >= 2x the scalar-double rate on BOTH kernels at k = 10
// (22 qubits, 4M amplitudes) — enforced only under NDEBUG on AVX2 hardware
// (elsewhere the rows are still reported, with a note).
//
// Correctness is not sacrificed for the rows: each row checks its register
// norm after the timed passes (H-range is self-inverse; the diffusion is
// unitary), so a kernel that went fast by being wrong fails the row.
#include <algorithm>
#include <cmath>
#include <string>

#include "experiments.hpp"
#include "qols/quantum/state_vector.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

struct Row {
  std::string label;
  double hrange_pairs_per_sec = 0.0;
  double diffusion_pairs_per_sec = 0.0;
  double norm = 1.0;
};

template <typename Scalar>
Row run_row(const std::string& label, quantum::SimdMode mode, unsigned k,
            int reps) {
  quantum::set_simd_mode(mode);
  const unsigned range = 2 * k;
  quantum::StateVectorT<Scalar> sv(range + 2);
  const double dim = static_cast<double>(sv.dim());
  const double hrange_pairs = static_cast<double>(range) * dim / 2.0;
  // Diffusion = H-range, reflect-zero (one streaming negate pass + a cheap
  // strided fixup), H-range.
  const double diffusion_pairs = 2.0 * hrange_pairs + dim;

  Row row;
  row.label = label;
  sv.apply_h_range(0, range);  // warm-up: touch every page once
  // Each rep is timed on its own and the row reports the best rate.
  // Sustained-throughput kernels on a shared machine are measured
  // best-of-N, not averaged: one scheduler preemption or turbo shift
  // inside a single aggregate window would otherwise skew the whole row
  // (and the claim is a ratio of two such windows).
  {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      util::Stopwatch watch;
      sv.apply_h_range(0, range);
      const double secs = std::max(watch.seconds(), 1e-9);
      best = std::max(best, hrange_pairs / secs);
    }
    row.hrange_pairs_per_sec = best;
  }
  {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      util::Stopwatch watch;
      sv.apply_h_range(0, range);
      sv.apply_reflect_zero(0, range);
      sv.apply_h_range(0, range);
      const double secs = std::max(watch.seconds(), 1e-9);
      best = std::max(best, diffusion_pairs / secs);
    }
    row.diffusion_pairs_per_sec = best;
  }
  row.norm = sv.norm();
  return row;
}

int run(Reporter& rep, const RunConfig& cfg) {
  const unsigned k = std::max(1u, cfg.dense_max_k_or(10));
  const int reps = std::max(2, cfg.trials_or(6));
  const bool avx2 = quantum::cpu_supports_avx2();
  const quantum::SimdMode simd_mode =
      avx2 ? quantum::SimdMode::kAvx2 : quantum::SimdMode::kAuto;

  const quantum::SimdMode saved = quantum::requested_simd_mode();
  const Row scalar_double =
      run_row<double>("scalar-double", quantum::SimdMode::kScalar, k, reps);
  const Row simd_double = run_row<double>("simd-double", simd_mode, k, reps);
  const Row simd_float = run_row<float>("simd-float", simd_mode, k, reps);
  quantum::set_simd_mode(saved);

  // Norm tolerance: double rows sit at 1 within ~1e-12; the float register
  // accumulates per-pass rounding ~ passes * 2k * 2^-24.
  const double gate_passes = static_cast<double>(reps) * 3.0 * (2.0 * k + 1.0);
  const double float_norm_tol =
      1024.0 * gate_passes * static_cast<double>(2.0 * k) * 0x1p-24;

  util::Table table({"row", "precision", "isa", "h_range pairs/s",
                     "diffusion pairs/s", "|norm-1|", "ok?"});
  bool norms_ok = true;
  const Row* rows[] = {&scalar_double, &simd_double, &simd_float};
  for (const Row* r : rows) {
    const bool is_float = r == &simd_float;
    const double tol = is_float ? float_norm_tol : 1e-9;
    const bool ok = std::abs(r->norm - 1.0) <= tol;
    norms_ok = norms_ok && ok;
    table.add_row({r->label, is_float ? "float" : "double",
                   r == &scalar_double ? "scalar" : (avx2 ? "avx2" : "scalar"),
                   util::fmt_g(static_cast<std::uint64_t>(
                       r->hrange_pairs_per_sec)),
                   util::fmt_g(static_cast<std::uint64_t>(
                       r->diffusion_pairs_per_sec)),
                   util::fmt_f(std::abs(r->norm - 1.0), 9),
                   ok ? "yes" : "NO"});
  }
  rep.table(table);

  const double h_speedup =
      simd_float.hrange_pairs_per_sec /
      std::max(scalar_double.hrange_pairs_per_sec, 1e-9);
  const double d_speedup =
      simd_float.diffusion_pairs_per_sec /
      std::max(scalar_double.diffusion_pairs_per_sec, 1e-9);

  for (const Row* r : rows) {
    MetricRecord m;
    m.label = r->label;
    m.k = static_cast<std::int64_t>(k);
    m.trials = static_cast<std::uint64_t>(reps);
    m.extra.emplace_back("hrange_pairs_per_sec", r->hrange_pairs_per_sec);
    m.extra.emplace_back("diffusion_pairs_per_sec",
                         r->diffusion_pairs_per_sec);
    m.extra.emplace_back("norm_drift", std::abs(r->norm - 1.0));
    if (r == &simd_float) {
      m.extra.emplace_back("hrange_speedup_vs_scalar_double", h_speedup);
      m.extra.emplace_back("diffusion_speedup_vs_scalar_double", d_speedup);
    }
    rep.metric(m);
  }

#ifdef NDEBUG
  const bool optimized = true;
#else
  const bool optimized = false;
#endif
  bool claim_ok = true;
  if (optimized && avx2) {
    claim_ok = h_speedup >= 2.0 && d_speedup >= 2.0;
    rep.note("simd-float vs scalar-double: h_range " +
             util::fmt_f(h_speedup, 2) + "x, diffusion " +
             util::fmt_f(d_speedup, 2) + "x (claim: both >= 2x). " +
             (claim_ok ? "Held." : "FAILED."));
  } else {
    rep.note(std::string("speedup claim not enforced: ") +
             (!optimized ? "unoptimized build" : "no AVX2 on this CPU") +
             " (rows above are still the tracked series).");
  }
  rep.note(
      "\nReading: identical registers (2k+2 qubits), identical kernels, "
      "three storage/ISA configurations. simd-float combines 8-lane AVX2 "
      "with half the memory traffic; decisions stay precision-invariant "
      "(see test_precision_differential), so the fast row is safe to serve "
      "from.");
  return norms_ok && claim_ok ? 0 : 1;
}

}  // namespace

void register_e22(Registry& r) {
  r.add({.id = "e22",
         .title = "state-vector kernel throughput (SoA/SIMD/precision)",
         .claim = "Claim (engineering): the SoA + AVX2 float fast path "
                  "sustains >= 2x the scalar-double amplitude-pair update "
                  "rate on the H-range and diffusion kernels at the dense "
                  "wall (k = 10), with unitary norms preserved.",
         .tags = {"kernel", "simd", "precision", "throughput", "quantum"}},
        run);
}

}  // namespace qols::bench
