// E6 — procedure A2's ingredients: the prime search in (2^{4k}, 2^{4k+1})
// (the paper's "naive strategy ... is sufficient") and the one-sided error
// bound: an inconsistent word slips past A2 with probability < 2^{-2k}.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "qols/fingerprint/equality_checker.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/modmath.hpp"
#include "qols/util/table.hpp"

namespace {

double measured_false_accept(unsigned k, int trials, qols::util::Rng& rng) {
  auto inst = qols::lang::LDisjInstance::make_disjoint(k, rng);
  auto mutant = qols::lang::make_mutant_stream(
      inst, qols::lang::MutantKind::kXZMismatch, rng);
  const std::string word = qols::stream::materialize(*mutant);
  int slipped = 0;
  for (int i = 0; i < trials; ++i) {
    qols::fingerprint::EqualityChecker a2{qols::util::Rng(31337 + i)};
    qols::stream::StringStream s(word);
    while (auto sym = s.next()) a2.feed(*sym);
    if (a2.passed()) ++slipped;
  }
  return slipped / static_cast<double>(trials);
}

}  // namespace

int main() {
  using namespace qols;
  bench::header(
      "E6: fingerprint consistency check (procedure A2)",
      "Claims: a prime exists in every (2^{4k}, 2^{4k+1}); naive search "
      "finds it fast; inconsistent words pass with probability < 2^{-2k}.");

  util::Rng rng(6);
  util::Table table({"k", "prime p", "candidates tested", "field bits",
                     "false-accept measured", "bound 2^{-2k}", "trials"});
  const unsigned kmax = bench::max_k(8);
  for (unsigned k = 1; k <= kmax; ++k) {
    const auto stats = util::fingerprint_prime_stats(k);
    // Measurement cost grows with the word; confine Monte Carlo to k <= 5.
    std::string measured = "-";
    std::string trials_str = "-";
    if (k <= 5) {
      const int trials =
          bench::trials(k <= 3 ? 2000 : (k == 4 ? 400 : 100));
      measured = util::fmt_f(measured_false_accept(k, trials, rng), 5);
      trials_str = std::to_string(trials);
    }
    table.add_row({std::to_string(k), util::fmt_g(stats.prime),
                   std::to_string(stats.candidates_tested),
                   std::to_string(static_cast<int>(std::ceil(
                       std::log2(static_cast<double>(stats.prime))))),
                   measured, util::fmt_f(std::pow(2.0, -2.0 * k), 5),
                   trials_str});
  }
  table.print(std::cout);
  std::cout << "\nShape check: measured false-accept rate sits at or below "
               "the 2^{-2k} bound (0 observed once the field is large); the "
               "prime search never scans more than a few dozen candidates.\n";
  return 0;
}
