// E6 — procedure A2's ingredients: the prime search in (2^{4k}, 2^{4k+1})
// (the paper's "naive strategy ... is sufficient") and the one-sided error
// bound: an inconsistent word slips past A2 with probability < 2^{-2k}.
#include <cmath>
#include <string>

#include "experiments.hpp"
#include "qols/fingerprint/equality_checker.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/modmath.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

double measured_false_accept(unsigned k, int trials, util::Rng& rng) {
  auto inst = lang::LDisjInstance::make_disjoint(k, rng);
  auto mutant =
      lang::make_mutant_stream(inst, lang::MutantKind::kXZMismatch, rng);
  const std::string word = stream::materialize(*mutant);
  int slipped = 0;
  for (int i = 0; i < trials; ++i) {
    fingerprint::EqualityChecker a2{util::Rng(31337 + i)};
    stream::StringStream s(word);
    while (auto sym = s.next()) a2.feed(*sym);
    if (a2.passed()) ++slipped;
  }
  return slipped / static_cast<double>(trials);
}

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(6);
  util::Table table({"k", "prime p", "candidates tested", "field bits",
                     "false-accept measured", "bound 2^{-2k}", "trials"});
  const unsigned kmax = cfg.dense_max_k_or(8);
  for (unsigned k = 1; k <= kmax; ++k) {
    const auto stats = util::fingerprint_prime_stats(k);
    const double bound = std::pow(2.0, -2.0 * k);
    MetricRecord metric;
    metric.label = "k=" + std::to_string(k);
    metric.k = k;
    metric.extra = {{"prime", static_cast<double>(stats.prime)},
                    {"candidates_tested",
                     static_cast<double>(stats.candidates_tested)},
                    {"bound", bound}};
    // Measurement cost grows with the word; confine Monte Carlo to k <= 5.
    std::string measured = "-";
    std::string trials_str = "-";
    if (k <= 5) {
      const int trials =
          cfg.trials_or(k <= 3 ? 2000 : (k == 4 ? 400 : 100));
      const double rate = measured_false_accept(k, trials, rng);
      measured = util::fmt_f(rate, 5);
      trials_str = std::to_string(trials);
      metric.trials = static_cast<std::uint64_t>(trials);
      metric.extra.emplace_back("false_accept_rate", rate);
    }
    table.add_row({std::to_string(k), util::fmt_g(stats.prime),
                   std::to_string(stats.candidates_tested),
                   std::to_string(static_cast<int>(std::ceil(
                       std::log2(static_cast<double>(stats.prime))))),
                   measured, util::fmt_f(bound, 5), trials_str});
    rep.metric(metric);
  }
  rep.table(table);
  rep.note(
      "\nShape check: measured false-accept rate sits at or below "
      "the 2^{-2k} bound (0 observed once the field is large); the "
      "prime search never scans more than a few dozen candidates.");
  return 0;
}

}  // namespace

void register_e6(Registry& r) {
  r.add({.id = "e6",
         .title = "fingerprint consistency check (procedure A2)",
         .claim = "Claims: a prime exists in every (2^{4k}, 2^{4k+1}); naive "
                  "search finds it fast; inconsistent words pass with "
                  "probability < 2^{-2k}.",
         .tags = {"fingerprint", "a2", "error"}},
        run);
}

}  // namespace qols::bench
