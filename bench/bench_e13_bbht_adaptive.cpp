// E13 (ablation) — adaptive BBHT vs the streaming fixed-j compromise.
//
// Procedure A3 cannot adapt: the one-way input gives it 2^k repetitions and
// it must pick j BEFORE seeing outcomes, yielding a constant >= 1/4 success
// per pass. Offline BBHT (reference [8]) adapts m geometrically and finds a
// witness in expected O(sqrt(N/t)) oracle calls. This table quantifies what
// the streaming restriction costs.
#include <cmath>
#include <string>

#include "experiments.hpp"
#include "qols/grover/analysis.hpp"
#include "qols/grover/bbht.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

int run(Reporter& rep, const RunConfig& cfg) {
  const std::uint64_t n = 1024;  // = 2^{2k}, k = 5
  const std::uint64_t rounds = 32;  // 2^k

  util::Table table({"t", "BBHT mean iters", "BBHT found rate",
                     "sqrt(N/t)", "fixed-j P[success/pass]",
                     "fixed-j passes for 2/3"});
  const int trials = cfg.trials_or(50);
  for (std::uint64_t t : {1ULL, 2ULL, 4ULL, 16ULL, 64ULL, 256ULL}) {
    double iters = 0.0;
    int found = 0;
    for (int i = 0; i < trials; ++i) {
      auto oracle = [t](std::uint64_t idx) { return idx < t; };
      util::Rng r(9000 + i);
      const auto res = grover::bbht_search(n, oracle, r);
      iters += static_cast<double>(res.oracle_calls);
      if (res.found) ++found;
    }
    const double fixed = grover::average_success(rounds, grover::angle(t, n));
    const auto passes = grover::repetitions_for_error(fixed, 1.0 / 3.0);
    table.add_row({std::to_string(t), util::fmt_f(iters / trials, 1),
                   util::fmt_f(found / double(trials), 3),
                   util::fmt_f(std::sqrt(double(n) / double(t)), 1),
                   util::fmt_f(fixed, 4), std::to_string(passes)});
    MetricRecord metric;
    metric.label = "t=" + std::to_string(t);
    metric.trials = static_cast<std::uint64_t>(trials);
    metric.extra = {{"bbht_mean_iters", iters / trials},
                    {"bbht_found_rate", found / double(trials)},
                    {"sqrt_n_over_t", std::sqrt(double(n) / double(t))},
                    {"fixed_j_success", fixed},
                    {"fixed_j_passes_for_two_thirds",
                     static_cast<double>(passes)}};
    rep.metric(metric);
  }
  rep.table(table, "N = 1024 marked-t search:");
  rep.note(
      "\nReading: adaptive search converges to the witness in ~sqrt(N/t) "
      "iterations with success ~1; the streaming machine's fixed draw "
      "keeps success near 1/2 per pass and buys certainty only through "
      "independent repetitions (Corollary 3.5), as the paper accepts.");
  return 0;
}

}  // namespace

void register_e13(Registry& r) {
  r.add({.id = "e13",
         .title = "adaptive BBHT vs fixed-j streaming search (ablation)",
         .claim = "The offline algorithm adapts its iteration bound and "
                  "succeeds with certainty in expected O(sqrt(N/t)) "
                  "iterations; the streaming variant pays a constant failure "
                  "probability instead.",
         .tags = {"ablation", "grover", "bbht"}},
        run);
}

}  // namespace qols::bench
