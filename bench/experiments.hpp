#pragma once
// Explicit registration hooks: one per bench_e*.cpp translation unit. The
// aggregate register_all_experiments (experiments.cpp) references each hook,
// which is what pulls every experiment's object file out of the static
// qols_bench_core library.

namespace qols::bench {

class Registry;

void register_e1(Registry& r);
void register_e2(Registry& r);
void register_e3(Registry& r);
void register_e4(Registry& r);
void register_e5(Registry& r);
void register_e6(Registry& r);
void register_e7(Registry& r);
void register_e8(Registry& r);
void register_e9(Registry& r);
void register_e10(Registry& r);
void register_e11(Registry& r);
void register_e12(Registry& r);
void register_e13(Registry& r);
void register_e14(Registry& r);
void register_e15(Registry& r);
void register_e16(Registry& r);
void register_e17(Registry& r);
void register_e18(Registry& r);
void register_e19(Registry& r);
void register_e20(Registry& r);
void register_e21(Registry& r);
void register_e22(Registry& r);
void register_e23(Registry& r);
void register_e24(Registry& r);
void register_e25(Registry& r);
void register_e26(Registry& r);

/// Registers every experiment, in id order.
void register_all_experiments(Registry& r);

}  // namespace qols::bench
