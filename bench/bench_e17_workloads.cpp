// E17 (robustness) — Theorem 3.4's bounds are worst-case over (x, y); this
// sweep measures the machine on adversarial input families (intersection at
// the stream's first/last index, at classical window boundaries, density
// extremes, clustered witnesses) with Wilson 95% intervals. Trials run
// through the TrialEngine (sharded, deterministic seeds).
#include <memory>
#include <string>

#include "experiments.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/core/trial_engine.hpp"
#include "qols/lang/workloads.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/stats.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(17);
  const unsigned k = 3;
  const auto runs = static_cast<std::uint64_t>(cfg.trials_or(300));
  const core::TrialEngine engine;
  util::Table table({"family", "member?", "t", "P[reject] (mean)",
                     "Wilson 95% lo", "Wilson 95% hi", ">= 1/4 ?"});
  bool all_hold = true;
  for (auto family : lang::all_workload_families()) {
    auto inst = lang::make_workload_instance(family, k, rng);
    util::Stopwatch watch;
    core::QuantumOnlineRecognizer::Options qopts;
    qopts.a3.backend = cfg.backend;
    qopts.a3.precision = cfg.precision();
    const auto r = engine.measure_acceptance(
        [&] { return inst.stream(); },
        [qopts](std::uint64_t seed) {
          return std::make_unique<core::QuantumOnlineRecognizer>(seed, qopts);
        },
        {.trials = runs, .seed_base = 70000});
    const std::uint64_t rejects = r.trials - r.accepts;
    const auto ci = util::wilson_interval(rejects, r.trials);
    const bool member = inst.member();
    const bool hold = member ? rejects == 0 : ci.hi >= 0.25;
    all_hold = all_hold && hold;
    const std::string family_name = lang::workload_family_name(family);
    table.add_row({family_name, member ? "yes" : "no",
                   std::to_string(inst.intersections()),
                   util::fmt_f(rejects / double(r.trials), 4),
                   util::fmt_f(ci.lo, 4), util::fmt_f(ci.hi, 4),
                   member ? "n/a" : (hold ? "yes" : "NO")});
    // rate stays acceptance (the schema-wide meaning); the rejection
    // probability the table shows goes into extra.
    auto metric = metric_from_result(family_name, k, r, watch.seconds());
    metric.extra = {{"p_reject", rejects / double(r.trials)},
                    {"reject_ci_lo", ci.lo},
                    {"reject_ci_hi", ci.hi},
                    {"member", member ? 1.0 : 0.0},
                    {"intersections",
                     static_cast<double>(inst.intersections())},
                    {"bound_holds", hold ? 1.0 : 0.0}};
    rep.metric(metric);
  }
  rep.table(table, "k = 3, " + std::to_string(runs) + " runs/family:");
  rep.note(
      "\nReading: the rejection probability never dips below the "
      "1/4 line on any family — position and density of the "
      "witnesses do not matter to Grover's amplitude bookkeeping, "
      "only their count t does.");
  rep.note(all_hold ? "All bounds hold." : "BOUND VIOLATION!");
  return all_hold ? 0 : 1;
}

}  // namespace

void register_e17(Registry& r) {
  r.add({.id = "e17",
         .title = "adversarial workload families (robustness)",
         .claim = "P[reject] of the quantum machine per family; every "
                  "non-member family must stay >= 1/4 (one-sided bound), "
                  "members at exactly 0.",
         .tags = {"robustness", "workloads", "engine", "theorem-3.4"}},
        run);
}

}  // namespace qols::bench
