// E17 (robustness) — Theorem 3.4's bounds are worst-case over (x, y); this
// sweep measures the machine on adversarial input families (intersection at
// the stream's first/last index, at classical window boundaries, density
// extremes, clustered witnesses) with Wilson 95% intervals.
#include <iostream>

#include "bench_common.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/workloads.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/stats.hpp"
#include "qols/util/table.hpp"

int main() {
  using namespace qols;
  bench::header(
      "E17 (robustness): adversarial workload families",
      "P[reject] of the quantum machine per family; every non-member family "
      "must stay >= 1/4 (one-sided bound), members at exactly 0.");

  util::Rng rng(17);
  const unsigned k = 3;
  const int runs = bench::trials(300);
  util::Table table({"family", "member?", "t", "P[reject] (mean)",
                     "Wilson 95% lo", "Wilson 95% hi", ">= 1/4 ?"});
  bool all_hold = true;
  for (auto family : lang::all_workload_families()) {
    auto inst = lang::make_workload_instance(family, k, rng);
    std::uint64_t rejects = 0;
    for (int i = 0; i < runs; ++i) {
      core::QuantumOnlineRecognizer rec(70000 + i);
      auto s = inst.stream();
      if (!machine::run_stream(*s, rec)) ++rejects;
    }
    const auto ci = util::wilson_interval(rejects, runs);
    const bool member = inst.member();
    const bool hold = member ? rejects == 0 : ci.hi >= 0.25;
    all_hold = all_hold && hold;
    table.add_row({lang::workload_family_name(family),
                   member ? "yes" : "no", std::to_string(inst.intersections()),
                   util::fmt_f(rejects / double(runs), 4),
                   util::fmt_f(ci.lo, 4), util::fmt_f(ci.hi, 4),
                   member ? "n/a" : (hold ? "yes" : "NO")});
  }
  table.print(std::cout, "k = 3, " + std::to_string(runs) + " runs/family:");
  std::cout << "\nReading: the rejection probability never dips below the "
               "1/4 line on any family — position and density of the "
               "witnesses do not matter to Grover's amplitude bookkeeping, "
               "only their count t does.\n"
            << (all_hold ? "All bounds hold.\n" : "BOUND VIOLATION!\n");
  return all_hold ? 0 : 1;
}
