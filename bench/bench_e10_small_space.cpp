// E10 — the lower bound's prediction, tested empirically: every classical
// strategy we can field below the Omega(n^{1/3}) = Omega(2^k) line fails
// the bounded-error requirement on some input family.
//
// Sampling machines (one-sided, miss intersections) are swept over budgets;
// Bloom machines (complementary one-sidedness, false-positive on members)
// over filter sizes. The quantum machine at O(log n) space anchors the
// table: reliable where every same-size classical machine is not. Every
// machine's two legs run through the TrialEngine's measure_quality (member
// and non-member seeds drawn from disjoint ranges).
#include <algorithm>
#include <memory>
#include <string>

#include "experiments.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/core/trial_engine.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(10);
  const unsigned k = 4;
  const std::uint64_t m = std::uint64_t{1} << (2 * k);  // 256
  auto member = lang::LDisjInstance::make_disjoint(k, rng);
  auto nonmember = lang::LDisjInstance::make_with_intersections(k, 1, rng);
  const auto runs = static_cast<std::uint64_t>(cfg.trials_or(120));
  const core::TrialEngine engine;

  util::Table table({"machine", "work bits", "err on member",
                     "err on non-member", "max err", "bounded error (<1/3)?"});

  auto add = [&](const std::string& label,
                 const core::RecognizerFactory& factory) {
    util::Stopwatch watch;
    const auto q = engine.measure_quality(
        [&] { return member.stream(); }, [&] { return nonmember.stream(); },
        factory, {.trials = runs, .seed_base = 6000});
    const double em = 1.0 - q.on_member.rate();
    const double en = q.on_nonmember.rate();
    const double worst = std::max(em, en);
    table.add_row({label,
                   std::to_string(q.on_member.space.classical_bits),
                   util::fmt_f(em, 3), util::fmt_f(en, 3),
                   util::fmt_f(worst, 3), worst < 1.0 / 3.0 ? "yes" : "NO"});
    auto metric =
        metric_from_result(label, k, q.on_member, watch.seconds());
    metric.extra = {{"err_member", em},
                    {"err_nonmember", en},
                    {"max_err", worst},
                    {"bounded_error", worst < 1.0 / 3.0 ? 1.0 : 0.0}};
    rep.metric(metric);
  };

  // Sampling machines below, at, and above the threshold.
  for (std::uint64_t budget :
       {std::uint64_t{2}, std::uint64_t{8}, std::uint64_t{16},
        std::uint64_t{64}, m}) {
    add("classical-sample[" + std::to_string(budget) + "]",
        [budget](std::uint64_t seed) {
          return std::unique_ptr<machine::OnlineRecognizer>(
              std::make_unique<core::ClassicalSamplingRecognizer>(seed,
                                                                  budget));
        });
  }
  // Bloom machines.
  for (std::uint64_t bits : {16ULL, 64ULL, 256ULL, 4096ULL}) {
    add("classical-bloom[" + std::to_string(bits) + "]",
        [bits](std::uint64_t seed) {
          return std::unique_ptr<machine::OnlineRecognizer>(
              std::make_unique<core::ClassicalBloomRecognizer>(seed, bits, 2));
        });
  }
  // Reference points.
  add("classical-block", [](std::uint64_t seed) {
    return std::unique_ptr<machine::OnlineRecognizer>(
        std::make_unique<core::ClassicalBlockRecognizer>(seed));
  });
  {
    util::Stopwatch watch;
    core::QuantumOnlineRecognizer::Options qopts;
    qopts.a3.backend = cfg.backend;
    qopts.a3.precision = cfg.precision();
    const auto q = engine.measure_quality(
        [&] { return member.stream(); }, [&] { return nonmember.stream(); },
        [qopts](std::uint64_t seed) {
          return std::unique_ptr<machine::OnlineRecognizer>(
              std::make_unique<core::QuantumOnlineRecognizer>(seed, qopts));
        },
        {.trials = runs, .seed_base = 8000});
    const auto space = q.on_member.space;
    table.add_row({"quantum (1 run, one-sided)",
                   std::to_string(space.classical_bits) + "+" +
                       std::to_string(space.qubits) + "q",
                   util::fmt_f(1.0 - q.on_member.rate(), 3),
                   util::fmt_f(q.on_nonmember.rate(), 3), "-",
                   "one-sided 1/4; x4 copies => yes"});
    auto metric = metric_from_result("quantum (1 run, one-sided)", k,
                                     q.on_member, watch.seconds());
    metric.extra = {{"err_member", 1.0 - q.on_member.rate()},
                    {"err_nonmember", q.on_nonmember.rate()}};
    rep.metric(metric);
  }

  rep.table(table,
            "k = 4 (m = 256, threshold 2^k = 16 buffer bits + overhead); "
            "non-member plants a single intersection:");
  rep.note(
      "\nReading: sampling machines miss the planted intersection unless "
      "the budget approaches m; small Bloom filters reject members "
      "instead. Only machines at/above the n^{1/3} line (block) or the "
      "quantum machine escape — exactly the lower bound's prediction.");
  return 0;
}

}  // namespace

void register_e10(Registry& r) {
  r.add({.id = "e10",
         .title = "small-space classical strategies fail",
         .claim = "Prediction (Thm 3.6): any classical machine below "
                  "Omega(n^{1/3}) space errs with probability > 1/3 on some "
                  "input. We measure the error of concrete sub-threshold "
                  "machines.",
         .tags = {"lower-bound", "classical", "engine", "theorem-3.6"}},
        run);
}

}  // namespace qols::bench
