// E10 — the lower bound's prediction, tested empirically: every classical
// strategy we can field below the Omega(n^{1/3}) = Omega(2^k) line fails
// the bounded-error requirement on some input family.
//
// Sampling machines (one-sided, miss intersections) are swept over budgets;
// Bloom machines (complementary one-sidedness, false-positive on members)
// over filter sizes. The quantum machine at O(log n) space anchors the
// table: reliable where every same-size classical machine is not.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/table.hpp"

int main() {
  using namespace qols;
  bench::header(
      "E10: small-space classical strategies fail",
      "Prediction (Thm 3.6): any classical machine below Omega(n^{1/3}) "
      "space errs with probability > 1/3 on some input. We measure the "
      "error of concrete sub-threshold machines.");

  util::Rng rng(10);
  const unsigned k = 4;
  const std::uint64_t m = std::uint64_t{1} << (2 * k);  // 256
  auto member = lang::LDisjInstance::make_disjoint(k, rng);
  auto nonmember = lang::LDisjInstance::make_with_intersections(k, 1, rng);
  const int runs = bench::trials(120);

  util::Table table({"machine", "work bits", "err on member",
                     "err on non-member", "max err", "bounded error (<1/3)?"});

  auto add = [&](machine::OnlineRecognizer& rec) {
    int err_mem = 0, err_non = 0;
    for (int i = 0; i < runs; ++i) {
      rec.reset(6000 + i);
      auto s = member.stream();
      if (!machine::run_stream(*s, rec)) ++err_mem;
      rec.reset(7000 + i);
      auto s2 = nonmember.stream();
      if (machine::run_stream(*s2, rec)) ++err_non;
    }
    const double em = err_mem / static_cast<double>(runs);
    const double en = err_non / static_cast<double>(runs);
    const double worst = std::max(em, en);
    table.add_row({rec.name() + "", std::to_string(rec.space_used().classical_bits),
                   util::fmt_f(em, 3), util::fmt_f(en, 3),
                   util::fmt_f(worst, 3), worst < 1.0 / 3.0 ? "yes" : "NO"});
  };

  // Sampling machines below, at, and above the threshold.
  for (std::uint64_t budget :
       {std::uint64_t{2}, std::uint64_t{8}, std::uint64_t{16},
        std::uint64_t{64}, m}) {
    core::ClassicalSamplingRecognizer rec(1, budget);
    add(rec);
  }
  // Bloom machines.
  for (std::uint64_t bits : {16ULL, 64ULL, 256ULL, 4096ULL}) {
    core::ClassicalBloomRecognizer rec(1, bits, 2);
    add(rec);
  }
  // Reference points.
  {
    core::ClassicalBlockRecognizer rec(1);
    add(rec);
  }
  {
    core::QuantumOnlineRecognizer rec(1);
    int err_mem = 0, err_non = 0;
    for (int i = 0; i < runs; ++i) {
      rec.reset(8000 + i);
      auto s = member.stream();
      if (!machine::run_stream(*s, rec)) ++err_mem;
      rec.reset(9000 + i);
      auto s2 = nonmember.stream();
      if (machine::run_stream(*s2, rec)) ++err_non;
    }
    const auto space = rec.space_used();
    table.add_row({"quantum (1 run, one-sided)",
                   std::to_string(space.classical_bits) + "+" +
                       std::to_string(space.qubits) + "q",
                   util::fmt_f(err_mem / double(runs), 3),
                   util::fmt_f(err_non / double(runs), 3),
                   "-", "one-sided 1/4; x4 copies => yes"});
  }

  table.print(std::cout,
              "k = 4 (m = 256, threshold 2^k = 16 buffer bits + overhead); "
              "non-member plants a single intersection:");
  std::cout
      << "\nReading: sampling machines miss the planted intersection unless "
         "the budget approaches m; small Bloom filters reject members "
         "instead. Only machines at/above the n^{1/3} line (block) or the "
         "quantum machine escape — exactly the lower bound's prediction.\n";
  return 0;
}
