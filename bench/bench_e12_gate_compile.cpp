// E12 — Definition 2.3 accounting at gate level: the machine's output tape
// (the compiled {H,T,CNOT} circuit) stays polynomial in n and far below the
// definition's 2^{s(|w|)} budget, and the compiler's ancilla use stays O(k).
#include <cmath>
#include <string>

#include "experiments.hpp"
#include "qols/core/grover_streamer.hpp"
#include "qols/gates/builder.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(12);
  util::Table table({"k", "n", "gates total", "H", "T", "CNOT",
                     "gates/n", "data+anc qubits", "log2(gates)",
                     "s = total space bits"});
  const unsigned kmax = cfg.dense_max_k_or(6);
  for (unsigned k = 1; k <= kmax; ++k) {
    auto inst = lang::LDisjInstance::make_disjoint(k, rng);
    gates::CountingSink sink;
    core::GroverStreamer::Options opts;
    opts.simulate = false;
    opts.gate_sink = &sink;
    core::GroverStreamer a3{util::Rng(1000 + k), opts};
    auto s = inst.stream();
    while (auto sym = s->next()) a3.feed(*sym);

    const double n = static_cast<double>(inst.word_length());
    // Definition 2.3's budget exponent: the machine's space bound s(|w|).
    // Our machine's total space is Theta(k); even with the tiny constant
    // here, gates ~ poly(n) << 2^{s} once n grows.
    const std::uint64_t space_bits =
        a3.classical_bits_used() + a3.qubits_used() + a3.ancilla_qubits_used();
    table.add_row(
        {std::to_string(k), util::fmt_g(inst.word_length()),
         util::fmt_g(sink.total()), util::fmt_g(sink.h()),
         util::fmt_g(sink.t()), util::fmt_g(sink.cnot()),
         util::fmt_f(static_cast<double>(sink.total()) / n, 2),
         std::to_string(a3.qubits_used()) + "+" +
             std::to_string(a3.ancilla_qubits_used()),
         util::fmt_f(std::log2(static_cast<double>(sink.total())), 1),
         std::to_string(space_bits)});
    MetricRecord metric;
    metric.label = "k=" + std::to_string(k);
    metric.k = k;
    metric.qubits = a3.qubits_used() + a3.ancilla_qubits_used();
    metric.extra = {{"gates_total", static_cast<double>(sink.total())},
                    {"gates_h", static_cast<double>(sink.h())},
                    {"gates_t", static_cast<double>(sink.t())},
                    {"gates_cnot", static_cast<double>(sink.cnot())},
                    {"gates_per_symbol", static_cast<double>(sink.total()) / n},
                    {"space_bits", static_cast<double>(space_bits)}};
    rep.metric(metric);
  }
  rep.table(table);
  rep.note(
      "\nShape check: gates/n grows ~linearly in k (each input bit "
      "compiles to an O(k)-deep Toffoli ladder), so the tape is "
      "n*polylog(n) overall — comfortably within Definition 2.3's "
      "2^{s} budget, with ancillas pegged at 2k = O(log n).");
  return 0;
}

}  // namespace

void register_e12(Registry& r) {
  r.add({.id = "e12",
         .title = "gate-level lowering of procedure A3",
         .claim = "Definition 2.3: the machine outputs at most 2^{s(|w|)} "
                  "gates over {H,T,CNOT}. We count the emitted tape exactly "
                  "(CountingSink).",
         .tags = {"gates", "compiler", "definition-2.3"}},
        run);
}

}  // namespace qols::bench
