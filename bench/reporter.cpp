#include "reporter.hpp"

#include <fstream>
#include <iostream>

#include "qols/telemetry/registry.hpp"
#include "qols/util/stats.hpp"

namespace qols::bench {

using util::json::Value;

MetricRecord metric_from_result(std::string label, std::int64_t k,
                                const core::ExperimentResult& result,
                                double wall_seconds) {
  MetricRecord m;
  m.label = std::move(label);
  m.k = k;
  m.trials = result.trials;
  m.accepts = result.accepts;
  m.rate = result.rate();
  const auto ci = result.wilson();
  m.ci_lo = ci.lo;
  m.ci_hi = ci.hi;
  m.classical_bits = result.space.classical_bits;
  m.qubits = result.space.qubits;
  m.wall_seconds = wall_seconds;
  if (result.not_simulated > 0) {
    // Trials whose decision procedure could not actually run; never fold
    // these silently into the acceptance rate.
    m.extra.emplace_back("not_simulated",
                         static_cast<double>(result.not_simulated));
  }
  return m;
}

void ConsoleReporter::begin_experiment(const ExperimentInfo& info) {
  os_ << "=== " << info.id << ": " << info.title << " ===\n"
      << info.claim << "\n\n";
}

void ConsoleReporter::end_experiment(int status, double wall_seconds) {
  os_ << "[" << (status == 0 ? "ok" : "FAIL") << "] "
      << util::fmt_f(wall_seconds, 2) << "s\n\n";
}

void ConsoleReporter::table(const util::Table& t, const std::string& caption) {
  t.print(os_, caption);
}

void ConsoleReporter::note(const std::string& text) { os_ << text << "\n"; }

JsonReporter::JsonReporter()
    : config_(Value::object()), experiments_(Value::array()) {}

void JsonReporter::begin_experiment(const ExperimentInfo& info) {
  current_ = Value::object();
  current_.set("id", info.id);
  current_.set("title", info.title);
  current_.set("claim", info.claim);
  auto tags = Value::array();
  for (const auto& t : info.tags) tags.push_back(t);
  current_.set("tags", std::move(tags));
  current_metrics_ = Value::array();
}

void JsonReporter::end_experiment(int status, double wall_seconds) {
  if (!current_.is_object()) return;  // end without begin
  current_.set("status", static_cast<std::int64_t>(status));
  current_.set("wall_seconds", wall_seconds);
  current_.set("metrics", std::move(current_metrics_));
  experiments_.push_back(std::move(current_));
  current_ = Value();
  current_metrics_ = Value();
}

void JsonReporter::metric(const MetricRecord& record) {
  if (!current_metrics_.is_array()) return;  // metric outside an experiment
  auto m = Value::object();
  m.set("label", record.label);
  if (record.k) m.set("k", *record.k);
  if (record.trials) m.set("trials", *record.trials);
  if (record.accepts) m.set("accepts", *record.accepts);
  if (record.rate) m.set("rate", *record.rate);
  if (record.ci_lo) m.set("ci_lo", *record.ci_lo);
  if (record.ci_hi) m.set("ci_hi", *record.ci_hi);
  if (record.classical_bits) m.set("classical_bits", *record.classical_bits);
  if (record.qubits) m.set("qubits", *record.qubits);
  if (record.wall_seconds) m.set("wall_seconds", *record.wall_seconds);
  if (!record.extra.empty()) {
    auto extra = Value::object();
    for (const auto& [key, v] : record.extra) extra.set(key, v);
    m.set("extra", std::move(extra));
  }
  current_metrics_.push_back(std::move(m));
}

void JsonReporter::set_config(const std::string& key, Value v) {
  config_.set(key, std::move(v));
}

Value JsonReporter::document() const {
  auto doc = Value::object();
  // Schema history: /1 = PR 2 (engine + registry + JSON results);
  // /2 adds config.backend and per-metric extra.not_simulated;
  // /3 adds e20's throughput extras (symbols_per_sec, sessions_per_sec,
  // speedup_vs_per_symbol);
  // /4 adds the top-level extra.telemetry block (the MetricsRegistry
  // snapshot taken as the document is assembled).
  doc.set("schema", "qols-bench/4");
  doc.set("config", config_);
  doc.set("experiments", experiments_);
  auto extra = Value::object();
  extra.set("telemetry", telemetry::snapshot());
  doc.set("extra", std::move(extra));
  return doc;
}

bool JsonReporter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << document().dump(2) << "\n";
  return static_cast<bool>(out);
}

void MultiReporter::begin_experiment(const ExperimentInfo& info) {
  for (auto* s : sinks_) s->begin_experiment(info);
}
void MultiReporter::end_experiment(int status, double wall_seconds) {
  for (auto* s : sinks_) s->end_experiment(status, wall_seconds);
}
void MultiReporter::table(const util::Table& t, const std::string& caption) {
  for (auto* s : sinks_) s->table(t, caption);
}
void MultiReporter::note(const std::string& text) {
  for (auto* s : sinks_) s->note(text);
}
void MultiReporter::metric(const MetricRecord& record) {
  for (auto* s : sinks_) s->metric(record);
}

}  // namespace qols::bench
