#include "registry.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "experiments.hpp"
#include "qols/backend/registry.hpp"
#include "qols/util/stopwatch.hpp"

namespace qols::bench {

RunConfig RunConfig::from_env() {
  RunConfig cfg;
  if (const auto k = env_integer("QOLS_MAX_K", 1, 20)) {
    cfg.max_k = static_cast<unsigned>(*k);
  }
  if (const auto t = env_integer("QOLS_TRIALS", 1, 1000000000)) {
    cfg.trials = static_cast<int>(*t);
  }
  if (const auto& b = backend::env_backend_override()) {
    cfg.backend = *b;
  }
  if (const char* p = std::getenv("QOLS_PRECISION");
      p != nullptr && *p != '\0') {
    const std::string_view value(p);
    if (value == "float") {
      cfg.float_amplitudes = true;
    } else if (value != "double") {
      std::cerr << "qols: ignoring QOLS_PRECISION='" << value
                << "' (expected double or float)\n";
    }
  }
  return cfg;
}

void Registry::add(ExperimentInfo info,
                   std::function<int(Reporter&, const RunConfig&)> run) {
  all_.push_back(Experiment{std::move(info), std::move(run)});
}

const Experiment* Registry::find(std::string_view id) const {
  for (const auto& e : all_) {
    if (e.info.id == id) return &e;
  }
  return nullptr;
}

namespace {

std::string lowered(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

std::vector<const Experiment*> Registry::match(std::string_view filter) const {
  std::vector<const Experiment*> out;
  const std::string needle = lowered(filter);
  for (const auto& e : all_) {
    if (lowered(e.info.id) == needle) return {&e};
  }
  for (const auto& e : all_) {
    if (needle.empty() || lowered(e.info.id).find(needle) != std::string::npos ||
        lowered(e.info.title).find(needle) != std::string::npos ||
        std::any_of(e.info.tags.begin(), e.info.tags.end(),
                    [&](const std::string& tag) {
                      return lowered(tag).find(needle) != std::string::npos;
                    })) {
      out.push_back(&e);
    }
  }
  return out;
}

Registry& Registry::global() {
  static Registry registry = [] {
    Registry r;
    register_all_experiments(r);
    return r;
  }();
  return registry;
}

int run_experiments(const std::vector<const Experiment*>& selection,
                    Reporter& reporter, const RunConfig& cfg) {
  int worst = 0;
  for (const Experiment* e : selection) {
    reporter.begin_experiment(e->info);
    util::Stopwatch watch;
    const int status = e->run(reporter, cfg);
    reporter.end_experiment(status, watch.seconds());
    worst = std::max(worst, status);
  }
  return worst;
}

}  // namespace qols::bench
