// E16 (ablation) — why the language repeats the input exactly 2^k = sqrt(m)
// times (Definition 3.3: "as sqrt(2^{2k}) = 2^k rounds are needed in the
// worst case for the quantum protocol ... we concatenate the inputs 2^k
// times").
//
// With R repetitions the machine can run at most R-1 Grover iterations, so
// its averaged rejection probability on the hardest input (t = 1) is
// average_success(R, theta(1, m)). The sweep shows the bound collapsing for
// R << sqrt(m) and saturating beyond sqrt(m) — sqrt(m) is the knee.
#include <algorithm>
#include <cmath>
#include <string>

#include "experiments.hpp"
#include "qols/grover/analysis.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

int run(Reporter& rep, const RunConfig& cfg) {
  util::Table table({"k", "m", "R = sqrt(m)/8", "R = sqrt(m)/4",
                     "R = sqrt(m)/2", "R = sqrt(m) (paper)", "R = 2 sqrt(m)",
                     "worst-t min at sqrt(m)"});
  const unsigned kmax = std::max(3u, cfg.max_k_or(10));
  for (unsigned k = 3; k <= kmax; ++k) {
    const std::uint64_t m = std::uint64_t{1} << (2 * k);
    const std::uint64_t sqrt_m = std::uint64_t{1} << k;
    const double theta1 = grover::angle(1, m);
    auto rej = [&](std::uint64_t rounds) {
      return rounds == 0 ? 0.0 : grover::average_success(rounds, theta1);
    };
    // Minimum over all t at the paper's R = sqrt(m).
    double worst = 1.0;
    for (std::uint64_t t = 1; t <= m; t = t < 8 ? t + 1 : t * 2) {
      worst = std::min(worst,
                       grover::average_success(sqrt_m, grover::angle(t, m)));
    }
    table.add_row({std::to_string(k), util::fmt_g(m),
                   util::fmt_f(rej(std::max<std::uint64_t>(1, sqrt_m / 8)), 4),
                   util::fmt_f(rej(std::max<std::uint64_t>(1, sqrt_m / 4)), 4),
                   util::fmt_f(rej(std::max<std::uint64_t>(1, sqrt_m / 2)), 4),
                   util::fmt_f(rej(sqrt_m), 4),
                   util::fmt_f(rej(2 * sqrt_m), 4), util::fmt_f(worst, 4)});
    MetricRecord metric;
    metric.label = "k=" + std::to_string(k);
    metric.k = k;
    metric.extra = {{"rej_at_sqrt_m", rej(sqrt_m)},
                    {"rej_at_half_sqrt_m",
                     rej(std::max<std::uint64_t>(1, sqrt_m / 2))},
                    {"rej_at_double_sqrt_m", rej(2 * sqrt_m)},
                    {"worst_t_at_sqrt_m", worst}};
    rep.metric(metric);
  }
  rep.table(table);
  rep.note(
      "\nReading: with fewer than sqrt(m) repetitions the t = 1 rejection "
      "probability decays like (R/sqrt(m))^2 * const — the one-sided 1/4 "
      "guarantee dies; at sqrt(m) it locks in >= 1/4 for EVERY t "
      "(last column), and extra repetitions buy nothing. sqrt(m) is "
      "exactly the right amount of redundancy.");
  return 0;
}

}  // namespace

void register_e16(Registry& r) {
  r.add({.id = "e16",
         .title = "repetition count in the language definition (ablation)",
         .claim = "Rejection probability of the t = 1 hardest case as a "
                  "function of the number R of (x#y#x#) repetitions available "
                  "to the streaming machine.",
         .tags = {"ablation", "language", "definition-3.3"}},
        run);
}

}  // namespace qols::bench
