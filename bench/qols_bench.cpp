// qols_bench — the unified experiment runner: one binary driving every
// registered experiment (E1..E20) with selection, depth/trial/backend
// overrides and machine-readable JSON output.
//
//   qols_bench --list
//   qols_bench --filter separation
//   qols_bench --filter e1 --trials 50 --max-k 4 --json BENCH_e1.json
//
// Exit status is the worst experiment status (0 = every claim held),
// 2 on usage errors.
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "qols/backend/registry.hpp"
#include "registry.hpp"
#include "reporter.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: qols_bench [options]\n"
        "  --list             list registered experiments and exit\n"
        "  --filter <text>    run experiments whose id/title/tags contain\n"
        "                     <text> (case-insensitive; default: all)\n"
        "  --trials <n>       override Monte-Carlo trial counts (>= 1)\n"
        "  --max-k <k>        cap sweep depth, k in [1, 20] (dense-era\n"
        "                     experiments clamp themselves to k <= 10;\n"
        "                     only backend-aware sweeps like e19 go higher)\n"
        "  --backend <id>     quantum backend: dense, structured, or auto\n"
        "                     (default auto: dense inside its ceiling,\n"
        "                     structured past it)\n"
        "  --precision <p>    amplitude precision: double (default) or\n"
        "                     float (dense SIMD fast mode; decisions and\n"
        "                     accept counts are precision-invariant)\n"
        "  --json <path>      write machine-readable results to <path>\n"
        "  --quiet            suppress the human-readable tables\n"
        "  --help             this text\n"
        "\n"
        "Environment: QOLS_TRIALS / QOLS_MAX_K / QOLS_BACKEND /\n"
        "QOLS_PRECISION provide the same overrides (flags win).\n";
}

struct CliArgs {
  bool list = false;
  bool quiet = false;
  std::string filter;
  std::optional<int> trials;
  std::optional<unsigned> max_k;
  std::optional<std::string> backend;
  std::optional<bool> float_amplitudes;
  std::optional<std::string> json_path;
};

std::optional<CliArgs> parse_args(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qols_bench: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else if (arg == "--list") {
      args.list = true;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg == "--filter") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.filter = v;
    } else if (arg == "--json") {
      const char* v = value();
      if (!v) return std::nullopt;
      args.json_path = v;
    } else if (arg == "--trials") {
      const char* v = value();
      if (!v) return std::nullopt;
      const auto n = qols::bench::parse_integer(v);
      if (!n || *n < 1 || *n > 1000000000) {
        std::cerr << "qols_bench: --trials wants an integer in "
                     "[1, 1000000000], got '"
                  << v << "'\n";
        return std::nullopt;
      }
      args.trials = static_cast<int>(*n);
    } else if (arg == "--max-k") {
      const char* v = value();
      if (!v) return std::nullopt;
      const auto k = qols::bench::parse_integer(v);
      if (!k || *k < 1 || *k > 20) {
        std::cerr << "qols_bench: --max-k wants an integer in [1, 20], got '"
                  << v << "'\n";
        return std::nullopt;
      }
      args.max_k = static_cast<unsigned>(*k);
    } else if (arg == "--backend") {
      const char* v = value();
      if (!v) return std::nullopt;
      const std::string_view id(v);
      if (id != qols::backend::kAutoBackendId &&
          qols::backend::BackendRegistry::global().find(id) == nullptr) {
        std::cerr << "qols_bench: unknown backend '" << id << "'; registered:";
        for (const auto& known :
             qols::backend::BackendRegistry::global().ids()) {
          std::cerr << " " << known;
        }
        std::cerr << " auto\n";
        return std::nullopt;
      }
      args.backend = std::string(id);
    } else if (arg == "--precision") {
      const char* v = value();
      if (!v) return std::nullopt;
      const std::string_view p(v);
      if (p != "double" && p != "float") {
        std::cerr << "qols_bench: --precision wants double or float, got '"
                  << p << "'\n";
        return std::nullopt;
      }
      args.float_amplitudes = (p == "float");
    } else {
      std::cerr << "qols_bench: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return std::nullopt;
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qols::bench;

  const auto args = parse_args(argc, argv);
  if (!args) return 2;

  Registry& registry = Registry::global();

  if (args->list) {
    for (const auto& e : registry.experiments()) {
      std::cout << e.info.id << "\t" << e.info.title << "\t[";
      for (std::size_t i = 0; i < e.info.tags.size(); ++i) {
        std::cout << (i ? "," : "") << e.info.tags[i];
      }
      std::cout << "]\n";
    }
    return 0;
  }

  const auto selection = registry.match(args->filter);
  if (selection.empty()) {
    std::cerr << "qols_bench: no experiment matches '" << args->filter
              << "' (try --list)\n";
    return 2;
  }

  // Environment first, CLI flags win.
  RunConfig cfg = RunConfig::from_env();
  if (args->trials) cfg.trials = args->trials;
  if (args->max_k) cfg.max_k = args->max_k;
  // "--backend auto" stays the literal "auto": GroverStreamer treats it as
  // an explicit auto policy that beats QOLS_BACKEND (an empty id would let
  // the environment override the flag).
  if (args->backend) cfg.backend = *args->backend;
  if (args->float_amplitudes) cfg.float_amplitudes = *args->float_amplitudes;

  ConsoleReporter console(std::cout);
  JsonReporter json;
  std::vector<Reporter*> sinks;
  if (!args->quiet) sinks.push_back(&console);
  if (args->json_path) sinks.push_back(&json);
  MultiReporter reporter(sinks);

  if (args->json_path) {
    if (cfg.trials) json.set_config("trials", *cfg.trials);
    if (cfg.max_k) json.set_config("max_k", *cfg.max_k);
    json.set_config("backend", cfg.backend.empty() ? "auto" : cfg.backend);
    json.set_config("precision", std::string(qols::quantum::precision_name(
                                     cfg.precision())));
    if (!args->filter.empty()) json.set_config("filter", args->filter);
  }

  const int status = run_experiments(selection, reporter, cfg);

  if (args->json_path && !json.write_file(*args->json_path)) {
    std::cerr << "qols_bench: cannot write '" << *args->json_path << "'\n";
    return 2;
  }
  return status;
}
