// E26 — durable session recovery: checkpoint 10^4 mid-word sessions with
// persist(), kill the process image (destroy the service), and measure how
// fast a fresh service rebuilds the fleet from the manifest + spills with
// recover(). The headline claim: recovery of 10,000 evicted sessions takes
// under 5 seconds, and every recovered session then finishes with a verdict
// bit-identical to its uninterrupted single-stream run — zero mismatches.
//
//   - checkpoint row: open the fleet, feed each session half its word,
//     persist(). Timed for context (it pays one fsync'd spill + journal
//     record per session); no claim attached.
//   - recover row: construct a new durable service over the same directory
//     and replay the manifest. This is the restart-latency number a server
//     operator waits behind; the claim bounds it.
//   - resume row: feed every recovered session the rest of its word and
//     finish, cross-checking each verdict (decision + SpaceReport) against
//     a direct run of the full word on the same seed.
//
// --trials overrides the fleet size (default 10,000); --max-k is unused
// (the word is fixed at k = 1 so the time measured is table machinery, not
// recognizer arithmetic).
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "experiments.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/util/rng.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

using service::RecognizerService;
using stream::Symbol;

std::vector<Symbol> drain(const lang::LDisjInstance& inst) {
  std::vector<Symbol> out;
  auto s = inst.stream();
  while (auto sym = s->next()) out.push_back(*sym);
  return out;
}

int run(Reporter& rep, const RunConfig& cfg) {
  bool all_hold = true;
  const std::size_t fleet = static_cast<std::size_t>(cfg.trials_or(10'000));

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("qols-e26-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Two k = 1 words (one member, one intersecting), alternated across the
  // fleet; session s runs seed 26'000 + s. Small words on purpose: E26
  // times the durability machinery, not symbol throughput.
  util::Rng rng(26'000);
  const std::vector<Symbol> words[2] = {
      drain(lang::LDisjInstance::make_disjoint(1, rng)),
      drain(lang::LDisjInstance::make_with_intersections(1, 1, rng)),
  };

  RecognizerService::Config svc_cfg;
  svc_cfg.spec.kind = service::RecognizerKind::kClassicalBlock;
  svc_cfg.spill_dir = dir.string();
  svc_cfg.durable = true;

  // --- Checkpoint: open, half-feed, persist, die. ------------------------
  double checkpoint_s = 0.0;
  std::vector<RecognizerService::SessionId> ids;
  {
    RecognizerService svc(svc_cfg);
    util::Stopwatch watch;
    for (std::size_t s = 0; s < fleet; ++s) {
      const auto& word = words[s % 2];
      const auto id = svc.open(26'000 + s);
      ids.push_back(id);
      svc.feed(id, std::span<const Symbol>(word.data(), word.size() / 2));
    }
    const std::size_t persisted = svc.persist();
    checkpoint_s = watch.seconds();
    if (persisted != fleet) {
      rep.note("CLAIM FAILED: persist() checkpointed " +
               std::to_string(persisted) + " of " + std::to_string(fleet) +
               " sessions");
      all_hold = false;
    }
  }

  // --- Recover: a fresh process image replays the manifest. --------------
  double recover_s = 0.0;
  std::size_t recovered = 0;
  std::size_t lost = 0;
  std::size_t mismatches = 0;
  double resume_s = 0.0;
  {
    util::Stopwatch watch;
    RecognizerService svc(svc_cfg);
    const auto report = svc.recover();
    recover_s = watch.seconds();
    recovered = report.sessions_recovered;
    lost = report.lost.size();
    if (recovered != fleet || lost != 0) {
      rep.note("CLAIM FAILED: recover() adopted " + std::to_string(recovered) +
               " sessions, lost " + std::to_string(lost) + " (want " +
               std::to_string(fleet) + ", 0)");
      all_hold = false;
    }

    // --- Resume: finish every session; verdicts must be bit-identical. ---
    util::Stopwatch resume_watch;
    for (std::size_t s = 0; s < fleet; ++s) {
      const auto& word = words[s % 2];
      const std::size_t half = word.size() / 2;
      svc.feed(ids[s],
               std::span<const Symbol>(word.data() + half,
                                       word.size() - half));
      const auto verdict = svc.finish(ids[s]);

      auto ref = svc_cfg.spec.make(26'000 + s);
      ref->feed_chunk(word);
      const bool ref_accepted = ref->finish();
      const auto ref_space = ref->space_used();
      if (verdict.accepted != ref_accepted ||
          verdict.fully_simulated != ref->fully_simulated() ||
          verdict.space.classical_bits != ref_space.classical_bits ||
          verdict.space.qubits != ref_space.qubits) {
        ++mismatches;
      }
    }
    resume_s = resume_watch.seconds();
  }

  std::error_code ec;
  fs::remove_all(dir, ec);

  const auto per_sec = [](std::size_t n, double s) {
    return s > 0.0 ? static_cast<double>(n) / s : 0.0;
  };
  util::Table table(
      {"phase", "sessions", "wall s", "sessions/sec", "ok?"});
  table.add_row({"checkpoint", util::fmt_g(fleet),
                 util::fmt_f(checkpoint_s, 3),
                 util::fmt_g(static_cast<std::uint64_t>(
                     per_sec(fleet, checkpoint_s))),
                 "-"});
  table.add_row({"recover", util::fmt_g(recovered),
                 util::fmt_f(recover_s, 3),
                 util::fmt_g(static_cast<std::uint64_t>(
                     per_sec(recovered, recover_s))),
                 recovered == fleet && lost == 0 ? "yes" : "NO"});
  table.add_row({"resume+finish", util::fmt_g(fleet),
                 util::fmt_f(resume_s, 3),
                 util::fmt_g(static_cast<std::uint64_t>(
                     per_sec(fleet, resume_s))),
                 mismatches == 0 ? "yes" : "NO"});
  rep.table(table);

  MetricRecord m;
  m.label = "recover " + std::to_string(fleet) + " sessions";
  m.wall_seconds = recover_s;
  m.extra.emplace_back("sessions", static_cast<double>(fleet));
  m.extra.emplace_back("checkpoint_seconds", checkpoint_s);
  m.extra.emplace_back("sessions_per_sec", per_sec(recovered, recover_s));
  m.extra.emplace_back("verdict_mismatches", static_cast<double>(mismatches));
  rep.metric(m);

  if (mismatches != 0) {
    rep.note("CLAIM FAILED: " + std::to_string(mismatches) + " of " +
             std::to_string(fleet) +
             " recovered sessions finished with a wrong verdict");
    all_hold = false;
  }
  // The latency claim is stated for the default fleet in optimized builds;
  // debug builds and rescaled fleets report the number without enforcing it.
#ifdef NDEBUG
  if (fleet >= 10'000 && recover_s >= 5.0) {
    rep.note("CLAIM FAILED: recovering " + std::to_string(fleet) +
             " sessions took " + util::fmt_f(recover_s, 2) +
             "s, expected < 5s");
    all_hold = false;
  }
#endif

  rep.note(
      "\nReading: recover() replays the append-only manifest journal, "
      "verifies every claimed spill file on disk, and re-adopts the fleet "
      "as evicted sessions (revived lazily on their next feed), so restart "
      "latency scales with journal size, not with recognizer state. The "
      "resume phase proves the contract that matters: a crash after a "
      "checkpoint costs zero verdicts.");
  return all_hold ? 0 : 1;
}

}  // namespace

void register_e26(Registry& r) {
  r.add({.id = "e26",
         .title = "durable session recovery (crash -> restart -> resume)",
         .claim = "Claim (engineering): a fresh process recovers 10,000 "
                  "persisted mid-word sessions from the manifest in under "
                  "5 seconds, and every recovered session finishes with a "
                  "verdict bit-identical to its uninterrupted run.",
         .tags = {"durability", "recovery", "restart", "service"}},
        run);
}

}  // namespace qols::bench
