// E20 — service throughput: chunked ingestion vs per-symbol dispatch, and
// the multi-session serving layer.
//
// The paper's premise is an input "too large to store" that must be consumed
// at line rate. Before this experiment's API, every symbol paid two virtual
// calls (SymbolStream::next, OnlineRecognizer::feed) plus a 128-bit modular
// division in A2 — call overhead, not the machines' actual work. E20
// measures what the chunked transport buys:
//
//   - transport rows: the same word, same recognizer, same seeds, driven
//     per-symbol (the historical loop) and chunked (next_chunk ->
//     feed_chunk). Decisions must agree exactly; the claim is >= 5x
//     symbols/sec for the classical block machine at k >= 8, where the word
//     is ~5*10^7 symbols and per-symbol dispatch dominates.
//   - quantum rows: the streamed A3 register (dense and structured
//     backends) under both transports — the win is smaller (gate
//     application dominates) and is reported, not gated: at these word
//     sizes the ratio is too noisy for a hard threshold, so only the
//     decision agreement is enforced.
//   - service rows: RecognizerService serving many interleaved sessions,
//     sharded across the thread pool: symbols/sec and sessions/sec.
//
// The k ladder is fixed at {6, 8} regardless of --max-k's dense-era meaning
// (the 5x claim lives at k >= 8 by construction; k > 8 words no longer
// materialize under the 64 MiB render guard). --trials scales the quantum
// passes; the transport and service rows are fixed-size workloads.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "experiments.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

using stream::Symbol;

/// One timed ingestion pass. The per-symbol leg is the exact historical
/// transport (virtual next()/feed() per symbol); the chunked leg is what
/// run_stream does now.
struct Pass {
  bool accepted = false;
  double seconds = 0.0;
};

Pass drive_per_symbol(const std::string& word,
                      machine::OnlineRecognizer& rec) {
  stream::StringStream s(word);
  util::Stopwatch watch;
  while (auto sym = s.next()) rec.feed(*sym);
  Pass pass;
  pass.accepted = rec.finish();
  pass.seconds = watch.seconds();
  return pass;
}

Pass drive_chunked(const std::string& word, machine::OnlineRecognizer& rec) {
  stream::StringStream s(word);
  util::Stopwatch watch;
  Pass pass;
  pass.accepted = machine::run_stream(s, rec);
  pass.seconds = watch.seconds();
  return pass;
}

double rate_of(std::uint64_t symbols, double seconds) {
  return seconds > 0.0 ? static_cast<double>(symbols) / seconds : 0.0;
}

MetricRecord throughput_metric(std::string label, std::int64_t k,
                               std::uint64_t symbols, double seconds) {
  MetricRecord m;
  m.label = std::move(label);
  m.k = k;
  m.wall_seconds = seconds;
  m.extra.emplace_back("symbols_per_sec", rate_of(symbols, seconds));
  return m;
}

int run(Reporter& rep, const RunConfig& cfg) {
  bool all_hold = true;
  util::Table table({"row", "k", "symbols", "transport", "wall s",
                     "symbols/sec", "speedup", "ok?"});

  const auto fmt_rate = [](double r) { return util::fmt_g(static_cast<std::uint64_t>(r)); };

  // --- Transport rows: classical block machine, k = 6 and 8. -------------
  double speedup_at_8 = 0.0;
  for (const unsigned k : {6u, 8u}) {
    util::Rng rng(20'000 + k);
    const auto inst = lang::LDisjInstance::make_disjoint(k, rng);
    const std::string word = inst.render();
    const std::uint64_t n = word.size();

    // Best of two timed passes per transport: a transient scheduling blip
    // (CI runners share cores) must not decide the speedup ratio. Decisions
    // are seed-pure, so both passes must agree with each other too.
    core::ClassicalBlockRecognizer per_symbol_rec(500 + k);
    Pass ps = drive_per_symbol(word, per_symbol_rec);
    per_symbol_rec.reset(500 + k);
    const Pass ps2 = drive_per_symbol(word, per_symbol_rec);
    ps.seconds = std::min(ps.seconds, ps2.seconds);

    core::ClassicalBlockRecognizer chunked_rec(500 + k);
    Pass ck = drive_chunked(word, chunked_rec);
    chunked_rec.reset(500 + k);
    const Pass ck2 = drive_chunked(word, chunked_rec);
    ck.seconds = std::min(ck.seconds, ck2.seconds);

    // Same member word, same seed: both transports must accept, and the
    // space reports must be identical (the API contract).
    const bool agree = ps.accepted && ps2.accepted && ck.accepted &&
                       ck2.accepted &&
                       per_symbol_rec.space_used().classical_bits ==
                           chunked_rec.space_used().classical_bits;
    all_hold = all_hold && agree;
    const double speedup = ck.seconds > 0.0 ? ps.seconds / ck.seconds : 0.0;
    if (k >= 8) speedup_at_8 = speedup;

    table.add_row({"block", std::to_string(k), util::fmt_g(n), "per-symbol",
                   util::fmt_f(ps.seconds, 3), fmt_rate(rate_of(n, ps.seconds)),
                   "1.00", agree ? "yes" : "NO"});
    table.add_row({"block", std::to_string(k), util::fmt_g(n), "chunked",
                   util::fmt_f(ck.seconds, 3), fmt_rate(rate_of(n, ck.seconds)),
                   util::fmt_f(speedup, 2), agree ? "yes" : "NO"});

    auto m_ps = throughput_metric(
        "block k=" + std::to_string(k) + " per-symbol", k, n, ps.seconds);
    rep.metric(m_ps);
    auto m_ck = throughput_metric("block k=" + std::to_string(k) + " chunked",
                                  k, n, ck.seconds);
    m_ck.extra.emplace_back("speedup_vs_per_symbol", speedup);
    m_ck.extra.emplace_back("transports_agree", agree ? 1.0 : 0.0);
    rep.metric(m_ck);
  }
#ifdef NDEBUG
  // The headline claim is a statement about optimized builds; unoptimized
  // builds time the abstraction penalty of -O0, not the API.
  if (speedup_at_8 < 5.0) {
    rep.note("CLAIM FAILED: chunked/per-symbol speedup at k=8 is " +
             util::fmt_f(speedup_at_8, 2) + "x, expected >= 5x");
    all_hold = false;
  }
#else
  (void)speedup_at_8;
#endif

  // --- Quantum rows: both backends at k = 4, both transports. ------------
  const auto qtrials =
      static_cast<std::uint64_t>(std::min(cfg.trials_or(40), 64));
  std::vector<std::string> backends;
  if (cfg.backend.empty() || cfg.backend == "auto") {
    backends = {"dense", "structured"};
  } else {
    backends = {cfg.backend};  // pinned run: never misattribute rows
  }
  {
    util::Rng rng(20'100);
    const auto inst = lang::LDisjInstance::make_disjoint(4, rng);
    const std::string word = inst.render();
    const std::uint64_t n = word.size();
    for (const std::string& backend : backends) {
      core::QuantumOnlineRecognizer::Options qopts;
      qopts.a3.backend = backend;
      qopts.a3.precision = cfg.precision();
      double ps_total = 0.0, ck_total = 0.0;
      std::uint64_t ps_accepts = 0, ck_accepts = 0;
      for (std::uint64_t t = 0; t < qtrials; ++t) {
        core::QuantumOnlineRecognizer rec(9'000 + t, qopts);
        const Pass ps = drive_per_symbol(word, rec);
        ps_total += ps.seconds;
        ps_accepts += ps.accepted ? 1 : 0;
        rec.reset(9'000 + t);
        const Pass ck = drive_chunked(word, rec);
        ck_total += ck.seconds;
        ck_accepts += ck.accepted ? 1 : 0;
      }
      // Identical seeds and fixed coin flips: accept counts match exactly.
      const bool agree = ps_accepts == ck_accepts;
      all_hold = all_hold && agree;
      const double speedup = ck_total > 0.0 ? ps_total / ck_total : 0.0;
      const std::uint64_t total = n * qtrials;
      table.add_row({"quantum-" + backend, "4", util::fmt_g(total),
                     "per-symbol", util::fmt_f(ps_total, 3),
                     fmt_rate(rate_of(total, ps_total)), "1.00",
                     agree ? "yes" : "NO"});
      table.add_row({"quantum-" + backend, "4", util::fmt_g(total), "chunked",
                     util::fmt_f(ck_total, 3),
                     fmt_rate(rate_of(total, ck_total)),
                     util::fmt_f(speedup, 2), agree ? "yes" : "NO"});
      auto m = throughput_metric("quantum-" + backend + " k=4 chunked", 4,
                                 total, ck_total);
      m.trials = qtrials;
      m.extra.emplace_back("speedup_vs_per_symbol", speedup);
      m.extra.emplace_back("transports_agree", agree ? 1.0 : 0.0);
      rep.metric(m);
    }
  }

  // --- Service rows: interleaved sessions through RecognizerService. -----
  {
    const unsigned k = 6;
    const std::size_t num_sessions = 24;
    const std::size_t chunk_symbols = 4096;
    util::Rng rng(20'200);
    const auto member = lang::LDisjInstance::make_disjoint(k, rng);
    const auto nonmember = lang::LDisjInstance::make_with_intersections(k, 1, rng);
    // Materialize both words once as Symbol arrays; sessions share them.
    const auto to_symbols = [](const lang::LDisjInstance& inst) {
      std::vector<Symbol> out;
      const std::string word = inst.render();
      out.reserve(word.size());
      for (const char c : word) out.push_back(*stream::symbol_from_char(c));
      return out;
    };
    const std::vector<Symbol> member_word = to_symbols(member);
    const std::vector<Symbol> nonmember_word = to_symbols(nonmember);

    service::RecognizerService svc(
        {.spec = {.kind = service::RecognizerKind::kClassicalBlock}});
    std::vector<service::RecognizerService::SessionId> ids;
    std::vector<bool> is_member;
    for (std::size_t s = 0; s < num_sessions; ++s) {
      ids.push_back(svc.open(700 + s));
      is_member.push_back(s % 2 == 0);
    }
    // Round-robin interleave: every session advances one chunk per lap —
    // the adversarial schedule for anything that assumed one stream.
    std::size_t cursor = 0;
    bool any_pending = true;
    while (any_pending) {
      any_pending = false;
      for (std::size_t s = 0; s < num_sessions; ++s) {
        const std::vector<Symbol>& word =
            is_member[s] ? member_word : nonmember_word;
        if (cursor >= word.size()) continue;
        const std::size_t run = std::min(chunk_symbols, word.size() - cursor);
        svc.feed(ids[s], std::span<const Symbol>(word.data() + cursor, run));
        any_pending = true;
      }
      cursor += chunk_symbols;
    }
    // Finish out of order (reverse), checking the exact decisions: the
    // block machine accepts members with certainty and rejects this
    // non-member with certainty (found_ is deterministic).
    bool verdicts_ok = true;
    for (std::size_t s = num_sessions; s-- > 0;) {
      const auto verdict = svc.finish(ids[s]);
      if (verdict.accepted != is_member[s]) verdicts_ok = false;
    }
    all_hold = all_hold && verdicts_ok;
    const auto& stats = svc.stats();
    table.add_row({"service-block x" + std::to_string(num_sessions),
                   std::to_string(k), util::fmt_g(stats.symbols_ingested),
                   "chunked", util::fmt_f(stats.busy_seconds, 3),
                   fmt_rate(stats.symbols_per_second()), "-",
                   verdicts_ok ? "yes" : "NO"});
    auto m = throughput_metric(
        "service block k=6 x" + std::to_string(num_sessions), k,
        stats.symbols_ingested, stats.busy_seconds);
    m.extra.emplace_back("sessions_per_sec", stats.sessions_per_second());
    m.extra.emplace_back("sessions", static_cast<double>(num_sessions));
    m.extra.emplace_back("verdicts_ok", verdicts_ok ? 1.0 : 0.0);
    rep.metric(m);
  }

  rep.table(table);
  rep.note(
      "\nReading: the chunked transport turns ingestion from call-overhead-"
      "bound into compute-bound — the block machine clears 5x at k=8, where "
      "A2's batched Horner pass (Montgomery) replaces a 128-bit division "
      "per bit. The service rows show the same chunks serving dozens of "
      "interleaved sessions across the thread pool with exact verdicts.");
  return all_hold ? 0 : 1;
}

}  // namespace

void register_e20(Registry& r) {
  r.add({.id = "e20",
         .title = "service throughput (chunked ingestion)",
         .claim = "Claim (engineering): chunked transport is >= 5x the "
                  "per-symbol path on the classical block machine at k >= 8 "
                  "with bit-identical decisions, and RecognizerService "
                  "serves interleaved sessions at line rate.",
         .tags = {"throughput", "service", "chunked", "streaming"}},
        run);
}

}  // namespace qols::bench
