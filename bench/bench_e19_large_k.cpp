// E19 — large-k scaling: procedure A3 past the dense-simulation wall.
//
// The dense simulator pays 16 B * 2^{2k+2} of memory and O(2^{2k}) per
// Grover diffusion, which walls the *measured* separation at k ~ 10. The
// structured backend stores one amplitude vector per equivalence class of
// index-register basis states, so every Grover iteration costs
// O(#classes) — this experiment drives A3 at k = 10..16 by default
// (--max-k extends the ladder to 20), where the dense state would be
// 2^{2k+2} amplitudes (256 GiB at k = 16, 64 TiB at k = 20), and checks the
// measured acceptance rates against the BBHT closed form
// 1 - [1/2 - sin(4*2^k*theta)/(4*2^k*sin(2*theta))].
//
// Driving note (oracle compression): streaming the literal word at these k
// is Theta(2^{3k}) symbols — infeasible for any backend, not a simulation
// cost but an input-length cost. Over one full (x#y#x#) repetition the
// streamed oracles compose exactly: V_z undoes V_x bit for bit and W_y
// phases precisely the indices with x_i = y_i = 1, so the composite is a
// phase flip on the intersection set M; likewise step 4's V_x/R_y touch l
// only on M. E19 therefore applies the per-repetition composites directly
// through the backend; the resulting state equals the streamed one on the
// (index, l) marginal, so measurement statistics are exact. The k = 4
// anchor rows run the *streamed* machine on the dense and structured
// backends with identical seeds and must agree decision-for-decision,
// tying the compressed driver back to the word-level pipeline (the
// differential test suite additionally pins full-state equality for every
// k <= 8).
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "experiments.hpp"
#include "qols/backend/structured_backend.hpp"
#include "qols/core/grover_streamer.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/core/trial_engine.hpp"
#include "qols/grover/analysis.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

/// One A3 run at depth k with intersection set `marked`, driven through the
/// structured backend at repetition granularity. Returns the accept
/// decision; reports the backend's peak class count through *peak_classes
/// when non-null.
bool run_structured_trial(unsigned k,
                          const std::vector<std::uint64_t>& marked,
                          std::uint64_t seed, std::size_t* peak_classes) {
  util::Rng rng(seed);
  const std::uint64_t j = rng.below(std::uint64_t{1} << k);
  backend::StructuredBackend reg(2 * k + 2, 2 * k);
  reg.apply_h_range(0, 2 * k);
  for (std::uint64_t rep = 0; rep < j; ++rep) {
    if (!marked.empty()) reg.apply_phase_flip_set(marked);
    reg.apply_grover_diffusion(0, 2 * k);
  }
  const unsigned h = 2 * k;
  const unsigned l = 2 * k + 1;
  for (std::uint64_t idx : marked) {
    reg.apply_x_on_index(0, 2 * k, idx, h);
    reg.apply_cx_on_index(0, 2 * k, idx, h, l);
  }
  const bool rejected = reg.measure(l, rng);
  if (peak_classes != nullptr) *peak_classes = reg.peak_class_count();
  return !rejected;
}

int run(Reporter& rep, const RunConfig& cfg) {
  const auto trials = static_cast<std::uint64_t>(cfg.trials_or(40));
  const core::TrialEngine engine;
  util::Table table({"k", "qubits", "dense amps", "t", "trials",
                     "accept rate", "Wilson lo", "Wilson hi", "closed form",
                     "peak classes", "ok?"});
  bool all_hold = true;

  // Anchor: the streamed word-level machine at k = 4, dense vs structured
  // with identical seeds — decisions must match exactly.
  {
    util::Rng rng(19);
    auto inst = lang::LDisjInstance::make_with_intersections(4, 1, rng);
    const std::uint64_t anchor_trials = std::min<std::uint64_t>(trials, 64);
    auto run_backend = [&](const std::string& id) {
      core::QuantumOnlineRecognizer::Options qopts;
      qopts.a3.backend = id;
      return engine.measure_acceptance(
          [&] { return inst.stream(); },
          [qopts](std::uint64_t seed) {
            return std::make_unique<core::QuantumOnlineRecognizer>(seed,
                                                                   qopts);
          },
          {.trials = anchor_trials, .seed_base = 9100});
    };
    util::Stopwatch watch;
    const auto dense = run_backend("dense");
    const auto structured = run_backend("structured");
    const bool agree = dense.accepts == structured.accepts &&
                       dense.not_simulated == 0 &&
                       structured.not_simulated == 0;
    if (!agree) {
      rep.note("anchor mismatch at k=4: dense accepts " +
               std::to_string(dense.accepts) + ", structured accepts " +
               std::to_string(structured.accepts));
      all_hold = false;
    }
    table.add_row({"4", "10", "2^10", "1 (anchor)",
                   std::to_string(structured.trials),
                   util::fmt_f(structured.rate(), 3), "-", "-",
                   "dense=" + util::fmt_f(dense.rate(), 3), "-",
                   agree ? "yes" : "NO"});
    auto m = metric_from_result("k=4 anchor (streamed, both backends)", 4,
                                structured, watch.seconds());
    m.extra.emplace_back("t", 1.0);
    m.extra.emplace_back("dense_accepts", static_cast<double>(dense.accepts));
    m.extra.emplace_back("backends_agree", agree ? 1.0 : 0.0);
    rep.metric(m);
  }

  // The scaling ladder runs on the structured backend by construction (no
  // other backend can hold these registers). A run pinned to a different
  // backend must not emit rows that would be misattributed to it in the
  // JSON (config.backend), so the ladder is skipped with a note instead.
  if (!cfg.backend.empty() && cfg.backend != "auto" &&
      cfg.backend != "structured") {
    rep.table(table);
    rep.note("\nladder skipped: e19's k >= 10 sweep requires the structured "
             "backend, but this run pins --backend " +
             cfg.backend + " (anchor row above still compares both).");
    return all_hold ? 0 : 1;
  }

  // Fixed at 10..16 regardless of --max-k's dense-era meaning (running past
  // the dense wall is this experiment's purpose); --max-k 18/20 extends it.
  std::vector<unsigned> ladder = {10, 12, 14, 16};
  for (unsigned k = 18; k <= std::min(cfg.max_k_or(16), 20u); k += 2) {
    ladder.push_back(k);
  }

  for (unsigned k : ladder) {
    const std::uint64_t m = std::uint64_t{1} << (2 * k);
    for (const std::uint64_t t : {std::uint64_t{0}, std::uint64_t{1},
                                  std::uint64_t{4}}) {
      // The intersection set of this row's virtual instance (the structured
      // evolution depends on x and y only through M; no 2^{2k}-bit vectors
      // are ever materialized).
      util::Rng row_rng(777 + 131 * k + 7 * t);
      std::vector<std::uint64_t> marked;
      while (marked.size() < t) {
        const std::uint64_t idx = row_rng.below(m);
        if (std::find(marked.begin(), marked.end(), idx) == marked.end()) {
          marked.push_back(idx);
        }
      }

      // Row-disjoint seed ranges: the t-stride (2^32) exceeds any legal
      // --trials value, so rows never reuse each other's seeds.
      const std::uint64_t seed_base = 190000 + (std::uint64_t{k} << 40) +
                                      (t << 32);
      util::Stopwatch watch;
      const auto result = engine.run_trials(
          [&](std::uint64_t seed) {
            core::TrialEngine::TrialOutcome out;
            out.accepted = run_structured_trial(k, marked, seed, nullptr);
            out.space.qubits = 2 * k + 2;
            out.space.classical_bits =
                core::GroverStreamer::classical_bits_for(k);
            return out;
          },
          {.trials = trials, .seed_base = seed_base});
      const double wall = watch.seconds();

      // Instrumented rerun of trial 0 for the cost-model column.
      std::size_t peak_classes = 0;
      run_structured_trial(k, marked, seed_base, &peak_classes);

      const double closed =
          1.0 - grover::a3_rejection_probability(k, t);
      const auto ci = result.wilson();
      // Membership is exact (perfect completeness); intersecting rows must
      // bracket the closed form within the Wilson interval plus slack.
      const bool ok = t == 0 ? result.accepts == result.trials
                             : closed >= ci.lo - 0.05 && closed <= ci.hi + 0.05;
      all_hold = all_hold && ok;

      table.add_row({std::to_string(k), std::to_string(2 * k + 2),
                     "2^" + std::to_string(2 * k + 2), std::to_string(t),
                     std::to_string(result.trials),
                     util::fmt_f(result.rate(), 3), util::fmt_f(ci.lo, 3),
                     util::fmt_f(ci.hi, 3), util::fmt_f(closed, 3),
                     std::to_string(peak_classes), ok ? "yes" : "NO"});

      auto metric = metric_from_result(
          "k=" + std::to_string(k) + " t=" + std::to_string(t), k, result,
          wall);
      metric.extra.emplace_back("t", static_cast<double>(t));
      metric.extra.emplace_back("closed_form", closed);
      metric.extra.emplace_back("peak_classes",
                                static_cast<double>(peak_classes));
      metric.extra.emplace_back("log2_dense_amps",
                                static_cast<double>(2 * k + 2));
      rep.metric(metric);
    }
  }

  rep.table(table);
  rep.note(
      "\nScaling check: at k = 16 the dense register would hold 2^34 "
      "amplitudes (256 GiB); the structured backend needs a handful of "
      "amplitude classes (peak ~4), so each Grover iteration is O(1) and "
      "the measured rates still track the BBHT closed form.");
  return all_hold ? 0 : 1;
}

}  // namespace

void register_e19(Registry& r) {
  r.add({.id = "e19",
         .title = "large-k scaling (structured backend)",
         .claim = "Claim (scaling): the symmetry-aware backend extends the "
                  "measured A3 acceptance statistics to k >= 14 (beyond 30 "
                  "dense qubits), still matching the BBHT closed form.",
         .tags = {"scaling", "backend", "structured", "large-k"}},
        run);
}

}  // namespace qols::bench
