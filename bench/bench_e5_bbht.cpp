// E5 — the BBHT analysis inside Theorem 3.4's proof: the averaged rejection
// probability equals 1/2 - sin(4*2^k*theta)/(4*2^k*sin(2*theta)) and is
// >= 1/4 for every 1 <= t <= 2^{2k}.
//
// Three independent computations per row: the closed form, the explicit
// average of sin^2((2j+1)theta), and the state-vector simulator (procedure
// A3 run once per j with the measurement probability read off exactly).
#include <algorithm>
#include <string>

#include "experiments.hpp"
#include "qols/core/grover_streamer.hpp"
#include "qols/grover/analysis.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

// Averages A3's exact measurement probability over many coin seeds (which
// makes j approximately uniform over {0..2^k-1}).
double simulated_average(const lang::LDisjInstance& inst, int runs,
                         const std::string& backend) {
  double sum = 0.0;
  core::GroverStreamer::Options opts;
  opts.backend = backend;
  for (int i = 0; i < runs; ++i) {
    core::GroverStreamer a3{util::Rng(777 + i), opts};
    auto s = inst.stream();
    while (auto sym = s->next()) a3.feed(*sym);
    sum += a3.probability_output_zero();
  }
  return sum / runs;
}

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(5);
  const unsigned k = 3;  // simulator column at k=3: 8 j-values, m=64
  const std::uint64_t m = std::uint64_t{1} << (2 * k);
  const std::uint64_t rounds = std::uint64_t{1} << k;

  util::Table table({"t", "theta", "closed form", "explicit sum",
                     "simulated (A3)", ">= 1/4 ?"});
  bool all_hold = true;
  const int runs = cfg.trials_or(160);
  for (std::uint64_t t : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL, 32ULL, 48ULL, 64ULL}) {
    const double theta = grover::angle(t, m);
    const double closed = grover::average_success(rounds, theta);
    const double summed = grover::average_success_by_sum(rounds, theta);
    auto inst = lang::LDisjInstance::make_with_intersections(k, t, rng);
    const double sim = simulated_average(inst, runs, cfg.backend);
    const bool hold = closed >= 0.25 - 1e-12;
    all_hold = all_hold && hold;
    table.add_row({std::to_string(t), util::fmt_f(theta, 4),
                   util::fmt_f(closed, 4), util::fmt_f(summed, 4),
                   util::fmt_f(sim, 4), hold ? "yes" : "NO"});
    MetricRecord metric;
    metric.label = "k=3 t=" + std::to_string(t);
    metric.k = k;
    metric.trials = static_cast<std::uint64_t>(runs);
    metric.extra = {{"theta", theta},
                    {"closed_form", closed},
                    {"explicit_sum", summed},
                    {"simulated", sim}};
    rep.metric(metric);
  }
  rep.table(table, "k = 3 (N = 64 items, M = 8 rounds):");

  // Closed-form-only sweep at larger k (the simulator column is the same
  // physics; the bound must hold at every scale).
  util::Table wide({"k", "min over t of closed form", ">= 1/4 ?"});
  for (unsigned kk = 1; kk <= cfg.max_k_or(10); ++kk) {
    const std::uint64_t n = std::uint64_t{1} << (2 * kk);
    double worst = 1.0;
    for (std::uint64_t t = 1; t <= n; t = t < 16 ? t + 1 : t * 2) {
      worst = std::min(worst,
                       grover::average_success(std::uint64_t{1} << kk,
                                               grover::angle(t, n)));
    }
    const bool hold = worst >= 0.25 - 1e-12;
    all_hold = all_hold && hold;
    wide.add_row({std::to_string(kk), util::fmt_f(worst, 6),
                  hold ? "yes" : "NO"});
    MetricRecord metric;
    metric.label = "closed-form k=" + std::to_string(kk);
    metric.k = kk;
    metric.extra = {{"worst_closed_form", worst}};
    rep.metric(metric);
  }
  rep.note("");
  rep.table(wide, "Worst-case over t, closed form, k sweep:");
  rep.note(all_hold ? "\nAll bounds hold." : "\nBOUND VIOLATION!");
  return all_hold ? 0 : 1;
}

}  // namespace

void register_e5(Registry& r) {
  r.add({.id = "e5",
         .title = "BBHT averaged success probability",
         .claim = "Claim (Boyer-Brassard-Hoyer-Tapp / Section 3.2): averaging "
                  "over j in {0..2^k-1}, P[reject] = 1/2 - "
                  "sin(4*2^k*theta)/(4*2^k*sin 2theta) >= 1/4.",
         .tags = {"grover", "bbht", "analysis"}},
        run);
}

}  // namespace qols::bench
