// E9 — Theorem 3.6 machinery: the OPTM -> one-way protocol conversion.
//
// Messages are machine configurations at block boundaries; the table counts
// reachable configurations of three deterministic machines (exhaustively at
// k=1, sampled at k=2) and the implied per-message bits, against the
// theorem's floor c*2^{2k}/(3*2^k - 1) = Omega(2^k).
#include <iostream>

#include "bench_common.hpp"
#include "qols/reduction/config_census.hpp"
#include "qols/util/table.hpp"

namespace {

void survey_row(qols::util::Table& table, qols::reduction::EnumerableMachine& m,
                unsigned k, std::uint64_t pairs, qols::util::Rng& rng) {
  auto census = qols::reduction::survey_configurations(m, k, pairs, rng);
  std::uint64_t max_configs = 0;
  for (auto c : census.distinct_configs) max_configs = std::max(max_configs, c);
  table.add_row({std::to_string(k), m.name(),
                 census.exhaustive ? "exhaustive" : "sampled",
                 qols::util::fmt_g(census.inputs_surveyed),
                 qols::util::fmt_g(max_configs),
                 std::to_string(census.max_bits),
                 qols::util::fmt_g(census.total_bits)});
}

}  // namespace

int main() {
  using namespace qols;
  bench::header(
      "E9: configuration census (Theorem 3.6 reduction)",
      "Machinery: an OPTM using s space yields a one-way protocol whose "
      "messages are configurations (Fact 2.2); R(DISJ) = Omega(m) then "
      "forces some message to Omega(2^k) bits.");

  util::Rng rng(9);
  util::Table table({"k", "machine", "survey", "input pairs",
                     "max |C_i|", "max message bits", "protocol total bits"});
  for (unsigned k = 1; k <= 2; ++k) {
    const std::uint64_t pairs = k == 1 ? (1ULL << 16) : 4000;
    reduction::DetFingerprintMachine fp(k, 7);
    reduction::DetBlockMachine block(k);
    reduction::DetFullMachine full(k);
    survey_row(table, fp, k, pairs, rng);
    survey_row(table, block, k, pairs, rng);
    survey_row(table, full, k, pairs, rng);
  }
  table.print(std::cout);

  util::Table floor({"k", "Thm 3.6 floor (c=1) bits", "2^k"});
  for (unsigned k = 1; k <= 10; ++k) {
    floor.add_row({std::to_string(k),
                   util::fmt_f(reduction::theorem36_min_message_bits(k, 1.0), 1),
                   util::fmt_g(std::uint64_t{1} << k)});
  }
  std::cout << "\n";
  floor.print(std::cout, "Lower-bound floor vs 2^k (the Omega(n^{1/3}) line):");
  std::cout
      << "\nReading: the block machine's max message equals its 2^k-bit "
         "buffer (sitting ON the floor - it is optimal); full storage pays "
         "2^{2k}; the fingerprint machine undercuts the floor only because "
         "it does not decide disjointness. No deciding machine can.\n";
  return 0;
}
