// E9 — Theorem 3.6 machinery: the OPTM -> one-way protocol conversion.
//
// Messages are machine configurations at block boundaries; the table counts
// reachable configurations of three deterministic machines (exhaustively at
// k=1, sampled at k=2) and the implied per-message bits, against the
// theorem's floor c*2^{2k}/(3*2^k - 1) = Omega(2^k).
#include <algorithm>
#include <string>

#include "experiments.hpp"
#include "qols/reduction/config_census.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

void survey_row(Reporter& rep, util::Table& table,
                reduction::EnumerableMachine& m, unsigned k,
                std::uint64_t pairs, util::Rng& rng) {
  auto census = reduction::survey_configurations(m, k, pairs, rng);
  std::uint64_t max_configs = 0;
  for (auto c : census.distinct_configs) max_configs = std::max(max_configs, c);
  table.add_row({std::to_string(k), m.name(),
                 census.exhaustive ? "exhaustive" : "sampled",
                 util::fmt_g(census.inputs_surveyed), util::fmt_g(max_configs),
                 std::to_string(census.max_bits),
                 util::fmt_g(census.total_bits)});
  MetricRecord metric;
  metric.label = "k=" + std::to_string(k) + " " + m.name();
  metric.k = k;
  metric.extra = {{"inputs_surveyed",
                   static_cast<double>(census.inputs_surveyed)},
                  {"max_configs", static_cast<double>(max_configs)},
                  {"max_message_bits", static_cast<double>(census.max_bits)},
                  {"protocol_total_bits",
                   static_cast<double>(census.total_bits)}};
  rep.metric(metric);
}

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(9);
  util::Table table({"k", "machine", "survey", "input pairs", "max |C_i|",
                     "max message bits", "protocol total bits"});
  for (unsigned k = 1; k <= std::min(2u, cfg.max_k_or(2)); ++k) {
    const std::uint64_t pairs = k == 1 ? (1ULL << 16) : 4000;
    reduction::DetFingerprintMachine fp(k, 7);
    reduction::DetBlockMachine block(k);
    reduction::DetFullMachine full(k);
    survey_row(rep, table, fp, k, pairs, rng);
    survey_row(rep, table, block, k, pairs, rng);
    survey_row(rep, table, full, k, pairs, rng);
  }
  rep.table(table);

  util::Table floor({"k", "Thm 3.6 floor (c=1) bits", "2^k"});
  for (unsigned k = 1; k <= 10; ++k) {
    floor.add_row(
        {std::to_string(k),
         util::fmt_f(reduction::theorem36_min_message_bits(k, 1.0), 1),
         util::fmt_g(std::uint64_t{1} << k)});
  }
  rep.note("");
  rep.table(floor, "Lower-bound floor vs 2^k (the Omega(n^{1/3}) line):");
  rep.note(
      "\nReading: the block machine's max message equals its 2^k-bit "
      "buffer (sitting ON the floor - it is optimal); full storage pays "
      "2^{2k}; the fingerprint machine undercuts the floor only because "
      "it does not decide disjointness. No deciding machine can.");
  return 0;
}

}  // namespace

void register_e9(Registry& r) {
  r.add({.id = "e9",
         .title = "configuration census (Theorem 3.6 reduction)",
         .claim = "Machinery: an OPTM using s space yields a one-way protocol "
                  "whose messages are configurations (Fact 2.2); R(DISJ) = "
                  "Omega(m) then forces some message to Omega(2^k) bits.",
         .tags = {"reduction", "census", "theorem-3.6"}},
        run);
}

}  // namespace qols::bench
