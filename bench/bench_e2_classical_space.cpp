// E2 — Proposition 3.7: the optimal classical machine uses Theta(n^{1/3}).
//
// Sweeps k over the block machine (Prop 3.7) and the full-storage baseline.
// "full run" rows verify decisions end to end; "probe" rows (see E1) read
// the space report after parsing the prefix only. The block machine's space
// must track n^{1/3} = Theta(2^k); full storage tracks n^{2/3} = Theta(2^{2k}).
#include <cmath>
#include <string>

#include "experiments.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

double word_length(unsigned k) {
  return k + 1.0 + std::pow(2.0, k) * 3.0 * (std::pow(2.0, 2.0 * k) + 1.0);
}

void probe_space(machine::OnlineRecognizer& rec, unsigned k) {
  rec.reset(k);
  for (unsigned i = 0; i < k; ++i) rec.feed(stream::Symbol::kOne);
  rec.feed(stream::Symbol::kSep);
}

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(2);
  util::Table table({"k", "n", "mode", "block bits", "block/n^(1/3)",
                     "full bits", "full/n^(2/3)"});
  const unsigned kmax_run = cfg.max_k_or(7);
  for (unsigned k = 1; k <= 12; ++k) {
    core::ClassicalBlockRecognizer block(k);
    core::ClassicalFullRecognizer full(k);
    std::string mode;
    if (k <= kmax_run && k <= 10) {
      auto inst = lang::LDisjInstance::make_disjoint(k, rng);
      {
        auto s = inst.stream();
        if (!machine::run_stream(*s, block)) {
          rep.note("block machine rejected a member at k=" + std::to_string(k));
          return 1;
        }
      }
      {
        auto s = inst.stream();
        if (!machine::run_stream(*s, full)) {
          rep.note("full machine rejected a member at k=" + std::to_string(k));
          return 1;
        }
      }
      mode = "full run";
    } else {
      probe_space(block, k);
      probe_space(full, k);
      mode = "probe";
    }
    const double n = word_length(k);
    const double n13 = std::cbrt(n);
    const double n23 = std::pow(n, 2.0 / 3.0);
    const auto block_bits = block.space_used().classical_bits;
    const auto full_bits = full.space_used().classical_bits;
    table.add_row(
        {std::to_string(k), util::fmt_g(static_cast<std::uint64_t>(n)), mode,
         util::fmt_g(block_bits), util::fmt_f(block_bits / n13, 3),
         util::fmt_g(full_bits), util::fmt_f(full_bits / n23, 3)});
    MetricRecord m;
    m.label = "k=" + std::to_string(k);
    m.k = k;
    m.classical_bits = block_bits;
    m.extra = {{"full_bits", static_cast<double>(full_bits)},
               {"block_over_n13", block_bits / n13},
               {"full_over_n23", full_bits / n23}};
    rep.metric(m);
  }
  rep.table(table);
  rep.note(
      "\nShape check: block/n^(1/3) and full/n^(2/3) approach "
      "constants (~0.7 and ~0.48) — the Theta() claims of Prop 3.7.");
  return 0;
}

}  // namespace

void register_e2(Registry& r) {
  r.add({.id = "e2",
         .title = "classical online space",
         .claim = "Claim (Prop 3.7): the block-streaming machine decides "
                  "L_DISJ in O(n^{1/3}) bits; full storage needs n^{2/3}.",
         .tags = {"space", "classical", "proposition-3.7"}},
        run);
}

}  // namespace qols::bench
