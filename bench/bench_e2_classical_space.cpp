// E2 — Proposition 3.7: the optimal classical machine uses Theta(n^{1/3}).
//
// Sweeps k over the block machine (Prop 3.7) and the full-storage baseline.
// "full run" rows verify decisions end to end; "probe" rows (see E1) read
// the space report after parsing the prefix only. The block machine's space
// must track n^{1/3} = Theta(2^k); full storage tracks n^{2/3} = Theta(2^{2k}).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/table.hpp"

namespace {

double word_length(unsigned k) {
  return k + 1.0 + std::pow(2.0, k) * 3.0 * (std::pow(2.0, 2.0 * k) + 1.0);
}

qols::machine::SpaceReport probe_space(qols::machine::OnlineRecognizer& rec,
                                       unsigned k) {
  rec.reset(k);
  for (unsigned i = 0; i < k; ++i) rec.feed(qols::stream::Symbol::kOne);
  rec.feed(qols::stream::Symbol::kSep);
  return rec.space_used();
}

}  // namespace

int main() {
  using namespace qols;
  bench::header("E2: classical online space",
                "Claim (Prop 3.7): the block-streaming machine decides "
                "L_DISJ in O(n^{1/3}) bits; full storage needs n^{2/3}.");

  util::Rng rng(2);
  util::Table table({"k", "n", "mode", "block bits", "block/n^(1/3)",
                     "full bits", "full/n^(2/3)"});
  const unsigned kmax_run = bench::max_k(7);
  for (unsigned k = 1; k <= 12; ++k) {
    core::ClassicalBlockRecognizer block(k);
    core::ClassicalFullRecognizer full(k);
    std::string mode;
    if (k <= kmax_run && k <= 10) {
      auto inst = lang::LDisjInstance::make_disjoint(k, rng);
      {
        auto s = inst.stream();
        if (!machine::run_stream(*s, block)) {
          std::cerr << "block machine rejected a member at k=" << k << "\n";
          return 1;
        }
      }
      {
        auto s = inst.stream();
        if (!machine::run_stream(*s, full)) {
          std::cerr << "full machine rejected a member at k=" << k << "\n";
          return 1;
        }
      }
      mode = "full run";
    } else {
      probe_space(block, k);
      probe_space(full, k);
      mode = "probe";
    }
    const double n = word_length(k);
    const double n13 = std::cbrt(n);
    const double n23 = std::pow(n, 2.0 / 3.0);
    table.add_row(
        {std::to_string(k), util::fmt_g(static_cast<std::uint64_t>(n)), mode,
         util::fmt_g(block.space_used().classical_bits),
         util::fmt_f(block.space_used().classical_bits / n13, 3),
         util::fmt_g(full.space_used().classical_bits),
         util::fmt_f(full.space_used().classical_bits / n23, 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: block/n^(1/3) and full/n^(2/3) approach "
               "constants (~0.7 and ~0.48) — the Theta() claims of Prop 3.7.\n";
  return 0;
}
