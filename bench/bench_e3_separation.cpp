// E3 — the headline result: exponential separation of quantum and classical
// online space (Theorem 3.4 + Theorem 3.6 + Proposition 3.7).
//
// One table: per k, the quantum machine's measured total space, the optimal
// classical machine's measured space, the Omega(n^{1/3}) classical lower
// bound line, and the classical/quantum ratio. The ratio must grow like
// 2^k / k — i.e. exponentially in the quantum machine's own space, which is
// exactly what "exponential separation" means. Rows beyond the full-run
// range use the prefix probe of E1/E2 (space is fixed once 1^k# is parsed).
#include <cmath>
#include <string>

#include "experiments.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/reduction/config_census.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

double word_length(unsigned k) {
  return k + 1.0 + std::pow(2.0, k) * 3.0 * (std::pow(2.0, 2.0 * k) + 1.0);
}

void probe(machine::OnlineRecognizer& rec, unsigned k) {
  rec.reset(k);
  for (unsigned i = 0; i < k; ++i) rec.feed(stream::Symbol::kOne);
  rec.feed(stream::Symbol::kSep);
}

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(3);
  util::Table table({"k", "n", "mode", "quantum bits+qubits",
                     "classical block bits", "Omega(n^{1/3}) floor",
                     "classical/quantum"});
  const unsigned kmax_run = cfg.max_k_or(7);
  double last_ratio = 0.0;
  for (unsigned k = 1; k <= 14; ++k) {
    core::QuantumOnlineRecognizer::Options qopts;
    std::string mode;
    machine::SpaceReport qspace, cspace;
    if (k <= kmax_run && k <= 10) {
      auto inst = lang::LDisjInstance::make_disjoint(k, rng);
      qopts.a3.backend = cfg.backend;
      qopts.a3.precision = cfg.precision();
      core::QuantumOnlineRecognizer quantum(k, qopts);
      {
        auto s = inst.stream();
        machine::run_stream(*s, quantum);
      }
      core::ClassicalBlockRecognizer block(k);
      {
        auto s = inst.stream();
        machine::run_stream(*s, block);
      }
      qspace = quantum.space_used();
      cspace = block.space_used();
      mode = "full run";
    } else {
      qopts.a3.simulate = false;
      qopts.a3.max_sim_k = 15;
      core::QuantumOnlineRecognizer quantum(k, qopts);
      probe(quantum, k);
      core::ClassicalBlockRecognizer block(k);
      probe(block, k);
      qspace = quantum.space_used();
      cspace = block.space_used();
      mode = "probe";
    }
    const double q = static_cast<double>(qspace.total());
    const double c = static_cast<double>(cspace.classical_bits);
    const double floor = reduction::theorem36_min_message_bits(k, 1.0);
    last_ratio = c / q;
    table.add_row({std::to_string(k),
                   util::fmt_g(static_cast<std::uint64_t>(word_length(k))),
                   mode, std::to_string(qspace.total()),
                   util::fmt_g(cspace.classical_bits), util::fmt_f(floor, 1),
                   util::fmt_f(last_ratio, 2)});
    MetricRecord m;
    m.label = "k=" + std::to_string(k);
    m.k = k;
    m.classical_bits = qspace.classical_bits;
    m.qubits = qspace.qubits;
    m.extra = {{"quantum_total_bits", q},
               {"classical_block_bits", c},
               {"floor_bits", floor},
               {"ratio", last_ratio}};
    rep.metric(m);
  }
  rep.table(table);
  rep.note(
      "\nShape check: until ~k=6 the O(log n) validation overhead (A1+A2, "
      "shared by both machines) hides the gap; beyond it the classical "
      "machine's 2^k-bit buffer takes over and the ratio doubles per k "
      "step — the exponential separation. Final ratio at k=14: " +
      util::fmt_f(last_ratio, 1) + "x, and unbounded as k grows (2^k/k).");
  return 0;
}

}  // namespace

void register_e3(Registry& r) {
  r.add({.id = "e3",
         .title = "the exponential separation",
         .claim = "Claim: quantum total space Theta(log n) vs classical "
                  "Omega(n^{1/3}) (lower bound, Thm 3.6) and O(n^{1/3}) "
                  "(matching machine, Prop 3.7).",
         .tags = {"space", "separation", "headline", "theorem-3.6"}},
        run);
}

}  // namespace qols::bench
