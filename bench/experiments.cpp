#include "experiments.hpp"

#include "registry.hpp"

namespace qols::bench {

void register_all_experiments(Registry& r) {
  register_e1(r);
  register_e2(r);
  register_e3(r);
  register_e4(r);
  register_e5(r);
  register_e6(r);
  register_e7(r);
  register_e8(r);
  register_e9(r);
  register_e10(r);
  register_e11(r);
  register_e12(r);
  register_e13(r);
  register_e14(r);
  register_e15(r);
  register_e16(r);
  register_e17(r);
  register_e18(r);
  register_e19(r);
  register_e20(r);
  register_e21(r);
  register_e22(r);
  register_e23(r);
  register_e24(r);
  register_e25(r);
  register_e26(r);
}

}  // namespace qols::bench
