// E25 — network server throughput: the wire protocol + epoll front end
// (PR 9) serving a full load-generator run, with every verdict verified
// against direct RecognizerService runs.
//
// Setup: a Server (classical block machine, loopback, ephemeral port) on a
// worker thread; run_load() drives it exactly the way qols_load does —
// `connections` TCP connections, `sessions` wire sessions all OPEN before
// the first FINISH (so the concurrency figure is real, not a high-water
// guess), ragged FEED chunks, bounded FINISH windows for honest latency.
//
// Two legs:
//   - copied feeds: FEED payloads go through RecognizerService::feed
//     (buffered, batched across the pool by flush_threshold);
//   - borrowed feeds: RecognizerService::feed_borrowed (zero-copy, inline),
//     a smaller fleet — the interesting number is the per-symbol path, not
//     the fleet size.
//
// Verification: the load words and recognizer seeds are deterministic
// (LoadOptions::seed), so every expected verdict is reproducible with one
// direct run per (word, seed) pair — a few hundred runs memoized against
// ten thousand wire sessions, compared bit for bit: accepted,
// fully_simulated, classical_bits, qubits.
//
// Claims (NDEBUG only; unoptimized builds report without enforcing):
//   - every wire verdict matches its direct-run reference exactly;
//   - zero ERROR frames; the drain abandons zero sessions;
//   - >= 10^4 sessions held open concurrently on the copied-feed leg;
//   - sessions/sec and symbols/sec are nonzero (the tracked series).
#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "experiments.hpp"
#include "qols/server/load_client.hpp"
#include "qols/server/server.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

using server::LoadOptions;
using server::LoadReport;
using server::Server;
using service::RecognizerKind;
using service::RecognizerService;
using stream::Symbol;

/// Expected verdict for one (word, seed) pair, via a direct service run —
/// the same engine the server fronts, minus every wire byte.
struct Reference {
  bool accepted = false;
  bool fully_simulated = true;
  std::uint64_t classical_bits = 0;
  std::uint64_t qubits = 0;
};

Reference direct_reference(const std::vector<Symbol>& word,
                           std::uint64_t seed) {
  RecognizerService::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  RecognizerService svc(cfg);
  const auto id = svc.open(seed);
  svc.feed(id, word);
  const auto v = svc.finish(id);
  return {v.accepted, v.fully_simulated, v.space.classical_bits,
          v.space.qubits};
}

struct Leg {
  LoadReport report;
  std::uint64_t verdict_mismatches = 0;
  std::uint64_t sessions_abandoned = 0;
};

/// One server lifetime: bring it up, run the load, drain it, verify every
/// collected outcome against the memoized references.
Leg run_leg(const LoadOptions& load_template, bool borrowed_feeds,
            const server::LoadWords& words) {
  Server::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.borrowed_feeds = borrowed_feeds;
  cfg.max_sessions = load_template.sessions + 16;
  Server srv(cfg);
  std::thread loop([&srv] { srv.run(); });

  LoadOptions opts = load_template;
  opts.port = srv.port();
  opts.collect_outcomes = true;

  Leg leg;
  leg.report = server::run_load(opts);
  srv.shutdown();
  loop.join();
  leg.sessions_abandoned = srv.counters().sessions_abandoned;

  std::map<std::pair<bool, std::uint64_t>, Reference> memo;
  for (const auto& outcome : leg.report.outcomes) {
    const bool odd = outcome.session_index % 2 != 0;
    const std::uint64_t seed = server::seed_for_session(opts,
                                                        outcome.session_index);
    auto it = memo.find({odd, seed});
    if (it == memo.end()) {
      it = memo.emplace(std::pair{odd, seed},
                        direct_reference(
                            server::word_for_session(words,
                                                     outcome.session_index),
                            seed))
               .first;
    }
    const Reference& ref = it->second;
    const auto& v = outcome.verdict;
    if (v.accepted != ref.accepted ||
        v.fully_simulated != ref.fully_simulated ||
        v.classical_bits != ref.classical_bits || v.qubits != ref.qubits) {
      ++leg.verdict_mismatches;
    }
  }
  return leg;
}

int run(Reporter& rep, const RunConfig& cfg) {
  LoadOptions base;
  base.k = 3;
  base.connections = 8;
  base.sessions = 10'000;
  base.seed = 25;
  // --trials scales the fleet (floor 1000 keeps the verify meaningful).
  if (cfg.trials) {
    base.sessions = std::max<std::uint64_t>(
        1000, static_cast<std::uint64_t>(*cfg.trials));
  }
  const auto words = server::make_load_words(base.k, base.seed);

  const Leg copied = run_leg(base, /*borrowed_feeds=*/false, words);

  LoadOptions small = base;
  small.sessions = std::max<std::uint64_t>(1000, base.sessions / 5);
  small.connections = 4;
  const Leg borrowed = run_leg(small, /*borrowed_feeds=*/true, words);

  util::Table table({"leg", "sessions", "conns", "sessions/s", "symbols/s",
                     "p50 ms", "p99 ms", "errors", "mismatches"});
  const auto add_leg = [&table](const char* name, const LoadOptions& o,
                                const Leg& leg) {
    const LoadReport& r = leg.report;
    table.add_row({name, util::fmt_g(r.sessions),
                   std::to_string(o.connections),
                   util::fmt_g(static_cast<std::uint64_t>(
                       r.sessions_per_second)),
                   util::fmt_g(static_cast<std::uint64_t>(
                       r.symbols_per_second)),
                   util::fmt_f(r.p50_finish_ms, 3),
                   util::fmt_f(r.p99_finish_ms, 3), util::fmt_g(r.errors),
                   util::fmt_g(leg.verdict_mismatches)});
  };
  add_leg("copied feeds", base, copied);
  add_leg("borrowed feeds", small, borrowed);
  rep.table(table);

  const bool verdicts_ok =
      copied.verdict_mismatches == 0 && borrowed.verdict_mismatches == 0 &&
      copied.report.sessions == base.sessions &&
      borrowed.report.sessions == small.sessions;
  const bool clean = copied.report.errors == 0 &&
                     borrowed.report.errors == 0 &&
                     copied.sessions_abandoned == 0 &&
                     borrowed.sessions_abandoned == 0;
#ifdef NDEBUG
  const bool optimized = true;
#else
  const bool optimized = false;
#endif
  const bool concurrency_ok =
      !optimized || base.sessions < 10'000 ||
      copied.report.max_concurrent_sessions >= 10'000;
  const bool throughput_ok = !optimized ||
                             (copied.report.sessions_per_second > 0.0 &&
                              copied.report.symbols_per_second > 0.0);

  MetricRecord m;
  m.label = "server-throughput";
  m.k = static_cast<std::int64_t>(base.k);
  m.trials = base.sessions;
  m.wall_seconds = copied.report.wall_seconds;
  m.extra.emplace_back("sessions_per_sec", copied.report.sessions_per_second);
  m.extra.emplace_back("symbols_per_sec", copied.report.symbols_per_second);
  m.extra.emplace_back("p50_finish_ms", copied.report.p50_finish_ms);
  m.extra.emplace_back("p99_finish_ms", copied.report.p99_finish_ms);
  m.extra.emplace_back("max_concurrent_sessions",
                       static_cast<double>(
                           copied.report.max_concurrent_sessions));
  m.extra.emplace_back("borrowed_sessions_per_sec",
                       borrowed.report.sessions_per_second);
  m.extra.emplace_back("borrowed_symbols_per_sec",
                       borrowed.report.symbols_per_second);
  m.extra.emplace_back("verdicts_ok", verdicts_ok && clean ? 1.0 : 0.0);
  rep.metric(m);

  if (!verdicts_ok) {
    rep.note("WIRE VERDICTS DIVERGED from direct service runs — the "
             "framing-invariance contract is broken.");
  }
  if (!clean) {
    rep.note("ERROR frames or abandoned sessions on a clean load — the "
             "drain/session accounting is broken.");
  }
  rep.note("Verified " + util::fmt_g(copied.report.sessions +
                                     borrowed.report.sessions) +
           " wire verdicts bit-for-bit against direct runs; " +
           util::fmt_g(copied.report.max_concurrent_sessions) +
           " sessions held open concurrently on the copied-feed leg." +
           std::string(optimized ? ""
                                 : " (claims not enforced on an unoptimized "
                                   "build)"));
  rep.note(
      "\nReading: every byte of every session crossed a real TCP socket in "
      "ragged frames, and every verdict still matches a socketless run of "
      "the same engine — the wire layer adds transport, not semantics. "
      "Latency percentiles come from bounded FINISH windows, so they "
      "measure the server, not the loopback buffer.");
  return verdicts_ok && clean && concurrency_ok && throughput_ok ? 0 : 1;
}

}  // namespace

void register_e25(Registry& r) {
  r.add({.id = "e25",
         .title = "network server throughput (wire protocol, epoll loop)",
         .claim = "Claim (engineering): the socket front end serves >= 10^4 "
                  "concurrent wire sessions with every verdict bit-identical "
                  "to direct RecognizerService runs, zero error frames, and "
                  "a drain that abandons nothing.",
         .tags = {"server", "wire", "throughput", "service"}},
        run);
}

}  // namespace qols::bench
