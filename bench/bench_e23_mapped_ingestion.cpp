// E23 — mapped ingestion: zero-copy mmap transport vs buffered file reads,
// alone and under the serving layer with mid-stream eviction.
//
// E20 removed the per-symbol virtual-call tax; the transport that remained
// (FileStream) still pays one read() copy into a char buffer plus a branchy
// per-character conversion, then a second copy into the Symbol scratch that
// feed_chunk consumes. MappedFileStream deletes all of it: the word is
// mmap'd MAP_PRIVATE, characters are rewritten into Symbol values in place
// (one table lookup per byte, once), and run_stream borrows the converted
// pages directly through view_chunk — the recognizer reads the page cache.
// Pages behind the cursor go back to the OS with MADV_DONTNEED, so a word
// far larger than memory streams in a bounded resident set, exactly the
// paper's "input too large to store" regime.
//
//   - block rows: the same multi-hundred-MB member word (k = 9 by default,
//     ~4*10^8 symbols) through the classical block machine, buffered
//     (FileStream) vs mapped (MappedFileStream). Decisions and space must
//     agree exactly; the claim is mapped >= 1.5x buffered at k >= 8 in
//     optimized builds.
//   - service rows: 64 sessions over member/intersecting k = 6 words served
//     round-robin, buffered (feed, copies into the session buffer) vs
//     mapped (view_chunk -> feed_borrowed, zero copies). Half the sessions
//     are evicted to disk mid-stream and revived transparently on their
//     next chunk; every verdict must equal the session's single-stream
//     run_stream outcome bit for bit.
//
// --max-k rescales the block word (claim enforced only at k >= 8, where the
// word is large enough that transport dominates); --trials is unused (both
// workloads are fixed-size, best-of-two timed passes).
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "experiments.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/stream/file_stream.hpp"
#include "qols/util/rng.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

using stream::Symbol;

struct Pass {
  bool accepted = false;
  std::uint64_t classical_bits = 0;
  double seconds = 0.0;
};

/// One full ingestion of the word file through a fresh block recognizer.
/// Stream construction is timed: opening/mapping the file is part of what
/// each transport costs.
template <typename StreamT, typename... Args>
Pass drive_file(std::uint64_t seed, const std::string& path, Args&&... args) {
  util::Stopwatch watch;
  StreamT s(path, std::forward<Args>(args)...);
  core::ClassicalBlockRecognizer rec(seed);
  Pass pass;
  pass.accepted = machine::run_stream(s, rec);
  pass.classical_bits = rec.space_used().classical_bits;
  pass.seconds = watch.seconds();
  return pass;
}

template <typename StreamT, typename... Args>
Pass best_of_two(std::uint64_t seed, const std::string& path, Args&&... args) {
  Pass a = drive_file<StreamT>(seed, path, args...);
  const Pass b = drive_file<StreamT>(seed, path, args...);
  // Decisions are seed-pure; a disagreement between passes is itself a bug,
  // surfaced as NO in the agreement column via the caller's cross-check.
  if (b.accepted != a.accepted) a.classical_bits = ~a.classical_bits;
  a.seconds = std::min(a.seconds, b.seconds);
  return a;
}

double rate_of(std::uint64_t symbols, double seconds) {
  return seconds > 0.0 ? static_cast<double>(symbols) / seconds : 0.0;
}

/// Serves `num_sessions` sessions round-robin from per-session streams over
/// the two word files, evicting the first half mid-stream. `mapped` selects
/// the zero-copy path (view_chunk + feed_borrowed) vs the buffered one
/// (next_chunk into scratch + feed). Returns per-session verdicts.
struct ServedRun {
  std::vector<service::RecognizerService::Verdict> verdicts;
  std::uint64_t symbols = 0;
  double busy_seconds = 0.0;
  std::size_t evictions = 0;
};

ServedRun serve_sessions(const std::string& member_path,
                         const std::string& intersecting_path,
                         std::size_t num_sessions, bool mapped) {
  const std::size_t chunk = 4096;
  service::RecognizerService svc(
      {.spec = {.kind = service::RecognizerKind::kClassicalBlock}});
  std::vector<service::RecognizerService::SessionId> ids;
  std::vector<std::unique_ptr<stream::SymbolStream>> streams;
  for (std::size_t s = 0; s < num_sessions; ++s) {
    ids.push_back(svc.open(23'000 + s));
    const std::string& path =
        s % 2 == 0 ? member_path : intersecting_path;
    if (mapped) {
      streams.push_back(std::make_unique<stream::MappedFileStream>(path));
    } else {
      streams.push_back(std::make_unique<stream::FileStream>(path, chunk));
    }
  }

  ServedRun run;
  std::vector<Symbol> scratch(chunk);
  std::size_t lap = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t s = 0; s < num_sessions; ++s) {
      if (mapped) {
        const auto view = streams[s]->view_chunk(chunk);
        if (!view || view->empty()) continue;
        svc.feed_borrowed(ids[s], *view);
        run.symbols += view->size();
      } else {
        const std::size_t n = streams[s]->next_chunk(scratch);
        if (n == 0) continue;
        svc.feed(ids[s], std::span<const Symbol>(scratch.data(), n));
        run.symbols += n;
      }
      progressed = true;
    }
    // Mid-stream spill: on one early lap, freeze the first half of the
    // fleet to disk. Their next chunk revives them transparently, so the
    // interleaving continues as if nothing happened — the verdict check
    // below proves it.
    if (++lap == 8) {
      for (std::size_t s = 0; s < num_sessions / 2; ++s) {
        svc.evict(ids[s]);
        ++run.evictions;
      }
    }
  }
  for (std::size_t s = 0; s < num_sessions; ++s) {
    run.verdicts.push_back(svc.finish(ids[s]));
  }
  run.busy_seconds = svc.stats().busy_seconds;
  return run;
}

int run(Reporter& rep, const RunConfig& cfg) {
  bool all_hold = true;
  util::Table table({"row", "k", "symbols", "transport", "wall s",
                     "symbols/sec", "speedup", "ok?"});
  const auto fmt_rate = [](double r) {
    return util::fmt_g(static_cast<std::uint64_t>(r));
  };

  const auto tmp = std::filesystem::temp_directory_path() /
                   ("qols-e23-" + std::to_string(::getpid()));
  std::filesystem::create_directories(tmp);

  // --- Block rows: one large word, buffered vs mapped. -------------------
  const unsigned k = std::min(cfg.max_k_or(9), 10u);
  const std::string big_path = (tmp / "big.word").string();
  std::uint64_t n = 0;
  {
    util::Rng rng(23'000 + k);
    const auto inst = lang::LDisjInstance::make_disjoint(k, rng);
    auto s = inst.stream();
    n = stream::write_stream_to_file(*s, big_path);
  }

  const Pass buffered =
      best_of_two<stream::FileStream>(800 + k, big_path, std::size_t{1} << 16);
  const Pass mapped = best_of_two<stream::MappedFileStream>(800 + k, big_path);
  const bool agree = buffered.accepted && mapped.accepted &&
                     buffered.classical_bits == mapped.classical_bits;
  all_hold = all_hold && agree;
  const double speedup =
      mapped.seconds > 0.0 ? buffered.seconds / mapped.seconds : 0.0;

  table.add_row({"block", std::to_string(k), util::fmt_g(n), "buffered",
                 util::fmt_f(buffered.seconds, 3),
                 fmt_rate(rate_of(n, buffered.seconds)), "1.00",
                 agree ? "yes" : "NO"});
  table.add_row({"block", std::to_string(k), util::fmt_g(n), "mapped",
                 util::fmt_f(mapped.seconds, 3),
                 fmt_rate(rate_of(n, mapped.seconds)),
                 util::fmt_f(speedup, 2), agree ? "yes" : "NO"});

  {
    MetricRecord m;
    m.label = "block k=" + std::to_string(k) + " buffered";
    m.k = k;
    m.wall_seconds = buffered.seconds;
    m.extra.emplace_back("symbols_per_sec", rate_of(n, buffered.seconds));
    rep.metric(m);
  }
  {
    MetricRecord m;
    m.label = "block k=" + std::to_string(k) + " mapped";
    m.k = k;
    m.wall_seconds = mapped.seconds;
    m.extra.emplace_back("symbols_per_sec", rate_of(n, mapped.seconds));
    m.extra.emplace_back("speedup_vs_buffered", speedup);
    m.extra.emplace_back("transports_agree", agree ? 1.0 : 0.0);
    rep.metric(m);
  }
#ifdef NDEBUG
  // The headline claim is about optimized builds and transport-dominated
  // word sizes; tiny words (k < 8) time the recognizer, not the transport.
  if (k >= 8 && speedup < 1.5) {
    rep.note("CLAIM FAILED: mapped/buffered speedup at k=" +
             std::to_string(k) + " is " + util::fmt_f(speedup, 2) +
             "x, expected >= 1.5x");
    all_hold = false;
  }
#endif

  // --- Service rows: 64 sessions, mid-stream evict/revive. ---------------
  {
    const unsigned sk = 6;
    const std::size_t num_sessions = 64;
    const std::string member_path = (tmp / "member.word").string();
    const std::string intersecting_path = (tmp / "intersecting.word").string();
    util::Rng rng(23'100);
    const auto member = lang::LDisjInstance::make_disjoint(sk, rng);
    const auto crossing =
        lang::LDisjInstance::make_with_intersections(sk, 1, rng);
    {
      auto ms = member.stream();
      stream::write_stream_to_file(*ms, member_path);
      auto cs = crossing.stream();
      stream::write_stream_to_file(*cs, intersecting_path);
    }

    // Single-stream references: every session must reproduce one of these
    // outcomes exactly, eviction or not.
    std::vector<Pass> refs;
    for (std::size_t s = 0; s < num_sessions; ++s) {
      refs.push_back(drive_file<stream::MappedFileStream>(
          23'000 + s, s % 2 == 0 ? member_path : intersecting_path));
    }

    for (const bool use_mapped : {false, true}) {
      const ServedRun served = serve_sessions(member_path, intersecting_path,
                                              num_sessions, use_mapped);
      bool verdicts_ok = served.evictions >= num_sessions / 2;
      for (std::size_t s = 0; s < num_sessions; ++s) {
        if (served.verdicts[s].accepted != refs[s].accepted ||
            served.verdicts[s].space.classical_bits !=
                refs[s].classical_bits) {
          verdicts_ok = false;
        }
      }
      all_hold = all_hold && verdicts_ok;
      const char* transport = use_mapped ? "mapped" : "buffered";
      table.add_row({"service x" + std::to_string(num_sessions),
                     std::to_string(sk), util::fmt_g(served.symbols),
                     transport, util::fmt_f(served.busy_seconds, 3),
                     fmt_rate(rate_of(served.symbols, served.busy_seconds)),
                     "-", verdicts_ok ? "yes" : "NO"});
      MetricRecord m;
      m.label = std::string("service x64 ") + transport;
      m.k = sk;
      m.wall_seconds = served.busy_seconds;
      m.extra.emplace_back("symbols_per_sec",
                           rate_of(served.symbols, served.busy_seconds));
      m.extra.emplace_back("sessions", static_cast<double>(num_sessions));
      m.extra.emplace_back("evicted_sessions",
                           static_cast<double>(served.evictions));
      m.extra.emplace_back("verdicts_ok", verdicts_ok ? 1.0 : 0.0);
      rep.metric(m);
    }
  }

  std::error_code ec;
  std::filesystem::remove_all(tmp, ec);

  rep.table(table);
  rep.note(
      "\nReading: the mapped transport converts each byte once, in place, "
      "and lends the recognizer the page cache itself — no read() copy, no "
      "scratch buffer, and MADV_DONTNEED keeps the resident set bounded. "
      "The service rows stream the same pages through feed_borrowed while "
      "half the fleet is spilled to disk and revived mid-word; verdicts "
      "stay bit-identical to single-stream runs.");
  return all_hold ? 0 : 1;
}

}  // namespace

void register_e23(Registry& r) {
  r.add({.id = "e23",
         .title = "mapped ingestion (zero-copy mmap + snapshot eviction)",
         .claim = "Claim (engineering): mmap'd zero-copy ingestion is >= "
                  "1.5x buffered file reads on the block machine at k >= 8 "
                  "with bit-identical decisions, and the serving layer "
                  "sustains it across 64 sessions with half the fleet "
                  "evicted and revived mid-stream.",
         .tags = {"throughput", "mmap", "zero-copy", "snapshot", "service"}},
        run);
}

}  // namespace qols::bench
