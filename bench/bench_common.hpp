#pragma once
// Shared helpers for the experiment harnesses (bench_e*).

#include <cstdlib>
#include <iostream>
#include <string>

namespace qols::bench {

/// Environment override for sweep depth: QOLS_MAX_K=8 widens the sweeps.
inline unsigned max_k(unsigned def) {
  if (const char* env = std::getenv("QOLS_MAX_K")) {
    const int v = std::atoi(env);
    if (v >= 1 && v <= 10) return static_cast<unsigned>(v);
  }
  return def;
}

/// Environment override for Monte-Carlo trial counts.
inline int trials(int def) {
  if (const char* env = std::getenv("QOLS_TRIALS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return def;
}

inline void header(const std::string& id, const std::string& claim) {
  std::cout << "=== " << id << " ===\n" << claim << "\n\n";
}

}  // namespace qols::bench
