#pragma once
// Shared parsing helpers for the experiment stack: strict integers for the
// qols_bench CLI flags and the QOLS_MAX_K / QOLS_TRIALS environment
// overrides (consumed by RunConfig::from_env).
//
// Parsing is strict (std::from_chars over the whole string): garbage like
// QOLS_TRIALS=abc is rejected with a stderr warning instead of silently
// becoming 0 the way std::atoi used to map it; out-of-range numerics are
// clamped, also with a warning.

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string_view>

namespace qols::bench {

/// Strict integer parse of a full NUL-terminated string; nullopt on empty
/// input, trailing junk, or overflow.
inline std::optional<long long> parse_integer(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  const char* end = text + std::string_view(text).size();
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(text, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

/// Reads env var `name` as an integer in [lo, hi]. Unset -> nullopt;
/// non-numeric -> nullopt with a stderr warning; out of range -> clamped
/// with a stderr warning.
inline std::optional<long long> env_integer(const char* name, long long lo,
                                            long long hi) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return std::nullopt;
  const auto parsed = parse_integer(raw);
  if (!parsed) {
    std::cerr << "qols: ignoring " << name << "='" << raw
              << "' (not an integer)\n";
    return std::nullopt;
  }
  if (*parsed < lo || *parsed > hi) {
    const long long clamped = *parsed < lo ? lo : hi;
    std::cerr << "qols: " << name << "=" << *parsed << " out of range [" << lo
              << ", " << hi << "]; clamping to " << clamped << "\n";
    return clamped;
  }
  return parsed;
}

}  // namespace qols::bench
