#pragma once
// Reporting layer of the experiment stack: every registered experiment
// narrates its run through a Reporter instead of writing to std::cout, so
// one run can simultaneously produce the human-facing tables the harnesses
// always printed AND machine-readable BENCH_*.json records (the perf
// trajectory).
//
//   ConsoleReporter console(std::cout);
//   JsonReporter json;
//   MultiReporter rep({&console, &json});
//   run_experiments(selection, rep, cfg);
//   json.write_file("BENCH_run.json");

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "qols/core/experiment.hpp"
#include "qols/util/json.hpp"
#include "qols/util/table.hpp"

namespace qols::bench {

/// Identity of a registered experiment: stable id ("e1"), short title, the
/// paper claim it exercises, and free-form tags for --filter matching.
struct ExperimentInfo {
  std::string id;
  std::string title;
  std::string claim;
  std::vector<std::string> tags;
};

/// One structured data point. Optional fields are omitted from the JSON
/// record when absent; `extra` carries experiment-specific numeric columns
/// (ratios, bounds, closed forms) keyed by name.
struct MetricRecord {
  std::string label;  ///< row identity within the experiment ("k=3 t=1")
  std::optional<std::int64_t> k;
  std::optional<std::uint64_t> trials;
  std::optional<std::uint64_t> accepts;
  std::optional<double> rate;
  std::optional<double> ci_lo;  ///< Wilson 95% interval
  std::optional<double> ci_hi;
  std::optional<std::uint64_t> classical_bits;
  std::optional<std::uint64_t> qubits;
  std::optional<double> wall_seconds;
  std::vector<std::pair<std::string, double>> extra;
};

/// Builds the standard acceptance-rate record from an engine result:
/// rate, Wilson 95% CI, trial/accept counts and the space report.
MetricRecord metric_from_result(std::string label, std::int64_t k,
                                const core::ExperimentResult& result,
                                double wall_seconds);

/// Sink interface. Experiments call table()/note()/metric(); the runner
/// brackets each experiment with begin/end.
class Reporter {
 public:
  virtual ~Reporter() = default;

  virtual void begin_experiment(const ExperimentInfo& info) { (void)info; }
  /// status: the experiment's exit code (0 = all claims held).
  virtual void end_experiment(int status, double wall_seconds) {
    (void)status;
    (void)wall_seconds;
  }

  virtual void table(const util::Table& t, const std::string& caption = "") {
    (void)t;
    (void)caption;
  }
  virtual void note(const std::string& text) { (void)text; }
  virtual void metric(const MetricRecord& record) { (void)record; }
};

/// Human sink: renders the header/tables/notes exactly like the historical
/// standalone harnesses.
class ConsoleReporter final : public Reporter {
 public:
  explicit ConsoleReporter(std::ostream& os) : os_(os) {}

  void begin_experiment(const ExperimentInfo& info) override;
  void end_experiment(int status, double wall_seconds) override;
  void table(const util::Table& t, const std::string& caption) override;
  void note(const std::string& text) override;

 private:
  std::ostream& os_;
};

/// Machine sink: accumulates one record per experiment (id, claim, status,
/// wall-clock, metrics) and serializes the whole run as one JSON document.
class JsonReporter final : public Reporter {
 public:
  JsonReporter();

  void begin_experiment(const ExperimentInfo& info) override;
  void end_experiment(int status, double wall_seconds) override;
  void metric(const MetricRecord& record) override;

  /// Adds a key under the top-level "config" object (CLI/env provenance).
  void set_config(const std::string& key, util::json::Value v);

  /// The full document; call after the run completes.
  util::json::Value document() const;
  /// Serializes document() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  util::json::Value config_;
  util::json::Value experiments_;       // array of finished experiments
  util::json::Value current_;           // object under construction
  util::json::Value current_metrics_;   // its metrics array
};

/// Fan-out to several sinks (console + JSON is the common pair).
class MultiReporter final : public Reporter {
 public:
  explicit MultiReporter(std::vector<Reporter*> sinks)
      : sinks_(std::move(sinks)) {}

  void begin_experiment(const ExperimentInfo& info) override;
  void end_experiment(int status, double wall_seconds) override;
  void table(const util::Table& t, const std::string& caption) override;
  void note(const std::string& text) override;
  void metric(const MetricRecord& record) override;

 private:
  std::vector<Reporter*> sinks_;
};

}  // namespace qols::bench
