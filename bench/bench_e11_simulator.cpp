// E11 — systems microbenchmarks of the state-vector substrate (google-
// benchmark): gate kernels across register sizes, serial vs thread pool,
// and the A3 fast paths whose O(1)-per-input-bit cost makes the streaming
// simulation linear in the input.
#include <benchmark/benchmark.h>

#include "qols/quantum/state_vector.hpp"
#include "qols/util/rng.hpp"
#include "qols/util/thread_pool.hpp"

namespace {

using qols::quantum::StateVector;

void BM_Hadamard(benchmark::State& state) {
  const unsigned qubits = static_cast<unsigned>(state.range(0));
  StateVector sv(qubits);
  unsigned q = 0;
  for (auto _ : state) {
    sv.apply_h(q);
    q = (q + 1) % qubits;
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_Hadamard)->Arg(10)->Arg(14)->Arg(18)->Arg(20)->Arg(22);

void BM_Cnot(benchmark::State& state) {
  const unsigned qubits = static_cast<unsigned>(state.range(0));
  StateVector sv(qubits);
  sv.apply_h_range(0, qubits);
  for (auto _ : state) {
    sv.apply_cnot(0, qubits - 1);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_Cnot)->Arg(10)->Arg(14)->Arg(18)->Arg(20)->Arg(22);

void BM_ReflectZero(benchmark::State& state) {
  const unsigned qubits = static_cast<unsigned>(state.range(0));
  StateVector sv(qubits);
  sv.apply_h_range(0, qubits);
  for (auto _ : state) {
    sv.apply_reflect_zero(0, qubits - 2);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_ReflectZero)->Arg(10)->Arg(14)->Arg(18)->Arg(20)->Arg(22);

// The A3 streaming fast path: cost per input bit must be O(1), independent
// of register size (compare across Arg values: flat, not exponential).
void BM_IndexedOracle(benchmark::State& state) {
  const unsigned qubits = static_cast<unsigned>(state.range(0));
  StateVector sv(qubits);
  sv.apply_h_range(0, qubits - 2);
  qols::util::Rng rng(1);
  const std::uint64_t mask = (std::uint64_t{1} << (qubits - 2)) - 1;
  for (auto _ : state) {
    sv.apply_x_on_index(0, qubits - 2, rng.next() & mask, qubits - 2);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IndexedOracle)->Arg(10)->Arg(14)->Arg(18)->Arg(20)->Arg(22);

// A full Grover iteration (oracle + diffusion) at the paper's register
// shape 2k+2: the per-repetition cost of procedure A3.
void BM_GroverIteration(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const unsigned qubits = 2 * k + 2;
  StateVector sv(qubits);
  sv.apply_h_range(0, 2 * k);
  qols::util::Rng rng(2);
  const std::uint64_t m = std::uint64_t{1} << (2 * k);
  for (auto _ : state) {
    sv.apply_z_on_index(0, 2 * k, rng.next() & (m - 1), 2 * k);
    sv.apply_h_range(0, 2 * k);
    sv.apply_reflect_zero(0, 2 * k);
    sv.apply_h_range(0, 2 * k);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
}
BENCHMARK(BM_GroverIteration)->DenseRange(2, 9);

void BM_ProbabilityReadout(benchmark::State& state) {
  const unsigned qubits = static_cast<unsigned>(state.range(0));
  StateVector sv(qubits);
  sv.apply_h_range(0, qubits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.probability_one(qubits - 1));
  }
}
BENCHMARK(BM_ProbabilityReadout)->Arg(10)->Arg(16)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
