// E11 — systems microbenchmarks of the state-vector substrate: gate kernels
// across register sizes and the A3 fast paths whose O(1)-per-input-bit cost
// makes the streaming simulation linear in the input.
//
// Timed with util::Stopwatch (dependency-free; kernels above 2^14 amplitudes
// shard across the thread pool automatically). Two shape checks: bulk
// kernels (H/CNOT/reflect) sustain a roughly size-independent per-amplitude
// rate, and the indexed-oracle fast path stays O(1) per call — flat across
// register sizes, not exponential.
#include <algorithm>
#include <string>

#include "experiments.hpp"
#include "qols/quantum/state_vector.hpp"
#include "qols/util/rng.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

using quantum::StateVector;

/// Seconds per call of `op`, averaged over `iters` calls after one warmup.
template <typename Op>
double time_op(Op&& op, int iters) {
  op();  // warmup: page in the amplitude array
  util::Stopwatch watch;
  for (int i = 0; i < iters; ++i) op();
  return watch.seconds() / iters;
}

int run(Reporter& rep, const RunConfig& cfg) {
  const int iters = std::clamp(cfg.trials_or(24), 1, 1000);
  const unsigned max_qubits = std::min(18u, 2 * cfg.max_k_or(9));

  util::Table table({"kernel", "qubits", "amplitudes", "us/op",
                     "Gamps/s"});
  for (unsigned qubits : {10u, 14u, 16u, 18u}) {
    if (qubits > max_qubits) continue;
    StateVector sv(qubits);
    sv.apply_h_range(0, qubits);
    const double dim = static_cast<double>(std::size_t{1} << qubits);
    struct Kernel {
      const char* name;
      double seconds;
    };
    unsigned q = 0;
    const Kernel kernels[] = {
        {"H", time_op(
                  [&] {
                    sv.apply_h(q);
                    q = (q + 1) % qubits;
                  },
                  iters)},
        {"CNOT", time_op([&] { sv.apply_cnot(0, qubits - 1); }, iters)},
        {"reflect0",
         time_op([&] { sv.apply_reflect_zero(0, qubits - 2); }, iters)},
    };
    for (const auto& kernel : kernels) {
      table.add_row({kernel.name, std::to_string(qubits),
                     util::fmt_g(std::size_t{1} << qubits),
                     util::fmt_f(kernel.seconds * 1e6, 2),
                     util::fmt_f(dim / kernel.seconds / 1e9, 3)});
      MetricRecord metric;
      metric.label = std::string(kernel.name) + " q=" + std::to_string(qubits);
      metric.qubits = qubits;
      metric.wall_seconds = kernel.seconds;
      metric.extra = {{"amps_per_second", dim / kernel.seconds},
                      {"iters", static_cast<double>(iters)}};
      rep.metric(metric);
    }
  }
  rep.table(table, "Bulk kernels (full state-vector sweeps):");

  // The A3 streaming fast path: cost per input bit must be O(1), independent
  // of register size (compare across rows: flat, not exponential).
  util::Table oracle({"qubits", "us/oracle call"});
  for (unsigned qubits : {10u, 14u, 16u, 18u}) {
    if (qubits > max_qubits) continue;
    StateVector sv(qubits);
    sv.apply_h_range(0, qubits - 2);
    util::Rng rng(1);
    const std::uint64_t mask = (std::uint64_t{1} << (qubits - 2)) - 1;
    const double secs = time_op(
        [&] { sv.apply_x_on_index(0, qubits - 2, rng.next() & mask,
                                  qubits - 2); },
        iters);
    oracle.add_row({std::to_string(qubits), util::fmt_f(secs * 1e6, 3)});
    MetricRecord metric;
    metric.label = "indexed-oracle q=" + std::to_string(qubits);
    metric.qubits = qubits;
    metric.wall_seconds = secs;
    rep.metric(metric);
  }
  rep.note("");
  rep.table(oracle, "A3 indexed-oracle fast path (O(1) per input bit):");

  // A full Grover iteration (oracle + diffusion) at the paper's register
  // shape 2k+2: the per-repetition cost of procedure A3.
  util::Table grover({"k", "qubits", "us/iteration"});
  for (unsigned k = 2; k <= std::min(8u, cfg.max_k_or(7)); ++k) {
    const unsigned qubits = 2 * k + 2;
    StateVector sv(qubits);
    sv.apply_h_range(0, 2 * k);
    util::Rng rng(2);
    const std::uint64_t m = std::uint64_t{1} << (2 * k);
    const double secs = time_op(
        [&] {
          sv.apply_z_on_index(0, 2 * k, rng.next() & (m - 1), 2 * k);
          sv.apply_h_range(0, 2 * k);
          sv.apply_reflect_zero(0, 2 * k);
          sv.apply_h_range(0, 2 * k);
        },
        iters);
    grover.add_row({std::to_string(k), std::to_string(qubits),
                    util::fmt_f(secs * 1e6, 2)});
    MetricRecord metric;
    metric.label = "grover-iteration k=" + std::to_string(k);
    metric.k = k;
    metric.qubits = qubits;
    metric.wall_seconds = secs;
    rep.metric(metric);
  }
  rep.note("");
  rep.table(grover, "Grover iteration at register shape 2k+2:");
  rep.note(
      "\nShape check: bulk kernels hold a stable per-amplitude rate as the "
      "register grows (thread-pool sharding above 2^14 amplitudes); the "
      "indexed-oracle path stays flat in microseconds per call — O(1) per "
      "input bit, which is what keeps A3's streaming simulation linear in "
      "the input length.");
  return 0;
}

}  // namespace

void register_e11(Registry& r) {
  r.add({.id = "e11",
         .title = "state-vector kernel microbenchmarks",
         .claim = "Systems claim: bulk gate kernels sustain a "
                  "size-independent per-amplitude rate and the A3 oracle "
                  "fast path costs O(1) per input bit.",
         .tags = {"perf", "simulator", "kernels"}},
        run);
}

}  // namespace qols::bench
