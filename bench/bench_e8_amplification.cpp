// E8 — Corollary 3.5: amplification from one-sided error <= 3/4 to any
// constant, with space scaling linearly in the number of copies.
//
// For the hardest non-member (t = 1) the table reports the measured
// false-accept probability of r parallel copies against the (3/4)^r theory
// curve, plus the measured space. r = 4 crosses the 1/3 bounded-error line:
// L_DISJ (and its complement) land in OQBPL. Both legs run through the
// TrialEngine (sharded across the thread pool, deterministic seeds).
#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "experiments.hpp"
#include "qols/core/amplified.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/core/trial_engine.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(8);
  const unsigned k = 3;
  auto nonmember = lang::LDisjInstance::make_with_intersections(k, 1, rng);
  auto member = lang::LDisjInstance::make_disjoint(k, rng);

  core::QuantumOnlineRecognizer::Options qopts;
  qopts.a3.backend = cfg.backend;
  qopts.a3.precision = cfg.precision();
  auto single = [qopts](std::uint64_t seed) {
    return std::make_unique<core::QuantumOnlineRecognizer>(seed, qopts);
  };

  util::Table table({"copies r", "P[accept nonmember]", "(3/4)^r",
                     "P[accept member]", "classical bits", "qubits",
                     "below 1/3 ?"});
  const auto runs = static_cast<std::uint64_t>(cfg.trials_or(400));
  const core::TrialEngine engine;
  for (std::uint64_t r : {1ULL, 2ULL, 3ULL, 4ULL, 6ULL, 8ULL, 12ULL, 16ULL}) {
    auto amplified = [&single, r](std::uint64_t seed) {
      return std::unique_ptr<machine::OnlineRecognizer>(
          std::make_unique<core::AmplifiedRecognizer>(single, r, seed));
    };
    util::Stopwatch watch;
    const auto non = engine.measure_acceptance(
        [&] { return nonmember.stream(); }, amplified,
        {.trials = runs, .seed_base = 40000});
    // Members are deterministic-accept; sample fewer.
    const auto mem = engine.measure_acceptance(
        [&] { return member.stream(); }, amplified,
        {.trials = std::max<std::uint64_t>(1, runs / 4), .seed_base = 50000});
    const double p_non = non.rate();
    const double theory = std::pow(0.75, static_cast<double>(r));
    table.add_row({std::to_string(r), util::fmt_f(p_non, 4),
                   util::fmt_f(theory, 4), util::fmt_f(mem.rate(), 3),
                   std::to_string(non.space.classical_bits),
                   std::to_string(non.space.qubits),
                   p_non <= 1.0 / 3.0 + 0.03 ? "yes" : "no"});
    auto metric = metric_from_result("r=" + std::to_string(r), k, non,
                                     watch.seconds());
    metric.extra = {{"copies", static_cast<double>(r)},
                    {"theory_three_quarters_pow_r", theory},
                    {"p_accept_member", mem.rate()}};
    rep.metric(metric);
  }
  rep.table(table, "k = 3, non-member with t = 1 (hardest case):");
  rep.note(
      "\nShape check: the measured error hugs (3/4)^r from below "
      "(per-run rejection is often > 1/4), members never flip, and "
      "space is r x the single-copy footprint — still O(log n) for "
      "constant r.");
  return 0;
}

}  // namespace

void register_e8(Registry& r) {
  r.add({.id = "e8",
         .title = "amplification (Corollary 3.5)",
         .claim = "Claim: r independent copies accept a non-member with "
                  "probability <= (3/4)^r while members stay at probability "
                  "1; space grows as r.",
         .tags = {"amplification", "corollary-3.5", "engine"}},
        run);
}

}  // namespace qols::bench
