// E8 — Corollary 3.5: amplification from one-sided error <= 3/4 to any
// constant, with space scaling linearly in the number of copies.
//
// For the hardest non-member (t = 1) the table reports the measured
// false-accept probability of r parallel copies against the (3/4)^r theory
// curve, plus the measured space. r = 4 crosses the 1/3 bounded-error line:
// L_DISJ (and its complement) land in OQBPL.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "qols/core/amplified.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/table.hpp"

int main() {
  using namespace qols;
  bench::header(
      "E8: amplification (Corollary 3.5)",
      "Claim: r independent copies accept a non-member with probability "
      "<= (3/4)^r while members stay at probability 1; space grows as r.");

  util::Rng rng(8);
  const unsigned k = 3;
  auto nonmember = lang::LDisjInstance::make_with_intersections(k, 1, rng);
  auto member = lang::LDisjInstance::make_disjoint(k, rng);

  auto factory = [](std::uint64_t seed) {
    return std::make_unique<core::QuantumOnlineRecognizer>(seed);
  };

  util::Table table({"copies r", "P[accept nonmember]", "(3/4)^r",
                     "P[accept member]", "classical bits", "qubits",
                     "below 1/3 ?"});
  const int runs = bench::trials(400);
  for (std::uint64_t r : {1ULL, 2ULL, 3ULL, 4ULL, 6ULL, 8ULL, 12ULL, 16ULL}) {
    int accept_non = 0;
    int accept_mem = 0;
    machine::SpaceReport space;
    for (int i = 0; i < runs; ++i) {
      core::AmplifiedRecognizer rec(factory, r, 40000 + i);
      auto s = nonmember.stream();
      if (machine::run_stream(*s, rec)) ++accept_non;
      space = rec.space_used();
      if (i < runs / 4) {  // members are deterministic-accept; sample fewer
        rec.reset(50000 + i);
        auto s2 = member.stream();
        if (machine::run_stream(*s2, rec)) ++accept_mem;
      }
    }
    const double p_non = accept_non / static_cast<double>(runs);
    const double theory = std::pow(0.75, static_cast<double>(r));
    table.add_row({std::to_string(r), util::fmt_f(p_non, 4),
                   util::fmt_f(theory, 4),
                   util::fmt_f(accept_mem / double(runs / 4), 3),
                   std::to_string(space.classical_bits),
                   std::to_string(space.qubits),
                   p_non <= 1.0 / 3.0 + 0.03 ? "yes" : "no"});
  }
  table.print(std::cout, "k = 3, non-member with t = 1 (hardest case):");
  std::cout << "\nShape check: the measured error hugs (3/4)^r from below "
               "(per-run rejection is often > 1/4), members never flip, and "
               "space is r x the single-copy footprint — still O(log n) for "
               "constant r.\n";
  return 0;
}
