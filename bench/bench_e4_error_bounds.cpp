// E4 — Theorem 3.4 correctness profile of the composed machine:
//   members accepted with probability 1 (perfect completeness);
//   non-members rejected with probability >= 1/4, for EVERY t >= 1.
//
// For each (k, t) the harness streams the instance through the machine many
// times and averages the EXACT per-run acceptance probability (randomness
// remains over the machine's coins: A2's evaluation point and A3's iteration
// count). Columns compare against the BBHT closed form.
#include <algorithm>
#include <string>
#include <vector>

#include "experiments.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/grover/analysis.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(4);
  util::Table table({"k", "t", "P[accept] measured", "P[reject] measured",
                     "BBHT closed form", ">= 1/4 ?"});
  bool all_hold = true;
  for (unsigned k = 2; k <= cfg.dense_max_k_or(4); ++k) {
    const std::uint64_t m = std::uint64_t{1} << (2 * k);
    std::vector<std::uint64_t> ts = {0, 1, 2, 4, m / 4, m / 2, m};
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
    const int runs = cfg.trials_or(std::max(64, 16 << k));
    for (std::uint64_t t : ts) {
      auto inst = lang::LDisjInstance::make_with_intersections(k, t, rng);
      double acc = 0.0;
      core::QuantumOnlineRecognizer::Options qopts;
      qopts.a3.backend = cfg.backend;
      qopts.a3.precision = cfg.precision();
      for (int i = 0; i < runs; ++i) {
        core::QuantumOnlineRecognizer rec(10000 + 131 * i + k, qopts);
        auto s = inst.stream();
        while (auto sym = s->next()) rec.feed(*sym);
        acc += rec.exact_acceptance_probability();
      }
      const double p_accept = std::clamp(acc / runs, 0.0, 1.0);
      const double p_reject = 1.0 - p_accept;
      const double closed =
          t == 0 ? 0.0 : grover::a3_rejection_probability(k, t);
      const bool hold =
          t == 0 ? p_accept > 1.0 - 1e-9 : p_reject >= 0.25 - 0.04;
      all_hold = all_hold && hold;
      table.add_row({std::to_string(k), std::to_string(t),
                     util::fmt_f(p_accept, 4), util::fmt_f(p_reject, 4),
                     util::fmt_f(closed, 4),
                     t == 0 ? "n/a (member)" : (hold ? "yes" : "NO")});
      MetricRecord metric;
      metric.label = "k=" + std::to_string(k) + " t=" + std::to_string(t);
      metric.k = k;
      metric.trials = static_cast<std::uint64_t>(runs);
      metric.rate = p_accept;
      metric.extra = {{"p_reject", p_reject},
                      {"bbht_closed_form", closed},
                      {"bound_holds", hold ? 1.0 : 0.0}};
      rep.metric(metric);
    }
  }
  rep.table(table);
  rep.note(
      "\nShape check: measured P[reject] tracks the closed form and "
      "never drops below 1/4 for t >= 1; members sit at exactly 1.");
  rep.note(all_hold ? "All bounds hold." : "BOUND VIOLATION FOUND!");
  return all_hold ? 0 : 1;
}

}  // namespace

void register_e4(Registry& r) {
  r.add({.id = "e4",
         .title = "one-sided error of the quantum machine",
         .claim = "Claim (Thm 3.4): P[accept | member] = 1 and "
                  "P[reject | non-member] >= 1/4 for every intersection "
                  "count t.",
         .tags = {"error", "quantum", "theorem-3.4"}},
        run);
}

}  // namespace qols::bench
