// E1 — Theorem 3.4: the quantum online machine uses O(log n) space.
//
// Sweeps k two ways:
//   - "full run" rows stream an entire member instance through the machine
//     and verify it accepts (k <= 7 keeps the sweep under a few seconds);
//   - "probe" rows exploit that the machine's peak work memory is fixed the
//     moment the prefix 1^k# is parsed (all counters, fingerprints and the
//     register are allocated then), so streaming just the prefix reads the
//     same space report at any k.
// The claim holds if total space grows linearly in k = Theta(log n): watch
// the last column approach a constant.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/table.hpp"

namespace {

// n(k) = k + 1 + 2^k * 3 * (2^{2k} + 1).
double word_length(unsigned k) {
  return k + 1.0 +
         std::pow(2.0, k) * 3.0 * (std::pow(2.0, 2.0 * k) + 1.0);
}

qols::machine::SpaceReport probe_space(qols::machine::OnlineRecognizer& rec,
                                       unsigned k) {
  rec.reset(k);
  for (unsigned i = 0; i < k; ++i) rec.feed(qols::stream::Symbol::kOne);
  rec.feed(qols::stream::Symbol::kSep);
  return rec.space_used();
}

}  // namespace

int main() {
  using namespace qols;
  bench::header("E1: quantum online space",
                "Claim (Thm 3.4): the machine deciding L_DISJ uses O(log n) "
                "classical bits + qubits.");

  util::Rng rng(1);
  util::Table table({"k", "n (word length)", "mode", "classical bits",
                     "qubits", "total", "log2(n)", "total/log2(n)"});
  const unsigned kmax_run = bench::max_k(7);
  for (unsigned k = 1; k <= 14; ++k) {
    machine::SpaceReport space;
    std::string mode;
    if (k <= kmax_run && k <= 10) {
      auto inst = lang::LDisjInstance::make_disjoint(k, rng);
      core::QuantumOnlineRecognizer rec(k);
      auto s = inst.stream();
      if (!machine::run_stream(*s, rec)) {
        std::cerr << "unexpected rejection of a member at k=" << k << "\n";
        return 1;
      }
      space = rec.space_used();
      mode = "full run";
    } else {
      // Space-only probe: no state vector is instantiated (simulate=false),
      // but the machine's conceptual footprint is reported identically.
      core::QuantumOnlineRecognizer::Options opts;
      opts.a3.simulate = false;
      opts.a3.max_sim_k = 15;
      core::QuantumOnlineRecognizer rec(k, opts);
      space = probe_space(rec, k);
      mode = "probe";
    }
    const double log2n = std::log2(word_length(k));
    table.add_row({std::to_string(k),
                   util::fmt_g(static_cast<std::uint64_t>(word_length(k))),
                   mode, std::to_string(space.classical_bits),
                   std::to_string(space.qubits),
                   std::to_string(space.total()), util::fmt_f(log2n, 1),
                   util::fmt_f(space.total() / log2n, 2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: total/log2(n) settles to a constant (~15: the "
               "A2 fingerprint state dominates at 8 field elements of 4k+1 "
               "bits), i.e. space = Theta(log n).\n";
  return 0;
}
