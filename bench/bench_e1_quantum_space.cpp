// E1 — Theorem 3.4: the quantum online machine uses O(log n) space.
//
// Sweeps k two ways:
//   - "full run" rows push cfg.trials member instances through the machine
//     via the TrialEngine (parallel, deterministic seeds) and verify the
//     acceptance rate is exactly 1 (perfect completeness), reading the space
//     report from trial 0;
//   - "probe" rows exploit that the machine's peak work memory is fixed the
//     moment the prefix 1^k# is parsed (all counters, fingerprints and the
//     register are allocated then), so streaming just the prefix reads the
//     same space report at any k.
// The claim holds if total space grows linearly in k = Theta(log n): watch
// the last column approach a constant.
#include <cmath>
#include <memory>
#include <string>

#include "experiments.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/core/trial_engine.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

// n(k) = k + 1 + 2^k * 3 * (2^{2k} + 1).
double word_length(unsigned k) {
  return k + 1.0 + std::pow(2.0, k) * 3.0 * (std::pow(2.0, 2.0 * k) + 1.0);
}

machine::SpaceReport probe_space(machine::OnlineRecognizer& rec, unsigned k) {
  rec.reset(k);
  for (unsigned i = 0; i < k; ++i) rec.feed(stream::Symbol::kOne);
  rec.feed(stream::Symbol::kSep);
  return rec.space_used();
}

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(1);
  util::Table table({"k", "n (word length)", "mode", "trials", "accept rate",
                     "classical bits", "qubits", "total", "log2(n)",
                     "total/log2(n)"});
  const unsigned kmax_run = cfg.max_k_or(7);
  const auto trials = static_cast<std::uint64_t>(cfg.trials_or(8));
  const core::TrialEngine engine;
  bool all_accepted = true;
  for (unsigned k = 1; k <= 14; ++k) {
    machine::SpaceReport space;
    std::string mode;
    std::string rate = "-";
    std::string trial_count = "-";
    if (k <= kmax_run && k <= 10) {
      auto inst = lang::LDisjInstance::make_disjoint(k, rng);
      core::QuantumOnlineRecognizer::Options qopts;
      qopts.a3.backend = cfg.backend;
      qopts.a3.precision = cfg.precision();
      util::Stopwatch watch;
      const auto r = engine.measure_acceptance(
          [&] { return inst.stream(); },
          [qopts](std::uint64_t seed) {
            return std::make_unique<core::QuantumOnlineRecognizer>(seed, qopts);
          },
          {.trials = trials, .seed_base = 1000 * k});
      if (r.accepts != r.trials) {
        rep.note("unexpected rejection of a member at k=" + std::to_string(k));
        all_accepted = false;
      }
      space = r.space;
      mode = "full run";
      rate = util::fmt_f(r.rate(), 3);
      trial_count = std::to_string(r.trials);
      rep.metric(metric_from_result("k=" + std::to_string(k), k, r,
                                    watch.seconds()));
    } else {
      // Space-only probe: no state vector is instantiated (simulate=false),
      // but the machine's conceptual footprint is reported identically.
      core::QuantumOnlineRecognizer::Options opts;
      opts.a3.simulate = false;
      opts.a3.max_sim_k = 15;
      core::QuantumOnlineRecognizer probe_rec(k, opts);
      space = probe_space(probe_rec, k);
      mode = "probe";
      MetricRecord m;
      m.label = "k=" + std::to_string(k) + " probe";
      m.k = k;
      m.classical_bits = space.classical_bits;
      m.qubits = space.qubits;
      rep.metric(m);
    }
    const double log2n = std::log2(word_length(k));
    table.add_row({std::to_string(k),
                   util::fmt_g(static_cast<std::uint64_t>(word_length(k))),
                   mode, trial_count, rate,
                   std::to_string(space.classical_bits),
                   std::to_string(space.qubits),
                   std::to_string(space.total()), util::fmt_f(log2n, 1),
                   util::fmt_f(space.total() / log2n, 2)});
  }
  rep.table(table);
  rep.note(
      "\nShape check: total/log2(n) settles to a constant (~15: the "
      "A2 fingerprint state dominates at 8 field elements of 4k+1 "
      "bits), i.e. space = Theta(log n).");
  return all_accepted ? 0 : 1;
}

}  // namespace

void register_e1(Registry& r) {
  r.add({.id = "e1",
         .title = "quantum online space",
         .claim = "Claim (Thm 3.4): the machine deciding L_DISJ uses O(log n) "
                  "classical bits + qubits.",
         .tags = {"space", "quantum", "theorem-3.4"}},
        run);
}

}  // namespace qols::bench
