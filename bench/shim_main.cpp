// Generic main() for the historical per-experiment binaries (bench_e1_*,
// bench_e2_*, ...): each is this file compiled with -DQOLS_SHIM_ID="eN" and
// runs exactly one registered experiment with a console reporter, honoring
// the QOLS_MAX_K / QOLS_TRIALS environment overrides as before. The unified
// CLI (qols_bench) is the richer entry point.
#include <iostream>

#include "registry.hpp"
#include "reporter.hpp"

#ifndef QOLS_SHIM_ID
#error "compile with -DQOLS_SHIM_ID=\"eN\""
#endif

int main() {
  using namespace qols::bench;
  const Experiment* e = Registry::global().find(QOLS_SHIM_ID);
  if (e == nullptr) {
    std::cerr << "experiment '" << QOLS_SHIM_ID << "' is not registered\n";
    return 2;
  }
  ConsoleReporter reporter(std::cout);
  return run_experiments({e}, reporter, RunConfig::from_env());
}
