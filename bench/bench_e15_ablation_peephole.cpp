// E15 (ablation) — how much of the Definition 2.3 output tape the exact
// peephole identities recover, per k. The lowering compiles every input bit
// locally, so adjacent oracles share cancellable X-conjugation layers and
// T-runs; the optimizer folds them without changing the circuit's unitary.
#include <string>

#include "experiments.hpp"
#include "qols/core/grover_streamer.hpp"
#include "qols/gates/builder.hpp"
#include "qols/gates/peephole.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/table.hpp"
#include "registry.hpp"

namespace qols::bench {
namespace {

int run(Reporter& rep, const RunConfig& cfg) {
  util::Rng rng(15);
  util::Table table({"k", "gates before", "gates after", "reduction",
                     "H pairs", "T folded", "CNOT pairs", "passes"});
  const unsigned kmax = cfg.dense_max_k_or(3);
  for (unsigned k = 1; k <= kmax; ++k) {
    auto inst = lang::LDisjInstance::make_disjoint(k, rng);
    gates::CircuitSink sink;
    core::GroverStreamer::Options opts;
    opts.simulate = false;
    opts.gate_sink = &sink;
    core::GroverStreamer a3{util::Rng(100 + k), opts};
    auto s = inst.stream();
    while (auto sym = s->next()) a3.feed(*sym);

    gates::PeepholeStats stats;
    const auto optimized = gates::peephole_optimize(sink.circuit(), &stats);
    (void)optimized;
    table.add_row({std::to_string(k), util::fmt_g(stats.gates_before),
                   util::fmt_g(stats.gates_after),
                   util::fmt_f(100.0 * stats.reduction(), 1) + "%",
                   util::fmt_g(stats.h_pairs_cancelled),
                   util::fmt_g(stats.t_gates_cancelled),
                   util::fmt_g(stats.cnot_pairs_cancelled),
                   std::to_string(stats.passes)});
    MetricRecord metric;
    metric.label = "k=" + std::to_string(k);
    metric.k = k;
    metric.extra = {{"gates_before", static_cast<double>(stats.gates_before)},
                    {"gates_after", static_cast<double>(stats.gates_after)},
                    {"reduction", stats.reduction()},
                    {"passes", static_cast<double>(stats.passes)}};
    rep.metric(metric);
  }
  rep.table(table, "A3's full emitted tape per k (one machine run):");
  rep.note(
      "\nReading: a stable ~8-9% of the tape is algebraically "
      "redundant (mostly T-runs from adjacent tdg/t layers and "
      "X-conjugation H-pairs) — free space/time on any physical "
      "target, at zero semantic risk.");
  return 0;
}

}  // namespace

void register_e15(Registry& r) {
  r.add({.id = "e15",
         .title = "peephole optimization of the output tape (ablation)",
         .claim = "Exact rewrites only (HH = I, T^8 = I, CNOT^2 = I, "
                  "identity drops); semantic preservation is enforced by the "
                  "test suite.",
         .tags = {"ablation", "gates", "peephole"}},
        run);
}

}  // namespace qols::bench
