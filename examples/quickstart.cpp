// Quickstart: build an L_DISJ instance, stream it through the paper's
// quantum online machine, and print the verdict plus the space report.
//
//   ./quickstart [k] [t] [seed]
//
//   k     instance scale (m = 2^{2k} bits per string), default 4
//   t     number of planted intersections (0 = member of L_DISJ), default 0
//   seed  RNG seed, default 42
#include <cstdlib>
#include <iostream>

#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/table.hpp"

int main(int argc, char** argv) {
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const std::uint64_t t = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  qols::util::Rng rng(seed);
  auto inst = qols::lang::LDisjInstance::make_with_intersections(k, t, rng);

  std::cout << "L_DISJ instance: k=" << k << "  m=" << inst.m()
            << "  repetitions=" << inst.repetitions()
            << "  word length=" << qols::util::fmt_g(inst.word_length())
            << " symbols\n"
            << "planted intersections: " << t
            << "  => ground truth: " << (inst.member() ? "MEMBER" : "NON-MEMBER")
            << "\n\n";

  // The quantum machine of Theorem 3.4.
  qols::core::QuantumOnlineRecognizer quantum(seed);
  {
    auto s = inst.stream();
    const bool accept = qols::machine::run_stream(*s, quantum);
    const auto space = quantum.space_used();
    std::cout << "quantum machine  : " << (accept ? "ACCEPT" : "REJECT")
              << "   space = " << space.classical_bits << " classical bits + "
              << space.qubits << " qubits\n";
  }

  // Proposition 3.7's optimal classical machine, for contrast.
  qols::core::ClassicalBlockRecognizer block(seed);
  {
    auto s = inst.stream();
    const bool accept = qols::machine::run_stream(*s, block);
    const auto space = block.space_used();
    std::cout << "classical block  : " << (accept ? "ACCEPT" : "REJECT")
              << "   space = " << space.classical_bits << " classical bits\n";
  }

  std::cout << "\nGuarantees: members are accepted with probability 1; "
               "non-members are rejected\nwith probability >= 1/4 per run "
               "(amplify with AmplifiedRecognizer for 2/3).\n";
  return 0;
}
