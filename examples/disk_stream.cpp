// The streaming story end to end through real I/O: generate an L_DISJ word
// to a file (as a database export would), then scan it from disk with the
// quantum machine — demonstrating that the host process needs only the
// machine's O(log n) work memory plus a fixed read buffer, however large
// the file.
//
//   ./disk_stream [k] [t] [path]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/stream/file_stream.hpp"
#include "qols/util/stopwatch.hpp"
#include "qols/util/table.hpp"

int main(int argc, char** argv) {
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 5;
  const std::uint64_t t = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;
  const std::string path =
      argc > 3 ? argv[3]
               : (std::filesystem::temp_directory_path() / "qols_word.txt")
                     .string();

  qols::util::Rng rng(21);
  auto inst = qols::lang::LDisjInstance::make_with_intersections(k, t, rng);

  qols::util::Stopwatch write_clock;
  {
    auto s = inst.stream();
    qols::stream::write_stream_to_file(*s, path);
  }
  std::cout << "wrote " << qols::util::fmt_g(inst.word_length())
            << " symbols to " << path << " ("
            << qols::util::fmt_f(write_clock.millis(), 1) << " ms)\n";

  qols::util::Stopwatch scan_clock;
  qols::core::QuantumOnlineRecognizer rec(17);
  qols::stream::FileStream file(path);
  const bool accept = qols::machine::run_stream(file, rec);
  const auto space = rec.space_used();

  std::cout << "scanned from disk in " << qols::util::fmt_f(scan_clock.millis(), 1)
            << " ms\n"
            << "verdict: " << (accept ? "ACCEPT (disjoint)" : "REJECT")
            << "  [ground truth: " << (inst.member() ? "member" : "non-member")
            << "]\n"
            << "work memory: " << space.classical_bits << " classical bits + "
            << space.qubits << " qubits — vs a "
            << qols::util::fmt_g(inst.word_length()) << "-symbol input.\n";
  std::remove(path.c_str());
  return 0;
}
