// Theorem 3.6 in action: converting an online machine into a one-way
// communication protocol whose messages are configurations.
//
// We survey the reachable configurations of three deterministic machines at
// every block boundary of the stream and print the implied message sizes.
// The fingerprint machine (O(log n) space) has a tiny configuration space;
// the block machine's messages are exactly its 2^k-bit buffer — the
// Omega(n^{1/3}) the theorem proves unavoidable; the full-storage machine
// pays 2^{2k}.
//
//   ./lower_bound_demo [k] [sampled_pairs]
#include <cstdlib>
#include <iostream>

#include "qols/reduction/config_census.hpp"
#include "qols/util/table.hpp"

int main(int argc, char** argv) {
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 1;
  const std::uint64_t pairs =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;
  if (k > 3) {
    std::cerr << "config census is practical for k <= 3\n";
    return 1;
  }

  qols::util::Rng rng(5);
  qols::reduction::DetFingerprintMachine fp(k, 7);
  qols::reduction::DetBlockMachine block(k);
  qols::reduction::DetFullMachine full(k);

  auto cfp = qols::reduction::survey_configurations(fp, k, pairs, rng);
  auto cbl = qols::reduction::survey_configurations(block, k, pairs, rng);
  auto cfu = qols::reduction::survey_configurations(full, k, pairs, rng);

  std::cout << "k=" << k << "  (m=" << (1u << (2 * k)) << ", boundaries="
            << cbl.distinct_configs.size() << ", survey "
            << (cbl.exhaustive ? "exhaustive" : "sampled") << " over "
            << qols::util::fmt_g(cbl.inputs_surveyed) << " input pairs)\n\n";

  qols::util::Table table({"boundary", "|C_i| fingerprint", "|C_i| block",
                           "|C_i| full", "bits fp", "bits block", "bits full"});
  for (std::size_t b = 0; b < cbl.distinct_configs.size(); ++b) {
    table.add_row({std::to_string(b + 1),
                   qols::util::fmt_g(cfp.distinct_configs[b]),
                   qols::util::fmt_g(cbl.distinct_configs[b]),
                   qols::util::fmt_g(cfu.distinct_configs[b]),
                   std::to_string(cfp.message_bits[b]),
                   std::to_string(cbl.message_bits[b]),
                   std::to_string(cfu.message_bits[b])});
  }
  table.print(std::cout, "Reachable configurations per boundary:");

  std::cout << "\nprotocol totals: fingerprint " << cfp.total_bits
            << " bits, block " << cbl.total_bits << " bits, full "
            << cfu.total_bits << " bits\n"
            << "Theorem 3.6 floor (c=1): some message needs >= "
            << qols::util::fmt_f(
                   qols::reduction::theorem36_min_message_bits(k, 1.0), 1)
            << " bits => work space Omega(2^k).\n"
            << "The fingerprint machine ducks under the floor because it\n"
            << "decides only consistency, not disjointness — illustrating\n"
            << "why any machine that DOES decide L_DISJ must pay Omega(2^k).\n";
  return 0;
}
