// Definition 2.3, literally: run the online machine in gate-emission mode so
// it writes its one-way output tape a1#b1#c1#...#ar#br#cr over the universal
// set {G0=H, G1=T, G2=CNOT}; then parse that tape back, replay the circuit on
// |0...0>, measure, and compare with the operator-level machine.
//
//   ./circuit_tape [k] [t] [seed]
#include <cstdlib>
#include <iostream>

#include "qols/core/grover_streamer.hpp"
#include "qols/gates/builder.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/quantum/circuit.hpp"
#include "qols/util/table.hpp"

int main(int argc, char** argv) {
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 1;
  const std::uint64_t t = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;
  if (k > 3) {
    std::cerr << "gate-level replay is practical for k <= 3 (" << (4 * k + 2)
              << " qubits at k=" << k << ")\n";
    return 1;
  }

  qols::util::Rng rng(seed);
  auto inst = qols::lang::LDisjInstance::make_with_intersections(k, t, rng);

  // Pass 1: operator-level reference.
  qols::core::GroverStreamer op{qols::util::Rng(seed)};
  {
    auto s = inst.stream();
    while (auto sym = s->next()) op.feed(*sym);
  }

  // Pass 2: gate emission onto the output tape.
  qols::gates::TapeWriterSink tape;
  qols::core::GroverStreamer::Options opts;
  opts.simulate = false;
  opts.gate_sink = &tape;
  qols::core::GroverStreamer gate{qols::util::Rng(seed), opts};
  {
    auto s = inst.stream();
    while (auto sym = s->next()) gate.feed(*sym);
  }

  auto circuit = qols::quantum::Circuit::from_tape(tape.tape());
  if (!circuit) {
    std::cerr << "internal error: emitted tape failed to parse\n";
    return 1;
  }
  const auto counts = circuit->counts();

  std::cout << "instance: k=" << k << " t=" << t << "  (j drawn: "
            << *gate.chosen_j() << ")\n"
            << "output tape: " << qols::util::fmt_g(tape.tape().size())
            << " characters, " << qols::util::fmt_g(circuit->size())
            << " gates  [H=" << counts.h << " T=" << counts.t
            << " CNOT=" << counts.cnot << "]\n"
            << "qubits: " << circuit->qubits_spanned() << " ("
            << 2 * k + 2 << " data + " << gate.ancilla_qubits_used()
            << " compiler ancillas)\n";

  if (tape.tape().size() < 400) {
    std::cout << "\ntape: " << tape.tape() << "\n";
  } else {
    std::cout << "\ntape (first 160 chars): " << tape.tape().substr(0, 160)
              << "...\n";
  }

  // Replay the tape on |0...0> and compare measurement statistics.
  qols::quantum::StateVector replayed(circuit->qubits_spanned());
  circuit->apply_to(replayed);
  const double p_gate = replayed.probability_one(2 * k + 1);
  const double p_op = op.probability_output_zero();
  std::cout << "\nP[measure l = 1]  operator-level: " << qols::util::fmt_f(p_op, 6)
            << "   tape replay: " << qols::util::fmt_f(p_gate, 6)
            << "   |diff| = " << qols::util::fmt_sci(std::abs(p_gate - p_op))
            << "\n";
  return std::abs(p_gate - p_op) < 1e-9 ? 0 : 1;
}
