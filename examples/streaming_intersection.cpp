// The paper's motivating scenario: two enormous bit strings (think: key
// presence bitmaps from two databases) stream past a device whose memory is
// far too small to store them. The streams alternate sqrt(m) times; the
// device must decide whether any key is present in both.
//
// This example runs the quantum machine against every classical strategy in
// the library on the same stream and prints decision quality + space, the
// exponential-separation story in one table. Trials run through
// core::TrialEngine — the library's single Monte-Carlo path — so they shard
// across the thread pool exactly like the bench experiments.
//
//   ./streaming_intersection [k] [trials]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "qols/core/amplified.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/core/trial_engine.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/table.hpp"

namespace {

using qols::lang::LDisjInstance;

struct Row {
  std::string name;
  qols::core::QualityProfile profile;
  qols::machine::SpaceReport space;
};

Row evaluate(const qols::core::RecognizerFactory& factory,
             const LDisjInstance& member, const LDisjInstance& nonmember,
             int trials) {
  Row row;
  row.name = factory(0)->name();
  const qols::core::TrialEngine engine;
  row.profile = engine.measure_quality(
      [&] { return member.stream(); }, [&] { return nonmember.stream(); },
      factory, {.trials = static_cast<std::uint64_t>(trials),
                .seed_base = 1000});
  row.space = row.profile.on_member.space;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 40;

  qols::util::Rng rng(7);
  auto member = LDisjInstance::make_disjoint(k, rng);
  auto nonmember = LDisjInstance::make_with_intersections(k, 1, rng);

  std::cout << "Scenario: m = " << member.m() << " bits per string, "
            << member.repetitions() << " alternations, word length "
            << qols::util::fmt_g(member.word_length()) << " symbols.\n"
            << "Non-member has a single common key (hardest case).\n\n";

  std::vector<Row> rows;

  rows.push_back(evaluate(
      [](std::uint64_t seed) {
        return std::make_unique<qols::core::QuantumOnlineRecognizer>(seed);
      },
      member, nonmember, trials));

  rows.push_back(evaluate(
      [](std::uint64_t seed) {
        return std::make_unique<qols::core::AmplifiedRecognizer>(
            [](std::uint64_t s) {
              return std::make_unique<qols::core::QuantumOnlineRecognizer>(s);
            },
            4, seed);
      },
      member, nonmember, trials));

  rows.push_back(evaluate(
      [](std::uint64_t seed) {
        return std::make_unique<qols::core::ClassicalBlockRecognizer>(seed);
      },
      member, nonmember, trials));

  rows.push_back(evaluate(
      [](std::uint64_t seed) {
        return std::make_unique<qols::core::ClassicalFullRecognizer>(seed);
      },
      member, nonmember, trials));

  rows.push_back(evaluate(
      [k](std::uint64_t seed) {  // O(log m) budget
        return std::make_unique<qols::core::ClassicalSamplingRecognizer>(
            seed, 2 * k);
      },
      member, nonmember, trials));

  rows.push_back(evaluate(
      [k](std::uint64_t seed) {  // O(log m) bits
        return std::make_unique<qols::core::ClassicalBloomRecognizer>(seed,
                                                                      4 * k, 2);
      },
      member, nonmember, trials));

  qols::util::Table table({"machine", "P[accept|member]", "P[reject|non-member]",
                           "classical bits", "qubits"});
  for (const auto& row : rows) {
    table.add_row({row.name,
                   qols::util::fmt_f(row.profile.on_member.rate(), 3),
                   qols::util::fmt_f(1.0 - row.profile.on_nonmember.rate(), 3),
                   std::to_string(row.space.classical_bits),
                   std::to_string(row.space.qubits)});
  }
  table.print(std::cout,
              "Decision quality vs space (" + std::to_string(trials) +
                  " trials per cell):");
  std::cout
      << "\nReading: the quantum machine matches the reliable classical\n"
         "machines while using exponentially less memory; every classical\n"
         "strategy at comparable (logarithmic) space fails one column.\n";
  return 0;
}
