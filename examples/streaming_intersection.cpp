// The paper's motivating scenario: two enormous bit strings (think: key
// presence bitmaps from two databases) stream past a device whose memory is
// far too small to store them. The streams alternate sqrt(m) times; the
// device must decide whether any key is present in both.
//
// This example runs the quantum machine against every classical strategy in
// the library on the same stream and prints decision quality + space, the
// exponential-separation story in one table.
//
//   ./streaming_intersection [k] [trials]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "qols/core/amplified.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/util/table.hpp"

namespace {

using qols::lang::LDisjInstance;
using qols::machine::OnlineRecognizer;
using qols::machine::run_stream;

struct Row {
  std::string name;
  int correct_member = 0;
  int correct_nonmember = 0;
  qols::machine::SpaceReport space;
};

Row evaluate(OnlineRecognizer& rec, const LDisjInstance& member,
             const LDisjInstance& nonmember, int trials) {
  Row row;
  row.name = rec.name();
  for (int i = 0; i < trials; ++i) {
    rec.reset(1000 + i);
    auto s = member.stream();
    if (run_stream(*s, rec)) ++row.correct_member;
    rec.reset(2000 + i);
    auto s2 = nonmember.stream();
    if (!run_stream(*s2, rec)) ++row.correct_nonmember;
  }
  row.space = rec.space_used();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 40;

  qols::util::Rng rng(7);
  auto member = LDisjInstance::make_disjoint(k, rng);
  auto nonmember = LDisjInstance::make_with_intersections(k, 1, rng);

  std::cout << "Scenario: m = " << member.m() << " bits per string, "
            << member.repetitions() << " alternations, word length "
            << qols::util::fmt_g(member.word_length()) << " symbols.\n"
            << "Non-member has a single common key (hardest case).\n\n";

  std::vector<Row> rows;

  qols::core::QuantumOnlineRecognizer quantum(1);
  rows.push_back(evaluate(quantum, member, nonmember, trials));

  qols::core::AmplifiedRecognizer quantum4(
      [](std::uint64_t seed) {
        return std::make_unique<qols::core::QuantumOnlineRecognizer>(seed);
      },
      4, 1);
  rows.push_back(evaluate(quantum4, member, nonmember, trials));

  qols::core::ClassicalBlockRecognizer block(1);
  rows.push_back(evaluate(block, member, nonmember, trials));

  qols::core::ClassicalFullRecognizer full(1);
  rows.push_back(evaluate(full, member, nonmember, trials));

  qols::core::ClassicalSamplingRecognizer sample(1, 2 * k);  // O(log m) budget
  rows.push_back(evaluate(sample, member, nonmember, trials));

  qols::core::ClassicalBloomRecognizer bloom(1, 4 * k, 2);  // O(log m) bits
  rows.push_back(evaluate(bloom, member, nonmember, trials));

  qols::util::Table table({"machine", "P[accept|member]", "P[reject|non-member]",
                           "classical bits", "qubits"});
  for (const auto& row : rows) {
    table.add_row({row.name,
                   qols::util::fmt_f(row.correct_member / double(trials), 3),
                   qols::util::fmt_f(row.correct_nonmember / double(trials), 3),
                   std::to_string(row.space.classical_bits),
                   std::to_string(row.space.qubits)});
  }
  table.print(std::cout,
              "Decision quality vs space (" + std::to_string(trials) +
                  " trials per cell):");
  std::cout
      << "\nReading: the quantum machine matches the reliable classical\n"
         "machines while using exponentially less memory; every classical\n"
         "strategy at comparable (logarithmic) space fails one column.\n";
  return 0;
}
