// Two-party disjointness: Alice holds x, Bob holds y, and they compare
// protocols — the trivial classical one (Theta(m) bits, always right), a
// cheap sampling protocol (unreliable), and the Buhrman-Cleve-Wigderson
// quantum protocol (O(sqrt(m) log m) qubits, one-sided error, amplifiable).
//
//   ./comm_disjointness [k] [trials]
#include <cstdlib>
#include <iostream>

#include "qols/comm/protocols.hpp"
#include "qols/util/table.hpp"

int main(int argc, char** argv) {
  const unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 100;
  const std::uint64_t m = std::uint64_t{1} << (2 * k);

  qols::util::Rng rng(11);
  // Hard non-member: a single common index.
  qols::util::BitVec x = qols::util::BitVec::random(m, rng);
  qols::util::BitVec y = qols::util::BitVec::random(m, rng);
  for (std::uint64_t i = 0; i < m; ++i) {
    if (x.get(i) && y.get(i)) y.set(i, false);
  }
  const std::uint64_t common = rng.below(m);
  x.set(common, true);
  y.set(common, true);

  std::cout << "DISJ_" << m << " with exactly one common index.\n\n";

  struct Acc {
    std::string name;
    int correct = 0;
    std::uint64_t bits = 0, qubits = 0;
  };
  std::vector<Acc> accs(4);
  accs[0].name = "classical trivial";
  accs[1].name = "classical sampling (sqrt m probes)";
  accs[2].name = "quantum BCW (1 attempt)";
  accs[3].name = "quantum BCW (4 attempts)";

  const std::uint64_t probes = std::uint64_t{1} << k;  // sqrt(m)
  for (int i = 0; i < trials; ++i) {
    auto o0 = qols::comm::disj_trivial(x, y, rng);
    auto o1 = qols::comm::disj_sampling(x, y, probes, rng);
    auto o2 = qols::comm::disj_bcw_quantum(x, y, rng);
    auto o3 = qols::comm::disj_bcw_amplified(x, y, 4, rng);
    const qols::comm::DisjOutcome* outs[] = {&o0, &o1, &o2, &o3};
    for (int p = 0; p < 4; ++p) {
      if (!outs[p]->declared_disjoint) ++accs[p].correct;
      accs[p].bits = std::max(accs[p].bits, outs[p]->cost.classical_bits);
      accs[p].qubits = std::max(accs[p].qubits, outs[p]->cost.qubits);
    }
  }

  qols::util::Table table(
      {"protocol", "P[correct]", "max classical bits", "max qubits"});
  for (const auto& a : accs) {
    table.add_row({a.name, qols::util::fmt_f(a.correct / double(trials), 3),
                   qols::util::fmt_g(a.bits), qols::util::fmt_g(a.qubits)});
  }
  table.print(std::cout, "Protocol comparison (" + std::to_string(trials) +
                             " runs, worst-case costs observed):");
  std::cout << "\nworst-case BCW bound (3*2^k+2 transfers x (2k+2) qubits): "
            << qols::util::fmt_g(qols::comm::bcw_worst_case_qubits(k))
            << " qubits vs classical lower bound Omega(m) = Omega("
            << qols::util::fmt_g(m) << ") bits.\n";
  return 0;
}
