# Locate GoogleTest without downloading anything.
#
# Resolution order:
#   1. find_package(GTest) — covers distro packages that ship CMake config
#      files or libraries discoverable by FindGTest.
#   2. The Debian/Ubuntu source package at /usr/src/googletest
#      (libgtest-dev), built in-tree so it uses our exact toolchain.
#
# Defines the usual GTest::gtest and GTest::gtest_main targets.

include_guard(GLOBAL)

find_package(GTest QUIET)

if(NOT TARGET GTest::gtest_main)
  if(EXISTS /usr/src/googletest/CMakeLists.txt)
    message(STATUS "qols: building GoogleTest from /usr/src/googletest")
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.25)
      add_subdirectory(/usr/src/googletest
        "${CMAKE_BINARY_DIR}/_deps/googletest" EXCLUDE_FROM_ALL SYSTEM)
    else()
      add_subdirectory(/usr/src/googletest
        "${CMAKE_BINARY_DIR}/_deps/googletest" EXCLUDE_FROM_ALL)
    endif()
    if(NOT TARGET GTest::gtest_main)
      add_library(GTest::gtest ALIAS gtest)
      add_library(GTest::gtest_main ALIAS gtest_main)
    endif()
  else()
    message(FATAL_ERROR
      "qols: GoogleTest not found. Install libgtest-dev (Debian/Ubuntu) or "
      "point CMake at a GTest install, or configure with -DQOLS_BUILD_TESTS=OFF.")
  endif()
endif()
