# Shared warning / sanitizer configuration for all qols targets.
#
# qols_set_compile_options(<target>) applies the project-wide warning set
# (plus -Werror when QOLS_WERROR is ON) and, when QOLS_SANITIZE is ON,
# Address+UB sanitizer instrumentation to both compile and link steps.

function(qols_set_compile_options target)
  if(MSVC)
    target_compile_options(${target} PRIVATE /W4)
    if(QOLS_WERROR)
      target_compile_options(${target} PRIVATE /WX)
    endif()
  else()
    target_compile_options(${target} PRIVATE -Wall -Wextra -Wpedantic)
    if(QOLS_WERROR)
      target_compile_options(${target} PRIVATE -Werror)
    endif()
  endif()

  if(QOLS_SANITIZE AND NOT MSVC)
    target_compile_options(${target} PRIVATE
      -fsanitize=address,undefined -fno-omit-frame-pointer)
    target_link_options(${target} PRIVATE
      -fsanitize=address,undefined)
  endif()
endfunction()
