# Shared warning / sanitizer configuration for all qols targets.
#
# qols_set_compile_options(<target>) applies the project-wide warning set
# (plus -Werror when QOLS_WERROR is ON) and sanitizer instrumentation to
# both compile and link steps: Address+UB when QOLS_SANITIZE is ON, Thread
# when QOLS_SANITIZE_THREAD is ON (mutually exclusive; the trial engine and
# thread pool are the TSan targets).

function(qols_set_compile_options target)
  if(MSVC)
    target_compile_options(${target} PRIVATE /W4)
    if(QOLS_WERROR)
      target_compile_options(${target} PRIVATE /WX)
    endif()
  else()
    target_compile_options(${target} PRIVATE -Wall -Wextra -Wpedantic)
    if(QOLS_WERROR)
      target_compile_options(${target} PRIVATE -Werror)
    endif()
  endif()

  if(QOLS_SANITIZE AND NOT MSVC)
    target_compile_options(${target} PRIVATE
      -fsanitize=address,undefined -fno-omit-frame-pointer)
    target_link_options(${target} PRIVATE
      -fsanitize=address,undefined)
  endif()

  if(QOLS_SANITIZE_THREAD AND NOT MSVC)
    target_compile_options(${target} PRIVATE
      -fsanitize=thread -fno-omit-frame-pointer)
    target_link_options(${target} PRIVATE
      -fsanitize=thread)
  endif()
endfunction()
