#include "qols/fuzz/fuzzer.hpp"

#include <stdexcept>

#include "qols/fuzz/repro.hpp"
#include "qols/fuzz/shrink.hpp"
#include "qols/telemetry/registry.hpp"
#include "qols/util/rng.hpp"
#include "qols/util/stopwatch.hpp"

namespace qols::fuzz {

FuzzReport run_fuzz(const FuzzOptions& opts) {
  if (opts.max_cases == 0 && opts.budget_seconds <= 0.0) {
    throw std::invalid_argument(
        "run_fuzz: set max_cases and/or budget_seconds — an unbounded soak "
        "never terminates");
  }
  FuzzReport report;
  util::Stopwatch watch;
  util::SplitMix64 case_seeds(opts.seed);
  auto& registry = telemetry::MetricsRegistry::global();
  static telemetry::Counter& cases_counter = registry.counter("fuzz.cases");
  static telemetry::Counter& failures_counter =
      registry.counter("fuzz.failures");
  static telemetry::Gauge& cases_per_sec = registry.gauge("fuzz.cases_per_sec");

  while (true) {
    if (opts.max_cases != 0 && report.cases >= opts.max_cases) break;
    // The time budget is checked every iteration: Stopwatch is a clock
    // read, orders of magnitude cheaper than one case.
    if (opts.budget_seconds > 0.0 && report.cases > 0 &&
        watch.seconds() >= opts.budget_seconds) {
      break;
    }

    FuzzCase c = FuzzCase::from_seed(case_seeds.next());
    if (opts.force_float &&
        c.spec.kind == service::RecognizerKind::kQuantum) {
      c.spec.float_amplitudes = true;
    }
    if (opts.force_snapshot && c.snapshot_cut == kNoSnapshot) {
      // Promote the skipped half of the corpus into P7; the case seed keeps
      // the cut deterministic (it is reduced mod word length at check time).
      c.snapshot_cut = c.seed;
    }
    if (opts.force_wire && c.wire_split == kNoWire) {
      // Same promotion for P8: the seed picks the submode and byte splits.
      c.wire_split = c.seed;
    }
    if (opts.force_crash && c.crash_point == kNoCrash) {
      // Same promotion for P9: the seed fixes the persist/crash cut (it is
      // reduced mod word length + 1 at check time).
      c.crash_point = c.seed;
    }
    const CaseResult result = check_case(c);
    ++report.cases;
    cases_counter.add();
    ++report.by_word_kind[static_cast<unsigned>(c.word)];
    ++report.by_word_class[static_cast<unsigned>(result.cls)];

    if (!result.ok()) {
      FuzzFailure failure;
      failure.found = c;
      failure.token = encode_token(c);
      failure.property = result.issues.front().property;
      failure.detail = result.issues.front().detail;
      failure.minimized = c;
      if (opts.shrink) {
        // Shrink under "still fails THE SAME property": a smaller case that
        // trades a P2 failure for, say, a P5 one would make the reported
        // property disagree with what the minimized token replays.
        const std::string& property = failure.property;
        const auto shrunk = shrink(
            c,
            [&property](const FuzzCase& cand) {
              const CaseResult r = check_case(cand);
              for (const Discrepancy& d : r.issues) {
                if (d.property == property) return true;
              }
              return false;
            },
            opts.shrink_attempts);
        failure.minimized = shrunk.best;
      }
      failure.minimized_token = encode_token(failure.minimized);
      report.failures.push_back(std::move(failure));
      failures_counter.add();
      if (report.failures.size() >= opts.max_failures) break;
    }
  }
  report.seconds = watch.seconds();
  if (report.seconds > 0.0) {
    cases_per_sec.set(static_cast<std::int64_t>(
        static_cast<double>(report.cases) / report.seconds));
  }
  return report;
}

}  // namespace qols::fuzz
