#include "qols/fuzz/shrink.hpp"

#include <algorithm>

namespace qols::fuzz {

namespace {

/// The realized word length the case currently produces (the quantity the
/// length pass minimizes; truncate_len can sit far above it).
std::size_t effective_length(const FuzzCase& c) {
  return realize_word(c).size();
}

}  // namespace

ShrinkOutcome shrink(const FuzzCase& failing,
                     const std::function<bool(const FuzzCase&)>& still_fails,
                     std::size_t max_attempts) {
  ShrinkOutcome out;
  out.best = failing;

  const auto try_candidate = [&](const FuzzCase& candidate) {
    if (out.attempts >= max_attempts) return false;
    ++out.attempts;
    if (!still_fails(candidate)) return false;
    out.best = candidate;
    ++out.improved;
    return true;
  };

  bool progressed = true;
  while (progressed && out.attempts < max_attempts) {
    progressed = false;

    // Drop wrappers, outermost first (dropping an inner wrapper changes the
    // meaning of the outer ones' reduced parameters less often).
    for (std::size_t i = out.best.wrappers.size(); i-- > 0;) {
      FuzzCase candidate = out.best;
      candidate.wrappers.erase(candidate.wrappers.begin() +
                               static_cast<std::ptrdiff_t>(i));
      progressed = try_candidate(candidate) || progressed;
    }

    // Fewer sessions.
    while (out.best.sessions > 1) {
      FuzzCase candidate = out.best;
      --candidate.sessions;
      if (!try_candidate(candidate)) break;
      progressed = true;
    }

    // Simpler schedule: one whole-word chunk beats everything; failing
    // that, walk a fixed chunk size down to 1.
    if (out.best.schedule != ScheduleKind::kWhole) {
      FuzzCase candidate = out.best;
      candidate.schedule = ScheduleKind::kWhole;
      progressed = try_candidate(candidate) || progressed;
    }
    if (out.best.schedule != ScheduleKind::kWhole && out.best.chunk != 0) {
      FuzzCase candidate = out.best;
      candidate.schedule = ScheduleKind::kFixed;
      candidate.chunk = 0;  // expands to chunk size 1
      progressed = try_candidate(candidate) || progressed;
    }

    // Drop the snapshot axis: a failure that isn't about P7 replays without
    // the mid-word freeze/restore detour (still_fails keeps it when it is).
    if (out.best.snapshot_cut != kNoSnapshot) {
      FuzzCase candidate = out.best;
      candidate.snapshot_cut = kNoSnapshot;
      progressed = try_candidate(candidate) || progressed;
    }

    // Drop the wire axis the same way: a non-P8 failure replays without the
    // frame-level server detour.
    if (out.best.wire_split != kNoWire) {
      FuzzCase candidate = out.best;
      candidate.wire_split = kNoWire;
      progressed = try_candidate(candidate) || progressed;
    }

    // Drop the migration detour first (a P9 failure that reproduces without
    // it is a plain crash/recovery bug), then the whole crash axis.
    if (out.best.migrate_step != kNoMigrate) {
      FuzzCase candidate = out.best;
      candidate.migrate_step = kNoMigrate;
      progressed = try_candidate(candidate) || progressed;
    }
    if (out.best.crash_point != kNoCrash) {
      FuzzCase candidate = out.best;
      candidate.crash_point = kNoCrash;
      candidate.migrate_step = kNoMigrate;
      progressed = try_candidate(candidate) || progressed;
    }

    // Smaller instance scale.
    while (out.best.k > 1) {
      FuzzCase candidate = out.best;
      --candidate.k;
      if (!try_candidate(candidate)) break;
      progressed = true;
    }

    // Shorter word: greedy binary descent on the realized length. Each
    // accepted cut re-anchors at the new (shorter) realized length.
    std::size_t len = effective_length(out.best);
    while (len > 0 && out.attempts < max_attempts) {
      bool cut = false;
      for (const std::size_t target :
           {len / 2, (3 * len) / 4, len - 1}) {
        if (target >= len) continue;
        FuzzCase candidate = out.best;
        candidate.truncate_len = target;
        if (try_candidate(candidate)) {
          len = effective_length(out.best);
          progressed = true;
          cut = true;
          break;
        }
      }
      if (!cut) break;
    }
  }
  return out;
}

}  // namespace qols::fuzz
