#include "qols/fuzz/repro.hpp"

#include <charconv>
#include <stdexcept>
#include <vector>

namespace qols::fuzz {

namespace {

// qf5 appended the trailing crash_point/migrate_step fields (PR 10's durable
// crash/recovery axis); qf4 added wire_split (PR 9), qf3 snapshot_cut
// (PR 7), qf2 float_amplitudes (PR 6). Older tokens are rejected rather
// than silently defaulted, so a replay always states every axis it checks.
constexpr std::string_view kVersion = "qf5";

void append_hex(std::string& out, std::uint64_t v) {
  char buf[17];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v, 16);
  out.push_back('-');
  out.append(buf, res.ptr);
}

[[noreturn]] void bad(const std::string& why) {
  throw std::invalid_argument("decode_token: " + why);
}

struct FieldReader {
  std::vector<std::uint64_t> fields;
  std::size_t pos = 0;

  std::uint64_t next(const char* what) {
    if (pos >= fields.size()) bad(std::string("missing field: ") + what);
    return fields[pos++];
  }
  bool exhausted() const { return pos == fields.size(); }
};

}  // namespace

std::string encode_token(const FuzzCase& c) {
  std::string out(kVersion);
  append_hex(out, c.seed);
  append_hex(out, c.k);
  append_hex(out, static_cast<std::uint64_t>(c.word));
  append_hex(out, c.word_param);
  append_hex(out, c.wrappers.size());
  for (const WrapperOp& op : c.wrappers) {
    append_hex(out, static_cast<std::uint64_t>(op.kind));
    append_hex(out, op.a);
    append_hex(out, op.b);
  }
  append_hex(out, c.truncate_len);
  append_hex(out, static_cast<std::uint64_t>(c.schedule));
  append_hex(out, c.chunk);
  append_hex(out, c.sessions);
  append_hex(out, static_cast<std::uint64_t>(c.spec.kind));
  append_hex(out, c.spec.sampling_budget);
  append_hex(out, c.spec.bloom_filter_bits);
  append_hex(out, c.spec.bloom_num_hashes);
  append_hex(out, c.spec.float_amplitudes ? 1 : 0);
  append_hex(out, c.snapshot_cut);
  append_hex(out, c.wire_split);
  append_hex(out, c.crash_point);
  append_hex(out, c.migrate_step);
  return out;
}

FuzzCase decode_token(const std::string& token) {
  if (token.size() < kVersion.size() ||
      token.compare(0, kVersion.size(), kVersion) != 0) {
    bad("unknown version (want '" + std::string(kVersion) + "-...')");
  }
  FieldReader r;
  std::size_t pos = kVersion.size();
  while (pos < token.size()) {
    if (token[pos] != '-') bad("expected '-' separator");
    ++pos;
    const std::size_t start = pos;
    while (pos < token.size() && token[pos] != '-') ++pos;
    std::uint64_t value = 0;
    const auto res =
        std::from_chars(token.data() + start, token.data() + pos, value, 16);
    if (res.ec != std::errc{} || res.ptr != token.data() + pos ||
        pos == start) {
      bad("malformed hex field '" + token.substr(start, pos - start) + "'");
    }
    r.fields.push_back(value);
  }

  FuzzCase c;
  c.seed = r.next("seed");
  // The generator caps k at 4: a k=10 member word would be ~3*10^9 symbols,
  // so a crafted token must not be able to demand it from --replay.
  const std::uint64_t k = r.next("k");
  if (k < 1 || k > 4) bad("k out of range [1, 4]");
  c.k = static_cast<unsigned>(k);
  const std::uint64_t word = r.next("word");
  if (word >= kWordKindCount) bad("unknown word kind");
  c.word = static_cast<WordKind>(word);
  // word_param is a literal word length for kMalformed (the generator caps
  // it at 400); every other family reduces it modulo a small range. Bound
  // it so a crafted token cannot demand a gigabyte word from --replay.
  c.word_param = r.next("word_param");
  if (c.word_param > 4096) bad("word_param out of range [0, 4096]");
  const std::uint64_t nwrap = r.next("wrapper count");
  if (nwrap > kMaxWrappers) bad("too many wrappers");
  for (std::uint64_t i = 0; i < nwrap; ++i) {
    WrapperOp op;
    const std::uint64_t kind = r.next("wrapper kind");
    if (kind >= kWrapperKindCount) bad("unknown wrapper kind");
    op.kind = static_cast<WrapperOp::Kind>(kind);
    op.a = r.next("wrapper a");
    op.b = r.next("wrapper b");
    c.wrappers.push_back(op);
  }
  c.truncate_len = r.next("truncate_len");
  const std::uint64_t sched = r.next("schedule");
  if (sched >= kScheduleKindCount) bad("unknown schedule kind");
  c.schedule = static_cast<ScheduleKind>(sched);
  c.chunk = r.next("chunk");
  const std::uint64_t sessions = r.next("sessions");
  if (sessions < 1 || sessions > kMaxSessions) bad("sessions out of range");
  c.sessions = static_cast<unsigned>(sessions);
  const std::uint64_t rec = r.next("recognizer kind");
  if (rec > static_cast<std::uint64_t>(service::RecognizerKind::kQuantum)) {
    bad("unknown recognizer kind");
  }
  c.spec.kind = static_cast<service::RecognizerKind>(rec);
  // Same DoS reasoning as word_param: the sampler allocates budget-many
  // indices per repetition and the Bloom machine a filter_bits-bit vector,
  // so both stay bounded well above the generator's draws (257 / 509).
  c.spec.sampling_budget = r.next("sampling_budget");
  if (c.spec.sampling_budget > 4096) {
    bad("sampling_budget out of range [0, 4096]");
  }
  c.spec.bloom_filter_bits = r.next("bloom_filter_bits");
  if (c.spec.bloom_filter_bits == 0) bad("bloom_filter_bits must be >= 1");
  if (c.spec.bloom_filter_bits > (std::uint64_t{1} << 20)) {
    bad("bloom_filter_bits out of range [1, 2^20]");
  }
  const std::uint64_t hashes = r.next("bloom_num_hashes");
  if (hashes > 16) bad("bloom_num_hashes out of range");
  c.spec.bloom_num_hashes = static_cast<unsigned>(hashes);
  const std::uint64_t float_amps = r.next("float_amplitudes");
  if (float_amps > 1) bad("float_amplitudes out of range [0, 1]");
  c.spec.float_amplitudes = float_amps == 1;
  // Any value is legal: it is reduced modulo the word length at check time,
  // and kNoSnapshot (all ones) means "skip P7".
  c.snapshot_cut = r.next("snapshot_cut");
  // Likewise: reduced mod 8 (submode) and used as a split seed; kNoWire
  // (all ones) means "skip P8".
  c.wire_split = r.next("wire_split");
  // Likewise: reduced mod (word length + 1) / mod shard count at check time;
  // kNoCrash / kNoMigrate (all ones) mean "skip P9" / "no migration detour".
  c.crash_point = r.next("crash_point");
  c.migrate_step = r.next("migrate_step");
  if (!r.exhausted()) bad("trailing fields");
  return c;
}

}  // namespace qols::fuzz
