#include "qols/fuzz/fuzz_case.hpp"

#include <algorithm>
#include <stdexcept>

#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/rng.hpp"

namespace qols::fuzz {

using stream::Symbol;

const char* word_kind_name(WordKind kind) {
  switch (kind) {
    case WordKind::kMember:
      return "member";
    case WordKind::kIntersecting:
      return "intersecting";
    case WordKind::kMutant:
      return "mutant";
    case WordKind::kMalformed:
      return "malformed";
    case WordKind::kBoundary:
      return "boundary";
  }
  throw std::invalid_argument("word_kind_name: unknown WordKind");
}

const std::vector<std::string>& boundary_words() {
  // Parser-boundary fixtures: empty tape, bare/broken prefixes, lone
  // separators, the shortest member (k=1, x=y=0000), one separator short of
  // it, and a shape-perfect k=1 word whose blocks intersect everywhere.
  static const std::vector<std::string> words = {
      "",
      "1",
      "0",
      "#",
      "1#",
      "11#",
      "1##",
      "1#0000#",
      "1#0000#0000#0000#0000#0000#0000#",
      "1#0000#0000#0000#0000#0000#0000",
      "1#1111#1111#1111#1111#1111#1111#",
  };
  return words;
}

namespace {

/// Weighted pick: `weights` are per-index relative weights summing to any
/// positive total; returns the drawn index.
unsigned pick_weighted(util::SplitMix64& sm,
                       std::initializer_list<unsigned> weights) {
  unsigned total = 0;
  for (const unsigned w : weights) total += w;
  std::uint64_t roll = sm.next() % total;
  unsigned idx = 0;
  for (const unsigned w : weights) {
    if (roll < w) return idx;
    roll -= w;
    ++idx;
  }
  return idx - 1;
}

std::string random_symbols(std::uint64_t seed, std::uint64_t len) {
  util::SplitMix64 sm(seed);
  std::string out;
  out.reserve(static_cast<std::size_t>(len));
  static constexpr char kAlphabet[3] = {'0', '1', '#'};
  for (std::uint64_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[sm.next() % 3]);
  }
  return out;
}

/// The base word stream plus its exact length, before wrappers.
struct BaseStream {
  std::unique_ptr<stream::SymbolStream> stream;
  std::uint64_t length = 0;
};

BaseStream make_base_stream(const FuzzCase& c) {
  util::Rng rng(c.seed);
  switch (c.word) {
    case WordKind::kMember: {
      const auto inst = lang::LDisjInstance::make_disjoint(c.k, rng);
      return {inst.stream(), inst.word_length()};
    }
    case WordKind::kIntersecting: {
      const std::uint64_t m = std::uint64_t{1} << (2 * c.k);
      const std::uint64_t t = 1 + c.word_param % std::min<std::uint64_t>(m, 4);
      const auto inst = lang::LDisjInstance::make_with_intersections(c.k, t, rng);
      return {inst.stream(), inst.word_length()};
    }
    case WordKind::kMutant: {
      const auto inst = lang::LDisjInstance::make_disjoint(c.k, rng);
      const auto kind = static_cast<lang::MutantKind>(c.word_param % 6);
      auto s = lang::make_mutant_stream(inst, kind, rng);
      // Mutants keep the base length except truncation (shorter) and
      // trailing garbage (+2, see make_mutant_stream); both report an exact
      // length_hint, so read it back instead of duplicating that knowledge.
      const auto hint = s->length_hint();
      const std::uint64_t len = hint ? *hint : inst.word_length();
      return {std::move(s), len};
    }
    case WordKind::kMalformed: {
      std::string text = random_symbols(c.seed ^ 0xa5a5'a5a5'5a5a'5a5aULL,
                                        c.word_param);
      const std::uint64_t len = text.size();
      return {std::make_unique<stream::StringStream>(std::move(text)), len};
    }
    case WordKind::kBoundary: {
      const auto& words = boundary_words();
      const std::string& text = words[c.word_param % words.size()];
      return {std::make_unique<stream::StringStream>(text), text.size()};
    }
  }
  throw std::invalid_argument("make_base_stream: unknown WordKind");
}

}  // namespace

FuzzCase FuzzCase::from_seed(std::uint64_t seed) {
  util::SplitMix64 sm(seed);
  FuzzCase c;
  c.seed = seed;

  // Word family: mutants get the largest share (they exercise every wrapper
  // and both rejection procedures); boundary fixtures the smallest.
  c.word = static_cast<WordKind>(pick_weighted(sm, {22, 22, 26, 20, 10}));

  // Scale: mostly k <= 3; k = 4 words (~12k symbols) stay rare so the soak
  // spends its budget on case diversity, not symbol count.
  static constexpr unsigned kByIndex[4] = {1, 2, 3, 4};
  c.k = kByIndex[pick_weighted(sm, {30, 40, 25, 5})];

  // Recognizer family: classical machines dominate (cheap per symbol);
  // quantum cases cap k at 3 and mostly run at k <= 2, where the dense
  // register stays tiny.
  static constexpr service::RecognizerKind kKinds[5] = {
      service::RecognizerKind::kClassicalBlock,
      service::RecognizerKind::kClassicalFull,
      service::RecognizerKind::kClassicalSampling,
      service::RecognizerKind::kClassicalBloom,
      service::RecognizerKind::kQuantum,
  };
  c.spec.kind = kKinds[pick_weighted(sm, {28, 18, 18, 18, 18})];
  if (c.spec.kind == service::RecognizerKind::kQuantum) {
    c.k = std::min(c.k, 3u);
    if (c.k == 3 && sm.next() % 3 != 0) c.k = 2;
  }
  // Sub-lower-bound parameters, including the degenerate budgets the spec
  // tests pin down (0 = sample nothing; 1-bit filter = everything collides).
  static constexpr std::uint64_t kBudgets[5] = {0, 1, 4, 16, 257};
  c.spec.sampling_budget = kBudgets[sm.next() % 5];
  static constexpr std::uint64_t kFilterBits[4] = {1, 2, 64, 509};
  c.spec.bloom_filter_bits = kFilterBits[sm.next() % 4];
  c.spec.bloom_num_hashes = 1 + static_cast<unsigned>(sm.next() % 3);

  switch (c.word) {
    case WordKind::kIntersecting:
      c.word_param = 1 + sm.next() % 4;
      break;
    case WordKind::kMutant:
      c.word_param = sm.next() % 6;
      break;
    case WordKind::kMalformed:
      c.word_param = sm.next() % 400;
      break;
    case WordKind::kBoundary:
      c.word_param = sm.next() % boundary_words().size();
      break;
    case WordKind::kMember:
      break;
  }

  // Wrapper stack: usually none (the word families already cover single
  // injections), sometimes 1-3 composed wrappers with raw parameters.
  const unsigned wrapper_count = pick_weighted(sm, {55, 25, 15, 5});
  for (unsigned i = 0; i < wrapper_count; ++i) {
    WrapperOp op;
    op.kind = static_cast<WrapperOp::Kind>(sm.next() % kWrapperKindCount);
    op.a = sm.next();
    op.b = sm.next();
    c.wrappers.push_back(op);
  }

  c.schedule = static_cast<ScheduleKind>(pick_weighted(sm, {15, 55, 30}));
  c.chunk = sm.next();
  c.sessions = 1 + static_cast<unsigned>(sm.next() % kMaxSessions);

  // Precision axis, quantum cases only: half the quantum corpus runs the
  // float-amplitude fast path, so P6 (and the P2/P3/P5 pipeline) exercises
  // it continuously. Drawn last so the seed->case mapping for every earlier
  // field is unchanged from the qf1 generator.
  if (c.spec.kind == service::RecognizerKind::kQuantum) {
    c.spec.float_amplitudes = sm.next() % 2 == 1;
  }

  // Snapshot axis (P7), half the corpus: freeze mid-word, restore into a
  // fresh recognizer, finish. Both draws are unconditional so the seed->field
  // mapping of everything above is unchanged from the qf2 generator.
  const std::uint64_t snap_roll = sm.next();
  const std::uint64_t snap_pos = sm.next();
  c.snapshot_cut = snap_roll % 2 == 1 ? snap_pos : kNoSnapshot;

  // Wire axis (P8), half the corpus: replay the sessions over the server's
  // frame decoder + session broker and compare verdicts. Unconditional draws
  // again, so the qf3 seed->field mapping above survives intact.
  const std::uint64_t wire_roll = sm.next();
  const std::uint64_t wire_val = sm.next();
  c.wire_split = wire_roll % 2 == 1 ? wire_val : kNoWire;

  // Crash/recovery axis (P9), half the corpus: feed a durable service to a
  // seeded cut, persist() + die, recover() in a fresh service, finish, and
  // demand the straight-through verdict. Half the crashing cases also take a
  // cross-shard migrate() detour before the checkpoint. All four draws are
  // unconditional so the qf4 seed->field mapping above survives intact.
  const std::uint64_t crash_roll = sm.next();
  const std::uint64_t crash_pos = sm.next();
  const std::uint64_t migrate_roll = sm.next();
  const std::uint64_t migrate_val = sm.next();
  c.crash_point = crash_roll % 2 == 1 ? crash_pos : kNoCrash;
  c.migrate_step = c.crash_point != kNoCrash && migrate_roll % 2 == 1
                       ? migrate_val
                       : kNoMigrate;
  return c;
}

std::unique_ptr<stream::SymbolStream> build_stream(const FuzzCase& c) {
  BaseStream base = make_base_stream(c);
  std::unique_ptr<stream::SymbolStream> s = std::move(base.stream);
  std::uint64_t len = base.length;
  for (const WrapperOp& op : c.wrappers) {
    switch (op.kind) {
      case WrapperOp::Kind::kTruncate: {
        const std::uint64_t keep = op.a % (len + 1);
        s = std::make_unique<stream::TruncatedStream>(std::move(s), keep);
        len = std::min(len, keep);
        break;
      }
      case WrapperOp::Kind::kCorrupt: {
        const std::uint64_t pos = len > 0 ? op.a % len : 0;
        const auto replacement = static_cast<Symbol>(op.b % 3);
        s = std::make_unique<stream::CorruptingStream>(std::move(s), pos,
                                                       replacement);
        break;
      }
      case WrapperOp::Kind::kAppend: {
        const std::uint64_t suffix_len = 1 + op.a % 8;
        s = std::make_unique<stream::AppendingStream>(
            std::move(s), random_symbols(op.b, suffix_len));
        len += suffix_len;
        break;
      }
    }
  }
  if (c.truncate_len != kNoTruncate) {
    s = std::make_unique<stream::TruncatedStream>(std::move(s),
                                                  c.truncate_len);
  }
  return s;
}

std::vector<Symbol> realize_word(const FuzzCase& c) {
  auto s = build_stream(c);
  std::vector<Symbol> out;
  if (const auto hint = s->length_hint()) out.reserve(*hint);
  while (auto sym = s->next()) out.push_back(*sym);
  return out;
}

std::vector<std::size_t> expand_schedule(const FuzzCase& c,
                                         std::size_t word_len) {
  std::vector<std::size_t> sizes;
  if (word_len == 0) return sizes;
  switch (c.schedule) {
    case ScheduleKind::kWhole:
      sizes.push_back(word_len);
      break;
    case ScheduleKind::kFixed: {
      const std::size_t step = 1 + static_cast<std::size_t>(c.chunk % word_len);
      for (std::size_t done = 0; done < word_len; done += step) {
        sizes.push_back(std::min(step, word_len - done));
      }
      break;
    }
    case ScheduleKind::kRagged: {
      util::SplitMix64 sm(c.seed ^ c.chunk ^ 0x5eed'5eed'5eed'5eedULL);
      const std::size_t cap = std::min<std::size_t>(word_len, 97);
      std::size_t done = 0;
      while (done < word_len) {
        const std::size_t step =
            std::min<std::size_t>(1 + sm.next() % cap, word_len - done);
        sizes.push_back(step);
        done += step;
      }
      break;
    }
  }
  return sizes;
}

std::uint64_t recognizer_seed(const FuzzCase& c, unsigned session) {
  // SplitMix-style finalizer over (seed, session): decorrelates the
  // recognizer's RNG stream from the word-content draws, which consume
  // Rng(seed) directly.
  std::uint64_t z = c.seed + 0x9e37'79b9'7f4a'7c15ULL * (session + 1);
  z = (z ^ (z >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d0'49bb'1331'11ebULL;
  return z ^ (z >> 31);
}

std::string describe(const FuzzCase& c) {
  std::string out = "seed=" + std::to_string(c.seed) +
                    " k=" + std::to_string(c.k) + " word=" +
                    word_kind_name(c.word) +
                    " param=" + std::to_string(c.word_param) +
                    " rec=" + service::recognizer_kind_name(c.spec.kind);
  if (c.spec.float_amplitudes) out += " float";
  if (!c.wrappers.empty()) {
    out += " wrappers=";
    for (const WrapperOp& op : c.wrappers) {
      out += op.kind == WrapperOp::Kind::kTruncate   ? 'T'
             : op.kind == WrapperOp::Kind::kCorrupt ? 'C'
                                                    : 'A';
    }
  }
  if (c.truncate_len != kNoTruncate) {
    out += " cut=" + std::to_string(c.truncate_len);
  }
  if (c.snapshot_cut != kNoSnapshot) {
    out += " snapcut=" + std::to_string(c.snapshot_cut);
  }
  if (c.wire_split != kNoWire) {
    out += " wire=" + std::to_string(c.wire_split);
  }
  if (c.crash_point != kNoCrash) {
    out += " crashcut=" + std::to_string(c.crash_point);
    if (c.migrate_step != kNoMigrate) {
      out += " migrate=" + std::to_string(c.migrate_step);
    }
  }
  out += " schedule=";
  out += c.schedule == ScheduleKind::kWhole   ? "whole"
         : c.schedule == ScheduleKind::kFixed ? "fixed"
                                              : "ragged";
  out += " sessions=" + std::to_string(c.sessions);
  return out;
}

}  // namespace qols::fuzz
