#include "qols/fuzz/properties.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>

#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/server/session_broker.hpp"
#include "qols/telemetry/registry.hpp"
#include "qols/util/rng.hpp"

namespace qols::fuzz {

using machine::OnlineRecognizer;
using service::RecognizerKind;
using stream::Symbol;

const char* word_class_name(WordClass cls) {
  switch (cls) {
    case WordClass::kShapeViolation:
      return "shape-violation";
    case WordClass::kInconsistent:
      return "inconsistent";
    case WordClass::kIntersecting:
      return "intersecting";
    case WordClass::kMember:
      return "member";
  }
  throw std::invalid_argument("word_class_name: unknown WordClass");
}

WordClass classify_word(const std::vector<Symbol>& w) {
  // Shape condition (i), mirroring StructureValidator: 1^k # then exactly
  // 3*2^k blocks of exactly m = 2^{2k} data bits, each '#'-terminated, and
  // nothing after the last '#'. The validator caps k at 20.
  std::size_t pos = 0;
  while (pos < w.size() && w[pos] == Symbol::kOne) ++pos;
  const std::size_t k = pos;
  if (k < 1 || k > 20 || pos >= w.size() || w[pos] != Symbol::kSep) {
    return WordClass::kShapeViolation;
  }
  ++pos;
  const std::uint64_t m = std::uint64_t{1} << (2 * k);
  const std::uint64_t blocks = std::uint64_t{3} << k;
  // Every block consumes >= 1 symbol, so this loop is O(|w|): it exits with
  // a verdict as soon as the word runs out, long before `blocks` iterations
  // matter for the (physically unrealizable) large-k shapes.
  const std::size_t body = pos;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    if (w.size() - pos < m + 1) return WordClass::kShapeViolation;
    for (std::uint64_t i = 0; i < m; ++i) {
      if (w[pos + i] == Symbol::kSep) return WordClass::kShapeViolation;
    }
    if (w[pos + m] != Symbol::kSep) return WordClass::kShapeViolation;
    pos += m + 1;
  }
  if (pos != w.size()) return WordClass::kShapeViolation;

  // Consistency (ii)/(iii): x- and z-blocks (b % 3 != 1) equal block 0,
  // y-blocks equal block 1.
  const auto block_start = [&](std::uint64_t b) {
    return body + static_cast<std::size_t>(b * (m + 1));
  };
  for (std::uint64_t b = 1; b < blocks; ++b) {
    const std::size_t ref = block_start(b % 3 == 1 ? 1 : 0);
    const std::size_t cur = block_start(b);
    if (cur == ref) continue;
    if (!std::equal(w.begin() + cur, w.begin() + cur + m, w.begin() + ref)) {
      return WordClass::kInconsistent;
    }
  }

  // Disjointness of x(1) and y(1).
  const std::size_t x0 = block_start(0);
  const std::size_t y0 = block_start(1);
  for (std::uint64_t i = 0; i < m; ++i) {
    if (w[x0 + i] == Symbol::kOne && w[y0 + i] == Symbol::kOne) {
      return WordClass::kIntersecting;
    }
  }
  return WordClass::kMember;
}

namespace {

/// Everything a finished run exposes; compared field-for-field.
struct Outcome {
  bool accepted = false;
  bool fully_simulated = true;
  std::uint64_t classical_bits = 0;
  std::uint64_t qubits = 0;

  bool operator==(const Outcome&) const = default;
};

Outcome finish_outcome(OnlineRecognizer& rec) {
  Outcome out;
  out.accepted = rec.finish();
  out.fully_simulated = rec.fully_simulated();
  const auto space = rec.space_used();
  out.classical_bits = space.classical_bits;
  out.qubits = space.qubits;
  return out;
}

Outcome run_per_symbol(const service::RecognizerSpec& spec, std::uint64_t seed,
                       const std::vector<Symbol>& word) {
  auto rec = spec.make(seed);
  for (const Symbol s : word) rec->feed(s);
  return finish_outcome(*rec);
}

Outcome run_scheduled(const service::RecognizerSpec& spec, std::uint64_t seed,
                      const std::vector<Symbol>& word,
                      const std::vector<std::size_t>& sizes) {
  auto rec = spec.make(seed);
  std::size_t done = 0;
  for (const std::size_t n : sizes) {
    rec->feed_chunk(std::span<const Symbol>(word.data() + done, n));
    done += n;
  }
  return finish_outcome(*rec);
}

std::string outcome_diff(const Outcome& a, const Outcome& b) {
  std::string out;
  if (a.accepted != b.accepted) {
    out += " accepted " + std::to_string(a.accepted) + " vs " +
           std::to_string(b.accepted);
  }
  if (a.fully_simulated != b.fully_simulated) {
    out += " fully_simulated " + std::to_string(a.fully_simulated) + " vs " +
           std::to_string(b.fully_simulated);
  }
  if (a.classical_bits != b.classical_bits) {
    out += " classical_bits " + std::to_string(a.classical_bits) + " vs " +
           std::to_string(b.classical_bits);
  }
  if (a.qubits != b.qubits) {
    out += " qubits " + std::to_string(a.qubits) + " vs " +
           std::to_string(b.qubits);
  }
  return out;
}

void check_stream_transport(const FuzzCase& c,
                            const std::vector<Symbol>& word,
                            std::vector<Discrepancy>& issues) {
  // Same stack, drained through next_chunk at an awkward seeded buffer size
  // (with one leading next() so the cursor hand-off is exercised too).
  auto s = build_stream(c);
  std::vector<Symbol> chunked;
  chunked.reserve(word.size());
  if (auto first = s->next()) chunked.push_back(*first);
  std::vector<Symbol> buf(1 + c.seed % 97);
  while (true) {
    const std::size_t n = s->next_chunk(buf);
    if (n == 0) break;
    chunked.insert(chunked.end(), buf.begin(), buf.begin() + n);
  }
  if (chunked != word) {
    std::size_t at = 0;
    while (at < std::min(chunked.size(), word.size()) &&
           chunked[at] == word[at]) {
      ++at;
    }
    issues.push_back(
        {"P1-stream-transport",
         "next() and next_chunk() drains diverge: lengths " +
             std::to_string(word.size()) + " vs " +
             std::to_string(chunked.size()) + ", first mismatch at " +
             std::to_string(at)});
  }
}

void check_oracle(const FuzzCase& c, WordClass cls, const Outcome& reference,
                  std::vector<Discrepancy>& issues) {
  const RecognizerKind kind = c.spec.kind;
  const auto expect = [&](bool want, const char* why) {
    if (reference.accepted != want) {
      issues.push_back(
          {"P3-oracle",
           std::string(service::recognizer_kind_name(kind)) + " on a " +
               word_class_name(cls) + " word: expected " +
               (want ? "accept" : "reject") + " (" + why + "), got " +
               (reference.accepted ? "accept" : "reject")});
    }
  };
  switch (cls) {
    case WordClass::kMember:
      // Perfect completeness: A1/A2 never err on equal blocks, and no
      // machine that only compares real bits of x against real bits of y
      // can find a nonexistent intersection. The Bloom machine is the one
      // exception — false positives wrongly reject members by design.
      if (kind == RecognizerKind::kClassicalBlock ||
          kind == RecognizerKind::kClassicalFull ||
          kind == RecognizerKind::kClassicalSampling) {
        expect(true, "deterministic member acceptance");
      } else if (kind == RecognizerKind::kQuantum &&
                 reference.fully_simulated) {
        expect(true, "perfect completeness of Theorem 3.4");
      }
      break;
    case WordClass::kShapeViolation:
      // A1 is deterministic and runs in every machine.
      expect(false, "A1 rejects shape violations with certainty");
      break;
    case WordClass::kIntersecting:
      // Exact-coverage machines reject with certainty; the Bloom filter has
      // no false negatives.
      if (kind == RecognizerKind::kClassicalBlock ||
          kind == RecognizerKind::kClassicalFull) {
        expect(false, "every index is checked");
      } else if (kind == RecognizerKind::kClassicalBloom) {
        expect(false, "Bloom filters have no false negatives");
      }
      break;
    case WordClass::kInconsistent:
      // Caught by fingerprints only w.h.p. — no per-run guarantee.
      break;
  }
}

void check_backends(const FuzzCase& c, const std::vector<Symbol>& word,
                    std::vector<Discrepancy>& issues) {
  // The backends' ceilings differ (dense simulates k <= 10, structured
  // k <= 16): a word whose prefix parses to a k in that gap is honestly
  // simulated by one and honestly refused by the other — a selection-policy
  // asymmetry, not a bug. The machine reads k from the word itself, so a
  // malformed word with 11+ leading ones reaches the gap even though the
  // generator caps the instance k at 3. P4 asserts only where both
  // ceilings cover the parsed k.
  std::size_t ones = 0;
  while (ones < word.size() && word[ones] == Symbol::kOne) ++ones;
  if (ones > 10 && ones < word.size() && word[ones] == Symbol::kSep) return;
  const std::uint64_t seed = recognizer_seed(c, 0);
  service::RecognizerSpec dense = c.spec;
  dense.backend = "dense";
  service::RecognizerSpec structured = c.spec;
  structured.backend = "structured";
  const std::vector<std::size_t> whole =
      word.empty() ? std::vector<std::size_t>{}
                   : std::vector<std::size_t>{word.size()};
  const Outcome a = run_scheduled(dense, seed, word, whole);
  const Outcome b = run_scheduled(structured, seed, word, whole);
  // Space is conceptual (a function of k, not of the simulating backend),
  // so the full outcome must match field-for-field.
  if (!(a == b)) {
    issues.push_back({"P4-backend-equality",
                      "dense vs structured:" + outcome_diff(a, b)});
  }
}

void check_precision(const service::RecognizerSpec& pinned_spec,
                     std::uint64_t seed, const std::vector<Symbol>& word,
                     std::vector<Discrepancy>& issues) {
  // Same seed, same word, whole-word schedule; the only variable is the
  // amplitude scalar. RNG draws (measurement + A2 fingerprints) consume the
  // stream identically in both precisions and accept/reject thresholds are
  // accumulated in double either way, so the Outcome must be bit-identical —
  // not merely close (the contract test_precision_differential.cpp pins at
  // the backend layer, asserted here across the whole fuzz corpus).
  service::RecognizerSpec dbl = pinned_spec;
  dbl.float_amplitudes = false;
  service::RecognizerSpec flt = pinned_spec;
  flt.float_amplitudes = true;
  const std::vector<std::size_t> whole =
      word.empty() ? std::vector<std::size_t>{}
                   : std::vector<std::size_t>{word.size()};
  const Outcome a = run_scheduled(dbl, seed, word, whole);
  const Outcome b = run_scheduled(flt, seed, word, whole);
  if (!(a == b)) {
    issues.push_back(
        {"P6-precision-equality", "double vs float:" + outcome_diff(a, b)});
  }
}

void check_snapshot_resume(const FuzzCase& c,
                           const service::RecognizerSpec& pinned_spec,
                           const std::vector<Symbol>& word,
                           const Outcome& reference,
                           std::vector<Discrepancy>& issues) {
  const std::size_t cut =
      static_cast<std::size_t>(c.snapshot_cut % (word.size() + 1));
  const std::uint64_t seed = recognizer_seed(c, 0);
  try {
    auto first = pinned_spec.make(seed);
    first->feed_chunk(std::span<const Symbol>(word.data(), cut));
    const std::vector<std::uint8_t> bytes = first->snapshot();
    // The resumed half runs in a recognizer built from a DIFFERENT seed:
    // equality below proves restore() overwrites the constructed state
    // entirely, rng included, rather than merely patching counters.
    auto second = pinned_spec.make(seed ^ 0x5eed'5eed'5eed'5eedULL);
    second->restore(bytes);
    second->feed_chunk(
        std::span<const Symbol>(word.data() + cut, word.size() - cut));
    const Outcome resumed = finish_outcome(*second);
    if (!(resumed == reference)) {
      issues.push_back({"P7-snapshot-resume",
                        "straight vs snapshot at " + std::to_string(cut) +
                            "/" + std::to_string(word.size()) + ":" +
                            outcome_diff(reference, resumed)});
    }
  } catch (const std::exception& e) {
    // Every recognizer the generator can draw promises a working snapshot;
    // an UnsupportedSnapshot or DecodeError here is a real defect.
    issues.push_back({"P7-snapshot-resume",
                      "snapshot at " + std::to_string(cut) + "/" +
                          std::to_string(word.size()) + " threw: " +
                          e.what()});
  }
}

void check_service(const FuzzCase& c, const std::vector<Symbol>& word,
                   const Outcome& reference,
                   std::vector<Discrepancy>& issues) {
  service::RecognizerService::Config cfg;
  cfg.spec = c.spec;
  // Rotate the flush threshold through "every feed", "tiny batches" and the
  // default so both the pooled-flush and the finish-drain paths serve words.
  static constexpr std::uint64_t kThresholds[3] = {0, 256,
                                                   std::uint64_t{1} << 18};
  cfg.flush_threshold = kThresholds[c.seed % 3];
  service::RecognizerService svc(cfg);

  std::vector<service::RecognizerService::SessionId> ids;
  for (unsigned s = 0; s < c.sessions; ++s) {
    ids.push_back(svc.open(recognizer_seed(c, s)));
  }
  // Round-robin with ragged, per-session chunk sizes: the adversarial
  // interleaving for anything that assumed one stream per recognizer.
  util::SplitMix64 sm(c.seed ^ 0xc0ffee);
  std::vector<std::size_t> cursors(c.sessions, 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (unsigned s = 0; s < c.sessions; ++s) {
      if (cursors[s] >= word.size()) continue;
      const std::size_t n = std::min<std::size_t>(
          1 + sm.next() % 83, word.size() - cursors[s]);
      svc.feed(ids[s], std::span<const Symbol>(word.data() + cursors[s], n));
      cursors[s] += n;
      progressed = true;
    }
  }
  // Finish in reverse order; every session must reproduce its single-stream
  // outcome exactly (session 0's reference is the per-symbol run).
  std::vector<Outcome> served(c.sessions);
  for (unsigned s = c.sessions; s-- > 0;) {
    const auto verdict = svc.finish(ids[s]);
    served[s] = {verdict.accepted, verdict.fully_simulated,
                 verdict.space.classical_bits, verdict.space.qubits};
  }
  const std::vector<std::size_t> whole =
      word.empty() ? std::vector<std::size_t>{}
                   : std::vector<std::size_t>{word.size()};
  for (unsigned s = 0; s < c.sessions; ++s) {
    const Outcome single =
        s == 0 ? reference
               : run_scheduled(c.spec, recognizer_seed(c, s), word, whole);
    if (!(served[s] == single)) {
      issues.push_back({"P5-service-identity",
                        "session " + std::to_string(s) + " of " +
                            std::to_string(c.sessions) + ":" +
                            outcome_diff(served[s], single)});
    }
  }
}

void check_wire(const FuzzCase& c, const std::vector<Symbol>& word,
                const Outcome& reference,
                std::vector<Discrepancy>& issues) {
  // P8: encode the P5 session script into wire frames, deliver the byte
  // stream to the server's FrameDecoder + SessionBroker at fuzzer-chosen
  // ragged split points, and demand verdicts bit-identical to direct
  // single-stream runs. wire_split % 8 picks a submode: 7 smashes a length
  // prefix (oversized frame), 5 smashes a FEED symbol byte (invalid
  // symbol); both must die with a typed kMalformedFrame error and a closed
  // connection — never a crash or UB.
  namespace wire = server::wire;
  using server::SessionBroker;

  service::RecognizerService::Config cfg;
  cfg.spec = c.spec;
  // Same threshold rotation as P5, keyed off the wire axis so the pooled
  // and inline feed paths both serve framed bytes across the corpus.
  static constexpr std::uint64_t kThresholds[3] = {0, 256,
                                                   std::uint64_t{1} << 18};
  cfg.flush_threshold = kThresholds[c.wire_split % 3];
  service::RecognizerService svc(cfg);
  server::BrokerShared shared(svc, {});
  SessionBroker broker(shared);

  // The client script: HELLO, OPEN each session at wire id s+1, ragged
  // round-robin FEED interleave (the P5 adversarial schedule, reframed),
  // one STATS probe, FINISH in reverse order. Frame start offsets and the
  // first FEED symbol offset feed the corrupt submodes.
  std::vector<std::uint8_t> script;
  std::vector<std::size_t> frame_starts;
  std::size_t first_feed_symbol = 0;  // 0 = the script has no FEED frames
  frame_starts.push_back(script.size());
  wire::append_hello(script, {});
  for (unsigned s = 0; s < c.sessions; ++s) {
    frame_starts.push_back(script.size());
    wire::append_open(script, {s + 1, recognizer_seed(c, s)});
  }
  util::SplitMix64 sm(c.wire_split ^ 0xf4a3'0000'00c0'ffeeULL);
  std::vector<std::size_t> cursors(c.sessions, 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (unsigned s = 0; s < c.sessions; ++s) {
      if (cursors[s] >= word.size()) continue;
      const std::size_t n = std::min<std::size_t>(
          1 + sm.next() % 83, word.size() - cursors[s]);
      frame_starts.push_back(script.size());
      if (first_feed_symbol == 0) {
        first_feed_symbol = script.size() + wire::kFrameHeaderSize + 8;
      }
      wire::append_feed(script, s + 1,
                        std::span<const Symbol>(word.data() + cursors[s], n));
      cursors[s] += n;
      progressed = true;
    }
  }
  frame_starts.push_back(script.size());
  wire::append_frame(script, wire::FrameType::kStats, {});
  for (unsigned s = c.sessions; s-- > 0;) {
    frame_starts.push_back(script.size());
    wire::append_finish(script, {s + 1});
  }

  bool expect_close = false;
  const unsigned mode = static_cast<unsigned>(c.wire_split % 8);
  if (mode == 7) {
    // High byte of a length prefix -> 0xff: a >16 MiB frame the decoder
    // must refuse before buffering, losing framing for good.
    const std::size_t at = frame_starts[sm.next() % frame_starts.size()];
    script[at + 3] = 0xff;
    expect_close = true;
  } else if (mode == 5 && first_feed_symbol != 0) {
    script[first_feed_symbol] = 0x07;  // not a Symbol; read_feed must throw
    expect_close = true;
  }

  // Deliver at ragged, seeded byte boundaries — deliberately not frame
  // boundaries — pumping after every arrival like the epoll loop does.
  std::vector<std::uint8_t> out;
  constexpr std::size_t kBudget = std::size_t{1} << 26;
  auto result = SessionBroker::PumpResult::kIdle;
  util::SplitMix64 split_sm(c.wire_split ^ 0x5eed'f4a3'5eed'f4a3ULL);
  std::size_t done = 0;
  while (done < script.size()) {
    const std::size_t n = std::min<std::size_t>(1 + split_sm.next() % 251,
                                                script.size() - done);
    broker.ingest(
        std::span<const std::uint8_t>(script.data() + done, n));
    done += n;
    result = broker.pump(out, kBudget);
    if (result == SessionBroker::PumpResult::kClose) break;
  }

  // Decode the server's responses with the same incremental decoder.
  bool hello_ok = false;
  bool stats_seen = false;
  unsigned open_oks = 0;
  std::vector<bool> have_verdict(c.sessions, false);
  std::vector<Outcome> verdicts(c.sessions);
  std::optional<wire::Error> last_error;
  wire::FrameDecoder client;
  client.append(out);
  try {
    while (auto f = client.next()) {
      switch (f->type) {
        case wire::FrameType::kHelloOk:
          hello_ok = true;
          break;
        case wire::FrameType::kOpenOk:
          ++open_oks;
          break;
        case wire::FrameType::kVerdict: {
          const auto v = wire::read_verdict(f->payload);
          if (v.session >= 1 && v.session <= c.sessions) {
            have_verdict[v.session - 1] = true;
            verdicts[v.session - 1] = {v.accepted, v.fully_simulated,
                                       v.classical_bits, v.qubits};
          } else {
            issues.push_back({"P8-wire-identity",
                              "verdict for unknown wire session " +
                                  std::to_string(v.session)});
          }
          break;
        }
        case wire::FrameType::kStatsText:
          stats_seen = true;
          break;
        case wire::FrameType::kError:
          last_error = wire::read_error(f->payload);
          break;
        default:
          issues.push_back(
              {"P8-wire-identity",
               std::string("unexpected response frame ") +
                   wire::frame_type_name(f->type)});
      }
    }
  } catch (const util::serde::DecodeError& e) {
    issues.push_back({"P8-wire-identity",
                      std::string("server response undecodable: ") +
                          e.what()});
    return;
  }
  if (client.buffered_bytes() != 0) {
    issues.push_back({"P8-wire-identity",
                      "trailing bytes after the last response frame"});
  }

  if (expect_close) {
    // The corrupted script must produce a typed malformed-frame error and a
    // closed connection; anything the broker served before the corruption
    // point is legitimate and unasserted.
    if (result != SessionBroker::PumpResult::kClose || !broker.closed()) {
      issues.push_back({"P8-wire-identity",
                        "corrupt frame (mode " + std::to_string(mode) +
                            ") did not close the connection"});
    }
    if (!last_error ||
        last_error->code != wire::ErrorCode::kMalformedFrame) {
      issues.push_back(
          {"P8-wire-identity",
           "corrupt frame (mode " + std::to_string(mode) +
               ") did not produce a kMalformedFrame error frame"});
    }
    return;
  }

  if (result == SessionBroker::PumpResult::kClose || broker.closed()) {
    issues.push_back({"P8-wire-identity",
                      std::string("clean script closed the connection: ") +
                          (last_error ? last_error->message : "no error")});
    return;
  }
  if (!hello_ok || open_oks != c.sessions || !stats_seen) {
    issues.push_back({"P8-wire-identity",
                      "missing responses: hello_ok=" +
                          std::to_string(hello_ok) + " open_oks=" +
                          std::to_string(open_oks) + "/" +
                          std::to_string(c.sessions) + " stats=" +
                          std::to_string(stats_seen)});
    return;
  }
  const std::vector<std::size_t> whole =
      word.empty() ? std::vector<std::size_t>{}
                   : std::vector<std::size_t>{word.size()};
  for (unsigned s = 0; s < c.sessions; ++s) {
    if (!have_verdict[s]) {
      issues.push_back({"P8-wire-identity",
                        "no verdict for session " + std::to_string(s)});
      continue;
    }
    const Outcome single =
        s == 0 ? reference
               : run_scheduled(c.spec, recognizer_seed(c, s), word, whole);
    if (!(verdicts[s] == single)) {
      issues.push_back({"P8-wire-identity",
                        "session " + std::to_string(s) + " of " +
                            std::to_string(c.sessions) + ":" +
                            outcome_diff(verdicts[s], single)});
    }
  }
}

void check_crash(const FuzzCase& c,
                 const service::RecognizerSpec& pinned_spec,
                 const std::vector<Symbol>& word, const Outcome& reference,
                 std::vector<Discrepancy>& issues) {
  // P9: interrupted-recover-resume vs straight-through. A durable service
  // feeds the word to a seeded cut, checkpoints with persist() and dies; a
  // fresh service over the same directory recover()s the session from the
  // manifest + spill, feeds the rest and finishes. The verdict (and
  // SpaceReport) must be bit-identical to the uninterrupted run — the
  // restart-resume contract of the durable session table, asserted across
  // the whole fuzz corpus instead of just the unit-test scripts.
  namespace fs = std::filesystem;
  static std::atomic<std::uint64_t> sequence{0};
  const fs::path dir =
      fs::temp_directory_path() /
      ("qols-fuzz-crash-" + std::to_string(::getpid()) + "-" +
       std::to_string(sequence.fetch_add(1)));
  const std::size_t cut =
      static_cast<std::size_t>(c.crash_point % (word.size() + 1));
  const std::uint64_t seed = recognizer_seed(c, 0);

  const auto fail = [&](const std::string& detail) {
    issues.push_back({"P9-crash-recovery",
                      "crash at " + std::to_string(cut) + "/" +
                          std::to_string(word.size()) + ": " + detail});
  };
  try {
    fs::create_directories(dir);
    service::RecognizerService::Config cfg;
    cfg.spec = pinned_spec;
    cfg.spill_dir = dir.string();
    cfg.durable = true;
    service::RecognizerService::SessionId id = 0;
    {
      service::RecognizerService svc(cfg);
      id = svc.open(seed);
      if (cut > 0) {
        svc.feed(id, std::span<const Symbol>(word.data(), cut));
      }
      if (c.migrate_step != kNoMigrate) {
        // The detour: move the session across shards right before the
        // checkpoint, so recovery also proves migrated placement persists.
        svc.migrate(id, static_cast<std::size_t>(
                            c.migrate_step % svc.shard_count()));
      }
      if (svc.persist() != 1) fail("persist() did not checkpoint 1 session");
    }  // the crash: the first incarnation dies here

    service::RecognizerService svc(cfg);
    if (!svc.pending_recovery()) {
      fail("restarted service found no manifest to recover");
    } else {
      const auto report = svc.recover();
      if (report.sessions_recovered != 1 || !report.lost.empty()) {
        fail("recover() reported " +
             std::to_string(report.sessions_recovered) + " recovered, " +
             std::to_string(report.lost.size()) + " lost (want 1, 0)");
      } else {
        if (cut < word.size()) {
          svc.feed(id, std::span<const Symbol>(word.data() + cut,
                                               word.size() - cut));
        }
        const auto verdict = svc.finish(id);
        const Outcome resumed{verdict.accepted, verdict.fully_simulated,
                              verdict.space.classical_bits,
                              verdict.space.qubits};
        if (!(resumed == reference)) {
          fail("straight vs interrupted:" +
               outcome_diff(reference, resumed));
        }
      }
    }
  } catch (const std::exception& e) {
    // Every step above is a promised-to-work path: persist of a live
    // session, recovery of a clean checkpoint, resume of an adopted
    // session. Any throw is a real defect.
    fail(std::string("threw: ") + e.what());
  }
  std::error_code ec;
  fs::remove_all(dir, ec);  // best effort; the dir is per-case unique
}

}  // namespace

CaseResult check_case(const FuzzCase& c) {
  // One counter per property, counting CHECKS EXECUTED (not failures):
  // after a soak, "fuzz.checks.p4" == the number of cases that actually
  // exercised the backend-equality axis, not just the corpus size.
  struct CheckCounters {
    telemetry::Counter& p1;
    telemetry::Counter& p2;
    telemetry::Counter& p3;
    telemetry::Counter& p4;
    telemetry::Counter& p5;
    telemetry::Counter& p6;
    telemetry::Counter& p7;
    telemetry::Counter& p8;
    telemetry::Counter& p9;
  };
  static CheckCounters checks{
      telemetry::MetricsRegistry::global().counter("fuzz.checks.p1"),
      telemetry::MetricsRegistry::global().counter("fuzz.checks.p2"),
      telemetry::MetricsRegistry::global().counter("fuzz.checks.p3"),
      telemetry::MetricsRegistry::global().counter("fuzz.checks.p4"),
      telemetry::MetricsRegistry::global().counter("fuzz.checks.p5"),
      telemetry::MetricsRegistry::global().counter("fuzz.checks.p6"),
      telemetry::MetricsRegistry::global().counter("fuzz.checks.p7"),
      telemetry::MetricsRegistry::global().counter("fuzz.checks.p8"),
      telemetry::MetricsRegistry::global().counter("fuzz.checks.p9")};

  CaseResult result;
  const std::vector<Symbol> word = realize_word(c);
  result.word_len = word.size();

  // P1: the stream stack itself is transport-invariant.
  checks.p1.add();
  check_stream_transport(c, word, result.issues);

  // An empty backend id would defer to the QOLS_BACKEND environment
  // override, making the same token check different things in different
  // environments. Pin the explicit "auto" policy (which beats the env var)
  // so check_case is a pure function of the case — the replay guarantee.
  FuzzCase pinned = c;
  if (pinned.spec.kind == RecognizerKind::kQuantum &&
      pinned.spec.backend.empty()) {
    pinned.spec.backend = "auto";
  }

  // P2: chunk schedule vs per-symbol feeding, bit for bit.
  checks.p2.add();
  const std::uint64_t seed = recognizer_seed(c, 0);
  const Outcome reference = run_per_symbol(pinned.spec, seed, word);
  const Outcome chunked =
      run_scheduled(pinned.spec, seed, word, expand_schedule(c, word.size()));
  if (!(reference == chunked)) {
    result.issues.push_back(
        {"P2-chunk-invariance",
         "per-symbol vs scheduled chunks:" + outcome_diff(reference, chunked)});
  }

  // P3: exact-oracle agreement (plus the classifier's own cross-check
  // against the repo's reference oracle).
  checks.p3.add();
  result.cls = classify_word(word);
  std::string text;
  text.reserve(word.size());
  for (const Symbol s : word) text.push_back(stream::symbol_to_char(s));
  if ((result.cls == WordClass::kMember) != lang::is_member_reference(text)) {
    result.issues.push_back(
        {"P3-oracle", std::string("classify_word says ") +
                          word_class_name(result.cls) +
                          " but is_member_reference disagrees"});
  }
  check_oracle(c, result.cls, reference, result.issues);

  // P4: dense vs structured backend, quantum cases only.
  if (c.spec.kind == RecognizerKind::kQuantum) {
    checks.p4.add();
    check_backends(c, word, result.issues);
  }

  // P6: float vs double amplitudes, quantum cases only.
  if (c.spec.kind == RecognizerKind::kQuantum) {
    checks.p6.add();
    check_precision(pinned.spec, seed, word, result.issues);
  }

  // P7: snapshot mid-word, restore into a fresh recognizer, same outcome.
  if (c.snapshot_cut != kNoSnapshot) {
    checks.p7.add();
    check_snapshot_resume(c, pinned.spec, word, reference, result.issues);
  }

  // P5: the serving layer reproduces single-stream verdicts.
  checks.p5.add();
  check_service(pinned, word, reference, result.issues);

  // P8: the wire protocol layer reproduces them too, at any framing, and
  // dies typed (not crashed) on corrupted frames.
  if (c.wire_split != kNoWire) {
    checks.p8.add();
    check_wire(pinned, word, reference, result.issues);
  }

  // P9: a crash after a persist() checkpoint loses nothing — the recovered
  // run's verdict equals the straight-through run's.
  if (c.crash_point != kNoCrash) {
    checks.p9.add();
    check_crash(c, pinned.spec, word, reference, result.issues);
  }

  return result;
}

}  // namespace qols::fuzz
