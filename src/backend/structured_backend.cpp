#include "qols/backend/structured_backend.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "qols/telemetry/registry.hpp"

namespace qols::backend {

namespace {

bool same_amps(const std::vector<Amplitude>& a,
               const std::vector<Amplitude>& b) {
  // Bit-exact comparison: coalescing must never change the represented
  // state, only its factorization into classes.
  return a == b;
}

}  // namespace

StructuredBackend::StructuredBackend(unsigned num_qubits, unsigned index_width)
    : num_qubits_(num_qubits), index_width_(index_width) {
  if (index_width == 0 || index_width >= num_qubits) {
    throw std::invalid_argument(
        "StructuredBackend: index_width must be in [1, num_qubits)");
  }
  if (index_width > 58 || num_qubits - index_width > 16) {
    throw std::invalid_argument(
        "StructuredBackend: index register capped at 58 qubits, tail at 16");
  }
  tail_width_ = num_qubits - index_width;
  index_size_ = std::uint64_t{1} << index_width_;
  sectors_ = std::size_t{1} << tail_width_;
  reset();
}

void StructuredBackend::reset() {
  classes_.clear();
  // |0...0>: index 0 carries the whole state; everything else has a zero
  // tail vector and lives in the rest class.
  AmpClass zero;
  zero.amp.assign(sectors_, Amplitude{0.0, 0.0});
  zero.amp[0] = Amplitude{1.0, 0.0};
  zero.count = 1;
  zero.members.insert(0);
  AmpClass rest;
  rest.amp.assign(sectors_, Amplitude{0.0, 0.0});
  rest.count = index_size_ - 1;
  rest.is_rest = true;
  classes_.push_back(std::move(zero));
  classes_.push_back(std::move(rest));
  peak_classes_ = classes_.size();
}

std::size_t StructuredBackend::explicit_index_count() const noexcept {
  std::size_t n = 0;
  for (const auto& c : classes_) n += c.members.size();
  return n;
}

std::size_t StructuredBackend::find_class(std::uint64_t index) const {
  std::size_t rest = classes_.size();
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].is_rest) {
      rest = i;
    } else if (classes_[i].members.contains(index)) {
      return i;
    }
  }
  return rest;
}

std::size_t StructuredBackend::isolate(std::uint64_t index) {
  const std::size_t owner = find_class(index);
  AmpClass& c = classes_[owner];
  if (!c.is_rest && c.count == 1) return owner;
  if (c.is_rest) {
    --c.count;
  } else {
    c.members.erase(index);
    --c.count;
  }
  AmpClass single;
  single.amp = c.amp;
  single.count = 1;
  single.members.insert(index);
  classes_.push_back(std::move(single));
  peak_classes_ = std::max(peak_classes_, classes_.size());
  return classes_.size() - 1;
}

void StructuredBackend::coalesce() {
  // Merge identical-amplitude classes (invariant I3). Quadratic in the
  // class count, which I3 itself keeps tiny (A3 peaks at ~6).
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    for (std::size_t j = classes_.size(); j-- > i + 1;) {
      if (!same_amps(classes_[i].amp, classes_[j].amp)) continue;
      // Absorb j into i; if either is the rest class, the survivor is rest
      // (explicit members dissolve into the complement).
      AmpClass& a = classes_[i];
      AmpClass& b = classes_[j];
      a.count += b.count;
      if (a.is_rest || b.is_rest) {
        a.is_rest = true;
        a.members.clear();
      } else if (a.members.size() < b.members.size()) {
        b.members.insert(a.members.begin(), a.members.end());
        a.members = std::move(b.members);
      } else {
        a.members.insert(b.members.begin(), b.members.end());
      }
      classes_.erase(classes_.begin() +
                     static_cast<std::ptrdiff_t>(j));
    }
  }
  // Drop emptied explicit classes (the rest class stays even at count 0 so
  // invariant I1's "exactly one rest class" holds unconditionally).
  std::erase_if(classes_, [](const AmpClass& c) {
    return !c.is_rest && c.count == 0;
  });
  peak_classes_ = std::max(peak_classes_, classes_.size());
}

void StructuredBackend::require_full_index_range(unsigned first, unsigned count,
                                                 const char* op) const {
  if (first != 0 || count != index_width_) {
    throw UnsupportedOperation(
        std::string(op) + " on a sub-range of the index register");
  }
}

unsigned StructuredBackend::tail_bit(unsigned q, const char* op) const {
  if (q < index_width_ || q >= num_qubits_) {
    throw UnsupportedOperation(std::string(op) +
                               " on index-register qubit " + std::to_string(q));
  }
  return q - index_width_;
}

double StructuredBackend::sector_norm(const AmpClass& c) const {
  double s = 0.0;
  for (const Amplitude& a : c.amp) s += std::norm(a);
  return s;
}

// --- single-qubit gates ----------------------------------------------------

void StructuredBackend::apply_h(unsigned q) {
  const unsigned b = tail_bit(q, "H");
  const std::size_t bit = std::size_t{1} << b;
  constexpr double inv_sqrt2 = std::numbers::sqrt2 / 2.0;
  for (AmpClass& c : classes_) {
    for (std::size_t s = 0; s < sectors_; ++s) {
      if (s & bit) continue;
      const Amplitude lo = c.amp[s];
      const Amplitude hi = c.amp[s | bit];
      c.amp[s] = (lo + hi) * inv_sqrt2;
      c.amp[s | bit] = (lo - hi) * inv_sqrt2;
    }
  }
  coalesce();
}

void StructuredBackend::apply_x(unsigned q) {
  if (q < index_width_) {
    // X on an index qubit permutes basis indices i -> i ^ bit. Explicit
    // member sets are re-keyed; the rest class is the complement of the
    // explicit sets, and complements are preserved by any permutation.
    const std::uint64_t bit = std::uint64_t{1} << q;
    for (AmpClass& c : classes_) {
      if (c.is_rest) continue;
      std::unordered_set<std::uint64_t> moved;
      moved.reserve(c.members.size());
      for (std::uint64_t i : c.members) moved.insert(i ^ bit);
      c.members = std::move(moved);
    }
    return;
  }
  const std::size_t bit = std::size_t{1} << tail_bit(q, "X");
  for (AmpClass& c : classes_) {
    for (std::size_t s = 0; s < sectors_; ++s) {
      if (!(s & bit)) std::swap(c.amp[s], c.amp[s | bit]);
    }
  }
  coalesce();
}

void StructuredBackend::apply_z(unsigned q) {
  const std::size_t bit = std::size_t{1} << tail_bit(q, "Z");
  for (AmpClass& c : classes_) {
    for (std::size_t s = 0; s < sectors_; ++s) {
      if (s & bit) c.amp[s] = -c.amp[s];
    }
  }
  coalesce();
}

// --- pattern-controlled gates ----------------------------------------------

namespace {

struct SplitControls {
  std::uint64_t index_mask = 0;
  std::uint64_t index_want = 0;
  std::size_t tail_mask = 0;
  std::size_t tail_want = 0;
};

}  // namespace

void StructuredBackend::apply_mcx(std::span<const ControlTerm> controls,
                                  unsigned target) {
  SplitControls sc;
  for (const ControlTerm& c : controls) {
    if (c.qubit < index_width_) {
      sc.index_mask |= std::uint64_t{1} << c.qubit;
      if (c.value) sc.index_want |= std::uint64_t{1} << c.qubit;
    } else {
      const std::size_t bit = std::size_t{1} << (c.qubit - index_width_);
      sc.tail_mask |= bit;
      if (c.value) sc.tail_want |= bit;
    }
  }
  const std::size_t tbit = std::size_t{1} << tail_bit(target, "MCX target");
  auto flip_sectors = [&](AmpClass& c) {
    for (std::size_t s = 0; s < sectors_; ++s) {
      if (s & tbit) continue;
      // Controls never include the target, so both pair halves agree on
      // the control condition.
      if ((s & sc.tail_mask) != sc.tail_want) continue;
      std::swap(c.amp[s], c.amp[s | tbit]);
    }
  };
  if (sc.index_mask == 0) {
    for (AmpClass& c : classes_) flip_sectors(c);
  } else if (sc.index_mask == index_size_ - 1) {
    flip_sectors(classes_[isolate(sc.index_want)]);
  } else {
    throw UnsupportedOperation(
        "MCX with a partial index-register control pattern");
  }
  coalesce();
}

void StructuredBackend::apply_mcz(std::span<const ControlTerm> controls) {
  SplitControls sc;
  for (const ControlTerm& c : controls) {
    if (c.qubit < index_width_) {
      sc.index_mask |= std::uint64_t{1} << c.qubit;
      if (c.value) sc.index_want |= std::uint64_t{1} << c.qubit;
    } else {
      const std::size_t bit = std::size_t{1} << (c.qubit - index_width_);
      sc.tail_mask |= bit;
      if (c.value) sc.tail_want |= bit;
    }
  }
  auto phase_sectors = [&](AmpClass& c) {
    for (std::size_t s = 0; s < sectors_; ++s) {
      if ((s & sc.tail_mask) == sc.tail_want) c.amp[s] = -c.amp[s];
    }
  };
  if (sc.index_mask == 0) {
    for (AmpClass& c : classes_) phase_sectors(c);
  } else if (sc.index_mask == index_size_ - 1) {
    phase_sectors(classes_[isolate(sc.index_want)]);
  } else {
    throw UnsupportedOperation(
        "MCZ with a partial index-register control pattern");
  }
  coalesce();
}

// --- structured A3 operators -----------------------------------------------

void StructuredBackend::apply_h_range(unsigned first, unsigned count) {
  require_full_index_range(first, count, "H range");
  // H^{(x)w} is only representable at the two endpoints A3 uses: preparing
  // the uniform superposition from an index-0 product state, and (its
  // inverse) collapsing a single-class state back onto index 0.
  const double root_m = std::sqrt(static_cast<double>(index_size_));
  if (classes_.size() == 1) {
    // Uniform class -> all amplitude onto index 0.
    AmpClass zero;
    zero.amp = classes_.front().amp;
    for (Amplitude& a : zero.amp) a *= root_m;
    zero.count = 1;
    zero.members.insert(0);
    AmpClass rest;
    rest.amp.assign(sectors_, Amplitude{0.0, 0.0});
    rest.count = index_size_ - 1;
    rest.is_rest = true;
    classes_.clear();
    classes_.push_back(std::move(zero));
    classes_.push_back(std::move(rest));
    coalesce();
    return;
  }
  const std::size_t zero_class = find_class(0);
  // The inverse direction demands all amplitude on index 0 *alone*: the
  // class holding index 0 must be the singleton {0} (a larger class means
  // other indices share its non-trivial amplitude) and every other class
  // must carry nothing.
  if (classes_[zero_class].count != 1) {
    throw UnsupportedOperation(
        "H range on a state that is neither an index-0 product state nor "
        "index-uniform");
  }
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (i == zero_class) continue;
    if (sector_norm(classes_[i]) != 0.0) {
      throw UnsupportedOperation(
          "H range on a state that is neither an index-0 product state nor "
          "index-uniform");
    }
  }
  AmpClass rest;
  rest.amp = classes_[zero_class].amp;
  for (Amplitude& a : rest.amp) a /= root_m;
  rest.count = index_size_;
  rest.is_rest = true;
  classes_.clear();
  classes_.push_back(std::move(rest));
  peak_classes_ = std::max(peak_classes_, classes_.size());
}

void StructuredBackend::apply_reflect_zero(unsigned first, unsigned count) {
  require_full_index_range(first, count, "reflect-zero");
  const std::size_t zero_class = isolate(0);
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (i == zero_class) continue;
    for (Amplitude& a : classes_[i].amp) a = -a;
  }
  coalesce();
}

void StructuredBackend::apply_grover_diffusion(unsigned first,
                                               unsigned count) {
  // Same site as the dense adapter: "quantum.diffusion" aggregates the
  // kernel across backends (the backend id is fixed per service/run, so
  // attribution is unambiguous in practice).
  static telemetry::SpanSite site =
      telemetry::SpanSite::resolve("quantum.diffusion");
  telemetry::TraceSpan span(site);
  require_full_index_range(first, count, "Grover diffusion");
  // 2|u><u| - I acts sector-wise: within each tail sector s the index
  // amplitudes reflect about their mean, amp -> 2*mean_s - amp.
  const double inv_m = 1.0 / static_cast<double>(index_size_);
  std::vector<Amplitude> mean(sectors_, Amplitude{0.0, 0.0});
  for (const AmpClass& c : classes_) {
    const double weight = static_cast<double>(c.count);
    for (std::size_t s = 0; s < sectors_; ++s) {
      mean[s] += weight * c.amp[s];
    }
  }
  for (Amplitude& a : mean) a *= inv_m;
  for (AmpClass& c : classes_) {
    for (std::size_t s = 0; s < sectors_; ++s) {
      c.amp[s] = 2.0 * mean[s] - c.amp[s];
    }
  }
  coalesce();
}

void StructuredBackend::apply_phase_flip_set(
    std::span<const std::uint64_t> marked) {
  const std::uint64_t index_mask = index_size_ - 1;
  for (std::uint64_t basis : marked) {
    const std::uint64_t i = basis & index_mask;
    const std::size_t s = static_cast<std::size_t>(basis >> index_width_);
    AmpClass& c = classes_[isolate(i)];
    c.amp[s] = -c.amp[s];
  }
  coalesce();
}

void StructuredBackend::apply_x_on_index(unsigned first, unsigned count,
                                         std::uint64_t index,
                                         unsigned target) {
  require_full_index_range(first, count, "X-on-index");
  const std::size_t tbit = std::size_t{1} << tail_bit(target, "X-on-index");
  AmpClass& c = classes_[isolate(index)];
  for (std::size_t s = 0; s < sectors_; ++s) {
    if (!(s & tbit)) std::swap(c.amp[s], c.amp[s | tbit]);
  }
  coalesce();
}

void StructuredBackend::apply_z_on_index(unsigned first, unsigned count,
                                         std::uint64_t index, unsigned h) {
  require_full_index_range(first, count, "Z-on-index");
  const std::size_t hbit = std::size_t{1} << tail_bit(h, "Z-on-index");
  AmpClass& c = classes_[isolate(index)];
  for (std::size_t s = 0; s < sectors_; ++s) {
    if (s & hbit) c.amp[s] = -c.amp[s];
  }
  coalesce();
}

void StructuredBackend::apply_cx_on_index(unsigned first, unsigned count,
                                          std::uint64_t index, unsigned h,
                                          unsigned target) {
  require_full_index_range(first, count, "CX-on-index");
  const std::size_t hbit = std::size_t{1} << tail_bit(h, "CX-on-index");
  const std::size_t tbit = std::size_t{1} << tail_bit(target, "CX-on-index");
  AmpClass& c = classes_[isolate(index)];
  for (std::size_t s = 0; s < sectors_; ++s) {
    if ((s & hbit) && !(s & tbit)) std::swap(c.amp[s], c.amp[s | tbit]);
  }
  coalesce();
}

// --- measurement / probes --------------------------------------------------

double StructuredBackend::probability_one(unsigned q) const {
  if (q >= num_qubits_) {
    throw UnsupportedOperation("probability of out-of-range qubit");
  }
  if (q >= index_width_) {
    const std::size_t bit = std::size_t{1} << (q - index_width_);
    double p = 0.0;
    for (const AmpClass& c : classes_) {
      double sector_mass = 0.0;
      for (std::size_t s = 0; s < sectors_; ++s) {
        if (s & bit) sector_mass += std::norm(c.amp[s]);
      }
      p += static_cast<double>(c.count) * sector_mass;
    }
    return p;
  }
  // Index-register qubit: count members with the bit set per class; the
  // rest class holds the complement of every explicit set.
  const std::uint64_t bit = std::uint64_t{1} << q;
  std::uint64_t explicit_with_bit = 0;
  double p = 0.0;
  double rest_norm = 0.0;
  for (const AmpClass& c : classes_) {
    if (c.is_rest) {
      rest_norm = sector_norm(c);
      continue;
    }
    std::uint64_t with_bit = 0;
    for (std::uint64_t i : c.members) {
      if (i & bit) ++with_bit;
    }
    explicit_with_bit += with_bit;
    p += static_cast<double>(with_bit) * sector_norm(c);
  }
  const std::uint64_t total_with_bit = index_size_ / 2;
  p += static_cast<double>(total_with_bit - explicit_with_bit) * rest_norm;
  return p;
}

bool StructuredBackend::measure(unsigned q, util::Rng& rng) {
  const std::size_t bit = std::size_t{1} << tail_bit(q, "measure");
  const double p1 = probability_one(q);
  // Same draw and comparison as StateVector::measure, so backends consume
  // RNG identically and decisions stay seed-for-seed comparable.
  const bool outcome = rng.uniform01() < p1;
  const double keep_p = outcome ? p1 : 1.0 - p1;
  const double scale = keep_p > 0.0 ? 1.0 / std::sqrt(keep_p) : 0.0;
  for (AmpClass& c : classes_) {
    for (std::size_t s = 0; s < sectors_; ++s) {
      const bool is_one = (s & bit) != 0;
      if (is_one == outcome) {
        c.amp[s] *= scale;
      } else {
        c.amp[s] = Amplitude{0.0, 0.0};
      }
    }
  }
  coalesce();
  return outcome;
}

Amplitude StructuredBackend::amplitude(std::uint64_t basis) const {
  const std::uint64_t i = basis & (index_size_ - 1);
  const std::size_t s = static_cast<std::size_t>(basis >> index_width_);
  if (s >= sectors_) return Amplitude{0.0, 0.0};
  return classes_[find_class(i)].amp[s];
}

double StructuredBackend::norm() const {
  double total = 0.0;
  for (const AmpClass& c : classes_) {
    total += static_cast<double>(c.count) * sector_norm(c);
  }
  return std::sqrt(total);
}

void StructuredBackend::serialize_state(util::serde::ByteWriter& w) const {
  w.u32(num_qubits_);
  w.u32(index_width_);
  w.u64(peak_classes_);
  w.u64(classes_.size());
  for (const AmpClass& c : classes_) {
    w.b(c.is_rest);
    w.u64(c.count);
    for (const Amplitude& a : c.amp) {
      w.f64(a.real());
      w.f64(a.imag());
    }
    // Sorted membership: equal states serialize to equal bytes no matter
    // what insertion order the unordered_set saw.
    std::vector<std::uint64_t> members(c.members.begin(), c.members.end());
    std::sort(members.begin(), members.end());
    w.u64_vec(members);
  }
}

void StructuredBackend::restore_state(util::serde::ByteReader& r) {
  if (r.u32() != num_qubits_ || r.u32() != index_width_) {
    throw util::serde::DecodeError("structured backend: geometry mismatch");
  }
  const std::uint64_t peak = r.u64();
  const std::uint64_t n_classes = r.u64();
  // Each class carries at least sectors_ amplitudes (16 bytes apiece); cap
  // the claimed count before allocating.
  if (n_classes == 0 || n_classes > r.remaining() / (sectors_ * 16)) {
    throw util::serde::DecodeError("structured backend: bad class count");
  }
  std::vector<AmpClass> classes;
  classes.reserve(static_cast<std::size_t>(n_classes));
  std::uint64_t total_count = 0;
  std::size_t rest_classes = 0;
  for (std::uint64_t ci = 0; ci < n_classes; ++ci) {
    AmpClass c;
    c.is_rest = r.b();
    c.count = r.u64();
    c.amp.reserve(sectors_);
    for (std::size_t s = 0; s < sectors_; ++s) {
      const double re = r.f64();
      const double im = r.f64();
      c.amp.emplace_back(re, im);
    }
    const std::vector<std::uint64_t> members = r.u64_vec();
    if (c.is_rest) {
      if (!members.empty()) {
        throw util::serde::DecodeError("structured backend: rest with members");
      }
      ++rest_classes;
    } else {
      if (members.size() != c.count) {
        throw util::serde::DecodeError(
            "structured backend: member count mismatch");
      }
      for (const std::uint64_t m : members) {
        if (m >= index_size_) {
          throw util::serde::DecodeError(
              "structured backend: member out of range");
        }
        c.members.insert(m);
      }
      if (c.members.size() != members.size()) {
        throw util::serde::DecodeError("structured backend: duplicate member");
      }
    }
    total_count += c.count;
    classes.push_back(std::move(c));
  }
  // Invariant I1 before committing anything: exactly one rest class and a
  // full partition of the index range.
  if (rest_classes != 1 || total_count != index_size_) {
    throw util::serde::DecodeError("structured backend: broken partition");
  }
  classes_ = std::move(classes);
  peak_classes_ = std::max<std::size_t>(static_cast<std::size_t>(peak),
                                        classes_.size());
}

}  // namespace qols::backend
