#include "qols/backend/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "qols/backend/dense_backend.hpp"
#include "qols/backend/structured_backend.hpp"

namespace qols::backend {

void BackendRegistry::add(BackendFactory factory) {
  factories_.push_back(std::move(factory));
}

const BackendFactory* BackendRegistry::find(
    std::string_view id) const noexcept {
  for (const auto& f : factories_) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

std::vector<std::string> BackendRegistry::ids() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& f : factories_) out.push_back(f.id);
  return out;
}

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry registry = [] {
    BackendRegistry r;
    r.add({.id = std::string(kDenseBackendId),
           .description =
               "exact 2^n-amplitude StateVector (reference semantics)",
           // 2k+2 <= 30 qubits: the StateVector ceiling.
           .hard_max_k = 14,
           .create = [](unsigned num_qubits, unsigned index_width,
                        quantum::Precision precision) {
             (void)index_width;  // dense keeps no register split
             if (precision == quantum::Precision::kSingle) {
               return std::unique_ptr<QuantumBackend>(
                   std::make_unique<DenseBackendF>(num_qubits));
             }
             return std::unique_ptr<QuantumBackend>(
                 std::make_unique<DenseBackend>(num_qubits));
           }});
    r.add({.id = std::string(kStructuredBackendId),
           .description =
               "amplitude-equivalence-class simulation; O(#classes) per A3 "
               "operation",
           // Index register 2k <= 58 bits keeps 64-bit index arithmetic.
           .hard_max_k = 29,
           .create = [](unsigned num_qubits, unsigned index_width,
                        quantum::Precision precision) {
             // Double-only by design: the structured backend stores one
             // amplitude per equivalence CLASS (O(k) of them), so float
             // would save nothing while costing the exactness anchor past
             // the dense wall. A float request degrades to double here,
             // which the precision differential layer depends on: the auto
             // policy must keep identical decisions across the dense ->
             // structured switchover in both modes.
             (void)precision;
             return std::unique_ptr<QuantumBackend>(
                 std::make_unique<StructuredBackend>(num_qubits,
                                                     index_width));
           }});
    return r;
  }();
  return registry;
}

std::unique_ptr<QuantumBackend> make_backend(std::string_view id,
                                             unsigned num_qubits,
                                             unsigned index_width,
                                             quantum::Precision precision) {
  const BackendFactory* f = BackendRegistry::global().find(id);
  if (f == nullptr) {
    throw std::invalid_argument("unknown quantum backend '" + std::string(id) +
                                "' (registered: dense, structured)");
  }
  return f->create(num_qubits, index_width, precision);
}

std::optional<std::string> resolve_backend_id(std::string_view requested,
                                              unsigned k,
                                              unsigned max_dense_k,
                                              unsigned max_structured_k) {
  BackendRegistry& reg = BackendRegistry::global();
  if (!requested.empty() && requested != kAutoBackendId) {
    const BackendFactory* f = reg.find(requested);
    if (f == nullptr) {
      throw std::invalid_argument("unknown quantum backend '" +
                                  std::string(requested) +
                                  "' (registered: dense, structured)");
    }
    const unsigned caller_ceiling = requested == kDenseBackendId
                                        ? max_dense_k
                                        : max_structured_k;
    if (k > std::min(caller_ceiling, f->hard_max_k)) return std::nullopt;
    return std::string(requested);
  }
  const BackendFactory* dense = reg.find(kDenseBackendId);
  if (dense != nullptr && k <= std::min(max_dense_k, dense->hard_max_k)) {
    return std::string(kDenseBackendId);
  }
  const BackendFactory* structured = reg.find(kStructuredBackendId);
  if (structured != nullptr &&
      k <= std::min(max_structured_k, structured->hard_max_k)) {
    return std::string(kStructuredBackendId);
  }
  return std::nullopt;
}

const std::optional<std::string>& env_backend_override() {
  static const std::optional<std::string> cached =
      []() -> std::optional<std::string> {
    const char* raw = std::getenv("QOLS_BACKEND");
    if (raw == nullptr || *raw == '\0') return std::nullopt;
    const std::string_view value(raw);
    if (value == kAutoBackendId) return std::nullopt;  // auto == default
    if (BackendRegistry::global().find(value) == nullptr) {
      std::cerr << "qols: ignoring QOLS_BACKEND='" << value
                << "' (registered: dense, structured, auto)\n";
      return std::nullopt;
    }
    return std::string(value);
  }();
  return cached;
}

}  // namespace qols::backend
