#include "qols/quantum/circuit.hpp"

#include <algorithm>
#include <charconv>

namespace qols::quantum {

void apply_gate(StateVector& state, const Gate& g) {
  if (g.is_identity()) return;
  switch (g.kind) {
    case GateKind::kH:
      state.apply_h(g.a);
      break;
    case GateKind::kT:
      state.apply_t(g.a);
      break;
    case GateKind::kCnot:
      state.apply_cnot(g.a, g.b);
      break;
  }
}

void Circuit::append(const Circuit& other) {
  gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

void Circuit::apply_to(StateVector& state) const {
  for (const Gate& g : gates_) apply_gate(state, g);
}

Circuit::Counts Circuit::counts() const noexcept {
  Counts c;
  for (const Gate& g : gates_) {
    if (g.is_identity()) {
      ++c.identity;
      continue;
    }
    switch (g.kind) {
      case GateKind::kH:
        ++c.h;
        break;
      case GateKind::kT:
        ++c.t;
        break;
      case GateKind::kCnot:
        ++c.cnot;
        break;
    }
  }
  return c;
}

unsigned Circuit::qubits_spanned() const noexcept {
  std::uint32_t max_label = 0;
  bool any = false;
  for (const Gate& g : gates_) {
    max_label = std::max({max_label, g.a, g.b});
    any = true;
  }
  return any ? max_label + 1 : 0;
}

std::string Circuit::to_tape() const {
  std::string out;
  out.reserve(gates_.size() * 6);
  bool first = true;
  for (const Gate& g : gates_) {
    if (!first) out.push_back('#');
    first = false;
    out += std::to_string(g.a);
    out.push_back('#');
    out += std::to_string(g.b);
    out.push_back('#');
    out += std::to_string(static_cast<unsigned>(g.kind));
  }
  return out;
}

std::optional<Circuit> Circuit::from_tape(std::string_view tape) {
  Circuit circuit;
  if (tape.empty()) return circuit;

  std::vector<std::uint64_t> fields;
  std::size_t pos = 0;
  while (pos <= tape.size()) {
    const std::size_t next = tape.find('#', pos);
    const std::string_view token =
        tape.substr(pos, next == std::string_view::npos ? tape.size() - pos
                                                        : next - pos);
    if (token.empty()) return std::nullopt;
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      return std::nullopt;
    }
    fields.push_back(value);
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }

  if (fields.size() % 3 != 0) return std::nullopt;
  for (std::size_t i = 0; i < fields.size(); i += 3) {
    const std::uint64_t a = fields[i];
    const std::uint64_t b = fields[i + 1];
    const std::uint64_t c = fields[i + 2];
    if (c > 2 || a > UINT32_MAX || b > UINT32_MAX) return std::nullopt;
    circuit.add(Gate{static_cast<GateKind>(c), static_cast<std::uint32_t>(a),
                     static_cast<std::uint32_t>(b)});
  }
  return circuit;
}

}  // namespace qols::quantum
