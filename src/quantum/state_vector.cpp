#include "qols/quantum/state_vector.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

#include "qols/util/thread_pool.hpp"

namespace qols::quantum {
namespace {

// Below this many amplitudes, kernels run serially: thread dispatch would
// dominate for the tiny registers of small k.
constexpr std::size_t kParallelGrain = std::size_t{1} << 14;

}  // namespace

StateVector::StateVector(unsigned num_qubits) : num_qubits_(num_qubits) {
  // Validate before the allocation: 2^31 amplitudes would already be a
  // 32 GiB request, so a bad count must fail with a diagnosis, not an
  // attempted multi-GiB allocation (or worse, a shift past 63 bits).
  if (num_qubits == 0 || num_qubits > 30) {
    throw std::invalid_argument(
        "StateVector: num_qubits must be in [1, 30] (16 GiB of amplitudes "
        "at 30), got " +
        std::to_string(num_qubits) +
        "; use the structured backend for larger index registers");
  }
  amps_.assign(std::size_t{1} << num_qubits, Amplitude{0.0, 0.0});
  amps_[0] = Amplitude{1.0, 0.0};
}

void StateVector::reset() { set_basis_state(0); }

void StateVector::set_basis_state(std::size_t basis) {
  assert(basis < dim());
  std::fill(amps_.begin(), amps_.end(), Amplitude{0.0, 0.0});
  amps_[basis] = Amplitude{1.0, 0.0};
}

// Iterates over all (i0, i1) pairs differing only in bit q; fn(i0, i1) is
// applied in parallel chunks. g enumerates dim/2 pair indices; the pair's
// low index interleaves g around bit q.
template <typename Fn>
void StateVector::for_pairs(unsigned q, Fn&& fn) {
  const std::size_t half = dim() >> 1;
  const std::size_t low_mask = (std::size_t{1} << q) - 1;
  const std::size_t bit = std::size_t{1} << q;
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t g = lo; g < hi; ++g) {
      const std::size_t i0 = ((g & ~low_mask) << 1) | (g & low_mask);
      fn(i0, i0 | bit);
    }
  };
  if (half <= kParallelGrain) {
    body(0, half);
  } else {
    util::parallel_for(0, half, kParallelGrain, body);
  }
}

void StateVector::apply_h(unsigned q) {
  assert(q < num_qubits_);
  constexpr double inv_sqrt2 = std::numbers::sqrt2 / 2.0;
  for_pairs(q, [&](std::size_t i0, std::size_t i1) {
    const Amplitude a = amps_[i0];
    const Amplitude b = amps_[i1];
    amps_[i0] = (a + b) * inv_sqrt2;
    amps_[i1] = (a - b) * inv_sqrt2;
  });
}

void StateVector::apply_x(unsigned q) {
  assert(q < num_qubits_);
  for_pairs(q, [&](std::size_t i0, std::size_t i1) {
    std::swap(amps_[i0], amps_[i1]);
  });
}

void StateVector::apply_z(unsigned q) {
  apply_phase(q, Amplitude{-1.0, 0.0});
}

void StateVector::apply_t(unsigned q) {
  constexpr double c = std::numbers::sqrt2 / 2.0;
  apply_phase(q, Amplitude{c, c});
}

void StateVector::apply_tdg(unsigned q) {
  constexpr double c = std::numbers::sqrt2 / 2.0;
  apply_phase(q, Amplitude{c, -c});
}

void StateVector::apply_s(unsigned q) { apply_phase(q, Amplitude{0.0, 1.0}); }

void StateVector::apply_sdg(unsigned q) { apply_phase(q, Amplitude{0.0, -1.0}); }

void StateVector::apply_phase(unsigned q, Amplitude phase) {
  assert(q < num_qubits_);
  for_pairs(q, [&](std::size_t /*i0*/, std::size_t i1) {
    amps_[i1] *= phase;
  });
}

void StateVector::apply_single(unsigned q, Amplitude u00, Amplitude u01,
                               Amplitude u10, Amplitude u11) {
  assert(q < num_qubits_);
  for_pairs(q, [&](std::size_t i0, std::size_t i1) {
    const Amplitude a = amps_[i0];
    const Amplitude b = amps_[i1];
    amps_[i0] = u00 * a + u01 * b;
    amps_[i1] = u10 * a + u11 * b;
  });
}

void StateVector::apply_cnot(unsigned control, unsigned target) {
  assert(control < num_qubits_ && target < num_qubits_);
  if (control == target) return;  // paper's a == b => identity convention
  const std::size_t cbit = std::size_t{1} << control;
  for_pairs(target, [&](std::size_t i0, std::size_t i1) {
    if (i0 & cbit) std::swap(amps_[i0], amps_[i1]);
  });
}

void StateVector::apply_cz(unsigned a, unsigned b) {
  assert(a < num_qubits_ && b < num_qubits_);
  if (a == b) return;
  const std::size_t abit = std::size_t{1} << a;
  for_pairs(b, [&](std::size_t /*i0*/, std::size_t i1) {
    if (i1 & abit) amps_[i1] = -amps_[i1];
  });
}

void StateVector::apply_swap(unsigned a, unsigned b) {
  if (a == b) return;
  apply_cnot(a, b);
  apply_cnot(b, a);
  apply_cnot(a, b);
}

void StateVector::apply_mcx(std::span<const ControlTerm> controls,
                            unsigned target) {
  assert(target < num_qubits_);
  std::size_t mask = 0;
  std::size_t want = 0;
  for (const ControlTerm& c : controls) {
    assert(c.qubit < num_qubits_ && c.qubit != target);
    mask |= std::size_t{1} << c.qubit;
    if (c.value) want |= std::size_t{1} << c.qubit;
  }
  for_pairs(target, [&](std::size_t i0, std::size_t i1) {
    if ((i0 & mask) == want) std::swap(amps_[i0], amps_[i1]);
  });
}

void StateVector::apply_mcz(std::span<const ControlTerm> controls) {
  std::size_t mask = 0;
  std::size_t want = 0;
  for (const ControlTerm& c : controls) {
    assert(c.qubit < num_qubits_);
    mask |= std::size_t{1} << c.qubit;
    if (c.value) want |= std::size_t{1} << c.qubit;
  }
  const std::size_t n = dim();
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if ((i & mask) == want) amps_[i] = -amps_[i];
    }
  };
  if (n <= kParallelGrain) {
    body(0, n);
  } else {
    util::parallel_for(0, n, kParallelGrain, body);
  }
}

void StateVector::apply_h_range(unsigned first, unsigned count) {
  for (unsigned q = first; q < first + count; ++q) apply_h(q);
}

void StateVector::apply_reflect_zero(unsigned first, unsigned count) {
  assert(first + count <= num_qubits_);
  const std::size_t mask = ((std::size_t{1} << count) - 1) << first;
  const std::size_t n = dim();
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if ((i & mask) != 0) amps_[i] = -amps_[i];
    }
  };
  if (n <= kParallelGrain) {
    body(0, n);
  } else {
    util::parallel_for(0, n, kParallelGrain, body);
  }
}

void StateVector::apply_phase_flip_set(std::span<const std::uint64_t> marked) {
  for (std::uint64_t i : marked) {
    assert(i < dim());
    amps_[i] = -amps_[i];
  }
}

void StateVector::apply_x_on_index(unsigned first, unsigned count,
                                   std::uint64_t index, unsigned target) {
  assert(first + count <= num_qubits_ && target < num_qubits_);
  assert(index < (std::uint64_t{1} << count));
  // Enumerate the free qubits (outside the index register and the target).
  const std::size_t index_bits = static_cast<std::size_t>(index) << first;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t fixed_mask =
      (((std::size_t{1} << count) - 1) << first) | tbit;
  const unsigned free_qubits = num_qubits_ - count - 1;
  const std::size_t iterations = std::size_t{1} << free_qubits;
  // Map a compact free-index f to a full basis index by depositing its bits
  // into the positions not covered by fixed_mask.
  for (std::size_t f = 0; f < iterations; ++f) {
    std::size_t base = 0;
    std::size_t rem = f;
    for (unsigned q = 0; q < num_qubits_; ++q) {
      const std::size_t qb = std::size_t{1} << q;
      if (fixed_mask & qb) continue;
      if (rem & 1) base |= qb;
      rem >>= 1;
    }
    const std::size_t i0 = base | index_bits;
    std::swap(amps_[i0], amps_[i0 | tbit]);
  }
}

void StateVector::apply_z_on_index(unsigned first, unsigned count,
                                   std::uint64_t index, unsigned h) {
  assert(first + count <= num_qubits_ && h < num_qubits_);
  const std::size_t index_bits = static_cast<std::size_t>(index) << first;
  const std::size_t hbit = std::size_t{1} << h;
  const std::size_t fixed_mask =
      (((std::size_t{1} << count) - 1) << first) | hbit;
  const unsigned free_qubits = num_qubits_ - count - 1;
  const std::size_t iterations = std::size_t{1} << free_qubits;
  for (std::size_t f = 0; f < iterations; ++f) {
    std::size_t base = 0;
    std::size_t rem = f;
    for (unsigned q = 0; q < num_qubits_; ++q) {
      const std::size_t qb = std::size_t{1} << q;
      if (fixed_mask & qb) continue;
      if (rem & 1) base |= qb;
      rem >>= 1;
    }
    const std::size_t i = base | index_bits | hbit;
    amps_[i] = -amps_[i];
  }
}

void StateVector::apply_cx_on_index(unsigned first, unsigned count,
                                    std::uint64_t index, unsigned h,
                                    unsigned target) {
  assert(first + count <= num_qubits_);
  assert(h < num_qubits_ && target < num_qubits_ && h != target);
  const std::size_t index_bits = static_cast<std::size_t>(index) << first;
  const std::size_t hbit = std::size_t{1} << h;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t fixed_mask =
      (((std::size_t{1} << count) - 1) << first) | hbit | tbit;
  const unsigned free_qubits = num_qubits_ - count - 2;
  const std::size_t iterations = std::size_t{1} << free_qubits;
  for (std::size_t f = 0; f < iterations; ++f) {
    std::size_t base = 0;
    std::size_t rem = f;
    for (unsigned q = 0; q < num_qubits_; ++q) {
      const std::size_t qb = std::size_t{1} << q;
      if (fixed_mask & qb) continue;
      if (rem & 1) base |= qb;
      rem >>= 1;
    }
    const std::size_t i0 = base | index_bits | hbit;
    std::swap(amps_[i0], amps_[i0 | tbit]);
  }
}

double StateVector::probability_one(unsigned q) const {
  assert(q < num_qubits_);
  const std::size_t bit = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    if (i & bit) p += std::norm(amps_[i]);
  }
  return p;
}

bool StateVector::measure(unsigned q, util::Rng& rng) {
  const double p1 = probability_one(q);
  const bool outcome = rng.uniform01() < p1;
  const std::size_t bit = std::size_t{1} << q;
  const double keep_p = outcome ? p1 : 1.0 - p1;
  const double scale = keep_p > 0.0 ? 1.0 / std::sqrt(keep_p) : 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    const bool is_one = (i & bit) != 0;
    if (is_one == outcome) {
      amps_[i] *= scale;
    } else {
      amps_[i] = Amplitude{0.0, 0.0};
    }
  }
  return outcome;
}

std::size_t StateVector::sample_basis(util::Rng& rng) const {
  double r = rng.uniform01();
  for (std::size_t i = 0; i < dim(); ++i) {
    r -= std::norm(amps_[i]);
    if (r <= 0.0) return i;
  }
  return dim() - 1;  // numeric tail; total mass ~1
}

double StateVector::norm() const {
  double s = 0.0;
  for (const Amplitude& a : amps_) s += std::norm(a);
  return std::sqrt(s);
}

Amplitude StateVector::inner_product(const StateVector& other) const {
  assert(dim() == other.dim());
  Amplitude acc{0.0, 0.0};
  for (std::size_t i = 0; i < dim(); ++i) {
    acc += std::conj(amps_[i]) * other.amps_[i];
  }
  return acc;
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner_product(other));
}

}  // namespace qols::quantum
