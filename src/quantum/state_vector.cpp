#include "qols/quantum/state_vector.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <numbers>
#include <stdexcept>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#define QOLS_X86 1
#include <immintrin.h>
#else
#define QOLS_X86 0
#endif

#include "qols/telemetry/registry.hpp"
#include "qols/util/thread_pool.hpp"

namespace qols::quantum {

std::string_view precision_name(Precision p) noexcept {
  return p == Precision::kSingle ? "float" : "double";
}

bool cpu_supports_avx2() noexcept {
#if QOLS_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool simd_env_disabled(const char* value) noexcept {
  return value != nullptr && *value != '\0' && std::string_view(value) != "0";
}

namespace {

std::atomic<SimdMode> g_requested_simd{SimdMode::kAuto};

// The env override is a process-level switch (CI's scalar-fallback leg sets
// it before launch), so it is read once; set_simd_mode() is the in-process
// knob.
bool auto_avx2_enabled() {
  static const bool enabled =
      cpu_supports_avx2() && !simd_env_disabled(std::getenv("QOLS_NO_AVX2"));
  return enabled;
}

}  // namespace

void set_simd_mode(SimdMode mode) {
  if (mode == SimdMode::kAvx2 && !cpu_supports_avx2()) {
    throw std::invalid_argument(
        "set_simd_mode: kAvx2 requested but this CPU has no AVX2; use kAuto "
        "or kScalar");
  }
  g_requested_simd.store(mode, std::memory_order_relaxed);
}

SimdMode requested_simd_mode() noexcept {
  return g_requested_simd.load(std::memory_order_relaxed);
}

SimdMode active_simd_mode() noexcept {
  switch (g_requested_simd.load(std::memory_order_relaxed)) {
    case SimdMode::kScalar:
      return SimdMode::kScalar;
    case SimdMode::kAvx2:
      return SimdMode::kAvx2;
    case SimdMode::kAuto:
      break;
  }
  return auto_avx2_enabled() ? SimdMode::kAvx2 : SimdMode::kScalar;
}

namespace {

// Below this many amplitudes, kernels run serially: thread dispatch would
// dominate for the tiny registers of small k.
constexpr std::size_t kParallelGrain = std::size_t{1} << 14;

// ---------------------------------------------------------------------------
// Run kernels. Every hot gate decomposes into maximal CONTIGUOUS runs of the
// SoA arrays (see for_pair_runs below), so the kernels are straight-line
// loops over up to four restrict-qualified scalar arrays. The scalar forms
// are the always-compiled reference (and what gcc auto-vectorizes at the
// baseline ISA); the *_avx2 overloads are the explicit 256-bit paths chosen
// by active_simd_mode(). Element-wise kernels perform the same IEEE ops per
// element on both paths, so their results are bit-identical; only the
// probability reductions differ in summation order.
// ---------------------------------------------------------------------------

template <typename S>
void h_run_scalar(S* __restrict__ rlo, S* __restrict__ rhi,
                  S* __restrict__ ilo, S* __restrict__ ihi, std::size_t n) {
  const S c = static_cast<S>(std::numbers::sqrt2 / 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    const S ra = rlo[i];
    const S rb = rhi[i];
    rlo[i] = (ra + rb) * c;
    rhi[i] = (ra - rb) * c;
    const S ia = ilo[i];
    const S ib = ihi[i];
    ilo[i] = (ia + ib) * c;
    ihi[i] = (ia - ib) * c;
  }
}

// Fused H(q) then H(q+1) on one component array (H is real, so the re and
// im planes transform independently). a/b/c/d are the four runs of a radix-4
// group: base, base+2^q, base+2^(q+1), base+3*2^q. The intermediate rounding
// matches two sequential single-qubit passes exactly, so fusion is bit-exact
// with the unfused ladder — it only halves the memory traffic.
template <typename S>
inline void h2_group_scalar(S* __restrict__ a, S* __restrict__ b,
                            S* __restrict__ c, S* __restrict__ d,
                            std::size_t n) {
  const S h = static_cast<S>(std::numbers::sqrt2 / 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    const S t0 = (a[i] + b[i]) * h;
    const S t1 = (a[i] - b[i]) * h;
    const S t2 = (c[i] + d[i]) * h;
    const S t3 = (c[i] - d[i]) * h;
    a[i] = (t0 + t2) * h;
    b[i] = (t1 + t3) * h;
    c[i] = (t0 - t2) * h;
    d[i] = (t1 - t3) * h;
  }
}

// Fused H(q), H(q+1) over a contiguous span of len scalars holding
// len / (4 * b1) radix-4 groups of stride b1 = 2^q. Group iteration lives
// INSIDE the kernel: a pass over an L1 tile is one call, so the sub-lane
// strides of the lowest qubits cost loop iterations, not function calls
// (the profile killer of a per-group dispatch).
template <typename S>
void h2_span_scalar(S* __restrict__ p, std::size_t len, std::size_t b1) {
  const S h = static_cast<S>(std::numbers::sqrt2 / 2.0);
  if (b1 == 1) {
    for (std::size_t g = 0; g < len; g += 4) {
      const S t0 = (p[g] + p[g + 1]) * h;
      const S t1 = (p[g] - p[g + 1]) * h;
      const S t2 = (p[g + 2] + p[g + 3]) * h;
      const S t3 = (p[g + 2] - p[g + 3]) * h;
      p[g] = (t0 + t2) * h;
      p[g + 1] = (t1 + t3) * h;
      p[g + 2] = (t0 - t2) * h;
      p[g + 3] = (t1 - t3) * h;
    }
    return;
  }
  for (std::size_t g = 0; g < len; g += 4 * b1) {
    h2_group_scalar(p + g, p + g + b1, p + g + 2 * b1, p + g + 3 * b1, b1);
  }
}

template <typename S>
void swap_run_scalar(S* __restrict__ a, S* __restrict__ b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) std::swap(a[i], b[i]);
}

template <typename S>
void neg_run_scalar(S* __restrict__ r, S* __restrict__ im, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = -r[i];
    im[i] = -im[i];
  }
}

template <typename S>
void phase_run_scalar(S* __restrict__ r, S* __restrict__ im, std::size_t n,
                      S pr, S pi) {
  for (std::size_t i = 0; i < n; ++i) {
    const S a = r[i];
    const S b = im[i];
    r[i] = a * pr - b * pi;
    im[i] = a * pi + b * pr;
  }
}

template <typename S>
void scale_run_scalar(S* __restrict__ r, S* __restrict__ im, std::size_t n,
                      S s) {
  for (std::size_t i = 0; i < n; ++i) {
    r[i] *= s;
    im[i] *= s;
  }
}

// Probability mass of a run; accumulates in double for BOTH scalar types
// (the decision-exactness half of the precision contract).
template <typename S>
double prob_run_scalar(const S* __restrict__ r, const S* __restrict__ im,
                       std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = static_cast<double>(r[i]);
    const double b = static_cast<double>(im[i]);
    acc += a * a + b * b;
  }
  return acc;
}

#if QOLS_X86

__attribute__((target("avx2"))) void h_run_avx2(double* __restrict__ rlo,
                                                double* __restrict__ rhi,
                                                double* __restrict__ ilo,
                                                double* __restrict__ ihi,
                                                std::size_t n) {
  const __m256d c = _mm256_set1_pd(std::numbers::sqrt2 / 2.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ra = _mm256_loadu_pd(rlo + i);
    const __m256d rb = _mm256_loadu_pd(rhi + i);
    _mm256_storeu_pd(rlo + i, _mm256_mul_pd(_mm256_add_pd(ra, rb), c));
    _mm256_storeu_pd(rhi + i, _mm256_mul_pd(_mm256_sub_pd(ra, rb), c));
    const __m256d ia = _mm256_loadu_pd(ilo + i);
    const __m256d ib = _mm256_loadu_pd(ihi + i);
    _mm256_storeu_pd(ilo + i, _mm256_mul_pd(_mm256_add_pd(ia, ib), c));
    _mm256_storeu_pd(ihi + i, _mm256_mul_pd(_mm256_sub_pd(ia, ib), c));
  }
  h_run_scalar(rlo + i, rhi + i, ilo + i, ihi + i, n - i);
}

__attribute__((target("avx2"))) void h_run_avx2(float* __restrict__ rlo,
                                                float* __restrict__ rhi,
                                                float* __restrict__ ilo,
                                                float* __restrict__ ihi,
                                                std::size_t n) {
  const __m256 c =
      _mm256_set1_ps(static_cast<float>(std::numbers::sqrt2 / 2.0));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 ra = _mm256_loadu_ps(rlo + i);
    const __m256 rb = _mm256_loadu_ps(rhi + i);
    _mm256_storeu_ps(rlo + i, _mm256_mul_ps(_mm256_add_ps(ra, rb), c));
    _mm256_storeu_ps(rhi + i, _mm256_mul_ps(_mm256_sub_ps(ra, rb), c));
    const __m256 ia = _mm256_loadu_ps(ilo + i);
    const __m256 ib = _mm256_loadu_ps(ihi + i);
    _mm256_storeu_ps(ilo + i, _mm256_mul_ps(_mm256_add_ps(ia, ib), c));
    _mm256_storeu_ps(ihi + i, _mm256_mul_ps(_mm256_sub_ps(ia, ib), c));
  }
  h_run_scalar(rlo + i, rhi + i, ilo + i, ihi + i, n - i);
}

// Span forms of the fused radix-4 pass. Strides below the vector width use
// in-register shuffles — each lane still sees the exact scalar op sequence
// (adds commute bit-exactly), so scalar and AVX2 paths stay bit-identical.
__attribute__((target("avx2"))) void h2_span_avx2(double* __restrict__ p,
                                                  std::size_t len,
                                                  std::size_t b1) {
  const __m256d h = _mm256_set1_pd(std::numbers::sqrt2 / 2.0);
  if (b1 == 1) {
    // One vector = one group [a b c d].
    for (std::size_t g = 0; g < len; g += 4) {
      const __m256d v = _mm256_loadu_pd(p + g);
      const __m256d sw = _mm256_permute_pd(v, 0b0101);  // [b a d c]
      // addsub then adjacent-swap yields [a+b, a-b, c+d, c-d].
      const __m256d s1 = _mm256_mul_pd(
          _mm256_permute_pd(_mm256_addsub_pd(v, sw), 0b0101), h);
      const __m256d sw2 = _mm256_permute2f128_pd(s1, s1, 0x01);
      const __m256d r = _mm256_blend_pd(_mm256_add_pd(s1, sw2),
                                        _mm256_sub_pd(sw2, s1), 0b1100);
      _mm256_storeu_pd(p + g, _mm256_mul_pd(r, h));
    }
    return;
  }
  if (b1 == 2) {
    // Two vectors = one group: u = [a0 a1 b0 b1], w = [c0 c1 d0 d1].
    for (std::size_t g = 0; g < len; g += 8) {
      const __m256d u = _mm256_loadu_pd(p + g);
      const __m256d w = _mm256_loadu_pd(p + g + 4);
      const __m256d su = _mm256_permute2f128_pd(u, u, 0x01);
      const __m256d sv = _mm256_permute2f128_pd(w, w, 0x01);
      const __m256d s1u = _mm256_mul_pd(
          _mm256_blend_pd(_mm256_add_pd(u, su), _mm256_sub_pd(su, u), 0b1100),
          h);
      const __m256d s1w = _mm256_mul_pd(
          _mm256_blend_pd(_mm256_add_pd(w, sv), _mm256_sub_pd(sv, w), 0b1100),
          h);
      _mm256_storeu_pd(p + g, _mm256_mul_pd(_mm256_add_pd(s1u, s1w), h));
      _mm256_storeu_pd(p + g + 4, _mm256_mul_pd(_mm256_sub_pd(s1u, s1w), h));
    }
    return;
  }
  // b1 >= 4 (a power of two): full-width butterflies, no tails.
  for (std::size_t g = 0; g < len; g += 4 * b1) {
    double* __restrict__ a = p + g;
    double* __restrict__ b = a + b1;
    double* __restrict__ c = b + b1;
    double* __restrict__ d = c + b1;
    for (std::size_t i = 0; i < b1; i += 4) {
      const __m256d va = _mm256_loadu_pd(a + i);
      const __m256d vb = _mm256_loadu_pd(b + i);
      const __m256d vc = _mm256_loadu_pd(c + i);
      const __m256d vd = _mm256_loadu_pd(d + i);
      const __m256d t0 = _mm256_mul_pd(_mm256_add_pd(va, vb), h);
      const __m256d t1 = _mm256_mul_pd(_mm256_sub_pd(va, vb), h);
      const __m256d t2 = _mm256_mul_pd(_mm256_add_pd(vc, vd), h);
      const __m256d t3 = _mm256_mul_pd(_mm256_sub_pd(vc, vd), h);
      _mm256_storeu_pd(a + i, _mm256_mul_pd(_mm256_add_pd(t0, t2), h));
      _mm256_storeu_pd(b + i, _mm256_mul_pd(_mm256_add_pd(t1, t3), h));
      _mm256_storeu_pd(c + i, _mm256_mul_pd(_mm256_sub_pd(t0, t2), h));
      _mm256_storeu_pd(d + i, _mm256_mul_pd(_mm256_sub_pd(t1, t3), h));
    }
  }
}

__attribute__((target("avx2"))) void h2_span_avx2(float* __restrict__ p,
                                                  std::size_t len,
                                                  std::size_t b1) {
  const __m256 h =
      _mm256_set1_ps(static_cast<float>(std::numbers::sqrt2 / 2.0));
  if (b1 == 1) {
    // One vector = two groups [a b c d | a' b' c' d'].
    for (std::size_t g = 0; g < len; g += 8) {
      const __m256 v = _mm256_loadu_ps(p + g);
      const __m256 sw = _mm256_permute_ps(v, 0b10110001);  // [b a d c]
      const __m256 s1 = _mm256_mul_ps(
          _mm256_permute_ps(_mm256_addsub_ps(v, sw), 0b10110001), h);
      const __m256 sw2 = _mm256_permute_ps(s1, 0b01001110);  // [c d a b]
      const __m256 r = _mm256_blend_ps(_mm256_add_ps(s1, sw2),
                                       _mm256_sub_ps(sw2, s1), 0b11001100);
      _mm256_storeu_ps(p + g, _mm256_mul_ps(r, h));
    }
    return;
  }
  if (b1 == 2) {
    // One vector = one group [a0 a1 b0 b1 c0 c1 d0 d1].
    for (std::size_t g = 0; g < len; g += 8) {
      const __m256 v = _mm256_loadu_ps(p + g);
      const __m256 sw = _mm256_permute_ps(v, 0b01001110);  // [b0 b1 a0 a1 ..]
      const __m256 s1 = _mm256_mul_ps(
          _mm256_blend_ps(_mm256_add_ps(v, sw), _mm256_sub_ps(sw, v),
                          0b11001100),
          h);
      const __m256 sw2 = _mm256_permute2f128_ps(s1, s1, 0x01);
      const __m256 r = _mm256_blend_ps(_mm256_add_ps(s1, sw2),
                                       _mm256_sub_ps(sw2, s1), 0b11110000);
      _mm256_storeu_ps(p + g, _mm256_mul_ps(r, h));
    }
    return;
  }
  if (b1 == 4) {
    // Two vectors = one group: u = [a0..a3 b0..b3], w = [c0..c3 d0..d3].
    for (std::size_t g = 0; g < len; g += 16) {
      const __m256 u = _mm256_loadu_ps(p + g);
      const __m256 w = _mm256_loadu_ps(p + g + 8);
      const __m256 su = _mm256_permute2f128_ps(u, u, 0x01);
      const __m256 sv = _mm256_permute2f128_ps(w, w, 0x01);
      const __m256 s1u = _mm256_mul_ps(
          _mm256_blend_ps(_mm256_add_ps(u, su), _mm256_sub_ps(su, u),
                          0b11110000),
          h);
      const __m256 s1w = _mm256_mul_ps(
          _mm256_blend_ps(_mm256_add_ps(w, sv), _mm256_sub_ps(sv, w),
                          0b11110000),
          h);
      _mm256_storeu_ps(p + g, _mm256_mul_ps(_mm256_add_ps(s1u, s1w), h));
      _mm256_storeu_ps(p + g + 8, _mm256_mul_ps(_mm256_sub_ps(s1u, s1w), h));
    }
    return;
  }
  // b1 >= 8 (a power of two): full-width butterflies, no tails.
  for (std::size_t g = 0; g < len; g += 4 * b1) {
    float* __restrict__ a = p + g;
    float* __restrict__ b = a + b1;
    float* __restrict__ c = b + b1;
    float* __restrict__ d = c + b1;
    for (std::size_t i = 0; i < b1; i += 8) {
      const __m256 va = _mm256_loadu_ps(a + i);
      const __m256 vb = _mm256_loadu_ps(b + i);
      const __m256 vc = _mm256_loadu_ps(c + i);
      const __m256 vd = _mm256_loadu_ps(d + i);
      const __m256 t0 = _mm256_mul_ps(_mm256_add_ps(va, vb), h);
      const __m256 t1 = _mm256_mul_ps(_mm256_sub_ps(va, vb), h);
      const __m256 t2 = _mm256_mul_ps(_mm256_add_ps(vc, vd), h);
      const __m256 t3 = _mm256_mul_ps(_mm256_sub_ps(vc, vd), h);
      _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_add_ps(t0, t2), h));
      _mm256_storeu_ps(b + i, _mm256_mul_ps(_mm256_add_ps(t1, t3), h));
      _mm256_storeu_ps(c + i, _mm256_mul_ps(_mm256_sub_ps(t0, t2), h));
      _mm256_storeu_ps(d + i, _mm256_mul_ps(_mm256_sub_ps(t1, t3), h));
    }
  }
}

__attribute__((target("avx2"))) void swap_run_avx2(double* __restrict__ a,
                                                   double* __restrict__ b,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    _mm256_storeu_pd(a + i, vb);
    _mm256_storeu_pd(b + i, va);
  }
  swap_run_scalar(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void swap_run_avx2(float* __restrict__ a,
                                                   float* __restrict__ b,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    _mm256_storeu_ps(a + i, vb);
    _mm256_storeu_ps(b + i, va);
  }
  swap_run_scalar(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void neg_run_avx2(double* __restrict__ r,
                                                  double* __restrict__ im,
                                                  std::size_t n) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(r + i, _mm256_xor_pd(_mm256_loadu_pd(r + i), sign));
    _mm256_storeu_pd(im + i, _mm256_xor_pd(_mm256_loadu_pd(im + i), sign));
  }
  neg_run_scalar(r + i, im + i, n - i);
}

__attribute__((target("avx2"))) void neg_run_avx2(float* __restrict__ r,
                                                  float* __restrict__ im,
                                                  std::size_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(r + i, _mm256_xor_ps(_mm256_loadu_ps(r + i), sign));
    _mm256_storeu_ps(im + i, _mm256_xor_ps(_mm256_loadu_ps(im + i), sign));
  }
  neg_run_scalar(r + i, im + i, n - i);
}

__attribute__((target("avx2"))) void phase_run_avx2(double* __restrict__ r,
                                                    double* __restrict__ im,
                                                    std::size_t n, double pr,
                                                    double pi) {
  const __m256d vpr = _mm256_set1_pd(pr);
  const __m256d vpi = _mm256_set1_pd(pi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(r + i);
    const __m256d b = _mm256_loadu_pd(im + i);
    _mm256_storeu_pd(
        r + i, _mm256_sub_pd(_mm256_mul_pd(a, vpr), _mm256_mul_pd(b, vpi)));
    _mm256_storeu_pd(
        im + i, _mm256_add_pd(_mm256_mul_pd(a, vpi), _mm256_mul_pd(b, vpr)));
  }
  phase_run_scalar(r + i, im + i, n - i, pr, pi);
}

__attribute__((target("avx2"))) void phase_run_avx2(float* __restrict__ r,
                                                    float* __restrict__ im,
                                                    std::size_t n, float pr,
                                                    float pi) {
  const __m256 vpr = _mm256_set1_ps(pr);
  const __m256 vpi = _mm256_set1_ps(pi);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_loadu_ps(r + i);
    const __m256 b = _mm256_loadu_ps(im + i);
    _mm256_storeu_ps(
        r + i, _mm256_sub_ps(_mm256_mul_ps(a, vpr), _mm256_mul_ps(b, vpi)));
    _mm256_storeu_ps(
        im + i, _mm256_add_ps(_mm256_mul_ps(a, vpi), _mm256_mul_ps(b, vpr)));
  }
  phase_run_scalar(r + i, im + i, n - i, pr, pi);
}

__attribute__((target("avx2"))) void scale_run_avx2(double* __restrict__ r,
                                                    double* __restrict__ im,
                                                    std::size_t n, double s) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(r + i, _mm256_mul_pd(_mm256_loadu_pd(r + i), vs));
    _mm256_storeu_pd(im + i, _mm256_mul_pd(_mm256_loadu_pd(im + i), vs));
  }
  scale_run_scalar(r + i, im + i, n - i, s);
}

__attribute__((target("avx2"))) void scale_run_avx2(float* __restrict__ r,
                                                    float* __restrict__ im,
                                                    std::size_t n, float s) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(r + i, _mm256_mul_ps(_mm256_loadu_ps(r + i), vs));
    _mm256_storeu_ps(im + i, _mm256_mul_ps(_mm256_loadu_ps(im + i), vs));
  }
  scale_run_scalar(r + i, im + i, n - i, s);
}

__attribute__((target("avx2"))) double prob_run_avx2(
    const double* __restrict__ r, const double* __restrict__ im,
    std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(r + i);
    const __m256d b = _mm256_loadu_pd(im + i);
    acc = _mm256_add_pd(
        acc, _mm256_add_pd(_mm256_mul_pd(a, a), _mm256_mul_pd(b, b)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         prob_run_scalar(r + i, im + i, n - i);
}

__attribute__((target("avx2"))) double prob_run_avx2(
    const float* __restrict__ r, const float* __restrict__ im, std::size_t n) {
  // Squares and sums in DOUBLE: float amplitudes, double probability — the
  // float mode's measurement pipeline loses no accumulation precision.
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 a = _mm256_loadu_ps(r + i);
    const __m256 b = _mm256_loadu_ps(im + i);
    const __m256d a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(a));
    const __m256d a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(a, 1));
    const __m256d b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(b));
    const __m256d b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(b, 1));
    acc = _mm256_add_pd(acc, _mm256_add_pd(_mm256_mul_pd(a_lo, a_lo),
                                           _mm256_mul_pd(b_lo, b_lo)));
    acc = _mm256_add_pd(acc, _mm256_add_pd(_mm256_mul_pd(a_hi, a_hi),
                                           _mm256_mul_pd(b_hi, b_hi)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         prob_run_scalar(r + i, im + i, n - i);
}

#endif  // QOLS_X86

// Runtime-dispatch wrappers. `avx2` is hoisted out of the per-run loops by
// the callers (one active_simd_mode() read per gate application).

template <typename S>
inline void h_run(S* rlo, S* rhi, S* ilo, S* ihi, std::size_t n, bool avx2) {
#if QOLS_X86
  if (avx2) {
    h_run_avx2(rlo, rhi, ilo, ihi, n);
    return;
  }
#else
  (void)avx2;
#endif
  h_run_scalar(rlo, rhi, ilo, ihi, n);
}

template <typename S>
inline void h2_span(S* p, std::size_t len, std::size_t b1, bool avx2) {
#if QOLS_X86
  if (avx2) {
    h2_span_avx2(p, len, b1);
    return;
  }
#else
  (void)avx2;
#endif
  h2_span_scalar(p, len, b1);
}

template <typename S>
inline void swap_run(S* a, S* b, std::size_t n, bool avx2) {
#if QOLS_X86
  if (avx2) {
    swap_run_avx2(a, b, n);
    return;
  }
#else
  (void)avx2;
#endif
  swap_run_scalar(a, b, n);
}

template <typename S>
inline void neg_run(S* r, S* im, std::size_t n, bool avx2) {
#if QOLS_X86
  if (avx2) {
    neg_run_avx2(r, im, n);
    return;
  }
#else
  (void)avx2;
#endif
  neg_run_scalar(r, im, n);
}

template <typename S>
inline void phase_run(S* r, S* im, std::size_t n, S pr, S pi, bool avx2) {
#if QOLS_X86
  if (avx2) {
    phase_run_avx2(r, im, n, pr, pi);
    return;
  }
#else
  (void)avx2;
#endif
  phase_run_scalar(r, im, n, pr, pi);
}

template <typename S>
inline void scale_run(S* r, S* im, std::size_t n, S s, bool avx2) {
#if QOLS_X86
  if (avx2) {
    scale_run_avx2(r, im, n, s);
    return;
  }
#else
  (void)avx2;
#endif
  scale_run_scalar(r, im, n, s);
}

template <typename S>
inline double prob_run(const S* r, const S* im, std::size_t n, bool avx2) {
#if QOLS_X86
  if (avx2) return prob_run_avx2(r, im, n);
#else
  (void)avx2;
#endif
  return prob_run_scalar(r, im, n);
}

// ---------------------------------------------------------------------------
// Iteration helpers.
// ---------------------------------------------------------------------------

// Blocked pair iteration for qubit q: decomposes the dim/2 pair indices into
// maximal CONTIGUOUS runs. fn(lo, n) receives a run where amplitudes
// [lo, lo+n) pair with [lo+bit, lo+bit+n); n <= 2^q, so runs below q = lane
// width degenerate to short segments the run kernels finish in their scalar
// tails (the n = 1..4 edge cases of the SIMD tests). Runs are dispatched in
// parallel chunks over the project ThreadPool above kParallelGrain pairs.
template <typename Fn>
void for_pair_runs(std::size_t dim, unsigned q, Fn&& fn) {
  const std::size_t half = dim >> 1;
  const std::size_t bit = std::size_t{1} << q;
  const std::size_t low_mask = bit - 1;
  auto body = [&](std::size_t glo, std::size_t ghi) {
    std::size_t g = glo;
    while (g < ghi) {
      const std::size_t low = g & low_mask;
      const std::size_t run = std::min(ghi - g, bit - low);
      const std::size_t lo = ((g & ~low_mask) << 1) | low;
      fn(lo, run);
      g += run;
    }
  };
  if (half <= kParallelGrain) {
    body(0, half);
  } else {
    util::parallel_for(0, half, kParallelGrain, body);
  }
}

// Element-wise pair iteration (i0, i1 = i0|bit) for the cold conditional
// gates (CNOT, CZ, MCX, arbitrary single-qubit unitaries).
template <typename Fn>
void for_pairs(std::size_t dim, unsigned q, Fn&& fn) {
  const std::size_t half = dim >> 1;
  const std::size_t low_mask = (std::size_t{1} << q) - 1;
  const std::size_t bit = std::size_t{1} << q;
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t g = lo; g < hi; ++g) {
      const std::size_t i0 = ((g & ~low_mask) << 1) | (g & low_mask);
      fn(i0, i0 | bit);
    }
  };
  if (half <= kParallelGrain) {
    body(0, half);
  } else {
    util::parallel_for(0, half, kParallelGrain, body);
  }
}

}  // namespace

template <typename Scalar>
StateVectorT<Scalar>::StateVectorT(unsigned num_qubits)
    : num_qubits_(num_qubits) {
  // Validate before the allocation: 2^31 amplitudes would already be a
  // 32 GiB request, so a bad count must fail with a diagnosis, not an
  // attempted multi-GiB allocation (or worse, a shift past 63 bits).
  if (num_qubits == 0 || num_qubits > 30) {
    throw std::invalid_argument(
        "StateVector: num_qubits must be in [1, 30] (16 GiB of amplitudes "
        "at 30), got " +
        std::to_string(num_qubits) +
        "; use the structured backend for larger index registers");
  }
  const std::size_t n = std::size_t{1} << num_qubits;
  re_.assign(n, Scalar(0));
  im_.assign(n, Scalar(0));
  re_[0] = Scalar(1);
}

template <typename Scalar>
void StateVectorT<Scalar>::reset() {
  set_basis_state(0);
}

template <typename Scalar>
void StateVectorT<Scalar>::set_basis_state(std::size_t basis) {
  assert(basis < dim());
  std::fill(re_.begin(), re_.end(), Scalar(0));
  std::fill(im_.begin(), im_.end(), Scalar(0));
  re_[basis] = Scalar(1);
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_h(unsigned q) {
  assert(q < num_qubits_);
  const bool avx2 = active_simd_mode() == SimdMode::kAvx2;
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  const std::size_t bit = std::size_t{1} << q;
  for_pair_runs(dim(), q, [=](std::size_t lo, std::size_t n) {
    h_run(re + lo, re + lo + bit, im + lo, im + lo + bit, n, avx2);
  });
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_x(unsigned q) {
  assert(q < num_qubits_);
  const bool avx2 = active_simd_mode() == SimdMode::kAvx2;
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  const std::size_t bit = std::size_t{1} << q;
  for_pair_runs(dim(), q, [=](std::size_t lo, std::size_t n) {
    swap_run(re + lo, re + lo + bit, n, avx2);
    swap_run(im + lo, im + lo + bit, n, avx2);
  });
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_z(unsigned q) {
  assert(q < num_qubits_);
  const bool avx2 = active_simd_mode() == SimdMode::kAvx2;
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  const std::size_t bit = std::size_t{1} << q;
  for_pair_runs(dim(), q, [=](std::size_t lo, std::size_t n) {
    neg_run(re + lo + bit, im + lo + bit, n, avx2);
  });
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_t(unsigned q) {
  constexpr double c = std::numbers::sqrt2 / 2.0;
  apply_phase(q, Amplitude{c, c});
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_tdg(unsigned q) {
  constexpr double c = std::numbers::sqrt2 / 2.0;
  apply_phase(q, Amplitude{c, -c});
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_s(unsigned q) {
  apply_phase(q, Amplitude{0.0, 1.0});
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_sdg(unsigned q) {
  apply_phase(q, Amplitude{0.0, -1.0});
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_phase(unsigned q, Amplitude phase) {
  assert(q < num_qubits_);
  if (phase == Amplitude{-1.0, 0.0}) {  // Z: a negation, not a rotation
    apply_z(q);
    return;
  }
  const bool avx2 = active_simd_mode() == SimdMode::kAvx2;
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  const std::size_t bit = std::size_t{1} << q;
  const Scalar pr = static_cast<Scalar>(phase.real());
  const Scalar pi = static_cast<Scalar>(phase.imag());
  for_pair_runs(dim(), q, [=](std::size_t lo, std::size_t n) {
    phase_run(re + lo + bit, im + lo + bit, n, pr, pi, avx2);
  });
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_single(unsigned q, Amplitude u00,
                                        Amplitude u01, Amplitude u10,
                                        Amplitude u11) {
  assert(q < num_qubits_);
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  for_pairs(dim(), q, [=](std::size_t i0, std::size_t i1) {
    const Amplitude a{static_cast<double>(re[i0]),
                      static_cast<double>(im[i0])};
    const Amplitude b{static_cast<double>(re[i1]),
                      static_cast<double>(im[i1])};
    const Amplitude r0 = u00 * a + u01 * b;
    const Amplitude r1 = u10 * a + u11 * b;
    re[i0] = static_cast<Scalar>(r0.real());
    im[i0] = static_cast<Scalar>(r0.imag());
    re[i1] = static_cast<Scalar>(r1.real());
    im[i1] = static_cast<Scalar>(r1.imag());
  });
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_cnot(unsigned control, unsigned target) {
  assert(control < num_qubits_ && target < num_qubits_);
  if (control == target) return;  // paper's a == b => identity convention
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  const std::size_t cbit = std::size_t{1} << control;
  for_pairs(dim(), target, [=](std::size_t i0, std::size_t i1) {
    if (i0 & cbit) {
      std::swap(re[i0], re[i1]);
      std::swap(im[i0], im[i1]);
    }
  });
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_cz(unsigned a, unsigned b) {
  assert(a < num_qubits_ && b < num_qubits_);
  if (a == b) return;
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  const std::size_t abit = std::size_t{1} << a;
  for_pairs(dim(), b, [=](std::size_t /*i0*/, std::size_t i1) {
    if (i1 & abit) {
      re[i1] = -re[i1];
      im[i1] = -im[i1];
    }
  });
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_swap(unsigned a, unsigned b) {
  if (a == b) return;
  apply_cnot(a, b);
  apply_cnot(b, a);
  apply_cnot(a, b);
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_mcx(std::span<const ControlTerm> controls,
                                     unsigned target) {
  assert(target < num_qubits_);
  std::size_t mask = 0;
  std::size_t want = 0;
  for (const ControlTerm& c : controls) {
    assert(c.qubit < num_qubits_ && c.qubit != target);
    mask |= std::size_t{1} << c.qubit;
    if (c.value) want |= std::size_t{1} << c.qubit;
  }
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  for_pairs(dim(), target, [=](std::size_t i0, std::size_t i1) {
    if ((i0 & mask) == want) {
      std::swap(re[i0], re[i1]);
      std::swap(im[i0], im[i1]);
    }
  });
}

// Negates every basis state i with (i & mask) == want, touching ONLY the
// matching amplitudes: the matching set decomposes into dim / 2^popcount(mask)
// contiguous runs of length 2^(trailing free bits), enumerated with the
// subset-iteration identity f' = (f - free_high) & free_high. Work is
// proportional to the matching count, not to dim — the old full-scan kernel
// paid O(dim) with a data-dependent branch per element.
template <typename Scalar>
void StateVectorT<Scalar>::negate_matching(std::size_t mask,
                                           std::size_t want) {
  assert((want & ~mask) == 0);
  const bool avx2 = active_simd_mode() == SimdMode::kAvx2;
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  const std::size_t run = mask == 0
                              ? dim()
                              : std::size_t{1}
                                    << std::countr_zero(mask);
  const std::size_t free_high = (dim() - 1) & ~mask & ~(run - 1);
  std::size_t f = 0;
  while (true) {
    const std::size_t base = f | want;
    neg_run(re + base, im + base, run, avx2);
    f = (f - free_high) & free_high;
    if (f == 0) break;
  }
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_mcz(std::span<const ControlTerm> controls) {
  std::size_t mask = 0;
  std::size_t want = 0;
  for (const ControlTerm& c : controls) {
    assert(c.qubit < num_qubits_);
    mask |= std::size_t{1} << c.qubit;
    if (c.value) want |= std::size_t{1} << c.qubit;
  }
  negate_matching(mask, want);
}

// The hot A3 ladder. A naive ladder streams the whole array once per qubit
// — at the dense wall that is 2k full passes over a multi-GiB/s-bound
// working set, and the ISA stops mattering. This version cuts the passes
// two ways, both bit-exact with the sequential ladder (qubit order is
// preserved and fusion keeps every intermediate rounding):
//
//   1. Cache tiles: every qubit whose 2^(q+1)-wide butterfly group fits in
//      an L1-sized tile is applied while the tile is resident — ONE memory
//      pass for the whole low sub-ladder.
//   2. Radix-4 fusion: consecutive qubits (q, q+1) combine into one pass
//      (h2_run), halving traffic for the high, streaming qubits too.
template <typename Scalar>
void StateVectorT<Scalar>::apply_h_range(unsigned first, unsigned count) {
  assert(first + count <= num_qubits_);
  if (count == 0) return;
  // Per-kernel profiling hook: both scalar instantiations resolve the same
  // site, so "quantum.h_range.{calls,ns}" aggregates float and double work.
  static telemetry::SpanSite site = telemetry::SpanSite::resolve(
      "quantum.h_range");
  telemetry::TraceSpan span(site);
  const bool avx2 = active_simd_mode() == SimdMode::kAvx2;
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  const std::size_t n = dim();
  const unsigned last = first + count;

  // 2^12 doubles / 2^13 floats keep a tile's re+im working set at 64 KiB.
  const unsigned block_log =
      std::min<unsigned>(sizeof(Scalar) == 8 ? 12u : 13u, num_qubits_);
  const std::size_t block = std::size_t{1} << block_log;
  const unsigned low_end = std::min(last, block_log);

  if (first < low_end) {
    auto tile = [=](std::size_t lo, std::size_t hi) {
      for (std::size_t b0 = lo; b0 < hi; b0 += block) {
        // Run each component array's whole sub-ladder back to back: the re
        // and im planes are independent under H, so this reordering is
        // bit-exact and keeps one 32 KiB plane L1-hot across all passes.
        for (Scalar* arr : {re, im}) {
          for (unsigned q = first; q + 1 < low_end; q += 2) {
            h2_span(arr + b0, block, std::size_t{1} << q, avx2);
          }
        }
        const unsigned q = first + ((low_end - first) & ~1u);
        if (q < low_end) {
          const std::size_t bit = std::size_t{1} << q;
          for (std::size_t g = b0; g < b0 + block; g += 2 * bit) {
            h_run(re + g, re + g + bit, im + g, im + g + bit, bit, avx2);
          }
        }
      }
    };
    if (n <= kParallelGrain) {
      tile(0, n);
    } else {
      util::parallel_for(0, n, std::max(block, kParallelGrain), tile);
    }
  }

  unsigned q = std::max(first, low_end);
  for (; q + 1 < last; q += 2) {
    const std::size_t b1 = std::size_t{1} << q;
    const std::size_t group = 4 * b1;
    auto body = [=](std::size_t lo, std::size_t hi) {
      h2_span(re + lo, hi - lo, b1, avx2);
      h2_span(im + lo, hi - lo, b1, avx2);
    };
    // Chunk boundaries must fall on group boundaries (both powers of two).
    const std::size_t grain = std::max(group, kParallelGrain);
    if (n <= grain) {
      body(0, n);
    } else {
      util::parallel_for(0, n, grain, body);
    }
  }
  if (q < last) apply_h(q);
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_reflect_zero(unsigned first, unsigned count) {
  assert(first + count <= num_qubits_);
  const std::size_t mask = ((std::size_t{1} << count) - 1) << first;
  // Branchless form of "negate every i with (i & mask) != 0": one streaming
  // negate-all pass, then flip the 2^(n-count) survivors of the zero block
  // back. The second pass costs dim / 2^count — negligible for A3's full
  // index-register reflections.
  const bool avx2 = active_simd_mode() == SimdMode::kAvx2;
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  const std::size_t n = dim();
  auto body = [=](std::size_t lo, std::size_t hi) {
    neg_run(re + lo, im + lo, hi - lo, avx2);
  };
  if (n <= kParallelGrain) {
    body(0, n);
  } else {
    util::parallel_for(0, n, kParallelGrain, body);
  }
  negate_matching(mask, 0);
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_phase_flip_set(
    std::span<const std::uint64_t> marked) {
  for (std::uint64_t i : marked) {
    assert(i < dim());
    re_[i] = -re_[i];
    im_[i] = -im_[i];
  }
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_x_on_index(unsigned first, unsigned count,
                                            std::uint64_t index,
                                            unsigned target) {
  assert(first + count <= num_qubits_ && target < num_qubits_);
  assert(index < (std::uint64_t{1} << count));
  // Enumerate the free qubits (outside the index register and the target).
  const std::size_t index_bits = static_cast<std::size_t>(index) << first;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t fixed_mask =
      (((std::size_t{1} << count) - 1) << first) | tbit;
  const unsigned free_qubits = num_qubits_ - count - 1;
  const std::size_t iterations = std::size_t{1} << free_qubits;
  // Map a compact free-index f to a full basis index by depositing its bits
  // into the positions not covered by fixed_mask.
  for (std::size_t f = 0; f < iterations; ++f) {
    std::size_t base = 0;
    std::size_t rem = f;
    for (unsigned q = 0; q < num_qubits_; ++q) {
      const std::size_t qb = std::size_t{1} << q;
      if (fixed_mask & qb) continue;
      if (rem & 1) base |= qb;
      rem >>= 1;
    }
    const std::size_t i0 = base | index_bits;
    std::swap(re_[i0], re_[i0 | tbit]);
    std::swap(im_[i0], im_[i0 | tbit]);
  }
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_z_on_index(unsigned first, unsigned count,
                                            std::uint64_t index, unsigned h) {
  assert(first + count <= num_qubits_ && h < num_qubits_);
  const std::size_t index_bits = static_cast<std::size_t>(index) << first;
  const std::size_t hbit = std::size_t{1} << h;
  const std::size_t fixed_mask =
      (((std::size_t{1} << count) - 1) << first) | hbit;
  const unsigned free_qubits = num_qubits_ - count - 1;
  const std::size_t iterations = std::size_t{1} << free_qubits;
  for (std::size_t f = 0; f < iterations; ++f) {
    std::size_t base = 0;
    std::size_t rem = f;
    for (unsigned q = 0; q < num_qubits_; ++q) {
      const std::size_t qb = std::size_t{1} << q;
      if (fixed_mask & qb) continue;
      if (rem & 1) base |= qb;
      rem >>= 1;
    }
    const std::size_t i = base | index_bits | hbit;
    re_[i] = -re_[i];
    im_[i] = -im_[i];
  }
}

template <typename Scalar>
void StateVectorT<Scalar>::apply_cx_on_index(unsigned first, unsigned count,
                                             std::uint64_t index, unsigned h,
                                             unsigned target) {
  assert(first + count <= num_qubits_);
  assert(h < num_qubits_ && target < num_qubits_ && h != target);
  const std::size_t index_bits = static_cast<std::size_t>(index) << first;
  const std::size_t hbit = std::size_t{1} << h;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t fixed_mask =
      (((std::size_t{1} << count) - 1) << first) | hbit | tbit;
  const unsigned free_qubits = num_qubits_ - count - 2;
  const std::size_t iterations = std::size_t{1} << free_qubits;
  for (std::size_t f = 0; f < iterations; ++f) {
    std::size_t base = 0;
    std::size_t rem = f;
    for (unsigned q = 0; q < num_qubits_; ++q) {
      const std::size_t qb = std::size_t{1} << q;
      if (fixed_mask & qb) continue;
      if (rem & 1) base |= qb;
      rem >>= 1;
    }
    const std::size_t i0 = base | index_bits | hbit;
    std::swap(re_[i0], re_[i0 | tbit]);
    std::swap(im_[i0], im_[i0 | tbit]);
  }
}

template <typename Scalar>
double StateVectorT<Scalar>::probability_one(unsigned q) const {
  assert(q < num_qubits_);
  const bool avx2 = active_simd_mode() == SimdMode::kAvx2;
  const Scalar* re = re_.data();
  const Scalar* im = im_.data();
  const std::size_t half = dim() >> 1;
  const std::size_t bit = std::size_t{1} << q;
  const std::size_t low_mask = bit - 1;
  // Serial run walk (a double accumulator is not safely shareable across
  // pool workers); the probe runs once per measurement, not per gate.
  double p = 0.0;
  std::size_t g = 0;
  while (g < half) {
    const std::size_t low = g & low_mask;
    const std::size_t run = std::min(half - g, bit - low);
    const std::size_t hi = (((g & ~low_mask) << 1) | low) | bit;
    p += prob_run(re + hi, im + hi, run, avx2);
    g += run;
  }
  return p;
}

template <typename Scalar>
bool StateVectorT<Scalar>::measure(unsigned q, util::Rng& rng) {
  const double p1 = probability_one(q);
  const bool outcome = rng.uniform01() < p1;
  const double keep_p = outcome ? p1 : 1.0 - p1;
  const double scale = keep_p > 0.0 ? 1.0 / std::sqrt(keep_p) : 0.0;
  const Scalar s = static_cast<Scalar>(scale);
  const bool avx2 = active_simd_mode() == SimdMode::kAvx2;
  Scalar* re = re_.data();
  Scalar* im = im_.data();
  const std::size_t bit = std::size_t{1} << q;
  for_pair_runs(dim(), q, [=](std::size_t lo, std::size_t n) {
    Scalar* keep_re = outcome ? re + lo + bit : re + lo;
    Scalar* keep_im = outcome ? im + lo + bit : im + lo;
    Scalar* drop_re = outcome ? re + lo : re + lo + bit;
    Scalar* drop_im = outcome ? im + lo : im + lo + bit;
    scale_run(keep_re, keep_im, n, s, avx2);
    std::fill(drop_re, drop_re + n, Scalar(0));
    std::fill(drop_im, drop_im + n, Scalar(0));
  });
  return outcome;
}

template <typename Scalar>
std::size_t StateVectorT<Scalar>::sample_basis(util::Rng& rng) const {
  double r = rng.uniform01();
  for (std::size_t i = 0; i < dim(); ++i) {
    const double a = static_cast<double>(re_[i]);
    const double b = static_cast<double>(im_[i]);
    r -= a * a + b * b;
    if (r <= 0.0) return i;
  }
  return dim() - 1;  // numeric tail; total mass ~1
}

template <typename Scalar>
double StateVectorT<Scalar>::norm() const {
  const bool avx2 = active_simd_mode() == SimdMode::kAvx2;
  return std::sqrt(prob_run(re_.data(), im_.data(), dim(), avx2));
}

template class StateVectorT<double>;
template class StateVectorT<float>;

}  // namespace qols::quantum
