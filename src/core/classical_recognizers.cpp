#include "qols/core/classical_recognizers.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>

namespace qols::core {

using stream::Symbol;

namespace {

// Shared prefix-parsing helper: returns true once '1^k#' has been consumed
// and fills k. Returns false while still reading; sets *broken on malformed
// prefixes (A1 rejects those words anyway).
struct PrefixParser {
  unsigned k = 0;
  bool done = false;
  bool broken = false;

  void feed(Symbol s) {
    if (done || broken) return;
    if (s == Symbol::kOne && k < 20) {
      ++k;
      return;
    }
    if (s == Symbol::kSep && k >= 1) {
      done = true;
      return;
    }
    broken = true;
  }
};

// Shared chunk driver for the recognizers' own body logic (A1/A2 consume the
// chunk separately, in bulk): per-symbol through the prefix, then the body
// split into separators (rare, per symbol) and data runs (bulk). All state
// transitions happen inside the callbacks, so chunk boundaries can never
// diverge from per-symbol feeding.
template <typename OwnSymbol, typename BodyRun>
void drive_chunk(std::span<const Symbol> chunk, const bool& in_prefix,
                 const bool& active, OwnSymbol&& on_own_symbol,
                 BodyRun&& on_body_run) {
  std::size_t i = 0;
  const std::size_t n = chunk.size();
  while (i < n && in_prefix) on_own_symbol(chunk[i++]);
  if (!active) return;  // body ignores the rest (bad shape or k out of range)
  while (i < n) {
    if (chunk[i] == Symbol::kSep) {
      on_own_symbol(chunk[i]);
      ++i;
      continue;
    }
    const std::size_t j = stream::find_sep(chunk.data(), i + 1, n);
    on_body_run(chunk.data() + i, j - i);
    i = j;
  }
}

// Snapshot kind tags (see machine/online_recognizer.hpp).
constexpr std::uint8_t kTagBlock = 1;
constexpr std::uint8_t kTagFull = 2;
constexpr std::uint8_t kTagSampling = 3;
constexpr std::uint8_t kTagBloom = 4;

void put_bitvec(util::serde::ByteWriter& w, const util::BitVec& v) {
  w.u64(v.size());
  w.u64_vec(v.words());
}

util::BitVec get_bitvec(util::serde::ByteReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<std::uint64_t> words = r.u64_vec();
  try {
    return util::BitVec::from_words(static_cast<std::size_t>(n),
                                    std::move(words));
  } catch (const std::invalid_argument& e) {
    throw util::serde::DecodeError(e.what());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ClassicalBlockRecognizer (Proposition 3.7)
// ---------------------------------------------------------------------------

ClassicalBlockRecognizer::ClassicalBlockRecognizer(std::uint64_t seed) {
  reset(seed);
}

void ClassicalBlockRecognizer::reset(std::uint64_t seed) {
  util::Rng rng(seed);
  a1_ = lang::StructureValidator();
  a2_ = std::make_unique<fingerprint::EqualityChecker>(rng.split());
  in_prefix_ = true;
  k_ = 0;
  active_ = false;
  m_ = 0;
  block_len_ = 0;
  rep_ = 0;
  block_ = 0;
  off_ = 0;
  buffer_ = util::BitVec();
  found_ = false;
}

void ClassicalBlockRecognizer::feed(Symbol s) {
  a1_.feed(s);
  a2_->feed(s);
  on_own_symbol(s);
}

void ClassicalBlockRecognizer::on_own_symbol(Symbol s) {
  if (in_prefix_) {
    if (s == Symbol::kOne && k_ < 20) {
      ++k_;
      return;
    }
    in_prefix_ = false;
    if (s == Symbol::kSep && k_ >= 1 && k_ <= 15) {
      active_ = true;
      m_ = std::uint64_t{1} << (2 * k_);
      block_len_ = std::uint64_t{1} << k_;
      buffer_ = util::BitVec(block_len_);
    }
    return;
  }
  if (!active_) return;
  on_body_symbol(s);
}

void ClassicalBlockRecognizer::feed_chunk(std::span<const Symbol> chunk) {
  a1_.feed_chunk(chunk);
  a2_->feed_chunk(chunk);
  drive_chunk(
      chunk, in_prefix_, active_, [this](Symbol s) { on_own_symbol(s); },
      [this](const Symbol* d, std::uint64_t len) { on_body_run(d, len); });
}

void ClassicalBlockRecognizer::on_body_symbol(Symbol s) {
  if (s == Symbol::kSep) {
    if (block_ == 2) {
      ++rep_;
      block_ = 0;
    } else {
      ++block_;
    }
    off_ = 0;
    return;
  }
  const bool bit = (s == Symbol::kOne);
  const std::uint64_t idx = off_++;
  if (idx >= m_ || rep_ >= block_len_) return;  // malformed; A1 rejects
  // Repetition r owns the index window [r*2^k, (r+1)*2^k).
  const std::uint64_t window_lo = rep_ * block_len_;
  if (idx < window_lo || idx >= window_lo + block_len_) return;
  const std::uint64_t slot = idx - window_lo;
  if (block_ == 0) {
    buffer_.set(slot, bit);
  } else if (block_ == 1) {
    if (bit && buffer_.get(slot)) found_ = true;
  }
}

void ClassicalBlockRecognizer::on_body_run(const Symbol* data,
                                           std::uint64_t len) {
  // Bit-identical to len on_body_symbol calls: off_ always advances; only
  // the run's overlap with this repetition's window [r*2^k, (r+1)*2^k) is
  // read or written, and z-blocks touch nothing.
  const std::uint64_t start = off_;
  off_ += len;
  if (rep_ >= block_len_ || block_ == 2) return;
  const std::uint64_t window_lo = rep_ * block_len_;
  const std::uint64_t window_hi = window_lo + block_len_;
  const std::uint64_t lo = std::max(start, window_lo);
  const std::uint64_t hi = std::min({start + len, window_hi, m_});
  if (block_ == 0) {
    for (std::uint64_t idx = lo; idx < hi; ++idx) {
      buffer_.set(idx - window_lo, data[idx - start] == Symbol::kOne);
    }
  } else if (block_ == 1) {
    for (std::uint64_t idx = lo; idx < hi; ++idx) {
      if (data[idx - start] == Symbol::kOne && buffer_.get(idx - window_lo)) {
        found_ = true;
      }
    }
  }
}

bool ClassicalBlockRecognizer::finish() {
  if (!a1_.finish()) return false;
  if (!a2_->passed()) return false;
  return !found_;
}

machine::SpaceReport ClassicalBlockRecognizer::space_used() const {
  machine::SpaceReport r;
  const std::uint64_t counters =
      active_ ? (std::uint64_t{k_} + 1) + (2 * k_ + 1) + 4 : 8;
  r.classical_bits = a1_.classical_bits_used() + a2_->classical_bits_used() +
                     buffer_.size() + counters + 1;  // +1 found flag
  r.qubits = 0;
  return r;
}

std::vector<std::uint8_t> ClassicalBlockRecognizer::snapshot() const {
  util::serde::ByteWriter w;
  machine::snapshot_header(w, kTagBlock);
  a1_.snapshot_to(w);
  a2_->snapshot_to(w);
  w.b(in_prefix_);
  w.u32(k_);
  w.b(active_);
  w.u64(m_);
  w.u64(block_len_);
  w.u64(rep_);
  w.u32(block_);
  w.u64(off_);
  put_bitvec(w, buffer_);
  w.b(found_);
  return w.take();
}

void ClassicalBlockRecognizer::restore(std::span<const std::uint8_t> bytes) {
  util::serde::ByteReader r(bytes);
  machine::check_snapshot_header(r, kTagBlock, "classical-block");
  a1_.restore_from(r);
  a2_->restore_from(r);
  in_prefix_ = r.b();
  k_ = r.u32();
  active_ = r.b();
  m_ = r.u64();
  block_len_ = r.u64();
  rep_ = r.u64();
  block_ = r.u32();
  off_ = r.u64();
  buffer_ = get_bitvec(r);
  found_ = r.b();
  r.expect_exhausted();
}

// ---------------------------------------------------------------------------
// ClassicalFullRecognizer
// ---------------------------------------------------------------------------

ClassicalFullRecognizer::ClassicalFullRecognizer(std::uint64_t seed) {
  reset(seed);
}

void ClassicalFullRecognizer::reset(std::uint64_t seed) {
  util::Rng rng(seed);
  a1_ = lang::StructureValidator();
  a2_ = std::make_unique<fingerprint::EqualityChecker>(rng.split());
  in_prefix_ = true;
  k_ = 0;
  active_ = false;
  m_ = 0;
  rep_ = 0;
  block_ = 0;
  off_ = 0;
  x_ = util::BitVec();
  found_ = false;
}

void ClassicalFullRecognizer::feed(Symbol s) {
  a1_.feed(s);
  a2_->feed(s);
  on_own_symbol(s);
}

void ClassicalFullRecognizer::on_own_symbol(Symbol s) {
  if (in_prefix_) {
    if (s == Symbol::kOne && k_ < 20) {
      ++k_;
      return;
    }
    in_prefix_ = false;
    if (s == Symbol::kSep && k_ >= 1 && k_ <= 12) {
      active_ = true;
      m_ = std::uint64_t{1} << (2 * k_);
      x_ = util::BitVec(m_);
    }
    return;
  }
  if (!active_) return;
  if (s == Symbol::kSep) {
    if (block_ == 2) {
      ++rep_;
      block_ = 0;
    } else {
      ++block_;
    }
    off_ = 0;
    return;
  }
  const bool bit = (s == Symbol::kOne);
  const std::uint64_t idx = off_++;
  if (idx >= m_) return;
  if (rep_ == 0 && block_ == 0) {
    x_.set(idx, bit);
  } else if (rep_ == 0 && block_ == 1) {
    if (bit && x_.get(idx)) found_ = true;
  }
}

void ClassicalFullRecognizer::feed_chunk(std::span<const Symbol> chunk) {
  a1_.feed_chunk(chunk);
  a2_->feed_chunk(chunk);
  drive_chunk(
      chunk, in_prefix_, active_, [this](Symbol s) { on_own_symbol(s); },
      [this](const Symbol* d, std::uint64_t len) { on_body_run(d, len); });
}

void ClassicalFullRecognizer::on_body_run(const Symbol* data,
                                          std::uint64_t len) {
  // Only repetition 0 reads or writes x; later repetitions are counter
  // arithmetic (A2 carries the consistency burden there).
  const std::uint64_t start = off_;
  off_ += len;
  if (rep_ != 0) return;
  const std::uint64_t hi = std::min(start + len, m_);
  if (block_ == 0) {
    for (std::uint64_t idx = start; idx < hi; ++idx) {
      x_.set(idx, data[idx - start] == Symbol::kOne);
    }
  } else if (block_ == 1) {
    for (std::uint64_t idx = start; idx < hi; ++idx) {
      if (data[idx - start] == Symbol::kOne && x_.get(idx)) found_ = true;
    }
  }
}

bool ClassicalFullRecognizer::finish() {
  if (!a1_.finish()) return false;
  if (!a2_->passed()) return false;
  return !found_;
}

machine::SpaceReport ClassicalFullRecognizer::space_used() const {
  machine::SpaceReport r;
  r.classical_bits = a1_.classical_bits_used() + a2_->classical_bits_used() +
                     x_.size() + (2ULL * k_ + 1) + 4;
  r.qubits = 0;
  return r;
}

std::vector<std::uint8_t> ClassicalFullRecognizer::snapshot() const {
  util::serde::ByteWriter w;
  machine::snapshot_header(w, kTagFull);
  a1_.snapshot_to(w);
  a2_->snapshot_to(w);
  w.b(in_prefix_);
  w.u32(k_);
  w.b(active_);
  w.u64(m_);
  w.u64(rep_);
  w.u32(block_);
  w.u64(off_);
  put_bitvec(w, x_);
  w.b(found_);
  return w.take();
}

void ClassicalFullRecognizer::restore(std::span<const std::uint8_t> bytes) {
  util::serde::ByteReader r(bytes);
  machine::check_snapshot_header(r, kTagFull, "classical-full");
  a1_.restore_from(r);
  a2_->restore_from(r);
  in_prefix_ = r.b();
  k_ = r.u32();
  active_ = r.b();
  m_ = r.u64();
  rep_ = r.u64();
  block_ = r.u32();
  off_ = r.u64();
  x_ = get_bitvec(r);
  found_ = r.b();
  r.expect_exhausted();
}

// ---------------------------------------------------------------------------
// ClassicalSamplingRecognizer
// ---------------------------------------------------------------------------

ClassicalSamplingRecognizer::ClassicalSamplingRecognizer(std::uint64_t seed,
                                                         std::uint64_t budget)
    : rng_(seed), budget_(budget) {
  reset(seed);
}

void ClassicalSamplingRecognizer::reset(std::uint64_t seed) {
  rng_ = util::Rng(seed);
  a1_ = lang::StructureValidator();
  a2_ = std::make_unique<fingerprint::EqualityChecker>(rng_.split());
  in_prefix_ = true;
  k_ = 0;
  active_ = false;
  m_ = 0;
  rep_ = 0;
  block_ = 0;
  off_ = 0;
  indices_.clear();
  xbits_.clear();
  cursor_ = 0;
  found_ = false;
}

void ClassicalSamplingRecognizer::draw_indices() {
  indices_.clear();
  for (std::uint64_t i = 0; i < budget_; ++i) indices_.push_back(rng_.below(m_));
  std::sort(indices_.begin(), indices_.end());
  indices_.erase(std::unique(indices_.begin(), indices_.end()), indices_.end());
  xbits_.assign(indices_.size(), false);
  cursor_ = 0;
}

void ClassicalSamplingRecognizer::feed(Symbol s) {
  a1_.feed(s);
  a2_->feed(s);
  on_own_symbol(s);
}

void ClassicalSamplingRecognizer::on_own_symbol(Symbol s) {
  if (in_prefix_) {
    if (s == Symbol::kOne && k_ < 20) {
      ++k_;
      return;
    }
    in_prefix_ = false;
    if (s == Symbol::kSep && k_ >= 1 && k_ <= 15) {
      active_ = true;
      m_ = std::uint64_t{1} << (2 * k_);
      draw_indices();
    }
    return;
  }
  if (!active_) return;
  if (s == Symbol::kSep) {
    if (block_ == 2) {
      ++rep_;
      block_ = 0;
      draw_indices();  // fresh sample each repetition
    } else {
      ++block_;
      cursor_ = 0;
    }
    off_ = 0;
    return;
  }
  const bool bit = (s == Symbol::kOne);
  const std::uint64_t idx = off_++;
  if (idx >= m_) return;
  if (block_ == 0) {
    while (cursor_ < indices_.size() && indices_[cursor_] < idx) ++cursor_;
    if (cursor_ < indices_.size() && indices_[cursor_] == idx) {
      xbits_[cursor_] = bit;
    }
  } else if (block_ == 1) {
    while (cursor_ < indices_.size() && indices_[cursor_] < idx) ++cursor_;
    if (cursor_ < indices_.size() && indices_[cursor_] == idx) {
      if (bit && xbits_[cursor_]) found_ = true;
    }
  }
}

void ClassicalSamplingRecognizer::feed_chunk(std::span<const Symbol> chunk) {
  a1_.feed_chunk(chunk);
  a2_->feed_chunk(chunk);
  drive_chunk(
      chunk, in_prefix_, active_, [this](Symbol s) { on_own_symbol(s); },
      [this](const Symbol* d, std::uint64_t len) { on_body_run(d, len); });
}

void ClassicalSamplingRecognizer::on_body_run(const Symbol* data,
                                              std::uint64_t len) {
  // The sorted sample turns a run into a cursor sweep: only sampled indices
  // inside [start, end) are visited. The cursor lands one lower-bound step
  // ahead of the per-symbol path's resting point, which is unobservable —
  // it only ever advances monotonically until the next block boundary
  // resets it.
  const std::uint64_t start = off_;
  off_ += len;
  if (block_ >= 2) return;
  const std::uint64_t end = std::min(start + len, m_);
  if (start >= end) return;
  while (cursor_ < indices_.size() && indices_[cursor_] < start) ++cursor_;
  if (block_ == 0) {
    while (cursor_ < indices_.size() && indices_[cursor_] < end) {
      xbits_[cursor_] = data[indices_[cursor_] - start] == Symbol::kOne;
      ++cursor_;
    }
  } else {
    while (cursor_ < indices_.size() && indices_[cursor_] < end) {
      if (data[indices_[cursor_] - start] == Symbol::kOne &&
          xbits_[cursor_]) {
        found_ = true;
      }
      ++cursor_;
    }
  }
}

bool ClassicalSamplingRecognizer::finish() {
  if (!a1_.finish()) return false;
  if (!a2_->passed()) return false;
  return !found_;
}

machine::SpaceReport ClassicalSamplingRecognizer::space_used() const {
  machine::SpaceReport r;
  // Each sampled index costs 2k bits plus 1 remembered bit of x.
  const std::uint64_t per_sample = 2ULL * k_ + 1;
  r.classical_bits = a1_.classical_bits_used() + a2_->classical_bits_used() +
                     budget_ * per_sample + (2ULL * k_ + 1) + 4;
  r.qubits = 0;
  return r;
}

std::vector<std::uint8_t> ClassicalSamplingRecognizer::snapshot() const {
  util::serde::ByteWriter w;
  machine::snapshot_header(w, kTagSampling);
  for (const std::uint64_t s : rng_.state()) w.u64(s);
  w.u64(budget_);
  a1_.snapshot_to(w);
  a2_->snapshot_to(w);
  w.b(in_prefix_);
  w.u32(k_);
  w.b(active_);
  w.u64(m_);
  w.u64(rep_);
  w.u32(block_);
  w.u64(off_);
  w.u64_vec(indices_);
  w.u64(xbits_.size());
  for (const bool bit : xbits_) w.b(bit);
  w.u64(cursor_);
  w.b(found_);
  return w.take();
}

void ClassicalSamplingRecognizer::restore(std::span<const std::uint8_t> bytes) {
  util::serde::ByteReader r(bytes);
  machine::check_snapshot_header(r, kTagSampling, "classical-sample");
  std::array<std::uint64_t, 4> state;
  for (auto& s : state) s = r.u64();
  rng_.set_state(state);
  // budget is construction-time configuration; a snapshot from a
  // differently-budgeted recognizer is a caller error, not a state to adopt.
  if (r.u64() != budget_) {
    throw util::serde::DecodeError("classical-sample: budget mismatch");
  }
  a1_.restore_from(r);
  a2_->restore_from(r);
  in_prefix_ = r.b();
  k_ = r.u32();
  active_ = r.b();
  m_ = r.u64();
  rep_ = r.u64();
  block_ = r.u32();
  off_ = r.u64();
  indices_ = r.u64_vec();
  const std::uint64_t nbits = r.u64();
  if (nbits != indices_.size()) {
    throw util::serde::DecodeError("classical-sample: sample size mismatch");
  }
  xbits_.assign(static_cast<std::size_t>(nbits), false);
  for (std::size_t i = 0; i < xbits_.size(); ++i) xbits_[i] = r.b();
  cursor_ = r.u64();
  if (cursor_ > indices_.size()) {
    throw util::serde::DecodeError("classical-sample: cursor out of range");
  }
  found_ = r.b();
  r.expect_exhausted();
}

// ---------------------------------------------------------------------------
// ClassicalBloomRecognizer
// ---------------------------------------------------------------------------

ClassicalBloomRecognizer::ClassicalBloomRecognizer(std::uint64_t seed,
                                                   std::uint64_t filter_bits,
                                                   unsigned num_hashes)
    : filter_bits_(filter_bits), num_hashes_(num_hashes) {
  // A 0-bit filter has no well-defined hash range (hash() reduces modulo
  // filter_bits_); reject it here instead of dividing by zero mid-stream.
  if (filter_bits_ == 0) {
    throw std::invalid_argument(
        "ClassicalBloomRecognizer: filter_bits must be >= 1");
  }
  reset(seed);
}

void ClassicalBloomRecognizer::reset(std::uint64_t seed) {
  seed_ = seed;
  util::Rng rng(seed);
  a1_ = lang::StructureValidator();
  a2_ = std::make_unique<fingerprint::EqualityChecker>(rng.split());
  in_prefix_ = true;
  k_ = 0;
  active_ = false;
  m_ = 0;
  rep_ = 0;
  block_ = 0;
  off_ = 0;
  filter_ = util::BitVec();
  hit_ = false;
}

std::uint64_t ClassicalBloomRecognizer::hash(std::uint64_t index,
                                             unsigned which) const noexcept {
  // Independent hash functions derived from the run seed via SplitMix64.
  util::SplitMix64 h(seed_ ^ (index * 0x9e3779b97f4a7c15ULL) ^
                     (std::uint64_t{which} << 32));
  return h.next() % filter_bits_;
}

void ClassicalBloomRecognizer::feed(Symbol s) {
  a1_.feed(s);
  a2_->feed(s);
  on_own_symbol(s);
}

void ClassicalBloomRecognizer::on_own_symbol(Symbol s) {
  if (in_prefix_) {
    if (s == Symbol::kOne && k_ < 20) {
      ++k_;
      return;
    }
    in_prefix_ = false;
    if (s == Symbol::kSep && k_ >= 1 && k_ <= 15) {
      active_ = true;
      m_ = std::uint64_t{1} << (2 * k_);
      filter_ = util::BitVec(filter_bits_);
    }
    return;
  }
  if (!active_) return;
  if (s == Symbol::kSep) {
    if (block_ == 2) {
      ++rep_;
      block_ = 0;
    } else {
      ++block_;
    }
    off_ = 0;
    return;
  }
  const bool bit = (s == Symbol::kOne);
  const std::uint64_t idx = off_++;
  if (idx >= m_ || rep_ != 0) return;  // the filter is built once
  if (block_ == 0) {
    if (bit) {
      for (unsigned h = 0; h < num_hashes_; ++h) filter_.set(hash(idx, h), true);
    }
  } else if (block_ == 1) {
    if (bit) {
      bool all = true;
      for (unsigned h = 0; h < num_hashes_; ++h) {
        if (!filter_.get(hash(idx, h))) {
          all = false;
          break;
        }
      }
      if (all) hit_ = true;
    }
  }
}

void ClassicalBloomRecognizer::feed_chunk(std::span<const Symbol> chunk) {
  a1_.feed_chunk(chunk);
  a2_->feed_chunk(chunk);
  drive_chunk(
      chunk, in_prefix_, active_, [this](Symbol s) { on_own_symbol(s); },
      [this](const Symbol* d, std::uint64_t len) { on_body_run(d, len); });
}

void ClassicalBloomRecognizer::on_body_run(const Symbol* data,
                                           std::uint64_t len) {
  // The filter is built (block 0) and probed (block 1) in repetition 0
  // only, and only one-bits hash — later repetitions cost nothing.
  const std::uint64_t start = off_;
  off_ += len;
  if (rep_ != 0) return;
  const std::uint64_t hi = std::min(start + len, m_);
  if (block_ == 0) {
    for (std::uint64_t idx = start; idx < hi; ++idx) {
      if (data[idx - start] != Symbol::kOne) continue;
      for (unsigned h = 0; h < num_hashes_; ++h) filter_.set(hash(idx, h), true);
    }
  } else if (block_ == 1) {
    for (std::uint64_t idx = start; idx < hi; ++idx) {
      if (data[idx - start] != Symbol::kOne) continue;
      bool all = true;
      for (unsigned h = 0; h < num_hashes_; ++h) {
        if (!filter_.get(hash(idx, h))) {
          all = false;
          break;
        }
      }
      if (all) hit_ = true;
    }
  }
}

bool ClassicalBloomRecognizer::finish() {
  if (!a1_.finish()) return false;
  if (!a2_->passed()) return false;
  return !hit_;
}

machine::SpaceReport ClassicalBloomRecognizer::space_used() const {
  machine::SpaceReport r;
  r.classical_bits = a1_.classical_bits_used() + a2_->classical_bits_used() +
                     filter_.size() + (2ULL * k_ + 1) + 4;
  r.qubits = 0;
  return r;
}

std::vector<std::uint8_t> ClassicalBloomRecognizer::snapshot() const {
  util::serde::ByteWriter w;
  machine::snapshot_header(w, kTagBloom);
  w.u64(seed_);
  w.u64(filter_bits_);
  w.u32(num_hashes_);
  a1_.snapshot_to(w);
  a2_->snapshot_to(w);
  w.b(in_prefix_);
  w.u32(k_);
  w.b(active_);
  w.u64(m_);
  w.u64(rep_);
  w.u32(block_);
  w.u64(off_);
  put_bitvec(w, filter_);
  w.b(hit_);
  return w.take();
}

void ClassicalBloomRecognizer::restore(std::span<const std::uint8_t> bytes) {
  util::serde::ByteReader r(bytes);
  machine::check_snapshot_header(r, kTagBloom, "classical-bloom");
  // seed_ travels with the snapshot (the filter's contents hash under it);
  // the filter geometry is construction-time configuration and must match.
  const std::uint64_t seed = r.u64();
  if (r.u64() != filter_bits_ || r.u32() != num_hashes_) {
    throw util::serde::DecodeError("classical-bloom: filter geometry mismatch");
  }
  seed_ = seed;
  a1_.restore_from(r);
  a2_->restore_from(r);
  in_prefix_ = r.b();
  k_ = r.u32();
  active_ = r.b();
  m_ = r.u64();
  rep_ = r.u64();
  block_ = r.u32();
  off_ = r.u64();
  filter_ = get_bitvec(r);
  hit_ = r.b();
  r.expect_exhausted();
}

}  // namespace qols::core
