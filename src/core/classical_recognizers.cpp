#include "qols/core/classical_recognizers.hpp"

#include <algorithm>
#include <bit>

namespace qols::core {

using stream::Symbol;

namespace {

// Shared prefix-parsing helper: returns true once '1^k#' has been consumed
// and fills k. Returns false while still reading; sets *broken on malformed
// prefixes (A1 rejects those words anyway).
struct PrefixParser {
  unsigned k = 0;
  bool done = false;
  bool broken = false;

  void feed(Symbol s) {
    if (done || broken) return;
    if (s == Symbol::kOne && k < 20) {
      ++k;
      return;
    }
    if (s == Symbol::kSep && k >= 1) {
      done = true;
      return;
    }
    broken = true;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// ClassicalBlockRecognizer (Proposition 3.7)
// ---------------------------------------------------------------------------

ClassicalBlockRecognizer::ClassicalBlockRecognizer(std::uint64_t seed) {
  reset(seed);
}

void ClassicalBlockRecognizer::reset(std::uint64_t seed) {
  util::Rng rng(seed);
  a1_ = lang::StructureValidator();
  a2_ = std::make_unique<fingerprint::EqualityChecker>(rng.split());
  in_prefix_ = true;
  k_ = 0;
  active_ = false;
  m_ = 0;
  block_len_ = 0;
  rep_ = 0;
  block_ = 0;
  off_ = 0;
  buffer_ = util::BitVec();
  found_ = false;
}

void ClassicalBlockRecognizer::feed(Symbol s) {
  a1_.feed(s);
  a2_->feed(s);
  if (in_prefix_) {
    if (s == Symbol::kOne && k_ < 20) {
      ++k_;
      return;
    }
    in_prefix_ = false;
    if (s == Symbol::kSep && k_ >= 1 && k_ <= 15) {
      active_ = true;
      m_ = std::uint64_t{1} << (2 * k_);
      block_len_ = std::uint64_t{1} << k_;
      buffer_ = util::BitVec(block_len_);
    }
    return;
  }
  if (!active_) return;
  on_body_symbol(s);
}

void ClassicalBlockRecognizer::on_body_symbol(Symbol s) {
  if (s == Symbol::kSep) {
    if (block_ == 2) {
      ++rep_;
      block_ = 0;
    } else {
      ++block_;
    }
    off_ = 0;
    return;
  }
  const bool bit = (s == Symbol::kOne);
  const std::uint64_t idx = off_++;
  if (idx >= m_ || rep_ >= block_len_) return;  // malformed; A1 rejects
  // Repetition r owns the index window [r*2^k, (r+1)*2^k).
  const std::uint64_t window_lo = rep_ * block_len_;
  if (idx < window_lo || idx >= window_lo + block_len_) return;
  const std::uint64_t slot = idx - window_lo;
  if (block_ == 0) {
    buffer_.set(slot, bit);
  } else if (block_ == 1) {
    if (bit && buffer_.get(slot)) found_ = true;
  }
}

bool ClassicalBlockRecognizer::finish() {
  if (!a1_.finish()) return false;
  if (!a2_->passed()) return false;
  return !found_;
}

machine::SpaceReport ClassicalBlockRecognizer::space_used() const {
  machine::SpaceReport r;
  const std::uint64_t counters =
      active_ ? (std::uint64_t{k_} + 1) + (2 * k_ + 1) + 4 : 8;
  r.classical_bits = a1_.classical_bits_used() + a2_->classical_bits_used() +
                     buffer_.size() + counters + 1;  // +1 found flag
  r.qubits = 0;
  return r;
}

// ---------------------------------------------------------------------------
// ClassicalFullRecognizer
// ---------------------------------------------------------------------------

ClassicalFullRecognizer::ClassicalFullRecognizer(std::uint64_t seed) {
  reset(seed);
}

void ClassicalFullRecognizer::reset(std::uint64_t seed) {
  util::Rng rng(seed);
  a1_ = lang::StructureValidator();
  a2_ = std::make_unique<fingerprint::EqualityChecker>(rng.split());
  in_prefix_ = true;
  k_ = 0;
  active_ = false;
  m_ = 0;
  rep_ = 0;
  block_ = 0;
  off_ = 0;
  x_ = util::BitVec();
  found_ = false;
}

void ClassicalFullRecognizer::feed(Symbol s) {
  a1_.feed(s);
  a2_->feed(s);
  if (in_prefix_) {
    if (s == Symbol::kOne && k_ < 20) {
      ++k_;
      return;
    }
    in_prefix_ = false;
    if (s == Symbol::kSep && k_ >= 1 && k_ <= 12) {
      active_ = true;
      m_ = std::uint64_t{1} << (2 * k_);
      x_ = util::BitVec(m_);
    }
    return;
  }
  if (!active_) return;
  if (s == Symbol::kSep) {
    if (block_ == 2) {
      ++rep_;
      block_ = 0;
    } else {
      ++block_;
    }
    off_ = 0;
    return;
  }
  const bool bit = (s == Symbol::kOne);
  const std::uint64_t idx = off_++;
  if (idx >= m_) return;
  if (rep_ == 0 && block_ == 0) {
    x_.set(idx, bit);
  } else if (rep_ == 0 && block_ == 1) {
    if (bit && x_.get(idx)) found_ = true;
  }
}

bool ClassicalFullRecognizer::finish() {
  if (!a1_.finish()) return false;
  if (!a2_->passed()) return false;
  return !found_;
}

machine::SpaceReport ClassicalFullRecognizer::space_used() const {
  machine::SpaceReport r;
  r.classical_bits = a1_.classical_bits_used() + a2_->classical_bits_used() +
                     x_.size() + (2ULL * k_ + 1) + 4;
  r.qubits = 0;
  return r;
}

// ---------------------------------------------------------------------------
// ClassicalSamplingRecognizer
// ---------------------------------------------------------------------------

ClassicalSamplingRecognizer::ClassicalSamplingRecognizer(std::uint64_t seed,
                                                         std::uint64_t budget)
    : rng_(seed), budget_(budget) {
  reset(seed);
}

void ClassicalSamplingRecognizer::reset(std::uint64_t seed) {
  rng_ = util::Rng(seed);
  a1_ = lang::StructureValidator();
  a2_ = std::make_unique<fingerprint::EqualityChecker>(rng_.split());
  in_prefix_ = true;
  k_ = 0;
  active_ = false;
  m_ = 0;
  rep_ = 0;
  block_ = 0;
  off_ = 0;
  indices_.clear();
  xbits_.clear();
  cursor_ = 0;
  found_ = false;
}

void ClassicalSamplingRecognizer::draw_indices() {
  indices_.clear();
  for (std::uint64_t i = 0; i < budget_; ++i) indices_.push_back(rng_.below(m_));
  std::sort(indices_.begin(), indices_.end());
  indices_.erase(std::unique(indices_.begin(), indices_.end()), indices_.end());
  xbits_.assign(indices_.size(), false);
  cursor_ = 0;
}

void ClassicalSamplingRecognizer::feed(Symbol s) {
  a1_.feed(s);
  a2_->feed(s);
  if (in_prefix_) {
    if (s == Symbol::kOne && k_ < 20) {
      ++k_;
      return;
    }
    in_prefix_ = false;
    if (s == Symbol::kSep && k_ >= 1 && k_ <= 15) {
      active_ = true;
      m_ = std::uint64_t{1} << (2 * k_);
      draw_indices();
    }
    return;
  }
  if (!active_) return;
  if (s == Symbol::kSep) {
    if (block_ == 2) {
      ++rep_;
      block_ = 0;
      draw_indices();  // fresh sample each repetition
    } else {
      ++block_;
      cursor_ = 0;
    }
    off_ = 0;
    return;
  }
  const bool bit = (s == Symbol::kOne);
  const std::uint64_t idx = off_++;
  if (idx >= m_) return;
  if (block_ == 0) {
    while (cursor_ < indices_.size() && indices_[cursor_] < idx) ++cursor_;
    if (cursor_ < indices_.size() && indices_[cursor_] == idx) {
      xbits_[cursor_] = bit;
    }
  } else if (block_ == 1) {
    while (cursor_ < indices_.size() && indices_[cursor_] < idx) ++cursor_;
    if (cursor_ < indices_.size() && indices_[cursor_] == idx) {
      if (bit && xbits_[cursor_]) found_ = true;
    }
  }
}

bool ClassicalSamplingRecognizer::finish() {
  if (!a1_.finish()) return false;
  if (!a2_->passed()) return false;
  return !found_;
}

machine::SpaceReport ClassicalSamplingRecognizer::space_used() const {
  machine::SpaceReport r;
  // Each sampled index costs 2k bits plus 1 remembered bit of x.
  const std::uint64_t per_sample = 2ULL * k_ + 1;
  r.classical_bits = a1_.classical_bits_used() + a2_->classical_bits_used() +
                     budget_ * per_sample + (2ULL * k_ + 1) + 4;
  r.qubits = 0;
  return r;
}

// ---------------------------------------------------------------------------
// ClassicalBloomRecognizer
// ---------------------------------------------------------------------------

ClassicalBloomRecognizer::ClassicalBloomRecognizer(std::uint64_t seed,
                                                   std::uint64_t filter_bits,
                                                   unsigned num_hashes)
    : filter_bits_(filter_bits), num_hashes_(num_hashes) {
  reset(seed);
}

void ClassicalBloomRecognizer::reset(std::uint64_t seed) {
  seed_ = seed;
  util::Rng rng(seed);
  a1_ = lang::StructureValidator();
  a2_ = std::make_unique<fingerprint::EqualityChecker>(rng.split());
  in_prefix_ = true;
  k_ = 0;
  active_ = false;
  m_ = 0;
  rep_ = 0;
  block_ = 0;
  off_ = 0;
  filter_ = util::BitVec();
  hit_ = false;
}

std::uint64_t ClassicalBloomRecognizer::hash(std::uint64_t index,
                                             unsigned which) const noexcept {
  // Independent hash functions derived from the run seed via SplitMix64.
  util::SplitMix64 h(seed_ ^ (index * 0x9e3779b97f4a7c15ULL) ^
                     (std::uint64_t{which} << 32));
  return h.next() % filter_bits_;
}

void ClassicalBloomRecognizer::feed(Symbol s) {
  a1_.feed(s);
  a2_->feed(s);
  if (in_prefix_) {
    if (s == Symbol::kOne && k_ < 20) {
      ++k_;
      return;
    }
    in_prefix_ = false;
    if (s == Symbol::kSep && k_ >= 1 && k_ <= 15) {
      active_ = true;
      m_ = std::uint64_t{1} << (2 * k_);
      filter_ = util::BitVec(filter_bits_);
    }
    return;
  }
  if (!active_) return;
  if (s == Symbol::kSep) {
    if (block_ == 2) {
      ++rep_;
      block_ = 0;
    } else {
      ++block_;
    }
    off_ = 0;
    return;
  }
  const bool bit = (s == Symbol::kOne);
  const std::uint64_t idx = off_++;
  if (idx >= m_ || rep_ != 0) return;  // the filter is built once
  if (block_ == 0) {
    if (bit) {
      for (unsigned h = 0; h < num_hashes_; ++h) filter_.set(hash(idx, h), true);
    }
  } else if (block_ == 1) {
    if (bit) {
      bool all = true;
      for (unsigned h = 0; h < num_hashes_; ++h) {
        if (!filter_.get(hash(idx, h))) {
          all = false;
          break;
        }
      }
      if (all) hit_ = true;
    }
  }
}

bool ClassicalBloomRecognizer::finish() {
  if (!a1_.finish()) return false;
  if (!a2_->passed()) return false;
  return !hit_;
}

machine::SpaceReport ClassicalBloomRecognizer::space_used() const {
  machine::SpaceReport r;
  r.classical_bits = a1_.classical_bits_used() + a2_->classical_bits_used() +
                     filter_.size() + (2ULL * k_ + 1) + 4;
  r.qubits = 0;
  return r;
}

}  // namespace qols::core
