#include "qols/core/amplified.hpp"

#include "qols/util/rng.hpp"

namespace qols::core {

AmplifiedRecognizer::AmplifiedRecognizer(Factory factory, std::uint64_t copies,
                                         std::uint64_t seed)
    : factory_(std::move(factory)), requested_copies_(copies) {
  reset(seed);
}

void AmplifiedRecognizer::reset(std::uint64_t seed) {
  util::Rng rng(seed);
  inner_.clear();
  inner_.reserve(requested_copies_);
  for (std::uint64_t i = 0; i < requested_copies_; ++i) {
    inner_.push_back(factory_(rng.next()));
  }
}

void AmplifiedRecognizer::feed(stream::Symbol s) {
  for (auto& rec : inner_) rec->feed(s);
}

void AmplifiedRecognizer::feed_chunk(std::span<const stream::Symbol> chunk) {
  for (auto& rec : inner_) rec->feed_chunk(chunk);
}

bool AmplifiedRecognizer::finish() {
  bool all = true;
  for (auto& rec : inner_) {
    if (!rec->finish()) all = false;  // still finish every copy (measurement)
  }
  return all;
}

bool AmplifiedRecognizer::fully_simulated() const {
  for (const auto& rec : inner_) {
    if (!rec->fully_simulated()) return false;
  }
  return true;
}

machine::SpaceReport AmplifiedRecognizer::space_used() const {
  machine::SpaceReport total;
  for (const auto& rec : inner_) {
    const auto r = rec->space_used();
    total.classical_bits += r.classical_bits;
    total.qubits += r.qubits;
  }
  return total;
}

std::string AmplifiedRecognizer::name() const {
  const std::string base = inner_.empty() ? "?" : inner_.front()->name();
  return base + "-x" + std::to_string(requested_copies_);
}

}  // namespace qols::core
