#include "qols/core/trial_engine.hpp"

#include <atomic>
#include <cstdint>

namespace qols::core {

ExperimentResult TrialEngine::run_trials(const TrialFn& trial,
                                         const ExperimentOptions& opts) const {
  ExperimentResult result;
  result.trials = opts.trials;
  if (opts.trials == 0) return result;

  std::atomic<std::uint64_t> accepts{0};
  std::atomic<std::uint64_t> not_simulated{0};
  // Written only by the shard owning trial 0; published by the pool's
  // wait_idle() barrier before it is read below.
  machine::SpaceReport space;

  auto run_range = [&](std::size_t lo, std::size_t hi) {
    std::uint64_t local_accepts = 0;
    std::uint64_t local_not_simulated = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const TrialOutcome outcome = trial(opts.seed_base + i);
      if (outcome.accepted) ++local_accepts;
      if (!outcome.simulated) ++local_not_simulated;
      if (i == 0) space = outcome.space;
    }
    accepts.fetch_add(local_accepts, std::memory_order_relaxed);
    not_simulated.fetch_add(local_not_simulated, std::memory_order_relaxed);
  };

  const auto trials = static_cast<std::size_t>(opts.trials);
  if (config_.serial) {
    run_range(0, trials);
  } else {
    util::ThreadPool& pool =
        config_.pool ? *config_.pool : util::ThreadPool::global();
    util::parallel_for(pool, 0, trials, config_.grain, run_range);
  }

  result.accepts = accepts.load(std::memory_order_relaxed);
  result.not_simulated = not_simulated.load(std::memory_order_relaxed);
  result.space = space;
  return result;
}

ExperimentResult TrialEngine::measure_acceptance(
    const StreamFactory& make_stream, const RecognizerFactory& make_recognizer,
    const ExperimentOptions& opts) const {
  return run_trials(
      [&](std::uint64_t seed) {
        auto rec = make_recognizer(seed);
        auto stream = make_stream();
        TrialOutcome outcome;
        outcome.accepted = machine::run_stream(*stream, *rec);
        outcome.simulated = rec->fully_simulated();
        outcome.space = rec->space_used();
        return outcome;
      },
      opts);
}

QualityProfile TrialEngine::measure_quality(
    const StreamFactory& member_stream, const StreamFactory& nonmember_stream,
    const RecognizerFactory& make_recognizer,
    const ExperimentOptions& opts) const {
  QualityProfile profile;
  profile.on_member = measure_acceptance(member_stream, make_recognizer, opts);
  ExperimentOptions shifted = opts;
  shifted.seed_base += opts.trials;  // independent seeds for the second leg
  profile.on_nonmember =
      measure_acceptance(nonmember_stream, make_recognizer, shifted);
  return profile;
}

}  // namespace qols::core
