#include "qols/core/quantum_recognizer.hpp"

namespace qols::core {

QuantumOnlineRecognizer::QuantumOnlineRecognizer(std::uint64_t seed)
    : QuantumOnlineRecognizer(seed, Options{}) {}

QuantumOnlineRecognizer::QuantumOnlineRecognizer(std::uint64_t seed,
                                                 Options opts)
    : opts_(opts) {
  reset(seed);
}

void QuantumOnlineRecognizer::reset(std::uint64_t seed) {
  util::Rng rng(seed);
  a1_ = lang::StructureValidator();
  // Independent child generators: A2's evaluation point and A3's iteration
  // count / measurement must not be correlated.
  a2_ = std::make_unique<fingerprint::EqualityChecker>(rng.split());
  a3_ = std::make_unique<GroverStreamer>(rng.split(), opts_.a3);
  finished_ = false;
}

void QuantumOnlineRecognizer::feed(stream::Symbol s) {
  a1_.feed(s);
  a2_->feed(s);
  a3_->feed(s);
}

void QuantumOnlineRecognizer::feed_chunk(
    std::span<const stream::Symbol> chunk) {
  a1_.feed_chunk(chunk);
  a2_->feed_chunk(chunk);
  a3_->feed_chunk(chunk);
}

bool QuantumOnlineRecognizer::finish() { return verdict() == Verdict::kAccept; }

QuantumOnlineRecognizer::Verdict QuantumOnlineRecognizer::verdict() {
  finished_ = true;
  if (!a1_.finish()) return Verdict::kReject;
  if (!a2_->passed()) return Verdict::kReject;
  const int out = a3_->finish_output();
  if (out == GroverStreamer::kNotSimulated) return Verdict::kNotSimulated;
  return out == 1 ? Verdict::kAccept : Verdict::kReject;
}

double QuantumOnlineRecognizer::exact_acceptance_probability() {
  finished_ = true;
  if (!a1_.finish()) return 0.0;
  if (!a2_->passed()) return 0.0;
  // Consistent with verdict()/finish(): a run whose register could not be
  // simulated contributes no acceptance mass (an un-run A3 must not read as
  // a certain accept).
  if (a3_->not_simulated()) return 0.0;
  return 1.0 - a3_->probability_output_zero();
}

machine::SpaceReport QuantumOnlineRecognizer::space_used() const {
  machine::SpaceReport r;
  r.classical_bits = a1_.classical_bits_used() + a2_->classical_bits_used() +
                     a3_->classical_bits_used();
  r.qubits = a3_->qubits_used() + a3_->ancilla_qubits_used();
  return r;
}

std::vector<std::uint8_t> QuantumOnlineRecognizer::snapshot() const {
  util::serde::ByteWriter w;
  machine::snapshot_header(w, /*kind_tag=*/5);
  try {
    a1_.snapshot_to(w);
    a2_->snapshot_to(w);
    a3_->snapshot_to(w);
  } catch (const backend::UnsupportedOperation& e) {
    // Translate the backend-layer refusal (gate-level mode, or a backend
    // without state serialization) into the recognizer-layer contract.
    throw machine::UnsupportedSnapshot(e.what());
  }
  w.b(finished_);
  return w.take();
}

void QuantumOnlineRecognizer::restore(std::span<const std::uint8_t> bytes) {
  util::serde::ByteReader r(bytes);
  machine::check_snapshot_header(r, /*kind_tag=*/5, "quantum");
  a1_.restore_from(r);
  a2_->restore_from(r);
  try {
    a3_->restore_from(r);
  } catch (const backend::UnsupportedOperation& e) {
    throw machine::UnsupportedSnapshot(e.what());
  }
  finished_ = r.b();
  r.expect_exhausted();
}

}  // namespace qols::core
