#include "qols/core/experiment.hpp"

namespace qols::core {

ExperimentResult measure_acceptance(const StreamFactory& make_stream,
                                    const RecognizerFactory& make_recognizer,
                                    const ExperimentOptions& opts) {
  ExperimentResult result;
  result.trials = opts.trials;
  for (std::uint64_t i = 0; i < opts.trials; ++i) {
    auto rec = make_recognizer(opts.seed_base + i);
    auto stream = make_stream();
    if (machine::run_stream(*stream, *rec)) ++result.accepts;
    result.space = rec->space_used();
  }
  return result;
}

QualityProfile measure_quality(const StreamFactory& member_stream,
                               const StreamFactory& nonmember_stream,
                               const RecognizerFactory& make_recognizer,
                               const ExperimentOptions& opts) {
  QualityProfile profile;
  profile.on_member = measure_acceptance(member_stream, make_recognizer, opts);
  ExperimentOptions shifted = opts;
  shifted.seed_base += opts.trials;  // independent seeds for the second leg
  profile.on_nonmember =
      measure_acceptance(nonmember_stream, make_recognizer, shifted);
  return profile;
}

}  // namespace qols::core
