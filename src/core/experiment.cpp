#include "qols/core/experiment.hpp"

#include "qols/core/trial_engine.hpp"

namespace qols::core {

// Thin wrappers over a default-configured TrialEngine (global thread pool).
// Parallel sharding is bit-identical to the old serial loops: see the
// determinism contract in qols/core/trial_engine.hpp.

ExperimentResult measure_acceptance(const StreamFactory& make_stream,
                                    const RecognizerFactory& make_recognizer,
                                    const ExperimentOptions& opts) {
  return TrialEngine{}.measure_acceptance(make_stream, make_recognizer, opts);
}

QualityProfile measure_quality(const StreamFactory& member_stream,
                               const StreamFactory& nonmember_stream,
                               const RecognizerFactory& make_recognizer,
                               const ExperimentOptions& opts) {
  return TrialEngine{}.measure_quality(member_stream, nonmember_stream,
                                       make_recognizer, opts);
}

}  // namespace qols::core
