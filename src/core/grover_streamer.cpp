#include "qols/core/grover_streamer.hpp"

#include <array>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <string>
#include <vector>

#include "qols/backend/registry.hpp"
#include "qols/telemetry/registry.hpp"

namespace qols::core {

using quantum::ControlTerm;
using stream::Symbol;

GroverStreamer::GroverStreamer(util::Rng rng)
    : GroverStreamer(rng, Options{}) {}

GroverStreamer::GroverStreamer(util::Rng rng, Options opts)
    : rng_(rng), opts_(std::move(opts)) {
  // Fail fast on a misspelled backend id instead of mid-stream.
  if (!opts_.backend.empty() && opts_.backend != backend::kAutoBackendId &&
      backend::BackendRegistry::global().find(opts_.backend) == nullptr) {
    throw std::invalid_argument("GroverStreamer: unknown backend '" +
                                opts_.backend + "'");
  }
}

void GroverStreamer::feed(Symbol s) {
  if (in_prefix_) {
    if (s == Symbol::kOne) {
      ++k_;
      return;
    }
    if (s == Symbol::kSep && k_ >= 1) {
      in_prefix_ = false;
      std::optional<std::string> backend_id;
      if (opts_.simulate) {
        const std::string requested =
            !opts_.backend.empty() ? opts_.backend
                                   : backend::env_backend_override().value_or(
                                         std::string{});
        backend_id = backend::resolve_backend_id(
            requested, k_, opts_.max_sim_k, opts_.max_structured_k);
        if (!backend_id) {
          overflow_ = true;  // no backend covers k: explicitly not simulated
          return;
        }
      } else if (k_ > opts_.max_sim_k) {
        // Non-simulating modes keep the historical max_sim_k envelope for
        // counters and the gate compiler.
        overflow_ = true;
        return;
      }
      m_ = std::uint64_t{1} << (2 * k_);
      j_ = rng_.below(std::uint64_t{1} << k_);
      const unsigned data_qubits = 2 * k_ + 2;
      if (backend_id) {
        backend_ = backend::make_backend(*backend_id, data_qubits, 2 * k_,
                                         opts_.precision);
        backend_->apply_h_range(0, 2 * k_);
        ++gates_applied_;
      }
      if (opts_.gate_sink != nullptr) {
        // mcz_pattern over 2k+1 terms needs 2k ancillas.
        builder_ = std::make_unique<gates::CircuitBuilder>(
            *opts_.gate_sink, data_qubits, 2 * k_);
        builder_->h_range(0, 2 * k_);
      }
      active_ = true;
      return;
    }
    // Shape already broken; A1 rejects the word. Become inert.
    in_prefix_ = false;
    return;
  }
  if (!active_ || done_) return;
  if (s == Symbol::kSep) {
    on_sep();
  } else {
    on_bit(s == Symbol::kOne);
  }
}

void GroverStreamer::feed_chunk(std::span<const Symbol> chunk) {
  std::size_t i = 0;
  const std::size_t n = chunk.size();
  while (i < n) {
    if (!in_prefix_ && (!active_ || done_)) return;  // inert for the rest
    const Symbol s = chunk[i];
    if (!in_prefix_ && s == Symbol::kZero) {
      // A run of zero bits only advances the offset counter (on_bit returns
      // before touching the register), or freezes on an overlong block —
      // identical end state to feeding them one at a time.
      std::size_t j = i + 1;
      while (j < n && chunk[j] == Symbol::kZero) ++j;
      const std::uint64_t run = j - i;
      const std::uint64_t room = m_ > off_ ? m_ - off_ : 0;
      if (run > room) {
        off_ += room;
        done_ = true;  // the first bit past m freezes the register
      } else {
        off_ += run;
      }
      i = j;
      continue;
    }
    feed(s);
    ++i;
  }
}

void GroverStreamer::on_bit(bool bit) {
  if (off_ >= m_) {
    // Overlong block: word is malformed, A1 rejects. Freeze the register.
    done_ = true;
    return;
  }
  const std::uint64_t idx = off_;
  ++off_;
  if (!bit) return;

  const unsigned h = 2 * k_;
  const unsigned l = 2 * k_ + 1;
  const bool grover_phase = rep_ < j_;

  if (grover_phase) {
    // V_x / W_y / V_z, one streamed bit at a time.
    if (backend_) ++gates_applied_;
    if (block_ == 0 || block_ == 2) {
      if (backend_) backend_->apply_x_on_index(0, 2 * k_, idx, h);
      if (builder_) {
        std::vector<ControlTerm> terms;
        terms.reserve(2 * k_);
        for (unsigned q = 0; q < 2 * k_; ++q) {
          terms.push_back({q, ((idx >> q) & 1) != 0});
        }
        builder_->mcx_pattern(terms, h);
      }
    } else {
      if (backend_) backend_->apply_z_on_index(0, 2 * k_, idx, h);
      if (builder_) {
        std::vector<ControlTerm> terms;
        terms.reserve(2 * k_ + 1);
        for (unsigned q = 0; q < 2 * k_; ++q) {
          terms.push_back({q, ((idx >> q) & 1) != 0});
        }
        terms.push_back({h, true});
        builder_->mcz_pattern(terms);
      }
    }
    return;
  }
  // Step 4 (repetition j+1): V_x on the x-block, R_y on the y-block.
  if (backend_ && block_ != 2) ++gates_applied_;
  if (block_ == 0) {
    if (backend_) backend_->apply_x_on_index(0, 2 * k_, idx, h);
    if (builder_) {
      std::vector<ControlTerm> terms;
      terms.reserve(2 * k_);
      for (unsigned q = 0; q < 2 * k_; ++q) {
        terms.push_back({q, ((idx >> q) & 1) != 0});
      }
      builder_->mcx_pattern(terms, h);
    }
  } else if (block_ == 1) {
    if (backend_) backend_->apply_cx_on_index(0, 2 * k_, idx, h, l);
    if (builder_) {
      std::vector<ControlTerm> terms;
      terms.reserve(2 * k_ + 1);
      for (unsigned q = 0; q < 2 * k_; ++q) {
        terms.push_back({q, ((idx >> q) & 1) != 0});
      }
      terms.push_back({h, true});
      builder_->mcx_pattern(terms, l);
    }
  }
}

void GroverStreamer::on_sep() {
  // End of the current block.
  const bool grover_phase = rep_ < j_;
  if (!grover_phase && block_ == 1) {
    // Step 4 complete: the register now carries sum beta_i |i>|x_i>|x_i&y_i>.
    done_ = true;
    return;
  }
  if (block_ == 2) {
    // Completed a full (x#y#x#) repetition inside the Grover phase:
    // apply the diffusion U_k S_k U_k.
    if (grover_phase) apply_diffusion();
    ++rep_;
    block_ = 0;
  } else {
    ++block_;
  }
  off_ = 0;
}

void GroverStreamer::apply_diffusion() {
  if (backend_) {
    backend_->apply_grover_diffusion(0, 2 * k_);
    ++gates_applied_;
  }
  if (builder_) {
    builder_->h_range(0, 2 * k_);
    builder_->reflect_zero(0, 2 * k_);  // -S_k; global phase, unobservable
    builder_->h_range(0, 2 * k_);
  }
}

double GroverStreamer::probability_output_zero() const {
  if (!backend_) return 0.0;
  return backend_->probability_one(2 * k_ + 1);
}

int GroverStreamer::finish_output() {
  // Flush this run's gate tally into the process-wide counter. Observability
  // only: the measurement below is taken before/independently of the add.
  static telemetry::Counter& gates_total =
      telemetry::MetricsRegistry::global().counter("quantum.gates_total");
  gates_total.add(gates_applied_);
  if (overflow_) return kNotSimulated;  // no backend covered k
  if (!active_ || !backend_) return 1;  // simulation not requested: inert
  const bool b = backend_->measure(2 * k_ + 1, rng_);
  return b ? 0 : 1;
}

std::uint64_t GroverStreamer::ancilla_qubits_used() const noexcept {
  return builder_ ? builder_->ancillas_high_water() : 0;
}

std::uint64_t GroverStreamer::classical_bits_for(unsigned k) noexcept {
  const std::uint64_t kk = k;
  // k counter, j (k bits), repetition counter (k+1), block id (2), offset
  // counter (2k+1), done/active flags.
  return std::bit_width(kk + 1) + kk + (kk + 1) + 2 + (2 * kk + 1) + 2;
}

std::uint64_t GroverStreamer::classical_bits_used() const noexcept {
  if (!active_) return 8;
  return classical_bits_for(k_);
}

std::uint64_t GroverStreamer::gates_emitted() const noexcept {
  return builder_ ? builder_->gates_emitted() : 0;
}

void GroverStreamer::snapshot_to(util::serde::ByteWriter& w) const {
  if (builder_ != nullptr || opts_.gate_sink != nullptr) {
    // The emitted-gate tape lives in the caller's sink; a snapshot that
    // silently dropped it would replay the stream with half the output
    // missing.
    throw backend::UnsupportedOperation("snapshot in gate-level mode");
  }
  for (const std::uint64_t s : rng_.state()) w.u64(s);
  w.b(in_prefix_);
  w.u32(k_);
  w.b(active_);
  w.b(overflow_);
  w.u64(m_);
  w.u64(j_);
  w.u64(rep_);
  w.u32(block_);
  w.u64(off_);
  w.b(done_);
  w.b(backend_ != nullptr);
  if (backend_) {
    const std::string_view id = backend_->id();
    w.u8(static_cast<std::uint8_t>(id.size()));
    for (const char c : id) w.u8(static_cast<std::uint8_t>(c));
    w.u8(static_cast<std::uint8_t>(backend_->precision()));
    backend_->serialize_state(w);
  }
}

void GroverStreamer::restore_from(util::serde::ByteReader& r) {
  if (opts_.gate_sink != nullptr) {
    throw backend::UnsupportedOperation("restore into gate-level mode");
  }
  std::array<std::uint64_t, 4> state;
  for (auto& s : state) s = r.u64();
  rng_.set_state(state);
  in_prefix_ = r.b();
  k_ = r.u32();
  active_ = r.b();
  overflow_ = r.b();
  m_ = r.u64();
  j_ = r.u64();
  rep_ = r.u64();
  block_ = r.u32();
  off_ = r.u64();
  done_ = r.b();
  backend_.reset();
  builder_.reset();
  if (r.b()) {
    std::string id(r.u8(), '\0');
    for (char& c : id) c = static_cast<char>(r.u8());
    const auto precision = static_cast<quantum::Precision>(r.u8());
    if (k_ == 0 || k_ > 29) {
      throw util::serde::DecodeError("grover streamer: bad k for backend");
    }
    // make_backend validates the id and geometry; a corrupt id string
    // surfaces as invalid_argument, not undefined behavior.
    backend_ = backend::make_backend(id, 2 * k_ + 2, 2 * k_, precision);
    backend_->restore_state(r);
  }
}

}  // namespace qols::core
