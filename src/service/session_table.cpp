#include "qols/service/session_table.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <utility>

#include "qols/util/crc32.hpp"
#include "qols/util/serde.hpp"

namespace qols::service {

namespace {

constexpr std::uint8_t kMagic[8] = {'Q', 'O', 'L', 'S', 'M', 'A', 'N', 1};
constexpr std::size_t kHeaderSize = sizeof(kMagic);
constexpr std::size_t kRecordFrame = 8;  // u32 len + u32 crc
// Largest payload any record type can produce is 1 + 3*8 bytes; anything
// past this bound is file damage masquerading as a length, not a record.
constexpr std::uint32_t kMaxRecordPayload = 64;

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw std::runtime_error("SessionTable: " + what + " " + path + ": " +
                           std::strerror(errno));
}

void write_all(int fd, const std::uint8_t* data, std::size_t n,
               const std::string& path) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_io("cannot write", path);
    }
    done += static_cast<std::size_t>(w);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) throw_io("cannot fsync", path);
}

/// Syncs the directory entry so a rename/create is durable, not just the
/// file contents. Best effort on filesystems that refuse O_DIRECTORY fsync.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

std::vector<std::uint8_t> frame_record(
    const std::vector<std::uint8_t>& payload) {
  util::serde::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(util::crc32(payload));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> payload_open(std::uint64_t id, std::uint64_t seed,
                                       std::uint64_t shard) {
  util::serde::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(SessionTable::RecordType::kOpen));
  w.u64(id);
  w.u64(seed);
  w.u64(shard);
  return w.take();
}

std::vector<std::uint8_t> payload_evict(std::uint64_t id,
                                        std::uint64_t spill_bytes) {
  util::serde::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(SessionTable::RecordType::kEvict));
  w.u64(id);
  w.u64(spill_bytes);
  return w.take();
}

std::vector<std::uint8_t> payload_id_only(SessionTable::RecordType type,
                                          std::uint64_t id) {
  util::serde::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(id);
  return w.take();
}

std::vector<std::uint8_t> payload_migrate(std::uint64_t id,
                                          std::uint64_t shard) {
  util::serde::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(SessionTable::RecordType::kMigrate));
  w.u64(id);
  w.u64(shard);
  return w.take();
}

[[noreturn]] void corrupt(std::uint64_t record, const std::string& why) {
  throw ManifestCorrupt("manifest record " + std::to_string(record) + ": " +
                        why);
}

/// Applies one decoded record to the replay state, enforcing the lifecycle
/// state machine — a record that contradicts the state is file damage the
/// CRC happened not to catch, and recovery must refuse it.
void apply_record(SessionTable::Replay& state,
                  std::span<const std::uint8_t> payload,
                  std::uint64_t record) {
  util::serde::ByteReader r(payload);
  const auto type = static_cast<SessionTable::RecordType>(r.u8());
  switch (type) {
    case SessionTable::RecordType::kOpen: {
      const std::uint64_t id = r.u64();
      SessionTable::LiveSession s;
      s.seed = r.u64();
      s.shard = r.u64();
      r.expect_exhausted();
      if (!state.live.emplace(id, s).second) {
        corrupt(record, "open of already-open session " + std::to_string(id));
      }
      return;
    }
    case SessionTable::RecordType::kEvict: {
      const std::uint64_t id = r.u64();
      const std::uint64_t bytes = r.u64();
      r.expect_exhausted();
      const auto it = state.live.find(id);
      if (it == state.live.end()) {
        corrupt(record, "evict of unknown session " + std::to_string(id));
      }
      if (it->second.evicted) {
        corrupt(record, "evict of evicted session " + std::to_string(id));
      }
      it->second.evicted = true;
      it->second.spill_bytes = bytes;
      return;
    }
    case SessionTable::RecordType::kRevive: {
      const std::uint64_t id = r.u64();
      r.expect_exhausted();
      const auto it = state.live.find(id);
      if (it == state.live.end()) {
        corrupt(record, "revive of unknown session " + std::to_string(id));
      }
      if (!it->second.evicted) {
        corrupt(record, "revive of resident session " + std::to_string(id));
      }
      it->second.evicted = false;
      it->second.spill_bytes = 0;
      return;
    }
    case SessionTable::RecordType::kFinish: {
      const std::uint64_t id = r.u64();
      r.expect_exhausted();
      if (state.live.erase(id) == 0) {
        corrupt(record, "finish of unknown session " + std::to_string(id));
      }
      return;
    }
    case SessionTable::RecordType::kMigrate: {
      const std::uint64_t id = r.u64();
      const std::uint64_t shard = r.u64();
      r.expect_exhausted();
      const auto it = state.live.find(id);
      if (it == state.live.end()) {
        corrupt(record, "migrate of unknown session " + std::to_string(id));
      }
      it->second.shard = shard;
      return;
    }
  }
  corrupt(record, "unknown record type " +
                      std::to_string(static_cast<unsigned>(payload[0])));
}

}  // namespace

std::string SessionTable::path_in(const std::string& dir) {
  return (std::filesystem::path(dir) / file_name()).string();
}

SessionTable::SessionTable(Options opts)
    : opts_(std::move(opts)), path_(path_in(opts_.dir)) {
  open_fd();
}

void SessionTable::open_fd() {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0) throw_io("cannot open", path_);
  struct ::stat st{};
  if (::fstat(fd_, &st) != 0) throw_io("cannot stat", path_);
  if (st.st_size == 0) {
    write_all(fd_, kMagic, sizeof(kMagic), path_);
    fsync_or_throw(fd_, path_);
    fsync_dir(opts_.dir);
  }
}

SessionTable::~SessionTable() {
  if (fd_ >= 0) {
    ::fsync(fd_);  // best effort — the dtor cannot throw
    ::close(fd_);
  }
}

void SessionTable::crash_point() {
  ensure_alive();
  if (!armed_) return;
  if (remaining_ == 0) {
    dead_ = true;
    throw InjectedCrash("SessionTable: injected crash after " +
                        std::to_string(appended_) + " records");
  }
  --remaining_;
}

void SessionTable::ensure_alive() const {
  if (dead_) {
    throw InjectedCrash("SessionTable: operating on a crashed table");
  }
}

void SessionTable::abort_after(std::uint64_t n) noexcept {
  armed_ = true;
  remaining_ = n;
}

void SessionTable::append(RecordType type,
                          const std::vector<std::uint8_t>& payload) {
  ensure_alive();
  const std::vector<std::uint8_t> framed = frame_record(payload);
  write_all(fd_, framed.data(), framed.size(), path_);
  ++appended_;
  ++unsynced_;
  const bool force = type == RecordType::kEvict;
  if (force || unsynced_ >= opts_.sync_every) {
    fsync_or_throw(fd_, path_);
    unsynced_ = 0;
    ++syncs_;
  }
}

void SessionTable::record_open(std::uint64_t id, std::uint64_t seed,
                               std::uint64_t shard) {
  append(RecordType::kOpen, payload_open(id, seed, shard));
}

void SessionTable::record_evict(std::uint64_t id, std::uint64_t spill_bytes) {
  append(RecordType::kEvict, payload_evict(id, spill_bytes));
}

void SessionTable::record_revive(std::uint64_t id) {
  append(RecordType::kRevive, payload_id_only(RecordType::kRevive, id));
}

void SessionTable::record_finish(std::uint64_t id) {
  append(RecordType::kFinish, payload_id_only(RecordType::kFinish, id));
}

void SessionTable::record_migrate(std::uint64_t id, std::uint64_t shard) {
  append(RecordType::kMigrate, payload_migrate(id, shard));
}

void SessionTable::sync() {
  ensure_alive();
  if (unsynced_ == 0) return;
  fsync_or_throw(fd_, path_);
  unsynced_ = 0;
  ++syncs_;
}

void SessionTable::compact(const std::map<std::uint64_t, LiveSession>& live) {
  ensure_alive();
  const std::string tmp = path_ + ".tmp";
  {
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) throw_io("cannot open", tmp);
    write_all(fd, kMagic, sizeof(kMagic), tmp);
    for (const auto& [id, s] : live) {
      const auto open_rec = frame_record(payload_open(id, s.seed, s.shard));
      write_all(fd, open_rec.data(), open_rec.size(), tmp);
      if (s.evicted) {
        const auto evict_rec = frame_record(payload_evict(id, s.spill_bytes));
        write_all(fd, evict_rec.data(), evict_rec.size(), tmp);
      }
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      throw_io("cannot fsync", tmp);
    }
    ::close(fd);
  }
  // The rename is the commit point: either the old journal or the compacted
  // one is fully in place, never a mixture.
  if (::rename(tmp.c_str(), path_.c_str()) != 0) throw_io("cannot rename", tmp);
  fsync_dir(opts_.dir);
  ::close(fd_);
  fd_ = -1;
  open_fd();
  unsynced_ = 0;
  ++compactions_;
}

SessionTable::Replay SessionTable::replay(const std::string& dir) {
  const std::string path = path_in(dir);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    throw ManifestMissing("no session manifest at " + path);
  }
  const auto size = static_cast<std::size_t>(in.tellg());
  if (size == 0) {
    // A crash before the header became durable: indistinguishable from a
    // never-written manifest, and treated the same way.
    throw ManifestMissing("empty session manifest at " + path);
  }
  std::vector<std::uint8_t> bytes(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (!in.good()) {
    throw std::runtime_error("SessionTable: cannot read " + path);
  }
  if (size < kHeaderSize) {
    throw ManifestTorn("manifest header torn at " + std::to_string(size) +
                       " bytes: " + path);
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw ManifestCorrupt("bad manifest magic/version: " + path);
  }

  Replay state;
  std::size_t pos = kHeaderSize;
  while (pos < size) {
    if (size - pos < kRecordFrame) {
      throw ManifestTorn("record " + std::to_string(state.records) +
                         " frame torn at byte " + std::to_string(pos));
    }
    util::serde::ByteReader frame({bytes.data() + pos, kRecordFrame});
    const std::uint32_t len = frame.u32();
    const std::uint32_t crc = frame.u32();
    if (len == 0 || len > kMaxRecordPayload) {
      corrupt(state.records,
              "implausible payload length " + std::to_string(len));
    }
    if (size - pos - kRecordFrame < len) {
      throw ManifestTorn("record " + std::to_string(state.records) +
                         " payload torn at byte " + std::to_string(pos));
    }
    const std::span<const std::uint8_t> payload{
        bytes.data() + pos + kRecordFrame, len};
    if (util::crc32(payload) != crc) {
      corrupt(state.records, "CRC mismatch");
    }
    try {
      apply_record(state, payload, state.records);
    } catch (const util::serde::DecodeError& e) {
      corrupt(state.records, e.what());
    }
    pos += kRecordFrame + len;
    ++state.records;
  }
  return state;
}

}  // namespace qols::service
