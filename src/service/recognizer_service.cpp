#include "qols/service/recognizer_service.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/util/stopwatch.hpp"

namespace qols::service {

namespace {

std::uint64_t to_ns(double seconds) {
  return seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0;
}

}  // namespace

RecognizerService::Instruments::Instruments()
    : sessions_open(
          telemetry::MetricsRegistry::global().gauge("service.sessions_open")),
      symbols_ingested(telemetry::MetricsRegistry::global().counter(
          "service.symbols_ingested")),
      borrowed_chunks(telemetry::MetricsRegistry::global().counter(
          "service.borrowed_chunks")),
      evictions(
          telemetry::MetricsRegistry::global().counter("service.evictions")),
      revives(telemetry::MetricsRegistry::global().counter("service.revives")),
      spill_bytes_written(telemetry::MetricsRegistry::global().counter(
          "service.spill_bytes_written")),
      spill_bytes_read(telemetry::MetricsRegistry::global().counter(
          "service.spill_bytes_read")),
      flush_ns(
          telemetry::MetricsRegistry::global().histogram("service.flush_ns")),
      finish_ns(
          telemetry::MetricsRegistry::global().histogram("service.finish_ns")) {
}

std::string recognizer_kind_name(RecognizerKind kind) {
  switch (kind) {
    case RecognizerKind::kClassicalBlock:
      return "classical-block";
    case RecognizerKind::kClassicalFull:
      return "classical-full";
    case RecognizerKind::kClassicalSampling:
      return "classical-sample";
    case RecognizerKind::kClassicalBloom:
      return "classical-bloom";
    case RecognizerKind::kQuantum:
      return "quantum";
  }
  // Unknown/future values (e.g. a static_cast from a corrupted config) must
  // surface as an error, not as UB-adjacent fallthrough text.
  throw std::invalid_argument("recognizer_kind_name: unknown RecognizerKind " +
                              std::to_string(static_cast<int>(kind)));
}

std::unique_ptr<machine::OnlineRecognizer> RecognizerSpec::make(
    std::uint64_t seed) const {
  switch (kind) {
    case RecognizerKind::kClassicalBlock:
      return std::make_unique<core::ClassicalBlockRecognizer>(seed);
    case RecognizerKind::kClassicalFull:
      return std::make_unique<core::ClassicalFullRecognizer>(seed);
    case RecognizerKind::kClassicalSampling:
      return std::make_unique<core::ClassicalSamplingRecognizer>(
          seed, sampling_budget);
    case RecognizerKind::kClassicalBloom:
      return std::make_unique<core::ClassicalBloomRecognizer>(
          seed, bloom_filter_bits, bloom_num_hashes);
    case RecognizerKind::kQuantum: {
      core::QuantumOnlineRecognizer::Options opts;
      opts.a3.backend = backend;
      opts.a3.precision = float_amplitudes ? quantum::Precision::kSingle
                                           : quantum::Precision::kDouble;
      return std::make_unique<core::QuantumOnlineRecognizer>(seed, opts);
    }
  }
  throw std::invalid_argument("RecognizerSpec: unknown RecognizerKind " +
                              std::to_string(static_cast<int>(kind)));
}

RecognizerService::RecognizerService(Config config)
    : config_(std::move(config)) {
  // Surface a bad backend id at service construction, not first open():
  // the spec is the service's contract with every future session.
  config_.spec.make(0);
  pool_ = config_.pool != nullptr ? config_.pool : &util::ThreadPool::global();
  const std::size_t n = pool_->thread_count();
  shards_.resize(n > 0 ? n : 1);
  shard_depth_.reserve(shards_.size());
  auto& registry = telemetry::MetricsRegistry::global();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard_depth_.push_back(
        &registry.gauge("service.shard_queue_depth." + std::to_string(i)));
  }
}

RecognizerService::~RecognizerService() {
  // Best-effort spill cleanup: remove the spill file of every still-evicted
  // session, and the directory itself when this service created it.
  std::error_code ec;
  for (const auto& [id, session] : sessions_) {
    if (session.evicted) std::filesystem::remove(spill_path(id), ec);
  }
  if (owns_spill_dir_) std::filesystem::remove(spill_dir_, ec);
}

RecognizerService::Session& RecognizerService::session_or_throw(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("RecognizerService: unknown session " +
                            std::to_string(id));
  }
  return it->second;
}

RecognizerService::SessionId RecognizerService::open(std::uint64_t seed) {
  // Skip over ids claimed by open_at so auto-assignment never collides.
  while (sessions_.contains(next_id_)) ++next_id_;
  return open_at(next_id_++, seed);
}

RecognizerService::SessionId RecognizerService::open_at(SessionId id,
                                                        std::uint64_t seed) {
  if (sessions_.contains(id)) {
    throw std::invalid_argument("RecognizerService: session id " +
                                std::to_string(id) + " is already open");
  }
  Session session{config_.spec.make(seed), {}, id % shards_.size(), false};
  sessions_.emplace(id, std::move(session));
  cells_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
  telem_.sessions_open.set(static_cast<std::int64_t>(sessions_.size()));
  return id;
}

void RecognizerService::feed(SessionId id,
                             std::span<const stream::Symbol> chunk) {
  Session& session = session_or_throw(id);
  if (session.evicted) revive_session(id, session);
  Shard& shard = shards_[session.shard];
  if (session.pending.empty() && !chunk.empty()) shard.ready.push_back(id);
  session.pending.insert(session.pending.end(), chunk.begin(), chunk.end());
  shard.buffered += chunk.size();
  cells_.symbols_ingested.fetch_add(chunk.size(), std::memory_order_relaxed);
  telem_.symbols_ingested.add(chunk.size());
  shard_depth_[session.shard]->set(static_cast<std::int64_t>(shard.buffered));
  if (shard.buffered >= config_.flush_threshold) flush();
}

void RecognizerService::feed_borrowed(SessionId id,
                                      std::span<const stream::Symbol> chunk) {
  Session& session = session_or_throw(id);
  if (session.evicted) revive_session(id, session);
  util::Stopwatch watch;
  // Order within the session must hold: anything already buffered goes
  // first, then the borrowed span — which is consumed before returning, so
  // the caller's view (e.g. a MappedFileStream page) may be invalidated or
  // released afterwards.
  if (!session.pending.empty()) drain_inline(id, session);
  session.recognizer->feed_chunk(chunk);
  cells_.symbols_ingested.fetch_add(chunk.size(), std::memory_order_relaxed);
  cells_.busy_ns.fetch_add(to_ns(watch.seconds()), std::memory_order_relaxed);
  telem_.symbols_ingested.add(chunk.size());
  telem_.borrowed_chunks.add();
}

void RecognizerService::drain_inline(SessionId id, Session& session) {
  Shard& shard = shards_[session.shard];
  shard.buffered -= session.pending.size();
  session.recognizer->feed_chunk(session.pending);
  session.pending.clear();
  std::erase(shard.ready, id);
  shard_depth_[session.shard]->set(static_cast<std::int64_t>(shard.buffered));
}

void RecognizerService::flush() {
  bool any = false;
  for (const Shard& shard : shards_) any = any || shard.buffered > 0;
  if (!any) return;
  util::Stopwatch watch;
  // One task per shard: a session is pinned to its shard for life, so no
  // two workers ever advance the same session, and symbols within a session
  // stay in order (the determinism contract). Shards drain concurrently.
  util::parallel_for(
      *pool_, 0, shards_.size(), 1, [this](std::size_t lo, std::size_t hi) {
        for (std::size_t si = lo; si < hi; ++si) {
          Shard& shard = shards_[si];
          for (const SessionId id : shard.ready) {
            Session& s = sessions_.find(id)->second;
            s.recognizer->feed_chunk(s.pending);
            s.pending.clear();
          }
          shard.ready.clear();
          shard.buffered = 0;
          shard_depth_[si]->set(0);
        }
      });
  const std::uint64_t ns = to_ns(watch.seconds());
  cells_.busy_ns.fetch_add(ns, std::memory_order_relaxed);
  cells_.flushes.fetch_add(1, std::memory_order_relaxed);
  telem_.flush_ns.record(ns);
}

RecognizerService::Verdict RecognizerService::finish(SessionId id) {
  Session& session = session_or_throw(id);
  if (session.evicted) revive_session(id, session);
  util::Stopwatch watch;
  if (!session.pending.empty()) drain_inline(id, session);
  Verdict verdict;
  verdict.accepted = session.recognizer->finish();
  verdict.fully_simulated = session.recognizer->fully_simulated();
  verdict.space = session.recognizer->space_used();
  const std::uint64_t ns = to_ns(watch.seconds());
  cells_.busy_ns.fetch_add(ns, std::memory_order_relaxed);
  cells_.sessions_finished.fetch_add(1, std::memory_order_relaxed);
  sessions_.erase(id);
  telem_.finish_ns.record(ns);
  telem_.sessions_open.set(static_cast<std::int64_t>(sessions_.size()));
  return verdict;
}

std::uint64_t RecognizerService::buffered_symbols() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.buffered;
  return total;
}

std::string RecognizerService::spill_path(SessionId id) {
  if (spill_dir_.empty()) {
    if (!config_.spill_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(config_.spill_dir, ec);
      if (ec) {
        throw std::runtime_error(
            "RecognizerService: cannot create spill directory " +
            config_.spill_dir + ": " + ec.message());
      }
      spill_dir_ = config_.spill_dir;
    } else {
      // Unique per service instance: two services in one process (or across
      // processes) never collide on session ids.
      auto dir = std::filesystem::temp_directory_path() /
                 ("qols-spill-" + std::to_string(::getpid()) + "-" +
                  std::to_string(reinterpret_cast<std::uintptr_t>(this)));
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        throw std::runtime_error(
            "RecognizerService: cannot create spill directory " +
            dir.string() + ": " + ec.message());
      }
      spill_dir_ = dir.string();
      owns_spill_dir_ = true;
    }
  }
  return (std::filesystem::path(spill_dir_) /
          ("qols-session-" + std::to_string(id) + ".snap"))
      .string();
}

void RecognizerService::evict(SessionId id) {
  Session& session = session_or_throw(id);
  if (session.evicted) return;  // double-evict is a no-op
  // The buffer must reach the recognizer before the state is frozen —
  // snapshotting around unconsumed symbols would replay them out of order.
  if (!session.pending.empty()) drain_inline(id, session);
  const std::vector<std::uint8_t> bytes = session.recognizer->snapshot();
  const std::string path = spill_path(id);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    throw std::runtime_error("RecognizerService: cannot spill session " +
                             std::to_string(id) + " (" +
                             std::to_string(bytes.size()) + " bytes) to " +
                             path);
  }
  out.close();
  session.recognizer.reset();  // the point of evicting: free the memory
  session.evicted = true;
  cells_.evictions.fetch_add(1, std::memory_order_relaxed);
  cells_.spill_bytes_written.fetch_add(bytes.size(),
                                       std::memory_order_relaxed);
  telem_.evictions.add();
  telem_.spill_bytes_written.add(bytes.size());
}

void RecognizerService::revive_session(SessionId id, Session& session) {
  const std::string path = spill_path(id);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    throw std::runtime_error("RecognizerService: missing spill file " + path);
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in.good()) {
    throw std::runtime_error("RecognizerService: cannot read spill file " +
                             path + " (" + std::to_string(bytes.size()) +
                             " bytes expected)");
  }
  // The restore overwrites every bit of recognizer state, seed included, so
  // the construction seed here is immaterial.
  session.recognizer = config_.spec.make(0);
  session.recognizer->restore(bytes);
  session.evicted = false;
  std::error_code ec;
  std::filesystem::remove(path, ec);
  cells_.revives.fetch_add(1, std::memory_order_relaxed);
  cells_.spill_bytes_read.fetch_add(bytes.size(), std::memory_order_relaxed);
  telem_.revives.add();
  telem_.spill_bytes_read.add(bytes.size());
}

void RecognizerService::revive(SessionId id) {
  Session& session = session_or_throw(id);
  if (session.evicted) revive_session(id, session);
}

bool RecognizerService::evicted(SessionId id) {
  return session_or_throw(id).evicted;
}

RecognizerService::Stats RecognizerService::stats() const noexcept {
  Stats s;
  s.sessions_opened = cells_.sessions_opened.load(std::memory_order_relaxed);
  s.sessions_finished =
      cells_.sessions_finished.load(std::memory_order_relaxed);
  s.symbols_ingested = cells_.symbols_ingested.load(std::memory_order_relaxed);
  s.flushes = cells_.flushes.load(std::memory_order_relaxed);
  s.busy_seconds =
      static_cast<double>(cells_.busy_ns.load(std::memory_order_relaxed)) /
      1e9;
  s.evictions = cells_.evictions.load(std::memory_order_relaxed);
  s.revives = cells_.revives.load(std::memory_order_relaxed);
  s.spill_bytes_written =
      cells_.spill_bytes_written.load(std::memory_order_relaxed);
  s.spill_bytes_read = cells_.spill_bytes_read.load(std::memory_order_relaxed);
  return s;
}

void RecognizerService::reset_stats() noexcept {
  cells_.sessions_opened.store(0, std::memory_order_relaxed);
  cells_.sessions_finished.store(0, std::memory_order_relaxed);
  cells_.symbols_ingested.store(0, std::memory_order_relaxed);
  cells_.flushes.store(0, std::memory_order_relaxed);
  cells_.busy_ns.store(0, std::memory_order_relaxed);
  cells_.evictions.store(0, std::memory_order_relaxed);
  cells_.revives.store(0, std::memory_order_relaxed);
  cells_.spill_bytes_written.store(0, std::memory_order_relaxed);
  cells_.spill_bytes_read.store(0, std::memory_order_relaxed);
}

}  // namespace qols::service
