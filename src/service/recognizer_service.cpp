#include "qols/service/recognizer_service.hpp"

#include <stdexcept>
#include <utility>

#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/util/stopwatch.hpp"

namespace qols::service {

std::string recognizer_kind_name(RecognizerKind kind) {
  switch (kind) {
    case RecognizerKind::kClassicalBlock:
      return "classical-block";
    case RecognizerKind::kClassicalFull:
      return "classical-full";
    case RecognizerKind::kClassicalSampling:
      return "classical-sample";
    case RecognizerKind::kClassicalBloom:
      return "classical-bloom";
    case RecognizerKind::kQuantum:
      return "quantum";
  }
  // Unknown/future values (e.g. a static_cast from a corrupted config) must
  // surface as an error, not as UB-adjacent fallthrough text.
  throw std::invalid_argument("recognizer_kind_name: unknown RecognizerKind " +
                              std::to_string(static_cast<int>(kind)));
}

std::unique_ptr<machine::OnlineRecognizer> RecognizerSpec::make(
    std::uint64_t seed) const {
  switch (kind) {
    case RecognizerKind::kClassicalBlock:
      return std::make_unique<core::ClassicalBlockRecognizer>(seed);
    case RecognizerKind::kClassicalFull:
      return std::make_unique<core::ClassicalFullRecognizer>(seed);
    case RecognizerKind::kClassicalSampling:
      return std::make_unique<core::ClassicalSamplingRecognizer>(
          seed, sampling_budget);
    case RecognizerKind::kClassicalBloom:
      return std::make_unique<core::ClassicalBloomRecognizer>(
          seed, bloom_filter_bits, bloom_num_hashes);
    case RecognizerKind::kQuantum: {
      core::QuantumOnlineRecognizer::Options opts;
      opts.a3.backend = backend;
      opts.a3.precision = float_amplitudes ? quantum::Precision::kSingle
                                           : quantum::Precision::kDouble;
      return std::make_unique<core::QuantumOnlineRecognizer>(seed, opts);
    }
  }
  throw std::invalid_argument("RecognizerSpec: unknown RecognizerKind " +
                              std::to_string(static_cast<int>(kind)));
}

RecognizerService::RecognizerService(Config config)
    : config_(std::move(config)) {
  // Surface a bad backend id at service construction, not first open():
  // the spec is the service's contract with every future session.
  config_.spec.make(0);
}

RecognizerService::Session& RecognizerService::session_or_throw(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("RecognizerService: unknown session " +
                            std::to_string(id));
  }
  return it->second;
}

RecognizerService::SessionId RecognizerService::open(std::uint64_t seed) {
  const SessionId id = next_id_++;
  sessions_.emplace(id, Session{config_.spec.make(seed), {}});
  ++stats_.sessions_opened;
  return id;
}

void RecognizerService::feed(SessionId id,
                             std::span<const stream::Symbol> chunk) {
  Session& session = session_or_throw(id);
  session.pending.insert(session.pending.end(), chunk.begin(), chunk.end());
  buffered_ += chunk.size();
  stats_.symbols_ingested += chunk.size();
  if (buffered_ >= config_.flush_threshold) flush();
}

void RecognizerService::flush() {
  if (buffered_ == 0) return;
  std::vector<Session*> ready;
  ready.reserve(sessions_.size());
  for (auto& [id, session] : sessions_) {
    if (!session.pending.empty()) ready.push_back(&session);
  }
  util::Stopwatch watch;
  util::ThreadPool& pool =
      config_.pool != nullptr ? *config_.pool : util::ThreadPool::global();
  // One task slot per session: a session is only ever advanced by a single
  // worker at a time, so its symbols stay in order (the determinism
  // contract). Independent sessions run concurrently.
  util::parallel_for(pool, 0, ready.size(), 1,
                     [&ready](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         Session& s = *ready[i];
                         s.recognizer->feed_chunk(s.pending);
                         s.pending.clear();
                       }
                     });
  stats_.busy_seconds += watch.seconds();
  ++stats_.flushes;
  buffered_ = 0;
}

RecognizerService::Verdict RecognizerService::finish(SessionId id) {
  Session& session = session_or_throw(id);
  util::Stopwatch watch;
  if (!session.pending.empty()) {
    buffered_ -= session.pending.size();
    session.recognizer->feed_chunk(session.pending);
    session.pending.clear();
  }
  Verdict verdict;
  verdict.accepted = session.recognizer->finish();
  verdict.fully_simulated = session.recognizer->fully_simulated();
  verdict.space = session.recognizer->space_used();
  stats_.busy_seconds += watch.seconds();
  ++stats_.sessions_finished;
  sessions_.erase(id);
  return verdict;
}

}  // namespace qols::service
