#include "qols/service/recognizer_service.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <unordered_set>
#include <utility>

#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/util/stopwatch.hpp"

namespace qols::service {

namespace {

std::uint64_t to_ns(double seconds) {
  return seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0;
}

/// Writes a spill file in one shot. Durable services fsync it — the journal
/// may only claim a spill that would survive power loss, not just process
/// death (the manifest's write-ordering invariant).
void write_spill_file(const std::string& path,
                      const std::vector<std::uint8_t>& bytes, bool sync,
                      std::uint64_t id) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  bool ok = fd >= 0;
  if (ok) {
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t w = ::write(fd, bytes.data() + done, bytes.size() - done);
      if (w < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      done += static_cast<std::size_t>(w);
    }
    if (ok && sync && ::fsync(fd) != 0) ok = false;
    ::close(fd);
  }
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    throw std::runtime_error("RecognizerService: cannot spill session " +
                             std::to_string(id) + " (" +
                             std::to_string(bytes.size()) + " bytes) to " +
                             path);
  }
}

}  // namespace

RecognizerService::Instruments::Instruments()
    : sessions_open(
          telemetry::MetricsRegistry::global().gauge("service.sessions_open")),
      symbols_ingested(telemetry::MetricsRegistry::global().counter(
          "service.symbols_ingested")),
      borrowed_chunks(telemetry::MetricsRegistry::global().counter(
          "service.borrowed_chunks")),
      evictions(
          telemetry::MetricsRegistry::global().counter("service.evictions")),
      revives(telemetry::MetricsRegistry::global().counter("service.revives")),
      spill_bytes_written(telemetry::MetricsRegistry::global().counter(
          "service.spill_bytes_written")),
      spill_bytes_read(telemetry::MetricsRegistry::global().counter(
          "service.spill_bytes_read")),
      migrations(
          telemetry::MetricsRegistry::global().counter("service.migrations")),
      recovered_sessions(telemetry::MetricsRegistry::global().counter(
          "service.recovered_sessions")),
      manifest_records(telemetry::MetricsRegistry::global().counter(
          "service.manifest_records")),
      compactions(
          telemetry::MetricsRegistry::global().counter("service.compactions")),
      flush_ns(
          telemetry::MetricsRegistry::global().histogram("service.flush_ns")),
      finish_ns(
          telemetry::MetricsRegistry::global().histogram("service.finish_ns")) {
}

std::string recognizer_kind_name(RecognizerKind kind) {
  switch (kind) {
    case RecognizerKind::kClassicalBlock:
      return "classical-block";
    case RecognizerKind::kClassicalFull:
      return "classical-full";
    case RecognizerKind::kClassicalSampling:
      return "classical-sample";
    case RecognizerKind::kClassicalBloom:
      return "classical-bloom";
    case RecognizerKind::kQuantum:
      return "quantum";
  }
  // Unknown/future values (e.g. a static_cast from a corrupted config) must
  // surface as an error, not as UB-adjacent fallthrough text.
  throw std::invalid_argument("recognizer_kind_name: unknown RecognizerKind " +
                              std::to_string(static_cast<int>(kind)));
}

std::unique_ptr<machine::OnlineRecognizer> RecognizerSpec::make(
    std::uint64_t seed) const {
  switch (kind) {
    case RecognizerKind::kClassicalBlock:
      return std::make_unique<core::ClassicalBlockRecognizer>(seed);
    case RecognizerKind::kClassicalFull:
      return std::make_unique<core::ClassicalFullRecognizer>(seed);
    case RecognizerKind::kClassicalSampling:
      return std::make_unique<core::ClassicalSamplingRecognizer>(
          seed, sampling_budget);
    case RecognizerKind::kClassicalBloom:
      return std::make_unique<core::ClassicalBloomRecognizer>(
          seed, bloom_filter_bits, bloom_num_hashes);
    case RecognizerKind::kQuantum: {
      core::QuantumOnlineRecognizer::Options opts;
      opts.a3.backend = backend;
      opts.a3.precision = float_amplitudes ? quantum::Precision::kSingle
                                           : quantum::Precision::kDouble;
      return std::make_unique<core::QuantumOnlineRecognizer>(seed, opts);
    }
  }
  throw std::invalid_argument("RecognizerSpec: unknown RecognizerKind " +
                              std::to_string(static_cast<int>(kind)));
}

RecognizerService::RecognizerService(Config config)
    : config_(std::move(config)) {
  // Surface a bad backend id at service construction, not first open():
  // the spec is the service's contract with every future session.
  config_.spec.make(0);
  pool_ = config_.pool != nullptr ? config_.pool : &util::ThreadPool::global();
  const std::size_t n = pool_->thread_count();
  shards_.resize(n > 0 ? n : 1);
  shard_mu_ = std::make_unique<std::mutex[]>(shards_.size());
  shard_depth_.reserve(shards_.size());
  auto& registry = telemetry::MetricsRegistry::global();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard_depth_.push_back(
        &registry.gauge("service.shard_queue_depth." + std::to_string(i)));
  }
  if (config_.durable) {
    if (config_.spill_dir.empty()) {
      throw std::invalid_argument(
          "RecognizerService: durable mode requires a spill_dir — the "
          "directory is the durable identity recover() reattaches to");
    }
    std::error_code ec;
    std::filesystem::create_directories(config_.spill_dir, ec);
    if (ec) {
      throw std::runtime_error(
          "RecognizerService: cannot create spill directory " +
          config_.spill_dir + ": " + ec.message());
    }
    spill_dir_ = config_.spill_dir;
    std::error_code sec;
    const auto manifest_size =
        std::filesystem::file_size(SessionTable::path_in(spill_dir_), sec);
    if (!sec && manifest_size > 0) {
      // A prior life left a manifest. Nothing is adopted implicitly — the
      // caller must recover() (and see the typed errors) before any session
      // operation; journal() enforces that.
      pending_recovery_ = true;
    } else {
      table_ = std::make_unique<SessionTable>(
          SessionTable::Options{spill_dir_, config_.manifest_sync_every});
    }
  }
}

RecognizerService::~RecognizerService() {
  // A durable service's spill files and manifest ARE its persistent state —
  // leave them for the next incarnation to recover().
  if (config_.durable) return;
  // Best-effort spill cleanup: remove the spill file of every still-evicted
  // session, and the directory itself when this service created it.
  std::error_code ec;
  for (const auto& [id, session] : sessions_) {
    if (session.evicted) std::filesystem::remove(spill_path(id), ec);
  }
  if (owns_spill_dir_) std::filesystem::remove(spill_dir_, ec);
}

SessionTable* RecognizerService::journal() {
  if (pending_recovery_) {
    throw std::logic_error(
        "RecognizerService: a prior manifest awaits recover() — session "
        "operations would silently shadow the persisted table");
  }
  return table_.get();
}

RecognizerService::Session& RecognizerService::session_or_throw(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::out_of_range("RecognizerService: unknown session " +
                            std::to_string(id));
  }
  return it->second;
}

RecognizerService::SessionId RecognizerService::open(std::uint64_t seed) {
  // Skip over ids claimed by open_at so auto-assignment never collides.
  while (sessions_.contains(next_id_)) ++next_id_;
  return open_at(next_id_++, seed);
}

RecognizerService::SessionId RecognizerService::open_at(SessionId id,
                                                        std::uint64_t seed) {
  if (sessions_.contains(id)) {
    throw std::invalid_argument("RecognizerService: session id " +
                                std::to_string(id) + " is already open");
  }
  // Build the recognizer before journaling: a make() failure must not leave
  // a kOpen record for a session that never existed.
  Session session;
  session.recognizer = config_.spec.make(seed);
  session.shard = id % shards_.size();
  session.seed = seed;
  if (SessionTable* t = journal()) {
    t->crash_point();
    t->record_open(id, seed, session.shard);
    telem_.manifest_records.add();
  }
  sessions_.emplace(id, std::move(session));
  cells_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
  telem_.sessions_open.set(static_cast<std::int64_t>(sessions_.size()));
  return id;
}

void RecognizerService::feed(SessionId id,
                             std::span<const stream::Symbol> chunk) {
  Session& session = session_or_throw(id);
  if (session.evicted) revive_session(id, session);
  bool over_threshold = false;
  {
    std::lock_guard<std::mutex> lock(shard_mu_[session.shard]);
    Shard& shard = shards_[session.shard];
    if (session.pending.empty() && !chunk.empty()) shard.ready.push_back(id);
    session.pending.insert(session.pending.end(), chunk.begin(), chunk.end());
    shard.buffered += chunk.size();
    shard_depth_[session.shard]->set(
        static_cast<std::int64_t>(shard.buffered));
    over_threshold = shard.buffered >= config_.flush_threshold;
  }
  cells_.symbols_ingested.fetch_add(chunk.size(), std::memory_order_relaxed);
  telem_.symbols_ingested.add(chunk.size());
  // The shard lock is released first: flush()'s worker re-takes it.
  if (over_threshold) flush();
}

void RecognizerService::feed_borrowed(SessionId id,
                                      std::span<const stream::Symbol> chunk) {
  Session& session = session_or_throw(id);
  if (session.evicted) revive_session(id, session);
  util::Stopwatch watch;
  {
    std::lock_guard<std::mutex> lock(shard_mu_[session.shard]);
    // Order within the session must hold: anything already buffered goes
    // first, then the borrowed span — which is consumed before returning,
    // so the caller's view (e.g. a MappedFileStream page) may be
    // invalidated or released afterwards.
    if (!session.pending.empty()) drain_locked(id, session);
    session.recognizer->feed_chunk(chunk);
  }
  cells_.symbols_ingested.fetch_add(chunk.size(), std::memory_order_relaxed);
  cells_.busy_ns.fetch_add(to_ns(watch.seconds()), std::memory_order_relaxed);
  telem_.symbols_ingested.add(chunk.size());
  telem_.borrowed_chunks.add();
}

void RecognizerService::drain_inline(SessionId id, Session& session) {
  std::lock_guard<std::mutex> lock(shard_mu_[session.shard]);
  drain_locked(id, session);
}

void RecognizerService::drain_locked(SessionId id, Session& session) {
  Shard& shard = shards_[session.shard];
  shard.buffered -= session.pending.size();
  session.recognizer->feed_chunk(session.pending);
  session.pending.clear();
  std::erase(shard.ready, id);
  shard_depth_[session.shard]->set(static_cast<std::int64_t>(shard.buffered));
}

void RecognizerService::flush() {
  bool any = false;
  for (const Shard& shard : shards_) any = any || shard.buffered > 0;
  if (!any) return;
  util::Stopwatch watch;
  // One task per shard: a session is pinned to its shard for life, so no
  // two workers ever advance the same session, and symbols within a session
  // stay in order (the determinism contract). Shards drain concurrently.
  util::parallel_for(
      *pool_, 0, shards_.size(), 1, [this](std::size_t lo, std::size_t hi) {
        for (std::size_t si = lo; si < hi; ++si) {
          // The worker owns the shard's slot lock for the whole drain, so
          // evict()/evicted()/feed() on a session of this shard serialize
          // against it instead of racing the recognizer state.
          std::lock_guard<std::mutex> lock(shard_mu_[si]);
          Shard& shard = shards_[si];
          for (const SessionId id : shard.ready) {
            Session& s = sessions_.find(id)->second;
            s.recognizer->feed_chunk(s.pending);
            s.pending.clear();
          }
          shard.ready.clear();
          shard.buffered = 0;
          shard_depth_[si]->set(0);
        }
      });
  const std::uint64_t ns = to_ns(watch.seconds());
  cells_.busy_ns.fetch_add(ns, std::memory_order_relaxed);
  cells_.flushes.fetch_add(1, std::memory_order_relaxed);
  telem_.flush_ns.record(ns);
}

RecognizerService::Verdict RecognizerService::finish(SessionId id) {
  Session& session = session_or_throw(id);
  if (session.evicted) revive_session(id, session);
  SessionTable* t = journal();
  if (t != nullptr) t->crash_point();
  util::Stopwatch watch;
  if (!session.pending.empty()) drain_inline(id, session);
  Verdict verdict;
  verdict.accepted = session.recognizer->finish();
  verdict.fully_simulated = session.recognizer->fully_simulated();
  verdict.space = session.recognizer->space_used();
  if (t != nullptr) {
    t->record_finish(id);
    telem_.manifest_records.add();
  }
  const std::uint64_t ns = to_ns(watch.seconds());
  cells_.busy_ns.fetch_add(ns, std::memory_order_relaxed);
  cells_.sessions_finished.fetch_add(1, std::memory_order_relaxed);
  sessions_.erase(id);
  telem_.finish_ns.record(ns);
  telem_.sessions_open.set(static_cast<std::int64_t>(sessions_.size()));
  return verdict;
}

std::uint64_t RecognizerService::buffered_symbols() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.buffered;
  return total;
}

std::string RecognizerService::spill_path(SessionId id) {
  if (spill_dir_.empty()) {
    if (!config_.spill_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(config_.spill_dir, ec);
      if (ec) {
        throw std::runtime_error(
            "RecognizerService: cannot create spill directory " +
            config_.spill_dir + ": " + ec.message());
      }
      spill_dir_ = config_.spill_dir;
    } else {
      // Unique per service instance: two services in one process (or across
      // processes) never collide on session ids.
      auto dir = std::filesystem::temp_directory_path() /
                 ("qols-spill-" + std::to_string(::getpid()) + "-" +
                  std::to_string(reinterpret_cast<std::uintptr_t>(this)));
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        throw std::runtime_error(
            "RecognizerService: cannot create spill directory " +
            dir.string() + ": " + ec.message());
      }
      spill_dir_ = dir.string();
      owns_spill_dir_ = true;
    }
  }
  return (std::filesystem::path(spill_dir_) /
          ("qols-session-" + std::to_string(id) + ".snap"))
      .string();
}

void RecognizerService::evict(SessionId id) {
  Session& session = session_or_throw(id);
  if (session.evicted) return;  // double-evict is a no-op
  // The crash hook fires before ANY side effect — an injected crash must
  // leave n records and exactly the spill files they claim, never a spill
  // the journal does not know about.
  SessionTable* t = journal();
  if (t != nullptr) t->crash_point();
  std::lock_guard<std::mutex> lock(shard_mu_[session.shard]);
  // The buffer must reach the recognizer before the state is frozen —
  // snapshotting around unconsumed symbols would replay them out of order.
  if (!session.pending.empty()) drain_locked(id, session);
  const std::vector<std::uint8_t> bytes = session.recognizer->snapshot();
  const std::string path = spill_path(id);
  // Spill first (synced in durable mode), journal second: the manifest
  // never claims a spill that is not on disk.
  write_spill_file(path, bytes, /*sync=*/config_.durable, id);
  if (t != nullptr) {
    t->record_evict(id, bytes.size());
    telem_.manifest_records.add();
  }
  session.recognizer.reset();  // the point of evicting: free the memory
  session.evicted = true;
  session.spill_bytes = bytes.size();
  cells_.evictions.fetch_add(1, std::memory_order_relaxed);
  cells_.spill_bytes_written.fetch_add(bytes.size(),
                                       std::memory_order_relaxed);
  telem_.evictions.add();
  telem_.spill_bytes_written.add(bytes.size());
}

void RecognizerService::revive_session(SessionId id, Session& session) {
  SessionTable* t = journal();
  if (t != nullptr) t->crash_point();
  std::lock_guard<std::mutex> lock(shard_mu_[session.shard]);
  const std::string path = spill_path(id);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    throw std::runtime_error("RecognizerService: missing spill file " + path);
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in.good()) {
    throw std::runtime_error("RecognizerService: cannot read spill file " +
                             path + " (" + std::to_string(bytes.size()) +
                             " bytes expected)");
  }
  // The restore overwrites every bit of recognizer state, seed included, so
  // the construction seed here is immaterial.
  session.recognizer = config_.spec.make(0);
  session.recognizer->restore(bytes);
  // Journal before unlinking: a crash in between leaves a spill the journal
  // no longer claims (OrphanSpill on recovery) — never a claimed spill that
  // is gone.
  if (t != nullptr) {
    t->record_revive(id);
    telem_.manifest_records.add();
  }
  session.evicted = false;
  session.spill_bytes = 0;
  std::error_code ec;
  std::filesystem::remove(path, ec);
  cells_.revives.fetch_add(1, std::memory_order_relaxed);
  cells_.spill_bytes_read.fetch_add(bytes.size(), std::memory_order_relaxed);
  telem_.revives.add();
  telem_.spill_bytes_read.add(bytes.size());
}

void RecognizerService::revive(SessionId id) {
  Session& session = session_or_throw(id);
  if (session.evicted) revive_session(id, session);
}

bool RecognizerService::evicted(SessionId id) {
  Session& session = session_or_throw(id);
  std::lock_guard<std::mutex> lock(shard_mu_[session.shard]);
  return session.evicted;
}

void RecognizerService::migrate(SessionId id, std::size_t target_shard) {
  Session& session = session_or_throw(id);
  if (target_shard >= shards_.size()) {
    throw std::invalid_argument(
        "RecognizerService: migrate target shard " +
        std::to_string(target_shard) + " out of range (" +
        std::to_string(shards_.size()) + " shards)");
  }
  if (target_shard == session.shard) return;  // same-shard move is a no-op
  // A resident session moves by the evict→revive path: spill on the old
  // shard, change the pin, restore on the new one. An evicted session only
  // needs the pin changed — its state is already on disk.
  const bool was_resident = !session.evicted;
  if (was_resident) evict(id);
  if (SessionTable* t = journal()) {
    t->crash_point();
    t->record_migrate(id, target_shard);
    telem_.manifest_records.add();
  }
  session.shard = target_shard;
  if (was_resident) revive_session(id, session);
  cells_.migrations.fetch_add(1, std::memory_order_relaxed);
  telem_.migrations.add();
}

std::size_t RecognizerService::rebalance(std::size_t max_moves) {
  std::size_t moves = 0;
  while (moves < max_moves) {
    std::vector<std::size_t> load(shards_.size(), 0);
    for (const auto& [id, session] : sessions_) ++load[session.shard];
    const auto max_it = std::max_element(load.begin(), load.end());
    const auto min_it = std::min_element(load.begin(), load.end());
    // Moving one session from max to min only helps while they differ by at
    // least two — at one apart the move just swaps which shard is fuller.
    if (*max_it < *min_it + 2) break;
    const auto from = static_cast<std::size_t>(max_it - load.begin());
    const auto to = static_cast<std::size_t>(min_it - load.begin());
    // Deterministic pick (sessions_ iteration order is not): the smallest
    // id on the hot shard, preferring evicted sessions — migrating those is
    // a pure bookkeeping write, no spill round-trip.
    SessionId pick = 0;
    int pick_rank = -1;  // 1 = evicted (cheap), 0 = resident
    for (const auto& [sid, session] : sessions_) {
      if (session.shard != from) continue;
      const int rank = session.evicted ? 1 : 0;
      if (rank > pick_rank || (rank == pick_rank && sid < pick)) {
        pick = sid;
        pick_rank = rank;
      }
    }
    if (pick_rank < 0) break;  // unreachable: *max_it >= 2 implies a session
    migrate(pick, to);
    ++moves;
  }
  return moves;
}

std::size_t RecognizerService::shard_of(SessionId id) {
  return session_or_throw(id).shard;
}

std::map<RecognizerService::SessionId, SessionTable::LiveSession>
RecognizerService::live_view() const {
  std::map<SessionId, SessionTable::LiveSession> live;
  for (const auto& [id, session] : sessions_) {
    SessionTable::LiveSession entry;
    entry.seed = session.seed;
    entry.shard = session.shard;
    entry.evicted = session.evicted;
    entry.spill_bytes = session.spill_bytes;
    live.emplace(id, entry);
  }
  return live;
}

std::size_t RecognizerService::persist() {
  if (!config_.durable) {
    throw std::logic_error("RecognizerService: persist() requires durable mode");
  }
  SessionTable* t = journal();
  // Evict in id order so the journal (and the kill-point matrix over it) is
  // deterministic — sessions_ iteration order is not.
  std::vector<SessionId> resident;
  resident.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    if (!session.evicted) resident.push_back(id);
  }
  std::sort(resident.begin(), resident.end());
  for (const SessionId id : resident) evict(id);
  t->crash_point();
  t->compact(live_view());
  telem_.compactions.add();
  return sessions_.size();
}

RecognizerService::RecoveryReport RecognizerService::recover() {
  if (!config_.durable) {
    throw std::logic_error("RecognizerService: recover() requires durable mode");
  }
  if (!sessions_.empty()) {
    throw std::logic_error(
        "RecognizerService: recover() on a service with open sessions");
  }
  SessionTable::Replay replayed = SessionTable::replay(spill_dir_);
  // Verify every claimed spill before adopting anything: recovery is all or
  // nothing. A session whose state cannot be restored exactly must fail
  // loudly here — a fabricated verdict later is the one unforgivable
  // outcome.
  std::unordered_set<std::string> claimed;
  for (const auto& [id, s] : replayed.live) {
    if (!s.evicted) continue;
    const std::string path = spill_path(id);
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) {
      throw SpillMissing("session " + std::to_string(id) +
                         ": manifest claims a spill but " + path +
                         " is absent");
    }
    if (size != s.spill_bytes) {
      throw SpillMissing("session " + std::to_string(id) + ": spill file " +
                         path + " holds " + std::to_string(size) +
                         " bytes, manifest recorded " +
                         std::to_string(s.spill_bytes));
    }
    claimed.insert(std::filesystem::path(path).filename().string());
  }
  for (const auto& entry : std::filesystem::directory_iterator(spill_dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("qols-session-") && name.ends_with(".snap") &&
        !claimed.contains(name)) {
      throw OrphanSpill("unclaimed spill file " + entry.path().string() +
                        " (a crash between spill write and manifest append, "
                        "or foreign debris)");
    }
  }
  RecoveryReport report;
  report.records_replayed = replayed.records;
  for (const auto& [id, s] : replayed.live) {
    if (!s.evicted) {
      // Resident at the crash: its state lived only in the dead process.
      report.lost.push_back(id);
      continue;
    }
    Session session;
    // A restart may resize the pool; fold the recorded pin into range.
    session.shard = s.shard % shards_.size();
    session.evicted = true;
    session.seed = s.seed;
    session.spill_bytes = s.spill_bytes;
    sessions_.emplace(id, std::move(session));
    if (id >= next_id_) next_id_ = id + 1;
    ++report.sessions_recovered;
  }
  pending_recovery_ = false;
  table_ = std::make_unique<SessionTable>(
      SessionTable::Options{spill_dir_, config_.manifest_sync_every});
  // Compact to the adopted view: lost sessions drop out of the journal, and
  // replaying the recovered journal reproduces exactly this table.
  table_->compact(live_view());
  telem_.compactions.add();
  cells_.recovered_sessions.fetch_add(report.sessions_recovered,
                                      std::memory_order_relaxed);
  telem_.recovered_sessions.add(report.sessions_recovered);
  telem_.sessions_open.set(static_cast<std::int64_t>(sessions_.size()));
  return report;
}

void RecognizerService::persist_abort_after(std::uint64_t n) noexcept {
  if (table_ != nullptr) table_->abort_after(n);
}

std::uint64_t RecognizerService::manifest_records() const noexcept {
  return table_ != nullptr ? table_->records_appended() : 0;
}

RecognizerService::Stats RecognizerService::stats() const noexcept {
  Stats s;
  s.sessions_opened = cells_.sessions_opened.load(std::memory_order_relaxed);
  s.sessions_finished =
      cells_.sessions_finished.load(std::memory_order_relaxed);
  s.symbols_ingested = cells_.symbols_ingested.load(std::memory_order_relaxed);
  s.flushes = cells_.flushes.load(std::memory_order_relaxed);
  s.busy_seconds =
      static_cast<double>(cells_.busy_ns.load(std::memory_order_relaxed)) /
      1e9;
  s.evictions = cells_.evictions.load(std::memory_order_relaxed);
  s.revives = cells_.revives.load(std::memory_order_relaxed);
  s.spill_bytes_written =
      cells_.spill_bytes_written.load(std::memory_order_relaxed);
  s.spill_bytes_read = cells_.spill_bytes_read.load(std::memory_order_relaxed);
  s.migrations = cells_.migrations.load(std::memory_order_relaxed);
  s.recovered_sessions =
      cells_.recovered_sessions.load(std::memory_order_relaxed);
  return s;
}

void RecognizerService::reset_stats() noexcept {
  cells_.sessions_opened.store(0, std::memory_order_relaxed);
  cells_.sessions_finished.store(0, std::memory_order_relaxed);
  cells_.symbols_ingested.store(0, std::memory_order_relaxed);
  cells_.flushes.store(0, std::memory_order_relaxed);
  cells_.busy_ns.store(0, std::memory_order_relaxed);
  cells_.evictions.store(0, std::memory_order_relaxed);
  cells_.revives.store(0, std::memory_order_relaxed);
  cells_.spill_bytes_written.store(0, std::memory_order_relaxed);
  cells_.spill_bytes_read.store(0, std::memory_order_relaxed);
  cells_.migrations.store(0, std::memory_order_relaxed);
  cells_.recovered_sessions.store(0, std::memory_order_relaxed);
}

}  // namespace qols::service
