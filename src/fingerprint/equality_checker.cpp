#include "qols/fingerprint/equality_checker.hpp"

#include <array>

namespace qols::fingerprint {

using stream::Symbol;

void EqualityChecker::feed(Symbol s) {
  if (in_prefix_) {
    if (s == Symbol::kOne) {
      if (k_ < 15) ++k_;  // beyond 15 the prime interval leaves 64 bits
      return;
    }
    if (s == Symbol::kSep) {
      in_prefix_ = false;
      const unsigned q = field_exponent_ < 2 ? 2 : field_exponent_;
      if (k_ >= 1 && q * k_ <= 60) {
        if (q == 4) {
          p_ = util::fingerprint_prime(k_);
        } else {
          const std::uint64_t lo = std::uint64_t{1} << (q * k_);
          p_ = util::first_prime_in_open_interval(lo, lo << 1).value();
        }
        t_ = rng_.below(p_);
        current_.emplace(p_, t_);
        active_ = true;
      }
      return;
    }
    // '0' in the prefix: shape is broken; A1 rejects. Stay inert.
    in_prefix_ = false;
    return;
  }
  if (!active_ || failed_) return;
  if (s == Symbol::kSep) {
    on_block_end();
    return;
  }
  current_->feed_counted(s == Symbol::kOne);
}

void EqualityChecker::feed_chunk(std::span<const stream::Symbol> chunk) {
  std::size_t i = 0;
  const std::size_t n = chunk.size();
  while (i < n) {
    if (in_prefix_) {  // per-symbol until the prefix resolves (k, p, t)
      feed(chunk[i]);
      ++i;
      continue;
    }
    if (!active_ || failed_) return;  // inert for the rest of the word
    if (chunk[i] == Symbol::kSep) {
      on_block_end();
      ++i;
      continue;
    }
    // A run of data bits: Symbol's underlying values are kZero = 0 and
    // kOne = 1, so the span doubles as the bit array of the batched pass.
    const std::size_t j = stream::find_sep(chunk.data(), i + 1, n);
    current_->feed_counted_bulk(
        reinterpret_cast<const std::uint8_t*>(chunk.data() + i), j - i);
    i = j;
  }
}

void EqualityChecker::on_block_end() {
  const std::uint64_t fp = current_->value();
  const unsigned kind = static_cast<unsigned>(block_index_ % 3);
  switch (kind) {
    case 0:  // an x-block
      // Condition (ii) across repetitions: x(i) = x(i+1).
      if (prev_x_ && fp != *prev_x_) failed_ = true;
      cur_x_ = fp;
      break;
    case 1:  // a y-block
      // Condition (iii): y(i) = y(i+1).
      if (prev_y_ && fp != *prev_y_) failed_ = true;
      cur_y_ = fp;
      break;
    case 2:  // a z-block
      // Condition (ii) within the repetition: z(i) = x(i).
      if (!cur_x_ || fp != *cur_x_) failed_ = true;
      prev_x_ = cur_x_;
      prev_y_ = cur_y_;
      break;
  }
  ++block_index_;
  current_->reset();
}

namespace {

void put_opt_u64(util::serde::ByteWriter& w,
                 const std::optional<std::uint64_t>& v) {
  w.b(v.has_value());
  w.u64(v.value_or(0));
}

std::optional<std::uint64_t> get_opt_u64(util::serde::ByteReader& r) {
  const bool has = r.b();
  const std::uint64_t v = r.u64();
  return has ? std::optional<std::uint64_t>(v) : std::nullopt;
}

}  // namespace

void EqualityChecker::snapshot_to(util::serde::ByteWriter& w) const {
  for (const std::uint64_t s : rng_.state()) w.u64(s);
  w.u32(field_exponent_);
  w.b(failed_);
  w.b(in_prefix_);
  w.u32(k_);
  w.b(active_);
  w.u64(p_);
  w.u64(t_);
  w.b(current_.has_value());
  if (current_) current_->snapshot_to(w);
  w.u64(block_index_);
  put_opt_u64(w, cur_x_);
  put_opt_u64(w, cur_y_);
  put_opt_u64(w, prev_x_);
  put_opt_u64(w, prev_y_);
}

void EqualityChecker::restore_from(util::serde::ByteReader& r) {
  std::array<std::uint64_t, 4> state;
  for (auto& s : state) s = r.u64();
  rng_.set_state(state);
  field_exponent_ = r.u32();
  failed_ = r.b();
  in_prefix_ = r.b();
  k_ = r.u32();
  active_ = r.b();
  p_ = r.u64();
  t_ = r.u64();
  if (r.b()) {
    current_ = PolyFingerprint::restored_from(r);
  } else {
    current_.reset();
  }
  block_index_ = r.u64();
  cur_x_ = get_opt_u64(r);
  cur_y_ = get_opt_u64(r);
  prev_x_ = get_opt_u64(r);
  prev_y_ = get_opt_u64(r);
}

std::uint64_t EqualityChecker::classical_bits_used() const noexcept {
  if (!active_) return 8;  // prefix counter only
  const std::uint64_t field_bits =
      static_cast<std::uint64_t>(field_exponent_) * k_ + 1;
  // p, t, t^i, accumulator, cur_x, cur_y, prev_x, prev_y.
  return 8 * field_bits + (k_ + 2) + 8;
}

}  // namespace qols::fingerprint
