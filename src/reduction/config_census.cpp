#include "qols/reduction/config_census.hpp"

#include <cassert>
#include <cmath>
#include <unordered_set>

#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/modmath.hpp"

namespace qols::reduction {

using stream::Symbol;

// ---------------------------------------------------------------------------
// DetBlockMachine
// ---------------------------------------------------------------------------

DetBlockMachine::DetBlockMachine(unsigned k)
    : k_(k),
      m_(std::uint64_t{1} << (2 * k)),
      block_len_(std::uint64_t{1} << k),
      buffer_(block_len_) {}

void DetBlockMachine::reset() {
  rep_ = 0;
  off_ = 0;
  block_ = 0;
  body_ = false;
  buffer_ = util::BitVec(block_len_);
  found_ = false;
}

void DetBlockMachine::feed(Symbol s) {
  if (!body_) {
    if (s == Symbol::kSep) body_ = true;  // end of the 1^k prefix
    return;
  }
  if (s == Symbol::kSep) {
    if (block_ == 2) {
      ++rep_;
      block_ = 0;
    } else {
      ++block_;
    }
    off_ = 0;
    return;
  }
  const bool bit = (s == Symbol::kOne);
  const std::uint64_t idx = off_++;
  const std::uint64_t lo = rep_ * block_len_;
  if (idx < lo || idx >= lo + block_len_ || rep_ >= block_len_) return;
  const std::uint64_t slot = idx - lo;
  if (block_ == 0) {
    buffer_.set(slot, bit);
  } else if (block_ == 1) {
    if (bit && buffer_.get(slot)) found_ = true;
  }
}

std::string DetBlockMachine::configuration() const {
  std::string c = buffer_.to_string();
  c.push_back(found_ ? 'F' : '.');
  c += std::to_string(rep_);
  c.push_back(':');
  c += std::to_string(block_);
  return c;
}

bool DetBlockMachine::decide() { return !found_; }

// ---------------------------------------------------------------------------
// DetFullMachine
// ---------------------------------------------------------------------------

DetFullMachine::DetFullMachine(unsigned k)
    : k_(k), m_(std::uint64_t{1} << (2 * k)), x_(m_) {}

void DetFullMachine::reset() {
  rep_ = 0;
  off_ = 0;
  block_ = 0;
  body_ = false;
  x_ = util::BitVec(m_);
  found_ = false;
}

void DetFullMachine::feed(Symbol s) {
  if (!body_) {
    if (s == Symbol::kSep) body_ = true;
    return;
  }
  if (s == Symbol::kSep) {
    if (block_ == 2) {
      ++rep_;
      block_ = 0;
    } else {
      ++block_;
    }
    off_ = 0;
    return;
  }
  const bool bit = (s == Symbol::kOne);
  const std::uint64_t idx = off_++;
  if (idx >= m_) return;
  if (rep_ == 0 && block_ == 0) {
    x_.set(idx, bit);
  } else if (rep_ == 0 && block_ == 1) {
    if (bit && x_.get(idx)) found_ = true;
  }
}

std::string DetFullMachine::configuration() const {
  std::string c = x_.to_string();
  c.push_back(found_ ? 'F' : '.');
  return c;
}

bool DetFullMachine::decide() { return !found_; }

// ---------------------------------------------------------------------------
// DetFingerprintMachine
// ---------------------------------------------------------------------------

DetFingerprintMachine::DetFingerprintMachine(unsigned k, std::uint64_t t)
    : k_(k),
      m_(std::uint64_t{1} << (2 * k)),
      p_(util::fingerprint_prime(k)),
      t_(t % p_) {}

void DetFingerprintMachine::reset() {
  acc_ = 0;
  tpow_ = 1;
  cur_x_ = cur_y_ = prev_x_ = prev_y_ = 0;
  have_prev_ = false;
  block_index_ = 0;
  body_ = false;
  failed_ = false;
}

void DetFingerprintMachine::feed(Symbol s) {
  if (!body_) {
    if (s == Symbol::kSep) body_ = true;
    return;
  }
  if (s == Symbol::kSep) {
    const std::uint64_t fp = acc_;
    switch (block_index_ % 3) {
      case 0:
        if (have_prev_ && fp != prev_x_) failed_ = true;
        cur_x_ = fp;
        break;
      case 1:
        if (have_prev_ && fp != prev_y_) failed_ = true;
        cur_y_ = fp;
        break;
      case 2:
        if (fp != cur_x_) failed_ = true;
        prev_x_ = cur_x_;
        prev_y_ = cur_y_;
        have_prev_ = true;
        break;
    }
    ++block_index_;
    acc_ = 0;
    tpow_ = 1;
    return;
  }
  if (s == Symbol::kOne) acc_ = util::addmod(acc_, tpow_, p_);
  tpow_ = util::mulmod(tpow_, t_, p_);
}

std::string DetFingerprintMachine::configuration() const {
  std::string c;
  c += std::to_string(cur_x_);
  c.push_back(',');
  c += std::to_string(cur_y_);
  c.push_back(',');
  c += std::to_string(prev_x_);
  c.push_back(',');
  c += std::to_string(prev_y_);
  c.push_back(',');
  c += std::to_string(block_index_);
  c.push_back(failed_ ? 'F' : '.');
  return c;
}

bool DetFingerprintMachine::decide() { return !failed_; }

// ---------------------------------------------------------------------------
// Census
// ---------------------------------------------------------------------------

BoundaryCensus survey_configurations(EnumerableMachine& machine, unsigned k,
                                     std::uint64_t max_pairs, util::Rng& rng) {
  const std::uint64_t m = std::uint64_t{1} << (2 * k);
  const std::uint64_t boundaries = 3 * (std::uint64_t{1} << k) - 1;

  BoundaryCensus census;
  census.distinct_configs.assign(boundaries, 0);
  census.message_bits.assign(boundaries, 0);

  std::vector<std::unordered_set<std::string>> seen(boundaries);

  // Exhaustive when 2^m * 2^m pairs fit the budget (k = 1: 256 pairs).
  const bool exhaustive =
      m <= 16 && (std::uint64_t{1} << (2 * m)) <= max_pairs;
  census.exhaustive = exhaustive;
  const std::uint64_t pairs =
      exhaustive ? (std::uint64_t{1} << (2 * m)) : max_pairs;
  census.inputs_surveyed = pairs;

  for (std::uint64_t pair = 0; pair < pairs; ++pair) {
    util::BitVec x(m), y(m);
    if (exhaustive) {
      for (std::uint64_t i = 0; i < m; ++i) {
        x.set(i, (pair >> i) & 1);
        y.set(i, (pair >> (m + i)) & 1);
      }
    } else {
      x = util::BitVec::random(m, rng);
      y = util::BitVec::random(m, rng);
    }
    lang::LDisjInstance inst(k, std::move(x), std::move(y));
    auto stream = inst.stream();
    machine.reset();

    // Boundary b (0-based) sits after the (b+1)-th '#' following the
    // prefix's '#'. Feed symbols and snapshot at each boundary.
    std::uint64_t seps_seen = 0;
    bool past_prefix = false;
    while (auto s = stream->next()) {
      machine.feed(*s);
      if (*s == Symbol::kSep) {
        if (!past_prefix) {
          past_prefix = true;
          continue;
        }
        if (seps_seen < boundaries) {
          seen[seps_seen].insert(machine.configuration());
        }
        ++seps_seen;
      }
    }
  }

  for (std::uint64_t b = 0; b < boundaries; ++b) {
    const std::uint64_t n = seen[b].size();
    census.distinct_configs[b] = n;
    const std::uint64_t bits =
        n <= 1 ? 0 : static_cast<std::uint64_t>(
                         std::ceil(std::log2(static_cast<double>(n))));
    census.message_bits[b] = bits;
    census.total_bits += bits;
    census.max_bits = std::max(census.max_bits, bits);
  }
  return census;
}

double theorem36_min_message_bits(unsigned k, double disj_constant) noexcept {
  const double m = std::pow(2.0, 2.0 * k);
  const double rounds = 3.0 * std::pow(2.0, k) - 1.0;
  return disj_constant * m / rounds;
}

}  // namespace qols::reduction
