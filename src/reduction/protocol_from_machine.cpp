#include "qols/reduction/protocol_from_machine.hpp"

#include <cassert>

#include "qols/lang/ldisj_instance.hpp"

namespace qols::reduction {

using stream::Symbol;

ReductionOutcome run_reduction_protocol(EnumerableMachine& machine, unsigned k,
                                        const util::BitVec& x,
                                        const util::BitVec& y) {
  // In this simulation the "two parties" share the machine object; what
  // makes it a protocol is the accounting: at every boundary the
  // configuration is serialized and charged as a message, and each segment
  // is generated from one party's string only.
  lang::LDisjInstance inst(k, x, y);
  auto word = inst.stream();

  ReductionOutcome out;
  machine.reset();
  const std::uint64_t boundaries = 3 * (std::uint64_t{1} << k) - 1;

  bool past_prefix = false;
  std::uint64_t step = 0;  // 1-based message index, as in the proof
  while (auto s = word->next()) {
    machine.feed(*s);
    if (*s != Symbol::kSep) continue;
    if (!past_prefix) {
      past_prefix = true;  // the '#' closing 1^k: no message yet
      continue;
    }
    ++step;
    if (step > boundaries) break;  // after the final segment nothing is sent
    const std::string config = machine.configuration();
    out.raw_payload_bits += 8ULL * config.size();
    ++out.messages;
    if (step % 3 == 2) {
      ++out.bob_messages;  // Bob just consumed a y-segment
    } else {
      ++out.alice_messages;
    }
  }
  assert(out.messages == boundaries);
  out.declared_disjoint = machine.decide();
  return out;
}

}  // namespace qols::reduction
