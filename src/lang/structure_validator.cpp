#include "qols/lang/structure_validator.hpp"

#include <bit>

namespace qols::lang {

using stream::Symbol;

void StructureValidator::feed(Symbol s) {
  switch (phase_) {
    case Phase::kFailed:
      return;
    case Phase::kDone:
      // Any symbol after the final '#' breaks the exact-shape requirement.
      fail();
      return;
    case Phase::kPrefix:
      if (s == Symbol::kOne) {
        if (k_ >= kMaxK) {
          fail();
          return;
        }
        ++k_;
        return;
      }
      if (s == Symbol::kSep) {
        if (k_ < 1) {
          fail();
          return;
        }
        k_known_ = true;
        m_ = std::uint64_t{1} << (2 * k_);
        total_blocks_ = 3 * (std::uint64_t{1} << k_);
        phase_ = Phase::kBlock;
        pos_in_block_ = 0;
        return;
      }
      fail();  // '0' in the prefix
      return;
    case Phase::kBlock:
      if (s == Symbol::kSep) {
        if (pos_in_block_ != m_) {
          fail();  // short block
          return;
        }
        ++blocks_done_;
        pos_in_block_ = 0;
        if (blocks_done_ == total_blocks_) phase_ = Phase::kDone;
        return;
      }
      // A data bit; overlong blocks fail as soon as they exceed m.
      if (pos_in_block_ >= m_) {
        fail();
        return;
      }
      ++pos_in_block_;
      return;
  }
}

void StructureValidator::feed_chunk(std::span<const stream::Symbol> chunk) {
  std::size_t i = 0;
  const std::size_t n = chunk.size();
  while (i < n) {
    if (phase_ == Phase::kFailed) return;  // sticky; the rest is ignored
    if (phase_ == Phase::kBlock && chunk[i] != Symbol::kSep) {
      // Bulk-advance over the run of data bits up to the next separator.
      const std::size_t j = stream::find_sep(chunk.data(), i + 1, n);
      const std::uint64_t run = j - i;
      if (pos_in_block_ + run > m_) {
        fail();  // overlong block — same sticky failure the per-symbol
        return;  // path reaches at the first bit beyond m
      }
      pos_in_block_ += run;
      i = j;
      continue;
    }
    feed(chunk[i]);
    ++i;
  }
}

bool StructureValidator::finish() {
  if (failed_) return false;
  return phase_ == Phase::kDone;
}

void StructureValidator::snapshot_to(util::serde::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(phase_));
  w.b(failed_);
  w.b(k_known_);
  w.u32(k_);
  w.u64(m_);
  w.u64(total_blocks_);
  w.u64(blocks_done_);
  w.u64(pos_in_block_);
}

void StructureValidator::restore_from(util::serde::ByteReader& r) {
  const std::uint8_t phase = r.u8();
  if (phase > static_cast<std::uint8_t>(Phase::kDone)) {
    throw util::serde::DecodeError("StructureValidator: bad phase");
  }
  phase_ = static_cast<Phase>(phase);
  failed_ = r.b();
  k_known_ = r.b();
  k_ = r.u32();
  m_ = r.u64();
  total_blocks_ = r.u64();
  blocks_done_ = r.u64();
  pos_in_block_ = r.u64();
}

std::uint64_t StructureValidator::classical_bits_used() const noexcept {
  // Conceptual OPTM work-tape footprint. Before k is known only the prefix
  // counter exists; afterwards the three counters sized by k.
  const unsigned k = k_known_ ? k_ : (k_ == 0 ? 1 : k_);
  const std::uint64_t k_counter = std::bit_width(std::uint64_t{k} + 1);
  const std::uint64_t block_counter = k + 2;    // counts to 3*2^k
  const std::uint64_t pos_counter = 2 * k + 1;  // counts to 2^{2k}
  return k_counter + block_counter + pos_counter + 2;  // +2 control state
}

}  // namespace qols::lang
