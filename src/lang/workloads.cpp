#include "qols/lang/workloads.hpp"

#include <cassert>

namespace qols::lang {

std::vector<WorkloadFamily> all_workload_families() {
  return {WorkloadFamily::kUniformDisjoint,
          WorkloadFamily::kFirstIndex,
          WorkloadFamily::kLastIndex,
          WorkloadFamily::kBlockBoundary,
          WorkloadFamily::kDenseXSparseY,
          WorkloadFamily::kSparseXDenseY,
          WorkloadFamily::kClusteredIntersections};
}

std::string workload_family_name(WorkloadFamily family) {
  switch (family) {
    case WorkloadFamily::kUniformDisjoint:
      return "uniform-disjoint";
    case WorkloadFamily::kFirstIndex:
      return "first-index";
    case WorkloadFamily::kLastIndex:
      return "last-index";
    case WorkloadFamily::kBlockBoundary:
      return "block-boundary";
    case WorkloadFamily::kDenseXSparseY:
      return "dense-x-sparse-y";
    case WorkloadFamily::kSparseXDenseY:
      return "sparse-x-dense-y";
    case WorkloadFamily::kClusteredIntersections:
      return "clustered";
  }
  return "?";
}

bool workload_family_is_member(WorkloadFamily family) {
  return family == WorkloadFamily::kUniformDisjoint;
}

LDisjInstance make_workload_instance(WorkloadFamily family, unsigned k,
                                     util::Rng& rng) {
  const std::uint64_t m = std::uint64_t{1} << (2 * k);
  const std::uint64_t block = std::uint64_t{1} << k;

  auto disjoint_pair = [&](util::BitVec& x, util::BitVec& y) {
    x = util::BitVec::random(m, rng);
    y = util::BitVec::random(m, rng);
    for (std::uint64_t i = 0; i < m; ++i) {
      if (x.get(i) && y.get(i)) y.set(i, false);
    }
  };

  switch (family) {
    case WorkloadFamily::kUniformDisjoint: {
      return LDisjInstance::make_disjoint(k, rng);
    }
    case WorkloadFamily::kFirstIndex: {
      util::BitVec x, y;
      disjoint_pair(x, y);
      x.set(0, true);
      y.set(0, true);
      return LDisjInstance(k, std::move(x), std::move(y));
    }
    case WorkloadFamily::kLastIndex: {
      util::BitVec x, y;
      disjoint_pair(x, y);
      x.set(m - 1, true);
      y.set(m - 1, true);
      return LDisjInstance(k, std::move(x), std::move(y));
    }
    case WorkloadFamily::kBlockBoundary: {
      util::BitVec x, y;
      disjoint_pair(x, y);
      // Last index of a random window: position (b+1)*2^k - 1.
      const std::uint64_t b = rng.below(block);
      const std::uint64_t pos = (b + 1) * block - 1;
      x.set(pos, true);
      y.set(pos, true);
      return LDisjInstance(k, std::move(x), std::move(y));
    }
    case WorkloadFamily::kDenseXSparseY: {
      util::BitVec x(m, true);
      util::BitVec y(m);
      y.set(rng.below(m), true);  // exactly one witness
      return LDisjInstance(k, std::move(x), std::move(y));
    }
    case WorkloadFamily::kSparseXDenseY: {
      util::BitVec x(m);
      util::BitVec y(m, true);
      x.set(rng.below(m), true);
      return LDisjInstance(k, std::move(x), std::move(y));
    }
    case WorkloadFamily::kClusteredIntersections: {
      util::BitVec x, y;
      disjoint_pair(x, y);
      // Pack min(4, 2^k) witnesses into one window.
      const std::uint64_t b = rng.below(block);
      const std::uint64_t count = std::min<std::uint64_t>(4, block);
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t pos = b * block + i;
        x.set(pos, true);
        y.set(pos, true);
      }
      return LDisjInstance(k, std::move(x), std::move(y));
    }
  }
  assert(false && "unknown workload family");
  return LDisjInstance::make_disjoint(k, rng);
}

}  // namespace qols::lang
