#include "qols/lang/ldisj_instance.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>
#include <unordered_set>

namespace qols::lang {

using stream::Symbol;

LDisjInstance::LDisjInstance(unsigned k, util::BitVec x, util::BitVec y)
    : k_(k), x_(std::move(x)), y_(std::move(y)) {
  if (k < 1 || k > 10) {
    throw std::invalid_argument("LDisjInstance: k must be in [1, 10]");
  }
  const std::uint64_t want = std::uint64_t{1} << (2 * k);
  if (x_.size() != want || y_.size() != want) {
    throw std::invalid_argument("LDisjInstance: |x| and |y| must equal 2^{2k}");
  }
}

LDisjInstance LDisjInstance::make_disjoint(unsigned k, util::Rng& rng) {
  const std::uint64_t m = std::uint64_t{1} << (2 * k);
  util::BitVec x = util::BitVec::random(m, rng);
  util::BitVec y = util::BitVec::random(m, rng);
  for (std::uint64_t i = 0; i < m; ++i) {
    if (x.get(i) && y.get(i)) y.set(i, false);
  }
  return LDisjInstance(k, std::move(x), std::move(y));
}

LDisjInstance LDisjInstance::make_with_intersections(unsigned k,
                                                     std::uint64_t t,
                                                     util::Rng& rng) {
  LDisjInstance inst = make_disjoint(k, rng);
  const std::uint64_t m = inst.m();
  if (t > m) {
    throw std::invalid_argument("make_with_intersections: t exceeds m");
  }
  // Choose t distinct indices and force x_i = y_i = 1 there; everywhere else
  // the instance stays disjoint, so the intersection count is exactly t.
  std::unordered_set<std::uint64_t> chosen;
  while (chosen.size() < t) chosen.insert(rng.below(m));
  for (std::uint64_t i : chosen) {
    inst.x_.set(i, true);
    inst.y_.set(i, true);
  }
  assert(inst.intersections() == t);
  return inst;
}

std::uint64_t LDisjInstance::word_length() const noexcept {
  return k_ + 1 + repetitions() * 3 * (m() + 1);
}

std::uint64_t LDisjInstance::position_of(std::uint64_t rep, unsigned block,
                                         std::uint64_t offset) const noexcept {
  return (k_ + 1) + rep * 3 * (m() + 1) + block * (m() + 1) + offset;
}

std::unique_ptr<stream::SymbolStream> LDisjInstance::stream() const {
  // Shared immutable payload so the stream outlives the instance if needed.
  struct Payload {
    unsigned k;
    util::BitVec x, y;
  };
  auto payload = std::make_shared<Payload>(Payload{k_, x_, y_});
  const std::uint64_t m = this->m();
  const std::uint64_t reps = repetitions();
  const std::uint64_t total = word_length();
  const std::uint64_t prefix = k_ + 1;
  auto fn = [payload, m, reps, prefix,
             total](std::uint64_t pos) -> std::optional<Symbol> {
    if (pos >= total) return std::nullopt;
    if (pos < prefix) {
      return pos + 1 == prefix ? Symbol::kSep : Symbol::kOne;
    }
    const std::uint64_t body = pos - prefix;
    const std::uint64_t per_rep = 3 * (m + 1);
    [[maybe_unused]] const std::uint64_t rep = body / per_rep;
    (void)reps;
    assert(rep < reps);
    const std::uint64_t in_rep = body % per_rep;
    const unsigned block = static_cast<unsigned>(in_rep / (m + 1));
    const std::uint64_t off = in_rep % (m + 1);
    if (off == m) return Symbol::kSep;
    const bool bit =
        (block == 1) ? payload->y.get(off) : payload->x.get(off);
    return bit ? Symbol::kOne : Symbol::kZero;
  };
  return std::make_unique<stream::GeneratorStream>(std::move(fn), total);
}

std::string LDisjInstance::render() const {
  if (word_length() > (std::uint64_t{64} << 20)) {
    throw std::length_error("LDisjInstance::render: word exceeds 64 MiB");
  }
  auto s = stream();
  return stream::materialize(*s);
}

std::unique_ptr<stream::SymbolStream> make_mutant_stream(
    const LDisjInstance& inst, MutantKind kind, util::Rng& rng) {
  auto base = inst.stream();
  const std::uint64_t m = inst.m();
  const std::uint64_t reps = inst.repetitions();
  switch (kind) {
    case MutantKind::kBadPrefix: {
      // Replace one '1' of the prefix with '0' (keeps length, breaks (i)).
      const std::uint64_t pos = inst.k() > 1 ? rng.below(inst.k()) : 0;
      return std::make_unique<stream::CorruptingStream>(std::move(base), pos,
                                                        Symbol::kZero);
    }
    case MutantKind::kTrailingGarbage: {
      return std::make_unique<stream::AppendingStream>(std::move(base), "01");
    }
    case MutantKind::kXZMismatch: {
      // Flip one bit inside some z-block: x != z in that repetition.
      const std::uint64_t rep = rng.below(reps);
      const std::uint64_t off = rng.below(m);
      const bool orig = inst.x().get(off);
      return std::make_unique<stream::CorruptingStream>(
          std::move(base), inst.position_of(rep, 2, off),
          orig ? Symbol::kZero : Symbol::kOne);
    }
    case MutantKind::kYDrift: {
      // Flip one bit of a y-block in repetition >= 1 (needs reps >= 2, which
      // holds for every k >= 1).
      const std::uint64_t rep = 1 + rng.below(reps - 1);
      const std::uint64_t off = rng.below(m);
      const bool orig = inst.y().get(off);
      return std::make_unique<stream::CorruptingStream>(
          std::move(base), inst.position_of(rep, 1, off),
          orig ? Symbol::kZero : Symbol::kOne);
    }
    case MutantKind::kTruncated: {
      const std::uint64_t keep = 1 + rng.below(inst.word_length() - 1);
      return std::make_unique<stream::TruncatedStream>(std::move(base), keep);
    }
    case MutantKind::kSepInsideBlock: {
      const std::uint64_t rep = rng.below(reps);
      const std::uint64_t off = rng.below(m);
      return std::make_unique<stream::CorruptingStream>(
          std::move(base), inst.position_of(rep, 0, off), Symbol::kSep);
    }
  }
  return base;
}

bool is_member_reference(const std::string& word) {
  // Parse 1^k '#'.
  std::size_t pos = 0;
  while (pos < word.size() && word[pos] == '1') ++pos;
  const std::size_t k = pos;
  if (k < 1 || pos >= word.size() || word[pos] != '#') return false;
  if (k > 10) return false;  // same guard as LDisjInstance
  ++pos;
  const std::uint64_t m = std::uint64_t{1} << (2 * k);
  const std::uint64_t blocks = 3 * (std::uint64_t{1} << k);
  std::vector<std::string> block(blocks);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    if (pos + m + 1 > word.size()) return false;
    for (std::uint64_t i = 0; i < m; ++i) {
      const char c = word[pos + i];
      if (c != '0' && c != '1') return false;
    }
    if (word[pos + m] != '#') return false;
    block[b] = word.substr(pos, m);
    pos += m + 1;
  }
  if (pos != word.size()) return false;
  // Conditions (ii) and (iii): all x- and z-blocks equal the first x-block,
  // all y-blocks equal the first y-block.
  const std::string& x = block[0];
  const std::string& y = block[1];
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::string& want = (b % 3 == 1) ? y : x;
    if (block[b] != want) return false;
  }
  // Disjointness.
  for (std::uint64_t i = 0; i < m; ++i) {
    if (x[i] == '1' && y[i] == '1') return false;
  }
  return true;
}

}  // namespace qols::lang
