#include "qols/stream/file_stream.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace qols::stream {

FileStream::FileStream(const std::string& path, std::size_t buffer_size)
    : file_(path, std::ios::binary), buffer_cap_(buffer_size) {
  if (buffer_cap_ == 0) {
    // refill() with a 0-capacity buffer reads nothing and reports EOF on a
    // non-empty file — reject the configuration instead of truncating input.
    throw std::invalid_argument("FileStream: buffer_size must be >= 1");
  }
  if (!file_.is_open()) {
    throw std::runtime_error("FileStream: cannot open " + path);
  }
  file_.seekg(0, std::ios::end);
  file_size_ = static_cast<std::uint64_t>(file_.tellg());
  file_.seekg(0, std::ios::beg);
}

bool FileStream::refill() {
  buffer_.resize(buffer_cap_);
  file_.read(buffer_.data(), static_cast<std::streamsize>(buffer_cap_));
  buffer_.resize(static_cast<std::size_t>(file_.gcount()));
  pos_ = 0;
  return !buffer_.empty();
}

std::optional<Symbol> FileStream::next() {
  if (done_) return std::nullopt;
  if (pos_ >= buffer_.size() && !refill()) {
    done_ = true;
    return std::nullopt;
  }
  const char c = buffer_[pos_++];
  if (c == '\n' && pos_ >= buffer_.size() && file_.peek() == EOF) {
    done_ = true;  // tolerate one trailing newline at EOF
    return std::nullopt;
  }
  const auto sym = symbol_from_char(c);
  if (!sym) {
    bad_ = true;
    done_ = true;
    return std::nullopt;
  }
  return sym;
}

std::size_t FileStream::next_chunk(std::span<Symbol> out) {
  std::size_t filled = 0;
  while (filled < out.size() && !done_) {
    if (pos_ >= buffer_.size() && !refill()) {
      done_ = true;
      break;
    }
    const std::size_t run = std::min(out.size() - filled, buffer_.size() - pos_);
    for (std::size_t i = 0; i < run; ++i) {
      const char c = buffer_[pos_];
      ++pos_;
      if (c == '\n' && pos_ >= buffer_.size() && file_.peek() == EOF) {
        done_ = true;  // same trailing-newline tolerance as next()
        return filled;
      }
      const auto sym = symbol_from_char(c);
      if (!sym) {
        bad_ = true;
        done_ = true;
        return filled;
      }
      out[filled++] = *sym;
    }
  }
  return filled;
}

std::optional<std::uint64_t> FileStream::length_hint() const {
  return file_size_;
}

std::uint64_t write_stream_to_file(SymbolStream& stream,
                                   const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    throw std::runtime_error("write_stream_to_file: cannot open " + path);
  }
  // Chunked drain: the source produces in bulk (no per-symbol virtual call)
  // and both scratch buffers are reused across iterations.
  std::vector<Symbol> symbols(1 << 16);
  std::string chars(symbols.size(), '\0');
  std::uint64_t written = 0;
  while (true) {
    const std::size_t n = stream.next_chunk(symbols);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) chars[i] = symbol_to_char(symbols[i]);
    out.write(chars.data(), static_cast<std::streamsize>(n));
    written += n;
  }
  if (!out.good()) {
    throw std::runtime_error("write_stream_to_file: write failure on " + path);
  }
  return written;
}

}  // namespace qols::stream
