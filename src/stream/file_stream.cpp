#include "qols/stream/file_stream.hpp"

#include <algorithm>
#include <stdexcept>

namespace qols::stream {

FileStream::FileStream(const std::string& path, std::size_t buffer_size)
    : file_(path, std::ios::binary), buffer_cap_(buffer_size) {
  if (!file_.is_open()) {
    throw std::runtime_error("FileStream: cannot open " + path);
  }
  file_.seekg(0, std::ios::end);
  file_size_ = static_cast<std::uint64_t>(file_.tellg());
  file_.seekg(0, std::ios::beg);
}

bool FileStream::refill() {
  buffer_.resize(buffer_cap_);
  file_.read(buffer_.data(), static_cast<std::streamsize>(buffer_cap_));
  buffer_.resize(static_cast<std::size_t>(file_.gcount()));
  pos_ = 0;
  return !buffer_.empty();
}

std::optional<Symbol> FileStream::next() {
  if (done_) return std::nullopt;
  if (pos_ >= buffer_.size() && !refill()) {
    done_ = true;
    return std::nullopt;
  }
  const char c = buffer_[pos_++];
  if (c == '\n' && pos_ >= buffer_.size() && file_.peek() == EOF) {
    done_ = true;  // tolerate one trailing newline at EOF
    return std::nullopt;
  }
  const auto sym = symbol_from_char(c);
  if (!sym) {
    bad_ = true;
    done_ = true;
    return std::nullopt;
  }
  return sym;
}

std::size_t FileStream::next_chunk(std::span<Symbol> out) {
  std::size_t filled = 0;
  while (filled < out.size() && !done_) {
    if (pos_ >= buffer_.size() && !refill()) {
      done_ = true;
      break;
    }
    const std::size_t run = std::min(out.size() - filled, buffer_.size() - pos_);
    for (std::size_t i = 0; i < run; ++i) {
      const char c = buffer_[pos_];
      ++pos_;
      if (c == '\n' && pos_ >= buffer_.size() && file_.peek() == EOF) {
        done_ = true;  // same trailing-newline tolerance as next()
        return filled;
      }
      const auto sym = symbol_from_char(c);
      if (!sym) {
        bad_ = true;
        done_ = true;
        return filled;
      }
      out[filled++] = *sym;
    }
  }
  return filled;
}

std::optional<std::uint64_t> FileStream::length_hint() const {
  return file_size_;
}

std::uint64_t write_stream_to_file(SymbolStream& stream,
                                   const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    throw std::runtime_error("write_stream_to_file: cannot open " + path);
  }
  std::string buffer;
  buffer.reserve(1 << 16);
  std::uint64_t written = 0;
  while (auto s = stream.next()) {
    buffer.push_back(symbol_to_char(*s));
    ++written;
    if (buffer.size() == buffer.capacity()) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!out.good()) {
    throw std::runtime_error("write_stream_to_file: write failure on " + path);
  }
  return written;
}

}  // namespace qols::stream
