#include "qols/stream/symbol_stream.hpp"

#include <algorithm>
#include <stdexcept>

namespace qols::stream {

std::optional<Symbol> symbol_from_char(char c) noexcept {
  switch (c) {
    case '0':
      return Symbol::kZero;
    case '1':
      return Symbol::kOne;
    case '#':
      return Symbol::kSep;
    default:
      return std::nullopt;
  }
}

char symbol_to_char(Symbol s) noexcept {
  switch (s) {
    case Symbol::kZero:
      return '0';
    case Symbol::kOne:
      return '1';
    case Symbol::kSep:
      return '#';
  }
  return '?';
}

StringStream::StringStream(std::string text) : text_(std::move(text)) {
  for (char c : text_) {
    if (!symbol_from_char(c)) {
      throw std::invalid_argument("StringStream: character outside {0,1,#}");
    }
  }
}

std::optional<Symbol> StringStream::next() {
  if (pos_ >= text_.size()) return std::nullopt;
  return symbol_from_char(text_[pos_++]);
}

std::size_t StringStream::next_chunk(std::span<Symbol> out) {
  const std::size_t run = std::min(out.size(), text_.size() - pos_);
  const char* src = text_.data() + pos_;
  for (std::size_t i = 0; i < run; ++i) {
    // Arithmetic mapping instead of symbol_from_char: the '#' test is
    // predictable (separators are rare) while the switch's '0'-vs-'1'
    // branch is random data — measured 3x slower end to end. A 256-entry
    // table is also slower (~25%) than this pure-ALU form. Divergence from
    // symbol_from_char cannot ship: the chunked-read tests compare this
    // path against next(), which uses the canonical mapping.
    const char c = src[i];
    out[i] = c == '#' ? Symbol::kSep : static_cast<Symbol>(c - '0');
  }
  pos_ += run;
  return run;
}

AppendingStream::AppendingStream(std::unique_ptr<SymbolStream> inner,
                                 std::string suffix)
    : inner_(std::move(inner)), suffix_(std::move(suffix)) {
  for (char c : suffix_) {
    if (!symbol_from_char(c)) {
      throw std::invalid_argument("AppendingStream: character outside {0,1,#}");
    }
  }
}

std::optional<Symbol> AppendingStream::next() {
  if (!inner_done_) {
    auto s = inner_->next();
    if (s) return s;
    inner_done_ = true;
  }
  if (suffix_pos_ >= suffix_.size()) return std::nullopt;
  return symbol_from_char(suffix_[suffix_pos_++]);
}

std::size_t AppendingStream::next_chunk(std::span<Symbol> out) {
  // An empty request must be a no-op: the inner stream's 0 would be the
  // mandatory answer for an empty buffer, not an end-of-input signal.
  if (out.empty()) return 0;
  std::size_t filled = 0;
  if (!inner_done_) {
    filled = inner_->next_chunk(out);
    if (filled > 0) return filled;  // short reads are allowed; 0 means ended
    inner_done_ = true;
  }
  const std::size_t run =
      std::min(out.size() - filled, suffix_.size() - suffix_pos_);
  for (std::size_t i = 0; i < run; ++i) {
    out[filled + i] = *symbol_from_char(suffix_[suffix_pos_ + i]);
  }
  suffix_pos_ += run;
  return filled + run;
}

std::string materialize(SymbolStream& s) {
  std::string out;
  if (auto hint = s.length_hint()) out.reserve(*hint);
  while (auto sym = s.next()) out.push_back(symbol_to_char(*sym));
  return out;
}

}  // namespace qols::stream
