#include "qols/stream/symbol_stream.hpp"

#include <stdexcept>

namespace qols::stream {

std::optional<Symbol> symbol_from_char(char c) noexcept {
  switch (c) {
    case '0':
      return Symbol::kZero;
    case '1':
      return Symbol::kOne;
    case '#':
      return Symbol::kSep;
    default:
      return std::nullopt;
  }
}

char symbol_to_char(Symbol s) noexcept {
  switch (s) {
    case Symbol::kZero:
      return '0';
    case Symbol::kOne:
      return '1';
    case Symbol::kSep:
      return '#';
  }
  return '?';
}

StringStream::StringStream(std::string text) : text_(std::move(text)) {
  for (char c : text_) {
    if (!symbol_from_char(c)) {
      throw std::invalid_argument("StringStream: character outside {0,1,#}");
    }
  }
}

std::optional<Symbol> StringStream::next() {
  if (pos_ >= text_.size()) return std::nullopt;
  return symbol_from_char(text_[pos_++]);
}

AppendingStream::AppendingStream(std::unique_ptr<SymbolStream> inner,
                                 std::string suffix)
    : inner_(std::move(inner)), suffix_(std::move(suffix)) {
  for (char c : suffix_) {
    if (!symbol_from_char(c)) {
      throw std::invalid_argument("AppendingStream: character outside {0,1,#}");
    }
  }
}

std::optional<Symbol> AppendingStream::next() {
  if (!inner_done_) {
    auto s = inner_->next();
    if (s) return s;
    inner_done_ = true;
  }
  if (suffix_pos_ >= suffix_.size()) return std::nullopt;
  return symbol_from_char(suffix_[suffix_pos_++]);
}

std::string materialize(SymbolStream& s) {
  std::string out;
  if (auto hint = s.length_hint()) out.reserve(*hint);
  while (auto sym = s.next()) out.push_back(symbol_to_char(*sym));
  return out;
}

}  // namespace qols::stream
