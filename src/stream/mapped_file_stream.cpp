// MappedFileStream: zero-copy disk ingestion.
//
// The file is mapped MAP_PRIVATE with PROT_READ|PROT_WRITE — legal on a
// read-only descriptor — so characters can be rewritten into Symbol byte
// values in place. The kernel gives the touched pages copy-on-write copies;
// the file on disk is never modified, and pages the cursor has fully passed
// are handed back with MADV_DONTNEED so a multi-hundred-MB word costs a
// bounded resident set, not its full size.
//
// Conversion is lazy and single-pass: prepare() advances a high-water mark
// (converted_) over the raw bytes just ahead of the consumer cursor, which
// is exactly the span view_chunk() is about to lend. After conversion the
// mapping itself *is* the symbol array — next_chunk() degenerates to one
// memcpy, and view_chunk() to pointer arithmetic.

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <stdexcept>

#include "qols/stream/file_stream.hpp"
#include "qols/telemetry/registry.hpp"

namespace qols::stream {

namespace {

// Raw char -> Symbol byte value; 0xff marks everything outside the alphabet
// (including '\n', which gets its own end-of-file check).
constexpr std::array<std::uint8_t, 256> make_symbol_table() {
  std::array<std::uint8_t, 256> t{};
  for (auto& v : t) v = 0xff;
  t[static_cast<unsigned char>('0')] = 0;
  t[static_cast<unsigned char>('1')] = 1;
  t[static_cast<unsigned char>('#')] = 2;
  return t;
}
constexpr std::array<std::uint8_t, 256> kSymbolTable = make_symbol_table();

/// Dirty pages behind the cursor accumulate up to this many bytes before a
/// release; large enough that madvise cost is amortized over ~16k pages.
constexpr std::size_t kReleaseWindow = std::size_t{64} << 20;

}  // namespace

MappedFileStream::MappedFileStream(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("MappedFileStream: cannot open " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("MappedFileStream: cannot stat " + path);
  }
  map_len_ = static_cast<std::size_t>(st.st_size);
  if (map_len_ > 0) {
    void* p = ::mmap(nullptr, map_len_, PROT_READ | PROT_WRITE, MAP_PRIVATE,
                     fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      throw std::runtime_error("MappedFileStream: cannot map " + path);
    }
    data_ = static_cast<std::uint8_t*>(p);
    // Read-ahead hint: the consumer is strictly one-way.
    ::madvise(data_, map_len_, MADV_SEQUENTIAL);
  }
  ::close(fd);  // the mapping keeps the file alive
  limit_ = map_len_;
  const long ps = ::sysconf(_SC_PAGESIZE);
  if (ps > 0) page_size_ = static_cast<std::size_t>(ps);
  {
    auto& reg = telemetry::MetricsRegistry::global();
    static telemetry::Counter& files = reg.counter("stream.mapped_files");
    static telemetry::Counter& bytes = reg.counter("stream.bytes_mapped");
    files.add();
    bytes.add(map_len_);
  }
}

MappedFileStream::~MappedFileStream() {
  if (data_ != nullptr) ::munmap(data_, map_len_);
}

std::size_t MappedFileStream::prepare(std::size_t max) {
  std::size_t n = limit_ - cursor_ < max ? limit_ - cursor_ : max;
  const std::size_t end = cursor_ + n;
  while (converted_ < end) {
    const std::uint8_t t = kSymbolTable[data_[converted_]];
    if (t > 2) {
      if (data_[converted_] == '\n' && converted_ + 1 == map_len_) {
        limit_ = converted_;  // tolerate one trailing newline at EOF
      } else {
        bad_ = true;  // foreign character: stream ends here
        limit_ = converted_;
      }
      break;
    }
    data_[converted_++] = t;
  }
  // The limit may have moved under us; re-clamp to what is actually
  // converted and consumable.
  n = limit_ - cursor_ < n ? limit_ - cursor_ : n;
  return n;
}

void MappedFileStream::release_behind() {
  const std::size_t floor = cursor_ & ~(page_size_ - 1);
  if (floor - released_ >= kReleaseWindow) {
    ::madvise(data_ + released_, floor - released_, MADV_DONTNEED);
    released_ = floor;
  }
}

std::optional<Symbol> MappedFileStream::next() {
  if (prepare(1) == 0) return std::nullopt;
  return static_cast<Symbol>(data_[cursor_++]);
}

std::size_t MappedFileStream::next_chunk(std::span<Symbol> out) {
  const std::size_t n = prepare(out.size());
  if (n == 0) return 0;
  std::memcpy(out.data(), data_ + cursor_, n);
  cursor_ += n;
  release_behind();
  return n;
}

std::optional<std::span<const Symbol>> MappedFileStream::view_chunk(
    std::size_t max) {
  // Releasing first keeps the pages of the span we are about to lend
  // untouched: only bytes strictly behind the cursor (the previous,
  // now-invalidated view) go back to the OS.
  release_behind();
  const std::size_t n = prepare(max);
  const auto* base = reinterpret_cast<const Symbol*>(data_ + cursor_);
  cursor_ += n;
  return std::span<const Symbol>(base, n);
}

std::optional<std::uint64_t> MappedFileStream::length_hint() const {
  return map_len_;
}

}  // namespace qols::stream
