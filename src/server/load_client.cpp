#include "qols/server/load_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <barrier>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/rng.hpp"

namespace qols::server {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// One nonblocking TCP connection with an outgoing byte queue and an
/// incoming frame decoder.
struct NetConn {
  int fd = -1;
  std::vector<std::uint8_t> out;
  std::size_t out_pos = 0;
  wire::FrameDecoder dec;

  ~NetConn() {
    if (fd >= 0) ::close(fd);
  }

  void connect(const std::string& host, std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      errno = EINVAL;
      throw_errno("inet_pton (IPv4 address expected)");
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      throw_errno("connect");
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      throw_errno("fcntl(O_NONBLOCK)");
    }
  }

  std::size_t pending() const noexcept { return out.size() - out_pos; }

  bool send_some() {
    bool progress = false;
    while (pending() > 0) {
      const ssize_t n = ::send(fd, out.data() + out_pos, pending(),
                               MSG_NOSIGNAL);
      if (n > 0) {
        out_pos += static_cast<std::size_t>(n);
        progress = true;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      throw_errno("send");
    }
    if (out_pos == out.size()) {
      out.clear();
      out_pos = 0;
    }
    return progress;
  }

  /// Reads everything available; returns false on orderly EOF.
  bool recv_some(bool& progress) {
    std::uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        dec.append({buf, static_cast<std::size_t>(n)});
        progress = true;
        continue;
      }
      if (n == 0) return false;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
  }

  void wait_io(int timeout_ms) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    if (pending() > 0) p.events |= POLLOUT;
    ::poll(&p, 1, timeout_ms);
  }
};

/// Per-connection driver: runs the phases for its slice of sessions.
struct Driver {
  const LoadOptions& opts;
  const LoadWords& words;
  NetConn conn;
  util::SplitMix64 chunk_rng;

  bool hello_ok = false;
  std::uint64_t opens_acked = 0;
  std::uint64_t resumes_acked = 0;
  std::uint64_t stats_seen = 0;
  std::uint64_t finished = 0;
  std::uint64_t errors = 0;
  std::size_t outstanding = 0;
  std::unordered_map<std::uint64_t, Clock::time_point> finish_stamp;
  std::vector<SessionOutcome> outcomes;
  std::vector<double> latencies_ms;
  std::uint64_t symbols_fed = 0;

  Driver(const LoadOptions& o, const LoadWords& w, std::uint64_t conn_index)
      : opts(o),
        words(w),
        chunk_rng(o.seed ^ (conn_index * 0x9e3779b97f4a7c15ULL) ^
                  0xfeedULL) {}

  void on_frame(const wire::Frame& f) {
    switch (f.type) {
      case wire::FrameType::kHelloOk: {
        const auto ok = wire::read_hello_ok(f.payload);
        if (ok.version != wire::kProtocolVersion) {
          throw std::runtime_error("qols_load: server protocol version " +
                                   std::to_string(ok.version));
        }
        hello_ok = true;
        return;
      }
      case wire::FrameType::kOpenOk:
        ++opens_acked;
        return;
      case wire::FrameType::kResumeOk:
        ++resumes_acked;
        return;
      case wire::FrameType::kStatsText:
        ++stats_seen;
        return;
      case wire::FrameType::kVerdict: {
        const auto v = wire::read_verdict(f.payload);
        const auto it = finish_stamp.find(v.session);
        double ms = 0.0;
        if (it != finish_stamp.end()) {
          ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                         it->second)
                   .count();
          finish_stamp.erase(it);
        }
        latencies_ms.push_back(ms);
        if (opts.collect_outcomes) {
          outcomes.push_back({v.session - 1, v, ms});
        }
        ++finished;
        if (outstanding > 0) --outstanding;
        return;
      }
      case wire::FrameType::kError: {
        const auto e = wire::read_error(f.payload);
        ++errors;
        if (wire::error_is_fatal(e.code)) {
          throw std::runtime_error(std::string("qols_load: fatal server error ") +
                                   wire::error_code_name(e.code) + ": " +
                                   e.message);
        }
        return;
      }
      default:
        return;  // STATS/METRICS text — not requested here, ignore
    }
  }

  /// Drives IO until `done()` holds. Throws after 30 s without progress.
  template <typename Pred>
  void pump_until(Pred done) {
    auto last_progress = Clock::now();
    while (!done()) {
      bool progress = conn.send_some();
      if (!conn.recv_some(progress)) {
        if (done()) return;
        throw std::runtime_error("qols_load: server closed the connection");
      }
      while (auto f = conn.dec.next()) {
        on_frame(*f);
        progress = true;
      }
      if (done()) return;
      if (progress) {
        last_progress = Clock::now();
        continue;
      }
      conn.wait_io(200);
      if (Clock::now() - last_progress > std::chrono::seconds(30)) {
        throw std::runtime_error("qols_load: no progress for 30s");
      }
    }
  }

  /// Keeps the outgoing queue bounded while a phase floods frames.
  void drain_below(std::size_t cap) {
    pump_until([&] { return conn.pending() <= cap; });
  }

  std::size_t chunk_size() {
    const std::size_t lo = std::max<std::size_t>(1, opts.min_chunk);
    const std::size_t hi = std::max(lo, opts.max_chunk);
    return lo + static_cast<std::size_t>(chunk_rng.next() % (hi - lo + 1));
  }

  /// [begin, end) slice of session `index`'s word this phase feeds. The cut
  /// at word.size() / 2 depends only on (k, seed), so a kOpenFeed run and a
  /// later kResumeFinish run against a restarted server agree on the split
  /// without sharing any state.
  std::pair<std::size_t, std::size_t> feed_range(std::uint64_t index) const {
    const std::size_t n = word_for_session(words, index).size();
    switch (opts.phase) {
      case Phase::kOpenFeed:
        return {0, n / 2};
      case Phase::kResumeFinish:
        return {n / 2, n};
      case Phase::kFull:
        break;
    }
    return {0, n};
  }

  void run(std::uint64_t first, std::uint64_t count) {
    // HELLO / HELLO_OK
    wire::append_hello(conn.out, {wire::kProtocolVersion, opts.kind_tag});
    pump_until([&] { return hello_ok; });

    if (opts.phase == Phase::kResumeFinish) {
      // RESUME the sessions a prior kOpenFeed run left on the server.
      for (std::uint64_t i = 0; i < count; ++i) {
        wire::append_resume(conn.out, {first + i + 1});
        if (conn.pending() > (std::size_t{1} << 16)) {
          drain_below(std::size_t{1} << 12);
        }
      }
      pump_until(
          [&] { return resumes_acked == count && conn.pending() == 0; });
      return;
    }

    // OPEN all sessions (wire id = global index + 1).
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t index = first + i;
      wire::append_open(conn.out,
                        {index + 1, seed_for_session(opts, index)});
      if (conn.pending() > (std::size_t{1} << 16)) {
        drain_below(std::size_t{1} << 12);
      }
    }
    pump_until([&] { return opens_acked == count && conn.pending() == 0; });
  }

  void feed_phase(std::uint64_t first, std::uint64_t count) {
    std::vector<std::size_t> cursors(count, 0);
    std::vector<std::size_t> ends(count, 0);
    bool remaining = false;
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto [begin, end] = feed_range(first + i);
      cursors[i] = begin;
      ends[i] = end;
      remaining = remaining || begin < end;
    }
    while (remaining) {
      remaining = false;
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto& word = word_for_session(words, first + i);
        if (cursors[i] >= ends[i]) continue;
        const std::size_t n = std::min(chunk_size(), ends[i] - cursors[i]);
        wire::append_feed(
            conn.out, first + i + 1,
            std::span<const stream::Symbol>(word.data() + cursors[i], n));
        cursors[i] += n;
        symbols_fed += n;
        if (cursors[i] < ends[i]) remaining = true;
        if (conn.pending() > (std::size_t{1} << 18)) {
          drain_below(std::size_t{1} << 14);
        }
      }
    }
    pump_until([&] { return conn.pending() == 0; });
  }

  /// FEED has no ack; a STATS round-trip proves every prior frame reached
  /// the service (frames are handled strictly in order) before a kOpenFeed
  /// run disconnects mid-lifecycle.
  void settle() {
    wire::append_frame(conn.out, wire::FrameType::kStats, {});
    const auto want = stats_seen + 1;
    pump_until([&] { return stats_seen >= want; });
  }

  void finish_phase(std::uint64_t first, std::uint64_t count) {
    const std::size_t window = std::max<std::size_t>(1, opts.finish_window);
    std::uint64_t next = 0;
    while (finished < count) {
      while (outstanding < window && next < count) {
        const std::uint64_t id = first + next + 1;
        finish_stamp.emplace(id, Clock::now());
        wire::append_finish(conn.out, {id});
        ++outstanding;
        ++next;
      }
      const std::uint64_t target =
          std::min<std::uint64_t>(count, finished + 1);
      pump_until([&] { return finished >= target; });
    }
  }
};

}  // namespace

LoadWords make_load_words(unsigned k, std::uint64_t seed) {
  util::Rng rng(seed);
  LoadWords w;
  const auto member = lang::LDisjInstance::make_disjoint(k, rng);
  const auto crossing =
      lang::LDisjInstance::make_with_intersections(k, 1, rng);
  const auto materialize = [](const lang::LDisjInstance& inst) {
    std::vector<stream::Symbol> out;
    auto s = inst.stream();
    while (auto sym = s->next()) out.push_back(*sym);
    return out;
  };
  w.member = materialize(member);
  w.crossing = materialize(crossing);
  return w;
}

const std::vector<stream::Symbol>& word_for_session(const LoadWords& words,
                                                    std::uint64_t index) {
  return index % 2 == 0 ? words.member : words.crossing;
}

std::uint64_t seed_for_session(const LoadOptions& opts, std::uint64_t index) {
  const unsigned pool = opts.distinct_seeds > 0 ? opts.distinct_seeds : 1;
  return 1000 + index % pool;
}

LoadReport run_load(const LoadOptions& opts) {
  const unsigned conns = std::max(1u, opts.connections);
  const LoadWords words = make_load_words(opts.k, opts.seed);

  // Contiguous session-index slices per connection.
  std::vector<std::uint64_t> firsts(conns), counts(conns);
  {
    const std::uint64_t base = opts.sessions / conns;
    const std::uint64_t extra = opts.sessions % conns;
    std::uint64_t at = 0;
    for (unsigned c = 0; c < conns; ++c) {
      firsts[c] = at;
      counts[c] = base + (c < extra ? 1 : 0);
      at += counts[c];
    }
  }

  std::barrier sync(static_cast<std::ptrdiff_t>(conns));
  std::mutex mu;
  LoadReport report;
  std::vector<double> all_latencies;
  std::exception_ptr first_error;
  Clock::time_point t_start = Clock::time_point::max();
  Clock::time_point t_end = Clock::time_point::min();

  auto worker = [&](unsigned c) {
    Driver d(opts, words, c);
    try {
      d.conn.connect(opts.host, opts.port);
      d.run(firsts[c], counts[c]);  // HELLO + OPENs (or RESUMEs)
      sync.arrive_and_wait();       // every session everywhere is open
      const auto start = Clock::now();
      d.feed_phase(firsts[c], counts[c]);
      sync.arrive_and_wait();  // all feeds flushed before the first FINISH
      if (opts.phase == Phase::kOpenFeed) {
        d.settle();  // every FEED is in the service before we disconnect
      } else {
        d.finish_phase(firsts[c], counts[c]);
      }
      const auto end = Clock::now();
      std::lock_guard<std::mutex> lock(mu);
      t_start = std::min(t_start, start);
      t_end = std::max(t_end, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!first_error) first_error = std::current_exception();
      sync.arrive_and_drop();  // unblock the surviving connections
    }
    std::lock_guard<std::mutex> lock(mu);
    // kOpenFeed never finishes, so "sessions" counts what it did complete:
    // the opens the server acknowledged.
    report.sessions +=
        opts.phase == Phase::kOpenFeed ? d.opens_acked : d.finished;
    report.symbols += d.symbols_fed;
    report.errors += d.errors;
    all_latencies.insert(all_latencies.end(), d.latencies_ms.begin(),
                         d.latencies_ms.end());
    report.outcomes.insert(report.outcomes.end(), d.outcomes.begin(),
                           d.outcomes.end());
  };

  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (unsigned c = 0; c < conns; ++c) threads.emplace_back(worker, c);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  report.max_concurrent_sessions = opts.sessions;
  report.wall_seconds =
      t_end > t_start
          ? std::chrono::duration<double>(t_end - t_start).count()
          : 0.0;
  if (report.wall_seconds > 0.0) {
    report.sessions_per_second =
        static_cast<double>(report.sessions) / report.wall_seconds;
    report.symbols_per_second =
        static_cast<double>(report.symbols) / report.wall_seconds;
  }
  if (!all_latencies.empty()) {
    std::sort(all_latencies.begin(), all_latencies.end());
    const auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(all_latencies.size() - 1));
      return all_latencies[idx];
    };
    report.p50_finish_ms = at(0.50);
    report.p99_finish_ms = at(0.99);
  }
  return report;
}

}  // namespace qols::server
