// qols_server: the network front end over RecognizerService.
//
//   qols_server --port 0 --kind classical-block
//
// Prints "qols_server: listening on <addr>:<port>" once the socket is live
// (scripts parse this line to discover an ephemeral port), serves until
// SIGTERM/SIGINT, then drains gracefully: stops accepting, finishes every
// in-flight session, flushes responses, exits 0.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "qols/server/server.hpp"

namespace {

qols::server::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->shutdown();  // async-signal-safe
}

qols::service::RecognizerKind parse_kind(const std::string& name) {
  using qols::service::RecognizerKind;
  if (name == "classical-block") return RecognizerKind::kClassicalBlock;
  if (name == "classical-full") return RecognizerKind::kClassicalFull;
  if (name == "classical-sample") return RecognizerKind::kClassicalSampling;
  if (name == "classical-bloom") return RecognizerKind::kClassicalBloom;
  if (name == "quantum") return RecognizerKind::kQuantum;
  std::fprintf(stderr, "qols_server: unknown recognizer kind '%s'\n",
               name.c_str());
  std::exit(2);
}

void usage() {
  std::fprintf(
      stderr,
      "usage: qols_server [options]\n"
      "  --address A        bind address (default 127.0.0.1)\n"
      "  --port P           TCP port; 0 = ephemeral (default 0)\n"
      "  --kind K           classical-block|classical-full|classical-sample|"
      "classical-bloom|quantum\n"
      "  --backend B        quantum backend id (dense|structured|auto)\n"
      "  --float            quantum float-amplitude mode\n"
      "  --max-connections N  connection limit (default 1024)\n"
      "  --max-sessions N   session limit (default 131072)\n"
      "  --idle-evict-ms N  spill sessions idle N ms (default 0 = never)\n"
      "  --drain-timeout-ms N  drain hard ceiling (default 30000)\n"
      "  --borrowed-feeds   zero-copy inline feeds (no pooled batching)\n"
      "  --spill-dir D      eviction spill directory\n"
      "  --durable          journal sessions into a manifest under\n"
      "                     --spill-dir (required); recover any prior\n"
      "                     manifest at startup; preserve sessions of\n"
      "                     dropped connections for RESUME\n"
      "  --persist-on-shutdown  with --durable: SIGTERM checkpoints every\n"
      "                     open session instead of finishing it\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  qols::server::Server::Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--address") {
      cfg.bind_address = value();
    } else if (arg == "--port") {
      cfg.port = static_cast<std::uint16_t>(std::stoul(value()));
    } else if (arg == "--kind") {
      cfg.spec.kind = parse_kind(value());
    } else if (arg == "--backend") {
      cfg.spec.backend = value();
    } else if (arg == "--float") {
      cfg.spec.float_amplitudes = true;
    } else if (arg == "--max-connections") {
      cfg.max_connections = std::stoul(value());
    } else if (arg == "--max-sessions") {
      cfg.max_sessions = std::stoull(value());
    } else if (arg == "--idle-evict-ms") {
      cfg.idle_evict_ms = std::stoull(value());
    } else if (arg == "--drain-timeout-ms") {
      cfg.drain_timeout_ms = std::stoull(value());
    } else if (arg == "--borrowed-feeds") {
      cfg.borrowed_feeds = true;
    } else if (arg == "--spill-dir") {
      cfg.spill_dir = value();
    } else if (arg == "--durable") {
      cfg.durable = true;
    } else if (arg == "--persist-on-shutdown") {
      cfg.persist_on_shutdown = true;
    } else {
      usage();
    }
  }

  try {
    qols::server::Server server(cfg);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGPIPE, SIG_IGN);
    if (server.counters().sessions_recovered > 0) {
      std::printf("qols_server: recovered %llu sessions from %s\n",
                  static_cast<unsigned long long>(
                      server.counters().sessions_recovered),
                  cfg.spill_dir.c_str());
    }
    std::printf("qols_server: listening on %s:%u\n", cfg.bind_address.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    server.run();
    const auto& c = server.counters();
    std::printf("qols_server: drained (accepted=%llu closed=%llu "
                "abandoned=%llu persisted=%llu)\n",
                static_cast<unsigned long long>(c.connections_accepted),
                static_cast<unsigned long long>(c.connections_closed),
                static_cast<unsigned long long>(c.sessions_abandoned),
                static_cast<unsigned long long>(c.sessions_persisted));
    g_server = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qols_server: %s\n", e.what());
    return 1;
  }
}
