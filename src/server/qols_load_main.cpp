// qols_load: multi-connection load generator for qols_server.
//
//   qols_load --port 41234 --connections 8 --sessions 10000
//
// Opens every session before finishing any (true concurrency), feeds each
// word in ragged chunks, and prints key=value lines (sessions_per_sec,
// symbols_per_sec, p50/p99 finish latency) that scripts can parse. With
// --verify, every wire verdict is checked bit-for-bit against a direct
// RecognizerService run; any mismatch exits nonzero.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <string>
#include <utility>

#include "qols/server/load_client.hpp"
#include "qols/service/recognizer_service.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: qols_load [options]\n"
      "  --host H           server address (default 127.0.0.1)\n"
      "  --port P           server port (required)\n"
      "  --connections N    concurrent TCP connections (default 8)\n"
      "  --sessions N       total concurrent sessions (default 10000)\n"
      "  --k K              L_disj scale (default 3)\n"
      "  --min-chunk N      smallest FEED chunk, symbols (default 16)\n"
      "  --max-chunk N      largest FEED chunk, symbols (default 512)\n"
      "  --seed S           word/chunk/seed-pool seed (default 1)\n"
      "  --finish-window N  outstanding FINISHes per connection (default 64)\n"
      "  --verify           check verdicts against a direct service run\n"
      "  --phase P          full|open-feed|resume-finish (default full);\n"
      "                     open-feed feeds half of each word and leaves the\n"
      "                     sessions open (restart-smoke first half),\n"
      "                     resume-finish RESUMEs them and feeds the rest\n");
  std::exit(2);
}

qols::server::Phase parse_phase(const std::string& name) {
  using qols::server::Phase;
  if (name == "full") return Phase::kFull;
  if (name == "open-feed") return Phase::kOpenFeed;
  if (name == "resume-finish") return Phase::kResumeFinish;
  std::fprintf(stderr, "qols_load: unknown phase '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  qols::server::LoadOptions opts;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--host") {
      opts.host = value();
    } else if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(std::stoul(value()));
    } else if (arg == "--connections") {
      opts.connections = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--sessions") {
      opts.sessions = std::stoull(value());
    } else if (arg == "--k") {
      opts.k = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--min-chunk") {
      opts.min_chunk = std::stoul(value());
    } else if (arg == "--max-chunk") {
      opts.max_chunk = std::stoul(value());
    } else if (arg == "--seed") {
      opts.seed = std::stoull(value());
    } else if (arg == "--finish-window") {
      opts.finish_window = std::stoul(value());
    } else if (arg == "--verify") {
      verify = true;
      opts.collect_outcomes = true;
    } else if (arg == "--phase") {
      opts.phase = parse_phase(value());
    } else {
      usage();
    }
  }
  if (opts.port == 0) usage();

  try {
    const auto report = qols::server::run_load(opts);
    std::printf("sessions=%llu\n",
                static_cast<unsigned long long>(report.sessions));
    std::printf("symbols=%llu\n",
                static_cast<unsigned long long>(report.symbols));
    std::printf("errors=%llu\n",
                static_cast<unsigned long long>(report.errors));
    std::printf("max_concurrent_sessions=%llu\n",
                static_cast<unsigned long long>(
                    report.max_concurrent_sessions));
    std::printf("wall_seconds=%.6f\n", report.wall_seconds);
    std::printf("sessions_per_sec=%.1f\n", report.sessions_per_second);
    std::printf("symbols_per_sec=%.1f\n", report.symbols_per_second);
    std::printf("p50_finish_ms=%.3f\n", report.p50_finish_ms);
    std::printf("p99_finish_ms=%.3f\n", report.p99_finish_ms);

    bool ok = report.errors == 0 && report.sessions == opts.sessions;
    if (verify && ok) {
      // One direct RecognizerService run per distinct (word, seed) pair —
      // the reference the wire verdicts must match bit for bit.
      using qols::service::RecognizerService;
      RecognizerService svc({});  // default spec == server default
      std::map<std::pair<std::uint64_t, std::uint64_t>,
               RecognizerService::Verdict>
          reference;
      const auto words = qols::server::make_load_words(opts.k, opts.seed);
      std::uint64_t mismatches = 0;
      for (const auto& o : report.outcomes) {
        const std::uint64_t word_ix = o.session_index % 2;
        const std::uint64_t seed =
            qols::server::seed_for_session(opts, o.session_index);
        const auto key = std::make_pair(word_ix, seed);
        auto it = reference.find(key);
        if (it == reference.end()) {
          const auto id = svc.open(seed);
          svc.feed(id, qols::server::word_for_session(words,
                                                      o.session_index));
          it = reference.emplace(key, svc.finish(id)).first;
        }
        const auto& ref = it->second;
        if (o.verdict.accepted != ref.accepted ||
            o.verdict.fully_simulated != ref.fully_simulated ||
            o.verdict.classical_bits != ref.space.classical_bits ||
            o.verdict.qubits != ref.space.qubits) {
          ++mismatches;
        }
      }
      std::printf("verdict_mismatches=%llu\n",
                  static_cast<unsigned long long>(mismatches));
      ok = mismatches == 0;
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qols_load: %s\n", e.what());
    return 1;
  }
}
