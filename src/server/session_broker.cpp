#include "qols/server/session_broker.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "qols/util/json.hpp"

namespace qols::server {

namespace {
namespace json = util::json;
using util::serde::DecodeError;

telemetry::MetricsRegistry& reg() { return telemetry::MetricsRegistry::global(); }
}  // namespace

BrokerShared::BrokerShared(service::RecognizerService& service,
                           Options options)
    : svc(service),
      opts(options),
      frames_in(reg().counter("server.frames_in")),
      frames_out(reg().counter("server.frames_out")),
      errors_sent(reg().counter("server.errors_sent")),
      malformed(reg().counter("server.malformed_frames")),
      resumes(reg().counter("server.sessions_resumed")),
      feed_frame_ns(reg().histogram("server.feed_frame_ns")),
      finish_frame_ns(reg().histogram("server.finish_frame_ns")) {}

SessionBroker::SessionBroker(BrokerShared& shared) : shared_(shared) {}

SessionBroker::~SessionBroker() { abandon_sessions(); }

void SessionBroker::ingest(std::span<const std::uint8_t> bytes) {
  decoder_.append(bytes);
}

SessionBroker::PumpResult SessionBroker::pump(std::vector<std::uint8_t>& out,
                                              std::size_t out_budget,
                                              std::uint64_t now_ms) {
  if (closed_) return PumpResult::kClose;
  for (;;) {
    if (out.size() >= out_budget) {
      return has_buffered_frames() ? PumpResult::kOutBudget
                                   : PumpResult::kIdle;
    }
    std::optional<wire::Frame> frame;
    try {
      frame = decoder_.next();
    } catch (const DecodeError& e) {
      shared_.malformed.add();
      fail(out, wire::ErrorCode::kMalformedFrame, 0, e.what());
      closed_ = true;
      return PumpResult::kClose;
    }
    if (!frame) return PumpResult::kIdle;
    shared_.frames_in.add();
    if (!handle(*frame, out, now_ms)) {
      closed_ = true;
      return PumpResult::kClose;
    }
  }
}

bool SessionBroker::has_buffered_frames() const noexcept {
  return decoder_.frame_available();
}

std::size_t SessionBroker::buffered_bytes() const noexcept {
  return decoder_.buffered_bytes();
}

std::size_t SessionBroker::evict_idle(std::uint64_t cutoff_ms) {
  std::size_t evicted = 0;
  for (auto& [id, stamp] : sessions_) {
    if (stamp > cutoff_ms) continue;
    try {
      if (!shared_.svc.evicted(id)) {
        shared_.svc.evict(id);
        ++evicted;
      }
    } catch (const std::exception&) {
      // Cannot snapshot (e.g. a gate-sink quantum machine): park the stamp
      // so the sweep stops re-trying until the session is touched again.
      stamp = std::numeric_limits<std::uint64_t>::max();
    }
  }
  return evicted;
}

std::size_t SessionBroker::abandon_sessions() noexcept {
  if (shared_.opts.preserve_on_disconnect) return release_sessions();
  std::size_t n = 0;
  for (const auto& [id, stamp] : sessions_) {
    (void)stamp;
    shared_.owned.erase(id);
    try {
      shared_.svc.finish(id);
      ++n;
    } catch (const std::exception&) {
      // Session already gone; nothing to reclaim.
    }
  }
  sessions_.clear();
  return n;
}

std::size_t SessionBroker::release_sessions() noexcept {
  const std::size_t n = sessions_.size();
  for (const auto& [id, stamp] : sessions_) {
    (void)stamp;
    shared_.owned.erase(id);
  }
  sessions_.clear();
  return n;
}

bool SessionBroker::fail(std::vector<std::uint8_t>& out, wire::ErrorCode code,
                         std::uint64_t session, std::string message) {
  wire::append_error(out, {code, session, std::move(message)});
  shared_.errors_sent.add();
  shared_.frames_out.add();
  return !wire::error_is_fatal(code);
}

bool SessionBroker::handle(const wire::Frame& frame,
                           std::vector<std::uint8_t>& out,
                           std::uint64_t now_ms) {
  using wire::ErrorCode;
  using wire::FrameType;

  if (!hello_done_ && frame.type != FrameType::kHello) {
    return fail(out, ErrorCode::kProtocolError, 0,
                "first frame must be HELLO");
  }

  switch (frame.type) {
    case FrameType::kHello: {
      if (hello_done_) {
        return fail(out, ErrorCode::kProtocolError, 0, "duplicate HELLO");
      }
      wire::Hello hello;
      try {
        hello = wire::read_hello(frame.payload);
      } catch (const DecodeError& e) {
        shared_.malformed.add();
        return fail(out, ErrorCode::kMalformedFrame, 0, e.what());
      }
      if (hello.version < wire::kMinProtocolVersion ||
          hello.version > wire::kProtocolVersion) {
        return fail(out, ErrorCode::kBadVersion, 0,
                    "server speaks protocol versions " +
                        std::to_string(wire::kMinProtocolVersion) + ".." +
                        std::to_string(wire::kProtocolVersion));
      }
      const auto kind = static_cast<std::uint8_t>(
          shared_.svc.config().spec.kind);
      if (hello.kind_tag != wire::kAnyKind && hello.kind_tag != kind) {
        return fail(out, ErrorCode::kSpecMismatch, 0,
                    "server serves " +
                        service::recognizer_kind_name(
                            shared_.svc.config().spec.kind));
      }
      hello_done_ = true;
      version_ = hello.version;
      wire::HelloOk ok;
      // Echo the client's version: the conversation proceeds at the LOWER
      // of the two, so a v1 client never sees a v2-only frame.
      ok.version = hello.version;
      ok.kind = kind;
      ok.float_amplitudes = shared_.svc.config().spec.float_amplitudes;
      ok.max_sessions = shared_.opts.max_sessions;
      wire::append_hello_ok(out, ok);
      shared_.frames_out.add();
      return true;
    }

    case FrameType::kOpen: {
      wire::Open open;
      try {
        open = wire::read_open(frame.payload);
      } catch (const DecodeError& e) {
        shared_.malformed.add();
        return fail(out, ErrorCode::kMalformedFrame, 0, e.what());
      }
      if (shared_.draining) {
        return fail(out, ErrorCode::kDraining, open.session,
                    "server is draining");
      }
      if (shared_.svc.open_sessions() >= shared_.opts.max_sessions) {
        return fail(out, ErrorCode::kOverLimit, open.session,
                    "session limit reached");
      }
      try {
        shared_.svc.open_at(open.session, open.seed);
      } catch (const std::invalid_argument&) {
        return fail(out, ErrorCode::kSessionExists, open.session,
                    "session id already open");
      }
      sessions_[open.session] = now_ms;
      shared_.owned.insert(open.session);
      wire::append_open_ok(out, {open.session});
      shared_.frames_out.add();
      return true;
    }

    case FrameType::kResume: {
      if (version_ < 2) {
        return fail(out, ErrorCode::kProtocolError, 0,
                    "RESUME requires protocol version 2");
      }
      wire::Resume resume;
      try {
        resume = wire::read_resume(frame.payload);
      } catch (const DecodeError& e) {
        shared_.malformed.add();
        return fail(out, ErrorCode::kMalformedFrame, 0, e.what());
      }
      if (sessions_.contains(resume.session)) {
        return fail(out, ErrorCode::kNotResumable, resume.session,
                    "session already attached to this connection");
      }
      if (shared_.owned.contains(resume.session)) {
        return fail(out, ErrorCode::kNotResumable, resume.session,
                    "session owned by a live connection");
      }
      try {
        // Probe only — the session revives lazily on its first FEED/FINISH.
        shared_.svc.evicted(resume.session);
      } catch (const std::out_of_range&) {
        return fail(out, ErrorCode::kUnknownSession, resume.session,
                    "no such session to resume");
      }
      sessions_[resume.session] = now_ms;
      shared_.owned.insert(resume.session);
      shared_.resumes.add();
      wire::append_resume_ok(out, {resume.session});
      shared_.frames_out.add();
      return true;
    }

    case FrameType::kFeed: {
      wire::FeedView feed;
      try {
        feed = wire::read_feed(frame.payload);
      } catch (const DecodeError& e) {
        shared_.malformed.add();
        return fail(out, ErrorCode::kMalformedFrame, 0, e.what());
      }
      const auto it = sessions_.find(feed.session);
      if (it == sessions_.end()) {
        return fail(out, ErrorCode::kUnknownSession, feed.session,
                    "session not open on this connection");
      }
      {
        telemetry::ScopedTimer timer(shared_.feed_frame_ns);
        if (shared_.opts.borrowed_feeds) {
          shared_.svc.feed_borrowed(feed.session, feed.symbols);
        } else {
          shared_.svc.feed(feed.session, feed.symbols);
        }
      }
      it->second = now_ms;
      return true;  // FEED is fire-and-forget: no response frame
    }

    case FrameType::kFinish: {
      wire::Finish fin;
      try {
        fin = wire::read_finish(frame.payload);
      } catch (const DecodeError& e) {
        shared_.malformed.add();
        return fail(out, ErrorCode::kMalformedFrame, 0, e.what());
      }
      const auto it = sessions_.find(fin.session);
      if (it == sessions_.end()) {
        return fail(out, ErrorCode::kUnknownSession, fin.session,
                    "session not open on this connection");
      }
      service::RecognizerService::Verdict verdict;
      {
        telemetry::ScopedTimer timer(shared_.finish_frame_ns);
        verdict = shared_.svc.finish(fin.session);
      }
      sessions_.erase(it);
      shared_.owned.erase(fin.session);
      wire::WireVerdict wv;
      wv.session = fin.session;
      wv.accepted = verdict.accepted;
      wv.fully_simulated = verdict.fully_simulated;
      wv.classical_bits = verdict.space.classical_bits;
      wv.qubits = verdict.space.qubits;
      wire::append_verdict(out, wv);
      shared_.frames_out.add();
      return true;
    }

    case FrameType::kStats: {
      if (!frame.payload.empty()) {
        shared_.malformed.add();
        return fail(out, ErrorCode::kMalformedFrame, 0,
                    "STATS carries no payload");
      }
      const auto stats = shared_.svc.stats();
      auto doc = json::Value::object();
      auto& svc = doc.set("service", json::Value::object());
      svc.set("sessions_open",
              static_cast<std::uint64_t>(shared_.svc.open_sessions()));
      svc.set("buffered_symbols", shared_.svc.buffered_symbols());
      svc.set("sessions_opened", stats.sessions_opened);
      svc.set("sessions_finished", stats.sessions_finished);
      svc.set("symbols_ingested", stats.symbols_ingested);
      svc.set("flushes", stats.flushes);
      svc.set("busy_seconds", stats.busy_seconds);
      svc.set("evictions", stats.evictions);
      svc.set("revives", stats.revives);
      svc.set("spill_bytes_written", stats.spill_bytes_written);
      svc.set("spill_bytes_read", stats.spill_bytes_read);
      svc.set("migrations", stats.migrations);
      svc.set("recovered_sessions", stats.recovered_sessions);
      auto& conn = doc.set("connection", json::Value::object());
      conn.set("open_sessions",
               static_cast<std::uint64_t>(sessions_.size()));
      conn.set("draining", shared_.draining);
      if (shared_.stats_hook) shared_.stats_hook(doc);
      wire::append_text(out, FrameType::kStatsText, doc.dump(0));
      shared_.frames_out.add();
      return true;
    }

    case FrameType::kMetrics: {
      if (!frame.payload.empty()) {
        shared_.malformed.add();
        return fail(out, ErrorCode::kMalformedFrame, 0,
                    "METRICS carries no payload");
      }
      std::ostringstream os;
      telemetry::render_prometheus(os);
      wire::append_text(out, FrameType::kMetricsText, os.str());
      shared_.frames_out.add();
      return true;
    }

    case FrameType::kHelloOk:
    case FrameType::kOpenOk:
    case FrameType::kVerdict:
    case FrameType::kStatsText:
    case FrameType::kMetricsText:
    case FrameType::kResumeOk:
    case FrameType::kError:
      return fail(out, ErrorCode::kProtocolError, 0,
                  "server-to-client frame sent by client");
  }
  return fail(out, ErrorCode::kProtocolError, 0, "unknown frame type");
}

}  // namespace qols::server
