#include "qols/server/wire.hpp"

#include <cstring>

namespace qols::server::wire {

namespace serde = util::serde;

bool error_is_fatal(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadVersion:
    case ErrorCode::kSpecMismatch:
    case ErrorCode::kMalformedFrame:
    case ErrorCode::kProtocolError:
      return true;
    case ErrorCode::kUnknownSession:
    case ErrorCode::kSessionExists:
    case ErrorCode::kOverLimit:
    case ErrorCode::kDraining:
    case ErrorCode::kNotResumable:
      return false;
  }
  return true;
}

const char* frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kOpen: return "OPEN";
    case FrameType::kFeed: return "FEED";
    case FrameType::kFinish: return "FINISH";
    case FrameType::kStats: return "STATS";
    case FrameType::kMetrics: return "METRICS";
    case FrameType::kResume: return "RESUME";
    case FrameType::kResumeOk: return "RESUME_OK";
    case FrameType::kHelloOk: return "HELLO_OK";
    case FrameType::kOpenOk: return "OPEN_OK";
    case FrameType::kVerdict: return "VERDICT";
    case FrameType::kStatsText: return "STATS_TEXT";
    case FrameType::kMetricsText: return "METRICS_TEXT";
    case FrameType::kError: return "ERROR";
  }
  return "UNKNOWN";
}

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadVersion: return "bad-version";
    case ErrorCode::kSpecMismatch: return "spec-mismatch";
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kProtocolError: return "protocol-error";
    case ErrorCode::kUnknownSession: return "unknown-session";
    case ErrorCode::kSessionExists: return "session-exists";
    case ErrorCode::kOverLimit: return "over-limit";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kNotResumable: return "not-resumable";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Encoding

namespace {

void append_header(std::vector<std::uint8_t>& out, FrameType type,
                   std::size_t payload_len) {
  const auto len = static_cast<std::uint32_t>(payload_len);
  out.push_back(static_cast<std::uint8_t>(len));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(static_cast<std::uint8_t>(type));
}

void append_payload_frame(std::vector<std::uint8_t>& out, FrameType type,
                          const serde::ByteWriter& w) {
  append_header(out, type, w.size());
  out.insert(out.end(), w.bytes().begin(), w.bytes().end());
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload) {
  append_header(out, type, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
}

void append_hello(std::vector<std::uint8_t>& out, const Hello& h) {
  serde::ByteWriter w;
  w.u32(h.version);
  w.u8(h.kind_tag);
  append_payload_frame(out, FrameType::kHello, w);
}

void append_hello_ok(std::vector<std::uint8_t>& out, const HelloOk& h) {
  serde::ByteWriter w;
  w.u32(h.version);
  w.u8(h.kind);
  w.b(h.float_amplitudes);
  w.u64(h.max_sessions);
  append_payload_frame(out, FrameType::kHelloOk, w);
}

void append_open(std::vector<std::uint8_t>& out, const Open& o) {
  serde::ByteWriter w;
  w.u64(o.session);
  w.u64(o.seed);
  append_payload_frame(out, FrameType::kOpen, w);
}

void append_open_ok(std::vector<std::uint8_t>& out, const OpenOk& o) {
  serde::ByteWriter w;
  w.u64(o.session);
  append_payload_frame(out, FrameType::kOpenOk, w);
}

void append_feed(std::vector<std::uint8_t>& out, std::uint64_t session,
                 std::span<const stream::Symbol> symbols) {
  append_header(out, FrameType::kFeed, 8 + symbols.size());
  serde::ByteWriter w;
  w.u64(session);
  out.insert(out.end(), w.bytes().begin(), w.bytes().end());
  const auto* raw = reinterpret_cast<const std::uint8_t*>(symbols.data());
  out.insert(out.end(), raw, raw + symbols.size());
}

void append_finish(std::vector<std::uint8_t>& out, const Finish& f) {
  serde::ByteWriter w;
  w.u64(f.session);
  append_payload_frame(out, FrameType::kFinish, w);
}

void append_resume(std::vector<std::uint8_t>& out, const Resume& r) {
  serde::ByteWriter w;
  w.u64(r.session);
  append_payload_frame(out, FrameType::kResume, w);
}

void append_resume_ok(std::vector<std::uint8_t>& out, const ResumeOk& r) {
  serde::ByteWriter w;
  w.u64(r.session);
  append_payload_frame(out, FrameType::kResumeOk, w);
}

void append_verdict(std::vector<std::uint8_t>& out, const WireVerdict& v) {
  serde::ByteWriter w;
  w.u64(v.session);
  w.b(v.accepted);
  w.b(v.fully_simulated);
  w.u64(v.classical_bits);
  w.u64(v.qubits);
  append_payload_frame(out, FrameType::kVerdict, w);
}

void append_text(std::vector<std::uint8_t>& out, FrameType type,
                 std::string_view text) {
  append_header(out, type, text.size());
  const auto* raw = reinterpret_cast<const std::uint8_t*>(text.data());
  out.insert(out.end(), raw, raw + text.size());
}

void append_error(std::vector<std::uint8_t>& out, const Error& e) {
  serde::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(e.code));
  w.u64(e.session);
  append_header(out, FrameType::kError, w.size() + e.message.size());
  out.insert(out.end(), w.bytes().begin(), w.bytes().end());
  const auto* raw = reinterpret_cast<const std::uint8_t*>(e.message.data());
  out.insert(out.end(), raw, raw + e.message.size());
}

// ---------------------------------------------------------------------------
// Decoding

Hello read_hello(std::span<const std::uint8_t> payload) {
  serde::ByteReader r(payload);
  Hello h;
  h.version = r.u32();
  h.kind_tag = r.u8();
  r.expect_exhausted();
  return h;
}

HelloOk read_hello_ok(std::span<const std::uint8_t> payload) {
  serde::ByteReader r(payload);
  HelloOk h;
  h.version = r.u32();
  h.kind = r.u8();
  h.float_amplitudes = r.b();
  h.max_sessions = r.u64();
  r.expect_exhausted();
  return h;
}

Open read_open(std::span<const std::uint8_t> payload) {
  serde::ByteReader r(payload);
  Open o;
  o.session = r.u64();
  o.seed = r.u64();
  r.expect_exhausted();
  return o;
}

OpenOk read_open_ok(std::span<const std::uint8_t> payload) {
  serde::ByteReader r(payload);
  OpenOk o;
  o.session = r.u64();
  r.expect_exhausted();
  return o;
}

FeedView read_feed(std::span<const std::uint8_t> payload) {
  serde::ByteReader r(payload);
  FeedView f;
  f.session = r.u64();
  const std::span<const std::uint8_t> raw = payload.subspan(8);
  for (const std::uint8_t b : raw) {
    if (b > static_cast<std::uint8_t>(stream::Symbol::kSep)) {
      throw serde::DecodeError("feed symbol byte out of range");
    }
  }
  // Symbol has uint8_t underlying type and every byte was range-checked, so
  // the payload bytes ARE the symbols — borrowed, never copied.
  f.symbols = {reinterpret_cast<const stream::Symbol*>(raw.data()),
               raw.size()};
  return f;
}

Finish read_finish(std::span<const std::uint8_t> payload) {
  serde::ByteReader r(payload);
  Finish f;
  f.session = r.u64();
  r.expect_exhausted();
  return f;
}

Resume read_resume(std::span<const std::uint8_t> payload) {
  serde::ByteReader r(payload);
  Resume res;
  res.session = r.u64();
  r.expect_exhausted();
  return res;
}

ResumeOk read_resume_ok(std::span<const std::uint8_t> payload) {
  serde::ByteReader r(payload);
  ResumeOk res;
  res.session = r.u64();
  r.expect_exhausted();
  return res;
}

WireVerdict read_verdict(std::span<const std::uint8_t> payload) {
  serde::ByteReader r(payload);
  WireVerdict v;
  v.session = r.u64();
  v.accepted = r.b();
  v.fully_simulated = r.b();
  v.classical_bits = r.u64();
  v.qubits = r.u64();
  r.expect_exhausted();
  return v;
}

std::string read_text(std::span<const std::uint8_t> payload) {
  return std::string(reinterpret_cast<const char*>(payload.data()),
                     payload.size());
}

Error read_error(std::span<const std::uint8_t> payload) {
  serde::ByteReader r(payload);
  Error e;
  const std::uint8_t code = r.u8();
  if (code < static_cast<std::uint8_t>(ErrorCode::kBadVersion) ||
      code > static_cast<std::uint8_t>(ErrorCode::kNotResumable)) {
    throw serde::DecodeError("unknown error code");
  }
  e.code = static_cast<ErrorCode>(code);
  e.session = r.u64();
  e.message.assign(reinterpret_cast<const char*>(payload.data()) + 9,
                   payload.size() - 9);
  return e;
}

// ---------------------------------------------------------------------------
// FrameDecoder

void FrameDecoder::append(std::span<const std::uint8_t> bytes) {
  // Compact consumed bytes before growing — spans handed out by next() are
  // documented to die here.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t len = std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
                            (std::uint32_t{p[2]} << 16) |
                            (std::uint32_t{p[3]} << 24);
  if (len > kMaxFramePayload) {
    throw serde::DecodeError("frame payload length exceeds limit");
  }
  if (avail < kFrameHeaderSize + len) return std::nullopt;
  Frame f;
  f.type = static_cast<FrameType>(p[4]);
  f.payload = {buf_.data() + pos_ + kFrameHeaderSize, len};
  pos_ += kFrameHeaderSize + len;
  return f;
}

bool FrameDecoder::frame_available() const noexcept {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderSize) return false;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::uint32_t len = std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
                            (std::uint32_t{p[2]} << 16) |
                            (std::uint32_t{p[3]} << 24);
  if (len > kMaxFramePayload) return true;  // next() will throw
  return avail >= kFrameHeaderSize + len;
}

}  // namespace qols::server::wire
