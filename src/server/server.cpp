#include "qols/server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>
#include <utility>

namespace qols::server {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

struct Server::Connection {
  Connection(BrokerShared& shared, int fd_in) : fd(fd_in), broker(shared) {}

  int fd = -1;
  SessionBroker broker;
  std::vector<std::uint8_t> write_buf;
  std::size_t write_pos = 0;
  std::uint32_t registered = 0;  ///< epoll events currently armed
  bool paused = false;           ///< reads off: write buffer over the cap
  bool closing = false;          ///< flush write_buf, then close

  std::size_t pending_out() const noexcept {
    return write_buf.size() - write_pos;
  }
  void compact() {
    if (write_pos == 0) return;
    write_buf.erase(write_buf.begin(),
                    write_buf.begin() + static_cast<std::ptrdiff_t>(write_pos));
    write_pos = 0;
  }
};

std::uint64_t Server::now_ms() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Server::Server(const Config& config) : config_(config) {
  service::RecognizerService::Config svc_cfg;
  svc_cfg.spec = config_.spec;
  svc_cfg.flush_threshold = config_.flush_threshold;
  svc_cfg.pool = config_.pool;
  svc_cfg.spill_dir = config_.spill_dir;
  svc_cfg.durable = config_.durable;
  svc_ = std::make_unique<service::RecognizerService>(std::move(svc_cfg));
  if (svc_->pending_recovery()) {
    // A prior incarnation left a manifest in spill_dir: adopt its sessions
    // before the first connection arrives. Typed recovery errors propagate —
    // a damaged directory must refuse to serve, never mis-serve.
    const auto report = svc_->recover();
    counters_.sessions_recovered = report.sessions_recovered;
  }

  BrokerShared::Options opts;
  opts.max_sessions = config_.max_sessions;
  opts.borrowed_feeds = config_.borrowed_feeds;
  opts.preserve_on_disconnect = config_.durable;
  shared_ = std::make_unique<BrokerShared>(*svc_, opts);
  shared_->stats_hook = [this](util::json::Value& doc) {
    auto& srv = doc.set("server", util::json::Value::object());
    srv.set("connections",
            static_cast<std::uint64_t>(connections_.size()));
    srv.set("connections_accepted", counters_.connections_accepted);
    srv.set("connections_closed", counters_.connections_closed);
    srv.set("accept_rejected", counters_.accept_rejected);
    srv.set("backpressure_pauses", counters_.backpressure_pauses);
    srv.set("sessions_abandoned", counters_.sessions_abandoned);
    srv.set("idle_evictions", counters_.idle_evictions);
    srv.set("bytes_in", counters_.bytes_in);
    srv.set("bytes_out", counters_.bytes_out);
    srv.set("sessions_recovered", counters_.sessions_recovered);
    srv.set("sessions_persisted", counters_.sessions_persisted);
    srv.set("draining", draining_);
  };

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");

  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw_errno("eventfd");
  epoll_event wev{};
  wev.events = EPOLLIN;
  wev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wev) < 0) {
    throw_errno("epoll_ctl(wake)");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    throw_errno("inet_pton (IPv4 address expected)");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  if (::listen(listen_fd_, config_.backlog) < 0) throw_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_event lev{};
  lev.events = EPOLLIN;
  lev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &lev) < 0) {
    throw_errno("epoll_ctl(listen)");
  }
}

Server::~Server() {
  // Brokers abandon their sessions in their destructors; connections_ must
  // die before shared_/svc_, which member order already guarantees — but
  // fds are ours to close.
  for (const auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Server::shutdown() noexcept {
  shutdown_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  // Best effort: if the write fails the sweep timeout still notices.
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::update_interest(Connection& conn) {
  std::uint32_t want = 0;
  if (!conn.closing && !conn.paused) want |= EPOLLIN;
  if (conn.pending_out() > 0) want |= EPOLLOUT;
  if (want == conn.registered) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.registered = want;
  }
}

void Server::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  counters_.sessions_abandoned += it->second->broker.abandon_sessions();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  ++counters_.connections_closed;
}

bool Server::flush_writes(Connection& conn) {
  while (conn.pending_out() > 0) {
    const ssize_t n =
        ::send(conn.fd, conn.write_buf.data() + conn.write_pos,
               conn.pending_out(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_pos += static_cast<std::size_t>(n);
      counters_.bytes_out += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer is gone (EPIPE, ECONNRESET, ...)
  }
  conn.compact();
  return true;
}

void Server::pump_connection(Connection& conn, std::uint64_t now) {
  for (;;) {
    conn.compact();
    const auto result =
        conn.broker.pump(conn.write_buf, config_.write_buffer_cap, now);
    if (result == SessionBroker::PumpResult::kClose) {
      conn.closing = true;
      break;
    }
    if (!flush_writes(conn)) {
      close_connection(conn.fd);
      return;
    }
    if (!conn.broker.has_buffered_frames()) break;
    // Frames remain because the write buffer is full: wait for EPOLLOUT to
    // drain below half the cap before decoding more.
    if (conn.pending_out() >= config_.write_buffer_cap / 2) break;
  }
  const bool pause = !conn.closing &&
                     (conn.pending_out() >= config_.write_buffer_cap ||
                      conn.broker.has_buffered_frames());
  if (pause && !conn.paused) ++counters_.backpressure_pauses;
  conn.paused = pause;
  if (conn.closing && conn.pending_out() == 0) {
    close_connection(conn.fd);
    return;
  }
  update_interest(conn);
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept errors (ECONNABORTED, EMFILE) drop the peer
    }
    if (connections_.size() >= config_.max_connections) {
      ::close(fd);
      ++counters_.accept_rejected;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                   sizeof(config_.so_sndbuf));
    }
    auto conn = std::make_unique<Connection>(*shared_, fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conn->registered = EPOLLIN;
    connections_.emplace(fd, std::move(conn));
    ++counters_.connections_accepted;
  }
}

void Server::connection_ready(Connection& conn, std::uint32_t events,
                              std::uint64_t now) {
  const int fd = conn.fd;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_connection(fd);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!flush_writes(conn)) {
      close_connection(fd);
      return;
    }
    if (conn.closing && conn.pending_out() == 0) {
      close_connection(fd);
      return;
    }
    // Room again: resume decoding frames parked by backpressure.
    if (conn.broker.has_buffered_frames() &&
        conn.pending_out() < config_.write_buffer_cap / 2) {
      pump_connection(conn, now);
      if (connections_.find(fd) == connections_.end()) return;
    } else {
      conn.paused = conn.pending_out() >= config_.write_buffer_cap ||
                    conn.broker.has_buffered_frames();
      update_interest(conn);
    }
  }
  if ((events & EPOLLIN) != 0 && !conn.closing) {
    std::vector<std::uint8_t> buf(config_.read_chunk);
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf.data(), buf.size(), 0);
      if (n > 0) {
        counters_.bytes_in += static_cast<std::uint64_t>(n);
        conn.broker.ingest({buf.data(), static_cast<std::size_t>(n)});
        pump_connection(conn, now);
        if (connections_.find(fd) == connections_.end()) return;
        if (conn.paused || conn.closing) return;  // backpressure: stop reading
        continue;
      }
      if (n == 0) {  // orderly peer close
        close_connection(fd);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close_connection(fd);
      return;
    }
  }
}

void Server::begin_drain(std::uint64_t now) {
  draining_ = true;
  shared_->draining = true;
  drain_deadline_ms_ = now + config_.drain_timeout_ms;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::sweep(std::uint64_t now) {
  if (config_.idle_evict_ms > 0 && now >= config_.idle_evict_ms) {
    const std::uint64_t cutoff = now - config_.idle_evict_ms;
    for (const auto& [fd, conn] : connections_) {
      counters_.idle_evictions += conn->broker.evict_idle(cutoff);
    }
  }
  if (!draining_) return;
  const bool expired = now >= drain_deadline_ms_;
  // A persisting shutdown does not wait for verdicts: once a connection's
  // ingested frames are processed and its responses flushed, it closes (the
  // broker releases its sessions for the post-drain persist()).
  const bool persisting = config_.durable && config_.persist_on_shutdown;
  std::vector<int> doomed;
  for (const auto& [fd, conn] : connections_) {
    const bool quiesced = !conn->broker.has_buffered_frames() &&
                          conn->pending_out() == 0;
    const bool done =
        quiesced && (persisting || conn->broker.open_sessions() == 0);
    if (done || expired) doomed.push_back(fd);
  }
  for (const int fd : doomed) close_connection(fd);
}

void Server::run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!(draining_ && connections_.empty())) {
    const bool timed = draining_ || config_.idle_evict_ms > 0;
    const int timeout = timed ? config_.sweep_interval_ms : -1;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    const std::uint64_t now = now_ms();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        accept_ready();
      } else if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const auto r =
            ::read(wake_fd_, &drained, sizeof(drained));
      } else {
        // The connection may have been closed by an earlier event in this
        // same batch; look it up fresh.
        const auto it = connections_.find(fd);
        if (it != connections_.end()) {
          connection_ready(*it->second, events[i].events, now);
        }
      }
    }
    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      begin_drain(now_ms());
    }
    sweep(now_ms());
  }
  if (config_.durable && config_.persist_on_shutdown) {
    // Every connection is gone (their brokers released, not finished, their
    // sessions): checkpoint the lot for the next incarnation to recover().
    counters_.sessions_persisted = svc_->persist();
  }
}

}  // namespace qols::server
