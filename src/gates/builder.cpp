#include "qols/gates/builder.hpp"

#include <cassert>
#include <stdexcept>

namespace qols::gates {

using quantum::ControlTerm;
using quantum::Gate;
using quantum::GateKind;

void TapeWriterSink::emit(const Gate& g) {
  if (!tape_.empty()) tape_.push_back('#');
  tape_ += std::to_string(g.a);
  tape_.push_back('#');
  tape_ += std::to_string(g.b);
  tape_.push_back('#');
  tape_ += std::to_string(static_cast<unsigned>(g.kind));
}

CircuitBuilder::CircuitBuilder(GateSink& sink, unsigned data_qubits,
                               unsigned ancilla_budget)
    : sink_(sink), data_qubits_(data_qubits), ancilla_budget_(ancilla_budget) {}

void CircuitBuilder::emit(GateKind kind, unsigned a, unsigned b) {
  sink_.emit(Gate{kind, a, b});
  ++emitted_;
}

unsigned CircuitBuilder::alloc_ancilla() {
  if (anc_in_use_ >= ancilla_budget_) {
    throw std::runtime_error("CircuitBuilder: ancilla budget exhausted");
  }
  const unsigned label = data_qubits_ + anc_in_use_;
  ++anc_in_use_;
  if (anc_in_use_ > anc_high_water_) anc_high_water_ = anc_in_use_;
  return label;
}

void CircuitBuilder::free_ancilla(unsigned label) {
  assert(anc_in_use_ > 0 && label == data_qubits_ + anc_in_use_ - 1 &&
         "ancillas are stack-ordered");
  (void)label;
  --anc_in_use_;
}

void CircuitBuilder::h(unsigned q) { emit(GateKind::kH, q, q == 0 ? 1 : 0); }
void CircuitBuilder::t(unsigned q) { emit(GateKind::kT, q, q == 0 ? 1 : 0); }
void CircuitBuilder::cnot(unsigned c, unsigned tq) {
  emit(GateKind::kCnot, c, tq);
}

void CircuitBuilder::tdg(unsigned q) {
  for (int i = 0; i < 7; ++i) t(q);
}

void CircuitBuilder::s(unsigned q) {
  t(q);
  t(q);
}

void CircuitBuilder::sdg(unsigned q) {
  for (int i = 0; i < 6; ++i) t(q);
}

void CircuitBuilder::z(unsigned q) {
  for (int i = 0; i < 4; ++i) t(q);
}

void CircuitBuilder::x(unsigned q) {
  h(q);
  z(q);
  h(q);
}

void CircuitBuilder::cz(unsigned a, unsigned b) {
  h(b);
  cnot(a, b);
  h(b);
}

void CircuitBuilder::ccx(unsigned c1, unsigned c2, unsigned target) {
  // Standard 7-T decomposition (Nielsen & Chuang fig. 4.9).
  h(target);
  cnot(c2, target);
  tdg(target);
  cnot(c1, target);
  t(target);
  cnot(c2, target);
  tdg(target);
  cnot(c1, target);
  t(c2);
  t(target);
  h(target);
  cnot(c1, c2);
  t(c1);
  tdg(c2);
  cnot(c1, c2);
}

void CircuitBuilder::ccz(unsigned c1, unsigned c2, unsigned c3) {
  h(c3);
  ccx(c1, c2, c3);
  h(c3);
}

void CircuitBuilder::mcx(std::span<const unsigned> controls, unsigned target) {
  const std::size_t n = controls.size();
  if (n == 0) {
    x(target);
    return;
  }
  if (n == 1) {
    cnot(controls[0], target);
    return;
  }
  if (n == 2) {
    ccx(controls[0], controls[1], target);
    return;
  }
  // AND-ladder: anc[0] = c0 & c1; anc[j] = anc[j-1] & c_{j+1}; CNOT into
  // target from the last ancilla; uncompute in reverse so every borrowed
  // ancilla returns to |0>.
  std::vector<unsigned> ladder;
  ladder.reserve(n - 1);
  ladder.push_back(alloc_ancilla());
  ccx(controls[0], controls[1], ladder.back());
  for (std::size_t j = 2; j < n; ++j) {
    const unsigned next = alloc_ancilla();
    ccx(ladder.back(), controls[j], next);
    ladder.push_back(next);
  }
  cnot(ladder.back(), target);
  for (std::size_t j = n; j-- > 2;) {
    const unsigned top = ladder.back();
    ladder.pop_back();
    ccx(ladder.back(), controls[j], top);
    free_ancilla(top);
  }
  ccx(controls[0], controls[1], ladder.back());
  free_ancilla(ladder.back());
}

void CircuitBuilder::mcz(std::span<const unsigned> qubits) {
  const std::size_t n = qubits.size();
  assert(n >= 1);
  if (n == 1) {
    z(qubits[0]);
    return;
  }
  if (n == 2) {
    cz(qubits[0], qubits[1]);
    return;
  }
  // Z on the last qubit controlled on the rest: conjugate an mcx with H.
  const unsigned target = qubits[n - 1];
  h(target);
  mcx(qubits.first(n - 1), target);
  h(target);
}

void CircuitBuilder::mcx_pattern(std::span<const ControlTerm> controls,
                                 unsigned target) {
  for (const ControlTerm& c : controls) {
    if (!c.value) x(c.qubit);
  }
  std::vector<unsigned> plain;
  plain.reserve(controls.size());
  for (const ControlTerm& c : controls) plain.push_back(c.qubit);
  mcx(plain, target);
  for (const ControlTerm& c : controls) {
    if (!c.value) x(c.qubit);
  }
}

void CircuitBuilder::mcz_pattern(std::span<const ControlTerm> controls) {
  assert(!controls.empty());
  for (const ControlTerm& c : controls) {
    if (!c.value) x(c.qubit);
  }
  std::vector<unsigned> plain;
  plain.reserve(controls.size());
  for (const ControlTerm& c : controls) plain.push_back(c.qubit);
  mcz(plain);
  for (const ControlTerm& c : controls) {
    if (!c.value) x(c.qubit);
  }
}

void CircuitBuilder::h_range(unsigned first, unsigned count) {
  for (unsigned q = first; q < first + count; ++q) h(q);
}

void CircuitBuilder::reflect_zero(unsigned first, unsigned count) {
  assert(count >= 1);
  // X-conjugated multi-controlled Z flips exactly the all-zero assignment,
  // which equals -S_k; the global -1 is unobservable.
  std::vector<unsigned> qubits;
  qubits.reserve(count);
  for (unsigned q = first; q < first + count; ++q) qubits.push_back(q);
  for (unsigned q : qubits) x(q);
  mcz(qubits);
  for (unsigned q : qubits) x(q);
}

}  // namespace qols::gates
