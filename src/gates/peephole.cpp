#include "qols/gates/peephole.hpp"

#include <optional>
#include <unordered_map>
#include <vector>

namespace qols::gates {

using quantum::Circuit;
using quantum::Gate;
using quantum::GateKind;

namespace {

// One rewrite pass. Returns the rewritten gate list and updates stats.
// Strategy: scan left to right, keeping for every qubit the index of the
// last surviving gate that touches it. A new gate can cancel against that
// gate precisely when they match (HH, CNOT pair) because by construction no
// surviving gate in between touches the shared qubits. T-runs are folded by
// counting consecutive T's per qubit (T commutes with nothing else we track,
// but "consecutive on this qubit" is exactly what last-touch gives us).
std::vector<Gate> rewrite_pass(const std::vector<Gate>& in,
                               PeepholeStats& stats, bool& changed) {
  std::vector<std::optional<Gate>> out;
  out.reserve(in.size());
  // last_touch[q] = index into `out` of the latest surviving gate on qubit q.
  std::unordered_map<std::uint32_t, std::size_t> last_touch;
  // t_run[q] = indices in `out` of the current uninterrupted T-run on q.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> t_run;

  auto touch = [&](std::uint32_t q, std::size_t idx) { last_touch[q] = idx; };
  auto break_t_run = [&](std::uint32_t q) { t_run[q].clear(); };

  for (const Gate& g : in) {
    if (g.is_identity()) {
      ++stats.identities_dropped;
      changed = true;
      continue;
    }
    switch (g.kind) {
      case GateKind::kT: {
        auto& run = t_run[g.a];
        out.push_back(g);
        run.push_back(out.size() - 1);
        touch(g.a, out.size() - 1);
        if (run.size() == 8) {  // T^8 = I exactly
          for (std::size_t idx : run) out[idx].reset();
          stats.t_gates_cancelled += 8;
          run.clear();
          changed = true;
        }
        break;
      }
      case GateKind::kH: {
        const auto it = last_touch.find(g.a);
        if (it != last_touch.end() && out[it->second].has_value()) {
          const Gate& prev = *out[it->second];
          if (prev.kind == GateKind::kH && prev.a == g.a) {
            out[it->second].reset();
            last_touch.erase(it);
            ++stats.h_pairs_cancelled;
            break_t_run(g.a);
            changed = true;
            break;
          }
        }
        out.push_back(g);
        touch(g.a, out.size() - 1);
        break_t_run(g.a);
        break;
      }
      case GateKind::kCnot: {
        const auto ia = last_touch.find(g.a);
        const auto ib = last_touch.find(g.b);
        if (ia != last_touch.end() && ib != last_touch.end() &&
            ia->second == ib->second && out[ia->second].has_value()) {
          const Gate& prev = *out[ia->second];
          if (prev.kind == GateKind::kCnot && prev.a == g.a && prev.b == g.b) {
            out[ia->second].reset();
            last_touch.erase(g.a);
            last_touch.erase(g.b);
            ++stats.cnot_pairs_cancelled;
            break_t_run(g.a);
            break_t_run(g.b);
            changed = true;
            break;
          }
        }
        out.push_back(g);
        touch(g.a, out.size() - 1);
        touch(g.b, out.size() - 1);
        break_t_run(g.a);
        break_t_run(g.b);
        break;
      }
    }
  }

  std::vector<Gate> compact;
  compact.reserve(out.size());
  for (const auto& slot : out) {
    if (slot) compact.push_back(*slot);
  }
  return compact;
}

}  // namespace

Circuit peephole_optimize(const Circuit& input, PeepholeStats* stats_out) {
  PeepholeStats stats;
  stats.gates_before = input.size();
  std::vector<Gate> gates = input.gates();
  bool changed = true;
  while (changed) {
    changed = false;
    gates = rewrite_pass(gates, stats, changed);
    ++stats.passes;
  }
  stats.gates_after = gates.size();
  Circuit out;
  for (const Gate& g : gates) out.add(g);
  if (stats_out != nullptr) *stats_out = stats;
  return out;
}

}  // namespace qols::gates
