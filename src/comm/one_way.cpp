#include "qols/comm/one_way.hpp"

#include <bit>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace qols::comm {

std::uint64_t distinct_rows(const BooleanPredicate& f, unsigned m) {
  if (m > 14) {
    throw std::invalid_argument("distinct_rows: m too large for exact census");
  }
  const std::uint64_t side = std::uint64_t{1} << m;
  std::unordered_set<std::string> rows;
  std::string row((side + 7) / 8, '\0');
  for (std::uint64_t x = 0; x < side; ++x) {
    std::fill(row.begin(), row.end(), '\0');
    for (std::uint64_t y = 0; y < side; ++y) {
      if (f(x, y)) row[y >> 3] |= static_cast<char>(1 << (y & 7));
    }
    rows.insert(row);
  }
  return rows.size();
}

unsigned one_way_det_cc(const BooleanPredicate& f, unsigned m) {
  const std::uint64_t n = distinct_rows(f, m);
  return n <= 1 ? 0 : static_cast<unsigned>(std::bit_width(n - 1));
}

bool disj_predicate(std::uint64_t x, std::uint64_t y) { return (x & y) == 0; }

bool eq_predicate(std::uint64_t x, std::uint64_t y) { return x == y; }

bool ip_predicate(std::uint64_t x, std::uint64_t y) {
  return (std::popcount(x & y) & 1) != 0;
}

bool index_predicate_m(std::uint64_t x, std::uint64_t y, unsigned m) {
  return ((x >> (y % m)) & 1) != 0;
}

}  // namespace qols::comm
