#include "qols/comm/protocols.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "qols/quantum/state_vector.hpp"
#include "qols/util/modmath.hpp"

namespace qols::comm {
namespace {

// log2(m) for the index labels exchanged by classical protocols.
std::uint64_t index_bits(std::uint64_t m) {
  return std::bit_width(m - 1);
}

// Derives k from m = 2^{2k}; throws unless m is an even power of two >= 4.
unsigned k_from_m(std::uint64_t m) {
  if (m < 4 || !std::has_single_bit(m)) {
    throw std::invalid_argument("BCW protocol needs m = 2^{2k}, k >= 1");
  }
  const unsigned log2m = static_cast<unsigned>(std::countr_zero(m));
  if (log2m % 2 != 0) {
    throw std::invalid_argument("BCW protocol needs m = 2^{2k} (even log2)");
  }
  return log2m / 2;
}

}  // namespace

DisjOutcome disj_trivial(const util::BitVec& x, const util::BitVec& y,
                         util::Rng& /*rng*/) {
  DisjOutcome out;
  out.cost.add_classical(x.size());  // Alice -> Bob: all of x
  out.declared_disjoint = (x.and_popcount(y) == 0);
  out.cost.add_classical(1);  // Bob -> Alice: the answer bit
  return out;
}

DisjOutcome disj_sampling(const util::BitVec& x, const util::BitVec& y,
                          std::uint64_t samples, util::Rng& rng) {
  DisjOutcome out;
  const std::uint64_t m = x.size();
  assert(y.size() == m);
  bool hit = false;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const std::uint64_t i = rng.below(m);
    if (x.get(i) && y.get(i)) hit = true;
  }
  // Alice's message: `samples` (index, x-bit) pairs.
  out.cost.add_classical(samples * (index_bits(m) + 1));
  out.declared_disjoint = !hit;
  out.cost.add_classical(1);
  return out;
}

DisjOutcome disj_bcw_quantum(const util::BitVec& x, const util::BitVec& y,
                             util::Rng& rng) {
  DisjOutcome out;
  const std::uint64_t m = x.size();
  assert(y.size() == m);
  const unsigned k = k_from_m(m);
  const unsigned data_qubits = 2 * k + 2;  // index register + h + l
  const unsigned h = 2 * k;
  const unsigned l = 2 * k + 1;

  // The register is physically a single simulated state; "sending" it means
  // the other party may now apply its local oracle. Each transfer is
  // metered as data_qubits qubits of communication.
  quantum::StateVector reg(data_qubits);
  reg.apply_h_range(0, 2 * k);

  auto alice_vx = [&] {
    for (std::uint64_t i = 0; i < m; ++i) {
      if (x.get(i)) reg.apply_x_on_index(0, 2 * k, i, h);
    }
  };
  auto bob_wy = [&] {
    for (std::uint64_t i = 0; i < m; ++i) {
      if (y.get(i)) reg.apply_z_on_index(0, 2 * k, i, h);
    }
  };
  auto bob_ry = [&] {
    for (std::uint64_t i = 0; i < m; ++i) {
      if (y.get(i)) reg.apply_cx_on_index(0, 2 * k, i, h, l);
    }
  };
  auto alice_diffusion = [&] {
    reg.apply_h_range(0, 2 * k);
    reg.apply_reflect_zero(0, 2 * k);
    reg.apply_h_range(0, 2 * k);
  };

  // BBHT: iteration count j uniform in {0, ..., 2^k - 1}.
  const std::uint64_t j = rng.below(std::uint64_t{1} << k);
  for (std::uint64_t it = 0; it < j; ++it) {
    alice_vx();                            // Alice applies V_x ...
    out.cost.add_quantum(data_qubits);     // ... and sends the register
    bob_wy();                              // Bob applies W_y ...
    out.cost.add_quantum(data_qubits);     // ... and sends it back
    alice_vx();                            // V_x W_y V_x = phase oracle
    alice_diffusion();                     // and the diffusion, locally
  }
  alice_vx();                          // step 4: V_x ...
  out.cost.add_quantum(data_qubits);   // ... send to Bob
  bob_ry();                            // Bob writes x_i AND y_i into l
  const bool found = reg.measure(l, rng);
  out.declared_disjoint = !found;
  out.cost.add_classical(1);  // Bob announces the outcome
  return out;
}

DisjOutcome disj_bcw_amplified(const util::BitVec& x, const util::BitVec& y,
                               unsigned attempts, util::Rng& rng) {
  DisjOutcome total;
  total.declared_disjoint = true;
  for (unsigned a = 0; a < attempts; ++a) {
    DisjOutcome one = disj_bcw_quantum(x, y, rng);
    total.cost.classical_bits += one.cost.classical_bits;
    total.cost.qubits += one.cost.qubits;
    total.cost.messages += one.cost.messages;
    if (!one.declared_disjoint) {
      total.declared_disjoint = false;
      break;  // a witness was found; no need to keep searching
    }
  }
  return total;
}

std::uint64_t bcw_worst_case_qubits(unsigned k) noexcept {
  const std::uint64_t transfers = 3 * (std::uint64_t{1} << k) + 2;
  return transfers * (2 * k + 2);
}

EqOutcome eq_fingerprint(const util::BitVec& x, const util::BitVec& y,
                         util::Rng& rng) {
  EqOutcome out;
  const std::uint64_t m = x.size();
  assert(y.size() == m);
  // Pick p just above m^2 (the paper's 2^{4k} for m = 2^{2k}); for general m
  // use the first prime in (m^2, 2 m^2).
  const auto p_opt = util::first_prime_in_open_interval(m * m, 2 * m * m + 2);
  const std::uint64_t p = p_opt.value();
  const std::uint64_t t = rng.below(p);
  std::uint64_t fx = 0, fy = 0, tp = 1 % p;
  for (std::uint64_t i = 0; i < m; ++i) {
    if (x.get(i)) fx = util::addmod(fx, tp, p);
    if (y.get(i)) fy = util::addmod(fy, tp, p);
    tp = util::mulmod(tp, t, p);
  }
  // Alice -> Bob: p, t, F_x(t) — three field elements.
  const std::uint64_t field_bits = std::bit_width(p);
  out.cost.add_classical(3 * field_bits);
  out.declared_equal = (fx == fy);
  out.cost.add_classical(1);
  return out;
}

}  // namespace qols::comm
