#include "qols/machine/online_recognizer.hpp"

#include <array>
#include <cmath>

#include "qols/telemetry/registry.hpp"

namespace qols::machine {

/// View size for the zero-copy fast path: large enough that mapped input
/// reaches feed_chunk in page-cache-sized runs, bounded so a recognizer
/// never sees a span larger than 1 MiB of symbols at once.
inline constexpr std::size_t kRunStreamViewChunk = std::size_t{1} << 20;

namespace {

/// Transport-path accounting: which of run_stream's two delivery paths
/// carried how many symbols. Resolved once; recording is per-CHUNK, so the
/// overhead is amortized over up to 2^20 symbols per op.
struct StreamTelemetry {
  telemetry::Counter& borrowed_chunks;
  telemetry::Counter& borrowed_symbols;
  telemetry::Counter& copied_chunks;
  telemetry::Counter& copied_symbols;

  static StreamTelemetry& site() {
    auto& reg = telemetry::MetricsRegistry::global();
    static StreamTelemetry t{reg.counter("stream.borrowed_chunks"),
                             reg.counter("stream.borrowed_symbols"),
                             reg.counter("stream.copied_chunks"),
                             reg.counter("stream.copied_symbols")};
    return t;
  }
};

}  // namespace

bool run_stream(stream::SymbolStream& input, OnlineRecognizer& rec) {
  StreamTelemetry& telem = StreamTelemetry::site();
  // Zero-copy fast path: streams that can lend a view of their own storage
  // (MappedFileStream) skip the transport buffer entirely. The first nullopt
  // means "unsupported" and drops us to the copying loop for good.
  if (auto view = input.view_chunk(kRunStreamViewChunk)) {
    while (!view->empty()) {
      telem.borrowed_chunks.add();
      telem.borrowed_symbols.add(view->size());
      rec.feed_chunk(*view);
      view = input.view_chunk(kRunStreamViewChunk);
      if (!view) break;  // stream revoked view support mid-run: fall back
    }
    if (view) return rec.finish();
  }
  std::array<stream::Symbol, kRunStreamChunk> buffer;
  while (true) {
    const std::size_t n = input.next_chunk(buffer);
    if (n == 0) break;
    telem.copied_chunks.add();
    telem.copied_symbols.add(n);
    rec.feed_chunk(std::span<const stream::Symbol>(buffer.data(), n));
  }
  return rec.finish();
}

void snapshot_header(util::serde::ByteWriter& w, std::uint8_t kind_tag) {
  w.u8(kSnapshotMagic0);
  w.u8(kSnapshotMagic1);
  w.u8(kSnapshotVersion);
  w.u8(kind_tag);
}

void check_snapshot_header(util::serde::ByteReader& r, std::uint8_t kind_tag,
                           const char* who) {
  const std::string prefix(who);
  if (r.u8() != kSnapshotMagic0 || r.u8() != kSnapshotMagic1) {
    throw util::serde::DecodeError(prefix + ": not a recognizer snapshot");
  }
  if (r.u8() != kSnapshotVersion) {
    throw util::serde::DecodeError(prefix + ": unknown snapshot version");
  }
  if (r.u8() != kind_tag) {
    throw util::serde::DecodeError(prefix +
                                   ": snapshot is for a different recognizer");
  }
}

double log2_configuration_bound(double n, double s, double alphabet,
                                double states) noexcept {
  return std::log2(n) + std::log2(s) + s * std::log2(alphabet) +
         std::log2(states);
}

}  // namespace qols::machine
