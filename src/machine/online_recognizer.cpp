#include "qols/machine/online_recognizer.hpp"

#include <cmath>

namespace qols::machine {

bool run_stream(stream::SymbolStream& input, OnlineRecognizer& rec) {
  while (auto s = input.next()) rec.feed(*s);
  return rec.finish();
}

double log2_configuration_bound(double n, double s, double alphabet,
                                double states) noexcept {
  return std::log2(n) + std::log2(s) + s * std::log2(alphabet) +
         std::log2(states);
}

}  // namespace qols::machine
