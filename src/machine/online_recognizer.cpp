#include "qols/machine/online_recognizer.hpp"

#include <array>
#include <cmath>

namespace qols::machine {

bool run_stream(stream::SymbolStream& input, OnlineRecognizer& rec) {
  std::array<stream::Symbol, kRunStreamChunk> buffer;
  while (true) {
    const std::size_t n = input.next_chunk(buffer);
    if (n == 0) break;
    rec.feed_chunk(std::span<const stream::Symbol>(buffer.data(), n));
  }
  return rec.finish();
}

double log2_configuration_bound(double n, double s, double alphabet,
                                double states) noexcept {
  return std::log2(n) + std::log2(s) + s * std::log2(alphabet) +
         std::log2(states);
}

}  // namespace qols::machine
