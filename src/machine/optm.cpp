#include "qols/machine/optm.hpp"

#include <cassert>
#include <set>
#include <stdexcept>

namespace qols::machine {

namespace {

InSym to_insym(std::optional<stream::Symbol> s) noexcept {
  if (!s) return InSym::kEof;
  switch (*s) {
    case stream::Symbol::kZero:
      return InSym::kZero;
    case stream::Symbol::kOne:
      return InSym::kOne;
    case stream::Symbol::kSep:
      return InSym::kSep;
  }
  return InSym::kEof;
}

}  // namespace

OptmProgram::OptmProgram(std::uint32_t num_states)
    : num_states_(num_states),
      accepting_(num_states, false),
      table_(static_cast<std::size_t>(num_states) * 4 * 4) {
  if (num_states == 0) {
    throw std::invalid_argument("OptmProgram: need at least one state");
  }
}

void OptmProgram::set_start(std::uint32_t state) {
  assert(state < num_states_);
  start_ = state;
}

void OptmProgram::set_accepting(std::uint32_t state, bool accepting) {
  assert(state < num_states_);
  accepting_[state] = accepting;
}

void OptmProgram::set_transition(std::uint32_t state, InSym in, WorkSym work,
                                 const OptmAction& action) {
  set_transition(state, in, work, action, action);
}

void OptmProgram::set_transition(std::uint32_t state, InSym in, WorkSym work,
                                 const OptmAction& on_heads,
                                 const OptmAction& on_tails) {
  assert(state < num_states_);
  table_[key(state, in, work)] = {on_heads, on_tails};
}

bool OptmProgram::is_accepting(std::uint32_t state) const noexcept {
  return state < num_states_ && accepting_[state];
}

const std::pair<OptmAction, OptmAction>* OptmProgram::lookup(
    std::uint32_t state, InSym in, WorkSym work) const noexcept {
  const auto& slot = table_[key(state, in, work)];
  return slot ? &*slot : nullptr;
}

OptmRun run_optm(const OptmProgram& program, stream::SymbolStream& input,
                 util::Rng& rng, std::uint64_t max_steps) {
  OptmRun result;
  std::uint32_t state = program.start_state();
  InSym in = to_insym(input.next());
  std::vector<WorkSym> tape(1, WorkSym::kBlank);
  std::vector<bool> written(1, false);
  std::size_t head = 0;

  for (; result.steps < max_steps; ++result.steps) {
    const auto* t = program.lookup(state, in, tape[head]);
    if (t == nullptr) {
      // Undefined transition: the machine halts in its current state.
      result.halted = true;
      result.accepted = program.is_accepting(state);
      break;
    }
    const bool branching = !(t->first.next_state == t->second.next_state &&
                             t->first.write == t->second.write &&
                             t->first.move == t->second.move &&
                             t->first.advance_input == t->second.advance_input &&
                             t->first.halt == t->second.halt);
    const OptmAction& a = branching ? (rng.coin() ? t->second : t->first)
                                    : t->first;
    if (branching) ++result.coins;

    tape[head] = a.write;
    if (!written[head]) {
      written[head] = true;
      ++result.work_cells;
    }
    if (a.move == Move::kLeft) {
      if (head == 0) {  // fell off the left end: treated as a rejecting halt
        result.halted = true;
        result.accepted = false;
        break;
      }
      --head;
    } else if (a.move == Move::kRight) {
      ++head;
      if (head == tape.size()) {
        tape.push_back(WorkSym::kBlank);
        written.push_back(false);
      }
    }
    if (a.advance_input) in = to_insym(input.next());
    state = a.next_state;
    if (a.halt) {
      result.halted = true;
      result.accepted = program.is_accepting(state);
      ++result.steps;
      break;
    }
  }
  return result;
}

double optm_acceptance_rate(const OptmProgram& program,
                            const std::string& input, std::uint64_t trials,
                            std::uint64_t seed, std::uint64_t max_steps) {
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < trials; ++i) {
    util::Rng rng(seed + i);
    stream::StringStream s(input);
    if (run_optm(program, s, rng, max_steps).accepted) ++accepted;
  }
  return static_cast<double>(accepted) / static_cast<double>(trials);
}

std::uint64_t count_reachable_configurations(
    const OptmProgram& program, const std::vector<std::string>& inputs,
    std::uint64_t max_steps, unsigned max_coins) {
  std::set<std::string> seen;

  struct Node {
    std::uint32_t state;
    std::size_t input_pos;
    std::size_t head;
    std::string tape;  // one char per cell: '0','1','#','_'
    std::uint64_t steps;
    unsigned coins;
  };
  static constexpr char kChars[] = {'0', '1', '#', '_'};

  for (const std::string& word : inputs) {
    // Pruning must be per input word: the same configuration has different
    // successors under different words (the input tape is part of the
    // machine's environment, not of the configuration). The global `seen`
    // set is only the census.
    std::set<std::string> visited_this_word;
    std::vector<Node> frontier;
    frontier.push_back(Node{program.start_state(), 0, 0, "_", 0, 0});
    while (!frontier.empty()) {
      Node node = frontier.back();
      frontier.pop_back();

      std::string digest = std::to_string(node.state);
      digest += ':';
      digest += std::to_string(node.input_pos);
      digest += ':';
      digest += std::to_string(node.head);
      digest += ':';
      digest += node.tape;
      seen.insert(digest);
      if (!visited_this_word.insert(digest).second) {
        continue;  // already explored under THIS word
      }
      if (node.steps >= max_steps) continue;

      const InSym in = node.input_pos < word.size()
                           ? to_insym(stream::symbol_from_char(word[node.input_pos]))
                           : InSym::kEof;
      const WorkSym work = static_cast<WorkSym>(
          std::string_view("01#_").find(node.tape[node.head]));
      const auto* t = program.lookup(node.state, in, work);
      if (t == nullptr) continue;  // halts here

      auto expand = [&](const OptmAction& a, unsigned coin_cost) {
        if (node.coins + coin_cost > max_coins) return;
        Node next = node;
        next.coins += coin_cost;
        next.steps += 1;
        next.tape[next.head] = kChars[static_cast<unsigned>(a.write)];
        if (a.move == Move::kLeft) {
          if (next.head == 0) return;  // falls off: halt, no new config
          --next.head;
        } else if (a.move == Move::kRight) {
          ++next.head;
          if (next.head == next.tape.size()) next.tape.push_back('_');
        }
        if (a.advance_input && next.input_pos <= word.size()) ++next.input_pos;
        next.state = a.next_state;
        if (!a.halt) frontier.push_back(next);
      };

      const bool branching =
          !(t->first.next_state == t->second.next_state &&
            t->first.write == t->second.write && t->first.move == t->second.move &&
            t->first.advance_input == t->second.advance_input &&
            t->first.halt == t->second.halt);
      if (branching) {
        expand(t->first, 1);
        expand(t->second, 1);
      } else {
        expand(t->first, 0);
      }
    }
  }
  return seen.size();
}

// ---------------------------------------------------------------------------
// Example programs
// ---------------------------------------------------------------------------

OptmProgram make_parity_machine() {
  // States: 0 = even so far, 1 = odd so far (accepting at EOF),
  // 2 = explicit dead reject (reached on '#', which the language forbids —
  // merely leaving the transition undefined would halt in the CURRENT state,
  // wrongly accepting words like "1#").
  OptmProgram p(3);
  p.set_start(0);
  p.set_accepting(1);
  for (std::uint32_t s : {0u, 1u}) {
    OptmAction keep{.next_state = s, .write = WorkSym::kBlank,
                    .move = Move::kStay, .advance_input = true, .halt = false};
    OptmAction flip{.next_state = 1 - s, .write = WorkSym::kBlank,
                    .move = Move::kStay, .advance_input = true, .halt = false};
    p.set_transition(s, InSym::kZero, WorkSym::kBlank, keep);
    p.set_transition(s, InSym::kOne, WorkSym::kBlank, flip);
    OptmAction stop{.next_state = s, .write = WorkSym::kBlank,
                    .move = Move::kStay, .advance_input = false, .halt = true};
    p.set_transition(s, InSym::kEof, WorkSym::kBlank, stop);
    OptmAction die{.next_state = 2, .write = WorkSym::kBlank,
                   .move = Move::kStay, .advance_input = false, .halt = true};
    p.set_transition(s, InSym::kSep, WorkSym::kBlank, die);
  }
  return p;
}

OptmProgram make_copy_compare_machine() {
  // States: 0 = init (plant the left-end marker), 1 = copy u to the work
  // tape, 2 = rewind to the marker, 3 = compare, 4 = accept.
  OptmProgram p(5);
  p.set_start(0);
  p.set_accepting(4);

  // 0: write '#' marker at cell 0, move right, stay on the same input symbol.
  for (InSym in : {InSym::kZero, InSym::kOne, InSym::kSep, InSym::kEof}) {
    p.set_transition(0, in, WorkSym::kBlank,
                     OptmAction{.next_state = 1, .write = WorkSym::kSep,
                                .move = Move::kRight, .advance_input = false,
                                .halt = false});
  }
  // 1: copy bits until the separator.
  p.set_transition(1, InSym::kZero, WorkSym::kBlank,
                   OptmAction{.next_state = 1, .write = WorkSym::kZero,
                              .move = Move::kRight, .advance_input = true,
                              .halt = false});
  p.set_transition(1, InSym::kOne, WorkSym::kBlank,
                   OptmAction{.next_state = 1, .write = WorkSym::kOne,
                              .move = Move::kRight, .advance_input = true,
                              .halt = false});
  p.set_transition(1, InSym::kSep, WorkSym::kBlank,
                   OptmAction{.next_state = 2, .write = WorkSym::kBlank,
                              .move = Move::kLeft, .advance_input = true,
                              .halt = false});
  // 2: rewind left until the marker, then step right into compare.
  for (WorkSym w : {WorkSym::kZero, WorkSym::kOne}) {
    p.set_transition(2, InSym::kZero, w,
                     OptmAction{.next_state = 2, .write = w, .move = Move::kLeft,
                                .advance_input = false, .halt = false});
    p.set_transition(2, InSym::kOne, w,
                     OptmAction{.next_state = 2, .write = w, .move = Move::kLeft,
                                .advance_input = false, .halt = false});
    p.set_transition(2, InSym::kEof, w,
                     OptmAction{.next_state = 2, .write = w, .move = Move::kLeft,
                                .advance_input = false, .halt = false});
  }
  for (InSym in : {InSym::kZero, InSym::kOne, InSym::kEof}) {
    p.set_transition(2, in, WorkSym::kSep,
                     OptmAction{.next_state = 3, .write = WorkSym::kSep,
                                .move = Move::kRight, .advance_input = false,
                                .halt = false});
  }
  // 3: compare input bit with work bit, cell by cell.
  p.set_transition(3, InSym::kZero, WorkSym::kZero,
                   OptmAction{.next_state = 3, .write = WorkSym::kZero,
                              .move = Move::kRight, .advance_input = true,
                              .halt = false});
  p.set_transition(3, InSym::kOne, WorkSym::kOne,
                   OptmAction{.next_state = 3, .write = WorkSym::kOne,
                              .move = Move::kRight, .advance_input = true,
                              .halt = false});
  // End: input exhausted exactly when the copied string is (blank cell).
  p.set_transition(3, InSym::kEof, WorkSym::kBlank,
                   OptmAction{.next_state = 4, .write = WorkSym::kBlank,
                              .move = Move::kStay, .advance_input = false,
                              .halt = true});
  return p;
}

OptmProgram make_coin_machine(unsigned flips) {
  assert(flips >= 1);
  // States 0..flips-1 flip coins; state flips = accept; flips+1 = reject.
  OptmProgram p(flips + 2);
  p.set_start(0);
  p.set_accepting(flips);
  const std::uint32_t accept = flips;
  const std::uint32_t reject = flips + 1;
  for (std::uint32_t s = 0; s < flips; ++s) {
    const std::uint32_t next = s + 1 == flips ? accept : s + 1;
    for (InSym in : {InSym::kZero, InSym::kOne, InSym::kSep, InSym::kEof}) {
      OptmAction lose{.next_state = reject, .write = WorkSym::kBlank,
                      .move = Move::kStay, .advance_input = false, .halt = true};
      OptmAction win{.next_state = next, .write = WorkSym::kBlank,
                     .move = Move::kStay, .advance_input = false,
                     .halt = next == accept};
      p.set_transition(s, in, WorkSym::kBlank, lose, win);
    }
  }
  return p;
}

}  // namespace qols::machine
