#include "qols/grover/bbht.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "qols/quantum/state_vector.hpp"

namespace qols::grover {

BbhtResult bbht_search(std::uint64_t n_items,
                       const std::function<bool(std::uint64_t)>& oracle,
                       util::Rng& rng, double lambda) {
  if (n_items < 2 || !std::has_single_bit(n_items)) {
    throw std::invalid_argument("bbht_search: n_items must be a power of two");
  }
  const unsigned index_qubits =
      static_cast<unsigned>(std::countr_zero(n_items));

  // Precompute the marked set once; the "oracle call" accounting below
  // charges Grover iterations, matching the BBHT cost model.
  std::vector<std::uint64_t> marked;
  for (std::uint64_t i = 0; i < n_items; ++i) {
    if (oracle(i)) marked.push_back(i);
  }

  BbhtResult result;
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  // Give up after the standard cutoff when nothing has been found; with
  // t >= 1 the expected work is far below this.
  const std::uint64_t max_total_iterations =
      static_cast<std::uint64_t>(std::ceil(9.0 * sqrt_n)) + 8;

  double m = 1.0;
  while (result.oracle_calls < max_total_iterations) {
    ++result.rounds;
    const auto m_int = static_cast<std::uint64_t>(m);
    const std::uint64_t j = m_int <= 1 ? 0 : rng.below(m_int);

    quantum::StateVector reg(index_qubits);
    reg.apply_h_range(0, index_qubits);
    for (std::uint64_t it = 0; it < j; ++it) {
      // Phase oracle: flip the sign of every marked index.
      reg.apply_phase_flip_set(marked);
      reg.apply_h_range(0, index_qubits);
      reg.apply_reflect_zero(0, index_qubits);
      reg.apply_h_range(0, index_qubits);
      ++result.oracle_calls;
    }
    const std::uint64_t outcome = reg.sample_basis(rng);
    ++result.measurements;
    if (oracle(outcome)) {
      result.found = true;
      result.index = outcome;
      return result;
    }
    m = std::min(lambda * m, sqrt_n);
  }
  return result;  // presumed no solution
}

}  // namespace qols::grover
