#include "qols/grover/analysis.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace qols::grover {

double angle(std::uint64_t t, std::uint64_t n) noexcept {
  assert(n >= 1 && t <= n);
  const double ratio = static_cast<double>(t) / static_cast<double>(n);
  return std::asin(std::sqrt(ratio));
}

double success_after(std::uint64_t j, double theta) noexcept {
  const double s = std::sin((2.0 * static_cast<double>(j) + 1.0) * theta);
  return s * s;
}

double average_success(std::uint64_t m_rounds, double theta) noexcept {
  assert(m_rounds >= 1);
  if (theta <= 0.0) return 0.0;
  const double sin2t = std::sin(2.0 * theta);
  if (std::abs(sin2t) < 1e-15) {
    // theta = pi/2 (t = N): every term sin^2((2j+1) pi/2) = 1.
    return 1.0;
  }
  const double m = static_cast<double>(m_rounds);
  return 0.5 - std::sin(4.0 * m * theta) / (4.0 * m * sin2t);
}

double average_success_by_sum(std::uint64_t m_rounds, double theta) noexcept {
  double acc = 0.0;
  for (std::uint64_t j = 0; j < m_rounds; ++j) acc += success_after(j, theta);
  return acc / static_cast<double>(m_rounds);
}

double a3_rejection_probability(unsigned k, std::uint64_t t) noexcept {
  const std::uint64_t n = std::uint64_t{1} << (2 * k);
  const std::uint64_t m = std::uint64_t{1} << k;
  return average_success(m, angle(t, n));
}

std::uint64_t repetitions_for_error(double p_reject, double eps) noexcept {
  assert(p_reject > 0.0 && p_reject <= 1.0 && eps > 0.0 && eps < 1.0);
  if (p_reject >= 1.0) return 1;
  // (1 - p)^r <= eps  <=>  r >= log(eps) / log(1 - p).
  const double r = std::log(eps) / std::log1p(-p_reject);
  return static_cast<std::uint64_t>(std::ceil(r));
}

}  // namespace qols::grover
