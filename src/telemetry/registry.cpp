#include "qols/telemetry/registry.hpp"

#include <ostream>
#include <stdexcept>
#include <vector>

namespace qols::telemetry {

using util::json::Value;

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally immortal: instrument references are cached in
  // function-local statics and constructor-bound members all over the
  // library; a registry destroyed during static teardown would turn those
  // into dangling references.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

#if QOLS_TELEMETRY_ENABLED

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// names map onto that by flattening separators.
std::string prometheus_name(std::string_view name) {
  std::string out = "qols_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

template <typename Map>
bool contains(const Map& m, std::string_view name) {
  return m.find(name) != m.end();
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  if (contains(gauges_, name) || contains(histograms_, name)) {
    throw std::invalid_argument("telemetry: '" + std::string(name) +
                                "' is already registered as another kind");
  }
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  if (contains(counters_, name) || contains(histograms_, name)) {
    throw std::invalid_argument("telemetry: '" + std::string(name) +
                                "' is already registered as another kind");
  }
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  if (contains(counters_, name) || contains(gauges_, name)) {
    throw std::invalid_argument("telemetry: '" + std::string(name) +
                                "' is already registered as another kind");
  }
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::reset_all() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Value MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  auto doc = Value::object();
  doc.set("compiled", true);
  doc.set("enabled", enabled());

  auto counters = Value::object();
  for (const auto& [name, c] : counters_) counters.set(name, c->value());
  doc.set("counters", std::move(counters));

  auto gauges = Value::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  doc.set("gauges", std::move(gauges));

  auto histograms = Value::object();
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    auto rec = Value::object();
    rec.set("count", s.count);
    rec.set("sum", s.sum);
    rec.set("mean", s.mean());
    rec.set("p50", s.p50());
    rec.set("p90", s.p90());
    rec.set("p99", s.p99());
    auto buckets = Value::array();
    for (unsigned i = 0; i < kHistogramBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      auto pair = Value::array();
      pair.push_back(histogram_bucket_bound(i));
      pair.push_back(s.buckets[i]);
      buckets.push_back(std::move(pair));
    }
    rec.set("buckets", std::move(buckets));
    histograms.set(name, std::move(rec));
  }
  doc.set("histograms", std::move(histograms));
  return doc;
}

void MetricsRegistry::render_prometheus(std::ostream& os) const {
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " counter\n" << p << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prometheus_name(name);
    const HistogramSnapshot s = h->snapshot();
    os << "# TYPE " << p << " histogram\n";
    // Cumulative buckets up to the highest populated one; +Inf always.
    unsigned top = 0;
    for (unsigned i = 0; i < kHistogramBuckets; ++i) {
      if (s.buckets[i] != 0) top = i;
    }
    std::uint64_t cum = 0;
    for (unsigned i = 0; i <= top; ++i) {
      cum += s.buckets[i];
      os << p << "_bucket{le=\"" << histogram_bucket_bound(i) << "\"} " << cum
         << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << s.count << "\n"
       << p << "_sum " << s.sum << "\n"
       << p << "_count " << s.count << "\n";
  }
}

#else  // telemetry compiled out: one shared no-op instrument per kind

Counter& MetricsRegistry::counter(std::string_view) { return counter_; }
Gauge& MetricsRegistry::gauge(std::string_view) { return gauge_; }
LatencyHistogram& MetricsRegistry::histogram(std::string_view) {
  return histogram_;
}
void MetricsRegistry::reset_all() {}

Value MetricsRegistry::snapshot() const {
  auto doc = Value::object();
  doc.set("compiled", false);
  doc.set("enabled", false);
  doc.set("counters", Value::object());
  doc.set("gauges", Value::object());
  doc.set("histograms", Value::object());
  return doc;
}

void MetricsRegistry::render_prometheus(std::ostream& os) const {
  os << "# qols telemetry compiled out (QOLS_TELEMETRY=OFF)\n";
}

#endif

Value snapshot() { return MetricsRegistry::global().snapshot(); }

void render_prometheus(std::ostream& os) {
  MetricsRegistry::global().render_prometheus(os);
}

SpanSite SpanSite::resolve(std::string_view name) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::string base(name);
  return SpanSite{reg.counter(base + ".calls"), reg.histogram(base + ".ns")};
}

}  // namespace qols::telemetry
