#include "qols/util/modmath.hpp"

#include <cassert>

namespace qols::util {
namespace {

// One Miller-Rabin round: returns true iff n passes for witness a.
bool miller_rabin_round(std::uint64_t n, std::uint64_t a, std::uint64_t d,
                        int r) noexcept {
  std::uint64_t x = powmod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 1; i < r; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime_u64(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // n - 1 = d * 2^r with d odd.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1ULL) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (!miller_rabin_round(n, a, d, r)) return false;
  }
  return true;
}

std::optional<std::uint64_t> first_prime_in_open_interval(
    std::uint64_t lo, std::uint64_t hi) noexcept {
  for (std::uint64_t c = lo + 1; c < hi; ++c) {
    if (is_prime_u64(c)) return c;
  }
  return std::nullopt;
}

std::uint64_t fingerprint_prime(unsigned k) noexcept {
  return fingerprint_prime_stats(k).prime;
}

PrimeSearchStats fingerprint_prime_stats(unsigned k) noexcept {
  assert(k >= 1 && k <= 15);
  const std::uint64_t lo = 1ULL << (4 * k);
  const std::uint64_t hi = 1ULL << (4 * k + 1);
  PrimeSearchStats stats;
  for (std::uint64_t c = lo + 1; c < hi; ++c) {
    ++stats.candidates_tested;
    if (is_prime_u64(c)) {
      stats.prime = c;
      return stats;
    }
  }
  // Unreachable: Bertrand's postulate guarantees a prime in (m, 2m).
  assert(false && "no prime in (2^{4k}, 2^{4k+1})");
  return stats;
}

}  // namespace qols::util
