#include "qols/util/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace qols::util::json {

Value& Value::set(const std::string& key, Value v) {
  assert(is_object());
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  object_.emplace_back(key, std::move(v));
  return object_.back().second;
}

Value& Value::push_back(Value v) {
  assert(is_array());
  array_.push_back(std::move(v));
  return array_.back();
}

std::size_t Value::size() const noexcept {
  return is_array() ? array_.size() : is_object() ? object_.size() : 0;
}

std::string Value::quote(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out += '"';
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string format_double(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no NaN/Inf
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
  (void)ec;  // 32 bytes always suffice for shortest round-trip form
  std::string s(buf, end);
  // Bare integers would parse back as ints; keep the double-ness visible.
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: out += format_double(double_); break;
    case Kind::kString: out += quote(string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        out += quote(object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace qols::util::json
