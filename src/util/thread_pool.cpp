#include "qols/util/thread_pool.hpp"

#include <algorithm>

namespace qols::util {

namespace {
// Owning pool of the current thread, if it is a pool worker.
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_current_pool == this;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  const std::size_t workers = pool.thread_count();
  if (n <= grain || workers <= 1 || pool.on_worker_thread()) {
    fn(begin, end);
    return;
  }
  // One chunk per worker, but never below the grain size.
  const std::size_t chunk = std::max(grain, (n + workers - 1) / workers);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    pool.submit([&fn, lo, hi] { fn(lo, hi); });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for(ThreadPool::global(), begin, end, grain, fn);
}

}  // namespace qols::util
