#include "qols/util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <ostream>
#include <sstream>

namespace qols::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << '\n';
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os, const std::string& caption) const {
  if (!caption.empty()) os << caption << '\n';
  os << to_text();
}

std::string fmt_f(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_g(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_sci(double v) {
  std::ostringstream os;
  os.precision(3);
  os << v;
  return os.str();
}

}  // namespace qols::util
