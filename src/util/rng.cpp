#include "qols/util/rng.hpp"

namespace qols::util {

std::uint64_t Xoshiro256StarStar::below(std::uint64_t bound) noexcept {
  // Lemire 2019: multiply-shift with rejection of the biased low band.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<bool> Xoshiro256StarStar::bits(std::size_t n) {
  std::vector<bool> out(n);
  std::uint64_t word = 0;
  int have = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (have == 0) {
      word = next();
      have = 64;
    }
    out[i] = (word & 1ULL) != 0;
    word >>= 1;
    --have;
  }
  return out;
}

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      next();
    }
  }
  state_ = acc;
}

}  // namespace qols::util
