#include "qols/util/stats.hpp"

#include <cassert>
#include <cmath>

namespace qols::util {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return n_ == 0 ? 0.0 : std::sqrt(variance() / static_cast<double>(n_));
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) noexcept {
  assert(trials >= 1 && successes <= trials);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  Interval out;
  out.lo = center - margin;
  out.hi = center + margin;
  if (out.lo < 0.0) out.lo = 0.0;
  if (out.hi > 1.0) out.hi = 1.0;
  return out;
}

}  // namespace qols::util
