#include "qols/util/bitvec.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace qols::util {

BitVec::BitVec(std::size_t n, bool fill)
    : size_(n), words_((n + 63) / 64, fill ? ~0ULL : 0ULL) {
  if (fill && (n & 63) != 0) {
    // Clear the tail so equality and popcount are exact.
    words_.back() &= (1ULL << (n & 63)) - 1;
  }
}

BitVec BitVec::from_string(const std::string& s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1') {
      v.set(i, true);
    } else if (s[i] != '0') {
      throw std::invalid_argument("BitVec::from_string: non-binary character");
    }
  }
  return v;
}

BitVec BitVec::random(std::size_t n, Rng& rng) {
  BitVec v(n);
  for (std::size_t w = 0; w < v.words_.size(); ++w) v.words_[w] = rng.next();
  if ((n & 63) != 0) v.words_.back() &= (1ULL << (n & 63)) - 1;
  return v;
}

BitVec BitVec::from_words(std::size_t n, std::vector<std::uint64_t> words) {
  if (words.size() != (n + 63) / 64) {
    throw std::invalid_argument("BitVec::from_words: word count mismatch");
  }
  if ((n & 63) != 0 && !words.empty() &&
      (words.back() & ~((1ULL << (n & 63)) - 1)) != 0) {
    throw std::invalid_argument("BitVec::from_words: nonzero tail bits");
  }
  BitVec v;
  v.size_ = n;
  v.words_ = std::move(words);
  return v;
}

std::size_t BitVec::popcount() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVec::and_popcount(const BitVec& other) const noexcept {
  assert(size_ == other.size_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

std::vector<std::size_t> BitVec::ones() const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      out.push_back(w * 64 + static_cast<std::size_t>(b));
      word &= word - 1;
    }
  }
  return out;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (get(i)) s[i] = '1';
  }
  return s;
}

}  // namespace qols::util
