// qols_fuzz — the differential fuzzing CLI.
//
//   qols_fuzz                                # 10-second soak, seed 1
//   qols_fuzz --budget-seconds 60 --seed 7   # time-boxed CI leg
//   qols_fuzz --cases 100000                 # case-count budget
//   qols_fuzz --replay qf5-...               # re-check one failure token
//   qols_fuzz --float --budget-seconds 30    # float-amplitude quantum soak
//   qols_fuzz --snapshot --cases 100000      # snapshot/resume (P7) on every case
//   qols_fuzz --wire --cases 100000          # frame-level wire (P8) on every case
//   qols_fuzz --crash --budget-seconds 60    # crash/recovery (P9) on every case
//
// Every discrepancy prints both the as-found and the shrunk repro token;
// --token-file additionally writes the shrunk token to a file (CI uploads
// it as an artifact). Exit status: 0 = clean, 1 = discrepancy found or a
// replayed case fails, 2 = usage error.
#include <charconv>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "qols/fuzz/fuzzer.hpp"
#include "qols/fuzz/repro.hpp"
#include "qols/telemetry/instruments.hpp"

namespace {

using namespace qols::fuzz;

void print_usage(std::ostream& os) {
  os << "usage: qols_fuzz [options]\n"
        "  --seed <n>            master seed (default 1)\n"
        "  --cases <n>           stop after n cases\n"
        "  --budget-seconds <s>  stop after s seconds (default 10 when no\n"
        "                        budget is given at all)\n"
        "  --max-failures <n>    stop after n discrepancies (default 4)\n"
        "  --no-shrink           report failures as found, unminimized\n"
        "  --float               force float amplitudes on quantum cases\n"
        "  --snapshot            force the snapshot/resume property (P7) on\n"
        "                        every case, not just the generator's half\n"
        "  --wire                force the frame-level wire property (P8) on\n"
        "                        every case, not just the generator's half\n"
        "  --crash               force the crash/recovery property (P9) on\n"
        "                        every case, not just the generator's half\n"
        "  --token-file <path>   write the first shrunk repro token here\n"
        "  --replay <token>      re-check one case from its repro token\n"
        "  --no-telemetry        runtime-disable telemetry recording (the\n"
        "                        soak itself is telemetry-invariant either\n"
        "                        way; this removes the recording overhead)\n"
        "  --quiet               only the final summary line\n"
        "  --help                this text\n";
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto res =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (res.ec != std::errc{} || res.ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_seconds(const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size() || !(v > 0.0)) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void print_failure(const FuzzFailure& f) {
  std::cerr << "DISCREPANCY [" << f.property << "] " << f.detail << "\n"
            << "  case:   " << describe(f.found) << "\n"
            << "  token:  " << f.token << "\n";
  if (f.minimized_token != f.token) {
    std::cerr << "  shrunk: " << describe(f.minimized) << "\n"
              << "  shrunk token: " << f.minimized_token << "\n";
  }
}

int replay(const std::string& token) {
  FuzzCase c;
  try {
    c = decode_token(token);
  } catch (const std::invalid_argument& e) {
    std::cerr << "qols_fuzz: " << e.what() << "\n";
    return 2;
  }
  const CaseResult result = check_case(c);
  std::cout << "replay " << describe(c) << "\n"
            << "word: " << result.word_len << " symbols, class "
            << word_class_name(result.cls) << "\n";
  if (result.ok()) {
    std::cout << "all properties hold\n";
    return 0;
  }
  for (const Discrepancy& d : result.issues) {
    std::cout << "FAIL [" << d.property << "] " << d.detail << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions opts;
  bool quiet = false;
  bool budget_given = false;
  std::optional<std::string> replay_token;
  std::optional<std::string> token_file;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "qols_fuzz: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--float") {
      opts.force_float = true;
    } else if (arg == "--snapshot") {
      opts.force_snapshot = true;
    } else if (arg == "--wire") {
      opts.force_wire = true;
    } else if (arg == "--crash") {
      opts.force_crash = true;
    } else if (arg == "--no-telemetry") {
      qols::telemetry::set_enabled(false);
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return 2;
      const auto n = parse_u64(v);
      if (!n) {
        std::cerr << "qols_fuzz: --seed wants an unsigned integer\n";
        return 2;
      }
      opts.seed = *n;
    } else if (arg == "--cases") {
      const char* v = value();
      if (!v) return 2;
      const auto n = parse_u64(v);
      if (!n || *n == 0) {
        std::cerr << "qols_fuzz: --cases wants a positive integer\n";
        return 2;
      }
      opts.max_cases = *n;
      budget_given = true;
    } else if (arg == "--budget-seconds") {
      const char* v = value();
      if (!v) return 2;
      const auto s = parse_seconds(v);
      if (!s) {
        std::cerr << "qols_fuzz: --budget-seconds wants a positive number\n";
        return 2;
      }
      opts.budget_seconds = *s;
      budget_given = true;
    } else if (arg == "--max-failures") {
      const char* v = value();
      if (!v) return 2;
      const auto n = parse_u64(v);
      if (!n || *n == 0) {
        std::cerr << "qols_fuzz: --max-failures wants a positive integer\n";
        return 2;
      }
      opts.max_failures = static_cast<std::size_t>(*n);
    } else if (arg == "--token-file") {
      const char* v = value();
      if (!v) return 2;
      token_file = v;
    } else if (arg == "--replay") {
      const char* v = value();
      if (!v) return 2;
      replay_token = v;
    } else {
      std::cerr << "qols_fuzz: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }

  if (replay_token) return replay(*replay_token);
  if (!budget_given) opts.budget_seconds = 10.0;

  if (!quiet) {
    std::cout << "qols_fuzz: seed=" << opts.seed;
    if (opts.max_cases != 0) std::cout << " cases<=" << opts.max_cases;
    if (opts.budget_seconds > 0.0) {
      std::cout << " budget=" << opts.budget_seconds << "s";
    }
    std::cout << (opts.shrink ? "" : " (no shrink)") << "\n";
  }

  const FuzzReport report = run_fuzz(opts);

  if (!quiet) {
    std::cout << "word kinds:";
    for (unsigned i = 0; i < kWordKindCount; ++i) {
      std::cout << " " << word_kind_name(static_cast<WordKind>(i)) << "="
                << report.by_word_kind[i];
    }
    std::cout << "\nword classes:";
    for (unsigned i = 0; i < kWordClassCount; ++i) {
      std::cout << " " << word_class_name(static_cast<WordClass>(i)) << "="
                << report.by_word_class[i];
    }
    std::cout << "\n";
  }
  std::cout << "cases: " << report.cases << " in " << report.seconds
            << "s (" << static_cast<std::uint64_t>(report.cases_per_second())
            << "/sec)  discrepancies: " << report.failures.size() << "\n";

  for (const FuzzFailure& f : report.failures) print_failure(f);
  if (!report.failures.empty() && token_file) {
    std::ofstream out(*token_file);
    out << report.failures.front().minimized_token << "\n";
    if (!out) {
      std::cerr << "qols_fuzz: cannot write '" << *token_file << "'\n";
    }
  }
  return report.clean() ? 0 : 1;
}
