// Unit tests: the backend registry/factory — id lookup, unknown-id
// handling, auto-selection (default backend per k), and the not-simulated
// surfacing through the trial engine.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "qols/backend/registry.hpp"
#include "qols/core/amplified.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/core/trial_engine.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/rng.hpp"

namespace {

using namespace qols::backend;
using qols::core::QuantumOnlineRecognizer;
using qols::core::TrialEngine;
using qols::lang::LDisjInstance;
using qols::util::Rng;

TEST(BackendRegistry, GlobalHasDenseAndStructured) {
  auto& reg = BackendRegistry::global();
  ASSERT_NE(reg.find(kDenseBackendId), nullptr);
  ASSERT_NE(reg.find(kStructuredBackendId), nullptr);
  for (const auto& f : reg.factories()) {
    EXPECT_FALSE(f.id.empty());
    EXPECT_FALSE(f.description.empty());
    EXPECT_GE(f.hard_max_k, 1u);
  }
  const auto ids = reg.ids();
  EXPECT_EQ(ids.size(), reg.factories().size());
}

TEST(BackendRegistry, UnknownIdIsNullAndMakeBackendThrows) {
  EXPECT_EQ(BackendRegistry::global().find("tensor-network"), nullptr);
  EXPECT_EQ(BackendRegistry::global().find(""), nullptr);
  // "auto" is a selection policy, not a factory.
  EXPECT_EQ(BackendRegistry::global().find(kAutoBackendId), nullptr);
  EXPECT_THROW(make_backend("tensor-network", 6, 4), std::invalid_argument);
  EXPECT_THROW(make_backend("auto", 6, 4), std::invalid_argument);
}

TEST(BackendRegistry, FactoriesBuildTheirKind) {
  auto dense = make_backend(kDenseBackendId, 6, 4);
  ASSERT_NE(dense, nullptr);
  EXPECT_EQ(dense->id(), kDenseBackendId);
  EXPECT_NE(dense->dense_state(), nullptr);
  EXPECT_EQ(dense->num_qubits(), 6u);

  auto structured = make_backend(kStructuredBackendId, 6, 4);
  ASSERT_NE(structured, nullptr);
  EXPECT_EQ(structured->id(), kStructuredBackendId);
  EXPECT_EQ(structured->dense_state(), nullptr);
  EXPECT_EQ(structured->num_qubits(), 6u);
}

TEST(BackendRegistry, DefaultSelectionPicksDenseInsideItsCeiling) {
  // Auto (empty or "auto"): dense while k <= max_dense_k...
  for (const char* requested : {"", "auto"}) {
    EXPECT_EQ(resolve_backend_id(requested, 1, 10, 16), "dense");
    EXPECT_EQ(resolve_backend_id(requested, 10, 10, 16), "dense");
    // ...structured past the dense wall...
    EXPECT_EQ(resolve_backend_id(requested, 11, 10, 16), "structured");
    EXPECT_EQ(resolve_backend_id(requested, 16, 10, 16), "structured");
    // ...and explicitly nothing beyond every ceiling.
    EXPECT_EQ(resolve_backend_id(requested, 17, 10, 16), std::nullopt);
  }
}

TEST(BackendRegistry, ExplicitSelectionHonorsItsOwnCeiling) {
  EXPECT_EQ(resolve_backend_id("dense", 8, 10, 16), "dense");
  EXPECT_EQ(resolve_backend_id("dense", 12, 10, 16), std::nullopt);
  // The dense hard cap (30 qubits => k = 14) binds even a generous caller.
  EXPECT_EQ(resolve_backend_id("dense", 15, 99, 99), std::nullopt);
  EXPECT_EQ(resolve_backend_id("structured", 2, 10, 16), "structured");
  EXPECT_EQ(resolve_backend_id("structured", 20, 10, 20), "structured");
  EXPECT_EQ(resolve_backend_id("structured", 21, 10, 20), std::nullopt);
  EXPECT_THROW(resolve_backend_id("analog", 2, 10, 16), std::invalid_argument);
}

TEST(BackendRegistry, NotSimulatedTrialsSurfaceThroughTheEngine) {
  // Both ceilings below k: every trial must be flagged, not silently folded
  // into the accept/reject counts.
  Rng rng(12);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  QuantumOnlineRecognizer::Options opts;
  opts.a3.max_sim_k = 1;
  opts.a3.max_structured_k = 1;
  const TrialEngine engine;
  const auto r = engine.measure_acceptance(
      [&] { return inst.stream(); },
      [opts](std::uint64_t seed) {
        return std::make_unique<QuantumOnlineRecognizer>(seed, opts);
      },
      {.trials = 16, .seed_base = 1});
  EXPECT_EQ(r.not_simulated, 16u);
  EXPECT_EQ(r.accepts, 0u);  // never claims membership it could not check
}

TEST(BackendRegistry, AmplifiedRecognizerPropagatesNotSimulated) {
  // Amplification must not launder not-simulated inner runs into honest
  // rejects: a member instance reported as 0% acceptance with no flag
  // would look like broken completeness.
  Rng rng(13);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  QuantumOnlineRecognizer::Options opts;
  opts.a3.max_sim_k = 1;
  opts.a3.max_structured_k = 1;
  auto single = [opts](std::uint64_t seed) {
    return std::make_unique<QuantumOnlineRecognizer>(seed, opts);
  };
  const TrialEngine engine;
  const auto r = engine.measure_acceptance(
      [&] { return inst.stream(); },
      [single](std::uint64_t seed) {
        return std::make_unique<qols::core::AmplifiedRecognizer>(single, 3,
                                                                 seed);
      },
      {.trials = 8, .seed_base = 1});
  EXPECT_EQ(r.not_simulated, 8u);
}

}  // namespace
