// Unit + property tests: BBHT closed forms (the analysis behind Theorem 3.4's
// error bound).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "qols/grover/analysis.hpp"

namespace {

using namespace qols::grover;

TEST(Angle, BoundaryValues) {
  EXPECT_DOUBLE_EQ(angle(0, 16), 0.0);
  EXPECT_NEAR(angle(16, 16), std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(angle(4, 16), std::asin(0.5), 1e-12);  // sin^2 = 1/4
}

TEST(SuccessAfter, ZeroIterationsIsBaseRate) {
  // j = 0: probability sin^2(theta) = t/N.
  const double th = angle(3, 64);
  EXPECT_NEAR(success_after(0, th), 3.0 / 64.0, 1e-12);
}

TEST(SuccessAfter, PeaksNearOptimalIterationCount) {
  const std::uint64_t n = 1 << 10;
  const double th = angle(1, n);
  const auto jopt = static_cast<std::uint64_t>(
      std::floor(std::numbers::pi / (4 * th)));
  EXPECT_GT(success_after(jopt, th), 0.99);
}

TEST(AverageSuccess, ClosedFormMatchesExplicitSum) {
  for (std::uint64_t m : {1ULL, 2ULL, 4ULL, 8ULL, 32ULL, 128ULL}) {
    for (std::uint64_t t : {1ULL, 2ULL, 5ULL, 100ULL, 500ULL}) {
      const std::uint64_t n = 1024;
      if (t > n) continue;
      const double th = angle(t, n);
      ASSERT_NEAR(average_success(m, th), average_success_by_sum(m, th), 1e-10)
          << "m=" << m << " t=" << t;
    }
  }
}

TEST(AverageSuccess, DegenerateCases) {
  EXPECT_DOUBLE_EQ(average_success(8, 0.0), 0.0);           // t = 0
  EXPECT_NEAR(average_success(8, std::numbers::pi / 2), 1.0, 1e-12);  // t = N
}

// The paper's Section 3.2 bound: for every k and every 1 <= t <= 2^{2k},
// the averaged rejection probability is >= 1/4.
class RejectionBound
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(RejectionBound, AtLeastOneQuarter) {
  const auto [k, t_raw] = GetParam();
  const std::uint64_t n = std::uint64_t{1} << (2 * k);
  const std::uint64_t t = std::min<std::uint64_t>(t_raw, n);
  if (t == 0) {
    EXPECT_DOUBLE_EQ(a3_rejection_probability(k, 0), 0.0);
    return;
  }
  EXPECT_GE(a3_rejection_probability(k, t), 0.25 - 1e-12)
      << "k=" << k << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RejectionBound,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 8u),
                       ::testing::Values(0u, 1u, 2u, 3u, 5u, 16u, 100u,
                                         100000u)));

// Exhaustive check at small k: every t in [1, 2^{2k}].
TEST(RejectionBound, ExhaustiveSmallK) {
  for (unsigned k = 1; k <= 4; ++k) {
    const std::uint64_t n = std::uint64_t{1} << (2 * k);
    for (std::uint64_t t = 1; t <= n; ++t) {
      ASSERT_GE(a3_rejection_probability(k, t), 0.25 - 1e-12)
          << "k=" << k << " t=" << t;
    }
  }
}

TEST(Repetitions, MatchesClosedForm) {
  // (3/4)^r <= 1/3  =>  r = 4.
  EXPECT_EQ(repetitions_for_error(0.25, 1.0 / 3.0), 4u);
  // (3/4)^r <= 0.01 => r = 17 (0.75^16 ~ 0.0100226 > 0.01).
  EXPECT_EQ(repetitions_for_error(0.25, 0.01), 17u);
  // Perfect rejection needs one round.
  EXPECT_EQ(repetitions_for_error(1.0, 0.5), 1u);
}

TEST(Repetitions, SatisfiesGuarantee) {
  for (double p : {0.25, 0.3, 0.5, 0.9}) {
    for (double eps : {0.5, 1.0 / 3.0, 0.1, 0.01}) {
      const auto r = repetitions_for_error(p, eps);
      EXPECT_LE(std::pow(1.0 - p, static_cast<double>(r)), eps + 1e-12);
      if (r > 1) {
        EXPECT_GT(std::pow(1.0 - p, static_cast<double>(r - 1)), eps - 1e-12);
      }
    }
  }
}

}  // namespace
