// Unit tests: modular arithmetic and the paper's prime-interval search.
#include <gtest/gtest.h>

#include "qols/util/modmath.hpp"

namespace {

using namespace qols::util;

TEST(ModMath, AddSubMulBasics) {
  EXPECT_EQ(addmod(3, 4, 5), 2u);
  EXPECT_EQ(addmod(4, 4, 5), 3u);
  EXPECT_EQ(submod(1, 3, 7), 5u);
  EXPECT_EQ(submod(3, 1, 7), 2u);
  EXPECT_EQ(mulmod(6, 7, 13), 42u % 13);
}

TEST(ModMath, MulmodSurvivesLargeOperands) {
  const std::uint64_t p = (1ULL << 61) - 1;  // Mersenne prime
  const std::uint64_t a = p - 2;
  const std::uint64_t b = p - 3;
  // (p-2)(p-3) mod p = 6 mod p.
  EXPECT_EQ(mulmod(a, b, p), 6u);
}

TEST(ModMath, PowmodMatchesFermat) {
  // Fermat's little theorem: a^(p-1) = 1 mod p for prime p, gcd(a,p)=1.
  for (std::uint64_t p : {5ULL, 97ULL, 65537ULL, 1000000007ULL}) {
    for (std::uint64_t a : {2ULL, 3ULL, 10ULL}) {
      if (a % p == 0) continue;  // Fermat needs gcd(a, p) = 1
      EXPECT_EQ(powmod(a, p - 1, p), 1u) << "p=" << p << " a=" << a;
    }
  }
}

TEST(ModMath, PowmodEdgeCases) {
  EXPECT_EQ(powmod(0, 0, 7), 1u);  // 0^0 := 1 in the ring
  EXPECT_EQ(powmod(5, 0, 7), 1u);
  EXPECT_EQ(powmod(5, 1, 7), 5u);
  EXPECT_EQ(powmod(2, 10, 1), 0u);  // everything is 0 mod 1
}

TEST(Primality, SmallNumbersExact) {
  const bool expected[] = {false, false, true,  true,  false, true,
                           false, true,  false, false, false, true,
                           false, true,  false, false, false, true};
  for (std::uint64_t n = 0; n < std::size(expected); ++n) {
    EXPECT_EQ(is_prime_u64(n), expected[n]) << n;
  }
}

TEST(Primality, KnownLargePrimes) {
  EXPECT_TRUE(is_prime_u64((1ULL << 61) - 1));
  EXPECT_TRUE(is_prime_u64(1000000007ULL));
  EXPECT_TRUE(is_prime_u64(18446744073709551557ULL));  // largest 64-bit prime
}

TEST(Primality, KnownComposites) {
  EXPECT_FALSE(is_prime_u64(1ULL));
  EXPECT_FALSE(is_prime_u64(561));        // Carmichael
  EXPECT_FALSE(is_prime_u64(1105));       // Carmichael
  EXPECT_FALSE(is_prime_u64(25326001));   // strong pseudoprime to 2,3,5
  EXPECT_FALSE(is_prime_u64((1ULL << 61) + 1));
}

TEST(PrimeSearch, FindsFirstPrimeInInterval) {
  auto p = first_prime_in_open_interval(24, 30);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, 29u);
}

TEST(PrimeSearch, EmptyIntervalReturnsNullopt) {
  EXPECT_FALSE(first_prime_in_open_interval(24, 25).has_value());
  EXPECT_FALSE(first_prime_in_open_interval(8, 11).has_value());  // (8,11) = {9,10}
}

// The paper's requirement: for every k there is a prime 2^{4k} < p < 2^{4k+1}
// (Bertrand's postulate). Verify the search finds one in range for all
// supported k.
class FingerprintPrimeSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FingerprintPrimeSweep, PrimeLiesInOpenInterval) {
  const unsigned k = GetParam();
  const std::uint64_t p = fingerprint_prime(k);
  EXPECT_TRUE(is_prime_u64(p));
  EXPECT_GT(p, 1ULL << (4 * k));
  EXPECT_LT(p, 1ULL << (4 * k + 1));
}

TEST_P(FingerprintPrimeSweep, StatsCountMatchesPrimeOffset) {
  const unsigned k = GetParam();
  const auto stats = fingerprint_prime_stats(k);
  EXPECT_EQ(stats.prime, fingerprint_prime(k));
  EXPECT_EQ(stats.candidates_tested, stats.prime - (1ULL << (4 * k)));
}

INSTANTIATE_TEST_SUITE_P(AllSupportedK, FingerprintPrimeSweep,
                         ::testing::Range(1u, 16u));

TEST(Montgomery, MulMatchesMulmodAcrossModuli) {
  // Odd moduli spanning tiny to near the 2^63 ceiling, including the
  // fingerprint primes the batched Horner pass actually uses.
  const std::uint64_t moduli[] = {3,
                                  5,
                                  65537,
                                  fingerprint_prime(2),
                                  fingerprint_prime(8),
                                  fingerprint_prime(15),
                                  (1ULL << 61) - 1,
                                  (1ULL << 62) + 1};
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;  // cheap deterministic generator
  for (const std::uint64_t m : moduli) {
    const Montgomery mont(m);
    for (int i = 0; i < 200; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      const std::uint64_t a = x % m;
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      const std::uint64_t b = x % m;
      // REDC(aR * bR) = abR; stripping both factors of R recovers ab mod m.
      const std::uint64_t am = mont.to_mont(a);
      const std::uint64_t bm = mont.to_mont(b);
      ASSERT_EQ(mont.from_mont(mont.mul(am, bm)), mulmod(a, b, m))
          << "m=" << m << " a=" << a << " b=" << b;
    }
  }
}

TEST(Montgomery, DomainRoundTripIsExact) {
  const std::uint64_t m = fingerprint_prime(8);
  const Montgomery mont(m);
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2}, m / 2, m - 2,
        m - 1}) {
    EXPECT_EQ(mont.from_mont(mont.to_mont(v)), v);
    EXPECT_LT(mont.to_mont(v), m);  // stays a canonical residue
  }
  EXPECT_EQ(mont.modulus(), m);
}

}  // namespace
