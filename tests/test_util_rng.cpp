// Unit tests: qols::util RNG — determinism, uniformity sanity, splitting.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "qols/util/rng.hpp"

namespace {

using qols::util::Rng;
using qols::util::SplitMix64;

TEST(SplitMix64, IsDeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Xoshiro, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, BelowStaysInRange) {
  Rng rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.08);
  }
}

TEST(Xoshiro, Uniform01InUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Xoshiro, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.02);
}

TEST(Xoshiro, BitsLengthAndBalance) {
  Rng rng(23);
  auto bits = rng.bits(10007);
  EXPECT_EQ(bits.size(), 10007u);
  const auto ones = std::count(bits.begin(), bits.end(), true);
  EXPECT_NEAR(static_cast<double>(ones), 10007 * 0.5, 10007 * 0.05);
}

TEST(Xoshiro, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // The child must not replay the parent's continuation.
  Rng parent_copy(31);
  (void)parent_copy.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next() == parent.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, JumpChangesState) {
  Rng a(3), b(3);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
