// Unit tests: the parallel trial engine. The engine's contract is that
// sharding trials across a thread pool is bit-identical to the serial
// reference path — same accept counts, same trial-0 space report — for the
// same seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "qols/core/quantum_recognizer.hpp"
#include "qols/core/trial_engine.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/util/thread_pool.hpp"

namespace {

using namespace qols::core;
using qols::lang::LDisjInstance;
using qols::util::Rng;
using qols::util::ThreadPool;

// Deterministic stand-in: accepts iff its seed is divisible by 3, reports a
// seed-dependent space footprint (so tests can see WHICH trial the engine
// took the space report from).
class StubRecognizer final : public qols::machine::OnlineRecognizer {
 public:
  explicit StubRecognizer(std::uint64_t seed) : seed_(seed) {}

  void feed(qols::stream::Symbol) override {}
  bool finish() override { return seed_ % 3 == 0; }
  void reset(std::uint64_t seed) override { seed_ = seed; }
  qols::machine::SpaceReport space_used() const override {
    return {.classical_bits = seed_, .qubits = 7};
  }
  std::string name() const override { return "stub"; }

 private:
  std::uint64_t seed_;
};

StreamFactory empty_stream() {
  return [] {
    return std::make_unique<qols::stream::StringStream>(std::string{});
  };
}

RecognizerFactory stub() {
  return [](std::uint64_t seed) { return std::make_unique<StubRecognizer>(seed); };
}

// A recording factory: remembers every seed it was constructed with.
RecognizerFactory recording_stub(std::vector<std::uint64_t>& seeds,
                                 std::mutex& mu) {
  return [&seeds, &mu](std::uint64_t seed) {
    {
      std::lock_guard<std::mutex> lock(mu);
      seeds.push_back(seed);
    }
    return std::make_unique<StubRecognizer>(seed);
  };
}

TEST(TrialEngine, ParallelMatchesSerialExactlyOnStub) {
  ThreadPool pool(4);
  const TrialEngine parallel({.pool = &pool});
  const TrialEngine serial({.serial = true});

  for (const std::uint64_t trials : {1u, 2u, 7u, 101u, 256u}) {
    const ExperimentOptions opts{.trials = trials, .seed_base = 5};
    const auto p = parallel.measure_acceptance(empty_stream(), stub(), opts);
    const auto s = serial.measure_acceptance(empty_stream(), stub(), opts);
    EXPECT_EQ(p.trials, s.trials);
    EXPECT_EQ(p.accepts, s.accepts);
    EXPECT_EQ(p.space.classical_bits, s.space.classical_bits);
    EXPECT_EQ(p.space.qubits, s.space.qubits);

    // And both match the closed-form reference count.
    std::uint64_t expected = 0;
    for (std::uint64_t i = 0; i < trials; ++i) {
      if ((opts.seed_base + i) % 3 == 0) ++expected;
    }
    EXPECT_EQ(p.accepts, expected);
  }
}

TEST(TrialEngine, ParallelMatchesSerialOnQuantumRecognizer) {
  Rng rng(42);
  auto inst = LDisjInstance::make_with_intersections(2, 1, rng);
  auto quantum = [](std::uint64_t seed) {
    return std::make_unique<QuantumOnlineRecognizer>(seed);
  };
  const ExperimentOptions opts{.trials = 60, .seed_base = 17};

  ThreadPool pool(4);
  const auto p = TrialEngine({.pool = &pool})
                     .measure_acceptance([&] { return inst.stream(); },
                                         quantum, opts);
  const auto s = TrialEngine({.serial = true})
                     .measure_acceptance([&] { return inst.stream(); },
                                         quantum, opts);
  EXPECT_EQ(p.accepts, s.accepts);
  EXPECT_EQ(p.space.classical_bits, s.space.classical_bits);
  EXPECT_EQ(p.space.qubits, s.space.qubits);
  // Non-member at t=1: acceptance must be at most 3/4-ish, never all.
  EXPECT_LT(p.accepts, p.trials);
}

TEST(TrialEngine, DefaultWrappersUseGlobalPoolAndStayDeterministic) {
  // The free functions in experiment.hpp route through a default engine;
  // same seeds -> same counts on every call.
  const auto a =
      measure_acceptance(empty_stream(), stub(), {.trials = 97, .seed_base = 2});
  const auto b =
      measure_acceptance(empty_stream(), stub(), {.trials = 97, .seed_base = 2});
  EXPECT_EQ(a.accepts, b.accepts);
  EXPECT_EQ(a.space.classical_bits, b.space.classical_bits);
}

TEST(TrialEngine, SpaceReportComesFromTrialZero) {
  ThreadPool pool(3);
  const TrialEngine engine({.pool = &pool});
  const auto r = engine.measure_acceptance(empty_stream(), stub(),
                                           {.trials = 64, .seed_base = 900});
  // StubRecognizer reports its seed as classical_bits: trial 0 is seed 900,
  // regardless of which worker ran which shard.
  EXPECT_EQ(r.space.classical_bits, 900u);
  EXPECT_EQ(r.space.qubits, 7u);
}

TEST(TrialEngine, QualityLegsUseDisjointSeedRanges) {
  std::mutex mu;
  std::vector<std::uint64_t> seeds;
  ThreadPool pool(4);
  const TrialEngine engine({.pool = &pool});
  const std::uint64_t trials = 40;
  const std::uint64_t base = 1000;

  const auto profile = engine.measure_quality(
      empty_stream(), empty_stream(), recording_stub(seeds, mu),
      {.trials = trials, .seed_base = base});
  EXPECT_EQ(profile.on_member.trials, trials);
  EXPECT_EQ(profile.on_nonmember.trials, trials);

  // Exactly 2 * trials constructions, covering [base, base + 2 * trials)
  // with no overlap between the legs.
  ASSERT_EQ(seeds.size(), 2 * trials);
  std::sort(seeds.begin(), seeds.end());
  for (std::uint64_t i = 0; i < 2 * trials; ++i) {
    EXPECT_EQ(seeds[i], base + i);
  }
}

TEST(TrialEngine, ZeroTrialsIsSafe) {
  ThreadPool pool(2);
  const auto r = TrialEngine({.pool = &pool})
                     .measure_acceptance(empty_stream(), stub(),
                                         {.trials = 0, .seed_base = 1});
  EXPECT_EQ(r.trials, 0u);
  EXPECT_EQ(r.accepts, 0u);
  EXPECT_DOUBLE_EQ(r.rate(), 0.0);
  EXPECT_EQ(r.space.classical_bits, 0u);
}

}  // namespace
