// Unit tests: exact deterministic one-way communication complexity.
#include <gtest/gtest.h>

#include "qols/comm/one_way.hpp"

namespace {

using namespace qols::comm;

TEST(OneWayCC, ConstantFunctionIsFree) {
  auto constant = [](std::uint64_t, std::uint64_t) { return true; };
  EXPECT_EQ(distinct_rows(constant, 4), 1u);
  EXPECT_EQ(one_way_det_cc(constant, 4), 0u);
}

TEST(OneWayCC, SingleBitOfXCostsOneBit) {
  auto first_bit = [](std::uint64_t x, std::uint64_t) { return (x & 1) != 0; };
  EXPECT_EQ(distinct_rows(first_bit, 5), 2u);
  EXPECT_EQ(one_way_det_cc(first_bit, 5), 1u);
}

TEST(OneWayCC, DisjointnessCostsExactlyM) {
  // Every support is distinguished by a singleton y: 2^m distinct rows.
  for (unsigned m = 1; m <= 8; ++m) {
    EXPECT_EQ(distinct_rows(disj_predicate, m), std::uint64_t{1} << m) << m;
    EXPECT_EQ(one_way_det_cc(disj_predicate, m), m) << m;
  }
}

TEST(OneWayCC, EqualityCostsExactlyM) {
  for (unsigned m = 1; m <= 8; ++m) {
    EXPECT_EQ(one_way_det_cc(eq_predicate, m), m) << m;
  }
}

TEST(OneWayCC, InnerProductCostsExactlyM) {
  // IP rows are the parity functionals <x, .>, all distinct.
  for (unsigned m = 1; m <= 8; ++m) {
    EXPECT_EQ(one_way_det_cc(ip_predicate, m), m) << m;
  }
}

TEST(OneWayCC, IndexCostsExactlyM) {
  // INDEX is the canonical one-way-hard problem: Alice must ship all bits.
  for (unsigned m = 2; m <= 8; ++m) {
    auto f = [m](std::uint64_t x, std::uint64_t y) {
      return index_predicate_m(x, y, m);
    };
    EXPECT_EQ(one_way_det_cc(f, m), m) << m;
  }
}

TEST(OneWayCC, YOnlyFunctionIsFreeForAlice) {
  auto f = [](std::uint64_t, std::uint64_t y) { return (y & 1) != 0; };
  EXPECT_EQ(one_way_det_cc(f, 6), 0u);
}

TEST(OneWayCC, RejectsOversizedM) {
  EXPECT_THROW(distinct_rows(disj_predicate, 15), std::invalid_argument);
}

TEST(OneWayCC, CoarseFunctionsCostLess) {
  // f depends only on popcount(x) >= m/2: rows collapse to 2 classes.
  const unsigned m = 6;
  auto f = [m](std::uint64_t x, std::uint64_t) {
    return static_cast<unsigned>(__builtin_popcountll(x)) >= m / 2;
  };
  EXPECT_EQ(one_way_det_cc(f, m), 1u);
}

}  // namespace
