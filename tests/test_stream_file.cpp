// Unit tests: disk-backed symbol streams.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <vector>

#include "qols/lang/ldisj_instance.hpp"
#include "qols/stream/file_stream.hpp"

namespace {

using qols::stream::FileStream;
using qols::stream::materialize;
using qols::stream::StringStream;
using qols::stream::write_stream_to_file;

class FileStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("qols_stream_test_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->line()) +
              ".txt"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(FileStreamTest, RoundTripThroughDisk) {
  const std::string word = "1#0101#1100#0101#0101#1100#0101#";
  {
    StringStream s(word);
    EXPECT_EQ(write_stream_to_file(s, path_), word.size());
  }
  FileStream f(path_);
  EXPECT_EQ(materialize(f), word);
  EXPECT_FALSE(f.bad());
}

TEST_F(FileStreamTest, LengthHintMatchesFileSize) {
  const std::string word = "01#10";
  {
    StringStream s(word);
    write_stream_to_file(s, path_);
  }
  FileStream f(path_);
  ASSERT_TRUE(f.length_hint().has_value());
  EXPECT_EQ(*f.length_hint(), word.size());
}

TEST_F(FileStreamTest, ToleratesTrailingNewline) {
  {
    std::ofstream out(path_);
    out << "0101#\n";
  }
  FileStream f(path_);
  EXPECT_EQ(materialize(f), "0101#");
  EXPECT_FALSE(f.bad());
}

TEST_F(FileStreamTest, FlagsForeignCharacters) {
  {
    std::ofstream out(path_);
    out << "01x01";
  }
  FileStream f(path_);
  EXPECT_EQ(materialize(f), "01");
  EXPECT_TRUE(f.bad());
}

TEST_F(FileStreamTest, MissingFileThrows) {
  EXPECT_THROW(FileStream("/nonexistent/definitely/missing.txt"),
               std::runtime_error);
}

TEST_F(FileStreamTest, SmallBufferStillStreamsCorrectly) {
  const std::string word(10000, '1');
  {
    StringStream s(word + "#");
    write_stream_to_file(s, path_);
  }
  FileStream f(path_, /*buffer_size=*/7);  // deliberately tiny buffer
  EXPECT_EQ(materialize(f), word + "#");
}

TEST_F(FileStreamTest, InstanceSurvivesDiskRoundTrip) {
  qols::util::Rng rng(5);
  auto inst = qols::lang::LDisjInstance::make_disjoint(3, rng);
  {
    auto s = inst.stream();
    write_stream_to_file(*s, path_);
  }
  FileStream f(path_);
  EXPECT_EQ(materialize(f), inst.render());
}

TEST_F(FileStreamTest, EmptyFileIsEmptyStream) {
  {
    std::ofstream out(path_);
  }
  FileStream f(path_);
  EXPECT_FALSE(f.next().has_value());
  EXPECT_FALSE(f.bad());
}

// -- next_chunk: bit-identical to next(), across refills and edge cases. ----

std::string drain_chunked(qols::stream::SymbolStream& f,
                          std::size_t chunk_size) {
  std::string out;
  std::vector<qols::stream::Symbol> buf(chunk_size);
  while (true) {
    const std::size_t n = f.next_chunk(buf);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(qols::stream::symbol_to_char(buf[i]));
    }
  }
  return out;
}

TEST_F(FileStreamTest, ChunkedReadMatchesNextAcrossBufferRefills) {
  // Chunk sizes straddling the read buffer in both directions, so runs
  // split on refill boundaries and on chunk boundaries.
  const std::string word = "1#0101#1100#0101#0101#1100#0101#";
  {
    StringStream s(word);
    write_stream_to_file(s, path_);
  }
  for (const std::size_t buffer : {3u, 7u, 64u}) {
    for (const std::size_t chunk : {1u, 5u, 11u, 64u}) {
      FileStream f(path_, buffer);
      EXPECT_EQ(drain_chunked(f, chunk), word)
          << "buffer=" << buffer << " chunk=" << chunk;
      EXPECT_FALSE(f.bad());
    }
  }
}

TEST_F(FileStreamTest, ChunkedReadToleratesTrailingNewline) {
  {
    std::ofstream out(path_);
    out << "0101#\n";
  }
  FileStream f(path_, /*buffer_size=*/4);  // '\n' lands after a refill
  EXPECT_EQ(drain_chunked(f, 3), "0101#");
  EXPECT_FALSE(f.bad());
}

TEST_F(FileStreamTest, ChunkedReadStopsAtForeignCharacters) {
  {
    std::ofstream out(path_);
    out << "01x01";
  }
  FileStream f(path_);
  EXPECT_EQ(drain_chunked(f, 64), "01");
  EXPECT_TRUE(f.bad());
  EXPECT_FALSE(f.next().has_value());  // stays ended
}

TEST_F(FileStreamTest, ZeroBufferSizeIsRejected) {
  // Regression: a 0-capacity buffer used to make refill() report EOF on a
  // non-empty file, silently truncating the word to nothing.
  {
    std::ofstream out(path_);
    out << "0101#";
  }
  EXPECT_THROW(FileStream(path_, /*buffer_size=*/0), std::invalid_argument);
}

TEST_F(FileStreamTest, ExactlyBufferSizedFile) {
  // EOF lands precisely on a refill boundary: the next refill must read
  // zero bytes and end the stream, not spin or duplicate the last buffer.
  const std::string word = "01#10#01";  // 8 symbols
  {
    StringStream s(word);
    write_stream_to_file(s, path_);
  }
  FileStream f(path_, /*buffer_size=*/8);
  EXPECT_EQ(materialize(f), word);
  EXPECT_FALSE(f.bad());
}

TEST_F(FileStreamTest, TrailingNewlineAtChunkBoundary) {
  // The '\n' is the first byte of its own refill AND arrives when the
  // caller's chunk is already full — both hand-offs at once.
  const std::string word = "0101#01#";  // 8 symbols, buffer-sized
  {
    std::ofstream out(path_);
    out << word << "\n";
  }
  FileStream f(path_, /*buffer_size=*/8);
  EXPECT_EQ(drain_chunked(f, 8), word);
  EXPECT_FALSE(f.bad());
}

TEST_F(FileStreamTest, WriteStreamRoundTripsChunkProducers) {
  // write_stream_to_file drains via next_chunk now; a bulk producer
  // (LDisjInstance::stream) must land on disk byte-for-byte.
  qols::util::Rng rng(11);
  auto inst = qols::lang::LDisjInstance::make_disjoint(2, rng);
  {
    auto s = inst.stream();
    EXPECT_EQ(write_stream_to_file(*s, path_), inst.word_length());
  }
  FileStream f(path_, /*buffer_size=*/13);
  EXPECT_EQ(materialize(f), inst.render());
}

// -- MappedFileStream: the zero-copy transport. -----------------------------

using qols::stream::MappedFileStream;
using qols::stream::Symbol;

TEST_F(FileStreamTest, MappedMatchesBufferedStream) {
  qols::util::Rng rng(7);
  auto inst = qols::lang::LDisjInstance::make_disjoint(3, rng);
  {
    auto s = inst.stream();
    write_stream_to_file(*s, path_);
  }
  MappedFileStream m(path_);
  EXPECT_EQ(materialize(m), inst.render());
  EXPECT_FALSE(m.bad());
  ASSERT_TRUE(m.length_hint().has_value());
  EXPECT_EQ(*m.length_hint(), inst.word_length());
}

TEST_F(FileStreamTest, MappedChunkedReadMatchesNext) {
  const std::string word = "1#0101#1100#0101#0101#1100#0101#";
  {
    StringStream s(word);
    write_stream_to_file(s, path_);
  }
  for (const std::size_t chunk : {1u, 5u, 11u, 64u}) {
    MappedFileStream m(path_);
    EXPECT_EQ(drain_chunked(m, chunk), word) << "chunk=" << chunk;
    EXPECT_FALSE(m.bad());
  }
}

TEST_F(FileStreamTest, MappedViewChunkLendsTheWholeWord) {
  const std::string word = "1#0101#1100#0101#0101#1100#0101#";
  {
    StringStream s(word);
    write_stream_to_file(s, path_);
  }
  MappedFileStream m(path_);
  std::string seen;
  while (true) {
    const auto view = m.view_chunk(7);
    ASSERT_TRUE(view.has_value());  // mapped streams always support views
    if (view->empty()) break;       // engaged-but-empty = EOF
    for (const Symbol sym : *view) {
      seen.push_back(qols::stream::symbol_to_char(sym));
    }
  }
  EXPECT_EQ(seen, word);
  // EOF is sticky across every access style.
  EXPECT_FALSE(m.next().has_value());
  EXPECT_TRUE(m.view_chunk(7)->empty());
}

TEST_F(FileStreamTest, MappedViewAndCopyInterleave) {
  // Mixing view_chunk with next()/next_chunk must hand off the cursor
  // exactly; the lent span reflects the in-place converted bytes.
  const std::string word = "0101#1100#0101#";
  {
    StringStream s(word);
    write_stream_to_file(s, path_);
  }
  MappedFileStream m(path_);
  ASSERT_TRUE(m.next().has_value());  // consumes '0'
  const auto view = m.view_chunk(4);  // lends "101#"
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->size(), 4u);
  EXPECT_EQ((*view)[0], Symbol::kOne);
  EXPECT_EQ((*view)[3], Symbol::kSep);
  EXPECT_EQ(drain_chunked(m, 64), word.substr(5));
}

TEST_F(FileStreamTest, MappedToleratesTrailingNewline) {
  {
    std::ofstream out(path_);
    out << "0101#\n";
  }
  MappedFileStream m(path_);
  EXPECT_EQ(materialize(m), "0101#");
  EXPECT_FALSE(m.bad());
}

TEST_F(FileStreamTest, MappedFlagsForeignCharacters) {
  {
    std::ofstream out(path_);
    out << "01x01";
  }
  MappedFileStream m(path_);
  EXPECT_EQ(materialize(m), "01");
  EXPECT_TRUE(m.bad());
  EXPECT_FALSE(m.next().has_value());  // stays ended
}

TEST_F(FileStreamTest, MappedEmptyFileIsEmptyStream) {
  {
    std::ofstream out(path_);
  }
  MappedFileStream m(path_);
  EXPECT_FALSE(m.next().has_value());
  ASSERT_TRUE(m.view_chunk(16).has_value());
  EXPECT_TRUE(m.view_chunk(16)->empty());
  EXPECT_FALSE(m.bad());
}

TEST_F(FileStreamTest, MappedMissingFileThrows) {
  EXPECT_THROW(MappedFileStream("/nonexistent/definitely/missing.txt"),
               std::runtime_error);
}

TEST_F(FileStreamTest, DefaultStreamsDeclineViewChunk) {
  // Wrappers and in-memory streams deliberately keep the base-class
  // nullopt: run_stream must fall back to the copying loop for them.
  StringStream s("0101#");
  EXPECT_FALSE(s.view_chunk(16).has_value());
  {
    StringStream src("0101#");
    write_stream_to_file(src, path_);
  }
  FileStream f(path_);
  EXPECT_FALSE(f.view_chunk(16).has_value());
}

}  // namespace
