// Unit tests: disk-backed symbol streams.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <vector>

#include "qols/lang/ldisj_instance.hpp"
#include "qols/stream/file_stream.hpp"

namespace {

using qols::stream::FileStream;
using qols::stream::materialize;
using qols::stream::StringStream;
using qols::stream::write_stream_to_file;

class FileStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("qols_stream_test_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->line()) +
              ".txt"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(FileStreamTest, RoundTripThroughDisk) {
  const std::string word = "1#0101#1100#0101#0101#1100#0101#";
  {
    StringStream s(word);
    EXPECT_EQ(write_stream_to_file(s, path_), word.size());
  }
  FileStream f(path_);
  EXPECT_EQ(materialize(f), word);
  EXPECT_FALSE(f.bad());
}

TEST_F(FileStreamTest, LengthHintMatchesFileSize) {
  const std::string word = "01#10";
  {
    StringStream s(word);
    write_stream_to_file(s, path_);
  }
  FileStream f(path_);
  ASSERT_TRUE(f.length_hint().has_value());
  EXPECT_EQ(*f.length_hint(), word.size());
}

TEST_F(FileStreamTest, ToleratesTrailingNewline) {
  {
    std::ofstream out(path_);
    out << "0101#\n";
  }
  FileStream f(path_);
  EXPECT_EQ(materialize(f), "0101#");
  EXPECT_FALSE(f.bad());
}

TEST_F(FileStreamTest, FlagsForeignCharacters) {
  {
    std::ofstream out(path_);
    out << "01x01";
  }
  FileStream f(path_);
  EXPECT_EQ(materialize(f), "01");
  EXPECT_TRUE(f.bad());
}

TEST_F(FileStreamTest, MissingFileThrows) {
  EXPECT_THROW(FileStream("/nonexistent/definitely/missing.txt"),
               std::runtime_error);
}

TEST_F(FileStreamTest, SmallBufferStillStreamsCorrectly) {
  const std::string word(10000, '1');
  {
    StringStream s(word + "#");
    write_stream_to_file(s, path_);
  }
  FileStream f(path_, /*buffer_size=*/7);  // deliberately tiny buffer
  EXPECT_EQ(materialize(f), word + "#");
}

TEST_F(FileStreamTest, InstanceSurvivesDiskRoundTrip) {
  qols::util::Rng rng(5);
  auto inst = qols::lang::LDisjInstance::make_disjoint(3, rng);
  {
    auto s = inst.stream();
    write_stream_to_file(*s, path_);
  }
  FileStream f(path_);
  EXPECT_EQ(materialize(f), inst.render());
}

TEST_F(FileStreamTest, EmptyFileIsEmptyStream) {
  {
    std::ofstream out(path_);
  }
  FileStream f(path_);
  EXPECT_FALSE(f.next().has_value());
  EXPECT_FALSE(f.bad());
}

// -- next_chunk: bit-identical to next(), across refills and edge cases. ----

std::string drain_chunked(qols::stream::SymbolStream& f,
                          std::size_t chunk_size) {
  std::string out;
  std::vector<qols::stream::Symbol> buf(chunk_size);
  while (true) {
    const std::size_t n = f.next_chunk(buf);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(qols::stream::symbol_to_char(buf[i]));
    }
  }
  return out;
}

TEST_F(FileStreamTest, ChunkedReadMatchesNextAcrossBufferRefills) {
  // Chunk sizes straddling the read buffer in both directions, so runs
  // split on refill boundaries and on chunk boundaries.
  const std::string word = "1#0101#1100#0101#0101#1100#0101#";
  {
    StringStream s(word);
    write_stream_to_file(s, path_);
  }
  for (const std::size_t buffer : {3u, 7u, 64u}) {
    for (const std::size_t chunk : {1u, 5u, 11u, 64u}) {
      FileStream f(path_, buffer);
      EXPECT_EQ(drain_chunked(f, chunk), word)
          << "buffer=" << buffer << " chunk=" << chunk;
      EXPECT_FALSE(f.bad());
    }
  }
}

TEST_F(FileStreamTest, ChunkedReadToleratesTrailingNewline) {
  {
    std::ofstream out(path_);
    out << "0101#\n";
  }
  FileStream f(path_, /*buffer_size=*/4);  // '\n' lands after a refill
  EXPECT_EQ(drain_chunked(f, 3), "0101#");
  EXPECT_FALSE(f.bad());
}

TEST_F(FileStreamTest, ChunkedReadStopsAtForeignCharacters) {
  {
    std::ofstream out(path_);
    out << "01x01";
  }
  FileStream f(path_);
  EXPECT_EQ(drain_chunked(f, 64), "01");
  EXPECT_TRUE(f.bad());
  EXPECT_FALSE(f.next().has_value());  // stays ended
}

}  // namespace
