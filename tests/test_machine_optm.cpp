// Unit tests: the OPTM simulator (the paper's Section 2.1 model, executable)
// and Fact 2.2's configuration counting.
#include <gtest/gtest.h>

#include <cmath>

#include "qols/machine/online_recognizer.hpp"
#include "qols/machine/optm.hpp"

namespace {

using namespace qols::machine;
using qols::stream::StringStream;
using qols::util::Rng;

OptmRun run_on(const OptmProgram& p, const std::string& word,
               std::uint64_t seed = 1) {
  Rng rng(seed);
  StringStream s(word);
  return run_optm(p, s, rng);
}

TEST(Optm, ParityMachineAcceptsOddOnes) {
  const auto p = make_parity_machine();
  EXPECT_FALSE(run_on(p, "").accepted);
  EXPECT_TRUE(run_on(p, "1").accepted);
  EXPECT_FALSE(run_on(p, "11").accepted);
  EXPECT_TRUE(run_on(p, "10101").accepted);
  EXPECT_FALSE(run_on(p, "0000").accepted);
  EXPECT_TRUE(run_on(p, "0001000").accepted);
}

TEST(Optm, ParityMachineRejectsSeparators) {
  const auto p = make_parity_machine();
  const auto r = run_on(p, "1#1");
  EXPECT_TRUE(r.halted);
  EXPECT_FALSE(r.accepted);
}

TEST(Optm, ParityMachineUsesZeroWorkCellsBeyondScratch) {
  const auto p = make_parity_machine();
  const auto r = run_on(p, "101010101");
  // The machine writes only blanks in place: one touched cell.
  EXPECT_LE(r.work_cells, 1u);
}

TEST(Optm, ParityMachineIsDeterministic) {
  const auto p = make_parity_machine();
  EXPECT_EQ(run_on(p, "110").coins, 0u);
}

TEST(Optm, CopyCompareAcceptsExactlyDuplicates) {
  const auto p = make_copy_compare_machine();
  EXPECT_TRUE(run_on(p, "#").accepted);          // empty u
  EXPECT_TRUE(run_on(p, "0#0").accepted);
  EXPECT_TRUE(run_on(p, "10#10").accepted);
  EXPECT_TRUE(run_on(p, "110101#110101").accepted);
  EXPECT_FALSE(run_on(p, "10#11").accepted);
  EXPECT_FALSE(run_on(p, "10#1").accepted);      // too short
  EXPECT_FALSE(run_on(p, "10#100").accepted);    // too long
  EXPECT_FALSE(run_on(p, "1011").accepted);      // no separator
  EXPECT_FALSE(run_on(p, "").accepted);
}

TEST(Optm, CopyCompareSpaceIsLinearInU) {
  const auto p = make_copy_compare_machine();
  for (std::size_t len : {1u, 4u, 9u, 16u}) {
    const std::string u(len, '1');
    const auto r = run_on(p, u + "#" + u);
    ASSERT_TRUE(r.accepted);
    // marker + |u| copied symbols (+1 blank peeked at the right edge).
    EXPECT_GE(r.work_cells, len + 1);
    EXPECT_LE(r.work_cells, len + 3);
  }
}

TEST(Optm, CoinMachineAcceptsWithGeometricProbability) {
  for (unsigned flips : {1u, 2u, 3u}) {
    const auto p = make_coin_machine(flips);
    const double rate = optm_acceptance_rate(p, "", 4000, 99);
    EXPECT_NEAR(rate, std::pow(0.5, flips), 0.03) << "flips=" << flips;
  }
}

TEST(Optm, CoinMachineCountsCoins) {
  const auto p = make_coin_machine(3);
  Rng rng(5);
  StringStream s("");
  const auto r = run_optm(p, s, rng);
  EXPECT_GE(r.coins, 1u);
  EXPECT_LE(r.coins, 3u);
}

TEST(Optm, StepBudgetIsEnforced) {
  // A deliberate infinite loop: one state, spins in place on EOF.
  OptmProgram p(1);
  p.set_start(0);
  p.set_transition(0, InSym::kEof, WorkSym::kBlank,
                   OptmAction{.next_state = 0, .write = WorkSym::kBlank,
                              .move = Move::kStay, .advance_input = false,
                              .halt = false});
  Rng rng(1);
  StringStream s("");
  const auto r = run_optm(p, s, rng, 500);
  EXPECT_FALSE(r.halted);  // "rejects by never halting"
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.steps, 500u);
}

TEST(Optm, FallingOffTheLeftEndRejects) {
  OptmProgram p(1);
  p.set_start(0);
  p.set_accepting(0);  // even an accepting state cannot survive the fall
  p.set_transition(0, InSym::kEof, WorkSym::kBlank,
                   OptmAction{.next_state = 0, .write = WorkSym::kBlank,
                              .move = Move::kLeft, .advance_input = false,
                              .halt = false});
  Rng rng(1);
  StringStream s("");
  const auto r = run_optm(p, s, rng);
  EXPECT_TRUE(r.halted);
  EXPECT_FALSE(r.accepted);
}

TEST(Optm, CensusCountsDistinctConfigurations) {
  // Parity machine on all words of length <= 3: configurations are
  // (state, input position) pairs only — at most 2 * (len+1) per word.
  const auto p = make_parity_machine();
  std::vector<std::string> inputs;
  for (int len = 0; len <= 3; ++len) {
    for (int bits = 0; bits < (1 << len); ++bits) {
      std::string w;
      for (int i = 0; i < len; ++i) w.push_back((bits >> i) & 1 ? '1' : '0');
      inputs.push_back(w);
    }
  }
  const auto configs = count_reachable_configurations(p, inputs);
  EXPECT_GE(configs, 4u);
  EXPECT_LE(configs, 2u * 5u);  // |Q| * (max input positions + 1)
}

TEST(Optm, CensusRespectsFact22Bound) {
  // Fact 2.2: #configs <= n * s * |Sigma|^s * |Q|. Check the copy-compare
  // machine on all u#u words with |u| = 3.
  const auto p = make_copy_compare_machine();
  std::vector<std::string> inputs;
  for (int bits = 0; bits < 8; ++bits) {
    std::string u;
    for (int i = 0; i < 3; ++i) u.push_back((bits >> i) & 1 ? '1' : '0');
    inputs.push_back(u + "#" + u);
  }
  const auto configs = count_reachable_configurations(p, inputs);
  // n = 7, s = 6 (marker + 3 bits + blank + slack), |Sigma| = 4, |Q| = 5:
  const double bound =
      log2_configuration_bound(7.0, 6.0, 4.0, 5.0);
  EXPECT_LE(std::log2(static_cast<double>(configs)), bound);
  EXPECT_GT(configs, 8u);  // sanity: it does distinguish the 8 strings
}

TEST(Optm, UndefinedTransitionHaltsInAccordanceWithState) {
  OptmProgram p(2);
  p.set_start(0);
  p.set_accepting(1);
  // 0 --'1'--> 1 (accepting); everything else undefined.
  p.set_transition(0, InSym::kOne, WorkSym::kBlank,
                   OptmAction{.next_state = 1, .write = WorkSym::kBlank,
                              .move = Move::kStay, .advance_input = true,
                              .halt = false});
  EXPECT_TRUE(run_on(p, "1").accepted);   // halts (undefined at EOF) in state 1
  EXPECT_FALSE(run_on(p, "0").accepted);  // halts immediately in state 0
}

}  // namespace
