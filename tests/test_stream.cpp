// Unit tests: symbol streams and failure-injection wrappers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "qols/stream/symbol_stream.hpp"

namespace {

using namespace qols::stream;

TEST(SymbolConversion, RoundTrip) {
  for (char c : {'0', '1', '#'}) {
    auto s = symbol_from_char(c);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(symbol_to_char(*s), c);
  }
}

TEST(SymbolConversion, RejectsForeignCharacters) {
  for (char c : {'2', 'a', ' ', '\n', 'x'}) {
    EXPECT_FALSE(symbol_from_char(c).has_value()) << c;
  }
}

TEST(StringStream, YieldsAllSymbolsThenEnds) {
  StringStream s("01#10");
  std::string out;
  while (auto sym = s.next()) out.push_back(symbol_to_char(*sym));
  EXPECT_EQ(out, "01#10");
  EXPECT_FALSE(s.next().has_value());  // stays ended
}

TEST(StringStream, RejectsForeignAlphabet) {
  EXPECT_THROW(StringStream("01x"), std::invalid_argument);
}

TEST(StringStream, LengthHint) {
  StringStream s("0101");
  ASSERT_TRUE(s.length_hint().has_value());
  EXPECT_EQ(*s.length_hint(), 4u);
}

TEST(GeneratorStream, ProducesFromCallable) {
  GeneratorStream g(
      [](std::uint64_t i) -> std::optional<Symbol> {
        if (i >= 5) return std::nullopt;
        return i % 2 == 0 ? Symbol::kZero : Symbol::kOne;
      },
      5);
  EXPECT_EQ(materialize(g), "01010");
}

TEST(TruncatedStream, CutsAtLimit) {
  auto inner = std::make_unique<StringStream>("111111");
  TruncatedStream t(std::move(inner), 3);
  EXPECT_EQ(materialize(t), "111");
}

TEST(TruncatedStream, ZeroKeepYieldsNothing) {
  auto inner = std::make_unique<StringStream>("101");
  TruncatedStream t(std::move(inner), 0);
  EXPECT_FALSE(t.next().has_value());
}

TEST(CorruptingStream, ReplacesExactlyOnePosition) {
  auto inner = std::make_unique<StringStream>("00000");
  CorruptingStream c(std::move(inner), 2, Symbol::kOne);
  EXPECT_EQ(materialize(c), "00100");
}

TEST(CorruptingStream, PositionBeyondEndIsNoop) {
  auto inner = std::make_unique<StringStream>("000");
  CorruptingStream c(std::move(inner), 10, Symbol::kOne);
  EXPECT_EQ(materialize(c), "000");
}

TEST(AppendingStream, AddsSuffixAfterInnerEnds) {
  auto inner = std::make_unique<StringStream>("01#");
  AppendingStream a(std::move(inner), "11");
  EXPECT_EQ(materialize(a), "01#11");
}

TEST(AppendingStream, RejectsForeignSuffix) {
  auto inner = std::make_unique<StringStream>("0");
  EXPECT_THROW(AppendingStream(std::move(inner), "0z"), std::invalid_argument);
}

TEST(Wrappers, Compose) {
  // corrupt then truncate: operations apply in wrapping order.
  auto inner = std::make_unique<StringStream>("000000");
  auto corrupted =
      std::make_unique<CorruptingStream>(std::move(inner), 1, Symbol::kOne);
  TruncatedStream t(std::move(corrupted), 4);
  EXPECT_EQ(materialize(t), "0100");
}

// ---------------------------------------------------------------------------
// Chunked reads: next_chunk must yield exactly the next() sequence, for every
// stream type and wrapper, at awkward chunk sizes, interleaved with next().
// ---------------------------------------------------------------------------

std::string drain_chunked(SymbolStream& s, std::size_t chunk_size) {
  std::string out;
  std::vector<Symbol> buf(chunk_size);
  while (true) {
    const std::size_t n = s.next_chunk(buf);
    if (n == 0) break;  // the contract: 0 with a non-empty buffer = ended
    for (std::size_t i = 0; i < n; ++i) out.push_back(symbol_to_char(buf[i]));
  }
  return out;
}

TEST(ChunkedReads, StringStreamMatchesNextAtEveryChunkSize) {
  const std::string word = "1##010#11#0";
  for (const std::size_t c : {1u, 2u, 3u, 5u, 64u}) {
    StringStream s(word);
    EXPECT_EQ(drain_chunked(s, c), word) << "chunk=" << c;
    EXPECT_EQ(s.next_chunk(std::span<Symbol>{}), 0u);  // empty out is a no-op
  }
}

TEST(ChunkedReads, GeneratorStreamMatchesNext) {
  const auto make = [] {
    return GeneratorStream(
        [](std::uint64_t i) -> std::optional<Symbol> {
          if (i >= 11) return std::nullopt;
          return i % 3 == 2 ? Symbol::kSep
                            : (i % 2 == 0 ? Symbol::kZero : Symbol::kOne);
        },
        11);
  };
  auto reference = make();
  const std::string expect = materialize(reference);
  for (const std::size_t c : {1u, 4u, 16u}) {
    auto g = make();
    EXPECT_EQ(drain_chunked(g, c), expect) << "chunk=" << c;
  }
}

TEST(ChunkedReads, InterleavesWithNext) {
  // next() and next_chunk() advance the same cursor.
  StringStream s("01#10#011");
  EXPECT_EQ(symbol_to_char(*s.next()), '0');
  std::vector<Symbol> buf(4);
  ASSERT_EQ(s.next_chunk(buf), 4u);
  std::string mid;
  for (const Symbol sym : buf) mid.push_back(symbol_to_char(sym));
  EXPECT_EQ(mid, "1#10");
  EXPECT_EQ(symbol_to_char(*s.next()), '#');
  EXPECT_EQ(drain_chunked(s, 2), "011");
  EXPECT_FALSE(s.next().has_value());
}

TEST(ChunkedReads, WrappersMatchPerSymbolDrain) {
  const std::string word = "11#0101#0011#";
  const auto base = [&] { return std::make_unique<StringStream>(word); };
  for (const std::size_t c : {1u, 3u, 7u, 64u}) {
    {
      TruncatedStream t(base(), 5);
      EXPECT_EQ(drain_chunked(t, c), word.substr(0, 5)) << "chunk=" << c;
    }
    {
      CorruptingStream corrupt(base(), 4, Symbol::kSep);
      std::string expect = word;
      expect[4] = '#';
      EXPECT_EQ(drain_chunked(corrupt, c), expect) << "chunk=" << c;
    }
    {
      AppendingStream append(base(), "01#");
      EXPECT_EQ(drain_chunked(append, c), word + "01#") << "chunk=" << c;
    }
  }
}

TEST(ChunkedReads, EmptyRequestOnAppendingStreamIsANoop) {
  // An empty span must not be mistaken for the inner stream's end: the
  // whole inner word still has to come through afterwards.
  AppendingStream a(std::make_unique<StringStream>("01#"), "11");
  EXPECT_EQ(a.next_chunk(std::span<Symbol>{}), 0u);
  EXPECT_EQ(drain_chunked(a, 4), "01#11");
}

TEST(ChunkedReads, CorruptionLandsOnChunkBoundaries) {
  // The target index at the first/last slot of a chunk and across a
  // next()/next_chunk hand-off.
  const std::string word(16, '0');
  for (std::uint64_t target = 0; target < 16; ++target) {
    auto inner = std::make_unique<StringStream>(word);
    CorruptingStream corrupt(std::move(inner), target, Symbol::kOne);
    // Mixed transport: two next() calls, then chunks of 4.
    std::string out;
    out.push_back(symbol_to_char(*corrupt.next()));
    out.push_back(symbol_to_char(*corrupt.next()));
    out += drain_chunked(corrupt, 4);
    std::string expect = word;
    expect[static_cast<std::size_t>(target)] = '1';
    EXPECT_EQ(out, expect) << "target=" << target;
  }
}

// ---------------------------------------------------------------------------
// Composed failure-injection stacks: every wrapper wrapping every other,
// through both transports, the way the fuzz generator builds them.
// ---------------------------------------------------------------------------

/// The canonical three-deep stack: append "01#" to the base word, corrupt
/// absolute position 4 to '#', keep the first 9 symbols.
std::unique_ptr<SymbolStream> make_full_stack(const std::string& base) {
  auto inner = std::make_unique<StringStream>(base);
  auto appended = std::make_unique<AppendingStream>(std::move(inner), "01#");
  auto corrupted =
      std::make_unique<CorruptingStream>(std::move(appended), 4, Symbol::kSep);
  return std::make_unique<TruncatedStream>(std::move(corrupted), 9);
}

TEST(ComposedWrapperStacks, NextPathAppliesInWrappingOrder) {
  // base "01#10#" -> append "01#" = "01#10#01#" -> corrupt[4] ('0' -> '#')
  // = "01#1##01#" -> keep 9 (the whole thing).
  auto s = make_full_stack("01#10#");
  EXPECT_EQ(materialize(*s), "01#1##01#");
}

TEST(ComposedWrapperStacks, ChunkPathMatchesNextPathAtEveryChunkSize) {
  auto reference = make_full_stack("01#10#");
  const std::string expect = materialize(*reference);
  for (const std::size_t c : {1u, 2u, 3u, 4u, 7u, 64u}) {
    auto s = make_full_stack("01#10#");
    EXPECT_EQ(drain_chunked(*s, c), expect) << "chunk=" << c;
  }
}

TEST(ComposedWrapperStacks, MixedTransportThroughTheFullStack) {
  // next() and next_chunk() share one cursor even with three wrappers
  // between the caller and the string.
  auto s = make_full_stack("01#10#");
  EXPECT_EQ(symbol_to_char(*s->next()), '0');
  EXPECT_EQ(symbol_to_char(*s->next()), '1');
  std::vector<Symbol> buf(3);
  ASSERT_EQ(s->next_chunk(buf), 3u);
  std::string mid;
  for (const Symbol sym : buf) mid.push_back(symbol_to_char(sym));
  EXPECT_EQ(mid, "#1#");
  EXPECT_EQ(drain_chunked(*s, 2), "#01#");
  EXPECT_FALSE(s->next().has_value());
}

TEST(ComposedWrapperStacks, CorruptionInsideTheAppendedSuffix) {
  // The corruption target lands past the inner stream's end, inside the
  // appended suffix — the wrappers must still compose exactly.
  auto inner = std::make_unique<StringStream>("000");
  auto appended = std::make_unique<AppendingStream>(std::move(inner), "000");
  CorruptingStream corrupt(std::move(appended), 4, Symbol::kOne);
  EXPECT_EQ(materialize(corrupt), "000010");
  auto inner2 = std::make_unique<StringStream>("000");
  auto appended2 = std::make_unique<AppendingStream>(std::move(inner2), "000");
  CorruptingStream corrupt2(std::move(appended2), 4, Symbol::kOne);
  EXPECT_EQ(drain_chunked(corrupt2, 2), "000010");
}

TEST(ComposedWrapperStacks, LengthHintPropagatesThroughTheFullStack) {
  // Known inner: |base| = 6, +3 suffix, corruption keeps it, truncation
  // takes min(9, 9) = 9.
  auto s = make_full_stack("01#10#");
  ASSERT_TRUE(s->length_hint().has_value());
  EXPECT_EQ(*s->length_hint(), 9u);
  // Truncation below the stack's length wins.
  auto t = std::make_unique<TruncatedStream>(make_full_stack("01#10#"), 4);
  ASSERT_TRUE(t->length_hint().has_value());
  EXPECT_EQ(*t->length_hint(), 4u);
}

TEST(ComposedWrapperStacks, UnknownInnerHintStaysUnknownThroughTheStack) {
  auto gen = std::make_unique<GeneratorStream>(
      [](std::uint64_t i) -> std::optional<Symbol> {
        if (i >= 4) return std::nullopt;
        return Symbol::kZero;
      });
  auto appended = std::make_unique<AppendingStream>(std::move(gen), "11");
  auto corrupted =
      std::make_unique<CorruptingStream>(std::move(appended), 1, Symbol::kOne);
  TruncatedStream t(std::move(corrupted), 3);
  // No layer may invent a hint the inner stream cannot back.
  EXPECT_FALSE(t.length_hint().has_value());
  EXPECT_EQ(materialize(t), "010");
}

// ---------------------------------------------------------------------------
// length_hint propagation through the wrappers.
// ---------------------------------------------------------------------------

TEST(LengthHints, TruncatedReportsMinOfKeepAndInner) {
  {
    TruncatedStream t(std::make_unique<StringStream>("111111"), 3);
    ASSERT_TRUE(t.length_hint().has_value());
    EXPECT_EQ(*t.length_hint(), 3u);  // keep < inner
  }
  {
    TruncatedStream t(std::make_unique<StringStream>("11"), 9);
    ASSERT_TRUE(t.length_hint().has_value());
    EXPECT_EQ(*t.length_hint(), 2u);  // inner < keep
  }
  {
    // No inner hint: min(keep, unknown) is unknown, not keep.
    auto gen = std::make_unique<GeneratorStream>(
        [](std::uint64_t) -> std::optional<Symbol> { return std::nullopt; });
    TruncatedStream t(std::move(gen), 5);
    EXPECT_FALSE(t.length_hint().has_value());
  }
}

TEST(LengthHints, CorruptingForwardsInnerHint) {
  CorruptingStream c(std::make_unique<StringStream>("0101"), 1, Symbol::kSep);
  ASSERT_TRUE(c.length_hint().has_value());
  EXPECT_EQ(*c.length_hint(), 4u);
  auto gen = std::make_unique<GeneratorStream>(
      [](std::uint64_t) -> std::optional<Symbol> { return std::nullopt; });
  CorruptingStream unknown(std::move(gen), 0, Symbol::kSep);
  EXPECT_FALSE(unknown.length_hint().has_value());
}

TEST(LengthHints, AppendingAddsSuffixToKnownInner) {
  AppendingStream a(std::make_unique<StringStream>("01#"), "11");
  ASSERT_TRUE(a.length_hint().has_value());
  EXPECT_EQ(*a.length_hint(), 5u);
  auto gen = std::make_unique<GeneratorStream>(
      [](std::uint64_t) -> std::optional<Symbol> { return std::nullopt; });
  AppendingStream unknown(std::move(gen), "11");
  EXPECT_FALSE(unknown.length_hint().has_value());
}

}  // namespace
