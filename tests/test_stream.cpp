// Unit tests: symbol streams and failure-injection wrappers.
#include <gtest/gtest.h>

#include <memory>

#include "qols/stream/symbol_stream.hpp"

namespace {

using namespace qols::stream;

TEST(SymbolConversion, RoundTrip) {
  for (char c : {'0', '1', '#'}) {
    auto s = symbol_from_char(c);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(symbol_to_char(*s), c);
  }
}

TEST(SymbolConversion, RejectsForeignCharacters) {
  for (char c : {'2', 'a', ' ', '\n', 'x'}) {
    EXPECT_FALSE(symbol_from_char(c).has_value()) << c;
  }
}

TEST(StringStream, YieldsAllSymbolsThenEnds) {
  StringStream s("01#10");
  std::string out;
  while (auto sym = s.next()) out.push_back(symbol_to_char(*sym));
  EXPECT_EQ(out, "01#10");
  EXPECT_FALSE(s.next().has_value());  // stays ended
}

TEST(StringStream, RejectsForeignAlphabet) {
  EXPECT_THROW(StringStream("01x"), std::invalid_argument);
}

TEST(StringStream, LengthHint) {
  StringStream s("0101");
  ASSERT_TRUE(s.length_hint().has_value());
  EXPECT_EQ(*s.length_hint(), 4u);
}

TEST(GeneratorStream, ProducesFromCallable) {
  GeneratorStream g(
      [](std::uint64_t i) -> std::optional<Symbol> {
        if (i >= 5) return std::nullopt;
        return i % 2 == 0 ? Symbol::kZero : Symbol::kOne;
      },
      5);
  EXPECT_EQ(materialize(g), "01010");
}

TEST(TruncatedStream, CutsAtLimit) {
  auto inner = std::make_unique<StringStream>("111111");
  TruncatedStream t(std::move(inner), 3);
  EXPECT_EQ(materialize(t), "111");
}

TEST(TruncatedStream, ZeroKeepYieldsNothing) {
  auto inner = std::make_unique<StringStream>("101");
  TruncatedStream t(std::move(inner), 0);
  EXPECT_FALSE(t.next().has_value());
}

TEST(CorruptingStream, ReplacesExactlyOnePosition) {
  auto inner = std::make_unique<StringStream>("00000");
  CorruptingStream c(std::move(inner), 2, Symbol::kOne);
  EXPECT_EQ(materialize(c), "00100");
}

TEST(CorruptingStream, PositionBeyondEndIsNoop) {
  auto inner = std::make_unique<StringStream>("000");
  CorruptingStream c(std::move(inner), 10, Symbol::kOne);
  EXPECT_EQ(materialize(c), "000");
}

TEST(AppendingStream, AddsSuffixAfterInnerEnds) {
  auto inner = std::make_unique<StringStream>("01#");
  AppendingStream a(std::move(inner), "11");
  EXPECT_EQ(materialize(a), "01#11");
}

TEST(AppendingStream, RejectsForeignSuffix) {
  auto inner = std::make_unique<StringStream>("0");
  EXPECT_THROW(AppendingStream(std::move(inner), "0z"), std::invalid_argument);
}

TEST(Wrappers, Compose) {
  // corrupt then truncate: operations apply in wrapping order.
  auto inner = std::make_unique<StringStream>("000000");
  auto corrupted =
      std::make_unique<CorruptingStream>(std::move(inner), 1, Symbol::kOne);
  TruncatedStream t(std::move(corrupted), 4);
  EXPECT_EQ(materialize(t), "0100");
}

}  // namespace
