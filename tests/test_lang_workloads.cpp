// Unit tests: adversarial workload generators, plus a cross-check that the
// classical machines survive every family (the quantum side is E17's job,
// covered statistically in the recognizer tests).
#include <gtest/gtest.h>

#include "qols/core/classical_recognizers.hpp"
#include "qols/lang/workloads.hpp"
#include "qols/machine/online_recognizer.hpp"

namespace {

using namespace qols::lang;
using qols::machine::run_stream;
using qols::util::Rng;

TEST(Workloads, EnumerationIsComplete) {
  const auto all = all_workload_families();
  EXPECT_EQ(all.size(), 7u);
  for (auto f : all) {
    EXPECT_FALSE(workload_family_name(f).empty());
  }
}

TEST(Workloads, NamesAreDistinct) {
  const auto all = all_workload_families();
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(workload_family_name(all[i]), workload_family_name(all[j]));
    }
  }
}

TEST(Workloads, MembershipMatchesDeclaredFlag) {
  Rng rng(1);
  for (auto f : all_workload_families()) {
    for (unsigned k = 1; k <= 3; ++k) {
      auto inst = make_workload_instance(f, k, rng);
      ASSERT_EQ(inst.member(), workload_family_is_member(f))
          << workload_family_name(f) << " k=" << k;
    }
  }
}

TEST(Workloads, FirstAndLastIndexPlaceTheWitnessExactly) {
  Rng rng(2);
  auto first = make_workload_instance(WorkloadFamily::kFirstIndex, 2, rng);
  EXPECT_TRUE(first.x().get(0));
  EXPECT_TRUE(first.y().get(0));
  auto last = make_workload_instance(WorkloadFamily::kLastIndex, 2, rng);
  EXPECT_TRUE(last.x().get(last.m() - 1));
  EXPECT_TRUE(last.y().get(last.m() - 1));
}

TEST(Workloads, BlockBoundaryWitnessSitsAtWindowEdge) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    auto inst = make_workload_instance(WorkloadFamily::kBlockBoundary, 3, rng);
    const std::uint64_t block = inst.repetitions();  // 2^k
    bool found_edge = false;
    for (std::uint64_t i = 0; i < inst.m(); ++i) {
      if (inst.x().get(i) && inst.y().get(i)) {
        if ((i + 1) % block == 0) found_edge = true;
      }
    }
    ASSERT_TRUE(found_edge);
  }
}

TEST(Workloads, DensityExtremesHaveExactlyOneWitness) {
  Rng rng(4);
  auto dense_x =
      make_workload_instance(WorkloadFamily::kDenseXSparseY, 3, rng);
  EXPECT_EQ(dense_x.intersections(), 1u);
  EXPECT_EQ(dense_x.x().popcount(), dense_x.m());  // x all ones
  EXPECT_EQ(dense_x.y().popcount(), 1u);
  auto dense_y =
      make_workload_instance(WorkloadFamily::kSparseXDenseY, 3, rng);
  EXPECT_EQ(dense_y.intersections(), 1u);
  EXPECT_EQ(dense_y.y().popcount(), dense_y.m());
}

TEST(Workloads, ClusteredWitnessesShareOneWindow) {
  Rng rng(5);
  auto inst =
      make_workload_instance(WorkloadFamily::kClusteredIntersections, 3, rng);
  const std::uint64_t block = inst.repetitions();
  std::uint64_t first_window = block;  // invalid sentinel
  for (std::uint64_t i = 0; i < inst.m(); ++i) {
    if (inst.x().get(i) && inst.y().get(i)) {
      const std::uint64_t w = i / block;
      if (first_window == block) first_window = w;
      ASSERT_EQ(w, first_window);
    }
  }
  EXPECT_GE(inst.intersections(), 2u);
}

// The deterministic block machine must decide EVERY family correctly —
// especially block-boundary witnesses, its most delicate case.
TEST(Workloads, BlockMachineSurvivesAllFamilies) {
  Rng rng(6);
  for (auto f : all_workload_families()) {
    for (unsigned k = 2; k <= 3; ++k) {
      auto inst = make_workload_instance(f, k, rng);
      qols::core::ClassicalBlockRecognizer rec(1);
      auto s = inst.stream();
      ASSERT_EQ(run_stream(*s, rec), inst.member())
          << workload_family_name(f) << " k=" << k;
    }
  }
}

TEST(Workloads, FullMachineSurvivesAllFamilies) {
  Rng rng(7);
  for (auto f : all_workload_families()) {
    auto inst = make_workload_instance(f, 2, rng);
    qols::core::ClassicalFullRecognizer rec(1);
    auto s = inst.stream();
    ASSERT_EQ(run_stream(*s, rec), inst.member()) << workload_family_name(f);
  }
}

}  // namespace
