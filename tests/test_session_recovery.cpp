// Crash/restart harness for the durable session table (PR 10).
//
// The kill-point matrix is the heart: one scripted session workload runs
// against a durable RecognizerService with the injected-crash budget armed
// at every value n = 0, 1, 2, ... until the script completes uninterrupted.
// A tiny simulator mirrors the service's crash-point ordering (documented
// in session_table.hpp / recognizer_service.cpp) to predict, for each n,
// exactly which sessions must be recovered — evicted, with exactly the
// symbols their last spill captured — and which were resident at the crash
// and must be reported lost. Every recovered session is then fed its unfed
// suffix and finished; verdict AND SpaceReport must equal an uninterrupted
// run bit for bit.
//
// Around the matrix: the typed-error taxonomy (torn/corrupt/missing
// manifests, orphan and missing spills) and the compaction invariant.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "qols/lang/ldisj_instance.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/service/session_table.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/util/rng.hpp"
#include "qols/util/thread_pool.hpp"

namespace {

namespace fs = std::filesystem;

using qols::lang::LDisjInstance;
using qols::service::InjectedCrash;
using qols::service::ManifestCorrupt;
using qols::service::ManifestMissing;
using qols::service::ManifestTorn;
using qols::service::OrphanSpill;
using qols::service::RecognizerKind;
using qols::service::RecognizerService;
using qols::service::SessionTable;
using qols::service::SpillMissing;
using qols::stream::Symbol;

fs::path unique_dir(const std::string& tag) {
  static int counter = 0;
  const auto dir = fs::temp_directory_path() /
                   ("qols-recovery-" + tag + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(counter++));
  fs::create_directories(dir);
  return dir;
}

std::vector<Symbol> word_of(const LDisjInstance& inst) {
  std::vector<Symbol> out;
  auto s = inst.stream();
  while (auto sym = s->next()) out.push_back(*sym);
  return out;
}

RecognizerService::Config durable_config(const fs::path& dir,
                                         qols::util::ThreadPool* pool) {
  RecognizerService::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.spill_dir = dir.string();
  cfg.durable = true;
  cfg.pool = pool;
  return cfg;
}

void expect_verdict_eq(const RecognizerService::Verdict& got,
                       const RecognizerService::Verdict& want,
                       const std::string& what) {
  EXPECT_EQ(got.accepted, want.accepted) << what;
  EXPECT_EQ(got.fully_simulated, want.fully_simulated) << what;
  EXPECT_EQ(got.space.classical_bits, want.space.classical_bits) << what;
  EXPECT_EQ(got.space.qubits, want.space.qubits) << what;
}

// ---------------------------------------------------------------------------
// The kill-point matrix.
// ---------------------------------------------------------------------------

enum class OpKind : std::uint8_t {
  kOpen,     ///< open the slot's session (seed = slot seed)
  kFeed,     ///< feed the next `count` symbols of the slot's word
  kEvict,    ///< spill the slot
  kFinish,   ///< finish the slot (collect its verdict)
  kMigrate,  ///< move the slot to shard `target`
  kPersist,  ///< checkpoint: evict every resident session + compact
};

struct Op {
  OpKind kind;
  std::size_t slot = 0;
  std::size_t count = 0;   // kFeed
  std::size_t target = 0;  // kMigrate
};

/// What the simulator knows about one scripted session.
struct SimSession {
  bool open = false;
  bool evicted = false;
  std::size_t fed = 0;  ///< symbols consumed; == spill content when evicted
  std::size_t shard = 0;
};

struct SimResult {
  std::vector<SimSession> slots;
  bool crashed = false;
};

/// Mirrors the service's crash-point ordering exactly: every journaled
/// operation fires crash_point() BEFORE any side effect, and compound
/// operations (finish-of-evicted = revive + finish, resident migrate =
/// evict + migrate + revive, persist = evicts + compact) fire one per leg.
SimResult simulate(const std::vector<Op>& ops, std::size_t slot_count,
                   std::size_t shard_count, std::uint64_t budget) {
  SimResult r;
  r.slots.resize(slot_count);
  std::uint64_t remaining = budget;
  // True = the crash fires here; the current leg has NOT taken effect.
  const auto cp = [&]() -> bool {
    if (remaining == 0) return true;
    --remaining;
    return false;
  };
  for (const Op& op : ops) {
    SimSession& s = r.slots[op.slot];
    switch (op.kind) {
      case OpKind::kOpen:
        if (cp()) {
          r.crashed = true;
          return r;
        }
        s.open = true;
        s.shard = (op.slot + 1) % shard_count;  // service ids start at 1
        break;
      case OpKind::kFeed:
        if (s.evicted) {
          if (cp()) {
            r.crashed = true;
            return r;
          }
          s.evicted = false;
        }
        s.fed += op.count;
        break;
      case OpKind::kEvict:
        if (!s.evicted) {
          if (cp()) {
            r.crashed = true;
            return r;
          }
          s.evicted = true;
        }
        break;
      case OpKind::kFinish:
        if (s.evicted) {
          if (cp()) {
            r.crashed = true;
            return r;
          }
          s.evicted = false;
        }
        if (cp()) {
          r.crashed = true;
          return r;
        }
        s.open = false;
        break;
      case OpKind::kMigrate: {
        if (op.target == s.shard) break;
        const bool was_resident = !s.evicted;
        if (was_resident) {
          if (cp()) {
            r.crashed = true;
            return r;
          }
          s.evicted = true;
        }
        if (cp()) {
          r.crashed = true;
          return r;
        }
        s.shard = op.target;
        if (was_resident) {
          if (cp()) {
            r.crashed = true;
            return r;
          }
          s.evicted = false;
        }
        break;
      }
      case OpKind::kPersist:
        // persist() evicts residents in id order == slot order here.
        for (SimSession& t : r.slots) {
          if (t.open && !t.evicted) {
            if (cp()) {
              r.crashed = true;
              return r;
            }
            t.evicted = true;
          }
        }
        if (cp()) {  // the compaction's own crash point
          r.crashed = true;
          return r;
        }
        break;
    }
  }
  return r;
}

/// Runs the script against the real service. Returns true when it completed
/// without the injected crash firing; collected in-script verdicts land in
/// `verdicts` keyed by slot.
bool run_script(RecognizerService& svc, const std::vector<Op>& ops,
                const std::vector<std::vector<Symbol>>& slot_words,
                const std::vector<std::uint64_t>& slot_seeds,
                std::map<std::size_t, RecognizerService::Verdict>& verdicts) {
  std::vector<std::uint64_t> ids(slot_words.size(), 0);
  std::vector<std::size_t> cursor(slot_words.size(), 0);
  try {
    for (const Op& op : ops) {
      switch (op.kind) {
        case OpKind::kOpen:
          ids[op.slot] = svc.open(slot_seeds[op.slot]);
          break;
        case OpKind::kFeed: {
          const auto& w = slot_words[op.slot];
          const std::size_t n = std::min(op.count, w.size() - cursor[op.slot]);
          svc.feed(ids[op.slot],
                   std::span<const Symbol>(w.data() + cursor[op.slot], n));
          cursor[op.slot] += n;
          break;
        }
        case OpKind::kEvict:
          svc.evict(ids[op.slot]);
          break;
        case OpKind::kFinish:
          verdicts.emplace(op.slot, svc.finish(ids[op.slot]));
          break;
        case OpKind::kMigrate:
          svc.migrate(ids[op.slot], op.target);
          break;
        case OpKind::kPersist:
          svc.persist();
          break;
      }
    }
  } catch (const InjectedCrash&) {
    return false;
  }
  return true;
}

TEST(SessionRecovery, KillPointMatrixRecoversExactVerdicts) {
  constexpr std::size_t kSlots = 3;
  constexpr std::size_t kShards = 4;
  qols::util::ThreadPool pool(kShards);

  qols::util::Rng rng(404);
  const auto member = word_of(LDisjInstance::make_disjoint(1, rng));
  const auto crossing =
      word_of(LDisjInstance::make_with_intersections(1, 1, rng));
  const std::vector<std::vector<Symbol>> slot_words = {member, crossing,
                                                       member};
  const std::vector<std::uint64_t> slot_seeds = {11, 12, 13};

  // Uninterrupted references: one plain service run per slot.
  std::vector<RecognizerService::Verdict> reference;
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    RecognizerService::Config cfg;
    cfg.spec.kind = RecognizerKind::kClassicalBlock;
    cfg.pool = &pool;
    RecognizerService svc(cfg);
    const auto id = svc.open(slot_seeds[slot]);
    svc.feed(id, slot_words[slot]);
    reference.push_back(svc.finish(id));
  }

  // The script: every record type, both finish paths, both migrate paths,
  // revive-by-feed, and a closing persist(). Slot ids are 1, 2, 3 on shards
  // 1, 2, 3 (id % 4).
  const std::size_t cut0 = slot_words[0].size() / 2;
  const std::size_t cut2 = slot_words[2].size() / 3;
  const std::vector<Op> ops = {
      {OpKind::kOpen, 0},
      {OpKind::kOpen, 1},
      {OpKind::kOpen, 2},
      {OpKind::kFeed, 0, cut0},
      {OpKind::kEvict, 0},
      {OpKind::kFeed, 0, slot_words[0].size() - cut0},  // revive + feed
      {OpKind::kFeed, 1, slot_words[1].size()},
      {OpKind::kEvict, 1},
      {OpKind::kMigrate, 1, 0, 0},   // evicted migrate: pin change only
      {OpKind::kFinish, 1},          // finish-of-evicted: revive + finish
      {OpKind::kFeed, 2, cut2},
      {OpKind::kMigrate, 2, 0, 0},   // resident migrate: evict+migrate+revive
      {OpKind::kFeed, 2, slot_words[2].size() - cut2},
      {OpKind::kPersist, 0},
  };

  bool completed = false;
  std::uint64_t n = 0;
  for (; !completed && n < 64; ++n) {
    const auto dir = unique_dir("matrix");
    const SimResult sim = simulate(ops, kSlots, kShards, n);
    std::map<std::size_t, RecognizerService::Verdict> verdicts;
    {
      RecognizerService svc(durable_config(dir, &pool));
      svc.persist_abort_after(n);
      completed = run_script(svc, ops, slot_words, slot_seeds, verdicts);
      ASSERT_EQ(completed, !sim.crashed) << "crash budget " << n;
    }  // durable dtor leaves the manifest and spills in place

    // Verdicts the script collected before the crash are final — they must
    // already match the uninterrupted run.
    for (const auto& [slot, v] : verdicts) {
      expect_verdict_eq(v, reference[slot],
                        "in-script slot " + std::to_string(slot) +
                            " at budget " + std::to_string(n));
    }

    // What the manifest must yield, from the simulator.
    std::vector<std::uint64_t> want_recovered;
    std::vector<std::uint64_t> want_lost;
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      const SimSession& s = sim.slots[slot];
      if (!s.open) continue;
      (s.evicted ? want_recovered : want_lost).push_back(slot + 1);
    }

    // Restart: a fresh service over the same directory.
    RecognizerService svc(durable_config(dir, &pool));
    ASSERT_TRUE(svc.pending_recovery()) << "budget " << n;
    const auto report = svc.recover();
    EXPECT_EQ(report.sessions_recovered, want_recovered.size())
        << "budget " << n;
    auto lost = report.lost;
    std::sort(lost.begin(), lost.end());
    EXPECT_EQ(lost, want_lost) << "budget " << n;
    EXPECT_EQ(svc.stats().recovered_sessions, want_recovered.size());

    // Recovery compacts immediately: replaying the journal now must yield
    // exactly the adopted sessions, all evicted.
    const auto replayed = SessionTable::replay(dir.string());
    ASSERT_EQ(replayed.live.size(), want_recovered.size()) << "budget " << n;
    for (const auto id : want_recovered) {
      const auto it = replayed.live.find(id);
      ASSERT_NE(it, replayed.live.end()) << "budget " << n;
      EXPECT_TRUE(it->second.evicted);
      EXPECT_EQ(it->second.seed, slot_seeds[id - 1]);
      EXPECT_EQ(it->second.shard, sim.slots[id - 1].shard);
    }

    // Resume every recovered session: feed its unfed suffix, finish, and
    // demand the uninterrupted verdict — bit for bit, SpaceReport included.
    for (const auto id : want_recovered) {
      const std::size_t slot = id - 1;
      const auto& w = slot_words[slot];
      const std::size_t fed = sim.slots[slot].fed;
      ASSERT_LE(fed, w.size());
      if (fed < w.size()) {
        svc.feed(id, std::span<const Symbol>(w.data() + fed, w.size() - fed));
      }
      expect_verdict_eq(svc.finish(id), reference[slot],
                        "recovered slot " + std::to_string(slot) +
                            " at budget " + std::to_string(n));
    }
    fs::remove_all(dir);
  }
  // The loop must terminate by completing the script, and only after
  // exercising a healthy number of distinct kill points.
  EXPECT_TRUE(completed);
  EXPECT_GE(n, 10u);
}

// ---------------------------------------------------------------------------
// Typed manifest errors (SessionTable::replay directly).
// ---------------------------------------------------------------------------

TEST(SessionTableErrors, MissingJournalFile) {
  const auto dir = unique_dir("missing");
  EXPECT_THROW(SessionTable::replay(dir.string()), ManifestMissing);
  fs::remove_all(dir);
}

TEST(SessionTableErrors, ZeroByteJournalIsMissingNotTorn) {
  // A crash before the header write became durable leaves an empty file:
  // nothing was ever recoverable from it, so it is "missing", not damage.
  const auto dir = unique_dir("zerobyte");
  std::ofstream(SessionTable::path_in(dir.string()), std::ios::binary);
  EXPECT_THROW(SessionTable::replay(dir.string()), ManifestMissing);
  fs::remove_all(dir);
}

TEST(SessionTableErrors, TruncatedHeaderIsTorn) {
  const auto dir = unique_dir("shorthdr");
  {
    std::ofstream out(SessionTable::path_in(dir.string()), std::ios::binary);
    out.write("QOLS", 4);
  }
  EXPECT_THROW(SessionTable::replay(dir.string()), ManifestTorn);
  fs::remove_all(dir);
}

TEST(SessionTableErrors, BadMagicIsCorrupt) {
  const auto dir = unique_dir("badmagic");
  {
    std::ofstream out(SessionTable::path_in(dir.string()), std::ios::binary);
    out.write("NOTQOLS1", 8);
  }
  EXPECT_THROW(SessionTable::replay(dir.string()), ManifestCorrupt);
  fs::remove_all(dir);
}

TEST(SessionTableErrors, TornFinalRecord) {
  const auto dir = unique_dir("torn");
  {
    SessionTable table({dir.string(), 0});
    table.record_open(1, 7, 1);
    table.record_evict(1, 99);
  }
  const auto path = SessionTable::path_in(dir.string());
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 3);  // the classic torn final append
  EXPECT_THROW(SessionTable::replay(dir.string()), ManifestTorn);
  fs::remove_all(dir);
}

TEST(SessionTableErrors, CrcFlipIsCorrupt) {
  const auto dir = unique_dir("crcflip");
  {
    SessionTable table({dir.string(), 0});
    table.record_open(1, 7, 1);
  }
  const auto path = SessionTable::path_in(dir.string());
  // Flip one byte inside the record payload (past header + 8-byte frame).
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  ASSERT_GT(size, 17u);
  f.seekp(17);
  char b = 0;
  f.seekg(17);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(17);
  f.write(&b, 1);
  f.close();
  EXPECT_THROW(SessionTable::replay(dir.string()), ManifestCorrupt);
  fs::remove_all(dir);
}

TEST(SessionTableErrors, StateMachineViolationsAreCorrupt) {
  {  // revive of a session never opened
    const auto dir = unique_dir("sm-revive");
    {
      SessionTable table({dir.string(), 0});
      table.record_revive(9);
    }
    EXPECT_THROW(SessionTable::replay(dir.string()), ManifestCorrupt);
    fs::remove_all(dir);
  }
  {  // open of an id that is already live
    const auto dir = unique_dir("sm-reopen");
    {
      SessionTable table({dir.string(), 0});
      table.record_open(3, 1, 0);
      table.record_open(3, 2, 0);
    }
    EXPECT_THROW(SessionTable::replay(dir.string()), ManifestCorrupt);
    fs::remove_all(dir);
  }
  {  // evict of an unknown id
    const auto dir = unique_dir("sm-evict");
    {
      SessionTable table({dir.string(), 0});
      table.record_evict(5, 10);
    }
    EXPECT_THROW(SessionTable::replay(dir.string()), ManifestCorrupt);
    fs::remove_all(dir);
  }
}

TEST(SessionTable, ReplayRoundTripsEveryRecordType) {
  const auto dir = unique_dir("roundtrip");
  {
    SessionTable table({dir.string(), 0});
    table.record_open(1, 11, 1);
    table.record_open(2, 12, 2);
    table.record_open(3, 13, 3);
    table.record_evict(1, 100);
    table.record_revive(1);
    table.record_evict(2, 200);
    table.record_migrate(2, 0);
    table.record_finish(3);
    EXPECT_EQ(table.records_appended(), 8u);
  }
  const auto r = SessionTable::replay(dir.string());
  EXPECT_EQ(r.records, 8u);
  ASSERT_EQ(r.live.size(), 2u);  // 3 finished
  EXPECT_FALSE(r.live.at(1).evicted);
  EXPECT_EQ(r.live.at(1).seed, 11u);
  EXPECT_EQ(r.live.at(1).shard, 1u);
  EXPECT_TRUE(r.live.at(2).evicted);
  EXPECT_EQ(r.live.at(2).spill_bytes, 200u);
  EXPECT_EQ(r.live.at(2).shard, 0u);  // the migrate moved it
  fs::remove_all(dir);
}

TEST(SessionTable, CompactionReplacesTheJournalWithTheMinimalEquivalent) {
  const auto dir = unique_dir("compact");
  std::map<std::uint64_t, SessionTable::LiveSession> live;
  live[4] = {40, 1, false, 0};
  live[9] = {90, 2, true, 123};
  {
    SessionTable table({dir.string(), 0});
    // A noisy history that compaction must fold away.
    table.record_open(1, 10, 1);
    table.record_open(4, 40, 0);
    table.record_evict(1, 55);
    table.record_revive(1);
    table.record_finish(1);
    table.record_migrate(4, 1);
    table.record_open(9, 90, 2);
    table.record_evict(9, 123);
    table.compact(live);
    EXPECT_EQ(table.compactions(), 1u);
    // The handle keeps appending to the compacted file.
    table.record_finish(4);
  }
  const auto r = SessionTable::replay(dir.string());
  // kOpen(4) + kOpen(9) + kEvict(9) from the compaction, + the kFinish.
  EXPECT_EQ(r.records, 4u);
  ASSERT_EQ(r.live.size(), 1u);
  EXPECT_TRUE(r.live.at(9).evicted);
  EXPECT_EQ(r.live.at(9).spill_bytes, 123u);
  fs::remove_all(dir);
}

TEST(SessionTable, EvictRecordsForceASync) {
  const auto dir = unique_dir("sync");
  SessionTable table({dir.string(), 1000});  // batching would defer syncs
  table.record_open(1, 1, 0);
  const auto before = table.syncs();
  table.record_evict(1, 10);
  EXPECT_GT(table.syncs(), before);
  fs::remove_all(dir);
}

TEST(SessionTable, DeadTableRefusesAppends) {
  const auto dir = unique_dir("dead");
  SessionTable table({dir.string(), 0});
  table.abort_after(0);
  EXPECT_THROW(table.crash_point(), InjectedCrash);
  // Crashed processes stay crashed: every later write throws too.
  EXPECT_THROW(table.record_open(1, 1, 0), InjectedCrash);
  EXPECT_THROW(table.sync(), InjectedCrash);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Service-level recovery errors (spill files vs the manifest).
// ---------------------------------------------------------------------------

TEST(SessionRecoveryErrors, OrphanSpillRefusesRecovery) {
  qols::util::ThreadPool pool(2);
  const auto dir = unique_dir("orphan");
  qols::util::Rng rng(7);
  const auto word = word_of(LDisjInstance::make_disjoint(1, rng));
  {
    RecognizerService svc(durable_config(dir, &pool));
    const auto id = svc.open(1);
    svc.feed(id, word);
    svc.evict(id);
  }
  // A spill file the journal does not claim — the signature of a crash
  // between the spill write and its journal record.
  std::ofstream(dir / "qols-session-99.snap", std::ios::binary) << "x";
  RecognizerService svc(durable_config(dir, &pool));
  ASSERT_TRUE(svc.pending_recovery());
  EXPECT_THROW(svc.recover(), OrphanSpill);
  fs::remove_all(dir);
}

TEST(SessionRecoveryErrors, MissingSpillRefusesRecovery) {
  qols::util::ThreadPool pool(2);
  const auto dir = unique_dir("nospill");
  qols::util::Rng rng(7);
  const auto word = word_of(LDisjInstance::make_disjoint(1, rng));
  {
    RecognizerService svc(durable_config(dir, &pool));
    const auto id = svc.open(1);
    svc.feed(id, word);
    svc.evict(id);
  }
  fs::remove(dir / "qols-session-1.snap");
  RecognizerService svc(durable_config(dir, &pool));
  EXPECT_THROW(svc.recover(), SpillMissing);
  fs::remove_all(dir);
}

TEST(SessionRecoveryErrors, WrongSizeSpillRefusesRecovery) {
  qols::util::ThreadPool pool(2);
  const auto dir = unique_dir("shortspill");
  qols::util::Rng rng(7);
  const auto word = word_of(LDisjInstance::make_disjoint(1, rng));
  {
    RecognizerService svc(durable_config(dir, &pool));
    const auto id = svc.open(1);
    svc.feed(id, word);
    svc.evict(id);
  }
  const auto spill = dir / "qols-session-1.snap";
  fs::resize_file(spill, fs::file_size(spill) - 1);
  RecognizerService svc(durable_config(dir, &pool));
  EXPECT_THROW(svc.recover(), SpillMissing);
  fs::remove_all(dir);
}

TEST(SessionRecoveryErrors, EmptyManifestRecoversNothing) {
  qols::util::ThreadPool pool(2);
  const auto dir = unique_dir("empty");
  { RecognizerService svc(durable_config(dir, &pool)); }  // header only
  RecognizerService svc(durable_config(dir, &pool));
  ASSERT_TRUE(svc.pending_recovery());
  const auto report = svc.recover();
  EXPECT_EQ(report.sessions_recovered, 0u);
  EXPECT_TRUE(report.lost.empty());
  EXPECT_FALSE(svc.pending_recovery());
  fs::remove_all(dir);
}

TEST(SessionRecoveryErrors, JournaledOpsThrowUntilRecovered) {
  qols::util::ThreadPool pool(2);
  const auto dir = unique_dir("pending");
  { RecognizerService svc(durable_config(dir, &pool)); }
  RecognizerService svc(durable_config(dir, &pool));
  ASSERT_TRUE(svc.pending_recovery());
  // The prior manifest must be adopted (or fail loudly) before any session
  // operation can be journaled — silently starting fresh would leave the
  // old sessions' records to corrupt the replay state machine.
  EXPECT_THROW(svc.open(1), std::logic_error);
  svc.recover();
  EXPECT_NO_THROW(svc.finish(svc.open(1)));
  fs::remove_all(dir);
}

TEST(SessionRecoveryErrors, DurableModeRequiresASpillDir) {
  RecognizerService::Config cfg;
  cfg.spec.kind = RecognizerKind::kClassicalBlock;
  cfg.durable = true;
  EXPECT_THROW(RecognizerService svc(cfg), std::invalid_argument);
}

TEST(SessionRecovery, MigrationSurvivesRestart) {
  qols::util::ThreadPool pool(4);
  const auto dir = unique_dir("migrate");
  qols::util::Rng rng(7);
  const auto word = word_of(LDisjInstance::make_disjoint(1, rng));
  std::uint64_t id = 0;
  {
    RecognizerService svc(durable_config(dir, &pool));
    id = svc.open(21);
    svc.feed(id, word);
    ASSERT_NE(svc.shard_of(id), 3u);
    svc.migrate(id, 3);
    EXPECT_EQ(svc.shard_of(id), 3u);
    svc.persist();
  }
  RecognizerService svc(durable_config(dir, &pool));
  svc.recover();
  EXPECT_EQ(svc.shard_of(id), 3u);  // the migrate is journaled, not ephemeral
  const auto v = svc.finish(id);
  EXPECT_TRUE(v.accepted);
  fs::remove_all(dir);
}

}  // namespace
