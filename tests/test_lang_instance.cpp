// Unit + property tests: L_DISJ instances, lazy streaming, mutants, and the
// offline reference oracle.
#include <gtest/gtest.h>

#include "qols/lang/ldisj_instance.hpp"

namespace {

using namespace qols::lang;
using qols::stream::materialize;
using qols::util::BitVec;
using qols::util::Rng;

TEST(LDisjInstance, ValidatesConstructorArguments) {
  Rng rng(1);
  EXPECT_THROW(LDisjInstance(0, BitVec(1), BitVec(1)), std::invalid_argument);
  EXPECT_THROW(LDisjInstance(1, BitVec(3), BitVec(4)), std::invalid_argument);
  EXPECT_THROW(LDisjInstance(11, BitVec(1ULL << 22), BitVec(1ULL << 22)),
               std::invalid_argument);
  EXPECT_NO_THROW(LDisjInstance(1, BitVec(4), BitVec(4)));
}

TEST(LDisjInstance, WordLengthFormula) {
  // k=1: 1+1 + 2 * 3 * (4+1) = 32.
  LDisjInstance inst(1, BitVec(4), BitVec(4));
  EXPECT_EQ(inst.word_length(), 32u);
  EXPECT_EQ(inst.m(), 4u);
  EXPECT_EQ(inst.repetitions(), 2u);
}

TEST(LDisjInstance, RenderMatchesManualConstruction) {
  BitVec x = BitVec::from_string("1010");
  BitVec y = BitVec::from_string("0101");
  LDisjInstance inst(1, x, y);
  const std::string expected =
      "1#"
      "1010#0101#1010#"
      "1010#0101#1010#";
  EXPECT_EQ(inst.render(), expected);
}

TEST(LDisjInstance, StreamAgreesWithRender) {
  Rng rng(7);
  for (unsigned k = 1; k <= 3; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    auto s = inst.stream();
    EXPECT_EQ(materialize(*s), inst.render());
    ASSERT_TRUE(s->length_hint().has_value());
    EXPECT_EQ(*inst.stream()->length_hint(), inst.word_length());
  }
}

TEST(LDisjInstance, MakeDisjointIsDisjointAndMember) {
  Rng rng(11);
  for (unsigned k = 1; k <= 4; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    EXPECT_EQ(inst.intersections(), 0u);
    EXPECT_TRUE(inst.member());
  }
}

class PlantedIntersections
    : public ::testing::TestWithParam<std::tuple<unsigned, std::uint64_t>> {};

TEST_P(PlantedIntersections, ExactCount) {
  const auto [k, t] = GetParam();
  Rng rng(100 + k * 17 + t);
  auto inst = LDisjInstance::make_with_intersections(k, t, rng);
  EXPECT_EQ(inst.intersections(), t);
  EXPECT_EQ(inst.member(), t == 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlantedIntersections,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0u, 1u, 2u, 4u)));

TEST(LDisjInstance, PlantedIntersectionsCanSaturate) {
  Rng rng(3);
  auto inst = LDisjInstance::make_with_intersections(2, 16, rng);  // t = m
  EXPECT_EQ(inst.intersections(), 16u);
}

TEST(LDisjInstance, PlantedRejectsOversizedT) {
  Rng rng(4);
  EXPECT_THROW(LDisjInstance::make_with_intersections(1, 5, rng),
               std::invalid_argument);
}

TEST(LDisjInstance, PositionOfAddressesStream) {
  Rng rng(5);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  const std::string word = inst.render();
  // Block 0 of repetition 0 starts right after "11#".
  EXPECT_EQ(word[inst.position_of(0, 0, 0)], inst.x().get(0) ? '1' : '0');
  // The y-block of repetition 1, offset 3.
  EXPECT_EQ(word[inst.position_of(1, 1, 3)], inst.y().get(3) ? '1' : '0');
  // offset m is the trailing separator of the block.
  EXPECT_EQ(word[inst.position_of(0, 0, inst.m())], '#');
  EXPECT_EQ(word[inst.position_of(1, 2, inst.m())], '#');
}

// --- reference oracle ------------------------------------------------------

TEST(ReferenceOracle, AcceptsWellFormedDisjoint) {
  Rng rng(21);
  for (unsigned k = 1; k <= 3; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    EXPECT_TRUE(is_member_reference(inst.render())) << "k=" << k;
  }
}

TEST(ReferenceOracle, RejectsIntersecting) {
  Rng rng(22);
  for (unsigned k = 1; k <= 3; ++k) {
    auto inst = LDisjInstance::make_with_intersections(k, 1, rng);
    EXPECT_FALSE(is_member_reference(inst.render())) << "k=" << k;
  }
}

TEST(ReferenceOracle, RejectsStructuralDamage) {
  EXPECT_FALSE(is_member_reference(""));
  EXPECT_FALSE(is_member_reference("#"));
  EXPECT_FALSE(is_member_reference("1"));
  EXPECT_FALSE(is_member_reference("0#"));
  EXPECT_FALSE(is_member_reference("1#0101#0000#0101#"));   // block len != 4? (len 4 ok, but 1 rep only)
  EXPECT_FALSE(is_member_reference("1#01#00#01#01#00#01#")); // blocks too short
}

TEST(ReferenceOracle, RejectsInconsistentRepetitions) {
  // Well-shaped but z != x in the second repetition.
  const std::string word =
      "1#"
      "1010#0101#1010#"
      "1010#0101#1000#";
  EXPECT_FALSE(is_member_reference(word));
}

TEST(ReferenceOracle, MutantsAreNonMembers) {
  Rng rng(23);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  for (auto kind :
       {MutantKind::kBadPrefix, MutantKind::kTrailingGarbage,
        MutantKind::kXZMismatch, MutantKind::kYDrift, MutantKind::kTruncated,
        MutantKind::kSepInsideBlock}) {
    auto s = make_mutant_stream(inst, kind, rng);
    const std::string word = materialize(*s);
    EXPECT_FALSE(is_member_reference(word))
        << "mutant kind " << static_cast<int>(kind);
  }
}

TEST(Mutants, PreserveLengthWhenExpected) {
  Rng rng(24);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  for (auto kind : {MutantKind::kBadPrefix, MutantKind::kXZMismatch,
                    MutantKind::kYDrift, MutantKind::kSepInsideBlock}) {
    auto s = make_mutant_stream(inst, kind, rng);
    EXPECT_EQ(materialize(*s).size(), inst.word_length())
        << "mutant kind " << static_cast<int>(kind);
  }
}

TEST(Mutants, XZMismatchDiffersFromOriginalInOnePlace) {
  Rng rng(25);
  auto inst = LDisjInstance::make_disjoint(1, rng);
  auto s = make_mutant_stream(inst, MutantKind::kXZMismatch, rng);
  const std::string mutated = materialize(*s);
  const std::string original = inst.render();
  ASSERT_EQ(mutated.size(), original.size());
  int diffs = 0;
  for (std::size_t i = 0; i < mutated.size(); ++i) {
    if (mutated[i] != original[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1);
}

}  // namespace
