// Unit + property tests: exact {H,T,CNOT} lowering.
//
// Every derived gate is validated against the structured StateVector
// operation it claims to implement, by fidelity (global phases are
// unobservable and the reflect_zero lowering intentionally differs from S_k
// by a global -1).
#include <gtest/gtest.h>

#include <vector>

#include "qols/gates/builder.hpp"
#include "qols/quantum/state_vector.hpp"
#include "qols/util/rng.hpp"

namespace {

using qols::gates::CircuitBuilder;
using qols::gates::CircuitSink;
using qols::gates::CountingSink;
using qols::gates::mcx_ancillas_needed;
using qols::gates::TapeWriterSink;
using qols::quantum::Circuit;
using qols::quantum::ControlTerm;
using qols::quantum::StateVector;
using qols::util::Rng;

constexpr double kTol = 1e-10;

// Prepares a pseudo-random product state on `data` qubits of an n-qubit
// register (ancillas stay |0>), identically in both registers.
void prepare(StateVector& a, StateVector& b, unsigned data, Rng& rng) {
  for (unsigned q = 0; q < data; ++q) {
    a.apply_h(q);
    b.apply_h(q);
    const auto r = rng.below(3);
    if (r == 1) {
      a.apply_t(q);
      b.apply_t(q);
    } else if (r == 2) {
      a.apply_s(q);
      b.apply_s(q);
    }
  }
}

TEST(Builder, XMatchesPauliX) {
  CircuitSink sink;
  CircuitBuilder builder(sink, 2, 0);
  builder.x(1);
  StateVector a(2), b(2);
  Rng rng(1);
  prepare(a, b, 2, rng);
  sink.circuit().apply_to(a);
  b.apply_x(1);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

TEST(Builder, ZSTdgSdgMatchPhases) {
  Rng rng(2);
  struct Case {
    void (CircuitBuilder::*build)(unsigned);
    void (StateVector::*apply)(unsigned);
  };
  const Case cases[] = {
      {&CircuitBuilder::z, &StateVector::apply_z},
      {&CircuitBuilder::s, &StateVector::apply_s},
      {&CircuitBuilder::sdg, &StateVector::apply_sdg},
      {&CircuitBuilder::tdg, &StateVector::apply_tdg},
  };
  for (const auto& c : cases) {
    CircuitSink sink;
    CircuitBuilder builder(sink, 1, 0);
    (builder.*c.build)(0);
    StateVector a(1), b(1);
    prepare(a, b, 1, rng);
    sink.circuit().apply_to(a);
    (b.*c.apply)(0);
    ASSERT_NEAR(a.fidelity(b), 1.0, kTol);
  }
}

TEST(Builder, CzMatches) {
  CircuitSink sink;
  CircuitBuilder builder(sink, 2, 0);
  builder.cz(0, 1);
  StateVector a(2), b(2);
  Rng rng(3);
  prepare(a, b, 2, rng);
  sink.circuit().apply_to(a);
  b.apply_cz(0, 1);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

TEST(Builder, CcxMatchesToffoliOnAllBasisStates) {
  for (std::size_t basis = 0; basis < 8; ++basis) {
    CircuitSink sink;
    CircuitBuilder builder(sink, 3, 0);
    builder.ccx(0, 1, 2);
    StateVector a(3), b(3);
    a.set_basis_state(basis);
    b.set_basis_state(basis);
    sink.circuit().apply_to(a);
    const ControlTerm terms[] = {{0, true}, {1, true}};
    b.apply_mcx(terms, 2);
    ASSERT_NEAR(a.fidelity(b), 1.0, kTol) << "basis " << basis;
  }
}

TEST(Builder, CcxMatchesOnSuperposition) {
  CircuitSink sink;
  CircuitBuilder builder(sink, 3, 0);
  builder.ccx(0, 1, 2);
  StateVector a(3), b(3);
  Rng rng(4);
  prepare(a, b, 3, rng);
  sink.circuit().apply_to(a);
  const ControlTerm terms[] = {{0, true}, {1, true}};
  b.apply_mcx(terms, 2);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

TEST(Builder, CczMatches) {
  CircuitSink sink;
  CircuitBuilder builder(sink, 3, 0);
  builder.ccz(0, 1, 2);
  StateVector a(3), b(3);
  Rng rng(5);
  prepare(a, b, 3, rng);
  sink.circuit().apply_to(a);
  const ControlTerm terms[] = {{0, true}, {1, true}, {2, true}};
  b.apply_mcz(terms);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

// Parameterized sweep: mcx with n controls equals the structured
// multi-controlled X, and every borrowed ancilla returns to |0>.
class McxSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(McxSweep, MatchesStructuredOperator) {
  const unsigned n_controls = GetParam();
  const unsigned data = n_controls + 1;  // controls + target
  const unsigned anc = mcx_ancillas_needed(n_controls);
  const unsigned total = data + anc;
  CircuitSink sink;
  CircuitBuilder builder(sink, data, anc);
  std::vector<unsigned> controls;
  for (unsigned q = 0; q < n_controls; ++q) controls.push_back(q);
  builder.mcx(controls, n_controls);
  EXPECT_LE(builder.ancillas_high_water(), anc);

  StateVector a(total), b(total);
  Rng rng(100 + n_controls);
  prepare(a, b, data, rng);
  sink.circuit().apply_to(a);
  std::vector<ControlTerm> terms;
  for (unsigned q : controls) terms.push_back({q, true});
  b.apply_mcx(terms, n_controls);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
  // Ancilla cleanliness: no amplitude outside the anc == 0 subspace.
  double leak = 0.0;
  const std::size_t anc_mask = ((std::size_t{1} << anc) - 1) << data;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    if (i & anc_mask) leak += std::norm(a.amplitude(i));
  }
  EXPECT_NEAR(leak, 0.0, kTol);
}

INSTANTIATE_TEST_SUITE_P(Controls, McxSweep, ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

// Parameterized sweep: mixed-polarity patterns.
class PatternSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatternSweep, McxPatternMatches) {
  const std::uint64_t pattern = GetParam();
  const unsigned n_controls = 3;
  const unsigned data = n_controls + 1;
  const unsigned anc = mcx_ancillas_needed(n_controls);
  CircuitSink sink;
  CircuitBuilder builder(sink, data, anc);
  std::vector<ControlTerm> terms;
  for (unsigned q = 0; q < n_controls; ++q) {
    terms.push_back({q, ((pattern >> q) & 1) != 0});
  }
  builder.mcx_pattern(terms, n_controls);

  StateVector a(data + anc), b(data + anc);
  Rng rng(200 + static_cast<unsigned>(pattern));
  prepare(a, b, data, rng);
  sink.circuit().apply_to(a);
  b.apply_mcx(terms, n_controls);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

TEST_P(PatternSweep, MczPatternMatches) {
  const std::uint64_t pattern = GetParam();
  const unsigned n = 3;
  const unsigned anc = mcx_ancillas_needed(n);
  CircuitSink sink;
  CircuitBuilder builder(sink, n, anc);
  std::vector<ControlTerm> terms;
  for (unsigned q = 0; q < n; ++q) {
    terms.push_back({q, ((pattern >> q) & 1) != 0});
  }
  builder.mcz_pattern(terms);

  StateVector a(n + anc), b(n + anc);
  Rng rng(300 + static_cast<unsigned>(pattern));
  prepare(a, b, n, rng);
  sink.circuit().apply_to(a);
  b.apply_mcz(terms);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

INSTANTIATE_TEST_SUITE_P(Patterns, PatternSweep, ::testing::Range<std::uint64_t>(0, 8));

TEST(Builder, ReflectZeroMatchesSkUpToGlobalPhase) {
  for (unsigned count : {1u, 2u, 3u, 4u}) {
    const unsigned anc = count >= 2 ? mcx_ancillas_needed(count - 1) : 0;
    CircuitSink sink;
    CircuitBuilder builder(sink, count, anc);
    builder.reflect_zero(0, count);
    StateVector a(count + anc + 1), b(count + anc + 1);
    Rng rng(400 + count);
    prepare(a, b, count, rng);
    sink.circuit().apply_to(a);
    b.apply_reflect_zero(0, count);
    // Fidelity is phase-insensitive: |<a|b>|^2 == 1.
    ASSERT_NEAR(a.fidelity(b), 1.0, kTol) << "count " << count;
  }
}

TEST(Builder, AncillaBudgetEnforced) {
  CountingSink sink;
  CircuitBuilder builder(sink, 5, 1);  // 4 controls need 3 ancillas
  const std::vector<unsigned> controls = {0, 1, 2, 3};
  EXPECT_THROW(builder.mcx(controls, 4), std::runtime_error);
}

TEST(Builder, CountingSinkTracksKinds) {
  CountingSink sink;
  CircuitBuilder builder(sink, 3, 0);
  builder.ccx(0, 1, 2);
  EXPECT_EQ(sink.total(), sink.h() + sink.t() + sink.cnot());
  EXPECT_EQ(sink.h(), 2u);
  EXPECT_EQ(sink.cnot(), 6u);
  // 4 plain T's + 3 T-daggers expanded as T^7 each: 4 + 21 = 25 tape T's.
  EXPECT_EQ(sink.t(), 25u);
}

TEST(Builder, TapeWriterEmitsParsableTape) {
  TapeWriterSink sink;
  CircuitBuilder builder(sink, 3, 0);
  builder.ccx(0, 1, 2);
  auto parsed = Circuit::from_tape(sink.tape());
  ASSERT_TRUE(parsed.has_value());
  StateVector a(3), b(3);
  a.apply_h_range(0, 3);
  b.apply_h_range(0, 3);
  parsed->apply_to(a);
  const ControlTerm terms[] = {{0, true}, {1, true}};
  b.apply_mcx(terms, 2);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

}  // namespace
