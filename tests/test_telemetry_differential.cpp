// Telemetry determinism suite: the hard invariant of the telemetry
// subsystem is that it NEVER touches verdict state. Decisions, accept
// counts, SpaceReports and replay behaviour must be bit-identical whether
// the instruments are enabled, runtime-disabled, or compiled out entirely.
//
// This file proves the first two modes against each other inside one
// process (enabled vs runtime-disabled, same seeds). The compiled-out mode
// is covered by running this same binary in the QOLS_TELEMETRY=OFF CI leg:
// every expectation below is mode-agnostic, so a differing verdict in the
// OFF build would fail the exact same assertions.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "qols/fuzz/fuzz_case.hpp"
#include "qols/fuzz/properties.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/telemetry/registry.hpp"
#include "qols/util/rng.hpp"

namespace {

namespace telemetry = qols::telemetry;
using qols::lang::LDisjInstance;
using qols::service::RecognizerKind;
using qols::service::RecognizerSpec;
using qols::util::Rng;

/// Everything a recognizer run decides; the telemetry-invariant surface.
struct Outcome {
  bool accepted = false;
  bool fully_simulated = false;
  std::uint64_t classical_bits = 0;
  std::uint64_t qubits = 0;
  std::string name;

  auto tie() const {
    return std::tie(accepted, fully_simulated, classical_bits, qubits, name);
  }
  bool operator==(const Outcome& o) const { return tie() == o.tie(); }
};

Outcome run_once(const RecognizerSpec& spec, const std::string& word,
                 std::uint64_t seed) {
  auto rec = spec.make(seed);
  qols::stream::StringStream s(word);
  while (auto sym = s.next()) rec->feed(*sym);
  Outcome out;
  out.accepted = rec->finish();
  out.fully_simulated = rec->fully_simulated();
  const auto space = rec->space_used();
  out.classical_bits = space.classical_bits;
  out.qubits = space.qubits;
  out.name = rec->name();
  return out;
}

/// Runs the same (spec, word, seed) with telemetry enabled and
/// runtime-disabled; the outcomes must be identical.
void expect_mode_invariant(const RecognizerSpec& spec, const std::string& word,
                           std::uint64_t seed) {
  const bool saved = telemetry::enabled();
  telemetry::set_enabled(true);
  const Outcome on = run_once(spec, word, seed);
  telemetry::set_enabled(false);
  const Outcome off = run_once(spec, word, seed);
  telemetry::set_enabled(saved);

  EXPECT_EQ(on.accepted, off.accepted) << on.name << " seed " << seed;
  EXPECT_EQ(on.fully_simulated, off.fully_simulated) << on.name;
  EXPECT_EQ(on.classical_bits, off.classical_bits) << on.name;
  EXPECT_EQ(on.qubits, off.qubits) << on.name;
  EXPECT_EQ(on.name, off.name);
}

TEST(TelemetryDifferential, AllRecognizerKindsBackendsAndPrecisions) {
  // The full spec matrix from ISSUE: 5 recognizer kinds; the quantum kind
  // additionally crossed with both backends and both precisions. Member and
  // intersecting words, several seeds each.
  Rng rng(81);
  std::vector<RecognizerSpec> specs;
  for (auto kind :
       {RecognizerKind::kClassicalBlock, RecognizerKind::kClassicalFull,
        RecognizerKind::kClassicalSampling, RecognizerKind::kClassicalBloom}) {
    RecognizerSpec spec;
    spec.kind = kind;
    specs.push_back(spec);
  }
  for (const char* backend : {"dense", "structured"}) {
    for (bool float_amplitudes : {false, true}) {
      RecognizerSpec spec;
      spec.kind = RecognizerKind::kQuantum;
      spec.backend = backend;
      spec.float_amplitudes = float_amplitudes;
      specs.push_back(spec);
    }
  }

  for (unsigned k : {1u, 2u}) {
    for (std::uint64_t t : {std::uint64_t{0}, std::uint64_t{1}}) {
      auto inst = t == 0 ? LDisjInstance::make_disjoint(k, rng)
                         : LDisjInstance::make_with_intersections(k, t, rng);
      const std::string word = inst.render();
      for (const auto& spec : specs) {
        for (std::uint64_t seed = 100; seed < 103; ++seed) {
          expect_mode_invariant(spec, word, seed);
        }
      }
    }
  }
}

TEST(TelemetryDifferential, ServiceVerdictsAndSpaceReportsInvariant) {
  // The served path exercises every instrumented service hook: open / feed /
  // flush / evict / revive / finish. Verdicts and stats-visible accounting
  // must not depend on the telemetry mode.
  auto serve = [](bool telemetry_on) {
    const bool saved = telemetry::enabled();
    telemetry::set_enabled(telemetry_on);

    Rng rng(82);
    std::vector<std::tuple<bool, std::uint64_t, std::uint64_t>> verdicts;
    std::uint64_t symbols_ingested = 0, evictions = 0, revives = 0,
                  spill_written = 0, spill_read = 0;
    for (unsigned k : {1u, 2u}) {
      qols::service::RecognizerService::Config config;
      config.spec.kind = k == 1 ? RecognizerKind::kQuantum
                                : RecognizerKind::kClassicalBlock;
      if (k == 1) config.spec.backend = "dense";
      qols::service::RecognizerService svc(config);

      auto inst = LDisjInstance::make_disjoint(k, rng);
      const std::string word = inst.render();
      const auto id = svc.open(900 + k);
      std::vector<qols::stream::Symbol> symbols;
      symbols.reserve(word.size());
      for (char c : word) {
        symbols.push_back(*qols::stream::symbol_from_char(c));
      }
      // Exercise the spill path mid-word (snapshot/restore under telemetry).
      svc.feed(id, {symbols.data(), symbols.size() / 2});
      svc.flush();
      svc.evict(id);
      svc.revive(id);
      svc.feed(id,
               {symbols.data() + symbols.size() / 2,
                symbols.size() - symbols.size() / 2});
      svc.flush();
      const auto verdict = svc.finish(id);
      verdicts.emplace_back(verdict.accepted, verdict.space.classical_bits,
                            verdict.space.qubits);
      const auto stats = svc.stats();
      symbols_ingested += stats.symbols_ingested;
      evictions += stats.evictions;
      revives += stats.revives;
      spill_written += stats.spill_bytes_written;
      spill_read += stats.spill_bytes_read;
    }
    telemetry::set_enabled(saved);
    return std::tuple{verdicts, symbols_ingested, evictions, revives,
                      spill_written, spill_read};
  };

  const auto on = serve(true);
  const auto off = serve(false);
  EXPECT_EQ(std::get<0>(on), std::get<0>(off));
  // Stats are functional accounting, NOT telemetry: they must keep counting
  // even with the instruments runtime-disabled.
  EXPECT_EQ(std::get<1>(on), std::get<1>(off)) << "symbols_ingested";
  EXPECT_EQ(std::get<2>(on), std::get<2>(off)) << "evictions";
  EXPECT_GT(std::get<2>(off), 0u);
  EXPECT_EQ(std::get<3>(on), std::get<3>(off)) << "revives";
  EXPECT_EQ(std::get<4>(on), std::get<4>(off)) << "spill_bytes_written";
  EXPECT_GT(std::get<4>(off), 0u);
  EXPECT_EQ(std::get<5>(on), std::get<5>(off)) << "spill_bytes_read";
}

TEST(TelemetryDifferential, FuzzCheckCaseReplayTokensInvariant) {
  // check_case() is the repo's deterministic-replay contract: equal cases
  // give equal CaseResults. The fuzz driver's own counters must not bend
  // that — run a seed sweep in both telemetry modes and compare the full
  // result surface (class, word length, every discrepancy string).
  const bool saved = telemetry::enabled();
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto c = qols::fuzz::FuzzCase::from_seed(seed);
    telemetry::set_enabled(true);
    const auto on = qols::fuzz::check_case(c);
    telemetry::set_enabled(false);
    const auto off = qols::fuzz::check_case(c);
    EXPECT_EQ(on.cls, off.cls) << "seed " << seed;
    EXPECT_EQ(on.word_len, off.word_len) << "seed " << seed;
    ASSERT_EQ(on.issues.size(), off.issues.size()) << "seed " << seed;
    for (std::size_t i = 0; i < on.issues.size(); ++i) {
      EXPECT_EQ(on.issues[i].property, off.issues[i].property);
      EXPECT_EQ(on.issues[i].detail, off.issues[i].detail);
    }
    EXPECT_TRUE(on.ok()) << "seed " << seed << " found a real property "
                         << "violation (not a telemetry issue)";
  }
  telemetry::set_enabled(saved);
}

TEST(TelemetryDifferential, SnapshotRestoreIdenticalAcrossModes) {
  // The evict/revive wire format must not grow telemetry state: snapshots
  // taken with instruments on and off are byte-identical, and a snapshot
  // taken in one mode restores correctly in the other.
  Rng rng(83);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  const std::string word = inst.render();
  RecognizerSpec spec;
  spec.kind = RecognizerKind::kQuantum;
  spec.backend = "dense";

  auto snapshot_at_half = [&](bool telemetry_on) {
    const bool saved = telemetry::enabled();
    telemetry::set_enabled(telemetry_on);
    auto rec = spec.make(7);
    qols::stream::StringStream s(word);
    std::size_t fed = 0;
    while (fed < word.size() / 2) {
      rec->feed(*s.next());
      ++fed;
    }
    auto bytes = rec->snapshot();
    telemetry::set_enabled(saved);
    return bytes;
  };

  const auto snap_on = snapshot_at_half(true);
  const auto snap_off = snapshot_at_half(false);
  ASSERT_EQ(snap_on, snap_off);

  // Cross-mode resume: snapshot under ON, restore+finish under OFF and
  // vice versa — all four completions agree.
  auto resume = [&](const std::vector<std::uint8_t>& bytes,
                    bool telemetry_on) {
    const bool saved = telemetry::enabled();
    telemetry::set_enabled(telemetry_on);
    auto rec = spec.make(99);  // restore() must overwrite this seed's state
    rec->restore(bytes);
    qols::stream::StringStream s(word);
    for (std::size_t i = 0; i < word.size() / 2; ++i) s.next();
    while (auto sym = s.next()) rec->feed(*sym);
    const bool accepted = rec->finish();
    telemetry::set_enabled(saved);
    return accepted;
  };
  const bool a = resume(snap_on, true);
  const bool b = resume(snap_on, false);
  const bool c = resume(snap_off, true);
  const bool d = resume(snap_off, false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(c, d);
}

}  // namespace
