// SIMD kernel edge cases: runtime dispatch resolution, the QOLS_NO_AVX2
// parsing rule, tiny registers whose strides sit below the vector width,
// non-multiple-of-lane tails, and scalar-vs-AVX2 bit-exactness on identical
// gate sequences.
//
// The dispatch contract: the AVX2 kernels perform exactly the same IEEE
// operations per element as the scalar reference (no FMA contraction, no
// reassociation of any single element's chain), so forcing kScalar and
// kAvx2 over the same inputs must produce BIT-IDENTICAL registers — EXPECT_EQ
// on raw components, no tolerance. That is what makes runtime dispatch safe:
// a machine without AVX2 replays a failure token to the same bits.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "qols/core/grover_streamer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/quantum/state_vector.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/util/rng.hpp"

namespace {

using qols::quantum::cpu_supports_avx2;
using qols::quantum::SimdMode;
using qols::quantum::StateVectorT;
using qols::util::Rng;

/// Restores the requested dispatch mode on scope exit, so a failing test
/// cannot leak a forced mode into the rest of the suite.
class SimdModeGuard {
 public:
  SimdModeGuard() : saved_(qols::quantum::requested_simd_mode()) {}
  ~SimdModeGuard() { qols::quantum::set_simd_mode(saved_); }
  SimdModeGuard(const SimdModeGuard&) = delete;
  SimdModeGuard& operator=(const SimdModeGuard&) = delete;

 private:
  SimdMode saved_;
};

/// A fixed, asymmetry-breaking gate sequence touching every kernel family:
/// H (pair butterflies), T/phase (complex rotation), X (swap runs), Z
/// (negate runs), CZ, reflect-zero, H-range, and the A3 index fast paths.
template <typename Scalar>
void apply_mixed_sequence(StateVectorT<Scalar>& sv) {
  const unsigned n = sv.num_qubits();
  for (unsigned q = 0; q < n; ++q) sv.apply_h(q);
  for (unsigned q = 0; q < n; ++q) sv.apply_t(q % n);
  sv.apply_x(0);
  if (n >= 2) {
    sv.apply_z(1);
    sv.apply_cz(0, 1);
    sv.apply_cnot(1, 0);
    sv.apply_swap(0, n - 1);
  }
  sv.apply_reflect_zero(0, n);
  sv.apply_h_range(0, n);
  if (n >= 3) {
    sv.apply_x_on_index(0, n - 1, 1, n - 1);
    sv.apply_z_on_index(0, n - 1, 2, n - 1);
  }
  sv.apply_h_range(0, n);
}

template <typename Scalar>
void expect_bit_identical(const StateVectorT<Scalar>& a,
                          const StateVectorT<Scalar>& b) {
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t i = 0; i < a.dim(); ++i) {
    ASSERT_EQ(a.re()[i], b.re()[i]) << "re[" << i << "]";
    ASSERT_EQ(a.im()[i], b.im()[i]) << "im[" << i << "]";
  }
}

TEST(SimdDispatch, ActiveModeIsNeverAuto) {
  SimdModeGuard guard;
  qols::quantum::set_simd_mode(SimdMode::kAuto);
  const SimdMode active = qols::quantum::active_simd_mode();
  EXPECT_TRUE(active == SimdMode::kScalar || active == SimdMode::kAvx2);
  EXPECT_EQ(qols::quantum::requested_simd_mode(), SimdMode::kAuto);
}

TEST(SimdDispatch, ForcedModesResolveOrThrow) {
  SimdModeGuard guard;
  qols::quantum::set_simd_mode(SimdMode::kScalar);
  EXPECT_EQ(qols::quantum::active_simd_mode(), SimdMode::kScalar);
  if (cpu_supports_avx2()) {
    qols::quantum::set_simd_mode(SimdMode::kAvx2);
    EXPECT_EQ(qols::quantum::active_simd_mode(), SimdMode::kAvx2);
  } else {
    EXPECT_THROW(qols::quantum::set_simd_mode(SimdMode::kAvx2),
                 std::invalid_argument);
  }
}

TEST(SimdDispatch, EnvOverrideParsingRule) {
  // QOLS_NO_AVX2 disables AVX2 when non-null, non-empty and not "0". The
  // pure parser is exposed so the rule is testable without mutating the
  // process environment (which is read once, at first kernel dispatch).
  EXPECT_FALSE(qols::quantum::simd_env_disabled(nullptr));
  EXPECT_FALSE(qols::quantum::simd_env_disabled(""));
  EXPECT_FALSE(qols::quantum::simd_env_disabled("0"));
  EXPECT_TRUE(qols::quantum::simd_env_disabled("1"));
  EXPECT_TRUE(qols::quantum::simd_env_disabled("true"));
  EXPECT_TRUE(qols::quantum::simd_env_disabled("00"));  // not the literal "0"
  EXPECT_TRUE(qols::quantum::simd_env_disabled(" "));
}

template <typename Scalar>
void run_scalar_vs_avx2_tiny_registers() {
  // n = 1..5: every stride below (and just at) the vector width, for both
  // the in-register shuffle butterflies and their scalar reference. n = 5
  // additionally has a 32-element register — not a multiple of the blocked
  // kernels' larger internal strides, exercising tail handling.
  for (unsigned n = 1; n <= 5; ++n) {
    StateVectorT<Scalar> scalar(n);
    StateVectorT<Scalar> vectorized(n);
    qols::quantum::set_simd_mode(SimdMode::kScalar);
    apply_mixed_sequence(scalar);
    qols::quantum::set_simd_mode(SimdMode::kAvx2);
    apply_mixed_sequence(vectorized);
    expect_bit_identical(scalar, vectorized);
  }
}

TEST(SimdKernels, ScalarVsAvx2BitExactOnTinyRegistersDouble) {
  if (!cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  SimdModeGuard guard;
  run_scalar_vs_avx2_tiny_registers<double>();
}

TEST(SimdKernels, ScalarVsAvx2BitExactOnTinyRegistersFloat) {
  if (!cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  SimdModeGuard guard;
  run_scalar_vs_avx2_tiny_registers<float>();
}

template <typename Scalar>
void run_blocked_hrange_vs_sequential(unsigned n) {
  // The blocked/fused apply_h_range must be bit-identical to the naive
  // qubit-by-qubit ladder it replaced: the radix-4 fusion and L1 tiling
  // reorder independent additions only, never one element's rounding chain.
  for (unsigned first = 0; first < n; ++first) {
    for (unsigned count : {1u, 2u, 3u, n - first}) {
      if (first + count > n) continue;
      StateVectorT<Scalar> blocked(n);
      StateVectorT<Scalar> ladder(n);
      // Symmetry-breaking preparation on both registers.
      for (StateVectorT<Scalar>* sv : {&blocked, &ladder}) {
        for (unsigned q = 0; q < n; ++q) sv->apply_h(q);
        for (unsigned q = 0; q < n; ++q) sv->apply_t(q);
        sv->apply_x(0);
      }
      blocked.apply_h_range(first, count);
      for (unsigned q = first; q < first + count; ++q) ladder.apply_h(q);
      expect_bit_identical(blocked, ladder);
    }
  }
}

TEST(SimdKernels, BlockedHRangeMatchesSequentialLaddersSmall) {
  SimdModeGuard guard;
  for (const SimdMode mode : {SimdMode::kScalar, SimdMode::kAvx2}) {
    if (mode == SimdMode::kAvx2 && !cpu_supports_avx2()) continue;
    qols::quantum::set_simd_mode(mode);
    run_blocked_hrange_vs_sequential<double>(3);
    run_blocked_hrange_vs_sequential<double>(6);
    run_blocked_hrange_vs_sequential<float>(3);
    run_blocked_hrange_vs_sequential<float>(6);
  }
}

TEST(SimdKernels, BlockedHRangeMatchesSequentialAcrossTileBoundary) {
  // n spanning the L1 tile size (2^12 doubles / 2^13 floats): the low-qubit
  // tiled phase, the leftover odd qubit, and the high streaming phase all
  // activate, including registers larger than the serial grain (n = 15).
  SimdModeGuard guard;
  for (const SimdMode mode : {SimdMode::kScalar, SimdMode::kAvx2}) {
    if (mode == SimdMode::kAvx2 && !cpu_supports_avx2()) continue;
    qols::quantum::set_simd_mode(mode);
    for (unsigned n : {13u, 15u}) {
      StateVectorT<double> blocked(n);
      StateVectorT<double> ladder(n);
      for (StateVectorT<double>* sv : {&blocked, &ladder}) {
        for (unsigned q = 0; q < n; q += 2) sv->apply_h(q);
        sv->apply_t(0);
        sv->apply_x(n - 1);
      }
      blocked.apply_h_range(0, n);
      for (unsigned q = 0; q < n; ++q) ladder.apply_h(q);
      expect_bit_identical(blocked, ladder);
    }
    {
      StateVectorT<float> blocked(14);
      StateVectorT<float> ladder(14);
      for (StateVectorT<float>* sv : {&blocked, &ladder}) {
        for (unsigned q = 0; q < 14; q += 3) sv->apply_h(q);
        sv->apply_t(1);
      }
      blocked.apply_h_range(0, 14);
      for (unsigned q = 0; q < 14; ++q) ladder.apply_h(q);
      expect_bit_identical(blocked, ladder);
    }
  }
}

TEST(SimdKernels, DispatchAgreementThroughFullA3Run) {
  // End to end: the same word and seed through procedure A3 under forced
  // scalar and forced AVX2 dispatch must yield bit-identical amplitudes and
  // the identical decision — the replay-token portability guarantee.
  if (!cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  SimdModeGuard guard;
  Rng rng(8);
  auto inst = qols::lang::LDisjInstance::make_with_intersections(2, 1, rng);
  const std::string word = inst.render();

  auto run = [&](SimdMode mode, std::uint64_t seed) {
    qols::quantum::set_simd_mode(mode);
    qols::core::GroverStreamer::Options opts;
    opts.backend = "dense";
    qols::core::GroverStreamer a3{Rng(seed), opts};
    qols::stream::StringStream s(word);
    while (auto sym = s.next()) a3.feed(*sym);
    std::vector<qols::quantum::Amplitude> amps;
    const auto* backend = a3.simulation_backend();
    const std::uint64_t dim = std::uint64_t{1} << backend->num_qubits();
    for (std::uint64_t basis = 0; basis < dim; ++basis) {
      amps.push_back(backend->amplitude(basis));
    }
    return std::pair{amps, a3.finish_output()};
  };

  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto scalar = run(SimdMode::kScalar, seed);
    const auto avx2 = run(SimdMode::kAvx2, seed);
    ASSERT_EQ(scalar.second, avx2.second) << "seed " << seed;
    ASSERT_EQ(scalar.first.size(), avx2.first.size());
    for (std::size_t i = 0; i < scalar.first.size(); ++i) {
      ASSERT_EQ(scalar.first[i].real(), avx2.first[i].real())
          << "basis " << i << " seed " << seed;
      ASSERT_EQ(scalar.first[i].imag(), avx2.first[i].imag())
          << "basis " << i << " seed " << seed;
    }
  }
}

}  // namespace
