// Unit tests: StructuredBackend — operation-level agreement with the dense
// reference, the class-representation invariants (I1-I3 in the header), and
// the UnsupportedOperation boundary.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "qols/backend/dense_backend.hpp"
#include "qols/backend/structured_backend.hpp"
#include "qols/util/rng.hpp"

namespace {

using qols::backend::Amplitude;
using qols::backend::ControlTerm;
using qols::backend::DenseBackend;
using qols::backend::QuantumBackend;
using qols::backend::StructuredBackend;
using qols::backend::UnsupportedOperation;
using qols::util::Rng;

constexpr unsigned kIndexWidth = 4;   // m = 16 indices
constexpr unsigned kQubits = 6;       // + h + l tail
constexpr std::uint64_t kDim = std::uint64_t{1} << kQubits;

void expect_states_equal(const QuantumBackend& a, const QuantumBackend& b,
                         double tol = 1e-12) {
  for (std::uint64_t basis = 0; basis < kDim; ++basis) {
    const Amplitude aa = a.amplitude(basis);
    const Amplitude ab = b.amplitude(basis);
    ASSERT_NEAR(aa.real(), ab.real(), tol) << "basis " << basis;
    ASSERT_NEAR(aa.imag(), ab.imag(), tol) << "basis " << basis;
  }
}

TEST(StructuredBackend, StartsInBasisZero) {
  StructuredBackend s(kQubits, kIndexWidth);
  EXPECT_EQ(s.num_qubits(), kQubits);
  EXPECT_EQ(s.index_width(), kIndexWidth);
  EXPECT_EQ(s.amplitude(0), (Amplitude{1.0, 0.0}));
  for (std::uint64_t b = 1; b < kDim; ++b) {
    ASSERT_EQ(s.amplitude(b), (Amplitude{0.0, 0.0})) << b;
  }
  EXPECT_NEAR(s.norm(), 1.0, 1e-15);
}

TEST(StructuredBackend, HRangePreparesUniformAndInverts) {
  StructuredBackend s(kQubits, kIndexWidth);
  s.apply_h_range(0, kIndexWidth);
  // Invariant I3: the uniform state is one class.
  EXPECT_EQ(s.class_count(), 1u);
  const double amp = 1.0 / 4.0;  // 1/sqrt(16)
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_NEAR(s.amplitude(i).real(), amp, 1e-15);
  }
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
  // H^{(x)w} is self-inverse: back to |0...0>.
  s.apply_h_range(0, kIndexWidth);
  EXPECT_NEAR(std::abs(s.amplitude(0) - Amplitude{1.0, 0.0}), 0.0, 1e-12);
}

TEST(StructuredBackend, GroverIterationMatchesDense) {
  StructuredBackend s(kQubits, kIndexWidth);
  DenseBackend d(kQubits);
  const std::vector<std::uint64_t> marked = {3, 7, 11};
  for (QuantumBackend* b : {static_cast<QuantumBackend*>(&s),
                            static_cast<QuantumBackend*>(&d)}) {
    b->apply_h_range(0, kIndexWidth);
    for (int it = 0; it < 5; ++it) {
      b->apply_phase_flip_set(marked);
      b->apply_grover_diffusion(0, kIndexWidth);
    }
  }
  expect_states_equal(s, d);
  // Invariant I3: marked vs unmarked is exactly two classes.
  EXPECT_EQ(s.class_count(), 2u);
  EXPECT_LE(s.peak_class_count(), 4u);
  EXPECT_EQ(s.explicit_index_count(), marked.size());
}

TEST(StructuredBackend, A3FastPathsMatchDense) {
  StructuredBackend s(kQubits, kIndexWidth);
  DenseBackend d(kQubits);
  const unsigned h = kIndexWidth;
  const unsigned l = kIndexWidth + 1;
  for (QuantumBackend* b : {static_cast<QuantumBackend*>(&s),
                            static_cast<QuantumBackend*>(&d)}) {
    b->apply_h_range(0, kIndexWidth);
    // A V_x / W_y / V_z round plus step 4, in the shapes A3 emits.
    for (std::uint64_t idx : {0ull, 5ull, 9ull}) {
      b->apply_x_on_index(0, kIndexWidth, idx, h);
    }
    for (std::uint64_t idx : {5ull, 6ull}) {
      b->apply_z_on_index(0, kIndexWidth, idx, h);
    }
    for (std::uint64_t idx : {0ull, 5ull, 9ull}) {
      b->apply_x_on_index(0, kIndexWidth, idx, h);
    }
    b->apply_grover_diffusion(0, kIndexWidth);
    for (std::uint64_t idx : {5ull}) {
      b->apply_x_on_index(0, kIndexWidth, idx, h);
      b->apply_cx_on_index(0, kIndexWidth, idx, h, l);
    }
  }
  expect_states_equal(s, d);
  EXPECT_NEAR(s.probability_one(l), d.probability_one(l), 1e-12);
  EXPECT_NEAR(s.probability_one(h), d.probability_one(h), 1e-12);
}

TEST(StructuredBackend, ReflectZeroAndTailGatesMatchDense) {
  StructuredBackend s(kQubits, kIndexWidth);
  DenseBackend d(kQubits);
  for (QuantumBackend* b : {static_cast<QuantumBackend*>(&s),
                            static_cast<QuantumBackend*>(&d)}) {
    b->apply_h_range(0, kIndexWidth);
    b->apply_phase_flip_set(std::vector<std::uint64_t>{2});
    b->apply_reflect_zero(0, kIndexWidth);
    b->apply_h(kIndexWidth);      // tail H
    b->apply_x(kIndexWidth + 1);  // tail X
    b->apply_z(kIndexWidth);      // tail Z
    b->apply_x(1);                // X on an index qubit: permutation
  }
  expect_states_equal(s, d);
}

TEST(StructuredBackend, FullPatternControlsMatchDense) {
  StructuredBackend s(kQubits, kIndexWidth);
  DenseBackend d(kQubits);
  std::vector<ControlTerm> full_pattern;
  for (unsigned q = 0; q < kIndexWidth; ++q) {
    full_pattern.push_back({q, (q & 1) != 0});  // index |1010> = 10
  }
  std::vector<ControlTerm> with_h = full_pattern;
  with_h.push_back({kIndexWidth, true});
  std::vector<ControlTerm> tail_only = {{kIndexWidth, true}};
  for (QuantumBackend* b : {static_cast<QuantumBackend*>(&s),
                            static_cast<QuantumBackend*>(&d)}) {
    b->apply_h_range(0, kIndexWidth);
    b->apply_mcx(full_pattern, kIndexWidth);
    b->apply_mcz(with_h);
    b->apply_mcx(tail_only, kIndexWidth + 1);
    b->apply_mcz(tail_only);
  }
  expect_states_equal(s, d);
}

TEST(StructuredBackend, MeasurementAgreesWithDenseSeedForSeed) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    StructuredBackend s(kQubits, kIndexWidth);
    DenseBackend d(kQubits);
    const std::vector<std::uint64_t> marked = {1, 4};
    for (QuantumBackend* b : {static_cast<QuantumBackend*>(&s),
                              static_cast<QuantumBackend*>(&d)}) {
      b->apply_h_range(0, kIndexWidth);
      b->apply_phase_flip_set(marked);
      b->apply_grover_diffusion(0, kIndexWidth);
      for (std::uint64_t idx : marked) {
        b->apply_x_on_index(0, kIndexWidth, idx, kIndexWidth);
        b->apply_cx_on_index(0, kIndexWidth, idx, kIndexWidth,
                             kIndexWidth + 1);
      }
    }
    Rng rs(seed), rd(seed);
    const bool outcome_s = s.measure(kIndexWidth + 1, rs);
    const bool outcome_d = d.measure(kIndexWidth + 1, rd);
    ASSERT_EQ(outcome_s, outcome_d) << "seed " << seed;
    ASSERT_NEAR(s.norm(), 1.0, 1e-12);
    expect_states_equal(s, d);
  }
}

TEST(StructuredBackend, RandomizedSupportedSequencesMatchDense) {
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    StructuredBackend s(kQubits, kIndexWidth);
    DenseBackend d(kQubits);
    s.apply_h_range(0, kIndexWidth);
    d.apply_h_range(0, kIndexWidth);
    for (int op = 0; op < 40; ++op) {
      const std::uint64_t idx = rng.below(16);
      const unsigned tail = kIndexWidth + static_cast<unsigned>(rng.below(2));
      switch (rng.below(7)) {
        case 0:
          s.apply_x_on_index(0, kIndexWidth, idx, tail);
          d.apply_x_on_index(0, kIndexWidth, idx, tail);
          break;
        case 1:
          s.apply_z_on_index(0, kIndexWidth, idx, tail);
          d.apply_z_on_index(0, kIndexWidth, idx, tail);
          break;
        case 2:
          s.apply_cx_on_index(0, kIndexWidth, idx, kIndexWidth,
                              kIndexWidth + 1);
          d.apply_cx_on_index(0, kIndexWidth, idx, kIndexWidth,
                              kIndexWidth + 1);
          break;
        case 3: {
          const std::vector<std::uint64_t> marked = {idx};
          s.apply_phase_flip_set(marked);
          d.apply_phase_flip_set(marked);
          break;
        }
        case 4:
          s.apply_grover_diffusion(0, kIndexWidth);
          d.apply_grover_diffusion(0, kIndexWidth);
          break;
        case 5:
          s.apply_reflect_zero(0, kIndexWidth);
          d.apply_reflect_zero(0, kIndexWidth);
          break;
        case 6:
          s.apply_h(tail);
          d.apply_h(tail);
          break;
      }
    }
    expect_states_equal(s, d);
    ASSERT_NEAR(s.norm(), 1.0, 1e-9) << "trial " << trial;
    // The class count never explodes: these ops touch O(1) indices each.
    ASSERT_LE(s.peak_class_count(), 64u);
  }
}

TEST(StructuredBackend, ManyDiffusionsKeepClassCountBounded) {
  StructuredBackend s(kQubits, kIndexWidth);
  s.apply_h_range(0, kIndexWidth);
  const std::vector<std::uint64_t> marked = {6};
  for (int it = 0; it < 1000; ++it) {
    s.apply_phase_flip_set(marked);
    s.apply_grover_diffusion(0, kIndexWidth);
    ASSERT_LE(s.class_count(), 3u);
  }
  EXPECT_NEAR(s.norm(), 1.0, 1e-9);
}

TEST(StructuredBackend, UnsupportedOperationsThrow) {
  StructuredBackend s(kQubits, kIndexWidth);
  s.apply_h_range(0, kIndexWidth);
  EXPECT_THROW(s.apply_h(0), UnsupportedOperation);       // index-qubit H
  EXPECT_THROW(s.apply_z(2), UnsupportedOperation);       // index-qubit Z
  EXPECT_THROW(s.apply_h_range(0, 2), UnsupportedOperation);  // sub-range
  Rng rng(1);
  EXPECT_THROW(s.measure(0, rng), UnsupportedOperation);  // index measurement
  // Partial index-control pattern (covers 1 of 4 index qubits).
  const std::vector<ControlTerm> partial = {{0, true}};
  EXPECT_THROW(s.apply_mcx(partial, kIndexWidth), UnsupportedOperation);
  EXPECT_THROW(s.apply_mcz(partial), UnsupportedOperation);
  // H range on a state that is neither uniform nor index-0 concentrated.
  s.apply_phase_flip_set(std::vector<std::uint64_t>{5});
  EXPECT_THROW(s.apply_h_range(0, kIndexWidth), UnsupportedOperation);
}

TEST(StructuredBackend, HRangeRejectsMultiIndexConcentration) {
  // Regression: a state whose support is {0, 1} (a two-member class after a
  // collapse) is NOT an index-0 product state; the collapse branch of
  // apply_h_range must throw, never silently emit an unnormalized state.
  StructuredBackend s(kQubits, kIndexWidth);
  s.apply_h_range(0, kIndexWidth);
  s.apply_x_on_index(0, kIndexWidth, 0, kIndexWidth);
  s.apply_x_on_index(0, kIndexWidth, 1, kIndexWidth);  // class {0,1}, h=1
  // Find a seed measuring h = 1 so only the {0,1} class survives.
  bool exercised = false;
  for (std::uint64_t seed = 0; seed < 64 && !exercised; ++seed) {
    StructuredBackend t(kQubits, kIndexWidth);
    t.apply_h_range(0, kIndexWidth);
    t.apply_x_on_index(0, kIndexWidth, 0, kIndexWidth);
    t.apply_x_on_index(0, kIndexWidth, 1, kIndexWidth);
    Rng rng(seed);
    if (!t.measure(kIndexWidth, rng)) continue;
    exercised = true;
    ASSERT_NEAR(t.norm(), 1.0, 1e-12);
    EXPECT_THROW(t.apply_h_range(0, kIndexWidth), UnsupportedOperation);
    EXPECT_NEAR(t.norm(), 1.0, 1e-12);  // state untouched by the rejection
  }
  EXPECT_TRUE(exercised);
}

TEST(StructuredBackend, ConstructionValidatesTheSplit) {
  EXPECT_THROW(StructuredBackend(4, 0), std::invalid_argument);
  EXPECT_THROW(StructuredBackend(4, 4), std::invalid_argument);
  EXPECT_THROW(StructuredBackend(60, 59), std::invalid_argument);
  EXPECT_NO_THROW(StructuredBackend(58, 56));  // 56 index qubits: fine
}

TEST(StructuredBackend, LargeIndexRegisterStaysExact) {
  // k = 20 equivalent: 40 index qubits, far beyond any dense register.
  const unsigned w = 40;
  StructuredBackend s(w + 2, w);
  s.apply_h_range(0, w);
  EXPECT_EQ(s.class_count(), 1u);
  const double amp = std::pow(2.0, -20.0);  // 1/sqrt(2^40), exact in binary
  EXPECT_DOUBLE_EQ(s.amplitude(123456789).real(), amp);
  const std::vector<std::uint64_t> marked = {std::uint64_t{1} << 39};
  for (int it = 0; it < 100; ++it) {
    s.apply_phase_flip_set(marked);
    s.apply_grover_diffusion(0, w);
  }
  EXPECT_NEAR(s.norm(), 1.0, 1e-9);
  EXPECT_LE(s.class_count(), 3u);
  EXPECT_EQ(s.explicit_index_count(), 1u);
}

TEST(StructuredBackend, ResetRearms) {
  StructuredBackend s(kQubits, kIndexWidth);
  s.apply_h_range(0, kIndexWidth);
  s.apply_phase_flip_set(std::vector<std::uint64_t>{1, 2, 3});
  s.reset();
  EXPECT_EQ(s.amplitude(0), (Amplitude{1.0, 0.0}));
  EXPECT_NEAR(s.norm(), 1.0, 1e-15);
}

}  // namespace
