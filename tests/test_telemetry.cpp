// Unit tests: the telemetry instruments and registry — bucket geometry,
// merge algebra, exact quantiles on known distributions, runtime gating,
// registry identity/rendering, and concurrent recording (the TSan target:
// every record path must be lock-free AND race-free).
//
// These tests run in both library configurations. With QOLS_TELEMETRY=OFF
// the instruments are no-op shells; tests of recorded VALUES skip, while
// tests of the API surface (identity, snapshot shape, gating being inert)
// still assert the compiled-out contract.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "qols/telemetry/registry.hpp"

namespace {

namespace telemetry = qols::telemetry;
using telemetry::HistogramSnapshot;
using telemetry::kHistogramBuckets;
using telemetry::MetricsRegistry;

/// RAII guard: tests flip the runtime switch; the suite must leave the
/// process in the default-enabled posture whatever the test outcome.
struct EnabledGuard {
  bool saved = telemetry::enabled();
  ~EnabledGuard() { telemetry::set_enabled(saved); }
};

#define SKIP_IF_COMPILED_OUT()                                        \
  if (!telemetry::compiled()) {                                       \
    GTEST_SKIP() << "telemetry compiled out (QOLS_TELEMETRY=OFF)";    \
  }

TEST(HistogramBuckets, Log2Geometry) {
  // Bucket 0 holds only the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(telemetry::histogram_bucket(0), 0u);
  EXPECT_EQ(telemetry::histogram_bucket(1), 1u);
  EXPECT_EQ(telemetry::histogram_bucket(2), 2u);
  EXPECT_EQ(telemetry::histogram_bucket(3), 2u);
  EXPECT_EQ(telemetry::histogram_bucket(4), 3u);
  EXPECT_EQ(telemetry::histogram_bucket(7), 3u);
  EXPECT_EQ(telemetry::histogram_bucket(8), 4u);
  EXPECT_EQ(telemetry::histogram_bucket((1ull << 20)), 21u);
  EXPECT_EQ(telemetry::histogram_bucket(~0ull), 64u);

  EXPECT_EQ(telemetry::histogram_bucket_bound(0), 0u);
  EXPECT_EQ(telemetry::histogram_bucket_bound(1), 1u);
  EXPECT_EQ(telemetry::histogram_bucket_bound(2), 3u);
  EXPECT_EQ(telemetry::histogram_bucket_bound(3), 7u);
  EXPECT_EQ(telemetry::histogram_bucket_bound(63), (1ull << 63) - 1);
  EXPECT_EQ(telemetry::histogram_bucket_bound(64), ~0ull);

  // Every value lands in the bucket whose bound covers it — boundary values
  // exactly at their own bound (that is what makes boundary-valued inputs
  // quantile-exact).
  for (unsigned i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(telemetry::histogram_bucket(telemetry::histogram_bucket_bound(i)),
              i);
  }
}

TEST(HistogramSnapshot, MergeIsAssociativeAndCommutative) {
  HistogramSnapshot a, b, c;
  a.buckets[1] = 5;
  a.count = 5;
  a.sum = 5;
  b.buckets[3] = 2;
  b.buckets[1] = 1;
  b.count = 3;
  b.sum = 11;
  c.buckets[10] = 7;
  c.count = 7;
  c.sum = 7000;

  // (a + b) + c
  HistogramSnapshot ab = a;
  ab.merge(b);
  HistogramSnapshot ab_c = ab;
  ab_c.merge(c);
  // a + (b + c)
  HistogramSnapshot bc = b;
  bc.merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.merge(bc);
  // c + (b + a): commuted
  HistogramSnapshot ba = b;
  ba.merge(a);
  HistogramSnapshot c_ba = c;
  c_ba.merge(ba);

  EXPECT_EQ(ab_c.count, 15u);
  EXPECT_EQ(ab_c.sum, a.sum + b.sum + c.sum);
  for (unsigned i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(ab_c.buckets[i], a_bc.buckets[i]) << "bucket " << i;
    EXPECT_EQ(ab_c.buckets[i], c_ba.buckets[i]) << "bucket " << i;
  }
  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.sum, c_ba.sum);
}

TEST(HistogramSnapshot, ExactQuantilesOnBoundaryValuedDistribution) {
  SKIP_IF_COMPILED_OUT();
  EnabledGuard guard;
  telemetry::set_enabled(true);
  telemetry::LatencyHistogram h;
  // 10x 0, 40x 1, 40x 3, 10x 7 — all bucket bounds, so quantiles are exact.
  for (int i = 0; i < 10; ++i) h.record(0);
  for (int i = 0; i < 40; ++i) h.record(1);
  for (int i = 0; i < 40; ++i) h.record(3);
  for (int i = 0; i < 10; ++i) h.record(7);

  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 0u * 10 + 1u * 40 + 3u * 40 + 7u * 10);
  EXPECT_DOUBLE_EQ(s.mean(), 2.3);
  EXPECT_EQ(s.quantile(0.10), 0u);  // rank 10 is the last 0
  EXPECT_EQ(s.p50(), 1u);           // rank 50 is the last 1
  EXPECT_EQ(s.p90(), 3u);           // rank 90 is the last 3
  EXPECT_EQ(s.p99(), 7u);           // rank 99 is a 7
  EXPECT_EQ(s.quantile(1.0), 7u);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().quantile(0.5), 0u);  // empty histogram reads 0
}

TEST(Instruments, RuntimeDisableStopsRecordingAndPreservesValues) {
  SKIP_IF_COMPILED_OUT();
  EnabledGuard guard;
  telemetry::set_enabled(true);
  telemetry::Counter c;
  telemetry::Gauge g;
  telemetry::LatencyHistogram h;
  c.add(3);
  g.set(42);
  h.record(5);

  telemetry::set_enabled(false);
  EXPECT_FALSE(telemetry::enabled());
  c.add(100);
  g.set(7);
  g.add(1);
  h.record(9);
  { telemetry::ScopedTimer t(h); }  // disabled at construction: no sample

  // Disabled means frozen, not zeroed.
  EXPECT_EQ(c.value(), 3u);
  EXPECT_EQ(g.value(), 42);
  EXPECT_EQ(h.snapshot().count, 1u);

  telemetry::set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 4u);
  { telemetry::ScopedTimer t(h); }
  EXPECT_EQ(h.snapshot().count, 2u);
}

TEST(Instruments, CompiledOutInstrumentsAreInertShells) {
  if (telemetry::compiled()) {
    GTEST_SKIP() << "telemetry compiled in; the OFF contract is exercised by "
                    "the QOLS_TELEMETRY=OFF CI leg";
  }
  EXPECT_FALSE(telemetry::enabled());
  telemetry::set_enabled(true);  // must be inert, not turn anything on
  EXPECT_FALSE(telemetry::enabled());
  telemetry::Counter c;
  c.add(5);
  EXPECT_EQ(c.value(), 0u);
  telemetry::LatencyHistogram h;
  h.record(123);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(Registry, SameNameSameInstrumentAcrossLookups) {
  auto& reg = MetricsRegistry::global();
  telemetry::Counter& a = reg.counter("test.registry.identity");
  telemetry::Counter& b = reg.counter("test.registry.identity");
  EXPECT_EQ(&a, &b);
  telemetry::Gauge& g1 = reg.gauge("test.registry.gauge");
  telemetry::Gauge& g2 = reg.gauge("test.registry.gauge");
  EXPECT_EQ(&g1, &g2);
  telemetry::LatencyHistogram& h1 = reg.histogram("test.registry.hist");
  telemetry::LatencyHistogram& h2 = reg.histogram("test.registry.hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, KindCollisionThrows) {
  SKIP_IF_COMPILED_OUT();  // the OFF registry hands out shared dummies
  auto& reg = MetricsRegistry::global();
  reg.counter("test.registry.collision");
  EXPECT_THROW(reg.gauge("test.registry.collision"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("test.registry.collision"),
               std::invalid_argument);
  reg.histogram("test.registry.collision.h");
  EXPECT_THROW(reg.counter("test.registry.collision.h"),
               std::invalid_argument);
}

TEST(Registry, SnapshotCarriesValuesAndQuantiles) {
  SKIP_IF_COMPILED_OUT();
  EnabledGuard guard;
  telemetry::set_enabled(true);
  auto& reg = MetricsRegistry::global();
  reg.counter("test.snapshot.counter").reset();
  reg.counter("test.snapshot.counter").add(17);
  reg.gauge("test.snapshot.gauge").set(-4);
  auto& h = reg.histogram("test.snapshot.hist");
  h.reset();
  for (int i = 0; i < 8; ++i) h.record(3);

  const auto doc = telemetry::snapshot();
  const std::string text = doc.dump(2);
  EXPECT_NE(text.find("\"compiled\": true"), std::string::npos);
  EXPECT_NE(text.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(text.find("\"test.snapshot.counter\": 17"), std::string::npos);
  EXPECT_NE(text.find("\"test.snapshot.gauge\": -4"), std::string::npos);
  EXPECT_NE(text.find("\"test.snapshot.hist\""), std::string::npos);
  EXPECT_NE(text.find("\"p50\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"count\": 8"), std::string::npos);
}

TEST(Registry, PrometheusExpositionShape) {
  SKIP_IF_COMPILED_OUT();
  EnabledGuard guard;
  telemetry::set_enabled(true);
  auto& reg = MetricsRegistry::global();
  reg.counter("test.prom.counter").reset();
  reg.counter("test.prom.counter").add(9);
  auto& h = reg.histogram("test.prom-hist");
  h.reset();
  h.record(1);
  h.record(3);

  std::ostringstream os;
  telemetry::render_prometheus(os);
  const std::string text = os.str();
  // Dots and dashes sanitize to underscores; the qols_ prefix namespaces us.
  EXPECT_NE(text.find("# TYPE qols_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("qols_test_prom_counter 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qols_test_prom_hist histogram"),
            std::string::npos);
  // Cumulative le-buckets: the le="3" bucket counts BOTH samples.
  EXPECT_NE(text.find("qols_test_prom_hist_bucket{le=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("qols_test_prom_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("qols_test_prom_hist_sum 4"), std::string::npos);
  EXPECT_NE(text.find("qols_test_prom_hist_count 2"), std::string::npos);
}

TEST(Registry, CompiledOutSnapshotSaysSo) {
  if (telemetry::compiled()) GTEST_SKIP() << "telemetry compiled in";
  const std::string text = telemetry::snapshot().dump(2);
  EXPECT_NE(text.find("\"compiled\": false"), std::string::npos);
  std::ostringstream os;
  telemetry::render_prometheus(os);
  EXPECT_NE(os.str().find("compiled out"), std::string::npos);
}

TEST(Registry, SpanSiteCountsCallsAndSamples) {
  SKIP_IF_COMPILED_OUT();
  EnabledGuard guard;
  telemetry::set_enabled(true);
  auto site = telemetry::SpanSite::resolve("test.span");
  site.calls.reset();
  site.ns.reset();
  for (int i = 0; i < 3; ++i) {
    telemetry::TraceSpan span(site);
  }
  EXPECT_EQ(site.calls.value(), 3u);
  EXPECT_EQ(site.ns.snapshot().count, 3u);
  // Resolving again lands on the same instruments.
  auto again = telemetry::SpanSite::resolve("test.span");
  EXPECT_EQ(&again.calls, &site.calls);
  EXPECT_EQ(&again.ns, &site.ns);
}

// The TSan target: concurrent recording into one shared instrument set from
// many threads, with a reader snapshotting mid-flight. Counts must add up
// exactly (relaxed atomics lose nothing) and TSan must see no race.
TEST(Concurrency, ParallelRecordersLoseNothing) {
  SKIP_IF_COMPILED_OUT();
  EnabledGuard guard;
  telemetry::set_enabled(true);
  auto& reg = MetricsRegistry::global();
  auto& counter = reg.counter("test.concurrent.counter");
  auto& hist = reg.histogram("test.concurrent.hist");
  counter.reset();
  hist.reset();

  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add();
        hist.record((t + 1) * 3);  // a few distinct buckets
      }
    });
  }
  // A concurrent reader: snapshots must be internally consistent (count ==
  // bucket sum by construction) while writers are mid-record.
  workers.emplace_back([&hist] {
    for (int i = 0; i < 100; ++i) {
      const HistogramSnapshot s = hist.snapshot();
      std::uint64_t total = 0;
      for (const auto b : s.buckets) total += b;
      EXPECT_EQ(total, s.count);
    }
  });
  for (auto& w : workers) w.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  const HistogramSnapshot s = hist.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (unsigned t = 0; t < kThreads; ++t) expected_sum += (t + 1) * 3 * kPerThread;
  EXPECT_EQ(s.sum, expected_sum);
}

TEST(Registry, ResetAllZeroesEveryInstrumentButKeepsReferencesValid) {
  SKIP_IF_COMPILED_OUT();
  EnabledGuard guard;
  telemetry::set_enabled(true);
  auto& reg = MetricsRegistry::global();
  auto& c = reg.counter("test.reset.counter");
  auto& h = reg.histogram("test.reset.hist");
  c.add(5);
  h.record(1);
  reg.reset_all();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add(2);  // the reference still points at the live instrument
  EXPECT_EQ(reg.counter("test.reset.counter").value(), 2u);
}

}  // namespace
