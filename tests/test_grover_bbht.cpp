// Unit + statistical tests: the adaptive BBHT search (unknown solution
// count) on the exact simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "qols/grover/bbht.hpp"

namespace {

using qols::grover::bbht_search;
using qols::grover::BbhtResult;
using qols::util::Rng;

TEST(Bbht, RejectsNonPowerOfTwo) {
  Rng rng(1);
  auto oracle = [](std::uint64_t) { return false; };
  EXPECT_THROW(bbht_search(0, oracle, rng), std::invalid_argument);
  EXPECT_THROW(bbht_search(1, oracle, rng), std::invalid_argument);
  EXPECT_THROW(bbht_search(12, oracle, rng), std::invalid_argument);
}

TEST(Bbht, FindsUniqueSolution) {
  for (std::uint64_t n : {4ULL, 16ULL, 64ULL, 256ULL}) {
    const std::uint64_t target = n / 3;
    auto oracle = [target](std::uint64_t i) { return i == target; };
    int found = 0;
    for (int trial = 0; trial < 25; ++trial) {
      Rng rng(100 + trial);
      const BbhtResult r = bbht_search(n, oracle, rng);
      if (r.found) {
        ASSERT_EQ(r.index, target);
        ++found;
      }
    }
    // BBHT succeeds with overwhelming probability well before the cutoff.
    EXPECT_GE(found, 23) << "n=" << n;
  }
}

TEST(Bbht, FindsAmongManySolutions) {
  const std::uint64_t n = 256;
  std::set<std::uint64_t> marked = {3, 77, 150, 201, 255};
  auto oracle = [&](std::uint64_t i) { return marked.count(i) > 0; };
  for (int trial = 0; trial < 20; ++trial) {
    Rng rng(500 + trial);
    const BbhtResult r = bbht_search(n, oracle, rng);
    ASSERT_TRUE(r.found);
    ASSERT_TRUE(marked.count(r.index)) << r.index;
  }
}

TEST(Bbht, DeclaresNoneWhenEmpty) {
  Rng rng(7);
  auto oracle = [](std::uint64_t) { return false; };
  const BbhtResult r = bbht_search(64, oracle, rng);
  EXPECT_FALSE(r.found);
  // It must have worked roughly the cutoff's worth of iterations.
  EXPECT_GE(r.oracle_calls, 64u);
}

TEST(Bbht, AllSolutionsTerminatesImmediately) {
  Rng rng(8);
  auto oracle = [](std::uint64_t) { return true; };
  const BbhtResult r = bbht_search(32, oracle, rng);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.oracle_calls, 0u);  // the first measurement already verifies
}

TEST(Bbht, CostDecreasesWithMoreSolutions) {
  // Expected oracle calls scale like sqrt(N/t): average over trials and
  // check monotonicity across a t sweep (with slack for variance).
  const std::uint64_t n = 1024;
  auto mean_calls = [&](std::uint64_t t) {
    double total = 0.0;
    const int trials = 40;
    for (int i = 0; i < trials; ++i) {
      auto oracle = [t](std::uint64_t idx) { return idx < t; };
      Rng rng(1000 + i);
      const BbhtResult r = bbht_search(n, oracle, rng);
      EXPECT_TRUE(r.found);
      total += static_cast<double>(r.oracle_calls);
    }
    return total / trials;
  };
  const double c1 = mean_calls(1);
  const double c16 = mean_calls(16);
  const double c128 = mean_calls(128);
  EXPECT_GT(c1, c16);
  EXPECT_GT(c16, c128);
  // Order-of-magnitude check against sqrt(N/t).
  EXPECT_LT(c1, 6.0 * std::sqrt(1024.0));
}

TEST(Bbht, UniqueSolutionCostNearSqrtN) {
  // For t = 1 the expected iteration count is <= ~4.5 sqrt(N/t) (BBHT Thm 3).
  const std::uint64_t n = 256;
  double total = 0.0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    auto oracle = [](std::uint64_t idx) { return idx == 123; };
    Rng rng(2000 + i);
    const BbhtResult r = bbht_search(n, oracle, rng);
    ASSERT_TRUE(r.found);
    total += static_cast<double>(r.oracle_calls);
  }
  EXPECT_LT(total / trials, 4.5 * std::sqrt(256.0));
}

}  // namespace
