// Unit + property tests: polynomial fingerprints and procedure A2.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qols/fingerprint/equality_checker.hpp"
#include "qols/fingerprint/poly_fingerprint.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/util/modmath.hpp"

namespace {

using namespace qols::fingerprint;
using qols::lang::LDisjInstance;
using qols::lang::make_mutant_stream;
using qols::lang::MutantKind;
using qols::stream::StringStream;
using qols::util::BitVec;
using qols::util::Rng;

TEST(PolyFingerprint, MatchesDirectEvaluation) {
  const std::uint64_t p = 1000003, t = 777;
  PolyFingerprint f(p, t);
  const std::string bits = "1011001110";
  std::uint64_t expect = 0, tp = 1;
  for (char c : bits) {
    if (c == '1') expect = qols::util::addmod(expect, tp, p);
    tp = qols::util::mulmod(tp, t, p);
    f.feed(c == '1');
  }
  EXPECT_EQ(f.value(), expect);
}

TEST(PolyFingerprint, EqualStringsAlwaysCollide) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t p = qols::util::fingerprint_prime(2);
    const std::uint64_t t = rng.below(p);
    BitVec w = BitVec::random(64, rng);
    PolyFingerprint a(p, t), b(p, t);
    for (std::size_t i = 0; i < w.size(); ++i) {
      a.feed(w.get(i));
      b.feed(w.get(i));
    }
    ASSERT_EQ(a.value(), b.value());
  }
}

TEST(PolyFingerprint, BulkFeedIsBitIdenticalToPerBitFeed) {
  // The batched Horner pass must produce the exact accumulator and t-power
  // of per-bit feeding, at every split point and for ragged lane tails
  // (lengths straddling the 8-lane groups), interleaved with per-bit calls.
  Rng rng(42);
  for (const unsigned k : {1u, 2u, 4u, 8u}) {
    const std::uint64_t p = qols::util::fingerprint_prime(k);
    for (int trial = 0; trial < 10; ++trial) {
      const std::uint64_t t = rng.below(p);
      const std::size_t len = 1 + rng.below(200);
      std::vector<std::uint8_t> bits(len);
      for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));

      PolyFingerprint reference(p, t);
      for (const auto b : bits) reference.feed_counted(b != 0);

      const std::size_t cut = rng.below(len + 1);
      PolyFingerprint bulk(p, t);
      bulk.feed_counted_bulk(bits.data(), cut);
      if (cut < len) bulk.feed_counted(bits[cut] != 0);  // interleave
      if (cut + 1 < len) {
        bulk.feed_counted_bulk(bits.data() + cut + 1, len - cut - 1);
      }

      ASSERT_EQ(bulk.value(), reference.value())
          << "k=" << k << " len=" << len << " cut=" << cut;
      ASSERT_EQ(bulk.length(), reference.length());
      // Continuations must also agree: the t-power advanced identically.
      bulk.feed_counted(true);
      reference.feed_counted(true);
      ASSERT_EQ(bulk.value(), reference.value());
    }
  }
}

TEST(PolyFingerprint, BulkFeedFallsBackAboveTheMontgomeryCeiling) {
  // Montgomery REDC is only valid for moduli below 2^63; an odd p above
  // that must take the per-bit path and still match it exactly.
  const std::uint64_t p = (std::uint64_t{1} << 63) + 29;  // odd, >= 2^63
  const std::uint64_t t = 0x123456789abcdefULL;
  std::vector<std::uint8_t> bits(70);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = static_cast<std::uint8_t>((i * 7 + 3) % 5 < 2);
  }
  PolyFingerprint reference(p, t), bulk(p, t);
  for (const auto b : bits) reference.feed_counted(b != 0);
  bulk.feed_counted_bulk(bits.data(), bits.size());
  EXPECT_EQ(bulk.value(), reference.value());
  EXPECT_EQ(bulk.length(), reference.length());
}

TEST(PolyFingerprint, BulkFeedFallsBackOnEvenModulus) {
  // Montgomery needs an odd modulus; even p must take the per-bit path and
  // still agree with it.
  const std::uint64_t p = 1000000, t = 777;
  std::vector<std::uint8_t> bits = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  PolyFingerprint reference(p, t), bulk(p, t);
  for (const auto b : bits) reference.feed_counted(b != 0);
  bulk.feed_counted_bulk(bits.data(), bits.size());
  EXPECT_EQ(bulk.value(), reference.value());
  EXPECT_EQ(bulk.length(), reference.length());
}

TEST(PolyFingerprint, ResetClearsState) {
  PolyFingerprint f(97, 5);
  f.feed(true);
  f.feed(true);
  f.reset();
  EXPECT_EQ(f.value(), 0u);
  f.feed(true);
  EXPECT_EQ(f.value(), 1u);  // t^0 = 1
}

TEST(PolyFingerprint, CollisionRateIsBoundedByTheory) {
  // Distinct strings of length m collide on random t with prob <= (m-1)/p.
  Rng rng(2);
  const unsigned k = 1;  // p in (2^4, 2^5): tiny field, so collisions happen
  const std::uint64_t p = qols::util::fingerprint_prime(k);
  const std::uint64_t m = 16;
  int collisions = 0;
  constexpr int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    BitVec a = BitVec::random(m, rng);
    BitVec b = BitVec::random(m, rng);
    if (a == b) {
      --trial;
      continue;
    }
    const std::uint64_t t = rng.below(p);
    PolyFingerprint fa(p, t), fb(p, t);
    for (std::uint64_t i = 0; i < m; ++i) {
      fa.feed(a.get(i));
      fb.feed(b.get(i));
    }
    if (fa.value() == fb.value()) ++collisions;
  }
  const double rate = collisions / static_cast<double>(kTrials);
  const double bound = static_cast<double>(m - 1) / static_cast<double>(p);
  // Allow generous sampling slack above the analytic bound.
  EXPECT_LE(rate, bound + 0.03);
}

// --- A2 ---------------------------------------------------------------------

bool run_a2(const std::string& word, std::uint64_t seed) {
  EqualityChecker a2{Rng(seed)};
  StringStream s(word);
  while (auto sym = s.next()) a2.feed(*sym);
  return a2.passed();
}

TEST(EqualityChecker, PassesConsistentWordsAlways) {
  Rng rng(3);
  for (unsigned k = 1; k <= 3; ++k) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      auto inst = LDisjInstance::make_disjoint(k, rng);
      ASSERT_TRUE(run_a2(inst.render(), seed)) << "k=" << k;
    }
  }
}

TEST(EqualityChecker, PassesIntersectingButConsistentWords) {
  // A2 checks consistency only — intersections are A3's job.
  Rng rng(4);
  auto inst = LDisjInstance::make_with_intersections(2, 3, rng);
  EXPECT_TRUE(run_a2(inst.render(), 99));
}

TEST(EqualityChecker, CatchesXZMismatchWithHighProbability) {
  Rng rng(5);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  auto mutant = make_mutant_stream(inst, MutantKind::kXZMismatch, rng);
  const std::string word = qols::stream::materialize(*mutant);
  int caught = 0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    if (!run_a2(word, 1000 + i)) ++caught;
  }
  // Theory: failure to catch < 2^{-2k} = 1/16 per trial.
  EXPECT_GE(caught, kTrials * 14 / 16);
}

TEST(EqualityChecker, CatchesYDriftWithHighProbability) {
  Rng rng(6);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  auto mutant = make_mutant_stream(inst, MutantKind::kYDrift, rng);
  const std::string word = qols::stream::materialize(*mutant);
  int caught = 0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    if (!run_a2(word, 2000 + i)) ++caught;
  }
  EXPECT_GE(caught, kTrials * 14 / 16);
}

TEST(EqualityChecker, ExposesPrimeInPaperInterval) {
  Rng rng(7);
  auto inst = LDisjInstance::make_disjoint(3, rng);
  EqualityChecker a2{Rng(1)};
  StringStream s(inst.render());
  while (auto sym = s.next()) a2.feed(*sym);
  ASSERT_TRUE(a2.prime().has_value());
  EXPECT_GT(*a2.prime(), 1ULL << 12);  // 2^{4k} with k=3
  EXPECT_LT(*a2.prime(), 1ULL << 13);
  ASSERT_TRUE(a2.point().has_value());
  EXPECT_LT(*a2.point(), *a2.prime());
}

TEST(EqualityChecker, SpaceIsLogarithmic) {
  Rng rng(8);
  for (unsigned k = 1; k <= 4; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    EqualityChecker a2{Rng(1)};
    auto s = inst.stream();
    while (auto sym = s->next()) a2.feed(*sym);
    EXPECT_LE(a2.classical_bits_used(), 64 * k + 64) << "k=" << k;
  }
}

TEST(EqualityChecker, InertOnBrokenPrefix) {
  // '0' before '#': A2 must not activate (and must not crash).
  EXPECT_TRUE(run_a2("0#1010#", 5));
}

// Parameterized: detection probability across k for single-bit damage.
class A2Detection : public ::testing::TestWithParam<unsigned> {};

TEST_P(A2Detection, CatchRateBeatsPaperBound) {
  const unsigned k = GetParam();
  Rng rng(900 + k);
  auto inst = LDisjInstance::make_disjoint(k, rng);
  auto mutant = make_mutant_stream(inst, MutantKind::kXZMismatch, rng);
  const std::string word = qols::stream::materialize(*mutant);
  constexpr int kTrials = 100;
  int caught = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (!run_a2(word, 5000 + i)) ++caught;
  }
  // Expected catch rate >= 1 - 2^{-2k}; binomial slack of 4 misses allowed.
  const double expect_min = 1.0 - std::pow(2.0, -2.0 * k);
  EXPECT_GE(caught + 4, static_cast<int>(kTrials * expect_min));
}

INSTANTIATE_TEST_SUITE_P(Ks, A2Detection, ::testing::Values(1u, 2u, 3u));

}  // namespace
