// Unit tests: the gate IR and Definition 2.3's output-tape serialization.
#include <gtest/gtest.h>

#include "qols/quantum/circuit.hpp"

namespace {

using qols::quantum::apply_gate;
using qols::quantum::Circuit;
using qols::quantum::Gate;
using qols::quantum::GateKind;
using qols::quantum::StateVector;

TEST(Circuit, EmptyTapeIsEmptyCircuit) {
  auto c = Circuit::from_tape("");
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->empty());
  EXPECT_EQ(c->to_tape(), "");
}

TEST(Circuit, TapeRoundTrip) {
  Circuit c;
  c.add_h(0);
  c.add_t(3);
  c.add_cnot(1, 2);
  const std::string tape = c.to_tape();
  auto parsed = Circuit::from_tape(tape);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, c);
}

TEST(Circuit, TapeFormatMatchesPaper) {
  // a1#b1#c1#a2#b2#c2 with c in {0,1,2} selecting {H, T, CNOT}.
  Circuit c;
  c.add(Gate{GateKind::kCnot, 4, 7});
  EXPECT_EQ(c.to_tape(), "4#7#2");
  c.add(Gate{GateKind::kH, 0, 1});
  EXPECT_EQ(c.to_tape(), "4#7#2#0#1#0");
}

TEST(Circuit, ParseRejectsMalformedTapes) {
  EXPECT_FALSE(Circuit::from_tape("1#2").has_value());       // arity
  EXPECT_FALSE(Circuit::from_tape("1#2#3").has_value());     // c out of range
  EXPECT_FALSE(Circuit::from_tape("a#2#1").has_value());     // non-numeric
  EXPECT_FALSE(Circuit::from_tape("1##1").has_value());      // empty field
  EXPECT_FALSE(Circuit::from_tape("1#2#1#").has_value());    // trailing sep
  EXPECT_FALSE(Circuit::from_tape("-1#2#1").has_value());    // negative
}

TEST(Circuit, IdentityConventionAEqualsB) {
  // The paper: a == b denotes the identity gate.
  StateVector sv(2);
  sv.apply_h(0);
  StateVector ref = sv;
  apply_gate(sv, Gate{GateKind::kH, 1, 1});
  apply_gate(sv, Gate{GateKind::kCnot, 0, 0});
  EXPECT_NEAR(sv.fidelity(ref), 1.0, 1e-12);
}

TEST(Circuit, ApplyToMatchesManualApplication) {
  Circuit c;
  c.add_h(0);
  c.add_cnot(0, 1);
  c.add_t(1);
  StateVector via_circuit(2);
  c.apply_to(via_circuit);
  StateVector manual(2);
  manual.apply_h(0);
  manual.apply_cnot(0, 1);
  manual.apply_t(1);
  EXPECT_NEAR(via_circuit.fidelity(manual), 1.0, 1e-12);
}

TEST(Circuit, CountsByKind) {
  Circuit c;
  c.add_h(0);
  c.add_h(1);
  c.add_t(0);
  c.add_cnot(0, 1);
  c.add(Gate{GateKind::kH, 2, 2});  // identity by convention
  const auto counts = c.counts();
  EXPECT_EQ(counts.h, 2u);
  EXPECT_EQ(counts.t, 1u);
  EXPECT_EQ(counts.cnot, 1u);
  EXPECT_EQ(counts.identity, 1u);
  EXPECT_EQ(counts.total(), 5u);
}

TEST(Circuit, QubitsSpanned) {
  Circuit c;
  EXPECT_EQ(c.qubits_spanned(), 0u);
  c.add_cnot(2, 9);
  EXPECT_EQ(c.qubits_spanned(), 10u);
}

TEST(Circuit, AppendConcatenates) {
  Circuit a, b;
  a.add_h(0);
  b.add_t(1);
  a.append(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[1].kind, GateKind::kT);
}

TEST(Circuit, LargeTapeRoundTrip) {
  Circuit c;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    c.add(Gate{static_cast<GateKind>(i % 3), i % 17, (i + 5) % 17});
  }
  auto parsed = Circuit::from_tape(c.to_tape());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, c);
}

}  // namespace
