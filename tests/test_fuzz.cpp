// Unit tests: the differential fuzzing subsystem — generator determinism,
// repro-token round trips, bit-identical replay, the reference word
// classifier, greedy shrinking on planted discrepancies, and a mini soak.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "qols/fuzz/fuzz_case.hpp"
#include "qols/fuzz/fuzzer.hpp"
#include "qols/fuzz/properties.hpp"
#include "qols/fuzz/repro.hpp"
#include "qols/fuzz/shrink.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/util/rng.hpp"

namespace {

using namespace qols::fuzz;
using qols::lang::LDisjInstance;
using qols::stream::Symbol;

std::vector<Symbol> to_symbols(const std::string& text) {
  std::vector<Symbol> out;
  for (const char c : text) out.push_back(*qols::stream::symbol_from_char(c));
  return out;
}

TEST(FuzzCaseGen, DeterministicFromSeed) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    const FuzzCase a = FuzzCase::from_seed(seed);
    const FuzzCase b = FuzzCase::from_seed(seed);
    EXPECT_EQ(encode_token(a), encode_token(b));
    EXPECT_EQ(realize_word(a), realize_word(b));
    EXPECT_EQ(expand_schedule(a, realize_word(a).size()),
              expand_schedule(b, realize_word(b).size()));
  }
}

TEST(FuzzCaseGen, DistributionCoversEveryFamilyAndRecognizer) {
  std::set<WordKind> words;
  std::set<qols::service::RecognizerKind> recs;
  std::set<ScheduleKind> schedules;
  std::set<unsigned> sessions;
  std::set<bool> quantum_precisions;
  std::set<bool> snapshot_axis;
  std::set<bool> wire_axis;
  std::set<bool> crash_axis;
  std::set<bool> migrate_axis;
  bool saw_wrappers = false;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    const FuzzCase c = FuzzCase::from_seed(seed);
    words.insert(c.word);
    recs.insert(c.spec.kind);
    schedules.insert(c.schedule);
    sessions.insert(c.sessions);
    snapshot_axis.insert(c.snapshot_cut != kNoSnapshot);
    wire_axis.insert(c.wire_split != kNoWire);
    crash_axis.insert(c.crash_point != kNoCrash);
    if (c.crash_point != kNoCrash) {
      migrate_axis.insert(c.migrate_step != kNoMigrate);
    } else {
      // The migration detour rides the crash axis: without a crash there is
      // nothing for a migrated placement to survive.
      EXPECT_EQ(c.migrate_step, kNoMigrate);
    }
    saw_wrappers = saw_wrappers || !c.wrappers.empty();
    EXPECT_GE(c.sessions, 1u);
    EXPECT_LE(c.sessions, kMaxSessions);
    if (c.spec.kind == qols::service::RecognizerKind::kQuantum) {
      quantum_precisions.insert(c.spec.float_amplitudes);
    } else {
      // The precision axis is quantum-only; classical machines have no
      // amplitudes and their specs must stay at the double default.
      EXPECT_FALSE(c.spec.float_amplitudes);
    }
  }
  EXPECT_EQ(words.size(), kWordKindCount);
  EXPECT_EQ(recs.size(), 5u);
  EXPECT_EQ(schedules.size(), kScheduleKindCount);
  EXPECT_EQ(sessions.size(), kMaxSessions);  // every count in [1, 4] drawn
  EXPECT_EQ(quantum_precisions.size(), 2u);  // both double and float drawn
  EXPECT_EQ(snapshot_axis.size(), 2u);  // P7 drawn on roughly half the corpus
  EXPECT_EQ(wire_axis.size(), 2u);  // P8 drawn on roughly half the corpus
  EXPECT_EQ(crash_axis.size(), 2u);  // P9 drawn on roughly half the corpus
  EXPECT_EQ(migrate_axis.size(), 2u);  // half the crash cases migrate first
  EXPECT_TRUE(saw_wrappers);
}

TEST(FuzzCaseGen, ScheduleCoversTheWordExactly) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const FuzzCase c = FuzzCase::from_seed(seed);
    const std::size_t len = realize_word(c).size();
    const auto sizes = expand_schedule(c, len);
    std::size_t total = 0;
    for (const std::size_t n : sizes) {
      EXPECT_GT(n, 0u);
      total += n;
    }
    EXPECT_EQ(total, len) << "seed=" << seed;
  }
}

TEST(ReproToken, RoundTripsEveryGeneratedCase) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const FuzzCase c = FuzzCase::from_seed(seed);
    const std::string token = encode_token(c);
    const FuzzCase back = decode_token(token);
    EXPECT_EQ(encode_token(back), token) << token;
    EXPECT_EQ(realize_word(back), realize_word(c));
  }
}

TEST(ReproToken, RoundTripsShrunkFields) {
  FuzzCase c = FuzzCase::from_seed(9);
  c.truncate_len = 17;
  c.sessions = 1;
  c.schedule = ScheduleKind::kWhole;
  c.wrappers.clear();
  const FuzzCase back = decode_token(encode_token(c));
  EXPECT_EQ(back.truncate_len, 17u);
  EXPECT_EQ(encode_token(back), encode_token(c));
}

TEST(ReproToken, RejectsMalformedTokens) {
  for (const std::string bad : {
           "",                       // empty
           "qf1-1-2",                // old version: rejected, not defaulted
           // qf2 (the pre-snapshot format) is an old version now, even a
           // well-formed token: replays must state the snapshot axis.
           "qf2-29ac8-1-3-14-0-ffffffffffffffff-0-0-1-4-10-40-2-0",
           // qf3 (pre-wire) likewise: replays must state the wire axis.
           "qf3-29ac8-1-3-14-0-ffffffffffffffff-0-0-1-4-10-40-2-0-"
           "ffffffffffffffff",
           // qf4 (pre-crash) likewise: replays must state the crash axis.
           "qf4-29ac8-1-3-14-0-ffffffffffffffff-0-0-1-4-10-40-2-0-"
           "ffffffffffffffff-ffffffffffffffff",
           "qf6-1-2",                // unknown future version
           "qf5",                    // no fields at all
           "qf5-zz-1",               // non-hex field
           "qf5-1-2-3",              // far too few fields
           "qf5-1--2",               // empty field
           // k = 0
           "qf5-1-0-0-0-0-ffffffffffffffff-0-1-1-0-10-40-2-0-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff",
           // k past the generator max
           "qf5-1-5-0-0-0-ffffffffffffffff-0-1-1-0-10-40-2-0-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff",
           // bad word kind
           "qf5-1-2-9-0-0-ffffffffffffffff-0-1-1-0-10-40-2-0-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff",
           // float_amplitudes must be 0 or 1
           "qf5-1-2-0-0-0-ffffffffffffffff-0-1-1-4-10-40-2-2-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff",
           // DoS bounds: a gigabyte malformed word, a terabyte sampler, a
           // gigabit Bloom filter — all rejected at decode, never realized.
           "qf5-1-1-3-77359400-0-ffffffffffffffff-0-0-1-0-10-40-2-0-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff",
           "qf5-1-2-0-0-0-ffffffffffffffff-0-1-1-2-10000000000-40-2-0-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff",
           "qf5-1-2-0-0-0-ffffffffffffffff-0-1-1-3-10-40000000-2-0-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff",
       }) {
    EXPECT_THROW(decode_token(bad), std::invalid_argument) << "'" << bad << "'";
  }
  // Trailing fields are rejected too.
  const std::string good = encode_token(FuzzCase::from_seed(3));
  EXPECT_THROW(decode_token(good + "-1"), std::invalid_argument);
}

TEST(ReproToken, ReplayIsBitIdentical) {
  // check_case over the decoded token must reproduce the original result
  // exactly — class, word length and (empty) issue list.
  for (std::uint64_t seed = 50; seed < 80; ++seed) {
    const FuzzCase c = FuzzCase::from_seed(seed);
    const CaseResult first = check_case(c);
    const CaseResult replayed = check_case(decode_token(encode_token(c)));
    EXPECT_EQ(replayed.cls, first.cls) << "seed=" << seed;
    EXPECT_EQ(replayed.word_len, first.word_len);
    EXPECT_EQ(replayed.issues.size(), first.issues.size());
  }
}

TEST(ClassifyWord, AgreesWithConstructionAndReferenceOracle) {
  qols::util::Rng rng(77);
  for (const unsigned k : {1u, 2u, 3u}) {
    const auto member = LDisjInstance::make_disjoint(k, rng);
    EXPECT_EQ(classify_word(to_symbols(member.render())), WordClass::kMember);

    const auto crossing = LDisjInstance::make_with_intersections(k, 1, rng);
    EXPECT_EQ(classify_word(to_symbols(crossing.render())),
              WordClass::kIntersecting);
  }
}

TEST(ClassifyWord, MapsEveryMutantClass) {
  using qols::lang::make_mutant_stream;
  using qols::lang::MutantKind;
  qols::util::Rng rng(88);
  const auto inst = LDisjInstance::make_disjoint(2, rng);
  const auto drain = [](qols::stream::SymbolStream& s) {
    std::vector<Symbol> out;
    while (auto sym = s.next()) out.push_back(*sym);
    return out;
  };
  const auto classify_mutant = [&](MutantKind kind) {
    auto s = make_mutant_stream(inst, kind, rng);
    return classify_word(drain(*s));
  };
  // Shape-level damage: A1 territory.
  EXPECT_EQ(classify_mutant(MutantKind::kBadPrefix),
            WordClass::kShapeViolation);
  EXPECT_EQ(classify_mutant(MutantKind::kTrailingGarbage),
            WordClass::kShapeViolation);
  EXPECT_EQ(classify_mutant(MutantKind::kTruncated),
            WordClass::kShapeViolation);
  EXPECT_EQ(classify_mutant(MutantKind::kSepInsideBlock),
            WordClass::kShapeViolation);
  // Consistency damage: fingerprint (A2) territory.
  EXPECT_EQ(classify_mutant(MutantKind::kXZMismatch),
            WordClass::kInconsistent);
  EXPECT_EQ(classify_mutant(MutantKind::kYDrift), WordClass::kInconsistent);
}

TEST(ClassifyWord, BoundaryFixtures) {
  EXPECT_EQ(classify_word({}), WordClass::kShapeViolation);
  EXPECT_EQ(classify_word(to_symbols("1#")), WordClass::kShapeViolation);
  EXPECT_EQ(classify_word(to_symbols("1#0000#0000#0000#0000#0000#0000#")),
            WordClass::kMember);
  EXPECT_EQ(classify_word(to_symbols("1#0000#0000#0000#0000#0000#0000")),
            WordClass::kShapeViolation);
  EXPECT_EQ(classify_word(to_symbols("1#1111#1111#1111#1111#1111#1111#")),
            WordClass::kIntersecting);
  EXPECT_EQ(classify_word(to_symbols("1#1111#0000#0000#1111#0000#0000#")),
            WordClass::kInconsistent);
}

TEST(Properties, BackendCeilingGapIsNotADiscrepancy) {
  // Regression: a malformed word whose leading 1-run parses as k = 14 is
  // honestly simulated by the structured backend (ceiling 16) and honestly
  // refused by dense (ceiling 10). That selection-policy asymmetry used to
  // be reported as a false P4-backend-equality discrepancy; both machines
  // reject the word, so the case must be clean.
  const FuzzCase c = decode_token(
      "qf5-29ac8-1-3-14-0-ffffffffffffffff-0-0-1-4-10-40-2-0-"
      "ffffffffffffffff-ffffffffffffffff-ffffffffffffffff-ffffffffffffffff");
  std::size_t ones = 0;
  const auto word = realize_word(c);
  while (ones < word.size() && word[ones] == Symbol::kOne) ++ones;
  ASSERT_GT(ones, 10u) << "fixture must parse past the dense ceiling";
  ASSERT_EQ(word[ones], Symbol::kSep);
  const CaseResult r = check_case(c);
  EXPECT_TRUE(r.ok()) << r.issues.front().property << ": "
                      << r.issues.front().detail;
}

TEST(Shrink, MinimizesWordLengthOnPlantedLengthFailure) {
  // Plant: "fails whenever the realized word is >= 40 symbols". Shrinking
  // must walk the length down to the boundary without losing the failure.
  FuzzCase big = FuzzCase::from_seed(4);
  big.word = WordKind::kMember;
  big.k = 3;  // ~1.5k symbols
  big.wrappers.clear();
  const auto fails = [](const FuzzCase& c) {
    return realize_word(c).size() >= 40;
  };
  ASSERT_TRUE(fails(big));
  const ShrinkOutcome out = shrink(big, fails, 300);
  EXPECT_TRUE(fails(out.best));
  EXPECT_GE(out.improved, 1u);
  const std::size_t len = realize_word(out.best).size();
  EXPECT_EQ(len, 40u) << "greedy length descent should reach the boundary";
}

TEST(Shrink, ReducesSessionsSchedulesAndWrappers) {
  FuzzCase noisy = FuzzCase::from_seed(6);
  noisy.sessions = 4;
  noisy.schedule = ScheduleKind::kRagged;
  noisy.wrappers = {{WrapperOp::Kind::kCorrupt, 5, 1},
                    {WrapperOp::Kind::kAppend, 3, 9}};
  // Plant: fails whenever at least 2 sessions AND any chunked (non-whole)
  // schedule is used — the minimum is sessions=2, schedule=whole-impossible,
  // so the shrinker must keep a non-whole schedule but drop everything else.
  const auto fails = [](const FuzzCase& c) {
    return c.sessions >= 2 && c.schedule != ScheduleKind::kWhole;
  };
  ASSERT_TRUE(fails(noisy));
  const ShrinkOutcome out = shrink(noisy, fails, 300);
  EXPECT_TRUE(fails(out.best));
  EXPECT_EQ(out.best.sessions, 2u);
  EXPECT_TRUE(out.best.wrappers.empty());
  EXPECT_EQ(out.best.schedule, ScheduleKind::kFixed);
  EXPECT_EQ(out.best.chunk, 0u);  // chunk size 1: the simplest non-whole
}

TEST(Shrink, ReturnsInputUnchangedWhenNothingSimplerFails) {
  const FuzzCase c = FuzzCase::from_seed(11);
  const auto only_this = [token = encode_token(c)](const FuzzCase& cand) {
    return encode_token(cand) == token;
  };
  const ShrinkOutcome out = shrink(c, only_this, 100);
  EXPECT_EQ(encode_token(out.best), encode_token(c));
  EXPECT_EQ(out.improved, 0u);
}

TEST(Fuzzer, BoundedRunIsCleanAndTallied) {
  FuzzOptions opts;
  opts.seed = 7;
  opts.max_cases = 600;
  const FuzzReport report = run_fuzz(opts);
  EXPECT_EQ(report.cases, 600u);
  EXPECT_TRUE(report.clean()) << report.failures.front().property << ": "
                              << report.failures.front().detail << "\n  "
                              << report.failures.front().minimized_token;
  std::uint64_t kinds = 0, classes = 0;
  for (const auto n : report.by_word_kind) kinds += n;
  for (const auto n : report.by_word_class) classes += n;
  EXPECT_EQ(kinds, report.cases);
  EXPECT_EQ(classes, report.cases);
  EXPECT_GT(report.cases_per_second(), 0.0);
}

TEST(Fuzzer, ForcedFloatSoakIsClean) {
  // The CI sanitizer leg's configuration: every quantum case pinned to float
  // amplitudes. P6 still cross-checks each one against the double run, so a
  // clean report certifies precision-invariant verdicts on this corpus.
  FuzzOptions opts;
  opts.seed = 13;
  opts.max_cases = 300;
  opts.force_float = true;
  const FuzzReport report = run_fuzz(opts);
  EXPECT_EQ(report.cases, 300u);
  EXPECT_TRUE(report.clean()) << report.failures.front().property << ": "
                              << report.failures.front().detail << "\n  "
                              << report.failures.front().minimized_token;
}

TEST(Fuzzer, ForcedSnapshotSoakIsClean) {
  // The CI sanitizer leg's snapshot configuration: every case snapshots at
  // its seeded cut, restores into a fresh recognizer and must finish with a
  // bit-identical outcome (P7), not just the generator's ~50% draw.
  FuzzOptions opts;
  opts.seed = 17;
  opts.max_cases = 300;
  opts.force_snapshot = true;
  const FuzzReport report = run_fuzz(opts);
  EXPECT_EQ(report.cases, 300u);
  EXPECT_TRUE(report.clean()) << report.failures.front().property << ": "
                              << report.failures.front().detail << "\n  "
                              << report.failures.front().minimized_token;
}

TEST(Fuzzer, ForcedWireSoakIsClean) {
  // The CI sanitizer leg's wire configuration: every case replays its
  // session script through the server's frame decoder + broker (P8),
  // including the corrupt-frame submodes, not just the generator's ~50%.
  FuzzOptions opts;
  opts.seed = 19;
  opts.max_cases = 300;
  opts.force_wire = true;
  const FuzzReport report = run_fuzz(opts);
  EXPECT_EQ(report.cases, 300u);
  EXPECT_TRUE(report.clean()) << report.failures.front().property << ": "
                              << report.failures.front().detail << "\n  "
                              << report.failures.front().minimized_token;
}

TEST(Fuzzer, ForcedCrashSoakIsClean) {
  // The CI restart leg's configuration: every case feeds a durable service
  // to its seeded cut, persist()s, dies, recover()s and finishes (P9) — not
  // just the generator's ~50% draw. A clean report certifies the interrupted
  // run's verdicts are bit-identical to straight-through runs across the
  // corpus, migration detours included.
  FuzzOptions opts;
  opts.seed = 23;
  opts.max_cases = 150;
  opts.force_crash = true;
  const FuzzReport report = run_fuzz(opts);
  EXPECT_EQ(report.cases, 150u);
  EXPECT_TRUE(report.clean()) << report.failures.front().property << ": "
                              << report.failures.front().detail << "\n  "
                              << report.failures.front().minimized_token;
}

TEST(Fuzzer, RejectsUnboundedRuns) {
  EXPECT_THROW(run_fuzz(FuzzOptions{.seed = 1, .max_cases = 0,
                                    .budget_seconds = 0.0}),
               std::invalid_argument);
}

TEST(Fuzzer, TimeBudgetStopsTheRun) {
  FuzzOptions opts;
  opts.seed = 3;
  opts.budget_seconds = 0.05;
  const FuzzReport report = run_fuzz(opts);
  EXPECT_GT(report.cases, 0u);
  EXPECT_TRUE(report.clean());
  // Wall-clock bounded: one case past the budget at most, and no case takes
  // a second, so a generous ceiling catches a broken budget check.
  EXPECT_LT(report.seconds, 5.0);
}

TEST(Fuzzer, ShrinksAPlantedPropertyViolationEndToEnd) {
  // Drive the real shrink path the way run_fuzz does, with the planted
  // predicate standing in for a discrepancy: minimize, then replay the
  // minimized token and confirm the failure reproduces from the token
  // alone (the full report-and-replay loop).
  FuzzCase c = FuzzCase::from_seed(12);
  c.word = WordKind::kMember;
  c.k = 2;
  const auto fails = [](const FuzzCase& cand) {
    return realize_word(cand).size() >= 10 && cand.sessions >= 1;
  };
  ASSERT_TRUE(fails(c));
  const ShrinkOutcome out = shrink(c, fails, 300);
  const std::string token = encode_token(out.best);
  EXPECT_TRUE(fails(decode_token(token)));
  EXPECT_EQ(realize_word(decode_token(token)).size(), 10u);
}

}  // namespace
