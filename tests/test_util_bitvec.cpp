// Unit tests: packed bit vectors.
#include <gtest/gtest.h>

#include "qols/util/bitvec.hpp"
#include "qols/util/rng.hpp"

namespace {

using qols::util::BitVec;
using qols::util::Rng;

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, SetGetRoundTrip) {
  BitVec v(130);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_FALSE(v.get(128));
  EXPECT_EQ(v.popcount(), 4u);
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, FilledConstructorClearsTail) {
  BitVec v(70, true);
  EXPECT_EQ(v.popcount(), 70u);
  BitVec w(70, true);
  EXPECT_EQ(v, w);  // equality must not see garbage in the tail word
}

TEST(BitVec, FromStringAndToStringRoundTrip) {
  const std::string s = "0110010111010001";
  BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.to_string(), s);
}

TEST(BitVec, FromStringRejectsNonBinary) {
  EXPECT_THROW(BitVec::from_string("01#1"), std::invalid_argument);
  EXPECT_THROW(BitVec::from_string("abc"), std::invalid_argument);
}

TEST(BitVec, AndPopcountCountsIntersections) {
  BitVec a = BitVec::from_string("110101");
  BitVec b = BitVec::from_string("011100");
  EXPECT_EQ(a.and_popcount(b), 2u);  // positions 1 and 3
  EXPECT_EQ(b.and_popcount(a), 2u);
}

TEST(BitVec, AndPopcountDisjoint) {
  BitVec a = BitVec::from_string("101010");
  BitVec b = BitVec::from_string("010101");
  EXPECT_EQ(a.and_popcount(b), 0u);
}

TEST(BitVec, OnesListsSetPositions) {
  BitVec v(200);
  v.set(3, true);
  v.set(64, true);
  v.set(199, true);
  const auto ones = v.ones();
  ASSERT_EQ(ones.size(), 3u);
  EXPECT_EQ(ones[0], 3u);
  EXPECT_EQ(ones[1], 64u);
  EXPECT_EQ(ones[2], 199u);
}

TEST(BitVec, RandomHasRoughlyHalfOnes) {
  Rng rng(77);
  BitVec v = BitVec::random(100000, rng);
  EXPECT_EQ(v.size(), 100000u);
  EXPECT_NEAR(static_cast<double>(v.popcount()), 50000.0, 2500.0);
}

TEST(BitVec, RandomTailBitsAreClean) {
  Rng rng(78);
  BitVec v = BitVec::random(65, rng);  // one bit into the second word
  // to_string must produce exactly 65 chars and equality must be exact.
  EXPECT_EQ(v.to_string().size(), 65u);
  BitVec copy = BitVec::from_string(v.to_string());
  EXPECT_EQ(copy, v);
}

// Property sweep: and_popcount agrees with a naive loop across sizes.
class BitVecProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecProperty, AndPopcountMatchesNaive) {
  Rng rng(GetParam());
  const std::size_t n = 17 + GetParam() * 37;
  BitVec a = BitVec::random(n, rng);
  BitVec b = BitVec::random(n, rng);
  std::size_t naive = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.get(i) && b.get(i)) ++naive;
  }
  EXPECT_EQ(a.and_popcount(b), naive);
}

TEST_P(BitVecProperty, PopcountMatchesOnesSize) {
  Rng rng(GetParam() + 1000);
  const std::size_t n = 5 + GetParam() * 53;
  BitVec a = BitVec::random(n, rng);
  EXPECT_EQ(a.popcount(), a.ones().size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVecProperty, ::testing::Range<std::size_t>(0, 12));

}  // namespace
