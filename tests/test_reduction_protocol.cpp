// Unit tests: the executable Theorem 3.6 reduction protocol.
#include <gtest/gtest.h>

#include "qols/reduction/protocol_from_machine.hpp"

namespace {

using namespace qols::reduction;
using qols::util::BitVec;
using qols::util::Rng;

TEST(ReductionProtocol, ReproducesBlockMachineVerdicts) {
  Rng rng(1);
  const unsigned k = 2;
  const std::uint64_t m = 16;
  DetBlockMachine machine(k);
  // Disjoint pair.
  BitVec x = BitVec::from_string("1010000011001010");
  BitVec y = BitVec::from_string("0101000000110101");
  auto out = run_reduction_protocol(machine, k, x, y);
  EXPECT_TRUE(out.declared_disjoint);
  // Now plant a witness.
  y.set(0, true);  // x[0] = 1 too
  auto out2 = run_reduction_protocol(machine, k, x, y);
  EXPECT_FALSE(out2.declared_disjoint);
  EXPECT_EQ(x.size(), m);
}

TEST(ReductionProtocol, MessageCountMatchesProof) {
  // The proof's protocol exchanges exactly 3*2^k - 1 configurations,
  // of which 2^k are Bob's (steps i = 2 mod 3).
  for (unsigned k = 1; k <= 3; ++k) {
    Rng rng(k);
    const std::uint64_t m = std::uint64_t{1} << (2 * k);
    DetBlockMachine machine(k);
    BitVec x = BitVec::random(m, rng);
    BitVec y = BitVec::random(m, rng);
    const auto out = run_reduction_protocol(machine, k, x, y);
    EXPECT_EQ(out.messages, 3 * (std::uint64_t{1} << k) - 1);
    EXPECT_EQ(out.bob_messages, std::uint64_t{1} << k);
    EXPECT_EQ(out.alice_messages, out.messages - out.bob_messages);
  }
}

TEST(ReductionProtocol, AgreesWithDirectExecutionOnRandomInputs) {
  Rng rng(7);
  const unsigned k = 2;
  const std::uint64_t m = 16;
  for (int trial = 0; trial < 50; ++trial) {
    BitVec x = BitVec::random(m, rng);
    BitVec y = BitVec::random(m, rng);
    DetBlockMachine machine(k);
    const auto out = run_reduction_protocol(machine, k, x, y);
    EXPECT_EQ(out.declared_disjoint, x.and_popcount(y) == 0) << trial;
  }
}

TEST(ReductionProtocol, PayloadScalesWithMachineFootprint) {
  // The block machine's configurations (2^k-bit buffer) must be much
  // cheaper to ship than the full machine's (2^{2k}-bit string).
  Rng rng(9);
  const unsigned k = 3;
  const std::uint64_t m = 64;
  BitVec x = BitVec::random(m, rng);
  BitVec y = BitVec::random(m, rng);
  DetBlockMachine block(k);
  DetFullMachine full(k);
  const auto ob = run_reduction_protocol(block, k, x, y);
  const auto of = run_reduction_protocol(full, k, x, y);
  EXPECT_LT(ob.raw_payload_bits, of.raw_payload_bits);
}

TEST(ReductionProtocol, FingerprintMachineShipsTinyMessages) {
  Rng rng(11);
  const unsigned k = 3;
  const std::uint64_t m = 64;
  BitVec x = BitVec::random(m, rng);
  BitVec y = BitVec::random(m, rng);
  DetFingerprintMachine fp(k, 5);
  DetFullMachine full(k);
  const auto ofp = run_reduction_protocol(fp, k, x, y);
  const auto ofu = run_reduction_protocol(full, k, x, y);
  EXPECT_LT(ofp.raw_payload_bits, ofu.raw_payload_bits / 2);
}

}  // namespace
