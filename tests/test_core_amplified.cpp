// Unit + statistical tests: Corollary 3.5 amplification.
#include <gtest/gtest.h>

#include <cmath>

#include "qols/core/amplified.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"

namespace {

using qols::core::AmplifiedRecognizer;
using qols::core::QuantumOnlineRecognizer;
using qols::lang::LDisjInstance;
using qols::machine::run_stream;
using qols::util::Rng;

AmplifiedRecognizer::Factory quantum_factory() {
  return [](std::uint64_t seed) {
    return std::make_unique<QuantumOnlineRecognizer>(seed);
  };
}

TEST(Amplified, PreservesPerfectCompleteness) {
  Rng rng(1);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    AmplifiedRecognizer rec(quantum_factory(), 4, seed);
    auto s = inst.stream();
    ASSERT_TRUE(run_stream(*s, rec)) << "seed=" << seed;
  }
}

TEST(Amplified, FourCopiesReachBoundedError) {
  // Non-member falsely accepted with prob <= (3/4)^4 < 1/3.
  Rng rng(2);
  auto inst = LDisjInstance::make_with_intersections(2, 1, rng);
  int wrong = 0;
  constexpr int kRuns = 300;
  for (int i = 0; i < kRuns; ++i) {
    AmplifiedRecognizer rec(quantum_factory(), 4, 100 + i);
    auto s = inst.stream();
    if (run_stream(*s, rec)) ++wrong;
  }
  const double rate = wrong / static_cast<double>(kRuns);
  EXPECT_LE(rate, 1.0 / 3.0 + 0.05);
}

TEST(Amplified, MoreCopiesMeanFewerErrors) {
  Rng rng(3);
  auto inst = LDisjInstance::make_with_intersections(2, 1, rng);
  auto error_rate = [&](std::uint64_t copies, int runs) {
    int wrong = 0;
    for (int i = 0; i < runs; ++i) {
      AmplifiedRecognizer rec(quantum_factory(), copies, 500 + i);
      auto s = inst.stream();
      if (run_stream(*s, rec)) ++wrong;
    }
    return wrong / static_cast<double>(runs);
  };
  const double e1 = error_rate(1, 200);
  const double e8 = error_rate(8, 200);
  EXPECT_GT(e1, e8);
  EXPECT_LE(e8, 0.15);  // (3/4)^8 ~ 0.1; sampling slack
}

TEST(Amplified, SpaceScalesLinearlyInCopies) {
  Rng rng(4);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  AmplifiedRecognizer one(quantum_factory(), 1, 1);
  AmplifiedRecognizer four(quantum_factory(), 4, 1);
  {
    auto s = inst.stream();
    run_stream(*s, one);
  }
  {
    auto s = inst.stream();
    run_stream(*s, four);
  }
  EXPECT_EQ(four.space_used().qubits, 4 * one.space_used().qubits);
  EXPECT_EQ(four.space_used().classical_bits,
            4 * one.space_used().classical_bits);
}

TEST(Amplified, NameIncludesCopyCount) {
  AmplifiedRecognizer rec(quantum_factory(), 4, 1);
  EXPECT_EQ(rec.name(), "quantum-x4");
  EXPECT_EQ(rec.copies(), 4u);
}

TEST(Amplified, WorksOverClassicalInner) {
  // Amplification is generic over OnlineRecognizer.
  Rng rng(5);
  auto inst = LDisjInstance::make_with_intersections(2, 1, rng);
  AmplifiedRecognizer rec(
      [](std::uint64_t seed) {
        return std::make_unique<qols::core::ClassicalBlockRecognizer>(seed);
      },
      2, 1);
  auto s = inst.stream();
  EXPECT_FALSE(run_stream(*s, rec));
}

}  // namespace
