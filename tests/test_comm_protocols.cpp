// Unit + statistical tests: communication protocols (Theorem 3.1 machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "qols/comm/protocols.hpp"

namespace {

using namespace qols::comm;
using qols::util::BitVec;
using qols::util::Rng;

BitVec planted(std::uint64_t m, std::uint64_t t, Rng& rng, BitVec& y_out) {
  BitVec x = BitVec::random(m, rng);
  BitVec y = BitVec::random(m, rng);
  for (std::uint64_t i = 0; i < m; ++i) {
    if (x.get(i) && y.get(i)) y.set(i, false);
  }
  std::uint64_t added = 0;
  while (added < t) {
    const std::uint64_t i = rng.below(m);
    if (!(x.get(i) && y.get(i))) {
      x.set(i, true);
      y.set(i, true);
      ++added;
    }
  }
  y_out = y;
  return x;
}

TEST(Trivial, AlwaysCorrectAndCostsM) {
  Rng rng(1);
  for (std::uint64_t m : {8ULL, 64ULL, 256ULL}) {
    BitVec y;
    BitVec x = planted(m, 0, rng, y);
    auto out = disj_trivial(x, y, rng);
    EXPECT_TRUE(out.declared_disjoint);
    EXPECT_EQ(out.cost.classical_bits, m + 1);
    EXPECT_EQ(out.cost.qubits, 0u);

    BitVec y2;
    BitVec x2 = planted(m, 1, rng, y2);
    auto out2 = disj_trivial(x2, y2, rng);
    EXPECT_FALSE(out2.declared_disjoint);
  }
}

TEST(Sampling, OneSidedAndCheapButMissesSparse) {
  Rng rng(2);
  const std::uint64_t m = 1024;
  BitVec y;
  BitVec x = planted(m, 1, rng, y);
  int misses = 0;
  constexpr int kRuns = 100;
  std::uint64_t cost = 0;
  for (int i = 0; i < kRuns; ++i) {
    auto out = disj_sampling(x, y, 8, rng);
    cost = out.cost.classical_bits;
    if (out.declared_disjoint) ++misses;  // wrong on intersecting input
  }
  EXPECT_LT(cost, m / 4);      // far below the Omega(m) bound...
  EXPECT_GE(misses, kRuns / 2);  // ...and correspondingly unreliable
  // Disjoint inputs are never misclassified.
  BitVec yd;
  BitVec xd = planted(m, 0, rng, yd);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(disj_sampling(xd, yd, 8, rng).declared_disjoint);
  }
}

TEST(Bcw, RequiresPowerOfFourLength) {
  Rng rng(3);
  BitVec x(8), y(8);  // 8 = 2^3, odd log
  EXPECT_THROW(disj_bcw_quantum(x, y, rng), std::invalid_argument);
  BitVec x2(2), y2(2);
  EXPECT_THROW(disj_bcw_quantum(x2, y2, rng), std::invalid_argument);
}

TEST(Bcw, PerfectOnDisjointInputs) {
  Rng rng(4);
  for (std::uint64_t m : {4ULL, 16ULL, 64ULL}) {
    BitVec y;
    BitVec x = planted(m, 0, rng, y);
    for (int i = 0; i < 20; ++i) {
      auto out = disj_bcw_quantum(x, y, rng);
      ASSERT_TRUE(out.declared_disjoint) << "m=" << m;
    }
  }
}

TEST(Bcw, CatchesIntersectionsAtLeastQuarter) {
  Rng rng(5);
  const std::uint64_t m = 64;
  BitVec y;
  BitVec x = planted(m, 1, rng, y);
  int caught = 0;
  constexpr int kRuns = 400;
  for (int i = 0; i < kRuns; ++i) {
    if (!disj_bcw_quantum(x, y, rng).declared_disjoint) ++caught;
  }
  EXPECT_GE(caught / static_cast<double>(kRuns), 0.25 - 0.05);
}

TEST(Bcw, QubitCostIsSqrtMLogM) {
  Rng rng(6);
  const std::uint64_t m = 256;  // k = 4
  BitVec y;
  BitVec x = planted(m, 0, rng, y);
  std::uint64_t max_qubits = 0;
  for (int i = 0; i < 50; ++i) {
    auto out = disj_bcw_quantum(x, y, rng);
    max_qubits = std::max(max_qubits, out.cost.qubits);
  }
  // Worst case: (3 * 2^k + 2) transfers of (2k + 2) qubits — but one run uses
  // (3j + 1) transfers; j <= 2^k - 1 gives <= (3*2^k - 2)*(2k+2).
  EXPECT_LE(max_qubits, bcw_worst_case_qubits(4));
  // And it must undercut the classical Omega(m) bound by a wide margin.
  EXPECT_LT(bcw_worst_case_qubits(4), m * 2);
}

TEST(Bcw, AmplifiedReachesBoundedError) {
  Rng rng(7);
  const std::uint64_t m = 64;
  BitVec y;
  BitVec x = planted(m, 1, rng, y);
  int wrong = 0;
  constexpr int kRuns = 200;
  for (int i = 0; i < kRuns; ++i) {
    if (disj_bcw_amplified(x, y, 4, rng).declared_disjoint) ++wrong;
  }
  EXPECT_LE(wrong / static_cast<double>(kRuns), 1.0 / 3.0);
  // Amplification never breaks disjoint inputs.
  BitVec yd;
  BitVec xd = planted(m, 0, rng, yd);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(disj_bcw_amplified(xd, yd, 4, rng).declared_disjoint);
  }
}

TEST(WorstCaseFormula, GrowsLikeSqrtMTimesLogM) {
  // qubits(k) / (2^k * k) should be bounded (constant ~6..7).
  for (unsigned k = 2; k <= 10; ++k) {
    const double ratio =
        static_cast<double>(bcw_worst_case_qubits(k)) /
        (std::pow(2.0, k) * (2.0 * k + 2.0));
    EXPECT_NEAR(ratio, 3.0, 0.6) << "k=" << k;
  }
}

TEST(EqFingerprint, EqualStringsAlwaysDeclaredEqual) {
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    BitVec w = BitVec::random(128, rng);
    auto out = eq_fingerprint(w, w, rng);
    ASSERT_TRUE(out.declared_equal);
    // O(log m) bits: 3 field elements of ~2 log2(m) bits each + answer.
    EXPECT_LE(out.cost.classical_bits, 3 * 15 + 1);
  }
}

TEST(EqFingerprint, UnequalStringsCaughtWithHighProbability) {
  Rng rng(9);
  int caught = 0;
  constexpr int kRuns = 300;
  for (int i = 0; i < kRuns; ++i) {
    BitVec a = BitVec::random(128, rng);
    BitVec b = a;
    const std::uint64_t p = rng.below(128);
    b.set(p, !b.get(p));  // guaranteed a != b
    if (!eq_fingerprint(a, b, rng).declared_equal) ++caught;
  }
  EXPECT_GE(caught, kRuns * 9 / 10);
}

}  // namespace
