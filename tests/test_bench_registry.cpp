// Unit tests: the experiment registry, runner, and the JSON reporting path
// (links qols_bench_core — the same objects behind qols_bench and the
// bench_e* shims).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "registry.hpp"
#include "reporter.hpp"

namespace {

using namespace qols::bench;

TEST(Registry, AllTwentySixExperimentsRegisteredWithUniqueIds) {
  const auto& all = Registry::global().experiments();
  ASSERT_EQ(all.size(), 26u);
  std::set<std::string> ids;
  for (const auto& e : all) {
    EXPECT_FALSE(e.info.title.empty());
    EXPECT_FALSE(e.info.claim.empty());
    EXPECT_FALSE(e.info.tags.empty());
    ids.insert(e.info.id);
  }
  EXPECT_EQ(ids.size(), 26u);
  for (int i = 1; i <= 26; ++i) {
    std::string id = "e";
    id += std::to_string(i);
    EXPECT_NE(Registry::global().find(id), nullptr);
  }
}

TEST(Registry, FindIsExact) {
  EXPECT_EQ(Registry::global().find("e"), nullptr);
  EXPECT_EQ(Registry::global().find("e99"), nullptr);
  ASSERT_NE(Registry::global().find("e7"), nullptr);
  EXPECT_EQ(Registry::global().find("e7")->info.id, "e7");
}

TEST(Registry, MatchFiltersOverIdTitleAndTags) {
  const auto& reg = Registry::global();
  EXPECT_EQ(reg.match("").size(), 26u);  // empty filter selects everything
  // An exact id match wins outright: "e1" is only e1, never e10..e18.
  const auto exact = reg.match("e1");
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0]->info.id, "e1");
  EXPECT_EQ(reg.match("E1").size(), 1u);  // exact match is case-insensitive
  // Non-id substrings still fan out.
  EXPECT_EQ(reg.match("e").size(), 26u);
  // Tag match, case-insensitive.
  const auto ablations = reg.match("ABLATION");
  EXPECT_GE(ablations.size(), 4u);
  // Title match.
  EXPECT_FALSE(reg.match("separation").empty());
  EXPECT_TRUE(reg.match("no-such-thing").empty());
}

TEST(RunConfig, DefaultsAndOverrides) {
  RunConfig cfg;
  EXPECT_EQ(cfg.max_k_or(7), 7u);
  EXPECT_EQ(cfg.trials_or(100), 100);
  cfg.max_k = 3;
  cfg.trials = 5;
  EXPECT_EQ(cfg.max_k_or(7), 3u);
  EXPECT_EQ(cfg.trials_or(100), 5);
}

TEST(Runner, RunsSelectionAndAggregatesStatus) {
  Registry reg;
  reg.add({.id = "ok", .title = "t", .claim = "c", .tags = {"x"}},
          [](Reporter&, const RunConfig&) { return 0; });
  reg.add({.id = "bad", .title = "t", .claim = "c", .tags = {"x"}},
          [](Reporter&, const RunConfig&) { return 1; });
  Reporter null_reporter;
  EXPECT_EQ(run_experiments({reg.find("ok")}, null_reporter, {}), 0);
  EXPECT_EQ(run_experiments({reg.find("ok"), reg.find("bad")}, null_reporter,
                            {}),
            1);
}

TEST(Runner, E18ProducesConsoleTablesAndJsonMetrics) {
  const Experiment* e18 = Registry::global().find("e18");
  ASSERT_NE(e18, nullptr);

  std::ostringstream human;
  ConsoleReporter console(human);
  JsonReporter json;
  MultiReporter rep({&console, &json});

  RunConfig cfg;
  cfg.max_k = 3;  // e18 reads max_k as its m sweep cap — keeps this fast
  EXPECT_EQ(run_experiments({e18}, rep, cfg), 0);

  // Human sink: header, a table, the closing status line.
  const std::string text = human.str();
  EXPECT_NE(text.find("=== e18"), std::string::npos);
  EXPECT_NE(text.find("D1(DISJ)"), std::string::npos);
  EXPECT_NE(text.find("[ok]"), std::string::npos);

  // JSON sink: schema, the experiment record, per-row metrics, and the
  // process-wide telemetry block appended to every document.
  const std::string doc = json.document().dump(2);
  EXPECT_NE(doc.find("\"schema\": \"qols-bench/4\""), std::string::npos);
  EXPECT_NE(doc.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(doc.find("\"compiled\""), std::string::npos);
  EXPECT_NE(doc.find("\"id\": \"e18\""), std::string::npos);
  EXPECT_NE(doc.find("\"status\": 0"), std::string::npos);
  EXPECT_NE(doc.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(doc.find("\"label\": \"m=3\""), std::string::npos);
  EXPECT_NE(doc.find("\"d1_disj\""), std::string::npos);
}

TEST(Reporter, MetricFromResultCarriesRateCiAndSpace) {
  qols::core::ExperimentResult r;
  r.trials = 100;
  r.accepts = 75;
  r.space = {.classical_bits = 12, .qubits = 8};
  const auto m = metric_from_result("row", 3, r, 0.5);
  EXPECT_EQ(m.label, "row");
  EXPECT_EQ(*m.k, 3);
  EXPECT_EQ(*m.trials, 100u);
  EXPECT_EQ(*m.accepts, 75u);
  EXPECT_DOUBLE_EQ(*m.rate, 0.75);
  EXPECT_LT(*m.ci_lo, 0.75);
  EXPECT_GT(*m.ci_hi, 0.75);
  EXPECT_EQ(*m.classical_bits, 12u);
  EXPECT_EQ(*m.qubits, 8u);
  EXPECT_DOUBLE_EQ(*m.wall_seconds, 0.5);
  // No not-simulated trials: the extra must stay absent, not read 0.
  EXPECT_TRUE(m.extra.empty());
}

TEST(Reporter, MetricFromResultSurfacesNotSimulatedTrials) {
  qols::core::ExperimentResult r;
  r.trials = 10;
  r.accepts = 0;
  r.not_simulated = 10;
  const auto m = metric_from_result("row", 14, r, 0.1);
  ASSERT_EQ(m.extra.size(), 1u);
  EXPECT_EQ(m.extra[0].first, "not_simulated");
  EXPECT_DOUBLE_EQ(m.extra[0].second, 10.0);
}

TEST(RunConfig, DenseMaxKClampsToTheDenseEnvelope) {
  RunConfig cfg;
  EXPECT_EQ(cfg.dense_max_k_or(7), 7u);
  cfg.max_k = 16;  // e19 territory: dense-era experiments must not follow
  EXPECT_EQ(cfg.max_k_or(7), 16u);
  EXPECT_EQ(cfg.dense_max_k_or(7), 10u);
}

}  // namespace
