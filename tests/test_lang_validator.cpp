// Unit + differential tests: procedure A1 (streaming structure validator).
#include <gtest/gtest.h>

#include "qols/lang/ldisj_instance.hpp"
#include "qols/lang/structure_validator.hpp"
#include "qols/stream/symbol_stream.hpp"

namespace {

using namespace qols::lang;
using qols::stream::StringStream;
using qols::stream::Symbol;
using qols::util::Rng;

bool validate(const std::string& word) {
  StructureValidator v;
  StringStream s(word);
  while (auto sym = s.next()) v.feed(*sym);
  return v.finish();
}

TEST(Validator, AcceptsWellFormedWords) {
  Rng rng(1);
  for (unsigned k = 1; k <= 3; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    EXPECT_TRUE(validate(inst.render())) << "k=" << k;
    auto bad = LDisjInstance::make_with_intersections(k, 1, rng);
    // Shape is independent of disjointness: intersecting words still pass A1.
    EXPECT_TRUE(validate(bad.render())) << "k=" << k;
  }
}

TEST(Validator, RejectsEmptyAndTrivialWords) {
  EXPECT_FALSE(validate(""));
  EXPECT_FALSE(validate("#"));
  EXPECT_FALSE(validate("1"));
  EXPECT_FALSE(validate("1#"));
  EXPECT_FALSE(validate("0#"));
}

TEST(Validator, RejectsZeroInPrefix) {
  EXPECT_FALSE(validate("10#0101#0101#0101#0101#0101#0101#"));
}

TEST(Validator, RejectsShortBlock) {
  // k=1 wants blocks of length 4; one block has 3 bits.
  EXPECT_FALSE(validate("1#101#0101#1010#1010#0101#1010#"));
}

TEST(Validator, RejectsLongBlock) {
  EXPECT_FALSE(validate("1#10101#0101#1010#1010#0101#1010#"));
}

TEST(Validator, RejectsWrongBlockCount) {
  // k=1 wants 6 blocks; give 5.
  EXPECT_FALSE(validate("1#1010#0101#1010#1010#0101#"));
  // ... and 7.
  EXPECT_FALSE(validate("1#1010#0101#1010#1010#0101#1010#0101#"));
}

TEST(Validator, RejectsTrailingSymbols) {
  Rng rng(2);
  auto inst = LDisjInstance::make_disjoint(1, rng);
  EXPECT_FALSE(validate(inst.render() + "0"));
  EXPECT_FALSE(validate(inst.render() + "#"));
}

TEST(Validator, RejectsTruncation) {
  Rng rng(3);
  auto inst = LDisjInstance::make_disjoint(1, rng);
  const std::string word = inst.render();
  for (std::size_t cut = 1; cut < word.size(); ++cut) {
    ASSERT_FALSE(validate(word.substr(0, cut))) << "cut=" << cut;
  }
}

TEST(Validator, ExposesKAfterPrefix) {
  StructureValidator v;
  v.feed(Symbol::kOne);
  v.feed(Symbol::kOne);
  EXPECT_FALSE(v.k().has_value());
  v.feed(Symbol::kSep);
  ASSERT_TRUE(v.k().has_value());
  EXPECT_EQ(*v.k(), 2u);
}

TEST(Validator, FailureIsSticky) {
  StructureValidator v;
  v.feed(Symbol::kZero);  // immediate prefix violation
  EXPECT_TRUE(v.failed());
  v.feed(Symbol::kOne);
  v.feed(Symbol::kSep);
  EXPECT_TRUE(v.failed());
  EXPECT_FALSE(v.finish());
}

TEST(Validator, SpaceIsLogarithmic) {
  // The validator's work memory must grow linearly in k (i.e. O(log n)).
  Rng rng(4);
  std::uint64_t prev = 0;
  for (unsigned k = 1; k <= 4; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    StructureValidator v;
    auto s = inst.stream();
    while (auto sym = s->next()) v.feed(*sym);
    const std::uint64_t bits = v.classical_bits_used();
    EXPECT_LE(bits, 16 * k + 16) << "k=" << k;
    EXPECT_GE(bits, prev);  // monotone in k
    prev = bits;
  }
}

// Differential property test: on random mutated words the validator agrees
// with an oracle that checks shape only (not consistency/disjointness).
bool shape_reference(const std::string& word) {
  std::size_t pos = 0;
  while (pos < word.size() && word[pos] == '1') ++pos;
  const std::size_t k = pos;
  if (k < 1 || k > 20 || pos >= word.size() || word[pos] != '#') return false;
  ++pos;
  const std::uint64_t m = std::uint64_t{1} << (2 * k);
  const std::uint64_t blocks = 3 * (std::uint64_t{1} << k);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    if (pos + m + 1 > word.size()) return false;
    for (std::uint64_t i = 0; i < m; ++i) {
      if (word[pos + i] != '0' && word[pos + i] != '1') return false;
    }
    if (word[pos + m] != '#') return false;
    pos += m + 1;
  }
  return pos == word.size();
}

class ValidatorDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ValidatorDifferential, AgreesWithShapeOracleOnMutants) {
  Rng rng(1000 + GetParam());
  auto inst = LDisjInstance::make_disjoint(1 + GetParam() % 3, rng);
  const std::string word = inst.render();
  // Random single-character mutations (substitute / delete / insert).
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = word;
    const std::size_t pos = rng.below(mutated.size());
    const char repl[] = {'0', '1', '#'};
    switch (rng.below(3)) {
      case 0:
        mutated[pos] = repl[rng.below(3)];
        break;
      case 1:
        mutated.erase(pos, 1);
        break;
      case 2:
        mutated.insert(pos, 1, repl[rng.below(3)]);
        break;
    }
    ASSERT_EQ(validate(mutated), shape_reference(mutated))
        << "trial " << trial << " word " << mutated;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorDifferential, ::testing::Range(0, 8));

}  // namespace
