// Unit tests: the CRC-32 (IEEE, reflected) used to frame session-manifest
// records. The check value and the chaining identity are what the manifest
// format (session_table.hpp) relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "qols/util/crc32.hpp"

namespace {

using qols::util::crc32;

std::span<const std::uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The universal CRC-32/ISO-HDLC check vector.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) {
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(Crc32, IsComputableAtCompileTime) {
  static constexpr std::uint8_t data[] = {'a', 'b', 'c'};
  constexpr std::uint32_t c = crc32(std::span<const std::uint8_t>(data, 3));
  EXPECT_EQ(c, 0x352441C2u);  // crc32("abc")
}

TEST(Crc32, ChainsAcrossSplits) {
  const std::string_view whole = "the session manifest journal";
  const std::uint32_t full = crc32(bytes_of(whole));
  for (std::size_t cut = 0; cut <= whole.size(); ++cut) {
    const std::uint32_t chained =
        crc32(bytes_of(whole.substr(cut)), crc32(bytes_of(whole.substr(0, cut))));
    EXPECT_EQ(chained, full) << "cut at " << cut;
  }
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data(64, 0x5A);
  const std::uint32_t clean = crc32(data);
  for (std::size_t byte = 0; byte < data.size(); byte += 7) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc32(data), clean) << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
}

}  // namespace
