// Unit + property tests: the dense state-vector simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "qols/quantum/state_vector.hpp"
#include "qols/util/rng.hpp"

namespace {

using qols::quantum::Amplitude;
using qols::quantum::ControlTerm;
using qols::quantum::StateVector;
using qols::util::Rng;

constexpr double kTol = 1e-12;

TEST(StateVector, StartsInAllZeros) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, kTol);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.0, kTol);
  }
}

TEST(StateVector, RejectsBadQubitCounts) {
  EXPECT_THROW(StateVector(0), std::invalid_argument);
  EXPECT_THROW(StateVector(31), std::invalid_argument);
  // Far past the ceiling: must diagnose, never attempt the allocation
  // (2^64 amplitudes) or shift past 63 bits.
  EXPECT_THROW(StateVector(64), std::invalid_argument);
  EXPECT_THROW(StateVector(255), std::invalid_argument);
}

TEST(StateVector, BadQubitCountDiagnosisNamesTheValueAndCeiling) {
  try {
    StateVector sv(42);
    FAIL() << "construction must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("42"), std::string::npos) << what;
    EXPECT_NE(what.find("[1, 30]"), std::string::npos) << what;
  }
}

TEST(StateVector, HadamardCreatesUniformPair) {
  StateVector sv(1);
  sv.apply_h(0);
  EXPECT_NEAR(sv.amplitude(0).real(), std::numbers::sqrt2 / 2, kTol);
  EXPECT_NEAR(sv.amplitude(1).real(), std::numbers::sqrt2 / 2, kTol);
}

TEST(StateVector, HadamardIsInvolution) {
  StateVector sv(4);
  sv.apply_h(2);
  sv.apply_h(2);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVector, XFlipsBasisState) {
  StateVector sv(3);
  sv.apply_x(1);
  EXPECT_NEAR(std::abs(sv.amplitude(0b010)), 1.0, kTol);
}

TEST(StateVector, TEighthPowerIsIdentity) {
  StateVector sv(1);
  sv.apply_h(0);  // put amplitude on |1> so the phase is visible
  StateVector ref = sv;
  for (int i = 0; i < 8; ++i) sv.apply_t(0);
  EXPECT_NEAR(sv.fidelity(ref), 1.0, kTol);
  EXPECT_NEAR((sv.amplitude(1) - ref.amplitude(1)).real(), 0.0, kTol);
}

TEST(StateVector, TdgInvertsT) {
  StateVector sv(2);
  sv.apply_h(0);
  sv.apply_h(1);
  StateVector ref = sv;
  sv.apply_t(1);
  sv.apply_tdg(1);
  EXPECT_NEAR(sv.fidelity(ref), 1.0, kTol);
}

TEST(StateVector, SSquaredIsZ) {
  StateVector a(1), b(1);
  a.apply_h(0);
  b.apply_h(0);
  a.apply_s(0);
  a.apply_s(0);
  b.apply_z(0);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
  // Phases must agree exactly, not just up to global phase:
  EXPECT_NEAR(std::abs((a.amplitude(1) - b.amplitude(1))), 0.0, kTol);
}

TEST(StateVector, CnotEntanglesBellPair) {
  StateVector sv(2);
  sv.apply_h(0);
  sv.apply_cnot(0, 1);
  EXPECT_NEAR(std::norm(sv.amplitude(0b00)), 0.5, kTol);
  EXPECT_NEAR(std::norm(sv.amplitude(0b11)), 0.5, kTol);
  EXPECT_NEAR(std::norm(sv.amplitude(0b01)), 0.0, kTol);
  EXPECT_NEAR(std::norm(sv.amplitude(0b10)), 0.0, kTol);
}

TEST(StateVector, CnotSelfInverse) {
  Rng rng(5);
  StateVector sv(3);
  sv.apply_h(0);
  sv.apply_t(0);
  sv.apply_h(1);
  StateVector ref = sv;
  sv.apply_cnot(0, 2);
  sv.apply_cnot(0, 2);
  EXPECT_NEAR(sv.fidelity(ref), 1.0, kTol);
}

TEST(StateVector, CzIsSymmetric) {
  StateVector a(2), b(2);
  a.apply_h(0);
  a.apply_h(1);
  b.apply_h(0);
  b.apply_h(1);
  a.apply_cz(0, 1);
  b.apply_cz(1, 0);
  EXPECT_NEAR(std::abs(a.inner_product(b)), 1.0, kTol);
}

TEST(StateVector, SwapExchangesQubits) {
  StateVector sv(2);
  sv.apply_x(0);  // |01> (qubit 0 set)
  sv.apply_swap(0, 1);
  EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 1.0, kTol);
}

TEST(StateVector, McxHonoursMixedPolarityPattern) {
  // Controls: q0 == 1, q1 == 0 -> flip q2.
  StateVector sv(3);
  sv.apply_x(0);  // state |001>
  const ControlTerm terms[] = {{0, true}, {1, false}};
  sv.apply_mcx(terms, 2);
  EXPECT_NEAR(std::abs(sv.amplitude(0b101)), 1.0, kTol);
  // Now break the pattern: q1 == 1 -> no flip.
  StateVector sv2(3);
  sv2.apply_x(0);
  sv2.apply_x(1);  // |011>
  sv2.apply_mcx(terms, 2);
  EXPECT_NEAR(std::abs(sv2.amplitude(0b011)), 1.0, kTol);
}

TEST(StateVector, MczFlipsOnlyMatchingStates) {
  StateVector sv(2);
  sv.apply_h(0);
  sv.apply_h(1);
  const ControlTerm terms[] = {{0, true}, {1, true}};
  sv.apply_mcz(terms);
  EXPECT_NEAR(sv.amplitude(0b11).real(), -0.5, kTol);
  EXPECT_NEAR(sv.amplitude(0b00).real(), 0.5, kTol);
  EXPECT_NEAR(sv.amplitude(0b01).real(), 0.5, kTol);
  EXPECT_NEAR(sv.amplitude(0b10).real(), 0.5, kTol);
}

TEST(StateVector, ReflectZeroMatchesDefinitionOfSk) {
  // S_k: |0> -> |0>, |i> -> -|i> on the index range.
  StateVector sv(3);
  sv.apply_h_range(0, 2);  // uniform on first two qubits
  sv.apply_reflect_zero(0, 2);
  EXPECT_NEAR(sv.amplitude(0b00).real(), 0.5, kTol);
  EXPECT_NEAR(sv.amplitude(0b01).real(), -0.5, kTol);
  EXPECT_NEAR(sv.amplitude(0b10).real(), -0.5, kTol);
  EXPECT_NEAR(sv.amplitude(0b11).real(), -0.5, kTol);
}

TEST(StateVector, GroverOneIterationOnFourItems) {
  // Textbook case: N=4, one marked item -> one Grover iteration finds it
  // with certainty. Index register = qubits 0..1, oracle workspace h = 2.
  const std::size_t marked = 0b10;
  StateVector sv(3);
  sv.apply_h_range(0, 2);
  // Phase oracle on the marked index (h stays |0>; use mcz on index pattern).
  const ControlTerm phase[] = {{0, (marked & 1) != 0}, {1, (marked & 2) != 0}};
  sv.apply_mcz(phase);
  // Diffusion.
  sv.apply_h_range(0, 2);
  sv.apply_reflect_zero(0, 2);
  sv.apply_h_range(0, 2);
  EXPECT_NEAR(std::norm(sv.amplitude(marked)), 1.0, 1e-10);
}

TEST(StateVector, IndexedOraclesMatchGenericGates) {
  // apply_x_on_index == mcx with a full index pattern.
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    StateVector a(5), b(5);
    // Random-ish product state.
    for (unsigned q = 0; q < 5; ++q) {
      a.apply_h(q);
      b.apply_h(q);
      if (rng.coin()) {
        a.apply_t(q);
        b.apply_t(q);
      }
    }
    const std::uint64_t idx = rng.below(8);  // 3-bit index register
    a.apply_x_on_index(0, 3, idx, 3);
    std::vector<ControlTerm> terms;
    for (unsigned q = 0; q < 3; ++q) terms.push_back({q, ((idx >> q) & 1) != 0});
    b.apply_mcx(terms, 3);
    ASSERT_NEAR(a.fidelity(b), 1.0, kTol);
  }
}

TEST(StateVector, IndexedPhaseMatchesGenericMcz) {
  Rng rng(10);
  StateVector a(5), b(5);
  for (unsigned q = 0; q < 5; ++q) {
    a.apply_h(q);
    b.apply_h(q);
  }
  const std::uint64_t idx = 5;
  a.apply_z_on_index(0, 3, idx, 4);
  std::vector<ControlTerm> terms;
  for (unsigned q = 0; q < 3; ++q) terms.push_back({q, ((idx >> q) & 1) != 0});
  terms.push_back({4, true});
  b.apply_mcz(terms);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

TEST(StateVector, IndexedCxMatchesGenericMcx) {
  Rng rng(11);
  StateVector a(6), b(6);
  for (unsigned q = 0; q < 6; ++q) {
    a.apply_h(q);
    b.apply_h(q);
  }
  const std::uint64_t idx = 9;  // 4-bit index register
  a.apply_cx_on_index(0, 4, idx, 4, 5);
  std::vector<ControlTerm> terms;
  for (unsigned q = 0; q < 4; ++q) terms.push_back({q, ((idx >> q) & 1) != 0});
  terms.push_back({4, true});
  b.apply_mcx(terms, 5);
  EXPECT_NEAR(a.fidelity(b), 1.0, kTol);
}

TEST(StateVector, ProbabilityOneMatchesAmplitudes) {
  StateVector sv(2);
  sv.apply_h(0);
  EXPECT_NEAR(sv.probability_one(0), 0.5, kTol);
  EXPECT_NEAR(sv.probability_one(1), 0.0, kTol);
}

TEST(StateVector, MeasureCollapsesAndNormalizes) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    StateVector sv(2);
    sv.apply_h(0);
    sv.apply_cnot(0, 1);  // Bell pair: outcomes perfectly correlated
    const bool m0 = sv.measure(0, rng);
    EXPECT_NEAR(sv.norm(), 1.0, kTol);
    const bool m1 = sv.measure(1, rng);
    EXPECT_EQ(m0, m1);
  }
}

TEST(StateVector, MeasurementFrequenciesMatchBornRule) {
  Rng rng(17);
  int ones = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    StateVector sv(1);
    sv.apply_h(0);
    sv.apply_t(0);
    sv.apply_h(0);  // P(1) = (1 - cos(pi/4)) / 2 ~ 0.146447
    if (sv.measure(0, rng)) ++ones;
  }
  const double expected = (1.0 - std::cos(std::numbers::pi / 4)) / 2.0;
  EXPECT_NEAR(ones / static_cast<double>(kTrials), expected, 0.01);
}

TEST(StateVector, SampleBasisMatchesDistribution) {
  Rng rng(19);
  StateVector sv(2);
  sv.apply_h(0);  // mass 1/2 on |00> and |01>
  int c0 = 0, c1 = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto b = sv.sample_basis(rng);
    ASSERT_TRUE(b == 0 || b == 1);
    (b == 0 ? c0 : c1)++;
  }
  EXPECT_NEAR(c0 / 20000.0, 0.5, 0.02);
  EXPECT_NEAR(c1 / 20000.0, 0.5, 0.02);
}

// Property sweep: random Clifford+T circuits preserve the norm, across
// register sizes including ones that cross the parallel-kernel threshold.
class NormPreservation : public ::testing::TestWithParam<unsigned> {};

TEST_P(NormPreservation, RandomCircuitKeepsUnitNorm) {
  const unsigned qubits = GetParam();
  Rng rng(1234 + qubits);
  StateVector sv(qubits);
  for (int step = 0; step < 200; ++step) {
    const unsigned q = static_cast<unsigned>(rng.below(qubits));
    switch (rng.below(4)) {
      case 0:
        sv.apply_h(q);
        break;
      case 1:
        sv.apply_t(q);
        break;
      case 2: {
        unsigned r = static_cast<unsigned>(rng.below(qubits));
        sv.apply_cnot(q, r);  // q == r allowed: identity convention
        break;
      }
      case 3:
        sv.apply_reflect_zero(0, qubits);
        break;
    }
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NormPreservation,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 12u, 15u, 16u));

}  // namespace
