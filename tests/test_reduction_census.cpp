// Unit tests: Theorem 3.6 machinery — configuration census at boundaries.
#include <gtest/gtest.h>

#include <cmath>

#include "qols/reduction/config_census.hpp"

namespace {

using namespace qols::reduction;
using qols::util::Rng;

TEST(DetBlockMachine, DecidesDisjointnessOnWellFormedWords) {
  // k=1, x = 1000, y = 0001 (disjoint).
  DetBlockMachine mach(1);
  mach.reset();
  const std::string word = "1#1000#0001#1000#1000#0001#1000#";
  for (char c : word) mach.feed(*qols::stream::symbol_from_char(c));
  EXPECT_TRUE(mach.decide());
  // x = 1000, y = 1001: intersection at index 0.
  mach.reset();
  const std::string word2 = "1#1000#1001#1000#1000#1001#1000#";
  for (char c : word2) mach.feed(*qols::stream::symbol_from_char(c));
  EXPECT_FALSE(mach.decide());
}

TEST(DetBlockMachine, ConfigurationChangesWithBuffer) {
  DetBlockMachine a(1), b(1);
  a.reset();
  b.reset();
  const std::string w1 = "1#1000";
  const std::string w2 = "1#0100";
  for (char c : w1) a.feed(*qols::stream::symbol_from_char(c));
  for (char c : w2) b.feed(*qols::stream::symbol_from_char(c));
  EXPECT_NE(a.configuration(), b.configuration());
}

TEST(Census, ExhaustiveAtK1) {
  DetBlockMachine mach(1);
  Rng rng(1);
  auto census = survey_configurations(mach, 1, 1 << 16, rng);
  EXPECT_TRUE(census.exhaustive);
  EXPECT_EQ(census.inputs_surveyed, 256u);  // 2^4 x-strings * 2^4 y-strings
  ASSERT_EQ(census.distinct_configs.size(), 5u);  // 3*2^1 - 1 boundaries
  // After the first x-block the block machine distinguishes its 2^{2^k}=4
  // buffer values (block length 2^k = 2).
  EXPECT_EQ(census.distinct_configs[0], 4u);
  EXPECT_EQ(census.message_bits[0], 2u);
  EXPECT_GT(census.total_bits, 0u);
  EXPECT_GE(census.max_bits, 2u);
}

TEST(Census, FullMachineCarriesWholeStringAtFirstBoundary) {
  DetFullMachine mach(1);
  Rng rng(2);
  auto census = survey_configurations(mach, 1, 1 << 16, rng);
  ASSERT_TRUE(census.exhaustive);
  // The full-storage machine must distinguish all 2^m = 16 x-strings.
  EXPECT_EQ(census.distinct_configs[0], 16u);
  EXPECT_EQ(census.message_bits[0], 4u);
}

TEST(Census, FingerprintMachineHasSmallConfigurationSpace) {
  DetFingerprintMachine mach(1, /*t=*/7);
  Rng rng(3);
  auto census = survey_configurations(mach, 1, 1 << 16, rng);
  ASSERT_TRUE(census.exhaustive);
  // An O(log n)-space machine: configuration count is polynomial in n, far
  // below the 2^{Omega(2^k)} of the block machine at scale. At k=1 all we
  // check is that it cannot exceed the trivial p^2-ish bound.
  for (auto c : census.distinct_configs) {
    EXPECT_LE(c, 31u * 31u);
  }
}

TEST(Census, SampledSurveyGivesLowerBounds) {
  DetBlockMachine mach(2);
  Rng rng(4);
  auto census = survey_configurations(mach, 2, 500, rng);
  EXPECT_FALSE(census.exhaustive);
  EXPECT_EQ(census.inputs_surveyed, 500u);
  ASSERT_EQ(census.distinct_configs.size(), 11u);  // 3*4 - 1
  // With 500 random pairs the 16-value buffer at boundary 0 is all but
  // surely fully explored (coupon collector).
  EXPECT_EQ(census.distinct_configs[0], 16u);
}

TEST(Census, BlockMachineMessageMatchesBufferSize) {
  // The max message length of the block machine should be ~2^k bits
  // (its buffer) — exactly the Omega(n^{1/3}) the lower bound demands.
  DetBlockMachine mach(1);
  Rng rng(5);
  auto census = survey_configurations(mach, 1, 1 << 16, rng);
  EXPECT_GE(census.max_bits, 2u);   // 2^k = 2 bits of buffer
  EXPECT_LE(census.max_bits, 2u + 3u);  // counters add a little
}

TEST(LowerBoundFormula, MatchesTheorem36Shape) {
  // c * 2^{2k} / (3*2^k - 1) grows like (c/3) * 2^k.
  const double c = 1.0;
  for (unsigned k = 2; k <= 12; ++k) {
    const double bound = theorem36_min_message_bits(k, c);
    const double expected = c * std::pow(2.0, k) / 3.0;
    EXPECT_NEAR(bound / expected, 1.0, 0.25) << "k=" << k;
  }
}

}  // namespace
