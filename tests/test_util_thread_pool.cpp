// Unit tests: thread pool and parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "qols/util/thread_pool.hpp"

namespace {

using qols::util::parallel_for;
using qols::util::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ThreadCountHonoured) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> touched(kN);
  parallel_for(pool, 0, kN, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 10, 10, 1,
               [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> data(10, 0);
  parallel_for(pool, 0, data.size(), 1024,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) data[i] = 1;
               });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 10);
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 1 << 18;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) values[i] = static_cast<double>(i % 7);
  std::atomic<long long> parallel_sum{0};
  parallel_for(pool, 0, kN, 1 << 10, [&](std::size_t lo, std::size_t hi) {
    long long local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(values[i]);
    parallel_sum.fetch_add(local);
  });
  long long serial = 0;
  for (double v : values) serial += static_cast<long long>(v);
  EXPECT_EQ(parallel_sum.load(), serial);
}

TEST(ThreadPool, OnWorkerThreadDetectsOwnership) {
  ThreadPool pool(2);
  ThreadPool other(2);
  EXPECT_FALSE(pool.on_worker_thread());  // the test thread is not a worker
  std::atomic<int> seen_own{0};
  std::atomic<int> seen_other{0};
  pool.submit([&] {
    if (pool.on_worker_thread()) seen_own.fetch_add(1);
    if (other.on_worker_thread()) seen_other.fetch_add(1);
  });
  pool.wait_idle();
  EXPECT_EQ(seen_own.load(), 1);
  EXPECT_EQ(seen_other.load(), 0);
}

TEST(ParallelFor, NestedCallOnSamePoolRunsInlineInsteadOfDeadlocking) {
  // A task running on a pool worker that issues parallel_for on the SAME
  // pool must not block in wait_idle (it counts itself as active forever);
  // the nested call degrades to an inline loop. This is the trial-engine +
  // state-vector-kernel nesting pattern.
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 100000;  // > any inline-grain threshold
  std::atomic<std::size_t> total{0};
  parallel_for(pool, 0, kOuter, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      parallel_for(pool, 0, kInner, 1, [&](std::size_t ilo, std::size_t ihi) {
        total.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ParallelFor, GlobalPoolOverloadWorks) {
  std::atomic<std::size_t> count{0};
  parallel_for(0, 5000, 16, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(hi - lo);
  });
  EXPECT_EQ(count.load(), 5000u);
}

}  // namespace
