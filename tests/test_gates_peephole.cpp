// Unit + property tests: the tape peephole optimizer. Every rewrite is an
// exact identity, so optimized circuits are checked for STATE EQUALITY (not
// just fidelity) against the originals.
#include <gtest/gtest.h>

#include "qols/gates/builder.hpp"
#include "qols/gates/peephole.hpp"
#include "qols/quantum/circuit.hpp"
#include "qols/util/rng.hpp"

namespace {

using qols::gates::CircuitBuilder;
using qols::gates::CircuitSink;
using qols::gates::peephole_optimize;
using qols::gates::PeepholeStats;
using qols::quantum::Circuit;
using qols::quantum::Gate;
using qols::quantum::GateKind;
using qols::quantum::StateVector;
using qols::util::Rng;

// Exact state equality (amplitude by amplitude).
void expect_states_equal(const StateVector& a, const StateVector& b) {
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t i = 0; i < a.dim(); ++i) {
    ASSERT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, 1e-12) << i;
  }
}

void expect_equivalent(const Circuit& original, const Circuit& optimized,
                       unsigned qubits) {
  StateVector a(qubits), b(qubits);
  // A non-trivial start state so phases matter.
  for (unsigned q = 0; q < qubits; ++q) {
    a.apply_h(q);
    b.apply_h(q);
  }
  original.apply_to(a);
  optimized.apply_to(b);
  expect_states_equal(a, b);
}

TEST(Peephole, EmptyCircuit) {
  PeepholeStats stats;
  const Circuit out = peephole_optimize(Circuit{}, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.gates_before, 0u);
  EXPECT_EQ(stats.gates_after, 0u);
}

TEST(Peephole, DropsIdentityEntries) {
  Circuit c;
  c.add(Gate{GateKind::kH, 3, 3});   // a == b: identity by convention
  c.add(Gate{GateKind::kCnot, 1, 1});
  c.add_h(0);
  PeepholeStats stats;
  const Circuit out = peephole_optimize(c, &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.identities_dropped, 2u);
}

TEST(Peephole, CancelsAdjacentHPairs) {
  Circuit c;
  c.add_h(0);
  c.add_h(0);
  PeepholeStats stats;
  const Circuit out = peephole_optimize(c, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.h_pairs_cancelled, 1u);
}

TEST(Peephole, CancelsHPairsAcrossDisjointGates) {
  Circuit c;
  c.add_h(0);
  c.add_t(1);        // touches only qubit 1
  c.add_cnot(1, 2);  // touches 1, 2
  c.add_h(0);        // cancels with the first H
  const Circuit out = peephole_optimize(c);
  EXPECT_EQ(out.size(), 2u);
  expect_equivalent(c, out, 3);
}

TEST(Peephole, DoesNotCancelHAcrossInterveningTouch) {
  Circuit c;
  c.add_h(0);
  c.add_t(0);  // touches qubit 0: blocks cancellation
  c.add_h(0);
  const Circuit out = peephole_optimize(c);
  EXPECT_EQ(out.size(), 3u);
  expect_equivalent(c, out, 1);
}

TEST(Peephole, FoldsTRunsMod8) {
  Circuit c;
  for (int i = 0; i < 8; ++i) c.add_t(2);
  PeepholeStats stats;
  const Circuit out = peephole_optimize(c, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.t_gates_cancelled, 8u);
}

TEST(Peephole, KeepsPartialTRuns) {
  Circuit c;
  for (int i = 0; i < 11; ++i) c.add_t(0);  // 11 = 8 + 3 -> 3 survive
  const Circuit out = peephole_optimize(c);
  EXPECT_EQ(out.size(), 3u);
  expect_equivalent(c, out, 1);
}

TEST(Peephole, TRunsFoldAcrossDisjointGates) {
  Circuit c;
  for (int i = 0; i < 4; ++i) c.add_t(0);
  c.add_h(1);  // disjoint: run on qubit 0 continues
  for (int i = 0; i < 4; ++i) c.add_t(0);
  const Circuit out = peephole_optimize(c);
  EXPECT_EQ(out.size(), 1u);  // just the H
  expect_equivalent(c, out, 2);
}

TEST(Peephole, CancelsAdjacentCnotPairs) {
  Circuit c;
  c.add_cnot(0, 1);
  c.add_cnot(0, 1);
  PeepholeStats stats;
  const Circuit out = peephole_optimize(c, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.cnot_pairs_cancelled, 1u);
}

TEST(Peephole, DoesNotCancelFlippedCnot) {
  Circuit c;
  c.add_cnot(0, 1);
  c.add_cnot(1, 0);  // different orientation: NOT a pair
  const Circuit out = peephole_optimize(c);
  EXPECT_EQ(out.size(), 2u);
  expect_equivalent(c, out, 2);
}

TEST(Peephole, DoesNotCancelCnotAcrossSharedQubitTouch) {
  Circuit c;
  c.add_cnot(0, 1);
  c.add_t(1);
  c.add_cnot(0, 1);
  const Circuit out = peephole_optimize(c);
  EXPECT_EQ(out.size(), 3u);
  expect_equivalent(c, out, 2);
}

TEST(Peephole, FixpointCascades) {
  // H [CNOT CNOT] H: the CNOT pair cancels in pass 1, exposing the H pair.
  Circuit c;
  c.add_h(0);
  c.add_cnot(0, 1);
  c.add_cnot(0, 1);
  c.add_h(0);
  PeepholeStats stats;
  const Circuit out = peephole_optimize(c, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_GE(stats.passes, 2u);
}

TEST(Peephole, IsIdempotent) {
  Rng rng(3);
  Circuit c;
  for (int i = 0; i < 300; ++i) {
    switch (rng.below(3)) {
      case 0:
        c.add_h(static_cast<std::uint32_t>(rng.below(4)));
        break;
      case 1:
        c.add_t(static_cast<std::uint32_t>(rng.below(4)));
        break;
      default: {
        const auto a = static_cast<std::uint32_t>(rng.below(4));
        const auto b = static_cast<std::uint32_t>(rng.below(4));
        if (a != b) c.add_cnot(a, b);
      }
    }
  }
  const Circuit once = peephole_optimize(c);
  const Circuit twice = peephole_optimize(once);
  EXPECT_EQ(once, twice);
}

// Property sweep: random tapes stay exactly equivalent after optimization.
class PeepholeProperty : public ::testing::TestWithParam<int> {};

TEST_P(PeepholeProperty, PreservesSemanticsExactly) {
  Rng rng(100 + GetParam());
  const unsigned qubits = 4;
  Circuit c;
  for (int i = 0; i < 200; ++i) {
    switch (rng.below(3)) {
      case 0:
        c.add_h(static_cast<std::uint32_t>(rng.below(qubits)));
        break;
      case 1:
        c.add_t(static_cast<std::uint32_t>(rng.below(qubits)));
        break;
      default: {
        const auto a = static_cast<std::uint32_t>(rng.below(qubits));
        const auto b = static_cast<std::uint32_t>(rng.below(qubits));
        c.add(Gate{GateKind::kCnot, a, b});  // a == b identities included
      }
    }
  }
  const Circuit out = peephole_optimize(c);
  EXPECT_LE(out.size(), c.size());
  expect_equivalent(c, out, qubits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeepholeProperty, ::testing::Range(0, 10));

TEST(Peephole, ShrinksRealA3Tapes) {
  // The compiled ccx-heavy tapes contain tdg = T^7 runs that merge with
  // neighbouring T's; expect a measurable reduction on a real lowering.
  CircuitSink sink;
  CircuitBuilder builder(sink, 4, 2);
  const std::vector<qols::quantum::ControlTerm> pattern = {
      {0, false}, {1, true}, {2, true}};
  for (int rep = 0; rep < 5; ++rep) {
    builder.x(0);
    builder.ccx(0, 1, 2);
    builder.x(0);
    builder.mcz_pattern(pattern);
  }
  Circuit c = sink.circuit();
  PeepholeStats stats;
  const Circuit out = peephole_optimize(c, &stats);
  EXPECT_LT(out.size(), c.size());
  expect_equivalent(c, out, 6);
  EXPECT_GT(stats.reduction(), 0.02);
}

}  // namespace
