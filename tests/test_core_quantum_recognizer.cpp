// Unit + statistical tests: the composed quantum online machine
// (Theorem 3.4: perfect completeness, >= 1/4 one-sided rejection).
#include <gtest/gtest.h>

#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"

namespace {

using qols::core::QuantumOnlineRecognizer;
using qols::lang::LDisjInstance;
using qols::lang::make_mutant_stream;
using qols::lang::MutantKind;
using qols::machine::run_stream;
using qols::util::Rng;

TEST(QuantumRecognizer, AcceptsMembersWithProbabilityOne) {
  Rng rng(1);
  for (unsigned k = 1; k <= 3; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      QuantumOnlineRecognizer rec(seed);
      auto s = inst.stream();
      ASSERT_TRUE(run_stream(*s, rec)) << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(QuantumRecognizer, ExactAcceptanceIsOneOnMembers) {
  Rng rng(2);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  QuantumOnlineRecognizer rec(7);
  auto s = inst.stream();
  while (auto sym = s->next()) rec.feed(*sym);
  EXPECT_NEAR(rec.exact_acceptance_probability(), 1.0, 1e-10);
}

TEST(QuantumRecognizer, RejectsNonMembersAtLeastQuarter) {
  Rng rng(3);
  for (unsigned k = 1; k <= 3; ++k) {
    for (std::uint64_t t : {std::uint64_t{1}, std::uint64_t{2}}) {
      auto inst = LDisjInstance::make_with_intersections(k, t, rng);
      double accept_sum = 0.0;
      constexpr int kRuns = 300;
      for (int i = 0; i < kRuns; ++i) {
        QuantumOnlineRecognizer rec(1000 + i);
        auto s = inst.stream();
        while (auto sym = s->next()) rec.feed(*sym);
        accept_sum += rec.exact_acceptance_probability();
      }
      const double p_reject = 1.0 - accept_sum / kRuns;
      // >= 1/4 with sampling slack (exact per-run values, randomness over j).
      EXPECT_GE(p_reject, 0.25 - 0.05) << "k=" << k << " t=" << t;
    }
  }
}

TEST(QuantumRecognizer, RejectsMalformedWordsAlways) {
  Rng rng(4);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  for (auto kind : {MutantKind::kBadPrefix, MutantKind::kTrailingGarbage,
                    MutantKind::kTruncated, MutantKind::kSepInsideBlock}) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      QuantumOnlineRecognizer rec(seed);
      auto s = make_mutant_stream(inst, kind, rng);
      ASSERT_FALSE(run_stream(*s, rec))
          << "mutant " << static_cast<int>(kind) << " seed " << seed;
    }
  }
}

TEST(QuantumRecognizer, RejectsInconsistentWordsWithHighProbability) {
  Rng rng(5);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  for (auto kind : {MutantKind::kXZMismatch, MutantKind::kYDrift}) {
    auto mutant = make_mutant_stream(inst, kind, rng);
    const std::string word = qols::stream::materialize(*mutant);
    int rejects = 0;
    constexpr int kRuns = 100;
    for (int i = 0; i < kRuns; ++i) {
      QuantumOnlineRecognizer rec(2000 + i);
      qols::stream::StringStream s(word);
      if (!run_stream(s, rec)) ++rejects;
    }
    // A2 catches with prob >= 1 - 2^{-4} = 15/16.
    EXPECT_GE(rejects, 85) << "mutant " << static_cast<int>(kind);
  }
}

TEST(QuantumRecognizer, ComplementVerdictIsNegation) {
  Rng rng(6);
  auto inst = LDisjInstance::make_disjoint(1, rng);
  QuantumOnlineRecognizer rec(3);
  auto s = inst.stream();
  while (auto sym = s->next()) rec.feed(*sym);
  // Member of L_DISJ => not a member of the complement.
  EXPECT_FALSE(rec.finish_complement());
}

TEST(QuantumRecognizer, SpaceScalesLogarithmically) {
  Rng rng(7);
  std::uint64_t prev_total = 0;
  for (unsigned k = 1; k <= 4; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    QuantumOnlineRecognizer rec(1);
    auto s = inst.stream();
    while (auto sym = s->next()) rec.feed(*sym);
    const auto space = rec.space_used();
    EXPECT_EQ(space.qubits, 2ULL * k + 2);
    // Linear in k = O(log n): generous constant, strictly below 2^k for k>=7.
    EXPECT_LE(space.classical_bits, 100 * k + 50);
    EXPECT_GT(space.total(), prev_total);
    prev_total = space.total();
  }
}

TEST(QuantumRecognizer, ResetRearmsForNewStream) {
  Rng rng(8);
  auto member = LDisjInstance::make_disjoint(1, rng);
  auto nonmember = LDisjInstance::make_with_intersections(1, 4, rng);  // t = m
  QuantumOnlineRecognizer rec(11);
  {
    auto s = member.stream();
    EXPECT_TRUE(run_stream(*s, rec));
  }
  rec.reset(12);
  {
    // t = m: every index intersects; A3 rejection prob is 1 (theta = pi/2
    // gives sin^2((2j+1)pi/2) = 1 for every j).
    auto s = nonmember.stream();
    EXPECT_FALSE(run_stream(*s, rec));
  }
}

TEST(QuantumRecognizer, SubProceduresAreExposed) {
  Rng rng(9);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  QuantumOnlineRecognizer rec(1);
  auto s = inst.stream();
  while (auto sym = s->next()) rec.feed(*sym);
  EXPECT_TRUE(rec.a1().k().has_value());
  EXPECT_TRUE(rec.a2().prime().has_value());
  EXPECT_TRUE(rec.a3().chosen_j().has_value());
}

}  // namespace
