// Differential tests: the StateVector kernels against an independent dense
// matrix reference simulator (explicit 2^n x 2^n unitaries built by
// Kronecker products). Slow but assumption-free; n <= 5 keeps it instant.
#include <gtest/gtest.h>

#include <complex>
#include <numbers>
#include <vector>

#include "qols/quantum/circuit.hpp"
#include "qols/quantum/state_vector.hpp"
#include "qols/util/rng.hpp"

namespace {

using qols::quantum::Amplitude;
using qols::quantum::ControlTerm;
using qols::quantum::StateVector;
using qols::util::Rng;

// A dense column vector and explicit matrix-vector application.
using Vec = std::vector<Amplitude>;
using Mat = std::vector<std::vector<Amplitude>>;

Mat identity(std::size_t n) {
  Mat m(n, std::vector<Amplitude>(n, {0.0, 0.0}));
  for (std::size_t i = 0; i < n; ++i) m[i][i] = {1.0, 0.0};
  return m;
}

// kron(a, b): a acts on the HIGHER qubits, b on the lower.
Mat kron(const Mat& a, const Mat& b) {
  const std::size_t ra = a.size(), rb = b.size();
  Mat out(ra * rb, std::vector<Amplitude>(ra * rb, {0.0, 0.0}));
  for (std::size_t i = 0; i < ra; ++i) {
    for (std::size_t j = 0; j < ra; ++j) {
      for (std::size_t p = 0; p < rb; ++p) {
        for (std::size_t q = 0; q < rb; ++q) {
          out[i * rb + p][j * rb + q] = a[i][j] * b[p][q];
        }
      }
    }
  }
  return out;
}

// Embeds a one-qubit gate on qubit q of an n-qubit register (little-endian:
// qubit 0 is the least significant index bit, i.e. the RIGHTMOST factor).
Mat embed1(const Mat& gate, unsigned q, unsigned n) {
  Mat acc = identity(1);
  for (unsigned bit = n; bit-- > 0;) {
    acc = kron(acc, bit == q ? gate : identity(2));
  }
  return acc;
}

Vec matvec(const Mat& m, const Vec& v) {
  Vec out(v.size(), {0.0, 0.0});
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) out[i] += m[i][j] * v[j];
  }
  return out;
}

Vec state_of(const StateVector& sv) {
  return sv.amplitudes();  // materialized AoS copy of the SoA storage
}

void expect_equal(const Vec& a, const Vec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-10) << "index " << i;
  }
}

const Mat kH = {{{std::numbers::sqrt2 / 2, 0}, {std::numbers::sqrt2 / 2, 0}},
                {{std::numbers::sqrt2 / 2, 0}, {-std::numbers::sqrt2 / 2, 0}}};
const Mat kT = {{{1, 0}, {0, 0}},
                {{0, 0}, {std::numbers::sqrt2 / 2, std::numbers::sqrt2 / 2}}};
const Mat kX = {{{0, 0}, {1, 0}}, {{1, 0}, {0, 0}}};
const Mat kZ = {{{1, 0}, {0, 0}}, {{0, 0}, {-1, 0}}};

// Builds an explicit CNOT matrix for arbitrary control/target labels.
Mat cnot_matrix(unsigned control, unsigned target, unsigned n) {
  const std::size_t dim = std::size_t{1} << n;
  Mat m(dim, std::vector<Amplitude>(dim, {0.0, 0.0}));
  for (std::size_t i = 0; i < dim; ++i) {
    std::size_t j = i;
    if (i & (std::size_t{1} << control)) j ^= std::size_t{1} << target;
    m[j][i] = {1.0, 0.0};
  }
  return m;
}

// Random test state prepared identically in both simulators.
Vec randomize(StateVector& sv, Rng& rng) {
  Vec ref(sv.dim(), {0.0, 0.0});
  ref[0] = {1.0, 0.0};
  for (unsigned q = 0; q < sv.num_qubits(); ++q) {
    sv.apply_h(q);
    ref = matvec(embed1(kH, q, sv.num_qubits()), ref);
    if (rng.coin()) {
      sv.apply_t(q);
      ref = matvec(embed1(kT, q, sv.num_qubits()), ref);
    }
  }
  return ref;
}

class ReferenceSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReferenceSweep, OneQubitGatesMatchKroneckerEmbedding) {
  const unsigned n = GetParam();
  Rng rng(40 + n);
  for (unsigned q = 0; q < n; ++q) {
    StateVector sv(n);
    Vec ref = randomize(sv, rng);
    sv.apply_h(q);
    ref = matvec(embed1(kH, q, n), ref);
    sv.apply_t(q);
    ref = matvec(embed1(kT, q, n), ref);
    sv.apply_x(q);
    ref = matvec(embed1(kX, q, n), ref);
    sv.apply_z(q);
    ref = matvec(embed1(kZ, q, n), ref);
    expect_equal(state_of(sv), ref);
  }
}

TEST_P(ReferenceSweep, CnotMatchesExplicitMatrix) {
  const unsigned n = GetParam();
  if (n < 2) GTEST_SKIP();
  Rng rng(50 + n);
  for (unsigned c = 0; c < n; ++c) {
    for (unsigned t = 0; t < n; ++t) {
      if (c == t) continue;
      StateVector sv(n);
      Vec ref = randomize(sv, rng);
      sv.apply_cnot(c, t);
      ref = matvec(cnot_matrix(c, t, n), ref);
      expect_equal(state_of(sv), ref);
    }
  }
}

TEST_P(ReferenceSweep, RandomCircuitMatchesReference) {
  const unsigned n = GetParam();
  Rng rng(60 + n);
  StateVector sv(n);
  Vec ref = randomize(sv, rng);
  for (int step = 0; step < 60; ++step) {
    const unsigned q = static_cast<unsigned>(rng.below(n));
    switch (rng.below(3)) {
      case 0:
        sv.apply_h(q);
        ref = matvec(embed1(kH, q, n), ref);
        break;
      case 1:
        sv.apply_t(q);
        ref = matvec(embed1(kT, q, n), ref);
        break;
      default: {
        const unsigned t = static_cast<unsigned>(rng.below(n));
        if (q == t) break;
        sv.apply_cnot(q, t);
        ref = matvec(cnot_matrix(q, t, n), ref);
      }
    }
  }
  expect_equal(state_of(sv), ref);
}

TEST_P(ReferenceSweep, ReflectZeroMatchesExplicitDiagonal) {
  const unsigned n = GetParam();
  Rng rng(70 + n);
  for (unsigned count = 1; count <= n; ++count) {
    StateVector sv(n);
    Vec ref = randomize(sv, rng);
    sv.apply_reflect_zero(0, count);
    const std::size_t mask = ((std::size_t{1} << count) - 1);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (i & mask) ref[i] = -ref[i];
    }
    expect_equal(state_of(sv), ref);
  }
}

TEST_P(ReferenceSweep, MczMatchesExplicitDiagonal) {
  const unsigned n = GetParam();
  if (n < 2) GTEST_SKIP();
  Rng rng(80 + n);
  StateVector sv(n);
  Vec ref = randomize(sv, rng);
  std::vector<ControlTerm> terms;
  std::size_t mask = 0, want = 0;
  for (unsigned q = 0; q < n; ++q) {
    if (rng.coin()) {
      const bool v = rng.coin();
      terms.push_back({q, v});
      mask |= std::size_t{1} << q;
      if (v) want |= std::size_t{1} << q;
    }
  }
  if (terms.empty()) terms.push_back({0, true}), mask = 1, want = 1;
  sv.apply_mcz(terms);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if ((i & mask) == want) ref[i] = -ref[i];
  }
  expect_equal(state_of(sv), ref);
}

INSTANTIATE_TEST_SUITE_P(Registers, ReferenceSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
