// Differential suite: dense vs structured backends driven through identical
// streamed instances (same words, same seeds). The acceptance bar from the
// backend subsystem's introduction: amplitudes agree within 1e-12, and
// measurement decisions / accept counts match exactly, for every k <= 8.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "qols/core/grover_streamer.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/core/trial_engine.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/util/rng.hpp"

namespace {

using qols::core::GroverStreamer;
using qols::core::QuantumOnlineRecognizer;
using qols::core::TrialEngine;
using qols::lang::LDisjInstance;
using qols::lang::make_mutant_stream;
using qols::lang::MutantKind;
using qols::util::Rng;

GroverStreamer make_streamer(const std::string& backend, std::uint64_t seed) {
  GroverStreamer::Options opts;
  opts.backend = backend;
  // Explicit ids get the ceiling of their kind; keep both wide open to k=8.
  opts.max_sim_k = 10;
  opts.max_structured_k = 16;
  return GroverStreamer{Rng(seed), opts};
}

void stream_word(GroverStreamer& a3, const std::string& word) {
  qols::stream::StringStream s(word);
  while (auto sym = s.next()) a3.feed(*sym);
}

/// Streams `word` through both backends with the same seed and asserts
/// amplitude-level agreement (every basis state, 1e-12), matching output
/// probabilities, and the identical measurement decision.
void expect_backends_agree(const std::string& word, std::uint64_t seed,
                           bool compare_amplitudes = true) {
  GroverStreamer dense = make_streamer("dense", seed);
  GroverStreamer structured = make_streamer("structured", seed);
  stream_word(dense, word);
  stream_word(structured, word);

  ASSERT_EQ(dense.chosen_j(), structured.chosen_j());
  const auto* dense_backend = dense.simulation_backend();
  const auto* structured_backend = structured.simulation_backend();
  if (dense_backend == nullptr || structured_backend == nullptr) {
    // Word so malformed the register never came up — both must agree.
    ASSERT_EQ(dense_backend, nullptr);
    ASSERT_EQ(structured_backend, nullptr);
  } else if (compare_amplitudes) {
    const std::uint64_t dim = std::uint64_t{1}
                              << dense_backend->num_qubits();
    for (std::uint64_t basis = 0; basis < dim; ++basis) {
      const auto ad = dense_backend->amplitude(basis);
      const auto as = structured_backend->amplitude(basis);
      ASSERT_NEAR(ad.real(), as.real(), 1e-12)
          << "basis " << basis << " seed " << seed;
      ASSERT_NEAR(ad.imag(), as.imag(), 1e-12)
          << "basis " << basis << " seed " << seed;
    }
  }
  ASSERT_NEAR(dense.probability_output_zero(),
              structured.probability_output_zero(), 1e-12);
  ASSERT_EQ(dense.finish_output(), structured.finish_output())
      << "seed " << seed;
}

TEST(BackendDifferential, FullStateAgreementSmallK) {
  Rng rng(1);
  for (unsigned k = 1; k <= 4; ++k) {
    const std::uint64_t m = std::uint64_t{1} << (2 * k);
    for (std::uint64_t t : {std::uint64_t{0}, std::uint64_t{1},
                            std::uint64_t{2}, m / 2}) {
      auto inst = t == 0 ? LDisjInstance::make_disjoint(k, rng)
                         : LDisjInstance::make_with_intersections(k, t, rng);
      const std::string word = inst.render();
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        expect_backends_agree(word, seed);
      }
    }
  }
}

TEST(BackendDifferential, MutantWordsAgree) {
  Rng rng(2);
  for (unsigned k : {2u, 3u}) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    for (auto kind :
         {MutantKind::kBadPrefix, MutantKind::kTrailingGarbage,
          MutantKind::kXZMismatch, MutantKind::kYDrift, MutantKind::kTruncated,
          MutantKind::kSepInsideBlock}) {
      auto mutant = make_mutant_stream(inst, kind, rng);
      const std::string word = qols::stream::materialize(*mutant);
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        expect_backends_agree(word, seed);
      }
    }
  }
}

TEST(BackendDifferential, AcceptCountsMatchExactlyThroughEngine) {
  Rng rng(3);
  const TrialEngine engine;
  for (unsigned k : {2u, 3u}) {
    for (std::uint64_t t : {std::uint64_t{0}, std::uint64_t{1}}) {
      auto inst = t == 0 ? LDisjInstance::make_disjoint(k, rng)
                         : LDisjInstance::make_with_intersections(k, t, rng);
      auto measure = [&](const std::string& backend) {
        QuantumOnlineRecognizer::Options opts;
        opts.a3.backend = backend;
        return engine.measure_acceptance(
            [&] { return inst.stream(); },
            [opts](std::uint64_t seed) {
              return std::make_unique<QuantumOnlineRecognizer>(seed, opts);
            },
            {.trials = 64, .seed_base = 500 + 100 * k + t});
      };
      const auto dense = measure("dense");
      const auto structured = measure("structured");
      ASSERT_EQ(dense.accepts, structured.accepts) << "k=" << k << " t=" << t;
      ASSERT_EQ(dense.not_simulated, 0u);
      ASSERT_EQ(structured.not_simulated, 0u);
      ASSERT_EQ(dense.space.qubits, structured.space.qubits);
      if (t == 0) {
        ASSERT_EQ(dense.accepts, dense.trials);  // perfect completeness
      }
    }
  }
}

TEST(BackendDifferential, MidSizeKFullAmplitudeSweep) {
  // k = 5, 6: full-register amplitude comparison (2^12 / 2^14 basis states).
  Rng rng(4);
  for (unsigned k : {5u, 6u}) {
    auto inst = LDisjInstance::make_with_intersections(k, 1, rng);
    const std::string word = inst.render();
    expect_backends_agree(word, /*seed=*/1);
    expect_backends_agree(word, /*seed=*/7);
  }
}

TEST(BackendDifferential, LargeKSevenAndEight) {
  // The suite's upper bar: k = 7 with a full amplitude sweep (2^16 probes),
  // k = 8 on probabilities + decisions (the 5*10^7-symbol stream dominates
  // the runtime; the state comparison adds 2^18 probes).
  Rng rng(5);
  {
    auto inst = LDisjInstance::make_with_intersections(7, 1, rng);
    expect_backends_agree(inst.render(), /*seed=*/3);
  }
  {
    auto inst = LDisjInstance::make_with_intersections(8, 2, rng);
    expect_backends_agree(inst.render(), /*seed=*/5,
                          /*compare_amplitudes=*/true);
  }
}

TEST(BackendDifferential, StructuredMatchesGroverClosedFormAtK6) {
  // Independent anchor: the structured backend's exact output probability
  // against sin^2((2j+1) theta), with no dense run in the loop.
  Rng rng(6);
  const unsigned k = 6;
  auto inst = LDisjInstance::make_with_intersections(k, 3, rng);
  const std::string word = inst.render();
  GroverStreamer structured = make_streamer("structured", 11);
  stream_word(structured, word);
  ASSERT_TRUE(structured.chosen_j().has_value());
  const double theta =
      std::asin(std::sqrt(3.0 / static_cast<double>(inst.m())));
  const double expected =
      std::pow(std::sin((2.0 * static_cast<double>(*structured.chosen_j()) +
                         1.0) *
                        theta),
               2.0);
  EXPECT_NEAR(structured.probability_output_zero(), expected, 1e-9);
}

}  // namespace
