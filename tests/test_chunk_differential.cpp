// Differential tests: chunked ingestion vs per-symbol ingestion.
//
// The feed_chunk contract is "bit-identical to feeding each symbol in
// order" — same decisions, same accept counts over a seed sweep, same
// SpaceReports. This suite drives every recognizer family over identical
// (word, seed) pairs through both transports at chunk sizes {1, 7, 64,
// whole-stream}, on well-formed members, intersecting non-members, and the
// truncated/corrupted/appended mutant streams. Any divergence is an API
// contract violation, not a tolerance question, so comparisons are exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "qols/core/amplified.hpp"
#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/stream/symbol_stream.hpp"

namespace {

using qols::lang::LDisjInstance;
using qols::lang::make_mutant_stream;
using qols::lang::MutantKind;
using qols::machine::OnlineRecognizer;
using qols::machine::SpaceReport;
using qols::stream::Symbol;
using qols::stream::SymbolStream;

using RecognizerFactory =
    std::function<std::unique_ptr<OnlineRecognizer>(std::uint64_t)>;

/// Every family in the library, with small sub-lower-bound parameters so
/// the sampler/Bloom branches (including found_/hit_ hits) are exercised.
std::vector<std::pair<std::string, RecognizerFactory>> all_factories() {
  return {
      {"block",
       [](std::uint64_t seed) {
         return std::make_unique<qols::core::ClassicalBlockRecognizer>(seed);
       }},
      {"full",
       [](std::uint64_t seed) {
         return std::make_unique<qols::core::ClassicalFullRecognizer>(seed);
       }},
      {"sampling",
       [](std::uint64_t seed) {
         return std::make_unique<qols::core::ClassicalSamplingRecognizer>(seed,
                                                                          8);
       }},
      {"bloom",
       [](std::uint64_t seed) {
         return std::make_unique<qols::core::ClassicalBloomRecognizer>(seed, 64,
                                                                       2);
       }},
      {"quantum",
       [](std::uint64_t seed) {
         return std::make_unique<qols::core::QuantumOnlineRecognizer>(seed);
       }},
      {"amplified-quantum", [](std::uint64_t seed) {
         return std::make_unique<qols::core::AmplifiedRecognizer>(
             [](std::uint64_t s) {
               return std::make_unique<qols::core::QuantumOnlineRecognizer>(s);
             },
             2, seed);
       }}};
}

std::vector<Symbol> drain(SymbolStream& s) {
  std::vector<Symbol> out;
  while (auto sym = s.next()) out.push_back(*sym);
  return out;
}

struct Outcome {
  bool accepted = false;
  bool fully_simulated = true;
  SpaceReport space;
};

Outcome run_per_symbol(const RecognizerFactory& factory, std::uint64_t seed,
                       const std::vector<Symbol>& word) {
  auto rec = factory(seed);
  for (const Symbol s : word) rec->feed(s);
  Outcome out;
  out.accepted = rec->finish();
  out.fully_simulated = rec->fully_simulated();
  out.space = rec->space_used();
  return out;
}

Outcome run_chunked(const RecognizerFactory& factory, std::uint64_t seed,
                    const std::vector<Symbol>& word, std::size_t chunk) {
  auto rec = factory(seed);
  for (std::size_t i = 0; i < word.size(); i += chunk) {
    const std::size_t n = std::min(chunk, word.size() - i);
    rec->feed_chunk(std::span<const Symbol>(word.data() + i, n));
  }
  Outcome out;
  out.accepted = rec->finish();
  out.fully_simulated = rec->fully_simulated();
  out.space = rec->space_used();
  return out;
}

/// The chunk ladder of the PR contract: single symbols, an awkward prime,
/// a power of two, and the whole stream in one span.
std::vector<std::size_t> chunk_sizes(std::size_t word_len) {
  return {1, 7, 64, word_len > 0 ? word_len : 1};
}

void expect_equal_everywhere(const std::string& name,
                             const RecognizerFactory& factory,
                             const std::vector<Symbol>& word,
                             std::uint64_t seed_base, std::uint64_t trials) {
  for (const std::size_t chunk : chunk_sizes(word.size())) {
    std::uint64_t per_symbol_accepts = 0;
    std::uint64_t chunked_accepts = 0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      const Outcome a = run_per_symbol(factory, seed_base + t, word);
      const Outcome b = run_chunked(factory, seed_base + t, word, chunk);
      ASSERT_EQ(a.accepted, b.accepted)
          << name << " chunk=" << chunk << " seed=" << seed_base + t;
      ASSERT_EQ(a.fully_simulated, b.fully_simulated)
          << name << " chunk=" << chunk;
      ASSERT_EQ(a.space.classical_bits, b.space.classical_bits)
          << name << " chunk=" << chunk;
      ASSERT_EQ(a.space.qubits, b.space.qubits) << name << " chunk=" << chunk;
      per_symbol_accepts += a.accepted ? 1 : 0;
      chunked_accepts += b.accepted ? 1 : 0;
    }
    ASSERT_EQ(per_symbol_accepts, chunked_accepts)
        << name << " chunk=" << chunk;
  }
}

TEST(ChunkDifferential, MembersAgreeAcrossAllRecognizersAndChunkSizes) {
  qols::util::Rng rng(101);
  for (const unsigned k : {2u, 3u}) {
    const auto inst = LDisjInstance::make_disjoint(k, rng);
    auto s = inst.stream();
    const std::vector<Symbol> word = drain(*s);
    for (const auto& [name, factory] : all_factories()) {
      expect_equal_everywhere(name + " member k=" + std::to_string(k), factory,
                              word, 5000, 6);
    }
  }
}

TEST(ChunkDifferential, NonMembersAgreeIncludingRandomizedRejects) {
  qols::util::Rng rng(202);
  for (const std::uint64_t t : {std::uint64_t{1}, std::uint64_t{3}}) {
    const auto inst = LDisjInstance::make_with_intersections(3, t, rng);
    auto s = inst.stream();
    const std::vector<Symbol> word = drain(*s);
    for (const auto& [name, factory] : all_factories()) {
      // The quantum machine's decision on non-members is a coin-fixed
      // measurement — equal seeds must still yield equal decisions.
      expect_equal_everywhere(name + " t=" + std::to_string(t), factory, word,
                              6000, 6);
    }
  }
}

TEST(ChunkDifferential, MutantStreamsAgree) {
  qols::util::Rng rng(303);
  const auto inst = LDisjInstance::make_disjoint(2, rng);
  for (const MutantKind kind :
       {MutantKind::kBadPrefix, MutantKind::kTrailingGarbage,
        MutantKind::kXZMismatch, MutantKind::kYDrift, MutantKind::kTruncated,
        MutantKind::kSepInsideBlock}) {
    auto s = make_mutant_stream(inst, kind, rng);
    const std::vector<Symbol> word = drain(*s);
    for (const auto& [name, factory] : all_factories()) {
      expect_equal_everywhere(
          name + " mutant=" + std::to_string(static_cast<int>(kind)), factory,
          word, 7000, 4);
    }
  }
}

TEST(ChunkDifferential, OverlongAndEmptyBlocksAgree) {
  // Hand-built malformed words that stress the bulk position accounting:
  // overlong blocks (the bulk fail path), empty blocks, a bare prefix, and
  // a '0' in the prefix.
  const std::vector<std::string> words = {
      "11#",                  // body missing entirely
      "0#",                   // broken prefix
      "1#00000000#",          // overlong first block (m = 4)
      "1#####",               // empty blocks
      "1#0000#1111#0000#11",  // truncated mid-block
  };
  for (const auto& text : words) {
    qols::stream::StringStream stream(text);
    const std::vector<Symbol> word = drain(stream);
    for (const auto& [name, factory] : all_factories()) {
      expect_equal_everywhere(name + " word=" + text, factory, word, 8000, 3);
    }
  }
}

TEST(ChunkDifferential, RunStreamMatchesManualPerSymbolLoop) {
  // run_stream (chunked transport) against the historical per-symbol loop,
  // over member and mutant streams of every recognizer.
  qols::util::Rng rng(404);
  const auto inst = LDisjInstance::make_with_intersections(3, 1, rng);
  for (const auto& [name, factory] : all_factories()) {
    for (std::uint64_t seed = 900; seed < 906; ++seed) {
      auto via_run_stream = factory(seed);
      auto s = inst.stream();
      const bool chunked = qols::machine::run_stream(*s, *via_run_stream);

      auto manual = factory(seed);
      auto s2 = inst.stream();
      while (auto sym = s2->next()) manual->feed(*sym);
      ASSERT_EQ(chunked, manual->finish()) << name << " seed=" << seed;
    }
  }
}

}  // namespace
