// Integration tests: the full Definition 2.3 pipeline and cross-module
// end-to-end behaviour.
//
//   machine streams input  ->  emits {H,T,CNOT} tape  ->  tape parsed  ->
//   circuit replayed on |0...0>  ->  first-qubit-family measurement agrees
//   with the operator-level simulation.
#include <gtest/gtest.h>

#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/gates/builder.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/quantum/circuit.hpp"

namespace {

using qols::core::GroverStreamer;
using qols::core::QuantumOnlineRecognizer;
using qols::gates::TapeWriterSink;
using qols::lang::LDisjInstance;
using qols::machine::run_stream;
using qols::quantum::Circuit;
using qols::quantum::StateVector;
using qols::util::Rng;

// Runs A3 at gate level alongside the operator level with the same seed and
// verifies the compiled circuit reproduces the operator-level register state
// (on the data qubits; ancillas must come back clean).
void expect_gate_level_matches(const LDisjInstance& inst, std::uint64_t seed) {
  const unsigned k = inst.k();
  const unsigned data = 2 * k + 2;
  const unsigned anc = 2 * k;

  // Operator-level reference. This comparison is inherently dense-specific
  // (it reads the raw register via state()), so pin the dense backend
  // explicitly — a QOLS_BACKEND=structured environment must not break it.
  GroverStreamer::Options oopts;
  oopts.backend = "dense";
  GroverStreamer op{Rng(seed), oopts};
  {
    auto s = inst.stream();
    while (auto sym = s->next()) op.feed(*sym);
  }
  ASSERT_NE(op.state(), nullptr);

  // Gate-level: emit the full tape, then replay it.
  TapeWriterSink tape;
  GroverStreamer::Options gopts;
  gopts.simulate = false;
  gopts.gate_sink = &tape;
  GroverStreamer gate{Rng(seed), gopts};
  {
    auto s = inst.stream();
    while (auto sym = s->next()) gate.feed(*sym);
  }
  ASSERT_EQ(gate.chosen_j(), op.chosen_j());  // same coins, same j

  auto circuit = Circuit::from_tape(tape.tape());
  ASSERT_TRUE(circuit.has_value());
  StateVector replayed(data + anc);
  circuit->apply_to(replayed);

  // Compare: on the ancilla=0 subspace amplitudes must match the reference
  // up to a global phase; elsewhere they must vanish.
  const StateVector& ref = *op.state();
  double cross_re = 0.0, cross_im = 0.0, leak = 0.0;
  for (std::size_t i = 0; i < replayed.dim(); ++i) {
    const std::size_t data_part = i & ((std::size_t{1} << data) - 1);
    const std::size_t anc_part = i >> data;
    if (anc_part != 0) {
      leak += std::norm(replayed.amplitude(i));
      continue;
    }
    const auto prod = std::conj(ref.amplitude(data_part)) * replayed.amplitude(i);
    cross_re += prod.real();
    cross_im += prod.imag();
  }
  EXPECT_NEAR(leak, 0.0, 1e-10);
  const double fid = cross_re * cross_re + cross_im * cross_im;
  EXPECT_NEAR(fid, 1.0, 1e-9) << "seed=" << seed;
}

TEST(Pipeline, GateLevelMatchesOperatorLevelK1) {
  Rng rng(1);
  auto member = LDisjInstance::make_disjoint(1, rng);
  auto nonmember = LDisjInstance::make_with_intersections(1, 1, rng);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expect_gate_level_matches(member, seed);
    expect_gate_level_matches(nonmember, seed);
  }
}

TEST(Pipeline, GateLevelMatchesOperatorLevelK2) {
  Rng rng(2);
  auto member = LDisjInstance::make_disjoint(2, rng);
  auto nonmember = LDisjInstance::make_with_intersections(2, 2, rng);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    expect_gate_level_matches(member, seed);
    expect_gate_level_matches(nonmember, seed);
  }
}

TEST(Pipeline, TapeIsPureGateAlphabet) {
  Rng rng(3);
  auto inst = LDisjInstance::make_disjoint(1, rng);
  TapeWriterSink tape;
  GroverStreamer::Options gopts;
  gopts.simulate = false;
  gopts.gate_sink = &tape;
  GroverStreamer gate{Rng(5), gopts};
  auto s = inst.stream();
  while (auto sym = s->next()) gate.feed(*sym);
  // Every character of the output tape is a digit or '#': the OPTM's
  // write-only tape alphabet of Definition 2.3.
  for (char c : tape.tape()) {
    ASSERT_TRUE((c >= '0' && c <= '9') || c == '#') << c;
  }
  auto circuit = Circuit::from_tape(tape.tape());
  ASSERT_TRUE(circuit.has_value());
  const auto counts = circuit->counts();
  EXPECT_EQ(counts.identity, 0u);
  EXPECT_GT(counts.h, 0u);
  EXPECT_GT(counts.cnot, 0u);
}

TEST(Pipeline, EndToEndDecisionsAgainstReferenceOracle) {
  // The quantum machine's majority behaviour must agree with the offline
  // oracle on a mixed bag of words.
  Rng rng(4);
  std::vector<std::pair<std::string, bool>> cases;
  for (unsigned k = 1; k <= 2; ++k) {
    auto member = LDisjInstance::make_disjoint(k, rng);
    cases.emplace_back(member.render(), true);
    auto bad = LDisjInstance::make_with_intersections(
        k, std::uint64_t{1} << (2 * k), rng);  // t = m: rejected w.p. 1
    cases.emplace_back(bad.render(), false);
  }
  cases.emplace_back("", false);
  cases.emplace_back("1#", false);
  cases.emplace_back("11#", false);
  for (const auto& [word, expect_member] : cases) {
    ASSERT_EQ(qols::lang::is_member_reference(word), expect_member);
    QuantumOnlineRecognizer rec(99);
    qols::stream::StringStream s(word);
    EXPECT_EQ(run_stream(s, rec), expect_member) << "word size " << word.size();
  }
}

TEST(Pipeline, SpaceSeparationHeadline) {
  // The repository's raison d'etre in one assertion chain: at k = 5 the
  // quantum machine's total space is already an order of magnitude below
  // the classical block machine's, and the gap widens with k.
  Rng rng(5);
  double prev_ratio = 0.0;
  for (unsigned k = 3; k <= 5; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    QuantumOnlineRecognizer quantum(1);
    qols::core::ClassicalBlockRecognizer block(1);
    {
      auto s = inst.stream();
      run_stream(*s, quantum);
    }
    {
      auto s = inst.stream();
      run_stream(*s, block);
    }
    const double q = static_cast<double>(quantum.space_used().total());
    const double c = static_cast<double>(block.space_used().total());
    const double ratio = c / q;
    EXPECT_GT(ratio, prev_ratio) << "k=" << k;  // gap grows with k
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 1.0);
}

TEST(Pipeline, StreamingNeverMaterializesInput) {
  // Feeding a k=6 instance (~0.8M symbols) through the quantum machine must
  // work straight off the generator stream.
  Rng rng(6);
  auto inst = LDisjInstance::make_disjoint(6, rng);
  QuantumOnlineRecognizer rec(1);
  auto s = inst.stream();
  EXPECT_TRUE(run_stream(*s, rec));
  EXPECT_EQ(rec.space_used().qubits, 14u);  // 2k+2
}

}  // namespace
