// Unit tests: running statistics and Wilson intervals.
#include <gtest/gtest.h>

#include <cmath>

#include "qols/util/rng.hpp"
#include "qols/util/stats.hpp"

namespace {

using qols::util::RunningStats;
using qols::util::wilson_interval;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesTwoPassComputation) {
  qols::util::Rng rng(1);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01() * 10.0 - 5.0;
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(Wilson, DegenerateCounts) {
  const auto all = wilson_interval(10, 10);
  EXPECT_GT(all.lo, 0.6);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  const auto none = wilson_interval(0, 10);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_LT(none.hi, 0.4);
}

TEST(Wilson, ContainsPointEstimate) {
  for (std::uint64_t succ : {1u, 5u, 37u, 99u}) {
    const auto ci = wilson_interval(succ, 100);
    EXPECT_TRUE(ci.contains(succ / 100.0)) << succ;
  }
}

TEST(Wilson, ShrinksWithMoreTrials) {
  const auto small = wilson_interval(30, 100);
  const auto large = wilson_interval(3000, 10000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(Wilson, WidensWithConfidence) {
  const auto z95 = wilson_interval(50, 100, 1.96);
  const auto z999 = wilson_interval(50, 100, 3.29);
  EXPECT_LT(z95.hi - z95.lo, z999.hi - z999.lo);
}

TEST(Wilson, CoversTrueParameterAtNominalRate) {
  // Simulate Bernoulli(0.3) experiments; the 95% interval must cover 0.3 in
  // roughly 95% of repetitions.
  qols::util::Rng rng(7);
  int covered = 0;
  const int reps = 800;
  for (int r = 0; r < reps; ++r) {
    std::uint64_t succ = 0;
    const std::uint64_t n = 150;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.3)) ++succ;
    }
    if (wilson_interval(succ, n).contains(0.3)) ++covered;
  }
  EXPECT_GE(covered / static_cast<double>(reps), 0.92);
}

}  // namespace
