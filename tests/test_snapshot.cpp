// Unit tests: the recognizer snapshot/restore codec — every kind round-trips
// mid-word into a fresh instance with a bit-identical outcome, restores
// overwrite the construction seed entirely, and malformed byte strings are
// rejected with typed errors instead of corrupting state.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "qols/core/classical_recognizers.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/machine/online_recognizer.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/util/serde.hpp"

namespace {

using qols::machine::OnlineRecognizer;
using qols::machine::UnsupportedSnapshot;
using qols::service::RecognizerKind;
using qols::service::RecognizerSpec;
using qols::stream::Symbol;
using qols::util::serde::DecodeError;

std::vector<Symbol> word_of(const qols::lang::LDisjInstance& inst) {
  std::vector<Symbol> out;
  auto s = inst.stream();
  while (auto sym = s->next()) out.push_back(*sym);
  return out;
}

struct Outcome {
  bool accepted = false;
  bool fully_simulated = true;
  std::uint64_t classical_bits = 0;
  std::uint64_t qubits = 0;

  bool operator==(const Outcome&) const = default;
};

Outcome finish_outcome(OnlineRecognizer& rec) {
  Outcome out;
  out.accepted = rec.finish();
  out.fully_simulated = rec.fully_simulated();
  out.classical_bits = rec.space_used().classical_bits;
  out.qubits = rec.space_used().qubits;
  return out;
}

Outcome straight_run(const RecognizerSpec& spec, std::uint64_t seed,
                     const std::vector<Symbol>& word) {
  auto rec = spec.make(seed);
  rec->feed_chunk(word);
  return finish_outcome(*rec);
}

/// Feed [0, cut), snapshot, restore into a recognizer built from a DIFFERENT
/// seed, feed [cut, end): equality with the straight run proves restore()
/// replaces the constructed state wholesale (rng included).
Outcome resumed_run(const RecognizerSpec& spec, std::uint64_t seed,
                    const std::vector<Symbol>& word, std::size_t cut) {
  auto first = spec.make(seed);
  first->feed_chunk(std::span<const Symbol>(word.data(), cut));
  const std::vector<std::uint8_t> bytes = first->snapshot();
  auto second = spec.make(seed ^ 0xdead'beef'dead'beefULL);
  second->restore(bytes);
  second->feed_chunk(
      std::span<const Symbol>(word.data() + cut, word.size() - cut));
  return finish_outcome(*second);
}

const std::vector<Symbol>& small_member_word() {
  static const auto word = [] {
    qols::util::Rng rng(90);
    return word_of(qols::lang::LDisjInstance::make_disjoint(1, rng));
  }();
  return word;
}

TEST(SnapshotRoundTrip, EveryKindAtEveryCut) {
  const auto& word = small_member_word();
  for (const RecognizerKind kind :
       {RecognizerKind::kClassicalBlock, RecognizerKind::kClassicalFull,
        RecognizerKind::kClassicalSampling, RecognizerKind::kClassicalBloom,
        RecognizerKind::kQuantum}) {
    RecognizerSpec spec;
    spec.kind = kind;
    if (kind == RecognizerKind::kQuantum) spec.backend = "auto";
    const Outcome straight = straight_run(spec, 5, word);
    for (std::size_t cut = 0; cut <= word.size(); ++cut) {
      EXPECT_EQ(resumed_run(spec, 5, word, cut), straight)
          << qols::service::recognizer_kind_name(kind) << " cut=" << cut;
    }
  }
}

TEST(SnapshotRoundTrip, IntersectingWordRejectsAfterResume) {
  // The machinery that finds the intersection (block buffers, bloom bits,
  // sampler indices) must survive the freeze with its evidence intact.
  qols::util::Rng rng(91);
  const auto word =
      word_of(qols::lang::LDisjInstance::make_with_intersections(2, 1, rng));
  for (const RecognizerKind kind :
       {RecognizerKind::kClassicalBlock, RecognizerKind::kClassicalFull,
        RecognizerKind::kClassicalBloom}) {
    RecognizerSpec spec;
    spec.kind = kind;
    const Outcome resumed = resumed_run(spec, 6, word, word.size() / 2);
    EXPECT_FALSE(resumed.accepted)
        << qols::service::recognizer_kind_name(kind);
    EXPECT_EQ(resumed, straight_run(spec, 6, word));
  }
}

TEST(SnapshotRoundTrip, QuantumBackendsAndPrecisions) {
  const auto& word = small_member_word();
  for (const char* backend : {"dense", "structured"}) {
    for (const bool flt : {false, true}) {
      RecognizerSpec spec;
      spec.kind = RecognizerKind::kQuantum;
      spec.backend = backend;
      spec.float_amplitudes = flt;
      const Outcome straight = straight_run(spec, 7, word);
      for (const std::size_t cut :
           {std::size_t{0}, word.size() / 3, word.size() / 2, word.size()}) {
        EXPECT_EQ(resumed_run(spec, 7, word, cut), straight)
            << backend << " float=" << flt << " cut=" << cut;
      }
    }
  }
}

TEST(SnapshotRoundTrip, SnapshotIsDeterministicAndNonMutating) {
  const auto& word = small_member_word();
  for (const RecognizerKind kind :
       {RecognizerKind::kClassicalBlock, RecognizerKind::kQuantum}) {
    RecognizerSpec spec;
    spec.kind = kind;
    auto rec = spec.make(8);
    rec->feed_chunk(std::span<const Symbol>(word.data(), word.size() / 2));
    const auto a = rec->snapshot();
    const auto b = rec->snapshot();
    EXPECT_EQ(a, b) << qols::service::recognizer_kind_name(kind);
    // Snapshotting must not perturb the run: finishing now equals the
    // straight run.
    rec->feed_chunk(std::span<const Symbol>(word.data() + word.size() / 2,
                                            word.size() - word.size() / 2));
    EXPECT_EQ(finish_outcome(*rec), straight_run(spec, 8, word));
  }
}

TEST(SnapshotCodec, RejectsMalformedByteStrings) {
  const auto& word = small_member_word();
  RecognizerSpec spec;
  auto rec = spec.make(9);
  rec->feed_chunk(std::span<const Symbol>(word.data(), word.size() / 2));
  const std::vector<std::uint8_t> good = rec->snapshot();

  const auto rejects = [&](std::vector<std::uint8_t> bytes) {
    auto fresh = spec.make(1);
    EXPECT_THROW(fresh->restore(bytes), DecodeError);
  };
  rejects({});  // empty
  {
    auto bad = good;
    bad[0] = 'X';  // wrong magic
    rejects(bad);
  }
  {
    auto bad = good;
    bad[2] = 99;  // unknown version
    rejects(bad);
  }
  {
    auto bad = good;
    bad.pop_back();  // truncated payload
    rejects(bad);
  }
  {
    auto bad = good;
    bad.push_back(0);  // trailing bytes
    rejects(bad);
  }
}

TEST(SnapshotCodec, KindTagPreventsCrossRestores) {
  // A block-machine snapshot must not restore into any other kind: the tag
  // check fires before any payload is interpreted.
  const auto& word = small_member_word();
  RecognizerSpec block;
  auto rec = block.make(10);
  rec->feed_chunk(word);
  const std::vector<std::uint8_t> bytes = rec->snapshot();
  for (const RecognizerKind kind :
       {RecognizerKind::kClassicalFull, RecognizerKind::kClassicalSampling,
        RecognizerKind::kClassicalBloom, RecognizerKind::kQuantum}) {
    RecognizerSpec other;
    other.kind = kind;
    auto fresh = other.make(1);
    EXPECT_THROW(fresh->restore(bytes), DecodeError)
        << qols::service::recognizer_kind_name(kind);
  }
}

TEST(SnapshotCodec, DefaultVirtualsRefuseHonestly) {
  // A recognizer that never implemented the codec reports itself by name
  // instead of silently returning garbage.
  class Bare final : public OnlineRecognizer {
   public:
    void feed(Symbol) override {}
    bool finish() override { return false; }
    qols::machine::SpaceReport space_used() const override { return {}; }
    std::string name() const override { return "bare"; }
    void reset(std::uint64_t) override {}
  };
  Bare bare;
  EXPECT_THROW(
      {
        try {
          (void)bare.snapshot();
        } catch (const UnsupportedSnapshot& e) {
          EXPECT_NE(std::string(e.what()).find("bare"), std::string::npos);
          throw;
        }
      },
      UnsupportedSnapshot);
  const std::vector<std::uint8_t> none;
  EXPECT_THROW(bare.restore(none), UnsupportedSnapshot);
}

TEST(SnapshotCodec, ServiceSurfacesUnsupportedSnapshotAndStaysResident) {
  // evict() on a recognizer without a codec throws and leaves the session
  // usable (the honest-refusal contract at the service layer). Reach it
  // via the one supported path: a gate-sink quantum machine is not
  // constructible through RecognizerSpec, so this asserts the plumbing with
  // the library-level recognizer directly instead.
  const auto& word = small_member_word();
  RecognizerSpec spec;
  spec.kind = RecognizerKind::kClassicalBlock;
  qols::service::RecognizerService svc({.spec = spec});
  const auto id = svc.open(3);
  svc.feed(id, word);
  svc.evict(id);  // supported: spills fine
  EXPECT_TRUE(svc.evicted(id));
  EXPECT_EQ(svc.finish(id).accepted, straight_run(spec, 3, word).accepted);
}

}  // namespace
