// Unit tests: the dependency-free JSON writer behind BENCH_*.json.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "qols/util/json.hpp"

namespace {

using qols::util::json::Value;

TEST(Json, ScalarsSerialize) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(std::int64_t{-42}).dump(), "-42");
  EXPECT_EQ(Value(std::uint64_t{18446744073709551615ull}).dump(),
            "18446744073709551615");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(Json, DoublesRoundTripAndStayDoubles) {
  EXPECT_EQ(Value(0.25).dump(), "0.25");
  // Integral doubles keep a fractional marker so they read back as floats.
  EXPECT_EQ(Value(3.0).dump(), "3.0");
  // Non-finite values have no JSON spelling; they degrade to null.
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Value("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Value("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Value("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Value(std::string("ctrl\x01")).dump(), "\"ctrl\\u0001\"");
}

TEST(Json, ObjectsPreserveInsertionOrderAndOverwrite) {
  auto obj = Value::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("zebra", 3);  // overwrite in place, order kept
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.dump(0), "{\"zebra\":3,\"alpha\":2}");
}

TEST(Json, NestedDocumentIndented) {
  auto doc = Value::object();
  doc.set("name", "qols");
  auto& arr = doc.set("xs", Value::array());
  arr.push_back(1);
  arr.push_back(2);
  EXPECT_EQ(doc.dump(2),
            "{\n  \"name\": \"qols\",\n  \"xs\": [\n    1,\n    2\n  ]\n}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Value::object().dump(), "{}");
  EXPECT_EQ(Value::array().dump(), "[]");
}

}  // namespace
