// Unit tests: procedure A3 — the streamed Grover search.
#include <gtest/gtest.h>

#include <cmath>

#include "qols/core/grover_streamer.hpp"
#include "qols/grover/analysis.hpp"
#include "qols/lang/ldisj_instance.hpp"

namespace {

using qols::core::GroverStreamer;
using qols::grover::angle;
using qols::grover::success_after;
using qols::lang::LDisjInstance;
using qols::util::Rng;

void stream_through(GroverStreamer& a3, const LDisjInstance& inst) {
  auto s = inst.stream();
  while (auto sym = s->next()) a3.feed(*sym);
}

TEST(GroverStreamer, DisjointInputsNeverMeasureOne) {
  Rng rng(1);
  for (unsigned k = 1; k <= 3; ++k) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      auto inst = LDisjInstance::make_disjoint(k, rng);
      GroverStreamer a3{Rng(seed)};
      stream_through(a3, inst);
      ASSERT_NEAR(a3.probability_output_zero(), 0.0, 1e-10)
          << "k=" << k << " seed=" << seed;
      ASSERT_EQ(a3.finish_output(), 1);
    }
  }
}

TEST(GroverStreamer, RejectionProbabilityEqualsGroverFormula) {
  // For fixed j, P[measure 1] must equal sin^2((2j+1) theta) exactly.
  Rng rng(2);
  for (unsigned k = 1; k <= 3; ++k) {
    const std::uint64_t n = std::uint64_t{1} << (2 * k);
    for (std::uint64_t t : {std::uint64_t{1}, std::uint64_t{2}, n / 4, n / 2}) {
      if (t == 0) continue;
      auto inst = LDisjInstance::make_with_intersections(k, t, rng);
      for (std::uint64_t seed = 0; seed < 6; ++seed) {
        GroverStreamer a3{Rng(seed)};
        stream_through(a3, inst);
        ASSERT_TRUE(a3.chosen_j().has_value());
        const double expect = success_after(*a3.chosen_j(), angle(t, n));
        ASSERT_NEAR(a3.probability_output_zero(), expect, 1e-9)
            << "k=" << k << " t=" << t << " j=" << *a3.chosen_j();
      }
    }
  }
}

TEST(GroverStreamer, AveragedRejectionMatchesBbhtClosedForm) {
  // Sweep all j deterministically by seed search: instead, average the exact
  // per-run probabilities over many seeds; the empirical mean must approach
  // the closed form 1/2 - sin(4*2^k*theta)/(4*2^k*sin(2*theta)).
  Rng rng(3);
  const unsigned k = 2;
  const std::uint64_t t = 3;
  auto inst = LDisjInstance::make_with_intersections(k, t, rng);
  double sum = 0.0;
  constexpr int kRuns = 400;
  for (int i = 0; i < kRuns; ++i) {
    GroverStreamer a3{Rng(9000 + i)};
    stream_through(a3, inst);
    sum += a3.probability_output_zero();
  }
  const double closed = qols::grover::a3_rejection_probability(k, t);
  EXPECT_NEAR(sum / kRuns, closed, 0.05);
}

TEST(GroverStreamer, ChosenJIsInRange) {
  Rng rng(4);
  auto inst = LDisjInstance::make_disjoint(3, rng);
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    GroverStreamer a3{Rng(seed)};
    stream_through(a3, inst);
    ASSERT_TRUE(a3.chosen_j().has_value());
    ASSERT_LT(*a3.chosen_j(), 8u);  // 2^k = 8
  }
}

TEST(GroverStreamer, SpaceReportIsLogarithmic) {
  Rng rng(5);
  for (unsigned k = 1; k <= 4; ++k) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    GroverStreamer a3{Rng(1)};
    stream_through(a3, inst);
    EXPECT_EQ(a3.qubits_used(), 2ULL * k + 2);
    EXPECT_LE(a3.classical_bits_used(), 8ULL * k + 16);
  }
}

TEST(GroverStreamer, MeasurementSamplingMatchesProbability) {
  Rng rng(6);
  const unsigned k = 2;
  auto inst = LDisjInstance::make_with_intersections(k, 8, rng);  // t = m/2
  int zeros = 0;
  constexpr int kRuns = 600;
  double psum = 0.0;
  for (int i = 0; i < kRuns; ++i) {
    GroverStreamer a3{Rng(100 + i)};
    stream_through(a3, inst);
    psum += a3.probability_output_zero();
    if (a3.finish_output() == 0) ++zeros;
  }
  EXPECT_NEAR(zeros / static_cast<double>(kRuns), psum / kRuns, 0.06);
}

TEST(GroverStreamer, InertWithoutSimulation) {
  GroverStreamer::Options opts;
  opts.simulate = false;
  GroverStreamer a3{Rng(1), opts};
  Rng rng(7);
  auto inst = LDisjInstance::make_disjoint(1, rng);
  stream_through(a3, inst);
  EXPECT_EQ(a3.finish_output(), 1);  // no register: defaults to "disjoint"
}

TEST(GroverStreamer, SurvivesMalformedStreams) {
  // Must not crash or leave the register in a broken state on junk input.
  GroverStreamer a3{Rng(1)};
  using qols::stream::Symbol;
  a3.feed(Symbol::kOne);
  a3.feed(Symbol::kSep);   // k = 1
  for (int i = 0; i < 100; ++i) a3.feed(Symbol::kOne);  // overlong block
  a3.feed(Symbol::kSep);
  EXPECT_NO_THROW(a3.finish_output());
}

}  // namespace
