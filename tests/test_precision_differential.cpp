// Precision differential suite: the dense backend in float-amplitude mode
// (quantum::Precision::kSingle) against the double reference, driven through
// identical streamed instances (same words, same seeds).
//
// The precision contract (docs/ARCHITECTURE.md):
//   - DECISIONS ARE EXACT. Measurement outcomes, accept counts, finish
//     outputs and SpaceReports match the double baseline seed-for-seed —
//     probabilities and norms accumulate in double in both modes, and RNG
//     consumption is identical.
//   - AMPLITUDES ROUND. Each float amplitude agrees with the double
//     reference within a per-gate-count tolerance: every gate pass over the
//     register contributes O(2^-24) relative error, so a run with G
//     register-wide passes stays within ~G * 2^-24 (a comfortable constant
//     times that is asserted below).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "qols/core/grover_streamer.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/core/trial_engine.hpp"
#include "qols/lang/ldisj_instance.hpp"
#include "qols/quantum/state_vector.hpp"
#include "qols/service/recognizer_service.hpp"
#include "qols/stream/symbol_stream.hpp"
#include "qols/util/rng.hpp"

namespace {

using qols::core::GroverStreamer;
using qols::core::QuantumOnlineRecognizer;
using qols::core::TrialEngine;
using qols::lang::LDisjInstance;
using qols::lang::make_mutant_stream;
using qols::lang::MutantKind;
using qols::quantum::Precision;
using qols::util::Rng;

GroverStreamer make_streamer(Precision precision, std::uint64_t seed) {
  GroverStreamer::Options opts;
  opts.backend = "dense";  // the only precision-aware backend
  opts.max_sim_k = 10;
  opts.precision = precision;
  return GroverStreamer{Rng(seed), opts};
}

void stream_word(GroverStreamer& a3, const std::string& word) {
  qols::stream::StringStream s(word);
  while (auto sym = s.next()) a3.feed(*sym);
}

/// The documented amplitude tolerance for a finished A3 run: j Grover
/// iterations (each two H-ranges, a reflection and O(1) oracle touches) plus
/// the preparation H-range give roughly (2j + 3)(2k + 2) single-qubit gate
/// passes; each pass contributes at most a few ulps of float relative error
/// per amplitude. The constant 64 absorbs the per-pass ulp count with a wide
/// margin while staying ~1e9 times tighter than "any float".
double amplitude_tolerance(unsigned k, std::uint64_t j) {
  const double passes =
      (2.0 * static_cast<double>(j) + 3.0) * (2.0 * k + 2.0);
  return 64.0 * passes * 0x1p-24;
}

/// Streams `word` through float- and double-precision dense runs with the
/// same seed; asserts exact decision/space agreement and toleranced
/// amplitude agreement.
void expect_precisions_agree(const std::string& word, std::uint64_t seed,
                             bool compare_amplitudes = true) {
  GroverStreamer dbl = make_streamer(Precision::kDouble, seed);
  GroverStreamer flt = make_streamer(Precision::kSingle, seed);
  stream_word(dbl, word);
  stream_word(flt, word);

  // RNG consumption before the register even matters: the drawn j is part of
  // the decision state and must be identical.
  ASSERT_EQ(dbl.chosen_j(), flt.chosen_j()) << "seed " << seed;
  ASSERT_EQ(dbl.qubits_used(), flt.qubits_used());
  ASSERT_EQ(dbl.classical_bits_used(), flt.classical_bits_used());

  const auto* backend_d = dbl.simulation_backend();
  const auto* backend_f = flt.simulation_backend();
  if (backend_d == nullptr || backend_f == nullptr) {
    // Word so malformed the register never came up — both must agree.
    ASSERT_EQ(backend_d, nullptr);
    ASSERT_EQ(backend_f, nullptr);
    return;
  }
  ASSERT_EQ(backend_d->precision(), Precision::kDouble);
  ASSERT_EQ(backend_f->precision(), Precision::kSingle);

  const unsigned k = static_cast<unsigned>((dbl.qubits_used() - 2) / 2);
  const double tol = amplitude_tolerance(k, dbl.chosen_j().value_or(0));
  if (compare_amplitudes) {
    const std::uint64_t dim = std::uint64_t{1} << backend_d->num_qubits();
    for (std::uint64_t basis = 0; basis < dim; ++basis) {
      const auto ad = backend_d->amplitude(basis);
      const auto af = backend_f->amplitude(basis);
      ASSERT_NEAR(ad.real(), af.real(), tol)
          << "basis " << basis << " seed " << seed;
      ASSERT_NEAR(ad.imag(), af.imag(), tol)
          << "basis " << basis << " seed " << seed;
    }
  }
  ASSERT_NEAR(dbl.probability_output_zero(), flt.probability_output_zero(),
              tol);
  // The decision itself: exact, not toleranced.
  ASSERT_EQ(dbl.finish_output(), flt.finish_output()) << "seed " << seed;
}

TEST(PrecisionDifferential, FullStateAgreementSmallK) {
  Rng rng(1);
  for (unsigned k = 1; k <= 4; ++k) {
    const std::uint64_t m = std::uint64_t{1} << (2 * k);
    for (std::uint64_t t : {std::uint64_t{0}, std::uint64_t{1},
                            std::uint64_t{2}, m / 2}) {
      auto inst = t == 0 ? LDisjInstance::make_disjoint(k, rng)
                         : LDisjInstance::make_with_intersections(k, t, rng);
      const std::string word = inst.render();
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        expect_precisions_agree(word, seed);
      }
    }
  }
}

TEST(PrecisionDifferential, MutantWordsAgree) {
  // Mutants end runs in every intermediate machine state (mid-block, after
  // truncation, post-measurement garbage); the float register must track the
  // double one through all of them.
  Rng rng(2);
  for (unsigned k : {2u, 3u}) {
    auto inst = LDisjInstance::make_disjoint(k, rng);
    for (auto kind :
         {MutantKind::kBadPrefix, MutantKind::kTrailingGarbage,
          MutantKind::kXZMismatch, MutantKind::kYDrift, MutantKind::kTruncated,
          MutantKind::kSepInsideBlock}) {
      auto mutant = make_mutant_stream(inst, kind, rng);
      const std::string word = qols::stream::materialize(*mutant);
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        expect_precisions_agree(word, seed);
      }
    }
  }
}

TEST(PrecisionDifferential, AcceptCountsMatchExactlyThroughEngine) {
  // The statistics layer: 64 trials per configuration, float vs double —
  // identical accept counts, simulation status and space, trial for trial.
  Rng rng(3);
  const TrialEngine engine;
  for (unsigned k : {2u, 3u}) {
    for (std::uint64_t t : {std::uint64_t{0}, std::uint64_t{1}}) {
      auto inst = t == 0 ? LDisjInstance::make_disjoint(k, rng)
                         : LDisjInstance::make_with_intersections(k, t, rng);
      auto measure = [&](Precision precision) {
        QuantumOnlineRecognizer::Options opts;
        opts.a3.backend = "dense";
        opts.a3.precision = precision;
        return engine.measure_acceptance(
            [&] { return inst.stream(); },
            [opts](std::uint64_t seed) {
              return std::make_unique<QuantumOnlineRecognizer>(seed, opts);
            },
            {.trials = 64, .seed_base = 700 + 100 * k + t});
      };
      const auto dbl = measure(Precision::kDouble);
      const auto flt = measure(Precision::kSingle);
      ASSERT_EQ(dbl.accepts, flt.accepts) << "k=" << k << " t=" << t;
      ASSERT_EQ(dbl.not_simulated, flt.not_simulated);
      ASSERT_EQ(dbl.space.qubits, flt.space.qubits);
      ASSERT_EQ(dbl.space.classical_bits, flt.space.classical_bits);
      if (t == 0) {
        ASSERT_EQ(flt.accepts, flt.trials);  // perfect completeness holds
      }
    }
  }
}

TEST(PrecisionDifferential, ServiceVerdictsPrecisionInvariant) {
  // The user-facing knob: RecognizerSpec::float_amplitudes. Same seed, same
  // word, per-symbol feeding — the served Verdict fields must be identical.
  Rng rng(4);
  for (unsigned k : {1u, 2u}) {
    for (std::uint64_t t : {std::uint64_t{0}, std::uint64_t{2}}) {
      auto inst = t == 0 ? LDisjInstance::make_disjoint(k, rng)
                         : LDisjInstance::make_with_intersections(k, t, rng);
      const std::string word = inst.render();
      for (std::uint64_t seed = 40; seed < 44; ++seed) {
        auto run = [&](bool float_amplitudes) {
          qols::service::RecognizerSpec spec;
          spec.kind = qols::service::RecognizerKind::kQuantum;
          spec.backend = "dense";
          spec.float_amplitudes = float_amplitudes;
          auto rec = spec.make(seed);
          qols::stream::StringStream s(word);
          while (auto sym = s.next()) rec->feed(*sym);
          const bool accepted = rec->finish();
          return std::tuple{accepted, rec->fully_simulated(),
                            rec->space_used().classical_bits,
                            rec->space_used().qubits};
        };
        ASSERT_EQ(run(false), run(true)) << "k=" << k << " seed=" << seed;
      }
    }
  }
}

TEST(PrecisionDifferential, NormDriftBoundedAfterLongestRun) {
  // k = 7: the longest float-mode register evolution in the tier-1 suite
  // (up to 2^7 - 1 Grover iterations over 2^16 amplitudes). The float
  // register's norm may drift, but only within the per-gate-count budget —
  // and the decision must still match the double run exactly.
  Rng rng(5);
  auto inst = LDisjInstance::make_with_intersections(7, 1, rng);
  const std::string word = inst.render();

  GroverStreamer dbl = make_streamer(Precision::kDouble, 9);
  GroverStreamer flt = make_streamer(Precision::kSingle, 9);
  stream_word(dbl, word);
  stream_word(flt, word);

  ASSERT_TRUE(flt.chosen_j().has_value());
  const std::uint64_t j = *flt.chosen_j();
  ASSERT_NE(flt.simulation_backend(), nullptr);
  ASSERT_EQ(flt.simulation_backend()->precision(), Precision::kSingle);

  // Double stays at machine-epsilon scale; float within the gate budget.
  EXPECT_NEAR(dbl.simulation_backend()->norm(), 1.0, 1e-9);
  const double float_tol = amplitude_tolerance(7, j);
  EXPECT_NEAR(flt.simulation_backend()->norm(), 1.0, float_tol);

  ASSERT_NEAR(dbl.probability_output_zero(), flt.probability_output_zero(),
              float_tol);
  ASSERT_EQ(dbl.finish_output(), flt.finish_output());
}

TEST(PrecisionDifferential, MixedPrecisionInnerProductAndFidelity) {
  // inner_product/fidelity accept operands of different scalar types and
  // widen every term to double before accumulating: <double|float> must
  // equal the inner product computed against the float state's exactly
  // promoted double copy, making fidelity a sound cross-precision agreement
  // probe (it measures the states' divergence, not the probe's).
  using qols::quantum::StateVector;
  using qols::quantum::StateVectorF;

  StateVector d(4);
  StateVectorF f(4);
  for (unsigned q = 0; q < 4; ++q) {
    d.apply_h(q);
    f.apply_h(q);
  }
  d.apply_z(1);
  f.apply_z(1);
  d.apply_cnot(0, 2);
  f.apply_cnot(0, 2);

  // Recompute the probe from exactly-promoted amplitudes; the member must
  // match it to the last bit (same double operations, same order).
  const auto mixed = d.inner_product(f);
  double acc_r = 0.0, acc_i = 0.0;
  for (std::size_t i = 0; i < d.dim(); ++i) {
    const auto a = d.amplitude(i);
    const auto b = f.amplitude(i);  // widened float values, exact
    acc_r += a.real() * b.real() + a.imag() * b.imag();
    acc_i += a.real() * b.imag() - a.imag() * b.real();
  }
  EXPECT_DOUBLE_EQ(mixed.real(), acc_r);
  EXPECT_DOUBLE_EQ(mixed.imag(), acc_i);

  // Same circuit in both precisions: fidelity ~ 1 within float rounding...
  EXPECT_NEAR(d.fidelity(f), 1.0, 1e-6);
  EXPECT_NEAR(f.fidelity(d), 1.0, 1e-6);
  // ...and sensitive to a real divergence.
  f.apply_z(3);
  EXPECT_LT(d.fidelity(f), 0.999);
}

TEST(PrecisionDifferential, StructuredBackendIgnoresFloatRequest) {
  // The structured backend is double-only and documents that it ignores the
  // precision request: asking for kSingle must not change its results or its
  // reported precision.
  Rng rng(6);
  auto inst = LDisjInstance::make_with_intersections(3, 1, rng);
  const std::string word = inst.render();

  GroverStreamer::Options opts;
  opts.backend = "structured";
  opts.precision = Precision::kSingle;
  GroverStreamer requested{Rng(21), opts};
  opts.precision = Precision::kDouble;
  GroverStreamer baseline{Rng(21), opts};
  stream_word(requested, word);
  stream_word(baseline, word);

  ASSERT_NE(requested.simulation_backend(), nullptr);
  EXPECT_EQ(requested.simulation_backend()->precision(), Precision::kDouble);
  ASSERT_EQ(requested.chosen_j(), baseline.chosen_j());
  ASSERT_EQ(requested.probability_output_zero(),
            baseline.probability_output_zero());
  ASSERT_EQ(requested.finish_output(), baseline.finish_output());
}

}  // namespace
