// Unit tests: the experiment driver API.
#include <gtest/gtest.h>

#include "qols/core/classical_recognizers.hpp"
#include "qols/core/experiment.hpp"
#include "qols/core/quantum_recognizer.hpp"
#include "qols/lang/ldisj_instance.hpp"

namespace {

using namespace qols::core;
using qols::lang::LDisjInstance;
using qols::util::Rng;

RecognizerFactory quantum() {
  return [](std::uint64_t seed) {
    return std::make_unique<QuantumOnlineRecognizer>(seed);
  };
}

TEST(Experiment, MemberAcceptanceIsCertain) {
  Rng rng(1);
  auto inst = LDisjInstance::make_disjoint(2, rng);
  const auto r = measure_acceptance([&] { return inst.stream(); }, quantum(),
                                    {.trials = 50, .seed_base = 1});
  EXPECT_EQ(r.trials, 50u);
  EXPECT_EQ(r.accepts, 50u);
  EXPECT_DOUBLE_EQ(r.rate(), 1.0);
  EXPECT_EQ(r.space.qubits, 6u);  // 2k+2 at k=2
}

TEST(Experiment, NonMemberRejectionIsAtLeastQuarter) {
  Rng rng(2);
  auto inst = LDisjInstance::make_with_intersections(2, 1, rng);
  const auto r = measure_acceptance([&] { return inst.stream(); }, quantum(),
                                    {.trials = 300, .seed_base = 1});
  // One-sided: acceptance <= 3/4; Wilson upper bound must clear 0.8 easily.
  EXPECT_LE(r.wilson().lo, 0.75);
  EXPECT_LE(r.rate(), 0.80);
}

TEST(Experiment, WilsonIntervalBracketsRate) {
  Rng rng(3);
  auto inst = LDisjInstance::make_with_intersections(2, 2, rng);
  const auto r = measure_acceptance([&] { return inst.stream(); }, quantum(),
                                    {.trials = 100, .seed_base = 5});
  const auto ci = r.wilson();
  EXPECT_LE(ci.lo, r.rate());
  EXPECT_GE(ci.hi, r.rate());
}

TEST(Experiment, QualityProfileSeparatesMachines) {
  Rng rng(4);
  auto member = LDisjInstance::make_disjoint(2, rng);
  auto nonmember = LDisjInstance::make_with_intersections(2, 16, rng);  // t=m

  // Quantum: perfect completeness, certain rejection at t = m.
  const auto q = measure_quality([&] { return member.stream(); },
                                 [&] { return nonmember.stream(); }, quantum(),
                                 {.trials = 40, .seed_base = 1});
  EXPECT_DOUBLE_EQ(q.on_member.rate(), 1.0);
  EXPECT_DOUBLE_EQ(q.on_nonmember.rate(), 0.0);
  EXPECT_TRUE(q.bounded_error());
  EXPECT_DOUBLE_EQ(q.max_error(), 0.0);

  // A starved sampling machine fails the bounded-error test on a sparse
  // witness (use t=1 for its nonmember leg).
  auto sparse = LDisjInstance::make_with_intersections(3, 1, rng);
  auto member3 = LDisjInstance::make_disjoint(3, rng);
  const auto s = measure_quality(
      [&] { return member3.stream(); }, [&] { return sparse.stream(); },
      [](std::uint64_t seed) {
        return std::make_unique<ClassicalSamplingRecognizer>(seed, 1);
      },
      {.trials = 60, .seed_base = 1});
  EXPECT_FALSE(s.bounded_error());
}

TEST(Experiment, ZeroTrialsIsSafe) {
  Rng rng(5);
  auto inst = LDisjInstance::make_disjoint(1, rng);
  const auto r = measure_acceptance([&] { return inst.stream(); }, quantum(),
                                    {.trials = 0, .seed_base = 1});
  EXPECT_EQ(r.trials, 0u);
  EXPECT_DOUBLE_EQ(r.rate(), 0.0);
}

}  // namespace
