// Unit tests: the experiment table/CSV reporter.
#include <gtest/gtest.h>

#include <sstream>

#include "qols/util/table.hpp"

namespace {

using qols::util::Table;

TEST(Table, TextRenderingAlignsColumns) {
  Table t({"k", "space"});
  t.add_row({"1", "10"});
  t.add_row({"10", "1000"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| k "), std::string::npos);
  EXPECT_NE(text.find("| space "), std::string::npos);
  EXPECT_NE(text.find("1000"), std::string::npos);
  // Every line has the same width.
  std::istringstream is(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PrintIncludesCaption) {
  Table t({"x"});
  t.add_row({"42"});
  std::ostringstream os;
  t.print(os, "E0: demo");
  EXPECT_NE(os.str().find("E0: demo"), std::string::npos);
  EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(Formatters, FixedPoint) {
  EXPECT_EQ(qols::util::fmt_f(0.25, 2), "0.25");
  EXPECT_EQ(qols::util::fmt_f(1.0 / 3.0, 4), "0.3333");
}

TEST(Formatters, GroupedIntegers) {
  EXPECT_EQ(qols::util::fmt_g(0), "0");
  EXPECT_EQ(qols::util::fmt_g(999), "999");
  EXPECT_EQ(qols::util::fmt_g(1000), "1,000");
  EXPECT_EQ(qols::util::fmt_g(1048576), "1,048,576");
  EXPECT_EQ(qols::util::fmt_g(123456789), "123,456,789");
}

}  // namespace
